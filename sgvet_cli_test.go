package repro

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// goldenCompare checks got against the golden file, after normalizing
// the repository root to $ROOT. UPDATE_GOLDEN=1 rewrites the golden.
func goldenCompare(t *testing.T, goldenPath, got string) {
	t.Helper()
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	normalized := strings.ReplaceAll(got, root, "$ROOT")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(normalized), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if normalized != string(want) {
		t.Errorf("%s mismatch (UPDATE_GOLDEN=1 to accept)\n--- want ---\n%s\n--- got ---\n%s",
			goldenPath, want, normalized)
	}
}

// TestSgcAnalyzeJSONGolden pins the stable JSON schema of `sgc analyze
// -json` in both modes, and with it the PR's acceptance property: the
// fixture's viaHelper UDF breaks its neighbor traversal inside a helper
// function, which the syntactic pass cannot see (loop_carried=false,
// instrumented=not-needed) and the typed pass must (loop_carried=true
// with an uncovered inter_break, instrumented=no).
func TestSgcAnalyzeJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "sgc")

	syn := run(t, tools["sgc"], "analyze", "-json", "testdata/sgc/udfpkg/udf.go")
	goldenCompare(t, filepath.Join("testdata", "sgc", "syntactic.golden.json"), syn)

	typed := run(t, tools["sgc"], "analyze", "-typed", "-json", "testdata/sgc/udfpkg")
	goldenCompare(t, filepath.Join("testdata", "sgc", "typed.golden.json"), typed)

	// Beyond byte equality, assert the semantic divergence directly so
	// the property survives schema-motivated golden updates.
	type doc struct {
		Mode     string `json:"mode"`
		Packages []struct {
			Funcs []struct {
				Name        string `json:"name"`
				LoopCarried bool   `json:"loop_carried"`
				Inst        string `json:"instrumented"`
				InterBreaks []struct {
					Callee  string `json:"callee"`
					Covered bool   `json:"covered"`
				} `json:"inter_breaks"`
			} `json:"funcs"`
		} `json:"packages"`
	}
	var sd, td doc
	if err := json.Unmarshal([]byte(syn), &sd); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(typed), &td); err != nil {
		t.Fatal(err)
	}
	find := func(d doc, name string) (loopCarried bool, inst string, helpers []string) {
		for _, p := range d.Packages {
			for _, f := range p.Funcs {
				if f.Name == name {
					for _, ib := range f.InterBreaks {
						helpers = append(helpers, ib.Callee)
					}
					return f.LoopCarried, f.Inst, helpers
				}
			}
		}
		t.Fatalf("func %s not in %s report", name, d.Mode)
		return
	}
	if lc, inst, _ := find(sd, "viaHelper"); lc || inst != "not-needed" {
		t.Fatalf("syntactic pass should miss the helper break: loop_carried=%v instrumented=%s", lc, inst)
	}
	if lc, inst, helpers := find(td, "viaHelper"); !lc || inst != "no" || len(helpers) != 1 || helpers[0] != "firstActive" {
		t.Fatalf("typed pass must see the helper break: loop_carried=%v instrumented=%s helpers=%v", lc, inst, helpers)
	}
}

// TestSgvetCLI runs the standalone linter: clean over the repository
// (exit 0), and findings with exit 1 + the vet line format over a
// deliberately broken fixture package.
func TestSgvetCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "sgvet")

	// The tree itself must be clean — this is the same gate `make lint`
	// enforces.
	out := run(t, tools["sgvet"], "./...")
	if strings.TrimSpace(out) != "" {
		t.Fatalf("sgvet not clean over the repository:\n%s", out)
	}

	// A broken fixture: uncovered break → exit 1, file:line:col format.
	dir := t.TempDir()
	src := `package broken

import (
	"repro/internal/core"
	"repro/internal/graph"
)

var frontier interface{ Get(int) bool }

func udf(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	for _, u := range srcs {
		ctx.Edge()
		if frontier.Get(int(u)) {
			break
		}
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(tools["sgvet"], dir)
	cmd.Dir = "." // module root: the loader resolves repro/... imports from here
	b, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1 on findings, got %v\n%s", err, b)
	}
	outStr := string(b)
	if !strings.Contains(outStr, "broken.go:14:") || !strings.Contains(outStr, "EmitDep") || !strings.Contains(outStr, "(depbreak)") {
		t.Fatalf("diagnostic format:\n%s", outStr)
	}

	// -json mode emits the same finding machine-readably.
	cmd = exec.Command(tools["sgvet"], "-json", dir)
	b, _ = cmd.CombinedOutput()
	var diags []struct {
		Analyzer string `json:"analyzer"`
		Line     int    `json:"line"`
	}
	if err := json.Unmarshal(b, &diags); err != nil {
		t.Fatalf("sgvet -json output not JSON: %v\n%s", err, b)
	}
	if len(diags) != 1 || diags[0].Analyzer != "depbreak" || diags[0].Line != 14 {
		t.Fatalf("json diagnostics: %+v", diags)
	}

	// Unknown analyzer name is a usage error.
	cmd = exec.Command(tools["sgvet"], "-c", "nosuch", "./...")
	if err := cmd.Run(); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}

// TestSgvetEngineCLI drives the three engine-backed analyzers through
// the built binary over one deliberately broken fixture package: a
// use-after-Release that only a helper summary can see (bufown), a
// lock-order inversion (lockorder), and an exit-free goroutine
// (leakgo).
func TestSgvetEngineCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "sgvet")

	dir := t.TempDir()
	src := `package broken

import (
	"sync"

	"repro/internal/comm"
)

var ep comm.Endpoint

var (
	muA sync.Mutex
	muB sync.Mutex
)

func drain(m *comm.Message) { m.Release() }

func useAfterHelperRelease() byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	drain(&m)
	return m.Payload[0]
}

func lockAB() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

func leak() {
	go func() {
		for {
		}
	}()
}
`
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(tools["sgvet"], "-c", "bufown,lockorder,leakgo", dir)
	cmd.Dir = "."
	b, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1 on engine findings, got %v\n%s", err, b)
	}
	out := string(b)
	for _, needle := range []string{"(bufown)", "(lockorder)", "(leakgo)", "payload used after Release", "lock order inversion", "no reachable exit"} {
		if !strings.Contains(out, needle) {
			t.Errorf("engine diagnostics missing %q:\n%s", needle, out)
		}
	}
	// Both directions of the inversion are named.
	if strings.Count(out, "lock order inversion") != 2 {
		t.Errorf("want one inversion diagnostic per direction:\n%s", out)
	}
}

// TestSgvetAudit pins the suppression audit: a justified //sgvet:ignore
// passes and is listed; a bare one fails the run.
func TestSgvetAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "sgvet")

	writePkg := func(src string) string {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "quiet.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	good := writePkg(`package quiet

//sgvet:ignore bufown fixture exercises the recycled-payload path deliberately
var x = 1
`)
	cmd := exec.Command(tools["sgvet"], "-audit", good)
	cmd.Dir = "."
	b, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("justified suppression failed the audit: %v\n%s", err, b)
	}
	out := string(b)
	if !strings.Contains(out, "bufown — fixture exercises the recycled-payload path deliberately") ||
		!strings.Contains(out, "1 suppression(s), 0 without justification") {
		t.Fatalf("audit listing:\n%s", out)
	}

	bad := writePkg(`package quiet

//sgvet:ignore
var x = 1
`)
	cmd = exec.Command(tools["sgvet"], "-audit", bad)
	cmd.Dir = "."
	b, err = cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("unjustified suppression must fail the audit, got %v\n%s", err, b)
	}
	if !strings.Contains(string(b), "<no justification>") {
		t.Fatalf("audit failure output:\n%s", b)
	}
}

// TestSgvetArtifact round-trips the findings artifact: -artifact writes
// timings for the whole suite plus zero findings over a clean subtree,
// -check-artifact accepts it, and rejects a tampered artifact (stale
// analyzer set, recorded finding).
func TestSgvetArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "sgvet")

	path := filepath.Join(t.TempDir(), "lint.json")
	out := run(t, tools["sgvet"], "-times", "-artifact", path, "./internal/bufpool")
	if !strings.Contains(out, "per-analyzer wall time") || !strings.Contains(out, "lockorder") {
		t.Fatalf("-times report:\n%s", out)
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Analyzers []struct {
			Analyzer string  `json:"analyzer"`
			Millis   float64 `json:"millis"`
		} `json:"analyzers"`
		Diagnostics []json.RawMessage `json:"diagnostics"`
	}
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatalf("artifact not JSON: %v\n%s", err, blob)
	}
	if len(art.Analyzers) != 9 || len(art.Diagnostics) != 0 {
		t.Fatalf("artifact shape: %d analyzers, %d diagnostics", len(art.Analyzers), len(art.Diagnostics))
	}

	out = run(t, tools["sgvet"], "-check-artifact", path)
	if !strings.Contains(out, "ok: 9 analyzers, 0 findings") {
		t.Fatalf("check-artifact accept:\n%s", out)
	}

	expectReject := func(name, contents string) {
		t.Helper()
		p := filepath.Join(t.TempDir(), "bad.json")
		if err := os.WriteFile(p, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(tools["sgvet"], "-check-artifact", p)
		if err := cmd.Run(); err == nil {
			t.Errorf("%s artifact accepted", name)
		}
	}
	// An artifact from before an analyzer landed must not green-light.
	expectReject("stale", strings.Replace(string(blob), `"analyzer": "leakgo"`, `"analyzer": "gone"`, 1))
	// Recorded findings must not green-light.
	expectReject("findings", strings.Replace(string(blob),
		`"diagnostics": []`,
		`"diagnostics": [{"analyzer":"bufown","file":"x.go","line":1,"col":1,"message":"boom"}]`, 1))
	expectReject("garbage", "{")
}

// TestSgvetVettool exercises the `go vet -vettool` protocol over the
// subtrees with the richest invariant surfaces: internal/server and
// internal/obs for the historical analyzers, and internal/comm +
// internal/core for the engine-backed three (mutex discipline, spawned
// worker goroutines, and the SendBufs ownership hand-offs all live
// there). The protocol depends on the toolchain writing export data; if
// this environment's go vet cannot run the tool at all, the test skips
// with the reason — the standalone mode above is the supported gate.
func TestSgvetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "sgvet")

	cmd := exec.Command("go", "vet", "-vettool="+tools["sgvet"],
		"./internal/server/...", "./internal/obs/...", "./internal/comm/...", "./internal/core/...")
	cmd.Env = os.Environ()
	b, err := cmd.CombinedOutput()
	if err != nil {
		if strings.Contains(string(b), "no export data") || strings.Contains(string(b), "unsupported version") {
			t.Skipf("toolchain cannot feed the vettool protocol here: %v\n%s", err, b)
		}
		t.Fatalf("go vet -vettool: %v\n%s", err, b)
	}

	// And it must still *report* through vet: a broken file in a throwaway
	// module would need network for go.mod resolution, so instead assert
	// the tool's unit-checker honors -V=full (the cache handshake).
	out := run(t, tools["sgvet"], "-V=full")
	if !strings.Contains(out, "sgvet version") {
		t.Fatalf("-V=full handshake: %q", out)
	}
}
