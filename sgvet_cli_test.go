package repro

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// goldenCompare checks got against the golden file, after normalizing
// the repository root to $ROOT. UPDATE_GOLDEN=1 rewrites the golden.
func goldenCompare(t *testing.T, goldenPath, got string) {
	t.Helper()
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	normalized := strings.ReplaceAll(got, root, "$ROOT")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(normalized), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if normalized != string(want) {
		t.Errorf("%s mismatch (UPDATE_GOLDEN=1 to accept)\n--- want ---\n%s\n--- got ---\n%s",
			goldenPath, want, normalized)
	}
}

// TestSgcAnalyzeJSONGolden pins the stable JSON schema of `sgc analyze
// -json` in both modes, and with it the PR's acceptance property: the
// fixture's viaHelper UDF breaks its neighbor traversal inside a helper
// function, which the syntactic pass cannot see (loop_carried=false,
// instrumented=not-needed) and the typed pass must (loop_carried=true
// with an uncovered inter_break, instrumented=no).
func TestSgcAnalyzeJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "sgc")

	syn := run(t, tools["sgc"], "analyze", "-json", "testdata/sgc/udfpkg/udf.go")
	goldenCompare(t, filepath.Join("testdata", "sgc", "syntactic.golden.json"), syn)

	typed := run(t, tools["sgc"], "analyze", "-typed", "-json", "testdata/sgc/udfpkg")
	goldenCompare(t, filepath.Join("testdata", "sgc", "typed.golden.json"), typed)

	// Beyond byte equality, assert the semantic divergence directly so
	// the property survives schema-motivated golden updates.
	type doc struct {
		Mode     string `json:"mode"`
		Packages []struct {
			Funcs []struct {
				Name        string `json:"name"`
				LoopCarried bool   `json:"loop_carried"`
				Inst        string `json:"instrumented"`
				InterBreaks []struct {
					Callee  string `json:"callee"`
					Covered bool   `json:"covered"`
				} `json:"inter_breaks"`
			} `json:"funcs"`
		} `json:"packages"`
	}
	var sd, td doc
	if err := json.Unmarshal([]byte(syn), &sd); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(typed), &td); err != nil {
		t.Fatal(err)
	}
	find := func(d doc, name string) (loopCarried bool, inst string, helpers []string) {
		for _, p := range d.Packages {
			for _, f := range p.Funcs {
				if f.Name == name {
					for _, ib := range f.InterBreaks {
						helpers = append(helpers, ib.Callee)
					}
					return f.LoopCarried, f.Inst, helpers
				}
			}
		}
		t.Fatalf("func %s not in %s report", name, d.Mode)
		return
	}
	if lc, inst, _ := find(sd, "viaHelper"); lc || inst != "not-needed" {
		t.Fatalf("syntactic pass should miss the helper break: loop_carried=%v instrumented=%s", lc, inst)
	}
	if lc, inst, helpers := find(td, "viaHelper"); !lc || inst != "no" || len(helpers) != 1 || helpers[0] != "firstActive" {
		t.Fatalf("typed pass must see the helper break: loop_carried=%v instrumented=%s helpers=%v", lc, inst, helpers)
	}
}

// TestSgvetCLI runs the standalone linter: clean over the repository
// (exit 0), and findings with exit 1 + the vet line format over a
// deliberately broken fixture package.
func TestSgvetCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "sgvet")

	// The tree itself must be clean — this is the same gate `make lint`
	// enforces.
	out := run(t, tools["sgvet"], "./...")
	if strings.TrimSpace(out) != "" {
		t.Fatalf("sgvet not clean over the repository:\n%s", out)
	}

	// A broken fixture: uncovered break → exit 1, file:line:col format.
	dir := t.TempDir()
	src := `package broken

import (
	"repro/internal/core"
	"repro/internal/graph"
)

var frontier interface{ Get(int) bool }

func udf(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	for _, u := range srcs {
		ctx.Edge()
		if frontier.Get(int(u)) {
			break
		}
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(tools["sgvet"], dir)
	cmd.Dir = "." // module root: the loader resolves repro/... imports from here
	b, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1 on findings, got %v\n%s", err, b)
	}
	outStr := string(b)
	if !strings.Contains(outStr, "broken.go:14:") || !strings.Contains(outStr, "EmitDep") || !strings.Contains(outStr, "(depbreak)") {
		t.Fatalf("diagnostic format:\n%s", outStr)
	}

	// -json mode emits the same finding machine-readably.
	cmd = exec.Command(tools["sgvet"], "-json", dir)
	b, _ = cmd.CombinedOutput()
	var diags []struct {
		Analyzer string `json:"analyzer"`
		Line     int    `json:"line"`
	}
	if err := json.Unmarshal(b, &diags); err != nil {
		t.Fatalf("sgvet -json output not JSON: %v\n%s", err, b)
	}
	if len(diags) != 1 || diags[0].Analyzer != "depbreak" || diags[0].Line != 14 {
		t.Fatalf("json diagnostics: %+v", diags)
	}

	// Unknown analyzer name is a usage error.
	cmd = exec.Command(tools["sgvet"], "-c", "nosuch", "./...")
	if err := cmd.Run(); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}

// TestSgvetVettool exercises the `go vet -vettool` protocol over a
// package with a known suppressed-but-present invariant surface
// (internal/server) and over the whole repository. The protocol depends
// on the toolchain writing export data; if this environment's go vet
// cannot run the tool at all, the test skips with the reason — the
// standalone mode above is the supported gate.
func TestSgvetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "sgvet")

	cmd := exec.Command("go", "vet", "-vettool="+tools["sgvet"], "./internal/server/...", "./internal/obs/...")
	cmd.Env = os.Environ()
	b, err := cmd.CombinedOutput()
	if err != nil {
		if strings.Contains(string(b), "no export data") || strings.Contains(string(b), "unsupported version") {
			t.Skipf("toolchain cannot feed the vettool protocol here: %v\n%s", err, b)
		}
		t.Fatalf("go vet -vettool: %v\n%s", err, b)
	}

	// And it must still *report* through vet: a broken file in a throwaway
	// module would need network for go.mod resolution, so instead assert
	// the tool's unit-checker honors -V=full (the cache handshake).
	out := run(t, tools["sgvet"], "-V=full")
	if !strings.Contains(out, "sgvet version") {
		t.Fatalf("-V=full handshake: %q", out)
	}
}
