package repro

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the sgserve process-level acceptance path (`make
// serve-smoke`): start the daemon on a random port, verify an uncached
// query computes, the identical query hits the cache, an over-capacity
// burst is shed with 429 + Retry-After, and SIGTERM drains cleanly.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "sgserve")

	cmd := exec.Command(tools["sgserve"],
		"-graph", "g=rmat:10,8,1", "-addr", "127.0.0.1:0",
		"-max-inflight", "1", "-max-queue", "0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	errText := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(stderr)
		errText <- string(b)
	}()

	// The startup line carries the resolved :0 port.
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("no startup line: %v (stderr: %s)", err, <-errText)
	}
	idx := strings.Index(line, "http://")
	if idx < 0 {
		t.Fatalf("startup line %q has no URL", line)
	}
	base := strings.TrimSpace(line[idx:])

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	// 1. Uncached query computes.
	resp, body := get("/query?graph=g&algo=bfs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("uncached query: %d %s", resp.StatusCode, body)
	}
	var first struct {
		Cached bool `json:"cached"`
		Result struct {
			Reached int `json:"reached"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &first); err != nil || first.Cached || first.Result.Reached == 0 {
		t.Fatalf("uncached response (err=%v): %s", err, body)
	}

	// 2. The identical query is served from cache.
	resp, body = get("/query?graph=g&algo=bfs")
	var second struct {
		Cached bool `json:"cached"`
	}
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &second) != nil || !second.Cached {
		t.Fatalf("cached query: %d %s", resp.StatusCode, body)
	}

	// 3. Over capacity: with one execution slot and no queue, a burst of
	// slow uncached queries must shed at least one request with 429 and
	// a Retry-After hint. Cache hits stay unaffected.
	type shot struct {
		code       int
		retryAfter string
	}
	shots := make(chan shot, 8)
	for i := 0; i < cap(shots); i++ {
		go func() {
			resp, err := http.Get(base + "/query?graph=g&algo=pagerank&iters=40&no_cache=1")
			if err != nil {
				shots <- shot{code: -1}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			shots <- shot{resp.StatusCode, resp.Header.Get("Retry-After")}
		}()
	}
	var shed, served int
	for i := 0; i < cap(shots); i++ {
		s := <-shots
		switch s.code {
		case http.StatusOK:
			served++
		case http.StatusTooManyRequests:
			shed++
			if s.retryAfter == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("burst request got %d", s.code)
		}
	}
	if served == 0 || shed == 0 {
		t.Fatalf("burst: served=%d shed=%d, want both > 0", served, shed)
	}

	// 4. statusz shows the traffic and the cache hit.
	resp, body = get("/statusz")
	var st struct {
		Cache struct {
			Hits    int64   `json:"hits"`
			HitRate float64 `json:"hit_rate"`
		} `json:"cache"`
		Requests struct {
			Rejected int64 `json:"rejected"`
		} `json:"requests"`
	}
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &st) != nil {
		t.Fatalf("statusz: %d %s", resp.StatusCode, body)
	}
	if st.Cache.Hits == 0 || st.Cache.HitRate <= 0 || st.Requests.Rejected == 0 {
		t.Fatalf("statusz counters: %s", body)
	}

	// 5. SIGTERM drains cleanly: process exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sgserve exit after SIGTERM: %v (stderr: %s)", err, <-errText)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sgserve did not exit after SIGTERM")
	}
	if se := <-errText; !strings.Contains(se, "drained cleanly") {
		t.Fatalf("stderr missing drain confirmation:\n%s", se)
	}
}
