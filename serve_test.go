package repro

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon launches bin with args, waits for a stdout startup line,
// and returns that line, a stderr drain channel, and a wait function.
// wait reaps the process only after the stderr reader hit EOF —
// calling cmd.Wait directly would race the reader for the pipe (Wait
// closes it, discarding unread output). The process is killed via
// t.Cleanup; callers that shut it down deliberately should wait()
// themselves first.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string, chan string, func() error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	errText := make(chan string, 1)
	readDone := make(chan struct{})
	go func() {
		b, _ := io.ReadAll(stderr)
		errText <- string(b)
		close(readDone)
	}()
	wait := func() error {
		<-readDone
		return cmd.Wait()
	}
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("%s: no startup line: %v (stderr: %s)", bin, err, <-errText)
	}
	return cmd, strings.TrimSpace(line), errText, wait
}

// TestServeDistSmoke is the distributed-serving acceptance path (`make
// serve-dist-smoke`): two real sgworker processes plus an sgserve
// front-end pointed at them with -workers, then one query per engine
// mode verified bit-identical between the remote (3-process TCP ring)
// and local (in-process simulated cluster) providers.
func TestServeDistSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "sgserve", "sgworker")

	// Two worker daemons on ephemeral control ports. Handles are kept so
	// the restart phase below can kill and relaunch one.
	var roster []string
	var workerCmds []*exec.Cmd
	for i := 0; i < 2; i++ {
		wcmd, line, errText, _ := startDaemon(t, tools["sgworker"], "-addr", "127.0.0.1:0")
		const prefix = "sgworker: control on "
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("sgworker startup line %q (stderr: %s)", line, <-errText)
		}
		roster = append(roster, strings.TrimPrefix(line, prefix))
		workerCmds = append(workerCmds, wcmd)
	}

	// The front-end is node 0 of a 3-process ring. Probe knobs are
	// tightened so the restart phase sees state transitions in hundreds
	// of milliseconds rather than seconds.
	cmd, line, errText, wait := startDaemon(t, tools["sgserve"],
		"-graph", "g=rmat:10,8,1", "-addr", "127.0.0.1:0",
		"-workers", strings.Join(roster, ","),
		"-probe-interval", "100ms", "-probe-timeout", "500ms",
		"-probe-dead-after", "2", "-probe-backoff-cap", "300ms")
	idx := strings.Index(line, "http://")
	if idx < 0 {
		t.Fatalf("sgserve startup line %q has no URL (stderr: %s)", line, <-errText)
	}
	base := line[idx:]

	query := func(params string) (int, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Get(base + "/query?" + params)
		if err != nil {
			t.Fatalf("GET %s: %v", params, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %s: %d %s", params, resp.StatusCode, b)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatalf("query %s: %v in %s", params, err, b)
		}
		return resp.StatusCode, m
	}

	// One query per engine mode, each algorithm checked remote-vs-local.
	// no_cache keeps every request an actual engine run (the cache would
	// otherwise serve the second provider the first provider's result and
	// prove nothing).
	for _, mode := range []string{"symplegraph", "gemini"} {
		for _, algo := range []string{"bfs", "sssp", "kcore"} {
			q := "graph=g&algo=" + algo + "&mode=" + mode + "&no_cache=1"
			_, remote := query(q + "&provider=remote")
			_, local := query(q + "&provider=local")
			if string(remote["provider"]) != `"remote"` {
				t.Fatalf("%s %s: provider field %s, want remote", mode, algo, remote["provider"])
			}
			if string(local["provider"]) != `"local"` {
				t.Fatalf("%s %s: provider field %s, want local", mode, algo, local["provider"])
			}
			if string(remote["result"]) != string(local["result"]) {
				t.Fatalf("%s %s: remote result %s != local %s", mode, algo, remote["result"], local["result"])
			}
		}
	}

	// With -workers the remote provider is the default.
	_, def := query("graph=g&algo=bfs&no_cache=1")
	if string(def["provider"]) != `"remote"` {
		t.Fatalf("default provider %s, want remote", def["provider"])
	}

	// Restart phase: kill one sgworker process and watch the fleet
	// section of /statusz track it through dead and, after a relaunch on
	// the same port, back to healthy — all without restarting sgserve.
	victim := roster[1]
	workerState := func() (string, int) {
		t.Helper()
		resp, err := http.Get(base + "/statusz")
		if err != nil {
			t.Fatalf("GET /statusz: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		var st struct {
			Fleet map[string]struct {
				Healthy int `json:"healthy"`
				Workers []struct {
					Addr  string `json:"addr"`
					State string `json:"state"`
				} `json:"workers"`
			} `json:"fleet"`
		}
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("statusz: %v in %s", err, b)
		}
		fs, ok := st.Fleet["remote"]
		if !ok {
			t.Fatalf("statusz has no remote fleet section: %s", b)
		}
		for _, w := range fs.Workers {
			if w.Addr == victim {
				return w.State, fs.Healthy
			}
		}
		t.Fatalf("victim %s missing from fleet: %s", victim, b)
		return "", 0
	}
	waitState := func(want string, healthy int) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			state, h := workerState()
			if state == want && h == healthy {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("victim never reached %s/healthy=%d (at %s/%d)", want, healthy, state, h)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	workerCmds[1].Process.Kill()
	workerCmds[1].Wait()
	waitState("dead", 1)

	// Down a worker, queries still answer — flagged degraded, same bits.
	q := "graph=g&algo=bfs&mode=symplegraph&no_cache=1"
	_, local := query(q + "&provider=local")
	_, deg := query(q + "&provider=remote")
	if string(deg["degraded"]) != "true" {
		t.Fatalf("survivor-roster response not degraded: %v", deg)
	}
	if string(deg["result"]) != string(local["result"]) {
		t.Fatalf("degraded result %s != local %s", deg["result"], local["result"])
	}

	// Relaunch on the same control port; the roster re-admits it.
	_, wline, werr, _ := startDaemon(t, tools["sgworker"], "-addr", victim)
	if !strings.Contains(wline, victim) {
		t.Fatalf("restarted sgworker line %q (stderr: %s)", wline, <-werr)
	}
	waitState("healthy", 2)

	// Full width again: queries succeed and eventually drop the degraded
	// flag, still bit-identical with the local provider.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, after := query(q + "&provider=remote")
		if string(after["result"]) != string(local["result"]) {
			t.Fatalf("post-rejoin result %s != local %s", after["result"], local["result"])
		}
		if string(after["degraded"]) != "true" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never regained full width after worker rejoin")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// SIGTERM drains the front-end cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sgserve exit after SIGTERM: %v (stderr: %s)", err, <-errText)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sgserve did not exit after SIGTERM")
	}
}

// TestServeSmoke is the sgserve process-level acceptance path (`make
// serve-smoke`): start the daemon on a random port, verify an uncached
// query computes, the identical query hits the cache, an over-capacity
// burst is shed with 429 + Retry-After, and SIGTERM drains cleanly.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "sgserve")

	// The startup line carries the resolved :0 port.
	cmd, line, errText, wait := startDaemon(t, tools["sgserve"],
		"-graph", "g=rmat:10,8,1", "-addr", "127.0.0.1:0",
		"-max-inflight", "1", "-max-queue", "0")
	idx := strings.Index(line, "http://")
	if idx < 0 {
		t.Fatalf("startup line %q has no URL", line)
	}
	base := line[idx:]

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	// 1. Uncached query computes.
	resp, body := get("/query?graph=g&algo=bfs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("uncached query: %d %s", resp.StatusCode, body)
	}
	var first struct {
		Cached bool `json:"cached"`
		Result struct {
			Reached int `json:"reached"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &first); err != nil || first.Cached || first.Result.Reached == 0 {
		t.Fatalf("uncached response (err=%v): %s", err, body)
	}

	// 2. The identical query is served from cache.
	resp, body = get("/query?graph=g&algo=bfs")
	var second struct {
		Cached bool `json:"cached"`
	}
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &second) != nil || !second.Cached {
		t.Fatalf("cached query: %d %s", resp.StatusCode, body)
	}

	// 3. Over capacity: with one execution slot and no queue, a burst of
	// slow uncached queries must shed at least one request with 429 and
	// a Retry-After hint. Cache hits stay unaffected.
	type shot struct {
		code       int
		retryAfter string
	}
	shots := make(chan shot, 8)
	for i := 0; i < cap(shots); i++ {
		go func() {
			resp, err := http.Get(base + "/query?graph=g&algo=pagerank&iters=40&no_cache=1")
			if err != nil {
				shots <- shot{code: -1}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			shots <- shot{resp.StatusCode, resp.Header.Get("Retry-After")}
		}()
	}
	var shed, served int
	for i := 0; i < cap(shots); i++ {
		s := <-shots
		switch s.code {
		case http.StatusOK:
			served++
		case http.StatusTooManyRequests:
			shed++
			if s.retryAfter == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("burst request got %d", s.code)
		}
	}
	if served == 0 || shed == 0 {
		t.Fatalf("burst: served=%d shed=%d, want both > 0", served, shed)
	}

	// 4. statusz shows the traffic and the cache hit.
	resp, body = get("/statusz")
	var st struct {
		Cache struct {
			Hits    int64   `json:"hits"`
			HitRate float64 `json:"hit_rate"`
		} `json:"cache"`
		Requests struct {
			Rejected int64 `json:"rejected"`
		} `json:"requests"`
	}
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &st) != nil {
		t.Fatalf("statusz: %d %s", resp.StatusCode, body)
	}
	if st.Cache.Hits == 0 || st.Cache.HitRate <= 0 || st.Requests.Rejected == 0 {
		t.Fatalf("statusz counters: %s", body)
	}

	// 5. SIGTERM drains cleanly: process exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sgserve exit after SIGTERM: %v (stderr: %s)", err, <-errText)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sgserve did not exit after SIGTERM")
	}
	if se := <-errText; !strings.Contains(se, "drained cleanly") {
		t.Fatalf("stderr missing drain confirmation:\n%s", se)
	}
}
