package repro

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildTools compiles the repository's CLIs once into a temp dir and
// returns their paths.
func buildTools(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := map[string]string{}
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		out[name] = bin
	}
	return out
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	b, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, b)
	}
	return string(b)
}

// TestCLIPipeline drives the full tool chain: generate a graph with
// sggen, run algorithms over it with symplegraph, and analyze/instrument
// a UDF with sgc.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "sggen", "symplegraph", "sgc")
	dir := t.TempDir()

	// 1. Generate a binary graph.
	graphPath := filepath.Join(dir, "g.sg")
	run(t, tools["sggen"], "-type", "rmat", "-scale", "9", "-ef", "8", "-seed", "3",
		"-format", "binary", "-out", graphPath)
	if fi, err := os.Stat(graphPath); err != nil || fi.Size() == 0 {
		t.Fatalf("graph file: %v", err)
	}

	// 2. Run BFS and K-core over it in both modes.
	for _, mode := range []string{"gemini", "symplegraph"} {
		out := run(t, tools["symplegraph"], "-graph", graphPath, "-algo", "bfs",
			"-nodes", "4", "-mode", mode)
		if !strings.Contains(out, "bfs: root=") || !strings.Contains(out, "edges traversed:") {
			t.Fatalf("mode %s output:\n%s", mode, out)
		}
		if mode == "gemini" && !strings.Contains(out, "dependency=0B") {
			t.Fatalf("gemini sent dependency bytes:\n%s", out)
		}
	}
	out := run(t, tools["symplegraph"], "-graph", graphPath, "-algo", "kcore", "-k", "4", "-nodes", "4")
	if !strings.Contains(out, "kcore: k=4") {
		t.Fatalf("kcore output:\n%s", out)
	}

	// 3. Analyze and instrument a UDF.
	udf := filepath.Join(dir, "udf.go")
	src := `package udf

import (
	"repro/internal/core"
	"repro/internal/graph"
)

func signal(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	for _, u := range srcs {
		if frontier.Get(int(u)) {
			ctx.Emit(uint32(u))
			break
		}
	}
}
`
	if err := os.WriteFile(udf, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	analysis := run(t, tools["sgc"], "analyze", udf)
	if !strings.Contains(analysis, "loop-carried dependency") {
		t.Fatalf("analysis output:\n%s", analysis)
	}
	outPath := filepath.Join(dir, "udf_instrumented.go")
	run(t, tools["sgc"], "instrument", "-o", outPath, udf)
	instrumented, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(instrumented), "ctx.EmitDep()") {
		t.Fatalf("instrumented output:\n%s", instrumented)
	}
}

// TestCLITextFormatRoundTrip checks sggen's text output parses.
func TestCLITextFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "sggen")
	out := run(t, tools["sggen"], "-type", "grid", "-rows", "4", "-cols", "4", "-format", "text")
	if !strings.Contains(out, "# vertices 16") {
		t.Fatalf("text output:\n%s", out)
	}
}

// TestCLITraceOutput runs BFS with -trace and checks the emitted file
// is a parseable Chrome trace_event document whose DenseStep/DepWait
// spans show the circulant pipeline overlapping across nodes.
func TestCLITraceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "symplegraph")
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	out := run(t, tools["symplegraph"], "-algo", "bfs", "-rmat", "10,8,3",
		"-nodes", "4", "-mode", "symplegraph", "-buffers", "2",
		"-trace", tracePath, "-v")
	if !strings.Contains(out, "bfs: root=") || !strings.Contains(out, "phase node") {
		t.Fatalf("run output:\n%s", out)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	type span struct {
		tid     int
		ts, dur float64
	}
	var dense, depWait []span
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case "DenseStep":
			dense = append(dense, span{ev.Tid, ev.Ts, ev.Dur})
		case "DepWait":
			depWait = append(depWait, span{ev.Tid, ev.Ts, ev.Dur})
		}
	}
	if len(dense) == 0 || len(depWait) == 0 {
		t.Fatalf("trace has %d DenseStep and %d DepWait spans", len(dense), len(depWait))
	}
	// The circulant schedule runs dense steps on all nodes concurrently:
	// some node's DenseStep must overlap another node's DenseStep in
	// wall time (DepWait spans nest inside them).
	overlap := false
	for _, a := range dense {
		for _, b := range dense {
			if a.tid != b.tid && a.ts < b.ts+b.dur && b.ts < a.ts+a.dur {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Fatal("no cross-node DenseStep overlap in trace")
	}
}

// TestCLIMultiProcessTCP launches two symplegraph processes forming a
// real TCP cluster — the paper's deployment model with OS processes as
// machines.
func TestCLIMultiProcessTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "symplegraph")

	// Reserve two loopback ports.
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	addrList := strings.Join(addrs, ",")

	outs := make([]string, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cmd := exec.Command(tools["symplegraph"],
				"-algo", "mis", "-rmat", "9,8,5", "-mode", "symplegraph",
				"-tcp-id", fmt.Sprint(i), "-tcp-addrs", addrList)
			b, err := cmd.CombinedOutput()
			outs[i], errs[i] = string(b), err
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("process %d: %v\n%s", i, errs[i], outs[i])
		}
	}
	// Node 0 holds the gathered result; both report traffic.
	if !strings.Contains(outs[0], "mis: size=") {
		t.Fatalf("node 0 output:\n%s", outs[0])
	}
	for i := 0; i < 2; i++ {
		if !strings.Contains(outs[i], "communication: update=") {
			t.Fatalf("node %d output:\n%s", i, outs[i])
		}
	}
	// The two processes computed the same MIS rule; sizes match because
	// node 1 prints its partial view's count only for its masters...
	// assert instead that node 0's size is positive.
	if strings.Contains(outs[0], "mis: size=0 ") {
		t.Fatalf("node 0 found empty MIS:\n%s", outs[0])
	}
}
