// Package udfpkg is the golden fixture for `sgc analyze -json`: one
// fully instrumented UDF, and one whose neighbor traversal exits early
// inside a helper function — a loop-carried dependency only the typed
// pass (-typed) can see, because the syntactic pass analyzes one
// function at a time.
package udfpkg

import (
	"repro/internal/core"
	"repro/internal/graph"
)

var frontier interface{ Get(int) bool }

func instrumented(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	for _, u := range srcs {
		ctx.Edge()
		if frontier.Get(int(u)) {
			ctx.EmitDep()
			break
		}
	}
}

func viaHelper(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	if firstActive(srcs) >= 0 {
		ctx.Emit(uint32(dst))
	}
}

func firstActive(srcs []graph.VertexID) int {
	for i, u := range srcs {
		if frontier.Get(int(u)) {
			return i
		}
	}
	return -1
}
