# Tier-1 verification gate: build everything, vet, race-test the engine
# and transport, run the seeded chaos soak, then run the full suite
# (which includes the CLI trace smoke test).
.PHONY: verify build test race smoke chaos

verify: build race chaos test

build:
	go build ./...
	go vet ./...

race:
	go test -race -count=1 ./internal/comm/... ./internal/core/...

test:
	go test ./...

# Seeded fault-injection soak: crash/recovery sweeps over seeds, crash
# points and cluster sizes, under the race detector. Deterministic and
# fast (well under a minute).
chaos:
	go test -race -count=1 -run 'Chaos|Fault|Stall|Recovery|Checkpoint' ./internal/algorithms ./internal/core ./internal/comm

# The -trace acceptance path on its own, for quick iteration.
smoke:
	go test -run TestCLITraceOutput -count=1 .
