# Tier-1 verification gate: build everything, vet, lint the project
# invariants with sgvet, race-test the engine, transport and serving
# layer, run the seeded chaos soak, the sgserve process smoke test, then
# the full suite (which includes the CLI trace smoke test and the
# sustained serving load test).
.PHONY: verify build vet lint lint-check test race smoke serve-smoke serve-dist-smoke chaos fleet-chaos mutate-chaos bench-baseline bench-check

verify: build lint lint-check race chaos fleet-chaos mutate-chaos serve-smoke serve-dist-smoke test

build:
	go build ./...
	go vet ./...

vet:
	go vet ./...

# Project-invariant lint: the full sgvet suite (nine analyzers; the
# flow-sensitive engine backs bufown, lockorder and leakgo) over the
# whole module, with the per-analyzer wall-time report and a JSON
# findings artifact for `make verify` to consume. Exit 1 on findings —
# or on an unjustified //sgvet:ignore — fails the gate.
lint:
	go run ./cmd/sgvet -times -artifact sgvet-findings.json ./...
	go run ./cmd/sgvet -audit ./...

# Verify-side consumption of the lint artifact: it must exist, parse,
# cover every analyzer in the current suite, record zero findings, and
# justify every suppression.
lint-check:
	go run ./cmd/sgvet -check-artifact sgvet-findings.json

# Perf baseline: run the deterministic 8-algorithm sweep and append the
# next BENCH_<n>.json to the committed trajectory (the first invocation
# writes BENCH_0.json from the legacy data plane and BENCH_1.json from
# the current one, in a single run).
bench-baseline:
	go run ./cmd/sgbench -baseline

# Regression gate: re-run the sweep and fail if engine seconds (above
# the 50ms noise floor) or allocs/op regressed >10% vs the newest
# committed BENCH_<n>.json.
bench-check:
	go run ./cmd/sgbench -bench-check

race:
	go test -race -count=1 ./internal/comm/... ./internal/core/... ./internal/mutate/... ./internal/server/...

test:
	go test ./...

# Seeded fault-injection soak: crash/recovery sweeps over seeds, crash
# points and cluster sizes, under the race detector. Deterministic and
# fast (well under a minute).
chaos:
	go test -race -count=1 -run 'Chaos|Fault|Stall|Recovery|Checkpoint' ./internal/algorithms ./internal/core ./internal/comm

# Fleet self-healing soak: kill sgworker daemons mid-query, restart
# them on the same port, and assert the roster walks
# healthy→suspect→dead→rejoining→healthy, the pool regains full width
# without an sgserve restart, and degraded answers stay bit-identical.
fleet-chaos:
	go test -race -count=1 -run 'TestFleet' ./internal/server

# Dynamic-graph chaos gate: kill a worker while mutation batches
# commit, assert every epoch a worker serves is exactly the front-end's
# version (remote answers bit-identical to local at every queried
# epoch), new epochs reach survivors as verified deltas, and the
# rejoined worker returns the ring to full width on the newest epoch.
mutate-chaos:
	go test -race -count=1 -run 'TestMutateChaos|TestQueryPinnedEpochSurvivesCommit' ./internal/server

# The -trace acceptance path on its own, for quick iteration.
smoke:
	go test -run TestCLITraceOutput -count=1 .

# The sgserve process acceptance path: random port, cached + uncached +
# over-capacity queries (200/200/429), SIGTERM drain.
serve-smoke:
	go test -run TestServeSmoke -count=1 .

# The distributed serving acceptance path: two sgworker processes plus
# sgserve -workers, one query per engine mode with remote results
# checked identical to the in-process provider.
serve-dist-smoke:
	go test -run TestServeDistSmoke -count=1 .
