# Tier-1 verification gate: build everything, vet, race-test the engine
# and transport, then run the full suite (which includes the CLI trace
# smoke test).
.PHONY: verify build test race smoke

verify: build race test

build:
	go build ./...
	go vet ./...

race:
	go test -race -count=1 ./internal/core ./internal/comm

test:
	go test ./...

# The -trace acceptance path on its own, for quick iteration.
smoke:
	go test -run TestCLITraceOutput -count=1 .
