// Command sgbench regenerates the paper's evaluation tables and figures
// (§7) on laptop-scale stand-in datasets. Absolute numbers differ from
// the paper's 16-node InfiniBand cluster; the shapes — who wins, by what
// factor, where the exceptions fall — are the reproduction target
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	sgbench -all                 # every table and figure
//	sgbench -table 4 -scale 14   # just Table 4 at base scale 14
//	sgbench -figure 11 -nodes 8
//	sgbench -cost
//	sgbench -table 4 -trace t4.json -v
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cliutil"
	"repro/internal/comm"
)

func main() {
	var obsFlags cliutil.Obs
	var resilience cliutil.Resilience
	obsFlags.Register(flag.CommandLine)
	resilience.Register(flag.CommandLine)
	var (
		table   = flag.Int("table", 0, "regenerate one table (1-7)")
		figure  = flag.Int("figure", 0, "regenerate one figure (10 or 11)")
		cost    = flag.Bool("cost", false, "run the COST comparison (§7.4)")
		all     = flag.Bool("all", false, "regenerate everything")
		scale   = flag.Int("scale", 12, "base R-MAT scale for the dataset suite")
		nodes   = flag.Int("nodes", 8, "simulated cluster size")
		seed    = flag.Uint64("seed", 42, "experiment seed")
		roots   = flag.Int("bfs-roots", 4, "BFS roots averaged per cell")
		repeats = flag.Int("repeats", 3, "re-run each cell, keep fastest time")
		study   = flag.String("study", "", "extra study: partition or direction")
		export  = flag.String("export", "", "write the Table 4/5/6 matrix to a .csv or .json file")
		verbose = flag.Bool("v", false, "verbose: per-phase histogram summary after tracing runs")

		baseline   = flag.Bool("baseline", false, "run the perf baseline sweep and write the next BENCH_<n>.json")
		benchCheck = flag.Bool("bench-check", false, "re-run the baseline sweep and fail on >10% regression vs the newest BENCH_<n>.json")
		benchDir   = flag.String("bench-dir", ".", "directory holding the BENCH_<n>.json trajectory")

		loadURL    = flag.String("load", "", "load-generate against a running sgserve at this base URL")
		loadGraphs = flag.String("load-graphs", "default", "comma-separated serving graph names for -load")
		loadFor    = flag.Duration("load-duration", 5*time.Second, "how long -load sustains traffic")
		loadQPS    = flag.Int("load-clients", 8, "concurrent closed-loop clients for -load")
		loadSpread = flag.Int("load-spread", 4, "distinct parameter values per algorithm for -load (small = cache-heavy)")
		mutateMix  = flag.Int("mutate-mix", 0, "interleave this many seeded mutation batches with -load traffic (reports epoch lag and incremental-vs-scratch speedup)")
		mutateOps  = flag.Int("mutate-ops", 32, "ops per -mutate-mix batch")
	)
	flag.Parse()

	if *baseline || *benchCheck {
		if err := runBaseline(*benchDir, *benchCheck); err != nil {
			cliutil.Fatalf("sgbench", "baseline: %v", err)
		}
		return
	}

	if *loadURL != "" {
		res, err := bench.RunLoad(bench.LoadConfig{
			BaseURL:   strings.TrimSuffix(*loadURL, "/"),
			Graphs:    strings.Split(*loadGraphs, ","),
			Clients:   *loadQPS,
			Duration:  *loadFor,
			Seed:      *seed,
			Spread:    *loadSpread,
			MutateMix: *mutateMix,
			MutateOps: *mutateOps,
		})
		if err != nil {
			cliutil.Fatalf("sgbench", "load: %v", err)
		}
		res.Print(os.Stdout)
		if res.TransportErrors > 0 || res.ServerErrors() > 0 {
			os.Exit(1)
		}
		return
	}

	if err := obsFlags.Start("sgbench"); err != nil {
		cliutil.Fatalf("sgbench", "%v", err)
	}
	suite := bench.NewSuite(*scale)
	cfg := bench.Config{Nodes: *nodes, Seed: *seed, BFSRoots: *roots, Repeats: *repeats,
		Tracer: obsFlags.Tracer}
	cfg.StallTimeout = resilience.StallTimeout
	cfg.CheckpointEvery = resilience.CheckpointEvery
	cfg.MaxRestarts = resilience.MaxRestarts
	cfg.Fault = resilience.BuildPlan()
	sweep := []int{2, 4, 8, 16}

	ran := false
	emit := func(title, body string) {
		fmt.Printf("=== %s ===\n%s\n", title, body)
		ran = true
	}
	fail := func(what string, err error) {
		cliutil.Fatalf("sgbench", "%s: %v", what, err)
	}

	var matrix *bench.Matrix
	needMatrix := func() *bench.Matrix {
		if matrix == nil {
			m, err := bench.RunMatrix(suite, cfg)
			if err != nil {
				fail("matrix", err)
			}
			matrix = m
		}
		return matrix
	}

	if *all || *table == 1 {
		emit("Table 1: dataset statistics", bench.Table1(suite))
	}
	if *all || *table == 2 {
		out, err := bench.Table2(suite, cfg)
		if err != nil {
			fail("table 2", err)
		}
		emit("Table 2: K-core runtime vs K", out)
	}
	if *all || *table == 3 {
		out, err := bench.Table3(suite, cfg)
		if err != nil {
			fail("table 3", err)
		}
		emit("Table 3: large graphs", out)
	}
	if *all || *table == 4 {
		out, err := bench.Table4(suite, needMatrix(), cfg)
		if err != nil {
			fail("table 4", err)
		}
		emit("Table 4: execution time", out)
	}
	if *all || *table == 5 {
		emit("Table 5: edges traversed (normalized to |E|)", bench.Table5(suite, needMatrix()))
	}
	if *all || *table == 6 {
		emit("Table 6: communication breakdown (normalized to Gemini)", bench.Table6(suite, needMatrix()))
	}
	if *all || *table == 7 {
		out, err := bench.Table7(suite, cfg, sweep)
		if err != nil {
			fail("table 7", err)
		}
		emit("Table 7: best-performing node count (MIS)", out)
	}
	if *all || *figure == 10 {
		rows, err := bench.Figure10(suite, cfg, sweep)
		if err != nil {
			fail("figure 10", err)
		}
		emit("Figure 10: scalability (MIS/s27, normalized runtime)", bench.FormatFigure10(rows))
	}
	if *all || *figure == 11 {
		rows, err := bench.Figure11(suite, cfg)
		if err != nil {
			fail("figure 11", err)
		}
		emit("Figure 11: optimization ablation (geomean, normalized to circulant-only)", bench.FormatFigure11(rows))
		// At laptop scale, dependency frames are tiny on the default
		// interconnect; repeat the ablation on a dependency-bound link
		// where circulating them is a real cost, which is the regime
		// the paper's Figure 11 measures.
		depCfg := cfg
		depCfg.Link = &comm.LinkModel{Latency: 100 * time.Microsecond, BytesPerSecond: 1e6}
		depRows, err := bench.Figure11Algos(suite, depCfg, []bench.Algo{bench.AlgoSampling})
		if err != nil {
			fail("figure 11 (dependency-bound)", err)
		}
		emit("Figure 11 (dependency-bound: sampling on a 100µs/1MB/s link)", bench.FormatFigure11(depRows))
	}
	if *all || *cost {
		out, err := bench.COST(suite, cfg, sweep)
		if err != nil {
			fail("cost", err)
		}
		emit("COST (§7.4): single thread vs cluster (MIS/s27)", out)
	}
	switch *study {
	case "":
	case "partition":
		out, err := bench.PartitionStudy(suite, *nodes)
		if err != nil {
			fail("partition study", err)
		}
		emit("Partition study (§2.3): edge-load imbalance, outgoing vs incoming edge-cut", out)
	case "direction":
		out, err := bench.DirectionStudy(suite, cfg)
		if err != nil {
			fail("direction study", err)
		}
		emit("Direction study: BFS edges traversed under forced directions", out)
	default:
		fail("study", fmt.Errorf("unknown study %q", *study))
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fail("export", err)
		}
		defer f.Close()
		m := needMatrix()
		if strings.HasSuffix(*export, ".json") {
			err = m.WriteJSON(f)
		} else {
			err = m.WriteCSV(f)
		}
		if err != nil {
			fail("export", err)
		}
		fmt.Fprintf(os.Stderr, "sgbench: matrix exported to %s\n", *export)
		ran = true
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "sgbench: nothing selected; use -all, -table N, -figure N, -cost, -study or -export")
		os.Exit(2)
	}
	if *verbose && obsFlags.Tracer != nil {
		fmt.Println("=== Phase histograms ===")
		for _, ps := range obsFlags.Tracer.Summaries() {
			if ps.Hist.Count == 0 {
				continue
			}
			fmt.Printf("node%d %-11s count=%d p50=%v p95=%v max=%v\n",
				ps.Node, ps.Phase, ps.Hist.Count, ps.Hist.P50, ps.Hist.P95, ps.Hist.Max)
		}
	}
	if err := obsFlags.Close(); err != nil {
		cliutil.Fatalf("sgbench", "%v", err)
	}
}

// benchFiles returns the BENCH_<n>.json trajectory in dir, sorted by
// index, as (index, path) pairs.
func benchFiles(dir string) ([]int, []string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, nil, err
	}
	byIdx := map[int]string{}
	var idxs []int
	for _, m := range matches {
		name := filepath.Base(m)
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json")
		n, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		byIdx[n] = m
		idxs = append(idxs, n)
	}
	sort.Ints(idxs)
	paths := make([]string, len(idxs))
	for i, n := range idxs {
		paths[i] = byIdx[n]
	}
	return idxs, paths, nil
}

func writeBaseline(path string, rep *bench.BaselineReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runBaseline implements -baseline and -bench-check.
//
// -baseline with an empty trajectory writes BENCH_0.json from the
// legacy (pre-zero-copy) data plane and BENCH_1.json from the current
// one, in a single invocation, so the pair is directly comparable. With
// an existing trajectory it appends BENCH_<n+1>.json from the current
// tree.
//
// -bench-check re-runs the sweep with the newest committed file's
// scale/seed and exits nonzero if engine seconds or allocs/op regressed
// by more than 10%.
func runBaseline(dir string, check bool) error {
	idxs, paths, err := benchFiles(dir)
	if err != nil {
		return err
	}

	if check {
		if len(paths) == 0 {
			return fmt.Errorf("no BENCH_<n>.json in %s to check against", dir)
		}
		newest := paths[len(paths)-1]
		f, err := os.Open(newest)
		if err != nil {
			return err
		}
		prev, err := bench.ReadBaseline(f)
		f.Close()
		if err != nil {
			return err
		}
		cur, err := bench.RunBaseline(bench.BaselineConfig{Scale: prev.Scale, Seed: prev.Seed})
		if err != nil {
			return err
		}
		regressions := bench.CompareBaselines(prev, cur, 0.10)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "sgbench: %d regression(s) vs %s:\n", len(regressions), newest)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("bench-check: no regressions vs %s (%d cells)\n", newest, len(cur.Cells))
		return nil
	}

	if len(idxs) == 0 {
		legacy, err := bench.RunBaseline(bench.BaselineConfig{LegacyDataPlane: true})
		if err != nil {
			return err
		}
		if err := writeBaseline(filepath.Join(dir, "BENCH_0.json"), legacy); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_0.json (legacy data plane)")
		cur, err := bench.RunBaseline(bench.BaselineConfig{})
		if err != nil {
			return err
		}
		if err := writeBaseline(filepath.Join(dir, "BENCH_1.json"), cur); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_1.json (zero-copy data plane)")
		return nil
	}

	next := idxs[len(idxs)-1] + 1
	cur, err := bench.RunBaseline(bench.BaselineConfig{})
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next))
	if err := writeBaseline(path, cur); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", filepath.Base(path))
	return nil
}
