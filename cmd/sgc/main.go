// Command sgc is the SympleGraph UDF analyzer and instrumenter (paper
// §4), the Go counterpart of the paper's clang-LibTooling prototype. It
// analyzes dense-signal UDFs for loop-carried dependency and performs the
// source-to-source transformation that inserts the framework's
// dependency-communication primitives.
//
// Usage:
//
//	sgc analyze udf.go            # print the dependency report
//	sgc analyze -r ./pkg          # analyze every .go file under a directory
//	sgc analyze -typed ./pkg      # type-resolved analysis (whole package,
//	                              # aliased contexts, helper breaks)
//	sgc analyze -json udf.go      # machine-readable report (stable schema)
//	sgc instrument udf.go         # print instrumented source to stdout
//	sgc instrument -w udf.go      # rewrite the file in place
//	sgc instrument -o out.go udf.go
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analyzer"
	"repro/internal/analyzer/typed"
	"repro/internal/cliutil"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	mode := os.Args[1]
	fs := flag.NewFlagSet(mode, flag.ExitOnError)
	write := fs.Bool("w", false, "rewrite files in place (instrument)")
	out := fs.String("o", "", "output path (instrument; default stdout)")
	recursive := fs.Bool("r", false, "treat arguments as directories (analyze)")
	verbose := fs.Bool("v", false, "verbose: include files without signal UDFs, print reports while instrumenting")
	useTyped := fs.Bool("typed", false, "type-resolved analysis: load whole packages, resolve aliases and helper calls (analyze)")
	asJSON := fs.Bool("json", false, "emit the report as JSON (analyze)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatalf("%v", err)
	}
	files := fs.Args()
	if len(files) == 0 {
		usage()
	}

	switch mode {
	case "analyze":
		if *useTyped || *asJSON {
			analyzeDocument(files, *useTyped, *asJSON, *verbose)
			return
		}
		if *recursive {
			for _, dir := range files {
				reports, err := analyzer.AnalyzeDir(dir)
				if err != nil {
					fatalf("%v", err)
				}
				for _, fr := range reports {
					if len(fr.Report.Funcs) == 0 {
						if *verbose {
							fmt.Printf("== %s ==\n(no signal UDFs)\n", fr.Path)
						}
						continue
					}
					fmt.Printf("== %s ==\n%s", fr.Path, fr.Report)
				}
				signals, carried := analyzer.Summary(reports)
				fmt.Printf("-- %s: %d signal UDFs, %d with loop-carried dependency\n", dir, signals, carried)
			}
			return
		}
		for _, path := range files {
			src, err := os.ReadFile(path)
			if err != nil {
				fatalf("%v", err)
			}
			rep, err := analyzer.Analyze(path, src)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("== %s ==\n%s", path, rep)
		}
	case "instrument":
		for _, path := range files {
			src, err := os.ReadFile(path)
			if err != nil {
				fatalf("%v", err)
			}
			instrumented, rep, err := analyzer.Instrument(path, src)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Fprintf(os.Stderr, "%s: %d signal UDFs, %d with loop-carried dependency\n",
				path, len(rep.Funcs), len(rep.LoopCarriedFuncs()))
			if *verbose {
				fmt.Fprintf(os.Stderr, "%s", rep)
			}
			switch {
			case *write:
				if err := os.WriteFile(path, instrumented, 0o644); err != nil {
					fatalf("%v", err)
				}
			case *out != "":
				if err := os.WriteFile(*out, instrumented, 0o644); err != nil {
					fatalf("%v", err)
				}
			default:
				os.Stdout.Write(instrumented)
			}
		}
	default:
		usage()
	}
}

// analyzeDocument is the document-shaped analyze path behind -typed and
// -json: typed whole-package analysis (with syntactic fallback for
// targets outside a module), or the forced syntactic pass when -typed is
// absent, rendered as JSON or human-readable reports.
func analyzeDocument(targets []string, useTyped, asJSON, verbose bool) {
	var doc *typed.Document
	var err error
	if useTyped {
		doc, err = typed.AnalyzeTargets(targets...)
	} else {
		doc, err = typed.AnalyzeTargetsSyntactic(targets...)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if asJSON {
		b, err := doc.MarshalIndent()
		if err != nil {
			fatalf("%v", err)
		}
		os.Stdout.Write(b)
		return
	}
	for i := range doc.Packages {
		pr := &doc.Packages[i]
		if len(pr.Funcs) == 0 && !verbose {
			continue
		}
		fmt.Printf("== %s (%s) ==\n%s", pr.ImportPath, doc.Mode, pr)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sgc analyze [-r] [-typed] [-json] [-v] target... | sgc instrument [-w] [-o out.go] [-v] file.go...")
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	cliutil.Fatalf("sgc", format, args...)
}
