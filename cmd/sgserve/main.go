// Command sgserve is the graph query service daemon: it loads and
// partitions the configured graphs once at startup, keeps a pool of
// warm clusters, and serves algorithm queries over HTTP until drained
// by SIGTERM/SIGINT.
//
// Usage:
//
//	sgserve -graph web=web.sg -graph synth=rmat:14,16,1 -addr :8090
//	sgserve -graph g=rmat:12,16,1 -addr :0 -max-inflight 4 -debug-addr :6060
//	sgserve -graph g=rmat:12,16,1 -checkpoint-dir /var/lib/sgserve \
//	        -checkpoint-every 8 -max-restarts 2 -stall-timeout 5s
//	sgserve -graph g=rmat:12,16,1 -workers 127.0.0.1:7101,127.0.0.1:7102
//
// With -workers, queries run on a distributed ring of sgworker
// processes (this daemon is node 0) instead of an in-process simulated
// cluster; provider=local on a query selects the in-process engine.
//
// Query with:
//
//	curl 'http://localhost:8090/query?graph=web&algo=bfs'
//	curl 'http://localhost:8090/query?graph=web&algo=bfs&provider=local'
//	curl 'http://localhost:8090/statusz'
//	curl 'http://localhost:8090/statusz?delta=1'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
)

// graphFlags collects repeatable -graph name=<path|rmat:scale,ef,seed>
// specs.
type graphFlags struct {
	specs []string
}

func (g *graphFlags) String() string { return strings.Join(g.specs, ",") }

func (g *graphFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=<path|rmat:scale,ef,seed>, got %q", v)
	}
	g.specs = append(g.specs, v)
	return nil
}

// load resolves every spec into a named graph.
func (g *graphFlags) load() (map[string]*graph.Graph, error) {
	if len(g.specs) == 0 {
		g.specs = []string{"default=rmat:12,16,1"}
	}
	out := make(map[string]*graph.Graph, len(g.specs))
	for _, spec := range g.specs {
		name, src, _ := strings.Cut(spec, "=")
		if name == "" || src == "" {
			return nil, fmt.Errorf("bad -graph %q: want name=<path|rmat:scale,ef,seed>", spec)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate -graph name %q", name)
		}
		var gs cliutil.GraphSpec
		if rest, ok := strings.CutPrefix(src, "rmat:"); ok {
			gs.RMAT = rest
		} else {
			gs.Path = src
		}
		gr, err := gs.Load()
		if err != nil {
			return nil, fmt.Errorf("loading -graph %s: %w", spec, err)
		}
		out[name] = gr
	}
	return out, nil
}

func main() {
	var graphs graphFlags
	var obsFlags cliutil.Obs
	var resilience cliutil.Resilience
	var fleet cliutil.Fleet
	flag.Var(&graphs, "graph", "serve this graph as name=<path|rmat:scale,ef,seed> (repeatable)")
	obsFlags.Register(flag.CommandLine)
	resilience.Register(flag.CommandLine)
	fleet.Register(flag.CommandLine)
	var (
		addr          = flag.String("addr", ":8090", "HTTP listen address (:0 picks a free port)")
		nodes         = flag.Int("nodes", 4, "simulated cluster size per query engine (local provider)")
		engineWorkers = flag.Int("engine-workers", 1, "worker goroutines per node")
		workerRoster  = flag.String("workers", "", "comma-separated sgworker control addresses (host:port,...); enables the remote provider and makes it the default")
		advertiseHost = flag.String("advertise-host", "", "host workers dial back for the data plane (default 127.0.0.1)")
		threshold     = flag.Int("threshold", core.DefaultDepThreshold, "differentiated-propagation degree threshold")
		buffers       = flag.Int("buffers", 2, "double-buffering group count")
		maxInflight   = flag.Int("max-inflight", 2, "queries executing concurrently")
		maxQueue      = flag.Int("max-queue", 0, "queries waiting for a slot before shedding with 429 (0 = 4×max-inflight)")
		cacheEntries  = flag.Int("cache-entries", 256, "result cache capacity in entries (-1 disables)")
		cacheBytes    = flag.Int64("cache-bytes", 64<<20, "result cache capacity in marshaled bytes")
		retention     = flag.Int("retention", 0, "graph epochs kept resolvable for ?epoch= pinned queries (0 = default)")
		drainWait     = flag.Duration("drain-timeout", 30*time.Second, "how long a shutdown signal waits for in-flight queries")
	)
	flag.Parse()

	loaded, err := graphs.load()
	if err != nil {
		fatalf("%v", err)
	}
	// A bad -debug-addr must kill the daemon here, not leave it running
	// without its observability surface.
	if err := obsFlags.Start("sgserve"); err != nil {
		fatalf("%v", err)
	}
	registry := obsFlags.Registry
	if registry == nil {
		registry = obs.NewRegistry()
	}

	opts := core.Options{
		NumNodes:     *nodes,
		Workers:      *engineWorkers,
		DepThreshold: *threshold,
		NumBuffers:   *buffers,
	}
	resilience.Apply(&opts)

	roster, err := cliutil.ParseHostPorts(*workerRoster)
	if err != nil {
		fatalf("-workers: %v", err)
	}

	srv, err := server.New(server.Config{
		Graphs:          loaded,
		Engine:          opts,
		MaxInflight:     *maxInflight,
		MaxQueue:        *maxQueue,
		CacheEntries:    *cacheEntries,
		CacheBytes:      *cacheBytes,
		Retention:       *retention,
		CheckpointRoot:  resilience.CheckpointDir,
		Workers:         roster,
		AdvertiseHost:   *advertiseHost,
		ProbeInterval:   fleet.ProbeInterval,
		ProbeTimeout:    fleet.ProbeTimeout,
		ProbeDeadAfter:  fleet.DeadAfter,
		ProbeBackoffCap: fleet.BackoffCap,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
		Registry: registry,
		Tracer:   obsFlags.Tracer,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if len(roster) > 0 {
		fmt.Fprintf(os.Stderr, "sgserve: remote provider enabled over %d worker(s): %s\n", len(roster), strings.Join(roster, ","))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listening on %s: %v", *addr, err)
	}
	// The resolved address line is the startup handshake: scripts (and
	// the serve-smoke test) parse it to find a :0-assigned port.
	fmt.Printf("sgserve: serving %d graph(s) on http://%s\n", len(loaded), ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "sgserve: %v received, draining (timeout %v)\n", s, *drainWait)
	case err := <-serveErr:
		fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "sgserve: %v\n", err)
		httpSrv.Close()
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "sgserve: shutdown: %v\n", err)
	}
	if err := obsFlags.Close(); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintln(os.Stderr, "sgserve: drained cleanly")
}

func fatalf(format string, args ...any) {
	cliutil.Fatalf("sgserve", format, args...)
}
