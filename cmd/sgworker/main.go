// Command sgworker is one machine of a distributed serving cluster: a
// daemon that registers a control listener, accepts engine slots from
// an sgserve front-end — receiving the graph (cached by fingerprint
// across slots) and engine options over the control protocol — and then
// executes the same algorithm dispatch as the front-end, superstep for
// superstep, over the engine's TCP data plane.
//
// Usage:
//
//	sgworker -addr 127.0.0.1:7101
//	sgworker -addr :7101 -data-host 10.0.0.7 -debug-addr :6071
//
// The debug server (via -debug-addr) exposes /healthz for liveness
// probes and worker.* counters under /debug/metrics. The daemon runs
// until SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var obsFlags cliutil.Obs
	obsFlags.Register(flag.CommandLine)
	var (
		addr     = flag.String("addr", "127.0.0.1:7101", "control listen address (:0 picks a free port)")
		dataHost = flag.String("data-host", "127.0.0.1", "host data-plane listeners bind and advertise to peers")
		slots    = flag.Int("slots", 0, "max concurrently active engine slots; further builds are rejected so the front-end schedules elsewhere (0 = unlimited)")
		verbose  = flag.Bool("v", false, "log slot lifecycle events")
	)
	flag.Parse()

	if err := obsFlags.Start("sgworker"); err != nil {
		fatalf("%v", err)
	}
	registry := obsFlags.Registry
	if registry == nil {
		registry = obs.NewRegistry()
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	d, err := server.StartWorkerDaemon(server.WorkerConfig{
		Addr:     *addr,
		DataHost: *dataHost,
		MaxSlots: *slots,
		Logf:     logf,
		Registry: registry,
	})
	if err != nil {
		fatalf("%v", err)
	}
	// The resolved address line is the startup handshake: scripts (and
	// the serve-dist-smoke test) parse it to find a :0-assigned port.
	fmt.Printf("sgworker: control on %s\n", d.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "sgworker: %v received, shutting down\n", s)
	if err := d.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "sgworker: close: %v\n", err)
	}
	if err := obsFlags.Close(); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	cliutil.Fatalf("sgworker", format, args...)
}
