// Command sgvet runs SympleGraph's invariant lint suite (package
// internal/sgvet) over the repository.
//
// Standalone usage (the supported day-to-day mode, wired into
// `make lint`):
//
//	sgvet ./...                   # whole module
//	sgvet ./internal/server/...   # a subtree
//	sgvet -c depbreak,commerr ./...
//	sgvet -json ./...             # machine-readable diagnostics
//	sgvet -times ./...            # per-analyzer wall-time report
//	sgvet -artifact lint.json ./... # findings artifact for make verify
//	sgvet -audit ./...            # list //sgvet:ignore suppressions
//
// Exit status is 0 when clean, 1 when diagnostics were reported (or,
// under -audit, when a suppression has no justification), 2 on usage
// or load errors.
//
// -audit inventories every //sgvet:ignore directive with its file:line,
// analyzer list and justification text; a suppression with an empty
// justification fails the audit, so silencing an analyzer without
// saying why cannot survive CI.
//
// -artifact writes a JSON findings artifact (per-analyzer timings,
// surviving diagnostics, and the suppression inventory);
// -check-artifact validates one — it parses, reports zero findings,
// covers the full analyzer suite, and justifies every suppression —
// which is how `make verify` consumes the `make lint` run instead of
// re-linting.
//
// sgvet also speaks enough of the `go vet -vettool` unit-checker
// protocol to be used as
//
//	go vet -vettool=$(which sgvet) ./...
//
// In that mode the Go tool hands sgvet a JSON config per package with
// pre-built export data; sgvet type-checks against it (no source
// re-resolution, see loader.LoadVetUnit) and reports findings in vet's
// file:line:col format. The protocol is best-effort: it depends on the
// toolchain writing export data for dependencies, so the standalone
// mode — which resolves everything from source — remains the mode CI
// relies on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/loader"
	"repro/internal/sgvet"
)

func main() {
	// `go vet` handshake: -V=full asks for a version string used as a
	// build-cache key; -flags asks for the tool's flag schema as JSON
	// (sgvet exposes none in vettool mode).
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			fmt.Println("sgvet version 2 (symplegraph invariant suite, flow-sensitive engine)")
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	// Unit-checker mode: a single *.cfg argument (go vet protocol).
	if args := os.Args[1:]; len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitCheck(args[0]))
	}

	fs := flag.NewFlagSet("sgvet", flag.ExitOnError)
	checks := fs.String("c", "", "comma-separated analyzers to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON")
	audit := fs.Bool("audit", false, "list //sgvet:ignore suppressions; fail on empty justifications")
	times := fs.Bool("times", false, "report per-analyzer wall time on stderr")
	artifact := fs.String("artifact", "", "write a JSON findings artifact (timings, diagnostics, suppressions) to this path")
	checkArtifact := fs.String("check-artifact", "", "validate a findings artifact written by -artifact and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: sgvet [-c analyzers] [-json] [-audit] [-times] [-artifact path] [patterns...]")
		fmt.Fprintln(os.Stderr, "       sgvet -check-artifact path")
		fmt.Fprintln(os.Stderr, "analyzers:")
		for _, a := range sgvet.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		os.Exit(2)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *checkArtifact != "" {
		os.Exit(runCheckArtifact(*checkArtifact))
	}
	analyzers, err := sgvet.ByName(*checks)
	if err != nil {
		fatalf("%v", err)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	ld, err := loader.NewLoader(loader.Config{})
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := ld.LoadPatterns(patterns...)
	if err != nil {
		fatalf("%v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "sgvet: %s: type error: %v\n", pkg.ImportPath, terr)
		}
	}

	if *audit {
		os.Exit(runAudit(pkgs))
	}

	diags, timings := sgvet.RunTimed(pkgs, analyzers)
	if *times {
		fmt.Fprintln(os.Stderr, "sgvet: per-analyzer wall time:")
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "  %-12s %8.1f ms  %d finding(s)\n", tm.Analyzer, tm.Millis, tm.Findings)
		}
	}
	if *artifact != "" {
		art := sgvet.Artifact{
			Analyzers:    timings,
			Diagnostics:  diags,
			Suppressions: sgvet.CollectSuppressions(pkgs),
		}
		// Empty lists marshal as [] rather than null: artifact consumers
		// key on list length, not presence.
		if art.Diagnostics == nil {
			art.Diagnostics = []sgvet.Diagnostic{}
		}
		if art.Suppressions == nil {
			art.Suppressions = []sgvet.Suppression{}
		}
		blob, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*artifact, append(blob, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// runAudit renders the suppression inventory and enforces the
// justification contract: every //sgvet:ignore must say why the
// invariant holds anyway.
func runAudit(pkgs []*loader.Package) int {
	sups := sgvet.CollectSuppressions(pkgs)
	if len(sups) == 0 {
		fmt.Println("sgvet audit: no suppressions")
		return 0
	}
	bad := 0
	for _, s := range sups {
		reason := s.Reason
		if reason == "" {
			reason = "<no justification>"
			bad++
		}
		fmt.Printf("%s:%d: %s — %s\n", s.File, s.Line, strings.Join(s.Analyzers, ","), reason)
	}
	fmt.Printf("sgvet audit: %d suppression(s), %d without justification\n", len(sups), bad)
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "sgvet: audit failed: %d suppression(s) have no justification\n", bad)
		return 1
	}
	return 0
}

// runCheckArtifact validates a findings artifact written by -artifact:
// it must parse, report zero findings, cover every analyzer in the
// suite (so a stale artifact from before an analyzer landed cannot
// green-light verify), and justify every suppression.
func runCheckArtifact(path string) int {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sgvet: check-artifact: %v (run `make lint` first)\n", err)
		return 1
	}
	var art sgvet.Artifact
	if err := json.Unmarshal(blob, &art); err != nil {
		fmt.Fprintf(os.Stderr, "sgvet: check-artifact: parsing %s: %v\n", path, err)
		return 1
	}
	covered := map[string]bool{}
	for _, tm := range art.Analyzers {
		covered[tm.Analyzer] = true
	}
	ok := true
	for _, a := range sgvet.All() {
		if !covered[a.Name] {
			fmt.Fprintf(os.Stderr, "sgvet: check-artifact: analyzer %s missing from %s (stale artifact?)\n", a.Name, path)
			ok = false
		}
	}
	if len(art.Diagnostics) > 0 {
		fmt.Fprintf(os.Stderr, "sgvet: check-artifact: %d finding(s) recorded in %s:\n", len(art.Diagnostics), path)
		for _, d := range art.Diagnostics {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		ok = false
	}
	for _, s := range art.Suppressions {
		if s.Reason == "" {
			fmt.Fprintf(os.Stderr, "sgvet: check-artifact: %s:%d suppression has no justification\n", s.File, s.Line)
			ok = false
		}
	}
	if !ok {
		return 1
	}
	fmt.Printf("sgvet: artifact %s ok: %d analyzers, 0 findings, %d justified suppression(s)\n", path, len(art.Analyzers), len(art.Suppressions))
	return 0
}

// vetConfig is the subset of cmd/go's vet JSON config sgvet needs
// beyond what the shared loader consumes.
type vetConfig struct {
	loader.VetConfig
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck implements one package of the vettool protocol. Returns the
// process exit code: 0 clean, 2 diagnostics (vet's convention).
func unitCheck(cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sgvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sgvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// sgvet computes no cross-package facts, but go vet requires the
	// facts file to exist for caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sgvet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pkg, err := loader.LoadVetUnit(&cfg.VetConfig)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "sgvet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	diags := sgvet.Run([]*loader.Package{pkg}, sgvet.All())
	for _, d := range diags {
		// vet's plain diagnostic format, one per line on stderr.
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", d.File, d.Line, d.Col, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func fatalf(format string, args ...any) {
	cliutil.Fatalf("sgvet", format, args...)
}
