// Command sgvet runs SympleGraph's invariant lint suite (package
// internal/sgvet) over the repository: depbreak, snapdet, commerr, and
// ctxblock.
//
// Standalone usage (the supported day-to-day mode, wired into
// `make lint`):
//
//	sgvet ./...                   # whole module
//	sgvet ./internal/server/...   # a subtree
//	sgvet -c depbreak,commerr ./...
//	sgvet -json ./...             # machine-readable diagnostics
//
// Exit status is 0 when clean, 1 when diagnostics were reported, 2 on
// usage or load errors.
//
// sgvet also speaks enough of the `go vet -vettool` unit-checker
// protocol to be used as
//
//	go vet -vettool=$(which sgvet) ./...
//
// In that mode the Go tool hands sgvet a JSON config per package with
// pre-built export data; sgvet type-checks against it (no source
// re-resolution) and reports findings in vet's file:line:col format.
// The protocol is best-effort: it depends on the toolchain writing
// export data for dependencies, so the standalone mode — which resolves
// everything from source — remains the mode CI relies on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/analyzer/typed"
	"repro/internal/cliutil"
	"repro/internal/sgvet"
)

func main() {
	// `go vet` handshake: -V=full asks for a version string used as a
	// build-cache key; -flags asks for the tool's flag schema as JSON
	// (sgvet exposes none in vettool mode).
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			fmt.Println("sgvet version 1 (symplegraph invariant suite)")
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	// Unit-checker mode: a single *.cfg argument (go vet protocol).
	if args := os.Args[1:]; len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitCheck(args[0]))
	}

	fs := flag.NewFlagSet("sgvet", flag.ExitOnError)
	checks := fs.String("c", "", "comma-separated analyzers to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: sgvet [-c analyzers] [-json] [patterns...]")
		fmt.Fprintln(os.Stderr, "analyzers:")
		for _, a := range sgvet.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		os.Exit(2)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	analyzers, err := sgvet.ByName(*checks)
	if err != nil {
		fatalf("%v", err)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := typed.NewLoader(typed.Config{})
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fatalf("%v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "sgvet: %s: type error: %v\n", pkg.ImportPath, terr)
		}
	}

	diags := sgvet.Run(pkgs, analyzers)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// vetConfig is the subset of cmd/go's vet JSON config sgvet needs.
type vetConfig struct {
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck implements one package of the vettool protocol. Returns the
// process exit code: 0 clean, 2 diagnostics (vet's convention).
func unitCheck(cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sgvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sgvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// sgvet computes no cross-package facts, but go vet requires the
	// facts file to exist for caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sgvet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pkg, err := loadUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "sgvet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	diags := sgvet.Run([]*typed.Package{pkg}, sgvet.All())
	for _, d := range diags {
		// vet's plain diagnostic format, one per line on stderr.
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", d.File, d.Line, d.Col, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// loadUnit parses and type-checks one vet unit against the toolchain's
// pre-built export data, producing the same Package shape the source
// loader yields.
func loadUnit(cfg *vetConfig) (*typed.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, path := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, path)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exportFile, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exportFile)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tcfg := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Sizes:    types.SizesFor(compiler, runtime.GOARCH),
	}
	tpkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &typed.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Filenames:  names,
		Types:      tpkg,
		Info:       info,
	}, nil
}

func fatalf(format string, args ...any) {
	cliutil.Fatalf("sgvet", format, args...)
}
