// Command symplegraph runs the paper's algorithms on a simulated
// SympleGraph cluster and reports results with the paper's metrics:
// execution time, edges traversed, and communication volume broken down
// into update and dependency traffic.
//
// Usage:
//
//	symplegraph -algo bfs -rmat 14,16,1 -nodes 8 -mode symplegraph
//	symplegraph -algo kcore -k 8 -graph web.sg -mode gemini
//	symplegraph -algo sampling -rounds 8 -nodes 4
//	symplegraph -algo bfs -rmat 14,16,1 -trace out.json -v
//	symplegraph -algo pagerank -iters 20 -debug-addr :6060
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"strings"

	"repro/internal/algorithms"
	"repro/internal/cliutil"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	var gspec cliutil.GraphSpec
	var obsFlags cliutil.Obs
	var resilience cliutil.Resilience
	gspec.Register(flag.CommandLine)
	obsFlags.Register(flag.CommandLine)
	resilience.Register(flag.CommandLine)
	var (
		algo       = flag.String("algo", "bfs", "algorithm: bfs, mis, kcore, kmeans, sampling, cc, sssp, pagerank")
		nodes      = flag.Int("nodes", 8, "simulated cluster size")
		mode       = flag.String("mode", "symplegraph", "engine mode: symplegraph or gemini")
		threshold  = flag.Int("threshold", core.DefaultDepThreshold, "differentiated-propagation degree threshold (0 = track all)")
		buffers    = flag.Int("buffers", 2, "double-buffering group count (1 = off)")
		workers    = flag.Int("workers", 1, "worker goroutines per node")
		root       = flag.Int("root", -1, "BFS/SSSP root (-1 = highest-degree vertex)")
		k          = flag.Int("k", 8, "K for K-core")
		centers    = flag.Int("centers", 0, "K-means centers (0 = sqrt(|V|))")
		iters      = flag.Int("iters", 3, "K-means outer iterations")
		rounds     = flag.Int("rounds", 4, "sampling rounds")
		seed       = flag.Uint64("seed", 42, "algorithm seed")
		symmetrize = flag.Bool("symmetrize", true, "symmetrize for undirected algorithms")
		verbose    = flag.Bool("v", false, "verbose: per-node stats, phase histograms, engine warnings")
		tcpID      = flag.Int("tcp-id", -1, "multi-process mode: this process's node ID")
		tcpAddrs   = flag.String("tcp-addrs", "", "multi-process mode: comma-separated listen addresses, one per node")
	)
	flag.Parse()

	g, err := gspec.Load()
	if err != nil {
		fatalf("%v", err)
	}
	needsUndirected := *algo == "mis" || *algo == "kcore" || *algo == "kmeans"
	if needsUndirected && *symmetrize {
		g = graph.Symmetrize(g)
	}
	if *algo == "sssp" && !g.Weighted() {
		g = graph.RandomWeights(g, 7)
	}

	m, err := cliutil.ParseMode(*mode)
	if err != nil {
		fatalf("%v", err)
	}
	if err := obsFlags.Start("symplegraph"); err != nil {
		fatalf("%v", err)
	}
	opts := core.Options{
		Mode:         m,
		DepThreshold: *threshold,
		NumBuffers:   *buffers,
		Workers:      *workers,
		Tracer:       obsFlags.Tracer,
	}
	resilience.Apply(&opts)
	if _, err := resilience.OpenCheckpointStore(&opts, false); err != nil {
		fatalf("%v", err)
	}
	var cluster *core.Cluster
	if *tcpID >= 0 {
		// Genuinely distributed: this process hosts one machine; run
		// the same command with each -tcp-id on every machine.
		addrs := strings.Split(*tcpAddrs, ",")
		if len(addrs) < 2 || *tcpID >= len(addrs) {
			fatalf("-tcp-id %d needs -tcp-addrs with at least 2 entries", *tcpID)
		}
		ln, err := net.Listen("tcp", addrs[*tcpID])
		if err != nil {
			fatalf("listening on %s: %v", addrs[*tcpID], err)
		}
		ep, err := comm.NewTCPEndpoint(comm.NodeID(*tcpID), ln, addrs)
		if err != nil {
			fatalf("joining cluster: %v", err)
		}
		defer ep.Close()
		opts.NumNodes = len(addrs)
		cluster, err = core.NewDistributedNode(g, opts, ep)
		if err != nil {
			fatalf("%v", err)
		}
		*nodes = len(addrs)
	} else {
		var err error
		opts.NumNodes = *nodes
		cluster, err = core.NewCluster(g, opts)
		if err != nil {
			fatalf("%v", err)
		}
	}
	defer cluster.Close()
	if obsFlags.Registry != nil {
		cluster.RegisterMetrics(obsFlags.Registry)
	}
	for _, warn := range cluster.Stats().Warnings {
		cliutil.Warnf("symplegraph", "%s", warn)
	}

	fmt.Printf("graph: %v  nodes: %d  mode: %v\n", g, *nodes, m)
	rootV := graph.VertexID(*root)
	if *root < 0 {
		rootV, _ = graph.LargestOutDegreeVertex(g)
	}

	switch *algo {
	case "bfs":
		res, err := algorithms.BFS(cluster, rootV)
		if err != nil {
			runFatal(err)
		}
		reached := 0
		for _, d := range res.Depth {
			if d >= 0 {
				reached++
			}
		}
		fmt.Printf("bfs: root=%d reached=%d top-down=%d bottom-up=%d\n",
			rootV, reached, res.TopDownSteps, res.BottomUpSteps)
	case "mis":
		res, err := algorithms.MIS(cluster, *seed)
		if err != nil {
			runFatal(err)
		}
		size := 0
		for _, in := range res.InMIS {
			if in {
				size++
			}
		}
		fmt.Printf("mis: size=%d rounds=%d\n", size, res.Rounds)
	case "kcore":
		res, err := algorithms.KCore(cluster, *k)
		if err != nil {
			runFatal(err)
		}
		size := 0
		for _, in := range res.InCore {
			if in {
				size++
			}
		}
		fmt.Printf("kcore: k=%d size=%d rounds=%d\n", *k, size, res.Rounds)
	case "kmeans":
		c := *centers
		if c == 0 {
			c = int(math.Sqrt(float64(g.NumVertices())))
		}
		res, err := algorithms.KMeans(cluster, c, *iters, *seed)
		if err != nil {
			runFatal(err)
		}
		fmt.Printf("kmeans: centers=%d iterations=%d distsums=%v\n", c, *iters, res.DistSums)
	case "sampling":
		res, err := algorithms.Sample(cluster, *seed, *rounds)
		if err != nil {
			runFatal(err)
		}
		fmt.Printf("sampling: rounds=%d exact-picks=%d\n", *rounds, res.ExactPicks)
	case "cc":
		labels, err := algorithms.ConnectedComponents(cluster)
		if err != nil {
			runFatal(err)
		}
		comps := map[uint32]bool{}
		for _, l := range labels {
			comps[l] = true
		}
		fmt.Printf("cc: components=%d\n", len(comps))
	case "pagerank":
		rank, err := algorithms.PageRank(cluster, *iters, 0.85)
		if err != nil {
			runFatal(err)
		}
		best, bestRank := 0, 0.0
		for v, r := range rank {
			if r > bestRank {
				best, bestRank = v, r
			}
		}
		fmt.Printf("pagerank: iterations=%d top vertex=%d rank=%.6f\n", *iters, best, bestRank)
	case "sssp":
		dist, err := algorithms.SSSP(cluster, rootV)
		if err != nil {
			runFatal(err)
		}
		reached := 0
		for _, d := range dist {
			if d < algorithms.InfDist {
				reached++
			}
		}
		fmt.Printf("sssp: root=%d reached=%d\n", rootV, reached)
	default:
		fatalf("unknown algorithm %q", *algo)
	}

	cliutil.PrintStats(os.Stdout, cluster.Stats(), g.NumEdges(), *verbose)
	resilience.PrintCounters(os.Stdout, cluster.Stats())
	if err := obsFlags.Close(); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	cliutil.Fatalf("symplegraph", format, args...)
}

// runFatal reports an algorithm run failure through the typed-error
// taxonomy: the structured context (blocked node, phase, awaited peer)
// reaches stderr and the failure class picks the exit code.
func runFatal(err error) {
	cliutil.FatalErr("symplegraph", err)
}
