// Command symplegraph runs the paper's algorithms on a simulated
// SympleGraph cluster and reports results with the paper's metrics:
// execution time, edges traversed, and communication volume broken down
// into update and dependency traffic.
//
// Usage:
//
//	symplegraph -algo bfs -rmat 14,16,1 -nodes 8 -mode symplegraph
//	symplegraph -algo kcore -k 8 -graph web.sg -mode gemini
//	symplegraph -algo sampling -rounds 8 -nodes 4
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"strconv"
	"strings"

	"repro/internal/algorithms"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "binary graph file (see sggen)")
		rmatSpec   = flag.String("rmat", "12,16,1", "generate R-MAT graph: scale,edgefactor,seed")
		algo       = flag.String("algo", "bfs", "algorithm: bfs, mis, kcore, kmeans, sampling, cc, sssp, pagerank")
		nodes      = flag.Int("nodes", 8, "simulated cluster size")
		mode       = flag.String("mode", "symplegraph", "engine mode: symplegraph or gemini")
		threshold  = flag.Int("threshold", core.DefaultDepThreshold, "differentiated-propagation degree threshold (0 = track all)")
		buffers    = flag.Int("buffers", 2, "double-buffering group count (1 = off)")
		workers    = flag.Int("workers", 1, "worker goroutines per node")
		root       = flag.Int("root", -1, "BFS/SSSP root (-1 = highest-degree vertex)")
		k          = flag.Int("k", 8, "K for K-core")
		centers    = flag.Int("centers", 0, "K-means centers (0 = sqrt(|V|))")
		iters      = flag.Int("iters", 3, "K-means outer iterations")
		rounds     = flag.Int("rounds", 4, "sampling rounds")
		seed       = flag.Uint64("seed", 42, "algorithm seed")
		symmetrize = flag.Bool("symmetrize", true, "symmetrize for undirected algorithms")
		tcpID      = flag.Int("tcp-id", -1, "multi-process mode: this process's node ID")
		tcpAddrs   = flag.String("tcp-addrs", "", "multi-process mode: comma-separated listen addresses, one per node")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *rmatSpec)
	if err != nil {
		fatalf("%v", err)
	}
	needsUndirected := *algo == "mis" || *algo == "kcore" || *algo == "kmeans"
	if needsUndirected && *symmetrize {
		g = graph.Symmetrize(g)
	}
	if *algo == "sssp" && !g.Weighted() {
		g = graph.RandomWeights(g, 7)
	}

	var m core.Mode
	switch *mode {
	case "symplegraph":
		m = core.ModeSympleGraph
	case "gemini":
		m = core.ModeGemini
	default:
		fatalf("unknown mode %q", *mode)
	}
	var cluster *core.Cluster
	if *tcpID >= 0 {
		// Genuinely distributed: this process hosts one machine; run
		// the same command with each -tcp-id on every machine.
		addrs := strings.Split(*tcpAddrs, ",")
		if len(addrs) < 2 || *tcpID >= len(addrs) {
			fatalf("-tcp-id %d needs -tcp-addrs with at least 2 entries", *tcpID)
		}
		ln, err := net.Listen("tcp", addrs[*tcpID])
		if err != nil {
			fatalf("listening on %s: %v", addrs[*tcpID], err)
		}
		ep, err := comm.NewTCPEndpoint(comm.NodeID(*tcpID), ln, addrs)
		if err != nil {
			fatalf("joining cluster: %v", err)
		}
		defer ep.Close()
		cluster, err = core.NewDistributedNode(g, core.Options{
			NumNodes:     len(addrs),
			Mode:         m,
			DepThreshold: *threshold,
			NumBuffers:   *buffers,
			Workers:      *workers,
		}, ep)
		if err != nil {
			fatalf("%v", err)
		}
		*nodes = len(addrs)
	} else {
		var err error
		cluster, err = core.NewCluster(g, core.Options{
			NumNodes:     *nodes,
			Mode:         m,
			DepThreshold: *threshold,
			NumBuffers:   *buffers,
			Workers:      *workers,
		})
		if err != nil {
			fatalf("%v", err)
		}
	}
	defer cluster.Close()

	fmt.Printf("graph: %v  nodes: %d  mode: %v\n", g, *nodes, m)
	rootV := graph.VertexID(*root)
	if *root < 0 {
		rootV, _ = graph.LargestOutDegreeVertex(g)
	}

	switch *algo {
	case "bfs":
		res, err := algorithms.BFS(cluster, rootV)
		if err != nil {
			fatalf("%v", err)
		}
		reached := 0
		for _, d := range res.Depth {
			if d >= 0 {
				reached++
			}
		}
		fmt.Printf("bfs: root=%d reached=%d top-down=%d bottom-up=%d\n",
			rootV, reached, res.TopDownSteps, res.BottomUpSteps)
	case "mis":
		res, err := algorithms.MIS(cluster, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		size := 0
		for _, in := range res.InMIS {
			if in {
				size++
			}
		}
		fmt.Printf("mis: size=%d rounds=%d\n", size, res.Rounds)
	case "kcore":
		res, err := algorithms.KCore(cluster, *k)
		if err != nil {
			fatalf("%v", err)
		}
		size := 0
		for _, in := range res.InCore {
			if in {
				size++
			}
		}
		fmt.Printf("kcore: k=%d size=%d rounds=%d\n", *k, size, res.Rounds)
	case "kmeans":
		c := *centers
		if c == 0 {
			c = int(math.Sqrt(float64(g.NumVertices())))
		}
		res, err := algorithms.KMeans(cluster, c, *iters, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("kmeans: centers=%d iterations=%d distsums=%v\n", c, *iters, res.DistSums)
	case "sampling":
		res, err := algorithms.Sample(cluster, *seed, *rounds)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("sampling: rounds=%d exact-picks=%d\n", *rounds, res.ExactPicks)
	case "cc":
		labels, err := algorithms.ConnectedComponents(cluster)
		if err != nil {
			fatalf("%v", err)
		}
		comps := map[uint32]bool{}
		for _, l := range labels {
			comps[l] = true
		}
		fmt.Printf("cc: components=%d\n", len(comps))
	case "pagerank":
		rank, err := algorithms.PageRank(cluster, *iters, 0.85)
		if err != nil {
			fatalf("%v", err)
		}
		best, bestRank := 0, 0.0
		for v, r := range rank {
			if r > bestRank {
				best, bestRank = v, r
			}
		}
		fmt.Printf("pagerank: iterations=%d top vertex=%d rank=%.6f\n", *iters, best, bestRank)
	case "sssp":
		dist, err := algorithms.SSSP(cluster, rootV)
		if err != nil {
			fatalf("%v", err)
		}
		reached := 0
		for _, d := range dist {
			if d < algorithms.InfDist {
				reached++
			}
		}
		fmt.Printf("sssp: root=%d reached=%d\n", rootV, reached)
	default:
		fatalf("unknown algorithm %q", *algo)
	}

	s := cluster.LastRunStats()
	fmt.Printf("time: %v\n", s.Elapsed)
	fmt.Printf("edges traversed: %d (%.3f of |E|)\n", s.EdgesTraversed,
		float64(s.EdgesTraversed)/float64(g.NumEdges()))
	fmt.Printf("communication: update=%dB dependency=%dB control=%dB total=%dB\n",
		s.UpdateBytes, s.DependencyBytes, s.ControlBytes, s.TotalBytes())
	fmt.Printf("dependency-skipped signal executions: %d\n", s.VerticesSkipped)
	fmt.Printf("wait: dependency=%v update=%v\n", s.DependencyWait, s.UpdateWait)
}

func loadGraph(path, rmatSpec string) (*graph.Graph, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadBinary(f)
	}
	parts := strings.Split(rmatSpec, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad -rmat spec %q, want scale,edgefactor,seed", rmatSpec)
	}
	scale, err1 := strconv.Atoi(parts[0])
	ef, err2 := strconv.Atoi(parts[1])
	seed, err3 := strconv.ParseInt(parts[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("bad -rmat spec %q", rmatSpec)
	}
	return graph.RMAT(scale, ef, graph.Graph500Params(), seed), nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "symplegraph: "+format+"\n", args...)
	os.Exit(1)
}
