// Command sggen generates workload graphs: Graph500-parameter R-MAT
// (the paper's synthesized datasets), uniform random, and structured
// test graphs, in text or binary edge-list form.
//
// Usage:
//
//	sggen -type rmat -scale 16 -ef 16 -seed 1 -out s16.sg
//	sggen -type uniform -scale 14 -ef 8 -format text -out g.txt
//	sggen -type grid -rows 100 -cols 100 -symmetrize=false -out grid.sg
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/graph"
)

func main() {
	var (
		typ        = flag.String("type", "rmat", "graph type: rmat, uniform, ring, star, grid")
		scale      = flag.Int("scale", 14, "log2 of vertex count (rmat, uniform)")
		ef         = flag.Int("ef", 16, "edge factor: average out-degree (rmat, uniform)")
		seed       = flag.Uint64("seed", 1, "generator seed")
		rows       = flag.Int("rows", 64, "grid rows")
		cols       = flag.Int("cols", 64, "grid cols")
		n          = flag.Int("n", 1024, "vertex count (ring, star)")
		symmetrize = flag.Bool("symmetrize", false, "add reverse edges")
		weights    = flag.Bool("weights", false, "attach deterministic edge weights")
		format     = flag.String("format", "binary", "output format: binary or text")
		out        = flag.String("out", "", "output path (default stdout)")
		verbose    = flag.Bool("v", false, "verbose: degree statistics for the generated graph")
	)
	flag.Parse()
	gseed := int64(*seed)

	var g *graph.Graph
	switch *typ {
	case "rmat":
		g = graph.RMAT(*scale, *ef, graph.Graph500Params(), gseed)
	case "uniform":
		nv := 1 << uint(*scale)
		g = graph.Uniform(nv, int64(nv)*int64(*ef), gseed)
	case "ring":
		g = graph.Ring(*n)
	case "star":
		g = graph.Star(*n)
	case "grid":
		g = graph.Grid(*rows, *cols)
	default:
		fatalf("unknown graph type %q", *typ)
	}
	if *symmetrize {
		g = graph.Symmetrize(g)
	}
	if *weights {
		g = graph.RandomWeights(g, gseed)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "binary":
		err = graph.WriteBinary(w, g)
	case "text":
		err = graph.WriteEdgeListText(w, g)
	default:
		fatalf("unknown format %q", *format)
	}
	if err != nil {
		fatalf("writing graph: %v", err)
	}
	fmt.Fprintf(os.Stderr, "generated %v (high-degree fraction %.3f)\n", g, g.HighDegreeFraction(32))
	if *verbose {
		hub, deg := graph.LargestOutDegreeVertex(g)
		nonIsolated := len(graph.NonIsolatedVertices(g))
		fmt.Fprintf(os.Stderr, "largest out-degree: vertex %d (%d edges); non-isolated vertices: %d/%d; weighted: %v\n",
			hub, deg, nonIsolated, g.NumVertices(), g.Weighted())
	}
}

func fatalf(format string, args ...any) {
	cliutil.Fatalf("sggen", format, args...)
}
