// Tcpcluster: the same programs over a real TCP transport instead of the
// in-memory channels — the configuration that replaces the paper's
// MPI/InfiniBand layer. Here all endpoints live in one process on
// loopback ports; pointing comm.NewTCPEndpoint at a shared address list
// runs each node in its own process or host with no other change.
package main

import (
	"fmt"
	"log"

	"repro/internal/algorithms"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	const nodes = 4
	endpoints, err := comm.NewTCPClusterLoopback(nodes)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, e := range endpoints {
			e.Close()
		}
	}()
	eps := make([]comm.Endpoint, nodes)
	for i, e := range endpoints {
		eps[i] = e
	}

	g := graph.Symmetrize(graph.RMAT(12, 8, graph.Graph500Params(), 5))
	cluster, err := core.NewCluster(g, core.Options{
		NumNodes:     nodes,
		Mode:         core.ModeSympleGraph,
		DepThreshold: core.DefaultDepThreshold,
		NumBuffers:   2,
		Endpoints:    eps,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Printf("running MIS on %v over %d TCP endpoints\n", g, nodes)
	res, err := algorithms.MIS(cluster, 3)
	if err != nil {
		log.Fatal(err)
	}
	size := 0
	for _, in := range res.InMIS {
		if in {
			size++
		}
	}
	s := cluster.Stats().Totals
	fmt.Printf("MIS size %d in %d rounds, %v\n", size, res.Rounds, s.Elapsed)
	fmt.Printf("bytes over TCP: update=%d dependency=%d control=%d\n",
		s.UpdateBytes, s.DependencyBytes, s.ControlBytes)
	for i, e := range endpoints {
		fmt.Printf("  node %d sent %d bytes total\n", i,
			e.Stats().SentBytes(comm.KindUpdate)+
				e.Stats().SentBytes(comm.KindDependency)+
				e.Stats().SentBytes(comm.KindControl))
	}
}
