// Socialreach: the paper's motivating social-network scenario. On a
// Twitter-like follower graph we (1) measure how far a viral post spreads
// from the most-followed account (direction-optimizing BFS — the
// bottom-up steps carry the loop-carried dependency), and (2) run
// weighted neighbor sampling, the kernel of DeepWalk/node2vec-style graph
// embeddings (§2.1), whose loop-carried state is a prefix sum of weights.
package main

import (
	"fmt"
	"log"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	// Follower graph: heavier skew than quickstart (edge factor 24),
	// like the paper's tw dataset.
	g := graph.RMAT(13, 24, graph.Graph500Params(), 99)
	influencer, followers := graph.LargestOutDegreeVertex(g)
	fmt.Printf("follower graph %v\n", g)
	fmt.Printf("top account: vertex %d with %d outgoing edges\n\n", influencer, followers)

	cluster, err := core.NewCluster(g, core.Options{
		NumNodes:     8,
		Mode:         core.ModeSympleGraph,
		DepThreshold: core.DefaultDepThreshold,
		NumBuffers:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// 1. Reach analysis: BFS levels = "hops of resharing".
	res, err := algorithms.BFS(cluster, influencer)
	if err != nil {
		log.Fatal(err)
	}
	byHop := map[int32]int{}
	maxHop := int32(0)
	for _, d := range res.Depth {
		if d >= 0 {
			byHop[d]++
			if d > maxHop {
				maxHop = d
			}
		}
	}
	fmt.Println("reach by hop:")
	for h := int32(0); h <= maxHop; h++ {
		fmt.Printf("  hop %d: %6d accounts\n", h, byHop[h])
	}
	s := cluster.Stats().Totals
	fmt.Printf("(bottom-up steps: %d, dependency-skipped signals: %d)\n\n",
		res.BottomUpSteps, s.VerticesSkipped)

	// 2. Embedding walks: each account samples one in-neighbor per
	// round, weighted by the neighbor's importance.
	const rounds = 4
	sample, err := algorithms.Sample(cluster, 2026, rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d rounds of neighbor picks (%d via exact cross-machine prefix walks)\n",
		rounds, sample.ExactPicks)
	fmt.Printf("vertex %d's walk starts: ", influencer)
	for r := 0; r < rounds; r++ {
		fmt.Printf("%d ", sample.Picks[r][influencer])
	}
	fmt.Println()
	ss := cluster.Stats().Totals
	fmt.Printf("sampling communication: update=%dB dependency=%dB (data dependency costs 8B/vertex/step — the paper's Table 6 sampling row)\n",
		ss.UpdateBytes, ss.DependencyBytes)
}
