// Community: structure analysis on an undirected collaboration network
// using the paper's three undirected algorithms — K-core decomposition
// (find the dense backbone), MIS (pick a maximal set of non-overlapping
// seed members), and graph K-means (partition into communities around
// those structures). All three carry loop-carried dependency in their
// neighbor scans, so SympleGraph mode prunes redundant mirror work.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	g := graph.Symmetrize(graph.RMAT(12, 16, graph.Graph500Params(), 7))
	fmt.Printf("collaboration network %v\n\n", g)

	cluster, err := core.NewCluster(g, core.Options{
		NumNodes:     8,
		Mode:         core.ModeSympleGraph,
		DepThreshold: core.DefaultDepThreshold,
		NumBuffers:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// 1. K-core backbone at several K.
	fmt.Println("K-core decomposition:")
	for _, k := range []int{2, 4, 8, 16} {
		res, err := algorithms.KCore(cluster, k)
		if err != nil {
			log.Fatal(err)
		}
		size := 0
		for _, in := range res.InCore {
			if in {
				size++
			}
		}
		s := cluster.Stats().Totals
		fmt.Printf("  %2d-core: %6d members (%d rounds, %.2f of |E| traversed)\n",
			k, size, res.Rounds, float64(s.EdgesTraversed)/float64(g.NumEdges()))
	}

	// 2. Independent seed set.
	mis, err := algorithms.MIS(cluster, 11)
	if err != nil {
		log.Fatal(err)
	}
	seeds := 0
	for _, in := range mis.InMIS {
		if in {
			seeds++
		}
	}
	fmt.Printf("\nMIS: %d independent seed members in %d rounds\n", seeds, mis.Rounds)

	// 3. Communities via graph K-means.
	k := int(math.Sqrt(float64(g.NumVertices())))
	km, err := algorithms.KMeans(cluster, k, 4, 11)
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[uint32]int{}
	for _, c := range km.Cluster {
		if c != ^uint32(0) {
			sizes[c]++
		}
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("K-means: %d communities, largest %d vertices\n", len(sizes), largest)
	fmt.Printf("convergence (total hop distance per iteration): %v\n", km.DistSums)
}
