// Quickstart: build a skewed graph, run direction-optimizing BFS under
// the Gemini baseline and under SympleGraph, and print the paper's two
// headline metrics — edges traversed and communication volume — side by
// side.
package main

import (
	"fmt"
	"log"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	// A Graph500 R-MAT graph: 2^14 vertices, ~16 edges per vertex,
	// heavy-tailed like the paper's Twitter/Friendster datasets.
	g := graph.RMAT(14, 16, graph.Graph500Params(), 1)
	root, deg := graph.LargestOutDegreeVertex(g)
	fmt.Printf("graph %v, BFS root %d (degree %d)\n\n", g, root, deg)

	for _, mode := range []core.Mode{core.ModeGemini, core.ModeSympleGraph} {
		cluster, err := core.NewCluster(g, core.Options{
			NumNodes:     8,
			Mode:         mode,
			DepThreshold: core.DefaultDepThreshold, // differentiated propagation (§5.2)
			NumBuffers:   2,                        // double buffering (§5.3)
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := algorithms.BFS(cluster, root)
		if err != nil {
			log.Fatal(err)
		}
		reached := 0
		for _, d := range res.Depth {
			if d >= 0 {
				reached++
			}
		}
		s := cluster.Stats().Totals
		fmt.Printf("%-12s reached=%d in %v\n", mode, reached, s.Elapsed)
		fmt.Printf("  edges traversed: %8d (%.2f of |E|)\n",
			s.EdgesTraversed, float64(s.EdgesTraversed)/float64(g.NumEdges()))
		fmt.Printf("  update bytes:    %8d\n", s.UpdateBytes)
		fmt.Printf("  dependency bytes:%8d\n\n", s.DependencyBytes)
		cluster.Close()
	}
	fmt.Println("SympleGraph reaches the same BFS tree with fewer edge traversals")
	fmt.Println("and less update communication, at the cost of small dependency")
	fmt.Println("messages — the paper's Table 5/6 effect in miniature.")
}
