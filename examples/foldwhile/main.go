// Foldwhile: the paper's two programmability routes side by side (§4).
//
// Route 1 — UDF analysis: write the signal as plain Go with a break; the
// analyzer detects the loop-carried dependency and inserts the
// dependency-communication primitives by source-to-source transformation
// (what `sgc instrument` does).
//
// Route 2 — the fold_while DSL: declare the loop-carried state machine
// explicitly; Compile generates the instrumented signal with no static
// analysis at all.
package main

import (
	"fmt"
	"log"

	"repro/internal/analyzer"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/graph"
)

const plainUDF = `package udf

import (
	"repro/internal/core"
	"repro/internal/graph"
)

func bfsSignal(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	for _, u := range srcs {
		if frontier.Get(int(u)) {
			ctx.Emit(uint32(u))
			break
		}
	}
}
`

func main() {
	// Route 1: analyze and instrument the plain UDF.
	instrumented, report, err := analyzer.Instrument("udf.go", []byte(plainUDF))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== analyzer report ==")
	fmt.Print(report)
	fmt.Println("\n== instrumented source (paper Figure 5) ==")
	fmt.Println(string(instrumented))

	// Route 2: the same algorithm as a fold_while, executed for one
	// bottom-up step on a real cluster.
	g := graph.RMAT(12, 8, graph.Graph500Params(), 3)
	n := g.NumVertices()
	frontier := bitset.New(n)
	for v := 0; v < n; v += 2 {
		frontier.Set(v)
	}
	fold := dsl.FoldWhile[struct{}, uint32]{
		Init: func(graph.VertexID) struct{} { return struct{}{} },
		Step: func(s struct{}, _, u graph.VertexID, _ float32) (struct{}, bool) {
			return s, frontier.Get(int(u)) // exit condition = frontier hit
		},
		Emit: func(_ struct{}, _, u graph.VertexID) (uint32, bool) { return uint32(u), true },
	}

	cluster, err := core.NewCluster(g, core.Options{NumNodes: 4, Mode: core.ModeSympleGraph, NumBuffers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	parents := make([]uint32, n)
	for i := range parents {
		parents[i] = ^uint32(0)
	}
	err = cluster.Run(func(w *core.Worker) error {
		params := dsl.Params(fold, core.U32Codec{}, nil,
			func(dst graph.VertexID, u uint32) int64 {
				if parents[dst] == ^uint32(0) {
					parents[dst] = u
					return 1
				}
				return 0
			}, nil)
		_, err := core.ProcessEdgesDense(w, params)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	found := 0
	for _, p := range parents {
		if p != ^uint32(0) {
			found++
		}
	}
	s := cluster.Stats().Totals
	fmt.Printf("== fold_while execution ==\n")
	fmt.Printf("one bottom-up step: %d vertices found frontier parents\n", found)
	fmt.Printf("edges traversed: %d of %d (loop-carried dependency pruned the rest)\n",
		s.EdgesTraversed, g.NumEdges())
}
