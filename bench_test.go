// Package repro's top-level benchmarks regenerate the paper's evaluation
// (§7): one benchmark per table and figure, each driving the same harness
// as cmd/sgbench at a reduced scale, plus per-(system, algorithm) cell
// benchmarks that report the paper's metrics — edges traversed and
// communication bytes — alongside wall time. Absolute numbers are
// simulated-cluster numbers; the shapes are the reproduction target (see
// EXPERIMENTS.md).
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/graph"
	"repro/internal/seq"
)

// benchScale keeps auto-tuned benchmark iterations tractable.
const benchScale = 11

func benchSuite() *bench.Suite { return bench.NewSuite(benchScale) }

func benchConfig() bench.Config {
	return bench.Config{Nodes: 8, BFSRoots: 2, KCoreK: 8, KMeansIters: 2, SampleRounds: 2, Seed: 42}
}

// reportCell attaches the paper's metrics to a benchmark result.
func reportCell(b *testing.B, m bench.Measurement) {
	b.ReportMetric(float64(m.EdgesTraversed), "edges/op")
	b.ReportMetric(float64(m.UpdateBytes), "updateB/op")
	b.ReportMetric(float64(m.DependencyBytes), "depB/op")
}

// BenchmarkCell measures every (system, algorithm) cell on the s27
// stand-in — the per-cell granularity of Tables 4/5/6.
func BenchmarkCell(b *testing.B) {
	s := benchSuite()
	cfg := benchConfig()
	d := s.ByName("s27")
	for _, a := range bench.Algos {
		for _, v := range []bench.Variant{bench.VariantGemini, bench.VariantSympleGraph} {
			b.Run(fmt.Sprintf("%s/%s", a, v.Name), func(b *testing.B) {
				var last bench.Measurement
				for i := 0; i < b.N; i++ {
					m, err := bench.RunVariant(v, a, d, cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = m
				}
				reportCell(b, last)
			})
		}
		if a == bench.AlgoSampling {
			continue // not available in D-Galois (§7.1)
		}
		b.Run(fmt.Sprintf("%s/D-Galois", a), func(b *testing.B) {
			var last bench.Measurement
			for i := 0; i < b.N; i++ {
				m, err := bench.RunDGalois(a, d, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			reportCell(b, last)
		})
	}
}

// BenchmarkTable1Datasets regenerates Table 1 (dataset statistics).
func BenchmarkTable1Datasets(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if out := bench.Table1(s); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2KCoreSweep regenerates Table 2 (K-core vs K).
func BenchmarkTable2KCoreSweep(b *testing.B) {
	s := benchSuite()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3LargeGraphs regenerates Table 3 (the gsh/cl stand-ins).
func BenchmarkTable3LargeGraphs(b *testing.B) {
	s := benchSuite()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Main regenerates the main comparison matrix and Table 4;
// the same matrix underlies Tables 5 and 6, which BenchmarkTable5 and
// BenchmarkTable6 render from a fresh measurement.
func BenchmarkTable4Main(b *testing.B) {
	s := benchSuite()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		m, err := bench.RunMatrix(s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bench.Table4(s, m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5EdgesTraversed regenerates Table 5.
func BenchmarkTable5EdgesTraversed(b *testing.B) {
	s := benchSuite()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		m, err := bench.RunMatrix(s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if out := bench.Table5(s, m); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable6Communication regenerates Table 6.
func BenchmarkTable6Communication(b *testing.B) {
	s := benchSuite()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		m, err := bench.RunMatrix(s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if out := bench.Table6(s, m); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable7BestNodes regenerates Table 7 (best node count, MIS).
func BenchmarkTable7BestNodes(b *testing.B) {
	s := benchSuite()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table7(s, cfg, []int{2, 4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10Scalability regenerates Figure 10 (MIS scalability).
func BenchmarkFigure10Scalability(b *testing.B) {
	s := benchSuite()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure10(s, cfg, []int{2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("incomplete series")
		}
	}
}

// BenchmarkFigure11Ablation regenerates Figure 11 (optimization
// breakdown: circulant / +DB / +DP / full).
func BenchmarkFigure11Ablation(b *testing.B) {
	s := benchSuite()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure11(s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkCOST regenerates the §7.4 COST comparison.
func BenchmarkCOST(b *testing.B) {
	s := benchSuite()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.COST(s, cfg, []int{2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialBaselines measures the single-thread references
// (the COST baselines).
func BenchmarkSequentialBaselines(b *testing.B) {
	g := graph.Symmetrize(graph.RMAT(benchScale, 16, graph.Graph500Params(), 1))
	root, _ := graph.LargestOutDegreeVertex(g)
	b.Run("BFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.DirectionOptimizingBFS(g, root)
		}
	})
	b.Run("MIS", func(b *testing.B) {
		colors := seq.MISColors(g.NumVertices(), 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seq.GreedyMIS(g, colors)
		}
	})
	b.Run("KCoreMatulaBeck", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.Coreness(g)
		}
	})
	b.Run("Sampling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.SampleNeighbors(g, 1, i, nil)
		}
	})
}
