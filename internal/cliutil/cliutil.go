// Package cliutil holds the flag vocabulary and glue shared by the
// repository's command-line tools (symplegraph, sgbench, sggen, sgc).
// Every tool spells common knobs the same way — -nodes, -mode, -graph,
// -seed, -v — and the observability flags -trace and -debug-addr are
// wired through one helper so each main stays a thin dispatcher.
package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Fatalf prints "tool: message" to stderr and exits with status 1.
func Fatalf(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, tool+": "+format+"\n", args...)
	os.Exit(1)
}

// Exit codes for the typed run-failure classes, so scripts and process
// supervisors can tell a stalled cluster from an engine bug without
// parsing stderr. 1 remains the generic failure code.
const (
	ExitFailure   = 1 // unclassified error
	ExitStall     = 2 // core.StallError: a receive exceeded -stall-timeout
	ExitCrash     = 3 // comm.CrashError: a node died (chaos or real)
	ExitPeerLost  = 4 // comm.ClosedError / comm.TimeoutError: transport cut
	ExitProtocol  = 5 // comm.ProtocolError: desynchronized SPMD streams, a bug
	ExitPoisoned  = 6 // core.PoisonedError: run on an un-Reset cluster
	ExitCancelled = 7 // context deadline/cancellation
)

// ErrorReport classifies err against the engine's typed error taxonomy
// (errors.As through any wrapping) and returns the matching exit code
// plus a message that keeps the structured context — blocked node,
// phase, awaited peer — that a bare %v of a wrapped chain buries.
func ErrorReport(err error) (code int, msg string) {
	var (
		stall    *core.StallError
		poisoned *core.PoisonedError
		crash    *comm.CrashError
		protocol *comm.ProtocolError
		closed   *comm.ClosedError
		timeout  *comm.TimeoutError
		injected *comm.InjectedError
	)
	switch {
	case errors.As(err, &stall):
		return ExitStall, fmt.Sprintf(
			"stall: node %d blocked in %v for %v awaiting node %d (kind=%v tag=%d); raise -stall-timeout or enable -max-restarts",
			stall.Node, stall.Phase, stall.Timeout, stall.From, stall.Kind, stall.Tag)
	case errors.As(err, &crash):
		return ExitCrash, fmt.Sprintf("node crash: %v; enable -checkpoint-every and -max-restarts to recover", crash)
	case errors.As(err, &protocol):
		return ExitProtocol, fmt.Sprintf("protocol violation (engine bug, not retried): %v", protocol)
	case errors.As(err, &poisoned):
		return ExitPoisoned, fmt.Sprintf("%v", poisoned)
	case errors.As(err, &closed):
		return ExitPeerLost, fmt.Sprintf("peer lost: %v", closed)
	case errors.As(err, &timeout):
		return ExitPeerLost, fmt.Sprintf("transport timeout: %v", timeout)
	case errors.As(err, &injected):
		return ExitFailure, fmt.Sprintf("injected fault escaped recovery: %v", injected)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return ExitCancelled, fmt.Sprintf("cancelled: %v", err)
	default:
		return ExitFailure, fmt.Sprintf("%v", err)
	}
}

// FatalErr prints err's classified report to stderr and exits with the
// class's code. Run-failure paths use it instead of Fatalf so the typed
// context PR 2 attached (node, phase, awaited peer) reaches the
// operator and the exit status.
func FatalErr(tool string, err error) {
	code, msg := ErrorReport(err)
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, msg)
	os.Exit(code)
}

// Warnf prints "tool: warning: message" to stderr.
func Warnf(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, tool+": warning: "+format+"\n", args...)
}

// ParseMode maps the shared -mode vocabulary onto core.Mode.
func ParseMode(s string) (core.Mode, error) {
	switch s {
	case "symplegraph":
		return core.ModeSympleGraph, nil
	case "gemini":
		return core.ModeGemini, nil
	}
	return 0, fmt.Errorf("unknown mode %q (flag -mode): want symplegraph or gemini", s)
}

// GraphSpec holds the shared graph-input flags: -graph (a binary file
// produced by sggen) and -rmat (generate in-process).
type GraphSpec struct {
	Path string
	RMAT string
}

// Register installs -graph and -rmat on fs.
func (s *GraphSpec) Register(fs *flag.FlagSet) {
	fs.StringVar(&s.Path, "graph", "", "binary graph file (see sggen)")
	fs.StringVar(&s.RMAT, "rmat", "12,16,1", "generate R-MAT graph: scale,edgefactor,seed")
}

// Load reads -graph if set, otherwise generates the -rmat graph.
func (s *GraphSpec) Load() (*graph.Graph, error) {
	if s.Path != "" {
		f, err := os.Open(s.Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadBinary(f)
	}
	parts := strings.Split(s.RMAT, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad -rmat spec %q, want scale,edgefactor,seed", s.RMAT)
	}
	scale, err1 := strconv.Atoi(parts[0])
	ef, err2 := strconv.Atoi(parts[1])
	seed, err3 := strconv.ParseInt(parts[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("bad -rmat spec %q", s.RMAT)
	}
	return graph.RMAT(scale, ef, graph.Graph500Params(), seed), nil
}

// Fleet bundles the worker-fleet health-probing flags a serving
// front-end exposes: probe cadence and timeout, how many consecutive
// misses declare a worker dead, and the backoff cap for re-probing
// dead workers. Zero values defer to the server's defaults.
type Fleet struct {
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	DeadAfter     int
	BackoffCap    time.Duration
}

// Register installs the fleet flags on fs.
func (f *Fleet) Register(fs *flag.FlagSet) {
	fs.DurationVar(&f.ProbeInterval, "probe-interval", 500*time.Millisecond, "worker health-probe cadence")
	fs.DurationVar(&f.ProbeTimeout, "probe-timeout", time.Second, "per-probe dial+ping budget")
	fs.IntVar(&f.DeadAfter, "probe-dead-after", 3, "consecutive probe failures before a worker is declared dead")
	fs.DurationVar(&f.BackoffCap, "probe-backoff-cap", 5*time.Second, "probe backoff cap while a worker stays dead")
}

// Resilience bundles the shared fault-tolerance flags: -stall-timeout,
// -checkpoint-every and -max-restarts configure detection and recovery;
// -chaos-seed (plus -chaos-crash-node/-chaos-crash-at) enables the
// deterministic fault-injection plan used to exercise them.
type Resilience struct {
	ChaosSeed       uint64
	CheckpointEvery int
	CheckpointDir   string
	StallTimeout    time.Duration
	MaxRestarts     int
	CrashNode       int
	CrashAt         int

	// Plan is the fault plan built by Apply, nil when chaos is off.
	Plan *comm.FaultPlan
}

// Register installs the resilience flags on fs.
func (r *Resilience) Register(fs *flag.FlagSet) {
	fs.Uint64Var(&r.ChaosSeed, "chaos-seed", 0, "deterministic fault injection seed (0 = off)")
	fs.IntVar(&r.CheckpointEvery, "checkpoint-every", 0, "superstep checkpoint cadence K (0 = off)")
	fs.StringVar(&r.CheckpointDir, "checkpoint-dir", "", "persist superstep checkpoints to this directory (survives process death; default in-memory)")
	fs.DurationVar(&r.StallTimeout, "stall-timeout", 0, "per-receive deadline before a stalled superstep fails (0 = wait forever)")
	fs.IntVar(&r.MaxRestarts, "max-restarts", 0, "recoverable-failure restarts before giving up (0 = fail fast)")
	fs.IntVar(&r.CrashNode, "chaos-crash-node", 0, "node the chaos plan crashes (with -chaos-crash-at)")
	fs.IntVar(&r.CrashAt, "chaos-crash-at", 0, "superstep at which -chaos-crash-node dies (0 = no crash)")
}

// BuildPlan constructs the seed-driven fault plan — mild delay spikes,
// plus the configured crash — when -chaos-seed is set; nil otherwise.
// The plan is kept in r.Plan so callers can report injected-fault
// counters afterwards.
func (r *Resilience) BuildPlan() *comm.FaultPlan {
	if r.ChaosSeed == 0 {
		return nil
	}
	if r.Plan == nil {
		r.Plan = &comm.FaultPlan{
			Seed:             r.ChaosSeed,
			DelayProb:        0.01,
			Delay:            time.Millisecond,
			CrashNode:        comm.NodeID(r.CrashNode),
			CrashAtSuperstep: r.CrashAt,
		}
	}
	return r.Plan
}

// Apply threads the flags into opts, attaching the chaos plan to
// opts.Fault when one is enabled.
func (r *Resilience) Apply(opts *core.Options) *comm.FaultPlan {
	opts.CheckpointEvery = r.CheckpointEvery
	opts.StallTimeout = r.StallTimeout
	opts.MaxRestarts = r.MaxRestarts
	opts.Fault = r.BuildPlan()
	return opts.Fault
}

// OpenCheckpointStore builds the file-backed store when -checkpoint-dir
// is set (nil otherwise, selecting the engine's in-memory default) and
// threads it into opts. Resume controls whether the engine adopts a
// previous process's committed snapshot instead of clearing it.
func (r *Resilience) OpenCheckpointStore(opts *core.Options, resume bool) (*core.FileCheckpointStore, error) {
	if r.CheckpointDir == "" {
		return nil, nil
	}
	st, err := core.NewFileCheckpointStore(r.CheckpointDir)
	if err != nil {
		return nil, err
	}
	opts.Checkpoints = st
	opts.ResumeCheckpoints = resume
	return st, nil
}

// PrintCounters reports the faults the chaos plan injected and the
// recovery work the engine performed. No-op when chaos is off.
func (r *Resilience) PrintCounters(w *os.File, s core.StatsSnapshot) {
	if r.Plan == nil {
		return
	}
	fc := r.Plan.Counters()
	fmt.Fprintf(w, "chaos: delays=%d send-errs=%d drops=%d crashes=%d; restarts=%d stalls=%d\n",
		fc.Delays, fc.SendErrs, fc.Drops, fc.Crashes, s.Restarts, s.Stalls)
}

// Obs bundles the shared observability flags. After Start, Tracer and
// Registry are non-nil when any observability surface was requested and
// may be handed to core.Options and Cluster.RegisterMetrics; Close
// flushes the Chrome trace and stops the debug server.
type Obs struct {
	TracePath string
	DebugAddr string

	Tracer   *obs.Tracer
	Registry *obs.Registry
	server   *obs.DebugServer
}

// Register installs -trace and -debug-addr on fs.
func (o *Obs) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.TracePath, "trace", "", "write a Chrome trace_event timeline to this file")
	fs.StringVar(&o.DebugAddr, "debug-addr", "", "serve /debug/{metrics,vars,trace,pprof} on this address")
}

// Enabled reports whether any observability flag was set.
func (o *Obs) Enabled() bool { return o.TracePath != "" || o.DebugAddr != "" }

// Start allocates the tracer/registry and starts the debug server if
// requested. Safe to call when no observability flag is set: Tracer and
// Registry stay nil (a nil *obs.Tracer is a valid, disabled tracer).
func (o *Obs) Start(tool string) error {
	if !o.Enabled() {
		return nil
	}
	o.Tracer = obs.NewCapturingTracer(obs.DefaultMaxEvents)
	o.Registry = obs.NewRegistry()
	if o.DebugAddr == "" {
		return nil
	}
	srv, err := obs.StartDebugServer(o.DebugAddr, o.Registry, o.Tracer)
	if err != nil {
		return fmt.Errorf("starting debug server: %w", err)
	}
	o.server = srv
	fmt.Fprintf(os.Stderr, "%s: debug server on http://%s/debug/metrics\n", tool, srv.Addr)
	return nil
}

// Close writes the -trace file (if requested) and stops the debug
// server, surfacing any error that killed its serve loop while the tool
// ran. Call it on the tool's success path; the trace of a failed run
// is intentionally not written.
func (o *Obs) Close() error {
	if o.server != nil {
		err := o.server.Close()
		o.server = nil
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
	}
	if o.TracePath == "" || o.Tracer == nil {
		return nil
	}
	f, err := os.Create(o.TracePath)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, o.Tracer); err != nil {
		f.Close()
		return err
	}
	if dropped := o.Tracer.Dropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "trace: %d events dropped (capture buffer full)\n", dropped)
	}
	return f.Close()
}

// PrintStats writes the standard stats report shared by symplegraph
// runs: totals always, per-node breakdown and engine warnings when
// verbose.
func PrintStats(w *os.File, s core.StatsSnapshot, numEdges int64, verbose bool) {
	t := s.Totals
	fmt.Fprintf(w, "time: %v\n", t.Elapsed)
	fmt.Fprintf(w, "edges traversed: %d (%.3f of |E|)\n", t.EdgesTraversed,
		float64(t.EdgesTraversed)/float64(numEdges))
	fmt.Fprintf(w, "communication: update=%dB dependency=%dB control=%dB total=%dB\n",
		t.UpdateBytes, t.DependencyBytes, t.ControlBytes, t.TotalBytes())
	fmt.Fprintf(w, "dependency-skipped signal executions: %d\n", t.VerticesSkipped)
	fmt.Fprintf(w, "wait: dependency=%v update=%v\n", t.DependencyWait, t.UpdateWait)
	if s.Restarts > 0 || s.Stalls > 0 {
		fmt.Fprintf(w, "resilience: restarts=%d stalls=%d\n", s.Restarts, s.Stalls)
	}
	if !verbose {
		return
	}
	for _, n := range s.Nodes {
		fmt.Fprintf(w, "node %d: edges=%d update=%dB dependency=%dB control=%dB dep-wait=%v upd-wait=%v\n",
			n.Node, n.EdgesTraversed, n.UpdateBytes, n.DependencyBytes, n.ControlBytes,
			n.DependencyWait, n.UpdateWait)
	}
	for _, ps := range s.Phases {
		if ps.Hist.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "phase node%d %-11s count=%d p50=%v p95=%v max=%v\n",
			ps.Node, ps.Phase, ps.Hist.Count, ps.Hist.P50, ps.Hist.P95, ps.Hist.Max)
	}
	for _, warn := range s.Warnings {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}
}

// ParseHostPorts splits a comma-separated host:port roster — the
// -workers flag vocabulary shared by sgserve and scripts — validating
// each entry and rejecting duplicates. An empty string is an empty
// roster, not an error.
func ParseHostPorts(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []string
	seen := make(map[string]bool)
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if _, _, err := net.SplitHostPort(f); err != nil {
			return nil, fmt.Errorf("bad worker address %q: %w", f, err)
		}
		if seen[f] {
			return nil, fmt.Errorf("duplicate worker address %q", f)
		}
		seen[f] = true
		out = append(out, f)
	}
	return out, nil
}
