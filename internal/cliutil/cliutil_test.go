package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestParseMode(t *testing.T) {
	if m, err := ParseMode("symplegraph"); err != nil || m != core.ModeSympleGraph {
		t.Fatalf("symplegraph: %v %v", m, err)
	}
	if m, err := ParseMode("gemini"); err != nil || m != core.ModeGemini {
		t.Fatalf("gemini: %v %v", m, err)
	}
	if _, err := ParseMode("giraph"); err == nil || !strings.Contains(err.Error(), "-mode") {
		t.Fatalf("bad mode error: %v", err)
	}
}

func TestGraphSpecLoad(t *testing.T) {
	var s GraphSpec
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	s.Register(fs)
	if err := fs.Parse([]string{"-rmat", "8,4,7"}); err != nil {
		t.Fatal(err)
	}
	g, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1<<8 {
		t.Fatalf("vertices %d", g.NumVertices())
	}

	s.RMAT = "8,4"
	if _, err := s.Load(); err == nil || !strings.Contains(err.Error(), "-rmat") {
		t.Fatalf("bad spec error: %v", err)
	}
}

func TestObsStartClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	o := Obs{TracePath: path}
	if err := o.Start("test"); err != nil {
		t.Fatal(err)
	}
	if o.Tracer == nil || o.Registry == nil {
		t.Fatal("tracer/registry not allocated")
	}
	o.Tracer.Record(0, obs.PhaseBarrier, 0, 0, 0, o.Tracer.Epoch(), 1000)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "traceEvents") {
		t.Fatalf("trace file:\n%s", raw)
	}

	// Disabled observability is a no-op.
	var off Obs
	if err := off.Start("test"); err != nil || off.Tracer != nil {
		t.Fatalf("disabled Start: %v %v", err, off.Tracer)
	}
	if err := off.Close(); err != nil {
		t.Fatal(err)
	}
}
