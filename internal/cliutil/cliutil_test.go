package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/obs"
)

func TestParseMode(t *testing.T) {
	if m, err := ParseMode("symplegraph"); err != nil || m != core.ModeSympleGraph {
		t.Fatalf("symplegraph: %v %v", m, err)
	}
	if m, err := ParseMode("gemini"); err != nil || m != core.ModeGemini {
		t.Fatalf("gemini: %v %v", m, err)
	}
	if _, err := ParseMode("giraph"); err == nil || !strings.Contains(err.Error(), "-mode") {
		t.Fatalf("bad mode error: %v", err)
	}
}

func TestGraphSpecLoad(t *testing.T) {
	var s GraphSpec
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	s.Register(fs)
	if err := fs.Parse([]string{"-rmat", "8,4,7"}); err != nil {
		t.Fatal(err)
	}
	g, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1<<8 {
		t.Fatalf("vertices %d", g.NumVertices())
	}

	s.RMAT = "8,4"
	if _, err := s.Load(); err == nil || !strings.Contains(err.Error(), "-rmat") {
		t.Fatalf("bad spec error: %v", err)
	}
}

func TestObsStartClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	o := Obs{TracePath: path}
	if err := o.Start("test"); err != nil {
		t.Fatal(err)
	}
	if o.Tracer == nil || o.Registry == nil {
		t.Fatal("tracer/registry not allocated")
	}
	o.Tracer.Record(0, obs.PhaseBarrier, 0, 0, 0, o.Tracer.Epoch(), 1000)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "traceEvents") {
		t.Fatalf("trace file:\n%s", raw)
	}

	// Disabled observability is a no-op.
	var off Obs
	if err := off.Start("test"); err != nil || off.Tracer != nil {
		t.Fatalf("disabled Start: %v %v", err, off.Tracer)
	}
	if err := off.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestErrorReport(t *testing.T) {
	stall := &core.StallError{Node: 2, Phase: obs.PhaseDepWait, From: 1, Kind: comm.KindDependency, Tag: 7, Timeout: time.Second}
	cases := []struct {
		err  error
		code int
		want string
	}{
		// errors.As must see through wrapping on every class.
		{fmt.Errorf("run: %w", stall), ExitStall, "node 2"},
		{fmt.Errorf("run: %w", &comm.CrashError{Node: 1, Superstep: 10}), ExitCrash, "crash"},
		{&comm.ProtocolError{Node: 0, From: 1, WantTag: 3, GotTag: 4}, ExitProtocol, "protocol"},
		{&core.PoisonedError{Cause: errors.New("boom")}, ExitPoisoned, "Reset"},
		{&comm.ClosedError{Node: 0, From: 1}, ExitPeerLost, "peer lost"},
		{&comm.TimeoutError{Node: 0, From: 1, Timeout: time.Second}, ExitPeerLost, "timeout"},
		{fmt.Errorf("deadline: %w", context.DeadlineExceeded), ExitCancelled, "cancelled"},
		{errors.New("unclassified"), ExitFailure, "unclassified"},
	}
	for _, c := range cases {
		code, msg := ErrorReport(c.err)
		if code != c.code {
			t.Errorf("ErrorReport(%v) code = %d, want %d", c.err, code, c.code)
		}
		if !strings.Contains(msg, c.want) {
			t.Errorf("ErrorReport(%v) msg = %q, want substring %q", c.err, msg, c.want)
		}
	}
	// The stall report carries the structured context an operator needs.
	_, msg := ErrorReport(stall)
	for _, frag := range []string{"node 2", "awaiting node 1", "tag=7", "-stall-timeout"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("stall message %q missing %q", msg, frag)
		}
	}
}
