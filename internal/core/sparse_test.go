package core

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
)

// TestSparsePushCounts pushes one message along every out-edge of a
// frontier and checks each destination master accumulates exactly its
// frontier in-neighbor count.
func TestSparsePushCounts(t *testing.T) {
	g := graph.RMAT(9, 8, graph.Graph500Params(), 13)
	n := g.NumVertices()
	inFrontier := func(v int) bool { return v%4 == 0 }
	for _, p := range []int{1, 2, 5} {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("p=%d/w=%d", p, workers), func(t *testing.T) {
				c := mustCluster(t, g, Options{NumNodes: p, Workers: workers})
				counts := make([]int64, n)
				var sent int64
				err := c.Run(func(w *Worker) error {
					lo, hi := w.MasterRange()
					var frontier []graph.VertexID
					for v := lo; v < hi; v++ {
						if inFrontier(v) {
							frontier = append(frontier, graph.VertexID(v))
						}
					}
					red, err := ProcessEdgesSparse(w, SparseParams[uint32]{
						Codec:    U32Codec{},
						Frontier: frontier,
						Signal: func(ctx *SparseCtx[uint32], src graph.VertexID, dsts []graph.VertexID, _ []float32) {
							for _, d := range dsts {
								ctx.Edge()
								ctx.EmitTo(d, uint32(src))
							}
						},
						Slot: func(dst graph.VertexID, msg uint32) int64 {
							counts[dst]++
							return 1
						},
					})
					if w.ID() == 0 {
						sent = red
					}
					return err
				})
				if err != nil {
					t.Fatal(err)
				}
				var want int64
				for v := 0; v < n; v++ {
					wantV := int64(0)
					for _, u := range g.InNeighbors(graph.VertexID(v)) {
						if inFrontier(int(u)) {
							wantV++
						}
					}
					want += wantV
					if counts[v] != wantV {
						t.Fatalf("vertex %d: %d messages, want %d", v, counts[v], wantV)
					}
				}
				if sent != want {
					t.Fatalf("reduced %d, want %d", sent, want)
				}
				// Edge traversals equal the frontier's out-degree sum.
				var frontierEdges int64
				for v := 0; v < n; v++ {
					if inFrontier(v) {
						frontierEdges += int64(g.OutDegree(graph.VertexID(v)))
					}
				}
				if got := c.Stats().Totals.EdgesTraversed; got != frontierEdges {
					t.Fatalf("edges traversed %d, want %d", got, frontierEdges)
				}
			})
		}
	}
}

// TestSparseEmptyFrontier completes without traffic problems and reduces
// to zero.
func TestSparseEmptyFrontier(t *testing.T) {
	g := graph.Ring(128)
	c := mustCluster(t, g, Options{NumNodes: 3})
	err := c.Run(func(w *Worker) error {
		red, err := ProcessEdgesSparse(w, SparseParams[uint32]{
			Codec:    U32Codec{},
			Frontier: nil,
			Signal: func(*SparseCtx[uint32], graph.VertexID, []graph.VertexID, []float32) {
				t.Error("signal ran with empty frontier")
			},
			Slot: func(graph.VertexID, uint32) int64 { return 1 },
		})
		if red != 0 {
			t.Errorf("reduced %d", red)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSparseThenDenseInterleaved ensures tag bookkeeping stays aligned
// when passes alternate (as direction-optimizing BFS does).
func TestSparseThenDenseInterleaved(t *testing.T) {
	g := graph.RMAT(8, 8, graph.Graph500Params(), 3)
	c := mustCluster(t, g, Options{NumNodes: 4, Mode: ModeSympleGraph, NumBuffers: 2})
	err := c.Run(func(w *Worker) error {
		for round := 0; round < 3; round++ {
			lo, hi := w.MasterRange()
			var frontier []graph.VertexID
			for v := lo; v < hi; v += 2 {
				frontier = append(frontier, graph.VertexID(v))
			}
			if _, err := ProcessEdgesSparse(w, SparseParams[uint32]{
				Codec:    U32Codec{},
				Frontier: frontier,
				Signal: func(ctx *SparseCtx[uint32], src graph.VertexID, dsts []graph.VertexID, _ []float32) {
					for _, d := range dsts {
						ctx.Edge()
						ctx.EmitTo(d, 1)
					}
				},
				Slot: func(graph.VertexID, uint32) int64 { return 1 },
			}); err != nil {
				return err
			}
			if _, err := ProcessEdgesDense(w, DenseParams[uint32]{
				Codec: U32Codec{},
				Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
					for range srcs {
						ctx.Edge()
					}
					ctx.Emit(uint32(len(srcs)))
				},
				Slot: func(graph.VertexID, uint32) int64 { return 1 },
			}); err != nil {
				return err
			}
			if err := w.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTCPBackedCluster runs a dense pass over real TCP loopback endpoints
// to prove transport interchangeability.
func TestTCPBackedCluster(t *testing.T) {
	g := graph.RMAT(8, 8, graph.Graph500Params(), 9)
	tcps, err := comm.NewTCPClusterLoopback(3)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]comm.Endpoint, len(tcps))
	for i, e := range tcps {
		eps[i] = e
	}
	t.Cleanup(func() {
		for _, e := range tcps {
			e.Close()
		}
	})
	c := mustCluster(t, g, Options{NumNodes: 3, Mode: ModeSympleGraph, Endpoints: eps})
	counts := make([]uint32, g.NumVertices())
	err = c.Run(func(w *Worker) error {
		_, err := ProcessEdgesDense(w, DenseParams[uint32]{
			Codec: U32Codec{},
			Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
				for range srcs {
					ctx.Edge()
				}
				ctx.Emit(uint32(len(srcs)))
			},
			Slot: func(dst graph.VertexID, msg uint32) int64 {
				counts[dst] += msg
				return 0
			},
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if got, want := counts[v], uint32(g.InDegree(graph.VertexID(v))); got != want {
			t.Fatalf("vertex %d: %d, want %d", v, got, want)
		}
	}
}
