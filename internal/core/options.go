// Package core is the SympleGraph distributed graph-processing runtime —
// the paper's primary contribution. It executes vertex-centric signal/slot
// programs SPMD-style across the machines of a cluster and, in
// SympleGraph mode, precisely enforces loop-carried dependency in dense
// (pull) edge processing: when a UDF breaks out of its neighbor loop, the
// remaining neighbors are skipped even when they live on other machines.
//
// The runtime implements the paper's three mechanisms:
//
//   - circulant scheduling (§5.1): each dense iteration runs in p steps;
//     in step j machine m processes the edge block destined to partition
//     (m+1+j) mod p, so each partition's mirror blocks are visited in a
//     fixed ring order and a dependency frame hops machine → left
//     neighbor, arriving at the master last;
//   - differentiated dependency propagation (§5.2): only vertices with
//     in-degree ≥ DepThreshold circulate dependency state; the rest fall
//     back to plain mirror→master updates;
//   - double buffering (§5.3, generalized to ≥2 buffers as in §6): each
//     step's tracked vertices are split into groups whose dependency
//     frames are sent as soon as the group is processed, overlapping
//     dependency communication with computation of the next group.
//
// ModeGemini runs the identical engine with dependency propagation
// disabled — the paper's baseline ("Gemini can be considered as a special
// case without dependency communication").
package core

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/obs"
)

// Mode selects the execution strategy for dense edge processing.
type Mode int

const (
	// ModeSympleGraph enforces loop-carried dependency with circulant
	// scheduling and dependency communication.
	ModeSympleGraph Mode = iota
	// ModeGemini is the baseline: same schedule, no dependency
	// propagation, so every mirror block is processed in full.
	ModeGemini
)

// String returns the mode's name.
func (m Mode) String() string {
	switch m {
	case ModeSympleGraph:
		return "symplegraph"
	case ModeGemini:
		return "gemini"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DefaultDepThreshold is the degree cutoff for differentiated dependency
// propagation. The paper searched powers of two and "use 32 for all
// evaluation experiments" (§6).
const DefaultDepThreshold = 32

// Options configure a Cluster.
type Options struct {
	// NumNodes is the number of simulated machines p. Required ≥ 1.
	NumNodes int
	// Mode selects SympleGraph or the Gemini baseline. Defaults to
	// ModeSympleGraph.
	Mode Mode
	// DepThreshold enables differentiated dependency propagation: only
	// vertices with in-degree ≥ DepThreshold take part in dependency
	// communication. 0 disables differentiation (every vertex
	// participates). Ignored in ModeGemini.
	DepThreshold int
	// NumBuffers is the double-buffering group count per step. 1
	// disables double buffering; the paper's default is 2, and §6
	// generalizes to more buffers.
	NumBuffers int
	// Workers is the number of worker goroutines per simulated machine
	// (the paper's per-node worker threads). Defaults to 1.
	Workers int
	// Alpha is the partition balance factor (α·|V|+|E|); 0 selects the
	// package default.
	Alpha float64
	// Link simulates interconnect latency and bandwidth for the
	// in-memory transport (nil = instant delivery). Ignored when
	// Endpoints is set.
	Link *comm.LinkModel
	// Endpoints optionally supplies pre-connected transport endpoints
	// (e.g. comm.NewTCPClusterLoopback). When nil, an in-memory
	// cluster is created. len(Endpoints) must equal NumNodes.
	Endpoints []comm.Endpoint
	// Tracer receives per-phase span timings from the workers (dense
	// steps, dependency/update waits, barriers, buffer flushes). nil
	// disables tracing; the hot paths then pay one pointer test.
	Tracer *obs.Tracer
	// LegacyDataPlane selects the pre-zero-copy message assembly:
	// garbage-collected per-chunk buffers concatenated into one payload
	// per (step, destination) and sent through the aliasing Send, with
	// dependency frames allocated per frame. The default (false) runs
	// the slab-backed path — fixed-size chunks from internal/bufpool,
	// vectored SendBufs with no concatenation, and Release after apply.
	// Results are identical; only allocation and copy behavior differ.
	// The benchmark harness uses this to reproduce the committed
	// BENCH_0 baseline from the same tree.
	LegacyDataPlane bool
	// LegacyScan selects the pre-binning edge-scan loops: dense steps
	// that send one dependency frame per (step, buffer group) and
	// sparse pushes that route every emitted record through a per-emit
	// owner lookup. The default (false) runs the partition-binned scan
	// built on the blocked CSR: updates accumulate into cache-resident
	// per-destination-partition bins flushed as one vectored frame per
	// (peer, pass), and a step's dependency groups batch into a single
	// frame. Results are bit-identical under the engine's determinism
	// contract (Workers == 1); only cache behavior, frame counts and
	// phase timings differ. The binned scan is built on the slab data
	// plane, so LegacyDataPlane implies LegacyScan.
	LegacyScan bool

	// StallTimeout bounds every engine receive inside an edge-processing
	// pass: a receive blocked longer returns a *StallError naming the
	// blocked node, phase and awaited peer instead of hanging the run
	// forever behind a slow or dead machine. 0 disables the deadline.
	StallTimeout time.Duration
	// CheckpointEvery is the superstep checkpoint cadence K: programs
	// that opt in (via Worker.Checkpoint) snapshot their state every K
	// iterations, and a recovered run resumes from the last snapshot
	// every machine completed. 0 disables checkpointing.
	CheckpointEvery int
	// Checkpoints selects the stable storage snapshots land in. nil
	// selects the default in-memory store, which survives simulated
	// machine deaths but not a process death; a FileCheckpointStore
	// persists across restarts. Ignored when CheckpointEvery is 0.
	Checkpoints CheckpointStore
	// ResumeCheckpoints keeps the engine from clearing the checkpoint
	// store at the top of a program: the first Restore then adopts
	// whatever a previous process incarnation committed. Callers that
	// reuse one cluster for different programs must ClearCheckpoints
	// between them (or retag a FileCheckpointStore).
	ResumeCheckpoints bool
	// MaxRestarts is how many times Execute/RunWithRecovery re-forms
	// the cluster and re-runs a program after a recoverable failure
	// (stall, peer loss, injected fault). 0 disables recovery: Execute
	// behaves exactly like Run.
	MaxRestarts int
	// Fault, when non-nil, layers deterministic fault injection over the
	// cluster's transport — the chaos-testing substrate. The plan's
	// one-shot crash state and counters survive Reset, so a recovery
	// re-run proceeds against the remaining schedule.
	Fault *comm.FaultPlan

	// warnings records non-fatal adjustments validateAndDefault made
	// to explicitly set but out-of-range fields, surfaced through
	// Cluster.Stats().Warnings so misconfiguration is visible.
	warnings []string
}

// Warnings lists configuration adjustments recorded during validation
// (nil before a cluster is built from these options).
func (o Options) Warnings() []string { return o.warnings }

// binnedScan reports whether the partition-binned edge scans are in
// effect: they require the slab data plane, so the legacy data plane
// forces the legacy scan too.
func (o Options) binnedScan() bool { return !o.LegacyScan && !o.LegacyDataPlane }

// validateAndDefault checks o and fills defaults. Error messages name
// the CLI flag conventionally bound to the offending field so
// command-line users can see what to change.
func (o *Options) validateAndDefault() error {
	o.warnings = nil
	if o.NumNodes < 1 {
		return fmt.Errorf("core: NumNodes = %d (flag -nodes): need at least 1 machine", o.NumNodes)
	}
	// A zero NumBuffers/Workers means "unset, use the default"; other
	// out-of-range values were explicitly chosen, so clamping them
	// silently would hide a misconfiguration — record it.
	if o.NumBuffers < 1 {
		if o.NumBuffers != 0 {
			o.warnings = append(o.warnings,
				fmt.Sprintf("NumBuffers clamped from %d to 1 (flag -buffers)", o.NumBuffers))
		}
		o.NumBuffers = 1
	}
	if o.Workers < 1 {
		if o.Workers != 0 {
			o.warnings = append(o.warnings,
				fmt.Sprintf("Workers clamped from %d to 1 (flag -workers)", o.Workers))
		}
		o.Workers = 1
	}
	if o.DepThreshold < 0 {
		return fmt.Errorf("core: DepThreshold = %d (flag -threshold): must be ≥ 0", o.DepThreshold)
	}
	if o.StallTimeout < 0 {
		o.warnings = append(o.warnings,
			fmt.Sprintf("StallTimeout clamped from %v to 0 (flag -stall-timeout)", o.StallTimeout))
		o.StallTimeout = 0
	}
	if o.CheckpointEvery < 0 {
		o.warnings = append(o.warnings,
			fmt.Sprintf("CheckpointEvery clamped from %d to 0 (flag -checkpoint-every)", o.CheckpointEvery))
		o.CheckpointEvery = 0
	}
	if o.MaxRestarts < 0 {
		o.warnings = append(o.warnings,
			fmt.Sprintf("MaxRestarts clamped from %d to 0 (flag -max-restarts)", o.MaxRestarts))
		o.MaxRestarts = 0
	}
	if o.Endpoints != nil && len(o.Endpoints) != o.NumNodes {
		return fmt.Errorf("core: %d endpoints for %d nodes (flag -nodes must match Options.Endpoints)", len(o.Endpoints), o.NumNodes)
	}
	switch o.Mode {
	case ModeSympleGraph, ModeGemini:
	default:
		return fmt.Errorf("core: unknown mode %v (flag -mode): want symplegraph or gemini", o.Mode)
	}
	return nil
}
