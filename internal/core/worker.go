package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/bufpool"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
)

// Worker is one machine's view of a running program: its endpoint, its
// share of the graph, and helpers for vertex iteration and collective
// communication. A Worker is only valid inside the program passed to
// Cluster.Run and must not be shared across program invocations.
//
// All workers of a run execute the same program (SPMD); every collective
// helper and every ProcessEdges* call must therefore be reached by all
// workers in the same order.
type Worker struct {
	cluster *Cluster
	id      int
	ep      comm.Endpoint
	layout  *partition.Layout

	tag     int32
	edges   atomic.Int64
	skipped atomic.Int64
	depWait atomic.Int64 // ns blocked waiting for dependency frames
	updWait atomic.Int64 // ns blocked waiting for update messages

	tr         *obs.Tracer // nil when tracing is off
	densePass  int         // dense ProcessEdges* passes completed (the tracer's iteration axis)
	sparsePass int
}

// ID returns this machine's node ID.
func (w *Worker) ID() int { return w.id }

// N returns the cluster size p.
func (w *Worker) N() int { return w.cluster.opts.NumNodes }

// Mode returns the cluster's execution mode.
func (w *Worker) Mode() Mode { return w.cluster.opts.Mode }

// Options returns the cluster's configuration.
func (w *Worker) Options() Options { return w.cluster.opts }

// Graph returns the full graph. Programs must restrict themselves to
// vertex state they own or have synchronized; the engine's own edge
// access goes through the machine's layout only.
func (w *Worker) Graph() *graph.Graph { return w.cluster.g }

// Part returns the vertex partition.
func (w *Worker) Part() *partition.Partition { return w.cluster.part }

// MasterRange returns this machine's owned vertex range [lo, hi).
func (w *Worker) MasterRange() (lo, hi int) { return w.cluster.part.Range(w.id) }

// Owns reports whether v's master copy lives on this machine.
func (w *Worker) Owns(v graph.VertexID) bool {
	lo, hi := w.MasterRange()
	return int(v) >= lo && int(v) < hi
}

// nextTags reserves k consecutive tags and returns the first. Tag streams
// stay aligned across workers because programs are SPMD.
func (w *Worker) nextTags(k int32) int32 {
	t := w.tag
	w.tag += k
	return t
}

// addEdges accounts k neighbor traversals.
func (w *Worker) addEdges(k int64) { w.edges.Add(k) }

// addSkipped accounts k dependency-skipped signal executions.
func (w *Worker) addSkipped(k int64) { w.skipped.Add(k) }

// spanStart marks the beginning of a traced span; zero when tracing is
// off (endSpan then ignores it).
func (w *Worker) spanStart() time.Time {
	if w.tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// endSpan records a span that began at start. iter/step/group may be -1
// when the dimension does not apply.
func (w *Worker) endSpan(ph obs.Phase, iter, step, group int, start time.Time) {
	if w.tr == nil {
		return
	}
	w.tr.Record(w.id, ph, iter, step, group, start, time.Since(start))
}

// recvTimed performs a receive and accounts the blocked time into the
// given wait counter — the engine's overlap instrumentation (§5.3's
// "synchronization wait time") — and emits a tracer span of phase ph
// tagged (iter, step, group). With Options.StallTimeout set, the receive
// carries a deadline: instead of hanging forever behind a slow or dead
// peer, it fails fast with a *StallError naming this node, the phase,
// and the awaited stream.
func (w *Worker) recvTimed(counter *atomic.Int64, from comm.NodeID, kind comm.Kind, tag int32,
	ph obs.Phase, iter, step, group int) (comm.Message, error) {
	start := time.Now()
	timeout := w.cluster.opts.StallTimeout
	m, err := comm.RecvTimeout(w.ep, from, kind, tag, timeout)
	var te *comm.TimeoutError
	if errors.As(err, &te) {
		w.cluster.stalls.Add(1)
		err = &StallError{Node: w.id, Phase: ph, From: from, Kind: kind, Tag: tag,
			Timeout: timeout, cause: err}
	}
	d := time.Since(start)
	counter.Add(int64(d))
	if w.tr != nil {
		w.tr.Record(w.id, ph, iter, step, group, start, d)
	}
	return m, err
}

// observeStep announces the next edge-processing pass to the transport:
// fault plans key their crash and partition schedules on this counter,
// making "node 2 dies at superstep 7" a deterministic, replayable event.
func (w *Worker) observeStep() {
	comm.ObserveSuperstep(w.ep, w.densePass+w.sparsePass)
}

// Barrier blocks until all machines reach it.
func (w *Worker) Barrier() error {
	t0 := w.spanStart()
	err := comm.Barrier(w.ep, w.nextTags(1))
	w.endSpan(obs.PhaseBarrier, -1, -1, -1, t0)
	return err
}

// AllReduceInt64 combines x across machines with op (associative and
// commutative) and returns the result everywhere.
func (w *Worker) AllReduceInt64(x int64, op func(a, b int64) int64) (int64, error) {
	return comm.AllReduceInt64(w.ep, x, w.nextTags(1), op)
}

// AllReduceSum returns the sum of x across machines.
func (w *Worker) AllReduceSum(x int64) (int64, error) {
	return w.AllReduceInt64(x, func(a, b int64) int64 { return a + b })
}

// AllReduceBool ORs x across machines.
func (w *Worker) AllReduceBool(x bool) (bool, error) {
	return comm.AllReduceBool(w.ep, x, w.nextTags(1))
}

// SyncBitmap merges each machine's master segment of b into every
// machine's copy: after the call, all machines agree on b. This is how
// replicated per-vertex flags (frontier, visited, active) are refreshed
// between iterations; the traffic is accounted as control communication,
// identically in every mode.
//
// Each segment travels in Ligra-style adaptive form: a sparse index list
// when few bits are set (the common case for shrinking frontiers), dense
// words otherwise.
func (w *Worker) SyncBitmap(b *bitset.Bitmap) error {
	if b.Len() != w.cluster.g.NumVertices() {
		panic("core: SyncBitmap wants a full-length bitmap")
	}
	lo, hi := w.MasterRange()
	blob := encodeBitmapSegment(b, lo, hi)
	all, err := comm.AllGatherBytes(w.ep, blob, w.nextTags(1))
	if err != nil {
		return err
	}
	for peer, payload := range all {
		if peer == w.id {
			continue
		}
		plo, phi := w.cluster.part.Range(peer)
		if err := applyBitmapSegment(b, plo, phi, payload); err != nil {
			return err
		}
	}
	return nil
}

// encodeBitmapSegment serializes bits [lo, hi) of b: a 1-byte form tag,
// then either little-endian u32 indices relative to lo (sparse) or the
// covering words (dense), whichever is smaller.
func encodeBitmapSegment(b *bitset.Bitmap, lo, hi int) []byte {
	count := b.CountSegment(lo, hi)
	denseBytes := ((hi+63)/64 - lo/64) * 8
	if count*4 < denseBytes {
		out := make([]byte, 1, 1+count*4)
		out[0] = segSparse
		b.RangeSegment(lo, hi, func(v int) bool {
			var tmp [4]byte
			binary.LittleEndian.PutUint32(tmp[:], uint32(v-lo))
			out = append(out, tmp[:]...)
			return true
		})
		return out
	}
	out := make([]byte, 1, 1+denseBytes)
	out[0] = segDense
	return b.AppendSegmentLE(out, lo, hi)
}

const (
	segSparse = 0x01
	segDense  = 0x02
)

// applyBitmapSegment ORs a received segment for [lo, hi) into b.
func applyBitmapSegment(b *bitset.Bitmap, lo, hi int, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("core: empty bitmap segment")
	}
	body := payload[1:]
	switch payload[0] {
	case segSparse:
		if len(body)%4 != 0 {
			return fmt.Errorf("core: sparse segment length %d", len(body))
		}
		for off := 0; off < len(body); off += 4 {
			v := lo + int(binary.LittleEndian.Uint32(body[off:]))
			if v < lo || v >= hi {
				return fmt.Errorf("core: sparse segment index %d outside [%d,%d)", v, lo, hi)
			}
			b.Set(v)
		}
	case segDense:
		if err := b.OrSegmentLE(body, lo, hi); err != nil {
			return fmt.Errorf("core: dense segment: %w", err)
		}
	default:
		return fmt.Errorf("core: unknown segment form %d", payload[0])
	}
	return nil
}

// GatherU32 collects every master's value of arr at node 0, which is
// where algorithms materialize their results (other nodes' copies stay
// partial). Far cheaper than AllGatherU32 for result publication.
func (w *Worker) GatherU32(arr []uint32) error {
	if len(arr) != w.cluster.g.NumVertices() {
		panic("core: GatherU32 wants a full-length array")
	}
	tag := w.nextTags(1)
	lo, hi := w.MasterRange()
	if w.id != 0 {
		blob := bufpool.Get((hi - lo) * 4)
		for i := lo; i < hi; i++ {
			binary.LittleEndian.PutUint32(blob[(i-lo)*4:], arr[i])
		}
		return w.ep.SendBufs(0, comm.KindControl, tag, comm.Buffers{blob})
	}
	for peer := 1; peer < w.N(); peer++ {
		m, err := w.ep.Recv(comm.NodeID(peer), comm.KindControl, tag)
		if err != nil {
			return err
		}
		plo := w.cluster.part.Starts[peer]
		for off := 0; off+4 <= len(m.Payload); off += 4 {
			arr[plo+off/4] = binary.LittleEndian.Uint32(m.Payload[off:])
		}
		m.Release()
	}
	return nil
}

// AllGatherU32 fills arr (full length |V|) so that every machine sees
// every master's value: machine i contributes arr[lo_i:hi_i]. Used to
// publish results and replicated vertex properties.
func (w *Worker) AllGatherU32(arr []uint32) error {
	if len(arr) != w.cluster.g.NumVertices() {
		panic("core: AllGatherU32 wants a full-length array")
	}
	lo, hi := w.MasterRange()
	blob := make([]byte, (hi-lo)*4)
	for i := lo; i < hi; i++ {
		binary.LittleEndian.PutUint32(blob[(i-lo)*4:], arr[i])
	}
	all, err := comm.AllGatherBytes(w.ep, blob, w.nextTags(1))
	if err != nil {
		return err
	}
	for peer, payload := range all {
		if peer == w.id {
			continue
		}
		plo := w.cluster.part.Starts[peer]
		for off := 0; off+4 <= len(payload); off += 4 {
			arr[plo+off/4] = binary.LittleEndian.Uint32(payload[off:])
		}
	}
	return nil
}

// AllGatherF64 is AllGatherU32 for float64 arrays.
func (w *Worker) AllGatherF64(arr []float64) error {
	if len(arr) != w.cluster.g.NumVertices() {
		panic("core: AllGatherF64 wants a full-length array")
	}
	lo, hi := w.MasterRange()
	blob := make([]byte, (hi-lo)*8)
	for i := lo; i < hi; i++ {
		binary.LittleEndian.PutUint64(blob[(i-lo)*8:], math.Float64bits(arr[i]))
	}
	all, err := comm.AllGatherBytes(w.ep, blob, w.nextTags(1))
	if err != nil {
		return err
	}
	for peer, payload := range all {
		if peer == w.id {
			continue
		}
		plo := w.cluster.part.Starts[peer]
		for off := 0; off+8 <= len(payload); off += 8 {
			arr[plo+off/8] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		}
	}
	return nil
}

// AllGatherBlob exchanges an arbitrary per-node byte blob: the result is
// indexed by node ID and includes this node's own blob (aliased, not
// copied). Used by algorithms for custom reductions such as K-means
// re-centering.
func (w *Worker) AllGatherBlob(blob []byte) ([][]byte, error) {
	return comm.AllGatherBytes(w.ep, blob, w.nextTags(1))
}

// ProcessVertices applies fn to every owned master vertex (in parallel
// across the machine's workers) and returns the global sum of fn's
// results across all machines.
func (w *Worker) ProcessVertices(fn func(v graph.VertexID) int64) (int64, error) {
	lo, hi := w.MasterRange()
	var local atomic.Int64
	w.parallelRange(hi-lo, func(start, end int) {
		var acc int64
		for v := lo + start; v < lo+end; v++ {
			acc += fn(graph.VertexID(v))
		}
		local.Add(acc)
	})
	return w.AllReduceSum(local.Load())
}

// parallelRange splits [0, n) into Options.Workers chunks and runs fn on
// each concurrently. With Workers == 1 it runs inline.
func (w *Worker) parallelRange(n int, fn func(start, end int)) {
	nw := w.cluster.opts.Workers
	if nw <= 1 || n < 2*nw {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			fn(start, end)
		}(start, end)
	}
	wg.Wait()
}
