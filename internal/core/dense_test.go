package core

import (
	"fmt"
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/partition"
)

// sweep runs fn under a representative grid of engine configurations.
func sweep(t *testing.T, fn func(t *testing.T, opts Options)) {
	t.Helper()
	for _, p := range []int{1, 2, 4} {
		for _, mode := range []Mode{ModeGemini, ModeSympleGraph} {
			for _, cfg := range []struct {
				buffers, threshold, workers int
			}{
				{1, 0, 1},
				{2, 8, 2},
				{3, 0, 1},
			} {
				opts := Options{
					NumNodes:     p,
					Mode:         mode,
					DepThreshold: cfg.threshold,
					NumBuffers:   cfg.buffers,
					Workers:      cfg.workers,
				}
				name := fmt.Sprintf("p=%d/%v/B=%d/thr=%d/w=%d", p, mode, cfg.buffers, cfg.threshold, cfg.workers)
				t.Run(name, func(t *testing.T) { fn(t, opts) })
			}
		}
	}
}

// TestDenseInDegreeCount exercises a dense pass with no break: every
// source is scanned and partial counts are aggregated at the master. The
// result must equal the in-degree under every configuration.
func TestDenseInDegreeCount(t *testing.T) {
	g := graph.RMAT(9, 8, graph.Graph500Params(), 21)
	sweep(t, func(t *testing.T, opts Options) {
		c := mustCluster(t, g, opts)
		counts := make([]uint32, g.NumVertices())
		err := c.Run(func(w *Worker) error {
			_, err := ProcessEdgesDense(w, DenseParams[uint32]{
				Codec: U32Codec{},
				Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
					for range srcs {
						ctx.Edge()
					}
					ctx.Emit(uint32(len(srcs)))
				},
				Slot: func(dst graph.VertexID, msg uint32) int64 {
					counts[dst] += msg // masters own disjoint ranges
					return int64(msg)
				},
			})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if got, want := counts[v], uint32(g.InDegree(graph.VertexID(v))); got != want {
				t.Fatalf("vertex %d: count %d, want %d", v, got, want)
			}
		}
		if got, want := c.Stats().Totals.EdgesTraversed, g.NumEdges(); got != want {
			t.Fatalf("edges traversed %d, want %d", got, want)
		}
	})
}

// ringOrderInNeighbors returns dst's incoming neighbors in the exact
// order the circulant schedule visits them: machine (owner-1), then
// (owner-2), ... then owner itself, ascending source ID within a machine.
func ringOrderInNeighbors(g *graph.Graph, pt *partition.Partition, dst graph.VertexID) []graph.VertexID {
	d := pt.Owner(dst)
	var out []graph.VertexID
	for j := 0; j < pt.P; j++ {
		m := ((d-1-j)%pt.P + pt.P) % pt.P
		lo, hi := pt.Range(m)
		for _, u := range g.InNeighbors(dst) {
			if int(u) >= lo && int(u) < hi {
				out = append(out, u)
			}
		}
	}
	return out
}

// TestDenseBreakFirstMatch is the bottom-up-BFS skeleton: the signal
// emits the first frontier neighbor and breaks. Under every mode and
// configuration the winner must be the first frontier neighbor in ring
// order (updates are applied in step order, so first-wins is
// deterministic), and SympleGraph must traverse no more edges than
// Gemini.
func TestDenseBreakFirstMatch(t *testing.T) {
	g := graph.RMAT(9, 8, graph.Graph500Params(), 33)
	n := g.NumVertices()
	frontier := bitset.New(n)
	for v := 0; v < n; v += 3 {
		frontier.Set(v)
	}

	traversed := map[string]int64{}
	sweep(t, func(t *testing.T, opts Options) {
		c := mustCluster(t, g, opts)
		const none = ^uint32(0)
		parent := make([]uint32, n)
		for i := range parent {
			parent[i] = none
		}
		err := c.Run(func(w *Worker) error {
			_, err := ProcessEdgesDense(w, DenseParams[uint32]{
				Codec: U32Codec{},
				Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
					for _, u := range srcs {
						ctx.Edge()
						if frontier.Get(int(u)) {
							ctx.Emit(uint32(u))
							ctx.EmitDep()
							break
						}
					}
				},
				Slot: func(dst graph.VertexID, msg uint32) int64 {
					if parent[dst] == none {
						parent[dst] = msg
						return 1
					}
					return 0
				},
			})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			want := none
			for _, u := range ringOrderInNeighbors(g, c.Partition(), graph.VertexID(v)) {
				if frontier.Get(int(u)) {
					want = uint32(u)
					break
				}
			}
			if parent[v] != want {
				t.Fatalf("vertex %d: parent %d, want %d", v, parent[v], want)
			}
		}

		s := c.Stats().Totals
		key := fmt.Sprintf("p=%d", opts.NumNodes)
		if opts.Mode == ModeGemini {
			traversed[key] = s.EdgesTraversed
			if s.DependencyBytes != 0 {
				t.Fatalf("Gemini mode sent %d dependency bytes", s.DependencyBytes)
			}
		} else if gem, ok := traversed[key]; ok {
			if s.EdgesTraversed > gem {
				t.Fatalf("SympleGraph traversed %d edges, Gemini %d", s.EdgesTraversed, gem)
			}
			if opts.NumNodes > 1 && s.DependencyBytes == 0 {
				t.Fatal("SympleGraph sent no dependency bytes")
			}
		}
	})
}

// TestDenseDepPruningExactness: with full dependency tracking
// (threshold 0) every destination produces at most one update across the
// whole cluster — the loop-carried semantics is enforced precisely, so
// later machines do not even emit.
func TestDenseDepPruningExactness(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(8, 8, graph.Graph500Params(), 5))
	n := g.NumVertices()
	frontier := bitset.New(n)
	frontier.Fill()
	c := mustCluster(t, g, Options{NumNodes: 4, Mode: ModeSympleGraph, DepThreshold: 0, NumBuffers: 2})
	emitted := make([]int, n)
	err := c.Run(func(w *Worker) error {
		_, err := ProcessEdgesDense(w, DenseParams[uint32]{
			Codec: U32Codec{},
			Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
				for _, u := range srcs {
					ctx.Edge()
					if frontier.Get(int(u)) {
						ctx.Emit(uint32(u))
						ctx.EmitDep()
						break
					}
				}
			},
			Slot: func(dst graph.VertexID, msg uint32) int64 {
				emitted[dst]++ // master-only, disjoint
				return 1
			},
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		want := 0
		if g.InDegree(graph.VertexID(v)) > 0 {
			want = 1
		}
		if emitted[v] != want {
			t.Fatalf("vertex %d received %d updates, want %d", v, emitted[v], want)
		}
	}
	// With every vertex in the frontier, each non-isolated destination
	// should cost exactly one edge traversal.
	var nonIsolated int64
	for v := 0; v < n; v++ {
		if g.InDegree(graph.VertexID(v)) > 0 {
			nonIsolated++
		}
	}
	if got := c.Stats().Totals.EdgesTraversed; got != nonIsolated {
		t.Fatalf("edges traversed %d, want %d", got, nonIsolated)
	}
}

// TestDenseDataLane verifies float64 data-dependency propagation: each
// machine accumulates its local source count into the carried lane, and
// the master's Finalize sees the full in-degree for tracked vertices
// while untracked vertices fall back to partial-count updates.
func TestDenseDataLane(t *testing.T) {
	g := graph.RMAT(9, 8, graph.Graph500Params(), 77)
	n := g.NumVertices()
	for _, threshold := range []int{0, 8} {
		for _, mode := range []Mode{ModeGemini, ModeSympleGraph} {
			for _, p := range []int{1, 3, 4} {
				t.Run(fmt.Sprintf("thr=%d/%v/p=%d", threshold, mode, p), func(t *testing.T) {
					c := mustCluster(t, g, Options{
						NumNodes:     p,
						Mode:         mode,
						DepThreshold: threshold,
						NumBuffers:   2,
					})
					counts := make([]int64, n)
					err := c.Run(func(w *Worker) error {
						_, err := ProcessEdgesDense(w, DenseParams[int64]{
							Codec: I64Codec{},
							Signal: func(ctx *DenseCtx[int64], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
								if ctx.Tracked() {
									acc := ctx.DepFloat(0)
									for range srcs {
										ctx.Edge()
										acc++
									}
									ctx.SetDepFloat(0, acc)
								} else {
									for range srcs {
										ctx.Edge()
									}
									ctx.Emit(int64(len(srcs)))
								}
							},
							Slot: func(dst graph.VertexID, msg int64) int64 {
								counts[dst] += msg
								return 0
							},
							Finalize: func(dst graph.VertexID, skip bool, data []float64) int64 {
								counts[dst] += int64(data[0])
								return 0
							},
							Lanes: 1,
						})
						return err
					})
					if err != nil {
						t.Fatal(err)
					}
					for v := 0; v < n; v++ {
						if got, want := counts[v], int64(g.InDegree(graph.VertexID(v))); got != want {
							t.Fatalf("vertex %d: %d, want %d", v, got, want)
						}
					}
				})
			}
		}
	}
}

// TestDenseActiveDstFilter ensures filtered destinations are neither
// signaled nor slotted.
func TestDenseActiveDstFilter(t *testing.T) {
	g := graph.Complete(32)
	c := mustCluster(t, g, Options{NumNodes: 3, Mode: ModeSympleGraph})
	touched := make([]bool, 32)
	err := c.Run(func(w *Worker) error {
		_, err := ProcessEdgesDense(w, DenseParams[uint32]{
			Codec:     U32Codec{},
			ActiveDst: func(dst graph.VertexID) bool { return dst%2 == 0 },
			Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
				if dst%2 != 0 {
					t.Errorf("signal ran for filtered vertex %d", dst)
				}
				ctx.Emit(1)
			},
			Slot: func(dst graph.VertexID, msg uint32) int64 {
				touched[dst] = true
				return 1
			},
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 32; v++ {
		if touched[v] != (v%2 == 0) {
			t.Fatalf("vertex %d touched=%v", v, touched[v])
		}
	}
}

// TestDenseSkippedVerticesCounted checks that the VerticesSkipped stat
// moves when dependency bits prune whole mirror signal executions.
func TestDenseSkippedVerticesCounted(t *testing.T) {
	// A star's hub has in-edges from every partition; with the whole
	// frontier set, the first ring machine breaks and all later machines
	// skip the hub.
	g := graph.Star(1 << 10)
	frontier := bitset.New(g.NumVertices())
	frontier.Fill()
	c := mustCluster(t, g, Options{NumNodes: 4, Mode: ModeSympleGraph, DepThreshold: 32})
	err := c.Run(func(w *Worker) error {
		_, err := ProcessEdgesDense(w, DenseParams[uint32]{
			Codec: U32Codec{},
			Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
				for _, u := range srcs {
					ctx.Edge()
					if frontier.Get(int(u)) {
						ctx.Emit(uint32(u))
						ctx.EmitDep()
						break
					}
				}
			},
			Slot: func(graph.VertexID, uint32) int64 { return 1 },
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats().Totals
	if s.VerticesSkipped == 0 {
		t.Fatalf("no skipped vertices recorded: %+v", s)
	}
}

func TestGroupBounds(t *testing.T) {
	for _, tc := range []struct{ T, B int }{{0, 1}, {0, 3}, {1, 1}, {64, 2}, {100, 3}, {1000, 4}, {63, 8}} {
		b := groupBounds(tc.T, tc.B)
		if len(b) != tc.B+1 || b[0] != 0 || b[tc.B] != tc.T {
			t.Fatalf("T=%d B=%d: bounds %v", tc.T, tc.B, b)
		}
		for g := 1; g <= tc.B; g++ {
			if b[g] < b[g-1] {
				t.Fatalf("T=%d B=%d: bounds not monotone %v", tc.T, tc.B, b)
			}
			// Interior bounds are word-aligned unless clamped to T
			// (which makes the following groups empty).
			if g < tc.B && b[g]%64 != 0 && b[g] != tc.T {
				t.Fatalf("T=%d B=%d: interior bound %d unaligned", tc.T, tc.B, b[g])
			}
		}
	}
}

// TestCirculantScheduleIsPermutation validates the paper's Figure 7
// properties of the schedule formula the engine uses: in each step the
// machines process distinct partitions, and over all steps every (machine,
// partition) pair occurs exactly once.
func TestCirculantScheduleIsPermutation(t *testing.T) {
	for p := 1; p <= 8; p++ {
		pairSeen := map[[2]int]int{}
		for j := 0; j < p; j++ {
			partSeen := map[int]bool{}
			for m := 0; m < p; m++ {
				d := (m + 1 + j) % p
				if partSeen[d] {
					t.Fatalf("p=%d step %d: partition %d processed twice", p, j, d)
				}
				partSeen[d] = true
				pairSeen[[2]int{m, d}]++
			}
		}
		if len(pairSeen) != p*p {
			t.Fatalf("p=%d: %d pairs covered, want %d", p, len(pairSeen), p*p)
		}
		// The master's own block is processed in the final step.
		for m := 0; m < p; m++ {
			if d := (m + 1 + (p - 1)) % p; d != m {
				t.Fatalf("p=%d: machine %d processes %d in last step", p, m, d)
			}
		}
	}
}
