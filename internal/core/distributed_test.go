package core

import (
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
)

// TestDistributedNodeClusters runs the multi-process configuration
// faithfully in one test: each "process" builds its own Cluster with
// NewDistributedNode over its own TCP endpoint (no shared engine state)
// and they jointly execute a dense pass.
func TestDistributedNodeClusters(t *testing.T) {
	const p = 3
	g := graph.RMAT(8, 8, graph.Graph500Params(), 31)
	tcps, err := comm.NewTCPClusterLoopback(p)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, e := range tcps {
			e.Close()
		}
	}()

	counts := make([][]uint32, p) // per process, masters filled locally
	var wg sync.WaitGroup
	errs := make([]error, p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := NewDistributedNode(g, Options{
				NumNodes:   p,
				Mode:       ModeSympleGraph,
				NumBuffers: 2,
			}, tcps[i])
			if err != nil {
				errs[i] = err
				return
			}
			local := make([]uint32, g.NumVertices())
			counts[i] = local
			errs[i] = c.Run(func(w *Worker) error {
				if w.ID() != i {
					t.Errorf("process %d hosts worker %d", i, w.ID())
				}
				_, err := ProcessEdgesDense(w, DenseParams[uint32]{
					Codec: U32Codec{},
					Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
						for range srcs {
							ctx.Edge()
						}
						ctx.Emit(uint32(len(srcs)))
					},
					Slot: func(dst graph.VertexID, msg uint32) int64 {
						local[dst] += msg
						return 0
					},
				})
				if err != nil {
					return err
				}
				// Gather results at the node-0 process.
				return w.GatherU32(local)
			})
			if errs[i] == nil {
				s := c.Stats().Totals
				if s.EdgesTraversed == 0 {
					t.Errorf("process %d recorded no work", i)
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		if got, want := counts[0][v], uint32(g.InDegree(graph.VertexID(v))); got != want {
			t.Fatalf("vertex %d: %d, want %d", v, got, want)
		}
	}
}

func TestDistributedNodeValidation(t *testing.T) {
	g := graph.Ring(64)
	tcps, err := comm.NewTCPClusterLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, e := range tcps {
			e.Close()
		}
	}()
	if _, err := NewDistributedNode(g, Options{NumNodes: 3}, tcps[0]); err == nil {
		t.Fatal("mismatched cluster size accepted")
	}
}

// TestWaitInstrumentation: under a latency link, dependency and update
// wait counters must be populated in SympleGraph mode.
func TestWaitInstrumentation(t *testing.T) {
	g := graph.RMAT(8, 8, graph.Graph500Params(), 32)
	c := mustCluster(t, g, Options{
		NumNodes: 3,
		Mode:     ModeSympleGraph,
		Link:     comm.DefaultLink(),
	})
	err := c.Run(func(w *Worker) error {
		_, err := ProcessEdgesDense(w, DenseParams[uint32]{
			Codec: U32Codec{},
			Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
				for range srcs {
					ctx.Edge()
				}
				ctx.Emit(1)
			},
			Slot: func(graph.VertexID, uint32) int64 { return 1 },
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats().Totals
	if s.DependencyWait == 0 {
		t.Fatalf("no dependency wait recorded: %+v", s)
	}
	if s.UpdateWait == 0 {
		t.Fatalf("no update wait recorded: %+v", s)
	}
}
