package core

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// TestMoreNodesThanVertices: machines with empty partitions must
// participate in the schedule without deadlock or wrong results.
func TestMoreNodesThanVertices(t *testing.T) {
	g := graph.Ring(5)
	for _, mode := range []Mode{ModeGemini, ModeSympleGraph} {
		c := mustCluster(t, g, Options{NumNodes: 8, Mode: mode, NumBuffers: 2})
		counts := make([]uint32, 5)
		err := c.Run(func(w *Worker) error {
			_, err := ProcessEdgesDense(w, DenseParams[uint32]{
				Codec: U32Codec{},
				Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
					for range srcs {
						ctx.Edge()
					}
					ctx.Emit(uint32(len(srcs)))
				},
				Slot: func(dst graph.VertexID, msg uint32) int64 {
					counts[dst] += msg
					return 0
				},
			})
			return err
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for v := 0; v < 5; v++ {
			if counts[v] != 1 {
				t.Fatalf("%v: vertex %d count %d", mode, v, counts[v])
			}
		}
	}
}

// TestEmptyGraphCluster: a zero-vertex graph must run passes cleanly.
func TestEmptyGraphCluster(t *testing.T) {
	g := graph.MustFromEdges(0, nil, graph.BuildOptions{})
	c := mustCluster(t, g, Options{NumNodes: 3, Mode: ModeSympleGraph})
	err := c.Run(func(w *Worker) error {
		red, err := ProcessEdgesDense(w, DenseParams[uint32]{
			Codec: U32Codec{},
			Signal: func(*DenseCtx[uint32], graph.VertexID, []graph.VertexID, []float32) {
				t.Error("signal ran on empty graph")
			},
			Slot: func(graph.VertexID, uint32) int64 { return 1 },
		})
		if red != 0 {
			t.Errorf("reduced %d", red)
		}
		if err != nil {
			return err
		}
		_, err = ProcessEdgesSparse(w, SparseParams[uint32]{
			Codec:  U32Codec{},
			Signal: func(*SparseCtx[uint32], graph.VertexID, []graph.VertexID, []float32) {},
			Slot:   func(graph.VertexID, uint32) int64 { return 1 },
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIsolatedVerticesOnlyGraph: vertices without edges produce no
// signals, no updates, and Finalize still covers tracked masters.
func TestIsolatedVerticesOnlyGraph(t *testing.T) {
	g := graph.MustFromEdges(200, nil, graph.BuildOptions{})
	c := mustCluster(t, g, Options{NumNodes: 4, Mode: ModeSympleGraph, DepThreshold: 0})
	finalized := make([]bool, 200)
	err := c.Run(func(w *Worker) error {
		_, err := ProcessEdgesDense(w, DenseParams[struct{}]{
			Codec: UnitCodec{},
			Signal: func(*DenseCtx[struct{}], graph.VertexID, []graph.VertexID, []float32) {
				t.Error("signal ran without edges")
			},
			Slot: func(graph.VertexID, struct{}) int64 { return 1 },
			Finalize: func(dst graph.VertexID, skip bool, data []float64) int64 {
				if skip || data[0] != 0 {
					t.Errorf("vertex %d has dependency state without edges", dst)
				}
				finalized[dst] = true
				return 0
			},
			Lanes: 1,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, ok := range finalized {
		if !ok {
			t.Fatalf("vertex %d not finalized", v)
		}
	}
}

// TestManyWorkersFewVertices: more workers than vertices per node.
func TestManyWorkersFewVertices(t *testing.T) {
	g := graph.Complete(6)
	c := mustCluster(t, g, Options{NumNodes: 2, Mode: ModeSympleGraph, Workers: 16})
	total := 0
	err := c.Run(func(w *Worker) error {
		red, err := ProcessEdgesDense(w, DenseParams[uint32]{
			Codec: U32Codec{},
			Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
				for range srcs {
					ctx.Edge()
				}
				ctx.Emit(1)
			},
			Slot: func(graph.VertexID, uint32) int64 { return 1 },
		})
		if w.ID() == 0 {
			total = int(red)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each vertex receives one message per machine holding ≥1 of its
	// in-edges. (With 64-aligned chunking a 6-vertex graph lands on one
	// machine, so this is 6 — the assertion derives it rather than
	// assuming.)
	want := 0
	for v := 0; v < 6; v++ {
		owners := map[int]bool{}
		for _, u := range g.InNeighbors(graph.VertexID(v)) {
			owners[c.Partition().Owner(u)] = true
		}
		want += len(owners)
	}
	if total != want {
		t.Fatalf("reduced %d, want %d", total, want)
	}
}

// TestRepeatedRunsReuseCluster: tag bookkeeping must reset per Run so a
// cluster can execute many programs.
func TestRepeatedRunsReuseCluster(t *testing.T) {
	g := graph.RMAT(8, 8, graph.Graph500Params(), 2)
	c := mustCluster(t, g, Options{NumNodes: 3, Mode: ModeSympleGraph, NumBuffers: 2})
	for round := 0; round < 5; round++ {
		counts := make([]uint32, g.NumVertices())
		err := c.Run(func(w *Worker) error {
			_, err := ProcessEdgesDense(w, DenseParams[uint32]{
				Codec: U32Codec{},
				Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
					for range srcs {
						ctx.Edge()
					}
					ctx.Emit(uint32(len(srcs)))
				},
				Slot: func(dst graph.VertexID, msg uint32) int64 {
					counts[dst] += msg
					return 0
				},
			})
			return err
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if counts[v] != uint32(g.InDegree(graph.VertexID(v))) {
				t.Fatalf("round %d: vertex %d wrong", round, v)
			}
		}
	}
}

// TestSingleNodeAllOptionCombos: p=1 must work under every option since
// dependency propagation silently disables.
func TestSingleNodeAllOptionCombos(t *testing.T) {
	g := graph.Star(100)
	for _, buffers := range []int{1, 4} {
		for _, thr := range []int{0, 32} {
			t.Run(fmt.Sprintf("B=%d/thr=%d", buffers, thr), func(t *testing.T) {
				c := mustCluster(t, g, Options{
					NumNodes: 1, Mode: ModeSympleGraph, NumBuffers: buffers, DepThreshold: thr,
				})
				err := c.Run(func(w *Worker) error {
					red, err := ProcessEdgesDense(w, DenseParams[uint32]{
						Codec: U32Codec{},
						Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
							if ctx.Tracked() {
								t.Error("Tracked() true on a single machine")
							}
							ctx.Emit(1)
						},
						Slot: func(graph.VertexID, uint32) int64 { return 1 },
					})
					if red != 100 { // hub + 99 spokes have in-edges
						t.Errorf("reduced %d", red)
					}
					return err
				})
				if err != nil {
					t.Fatal(err)
				}
				if c.Stats().Totals.TotalBytes() != 0 {
					t.Fatal("single machine sent bytes")
				}
			})
		}
	}
}
