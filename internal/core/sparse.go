package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
)

// SparseParams configure one sparse (push-mode) edge-processing pass:
// each machine scans the out-edges of its frontier masters (all local
// under outgoing edge-cut) and routes messages to the destinations'
// masters. Sparse mode has no cross-machine loop-carried dependency — the
// paper's optimization targets pull mode (§2.2: "SympleGraph optimization
// focuses on pull mode") — but it is required by direction-optimizing BFS
// and general Gemini programs.
type SparseParams[M any] struct {
	// Codec serializes update messages.
	Codec Codec[M]
	// Frontier lists the local master vertices to process.
	Frontier []graph.VertexID
	// Signal is the sparse-signal UDF: it scans src's outgoing
	// neighbors, calling ctx.Edge per neighbor examined and ctx.EmitTo
	// to send a message to a destination's master.
	Signal func(ctx *SparseCtx[M], src graph.VertexID, dsts []graph.VertexID, weights []float32)
	// Slot aggregates one message at the destination's master and
	// returns a contribution to the pass's reduced value.
	Slot func(dst graph.VertexID, msg M) int64
}

// SparseCtx is the per-worker sparse signal context.
type SparseCtx[M any] struct {
	w     *Worker
	codec Codec[M]
	size  int
	bufs  [][]byte // per destination machine (the current chunk when pooled)
	edges int64

	// pooled selects slab-backed chunked assembly (see emitChunkBytes);
	// full chunks retire into the shared per-peer lists under chunksMu.
	pooled   bool
	chunks   [][][]byte
	chunksMu *sync.Mutex
}

// Edge records one neighbor traversal.
func (ctx *SparseCtx[M]) Edge() { ctx.edges++ }

// EmitTo sends msg to dst's master slot.
func (ctx *SparseCtx[M]) EmitTo(dst graph.VertexID, msg M) {
	owner := ctx.w.cluster.part.Owner(dst)
	buf := ctx.bufs[owner]
	rec := 4 + ctx.size
	if ctx.pooled && cap(buf)-len(buf) < rec {
		if len(buf) > 0 {
			ctx.chunksMu.Lock()
			ctx.chunks[owner] = append(ctx.chunks[owner], buf)
			ctx.chunksMu.Unlock()
		} else if buf != nil {
			bufpool.Put(buf)
		}
		buf = bufpool.Get(emitChunkBytes)[:0]
	}
	off := len(buf)
	buf = append(buf, make([]byte, rec)...)
	binary.LittleEndian.PutUint32(buf[off:], uint32(dst))
	ctx.codec.Encode(buf[off+4:], msg)
	ctx.bufs[owner] = buf
}

// ProcessEdgesSparse runs one sparse pass and returns the global sum of
// slot contributions. Every frontier vertex must be a local master.
func ProcessEdgesSparse[M any](w *Worker, params SparseParams[M]) (int64, error) {
	p := w.N()
	base := w.nextTags(1)
	g := w.cluster.g
	w.observeStep()
	pass := w.sparsePass
	w.sparsePass++
	pushStart := w.spanStart()

	pooled := !w.cluster.opts.LegacyDataPlane
	chunks := make([][][]byte, p) // per-peer buffer lists (whole records per buffer)
	var mu sync.Mutex
	w.parallelRange(len(params.Frontier), func(start, end int) {
		ctx := &SparseCtx[M]{
			w:        w,
			codec:    params.Codec,
			size:     params.Codec.Size(),
			bufs:     make([][]byte, p),
			pooled:   pooled,
			chunks:   chunks,
			chunksMu: &mu,
		}
		for _, src := range params.Frontier[start:end] {
			if !w.Owns(src) {
				panic(fmt.Sprintf("core: node %d asked to push from vertex %d it does not own", w.id, src))
			}
			params.Signal(ctx, src, g.OutNeighbors(src), g.OutWeights(src))
		}
		w.addEdges(ctx.edges)
		mu.Lock()
		for peer, b := range ctx.bufs {
			if len(b) > 0 {
				chunks[peer] = append(chunks[peer], b)
			} else if pooled && b != nil {
				bufpool.Put(b)
			}
		}
		mu.Unlock()
	})

	var reduced int64
	for peer := 0; peer < p; peer++ {
		if peer == w.id {
			for _, b := range chunks[peer] {
				reduced += applySparseUpdates(w, &params, b)
			}
			if pooled {
				for _, b := range chunks[peer] {
					bufpool.Put(b)
				}
			}
			continue
		}
		if pooled {
			// Vectored hand-off: no concatenation, chunks return to the
			// slab after the write.
			if err := w.ep.SendBufs(comm.NodeID(peer), comm.KindUpdate, base, comm.Buffers(chunks[peer])); err != nil {
				return 0, err
			}
		} else {
			var total int
			for _, b := range chunks[peer] {
				total += len(b)
			}
			payload := make([]byte, 0, total)
			for _, b := range chunks[peer] {
				payload = append(payload, b...)
			}
			if err := w.ep.Send(comm.NodeID(peer), comm.KindUpdate, base, payload); err != nil {
				return 0, err
			}
		}
	}
	w.endSpan(obs.PhaseSparsePush, pass, -1, -1, pushStart)
	for peer := 0; peer < p; peer++ {
		if peer == w.id {
			continue
		}
		m, err := w.recvTimed(&w.updWait, comm.NodeID(peer), comm.KindUpdate, base,
			obs.PhaseUpdateWait, pass, -1, -1)
		if err != nil {
			return 0, err
		}
		reduced += applySparseUpdates(w, &params, m.Payload)
		m.Release()
	}
	return w.AllReduceSum(reduced)
}

func applySparseUpdates[M any](w *Worker, params *SparseParams[M], payload []byte) int64 {
	rec := 4 + params.Codec.Size()
	var reduced int64
	for off := 0; off+rec <= len(payload); off += rec {
		dst := graph.VertexID(binary.LittleEndian.Uint32(payload[off:]))
		if !w.Owns(dst) {
			panic(fmt.Sprintf("core: node %d received sparse update for vertex %d it does not own", w.id, dst))
		}
		reduced += params.Slot(dst, params.Codec.Decode(payload[off+4:]))
	}
	return reduced
}
