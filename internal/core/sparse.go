package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
)

// SparseParams configure one sparse (push-mode) edge-processing pass:
// each machine scans the out-edges of its frontier masters (all local
// under outgoing edge-cut) and routes messages to the destinations'
// masters. Sparse mode has no cross-machine loop-carried dependency — the
// paper's optimization targets pull mode (§2.2: "SympleGraph optimization
// focuses on pull mode") — but it is required by direction-optimizing BFS
// and general Gemini programs.
type SparseParams[M any] struct {
	// Codec serializes update messages.
	Codec Codec[M]
	// Frontier lists the local master vertices to process.
	Frontier []graph.VertexID
	// Signal is the sparse-signal UDF: it scans src's outgoing
	// neighbors, calling ctx.Edge per neighbor examined and ctx.EmitTo
	// to send a message to a destination's master.
	Signal func(ctx *SparseCtx[M], src graph.VertexID, dsts []graph.VertexID, weights []float32)
	// Slot aggregates one message at the destination's master and
	// returns a contribution to the pass's reduced value.
	Slot func(dst graph.VertexID, msg M) int64
}

// SparseCtx is the per-worker sparse signal context.
type SparseCtx[M any] struct {
	w     *Worker
	codec Codec[M]
	size  int
	bufs  [][]byte // per destination machine
	edges int64
}

// Edge records one neighbor traversal.
func (ctx *SparseCtx[M]) Edge() { ctx.edges++ }

// EmitTo sends msg to dst's master slot.
func (ctx *SparseCtx[M]) EmitTo(dst graph.VertexID, msg M) {
	owner := ctx.w.cluster.part.Owner(dst)
	buf := ctx.bufs[owner]
	off := len(buf)
	buf = append(buf, make([]byte, 4+ctx.size)...)
	binary.LittleEndian.PutUint32(buf[off:], uint32(dst))
	ctx.codec.Encode(buf[off+4:], msg)
	ctx.bufs[owner] = buf
}

// ProcessEdgesSparse runs one sparse pass and returns the global sum of
// slot contributions. Every frontier vertex must be a local master.
func ProcessEdgesSparse[M any](w *Worker, params SparseParams[M]) (int64, error) {
	p := w.N()
	base := w.nextTags(1)
	g := w.cluster.g
	w.observeStep()
	pass := w.sparsePass
	w.sparsePass++
	pushStart := w.spanStart()

	merged := make([][][]byte, 0) // per-chunk per-peer buffers
	var mu sync.Mutex
	w.parallelRange(len(params.Frontier), func(start, end int) {
		ctx := &SparseCtx[M]{
			w:     w,
			codec: params.Codec,
			size:  params.Codec.Size(),
			bufs:  make([][]byte, p),
		}
		for _, src := range params.Frontier[start:end] {
			if !w.Owns(src) {
				panic(fmt.Sprintf("core: node %d asked to push from vertex %d it does not own", w.id, src))
			}
			params.Signal(ctx, src, g.OutNeighbors(src), g.OutWeights(src))
		}
		w.addEdges(ctx.edges)
		mu.Lock()
		merged = append(merged, ctx.bufs)
		mu.Unlock()
	})

	perPeer := make([][]byte, p)
	for _, bufs := range merged {
		for peer, b := range bufs {
			perPeer[peer] = append(perPeer[peer], b...)
		}
	}

	var reduced int64
	for peer := 0; peer < p; peer++ {
		if peer == w.id {
			reduced += applySparseUpdates(w, &params, perPeer[peer])
			continue
		}
		if err := w.ep.Send(comm.NodeID(peer), comm.KindUpdate, base, perPeer[peer]); err != nil {
			return 0, err
		}
	}
	w.endSpan(obs.PhaseSparsePush, pass, -1, -1, pushStart)
	for peer := 0; peer < p; peer++ {
		if peer == w.id {
			continue
		}
		m, err := w.recvTimed(&w.updWait, comm.NodeID(peer), comm.KindUpdate, base,
			obs.PhaseUpdateWait, pass, -1, -1)
		if err != nil {
			return 0, err
		}
		reduced += applySparseUpdates(w, &params, m.Payload)
	}
	return w.AllReduceSum(reduced)
}

func applySparseUpdates[M any](w *Worker, params *SparseParams[M], payload []byte) int64 {
	rec := 4 + params.Codec.Size()
	var reduced int64
	for off := 0; off+rec <= len(payload); off += rec {
		dst := graph.VertexID(binary.LittleEndian.Uint32(payload[off:]))
		if !w.Owns(dst) {
			panic(fmt.Sprintf("core: node %d received sparse update for vertex %d it does not own", w.id, dst))
		}
		reduced += params.Slot(dst, params.Codec.Decode(payload[off+4:]))
	}
	return reduced
}
