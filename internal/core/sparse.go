package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/bufpool"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
)

// SparseParams configure one sparse (push-mode) edge-processing pass:
// each machine scans the out-edges of its frontier masters (all local
// under outgoing edge-cut) and routes messages to the destinations'
// masters. Sparse mode has no cross-machine loop-carried dependency — the
// paper's optimization targets pull mode (§2.2: "SympleGraph optimization
// focuses on pull mode") — but it is required by direction-optimizing BFS
// and general Gemini programs.
type SparseParams[M any] struct {
	// Codec serializes update messages.
	Codec Codec[M]
	// Frontier lists the local master vertices to process. Engine
	// determinism (and bit-identity between the legacy and binned
	// scans) assumes ascending vertex order, which is how every
	// in-tree frontier is built.
	Frontier []graph.VertexID
	// Signal is the sparse-signal UDF: it scans src's outgoing
	// neighbors, calling ctx.Edge per neighbor examined and ctx.EmitTo
	// to send a message to a destination's master.
	//
	// The binned scan may invoke Signal several times for one src —
	// once per destination partition, with the adjacency subrange
	// (still in adjacency order) owned by that partition. Sparse UDFs
	// must therefore be per-edge decomposable: decide per destination
	// in the supplied slice, and EmitTo only those destinations. There
	// is no sparse analogue of the dense loop-carried break, so this
	// costs no expressiveness.
	Signal func(ctx *SparseCtx[M], src graph.VertexID, dsts []graph.VertexID, weights []float32)
	// Slot aggregates one message at the destination's master and
	// returns a contribution to the pass's reduced value.
	Slot func(dst graph.VertexID, msg M) int64
}

// SparseCtx is the per-worker sparse signal context.
type SparseCtx[M any] struct {
	w     *Worker
	codec Codec[M]
	size  int
	bufs  [][]byte // per destination machine (the current chunk when pooled)
	edges int64

	// pooled selects slab-backed chunked assembly (see emitChunkBytes);
	// full chunks retire into the shared per-peer lists under chunksMu.
	pooled   bool
	chunks   [][][]byte
	chunksMu *sync.Mutex

	// Binned scan state: the scan fixes the destination partition
	// before invoking Signal, so EmitTo appends to the current bin
	// directly — no per-emit owner lookup. curLo/curHi bound the
	// current partition's vertex range; emitting outside it is a UDF
	// contract violation.
	binned       bool
	cur          []byte
	curQ         int
	curLo, curHi graph.VertexID
}

// Edge records one neighbor traversal.
func (ctx *SparseCtx[M]) Edge() { ctx.edges++ }

// EmitTo sends msg to dst's master slot.
func (ctx *SparseCtx[M]) EmitTo(dst graph.VertexID, msg M) {
	rec := 4 + ctx.size
	if ctx.binned {
		// The scan pinned the destination partition: append to its bin,
		// asserting the UDF kept to the supplied adjacency slice.
		if dst < ctx.curLo || dst >= ctx.curHi {
			panic(fmt.Sprintf("core: sparse signal emitted to vertex %d outside partition %d [%d,%d)",
				dst, ctx.curQ, ctx.curLo, ctx.curHi))
		}
		buf := ctx.cur
		if cap(buf)-len(buf) < rec {
			if len(buf) > 0 {
				ctx.chunksMu.Lock()
				ctx.chunks[ctx.curQ] = append(ctx.chunks[ctx.curQ], buf)
				ctx.chunksMu.Unlock()
			} else if buf != nil {
				bufpool.Put(buf)
			}
			buf = bufpool.Get(emitChunkBytes)[:0]
		}
		off := len(buf)
		buf = append(buf, make([]byte, rec)...)
		binary.LittleEndian.PutUint32(buf[off:], uint32(dst))
		ctx.codec.Encode(buf[off+4:], msg)
		ctx.cur = buf
		return
	}
	owner := ctx.w.cluster.part.Owner(dst)
	buf := ctx.bufs[owner]
	if ctx.pooled && cap(buf)-len(buf) < rec {
		if len(buf) > 0 {
			ctx.chunksMu.Lock()
			ctx.chunks[owner] = append(ctx.chunks[owner], buf)
			ctx.chunksMu.Unlock()
		} else if buf != nil {
			bufpool.Put(buf)
		}
		buf = bufpool.Get(emitChunkBytes)[:0]
	}
	off := len(buf)
	buf = append(buf, make([]byte, rec)...)
	binary.LittleEndian.PutUint32(buf[off:], uint32(dst))
	ctx.codec.Encode(buf[off+4:], msg)
	ctx.bufs[owner] = buf
}

// beginPart switches the context's current bin to destination partition
// q, saving the open bin of the previous partition for later.
func (ctx *SparseCtx[M]) beginPart(q int) {
	ctx.bufs[ctx.curQ] = ctx.cur
	ctx.cur = ctx.bufs[q]
	ctx.curQ = q
	lo, hi := ctx.w.cluster.part.Range(q)
	ctx.curLo, ctx.curHi = graph.VertexID(lo), graph.VertexID(hi)
}

// ProcessEdgesSparse runs one sparse pass and returns the global sum of
// slot contributions. Every frontier vertex must be a local master.
func ProcessEdgesSparse[M any](w *Worker, params SparseParams[M]) (int64, error) {
	if w.cluster.opts.binnedScan() && w.layout.Blocked != nil && frontierAscending(params.Frontier) {
		return processEdgesSparseBinned(w, &params)
	}
	p := w.N()
	base := w.nextTags(1)
	g := w.cluster.g
	w.observeStep()
	pass := w.sparsePass
	w.sparsePass++
	pushStart := w.spanStart()

	pooled := !w.cluster.opts.LegacyDataPlane
	chunks := make([][][]byte, p) // per-peer buffer lists (whole records per buffer)
	var mu sync.Mutex
	w.parallelRange(len(params.Frontier), func(start, end int) {
		ctx := &SparseCtx[M]{
			w:        w,
			codec:    params.Codec,
			size:     params.Codec.Size(),
			bufs:     make([][]byte, p),
			pooled:   pooled,
			chunks:   chunks,
			chunksMu: &mu,
		}
		for _, src := range params.Frontier[start:end] {
			if !w.Owns(src) {
				panic(fmt.Sprintf("core: node %d asked to push from vertex %d it does not own", w.id, src))
			}
			params.Signal(ctx, src, g.OutNeighbors(src), g.OutWeights(src))
		}
		w.addEdges(ctx.edges)
		mu.Lock()
		for peer, b := range ctx.bufs {
			if len(b) > 0 {
				chunks[peer] = append(chunks[peer], b)
			} else if pooled && b != nil {
				bufpool.Put(b)
			}
		}
		mu.Unlock()
	})
	return sparseExchange(w, &params, base, pass, pooled, chunks, pushStart)
}

// processEdgesSparseBinned is the partition-binned sparse pass (PR 9's
// scan). The frontier is split into source blocks of the blocked CSR;
// for each (block, destination partition) range the scan fixes the bin
// once and signals every frontier source's partition-restricted
// adjacency row into it — replacing the legacy path's per-emit owner
// binary search with a slice append, and confining the scan's writes to
// one cache-resident bin at a time. Per destination peer the emitted
// byte stream is identical to the legacy scan's (sources ascend across
// blocks, adjacency order within a row), so results — including
// first-wins slots — are bit-identical under the engine's determinism
// contract (Workers == 1). Scan work stays frontier-proportional: rows
// are offset lookups, never block-wide edge sweeps.
func processEdgesSparseBinned[M any](w *Worker, params *SparseParams[M]) (int64, error) {
	p := w.N()
	base := w.nextTags(1)
	bc := w.layout.Blocked
	w.observeStep()
	pass := w.sparsePass
	w.sparsePass++
	pushStart := w.spanStart()

	// Group the ascending frontier into per-source-block subslices.
	srcLo, _ := bc.SrcRange()
	bv := bc.BlockVerts()
	f := params.Frontier
	var groups [][]graph.VertexID
	for i := 0; i < len(f); {
		if !w.Owns(f[i]) {
			panic(fmt.Sprintf("core: node %d asked to push from vertex %d it does not own", w.id, f[i]))
		}
		b := (int(f[i]) - srcLo) / bv
		j := i + 1
		for j < len(f) && (int(f[j])-srcLo)/bv == b {
			j++
		}
		groups = append(groups, f[i:j])
		i = j
	}

	chunks := make([][][]byte, p) // per-peer bin lists (whole records per bin)
	var mu sync.Mutex
	w.parallelRange(len(groups), func(start, end int) {
		ctx := &SparseCtx[M]{
			w:        w,
			codec:    params.Codec,
			size:     params.Codec.Size(),
			bufs:     make([][]byte, p),
			pooled:   true,
			chunks:   chunks,
			chunksMu: &mu,
			binned:   true,
		}
		ctx.beginPart(0)
		for _, srcs := range groups[start:end] {
			for q := 0; q < p; q++ {
				ctx.beginPart(q)
				for _, src := range srcs {
					dsts, ws := bc.Row(src, q)
					if len(dsts) == 0 {
						continue
					}
					params.Signal(ctx, src, dsts, ws)
				}
			}
		}
		ctx.bufs[ctx.curQ] = ctx.cur
		w.addEdges(ctx.edges)
		mu.Lock()
		for peer, b := range ctx.bufs {
			if len(b) > 0 {
				chunks[peer] = append(chunks[peer], b)
			} else if b != nil {
				bufpool.Put(b)
			}
		}
		mu.Unlock()
	})
	return sparseExchange(w, params, base, pass, true, chunks, pushStart)
}

// frontierAscending reports whether the frontier is strictly ascending —
// the order both scans emit in. A non-ascending frontier (possible for
// out-of-tree callers) falls back to the legacy scan, which follows
// list order exactly.
func frontierAscending(f []graph.VertexID) bool {
	for i := 1; i < len(f); i++ {
		if f[i-1] >= f[i] {
			return false
		}
	}
	return true
}

// sparseExchange ships the pass's per-peer buffers, applies the local
// share, then receives and applies each peer's frame — common to both
// scans. Remote frames arrive as one vectored frame per (peer, pass).
func sparseExchange[M any](w *Worker, params *SparseParams[M], base int32, pass int,
	pooled bool, chunks [][][]byte, pushStart time.Time) (int64, error) {
	p := w.N()
	var reduced int64
	for peer := 0; peer < p; peer++ {
		if peer == w.id {
			for _, b := range chunks[peer] {
				reduced += applySparseUpdates(w, params, b)
			}
			if pooled {
				for _, b := range chunks[peer] {
					bufpool.Put(b)
				}
			}
			continue
		}
		if pooled {
			// Vectored hand-off: no concatenation, chunks return to the
			// slab after the write.
			if err := w.ep.SendBufs(comm.NodeID(peer), comm.KindUpdate, base, comm.Buffers(chunks[peer])); err != nil {
				return 0, err
			}
		} else {
			var total int
			for _, b := range chunks[peer] {
				total += len(b)
			}
			payload := make([]byte, 0, total)
			for _, b := range chunks[peer] {
				payload = append(payload, b...)
			}
			if err := w.ep.Send(comm.NodeID(peer), comm.KindUpdate, base, payload); err != nil {
				return 0, err
			}
		}
	}
	w.endSpan(obs.PhaseSparsePush, pass, -1, -1, pushStart)
	for peer := 0; peer < p; peer++ {
		if peer == w.id {
			continue
		}
		m, err := w.recvTimed(&w.updWait, comm.NodeID(peer), comm.KindUpdate, base,
			obs.PhaseUpdateWait, pass, -1, -1)
		if err != nil {
			return 0, err
		}
		reduced += applySparseUpdates(w, params, m.Payload)
		m.Release()
	}
	return w.AllReduceSum(reduced)
}

func applySparseUpdates[M any](w *Worker, params *SparseParams[M], payload []byte) int64 {
	rec := 4 + params.Codec.Size()
	var reduced int64
	for off := 0; off+rec <= len(payload); off += rec {
		dst := graph.VertexID(binary.LittleEndian.Uint32(payload[off:]))
		if !w.Owns(dst) {
			panic(fmt.Sprintf("core: node %d received sparse update for vertex %d it does not own", w.id, dst))
		}
		reduced += params.Slot(dst, params.Codec.Decode(payload[off+4:]))
	}
	return reduced
}
