package core

import (
	"context"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
)

// Engine is the surface the serving and algorithm layers program
// against: everything they need from a cluster — running SPMD programs,
// lifecycle (poison/reset/close), statistics, and the per-request hooks
// a pool binds before dispatching a query — without naming the concrete
// implementation.
//
// *Cluster is the canonical implementation, covering both the
// in-process simulation (NewCluster) and one machine of a genuinely
// distributed ring (NewDistributedNode). The serving layer adds a
// remote implementation that fronts a cluster of worker processes; an
// algorithm written against Engine runs unchanged on any of them.
type Engine interface {
	// Graph returns the graph the engine was built over.
	Graph() *graph.Graph
	// Options returns the engine's configuration.
	Options() Options
	// Partition returns the vertex partition.
	Partition() *partition.Partition

	// Run executes prog SPMD-style across the engine's machines and
	// blocks until every machine this process hosts has finished.
	Run(prog func(w *Worker) error) error
	// RunContext is Run with cooperative cancellation.
	RunContext(ctx context.Context, prog func(w *Worker) error) error
	// Execute runs prog under the engine's configured resilience
	// policy (plain Run, or RunWithRecovery when MaxRestarts > 0).
	// Algorithms call Execute so one policy governs every entry point.
	Execute(prog func(w *Worker) error) error

	// Poisoned returns the error of the failed run that poisoned the
	// engine, or nil while it is healthy.
	Poisoned() error
	// Reset re-forms a poisoned engine in place when the implementation
	// supports it; implementations that cannot (a distributed node does
	// not own its peers) return an error and the caller rebuilds.
	Reset() error
	// Close releases the engine's transport and resources.
	Close() error

	// Stats returns the full statistics snapshot for the most recent
	// run; Stats().Totals holds the aggregate totals.
	Stats() StatsSnapshot

	// SetBaseContext installs the context governing the context-less
	// entry points (nil restores context.Background); SetTracer swaps
	// the tracer subsequent runs record into. A serving layer binds
	// both per leased request and clears them on release. Neither may
	// be called while a run is in progress.
	SetBaseContext(ctx context.Context)
	SetTracer(tr *obs.Tracer)

	// ClearCheckpoints discards the engine's checkpoint store, so one
	// query's snapshots never leak into the next on a reused engine.
	ClearCheckpoints()
}

// *Cluster is the reference Engine implementation.
var _ Engine = (*Cluster)(nil)

// NewEngine builds an in-process engine: every machine of the simulated
// cluster lives in this process, wired over memory channels. It is
// NewCluster behind the interface, for callers (the serving layer) that
// program against Engine and never touch the concrete type.
func NewEngine(g *graph.Graph, opts Options) (Engine, error) {
	return NewCluster(g, opts)
}

// NewDistributedEngine builds the engine for one machine of a genuinely
// distributed cluster: this process hosts the single node ep.ID() and
// reaches its peers through ep. It is NewDistributedNode behind the
// interface.
func NewDistributedEngine(g *graph.Graph, opts Options, ep comm.Endpoint) (Engine, error) {
	return NewDistributedNode(g, opts, ep)
}
