package core

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// checkpointStore is the cluster's stand-in for stable storage: it holds
// the last globally consistent superstep snapshot across run failures
// and transport resets. A checkpoint at iteration k commits only once
// every machine has saved its blob for k — a two-phase rule that keeps a
// crash landing mid-save from leaving a torn snapshot. Earlier staged
// iterations and anything at or below the new commit are discarded.
//
// In a genuinely distributed deployment the blobs would live on a
// replicated store; the in-process cluster keeps them in the Cluster so
// they survive the simulated machine death.
type checkpointStore struct {
	mu            sync.Mutex
	members       []int // node IDs that must save before an iter commits
	committedIter int
	committed     map[int][]byte
	staging       map[int]map[int][]byte // iter → node → blob

	saved    int64 // blobs accepted
	commits  int64 // iterations fully committed
	restores int64 // blobs handed back
}

func newCheckpointStore(members []int) *checkpointStore {
	return &checkpointStore{
		members:       append([]int(nil), members...),
		committedIter: -1,
		staging:       make(map[int]map[int][]byte),
	}
}

// save stages node's blob for iteration iter and commits the iteration
// when every member has saved it. The store takes ownership of blob.
func (s *checkpointStore) save(node, iter int, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if iter <= s.committedIter {
		return // a straggler re-saving the past after a restore
	}
	blobs, ok := s.staging[iter]
	if !ok {
		blobs = make(map[int][]byte, len(s.members))
		s.staging[iter] = blobs
	}
	blobs[node] = blob
	s.saved++
	for _, m := range s.members {
		if blobs[m] == nil {
			return
		}
	}
	s.committedIter = iter
	s.committed = blobs
	s.commits++
	for k := range s.staging {
		if k <= s.committedIter {
			delete(s.staging, k)
		}
	}
}

// restore returns node's blob at the last committed iteration.
func (s *checkpointStore) restore(node int) (iter int, blob []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.committedIter < 0 {
		return 0, nil, false
	}
	s.restores++
	return s.committedIter, s.committed[node], true
}

// clear empties the store for a fresh program. Called at the top of a
// run, not between recovery attempts of the same program.
func (s *checkpointStore) clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.committedIter = -1
	s.committed = nil
	s.staging = make(map[int]map[int][]byte)
}

func (s *checkpointStore) stats() (saved, commits, restores int64, committedIter int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saved, s.commits, s.restores, s.committedIter
}

// Checkpoint is a worker's handle on superstep checkpointing. Programs
// that opt in call Restore once at the top of their superstep loop and
// Save at every iteration Due reports true for; the engine keeps the
// last globally consistent snapshot and hands it back after a recovery.
// All methods are no-ops (and Restore reports false) when
// Options.CheckpointEvery is 0.
type Checkpoint struct {
	w *Worker
}

// Checkpoint returns this worker's checkpoint handle.
func (w *Worker) Checkpoint() Checkpoint { return Checkpoint{w: w} }

// Enabled reports whether checkpointing is configured for this cluster.
func (c Checkpoint) Enabled() bool { return c.w.cluster.ckpt != nil }

// Every returns the configured checkpoint cadence K (0 when disabled).
func (c Checkpoint) Every() int { return c.w.cluster.opts.CheckpointEvery }

// Due reports whether iteration iter is a checkpoint boundary. All
// workers see the same answer for the same iter, preserving SPMD
// alignment of the save calls.
func (c Checkpoint) Due(iter int) bool {
	return c.Enabled() && iter > 0 && iter%c.Every() == 0
}

// Save stores this node's snapshot for iteration iter. The blob must be
// non-empty and becomes engine-owned. The iteration commits once every
// node has saved it.
func (c Checkpoint) Save(iter int, blob []byte) {
	if !c.Enabled() || len(blob) == 0 {
		return
	}
	start := c.w.spanStart()
	c.w.cluster.ckpt.save(c.w.id, iter, blob)
	c.w.endSpan(obs.PhaseCheckpoint, iter, -1, -1, start)
}

// Restore returns this node's blob at the last committed iteration, or
// ok=false when there is none (fresh program or checkpointing off) —
// in which case the program starts from its initial state.
func (c Checkpoint) Restore() (iter int, blob []byte, ok bool) {
	if !c.Enabled() {
		return 0, nil, false
	}
	start := time.Now()
	iter, blob, ok = c.w.cluster.ckpt.restore(c.w.id)
	if ok && c.w.tr != nil {
		c.w.tr.Record(c.w.id, obs.PhaseRecovery, iter, -1, -1, start, time.Since(start))
	}
	return iter, blob, ok
}
