package core

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// CheckpointStats summarizes a store's lifetime activity.
type CheckpointStats struct {
	// Saved counts blobs accepted, Commits iterations fully committed,
	// Restores blobs handed back to recovering workers.
	Saved, Commits, Restores int64
	// CommittedIter is the last globally consistent iteration, -1 when
	// no checkpoint has committed yet.
	CommittedIter int
}

// CheckpointStore is stable storage for superstep snapshots. The engine
// enforces a two-phase rule through it: Save stages one node's blob for
// an iteration, and the iteration commits only once every member node
// has saved it, so a crash landing mid-save can never leave a torn
// snapshot visible to Restore.
//
// The default store (used whenever Options.Checkpoints is nil) keeps
// blobs in process memory — they survive the simulated machine death of
// a chaos run but not a real process death. FileCheckpointStore persists
// them to a directory so a restarted process can resume.
//
// Implementations must be safe for concurrent use by the workers of a
// run.
type CheckpointStore interface {
	// SetMembers declares the node IDs that must save an iteration
	// before it commits. The cluster calls it once at construction.
	SetMembers(members []int)
	// Save stages node's blob for iteration iter; the store takes
	// ownership of blob. Saves at or below the committed iteration are
	// ignored (a straggler re-saving the past after a restore).
	Save(node, iter int, blob []byte)
	// Restore returns node's blob at the last committed iteration, or
	// ok=false when nothing has committed.
	Restore(node int) (iter int, blob []byte, ok bool)
	// Clear discards every staged and committed snapshot.
	Clear()
	// Stats reports lifetime counters.
	Stats() CheckpointStats
}

// memCheckpointStore is the cluster's default stand-in for stable
// storage: it holds the last globally consistent superstep snapshot
// across run failures and transport resets, in process memory.
type memCheckpointStore struct {
	mu            sync.Mutex
	members       []int // node IDs that must save before an iter commits
	committedIter int
	committed     map[int][]byte
	staging       map[int]map[int][]byte // iter → node → blob

	saved    int64 // blobs accepted
	commits  int64 // iterations fully committed
	restores int64 // blobs handed back
}

// NewMemCheckpointStore returns the default in-memory store.
func NewMemCheckpointStore() CheckpointStore {
	return &memCheckpointStore{
		committedIter: -1,
		staging:       make(map[int]map[int][]byte),
	}
}

// SetMembers declares the committing quorum.
func (s *memCheckpointStore) SetMembers(members []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.members = append([]int(nil), members...)
}

// Save stages node's blob for iteration iter and commits the iteration
// when every member has saved it.
func (s *memCheckpointStore) Save(node, iter int, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if iter <= s.committedIter {
		return // a straggler re-saving the past after a restore
	}
	blobs, ok := s.staging[iter]
	if !ok {
		blobs = make(map[int][]byte, len(s.members))
		s.staging[iter] = blobs
	}
	blobs[node] = blob
	s.saved++
	for _, m := range s.members {
		if blobs[m] == nil {
			return
		}
	}
	s.committedIter = iter
	s.committed = blobs
	s.commits++
	for k := range s.staging {
		if k <= s.committedIter {
			delete(s.staging, k)
		}
	}
}

// Restore returns node's blob at the last committed iteration.
func (s *memCheckpointStore) Restore(node int) (iter int, blob []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.committedIter < 0 {
		return 0, nil, false
	}
	s.restores++
	return s.committedIter, s.committed[node], true
}

// Clear empties the store for a fresh program.
func (s *memCheckpointStore) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.committedIter = -1
	s.committed = nil
	s.staging = make(map[int]map[int][]byte)
}

// Stats reports lifetime counters.
func (s *memCheckpointStore) Stats() CheckpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CheckpointStats{Saved: s.saved, Commits: s.commits, Restores: s.restores, CommittedIter: s.committedIter}
}

// Checkpoint is a worker's handle on superstep checkpointing. Programs
// that opt in call Restore once at the top of their superstep loop and
// Save at every iteration Due reports true for; the engine keeps the
// last globally consistent snapshot and hands it back after a recovery.
// All methods are no-ops (and Restore reports false) when
// Options.CheckpointEvery is 0.
type Checkpoint struct {
	w *Worker
}

// Checkpoint returns this worker's checkpoint handle.
func (w *Worker) Checkpoint() Checkpoint { return Checkpoint{w: w} }

// Enabled reports whether checkpointing is configured for this cluster.
func (c Checkpoint) Enabled() bool { return c.w.cluster.ckpt != nil }

// Every returns the configured checkpoint cadence K (0 when disabled).
func (c Checkpoint) Every() int { return c.w.cluster.opts.CheckpointEvery }

// Due reports whether iteration iter is a checkpoint boundary. All
// workers see the same answer for the same iter, preserving SPMD
// alignment of the save calls.
func (c Checkpoint) Due(iter int) bool {
	return c.Enabled() && iter > 0 && iter%c.Every() == 0
}

// Save stores this node's snapshot for iteration iter. The blob must be
// non-empty and becomes engine-owned. The iteration commits once every
// node has saved it.
func (c Checkpoint) Save(iter int, blob []byte) {
	if !c.Enabled() || len(blob) == 0 {
		return
	}
	start := c.w.spanStart()
	c.w.cluster.ckpt.Save(c.w.id, iter, blob)
	c.w.endSpan(obs.PhaseCheckpoint, iter, -1, -1, start)
}

// Restore returns this node's blob at the last committed iteration, or
// ok=false when there is none (fresh program or checkpointing off) —
// in which case the program starts from its initial state.
func (c Checkpoint) Restore() (iter int, blob []byte, ok bool) {
	if !c.Enabled() {
		return 0, nil, false
	}
	start := time.Now()
	iter, blob, ok = c.w.cluster.ckpt.Restore(c.w.id)
	if ok && c.w.tr != nil {
		c.w.tr.Record(c.w.id, obs.PhaseRecovery, iter, -1, -1, start, time.Since(start))
	}
	return iter, blob, ok
}
