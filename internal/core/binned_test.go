// Bit-identity matrix for the partition-binned edge scans (PR 9):
// binned and legacy scans must produce byte-for-byte identical results
// for all eight algorithms, both engine modes, forced dense and sparse
// BFS, cluster sizes 2 and 4, and across a mutation epoch advance. The
// external test package lets the matrix drive the real algorithm
// implementations against core's A/B flag.
package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mutate"
)

// runAlgo runs one named algorithm variant on a fresh cluster and
// returns its result, normalized to a comparable value.
func runAlgo(t *testing.T, algo string, g *graph.Graph, opts core.Options) interface{} {
	t.Helper()
	c, err := core.NewCluster(g, opts)
	if err != nil {
		t.Fatalf("%s: %v", algo, err)
	}
	defer c.Close()
	var res interface{}
	switch algo {
	case "bfs":
		res, err = algorithms.BFS(c, 1)
	case "bfs-top":
		res, err = algorithms.BFSWithDirection(c, 1, algorithms.DirectionTopDown)
	case "bfs-bottom":
		res, err = algorithms.BFSWithDirection(c, 1, algorithms.DirectionBottomUp)
	case "sssp":
		res, err = algorithms.SSSP(c, 1)
	case "kcore":
		res, err = algorithms.KCore(c, 4)
	case "mis":
		res, err = algorithms.MIS(c, 7)
	case "kmeans":
		res, err = algorithms.KMeans(c, 8, 2, 7)
	case "sampling":
		res, err = algorithms.Sample(c, 7, 3)
	case "pagerank":
		res, err = algorithms.PageRank(c, 4, 0.85)
	case "cc":
		res, err = algorithms.ConnectedComponents(c)
	default:
		t.Fatalf("unknown algorithm %q", algo)
	}
	if err != nil {
		t.Fatalf("%s: %v", algo, err)
	}
	return res
}

// TestBinnedScanBitIdentity is the full matrix: every algorithm (plus
// BFS pinned to pure dense and pure sparse traversal) × both modes ×
// {2, 4} nodes, comparing the binned scan's results against the legacy
// scan's with deep equality. First-wins slots (BFS parents, CC labels,
// SSSP relaxations) make this a byte-stream identity check, not just a
// value check: any reordering of the emitted records would change the
// winners.
func TestBinnedScanBitIdentity(t *testing.T) {
	base := graph.RMAT(10, 8, graph.Graph500Params(), 23)
	sym := graph.Symmetrize(base)
	weighted := graph.RandomWeights(sym, 24)

	algos := []string{"bfs", "bfs-top", "bfs-bottom", "sssp", "kcore", "mis", "kmeans", "sampling", "pagerank", "cc"}
	for _, mode := range []core.Mode{core.ModeSympleGraph, core.ModeGemini} {
		for _, nodes := range []int{2, 4} {
			for _, algo := range algos {
				t.Run(fmt.Sprintf("%s/%s/n%d", algo, mode, nodes), func(t *testing.T) {
					g := base
					switch algo {
					case "sssp":
						g = weighted
					case "kcore", "mis", "kmeans", "cc":
						g = sym
					}
					opts := core.Options{
						NumNodes:     nodes,
						Mode:         mode,
						DepThreshold: 8,
						NumBuffers:   2,
					}
					binned := runAlgo(t, algo, g, opts)
					opts.LegacyScan = true
					legacy := runAlgo(t, algo, g, opts)
					if !reflect.DeepEqual(binned, legacy) {
						t.Fatalf("binned result differs from legacy scan")
					}
				})
			}
		}
	}
}

// TestBinnedScanBitIdentityAcrossEpochs advances a mutation store by
// one committed batch and checks binned-vs-legacy identity on both the
// parent and the child epoch's snapshot — the engine rebuild path every
// serving-layer epoch advance takes, proving the blocked CSR derives
// identically from any snapshot rather than carrying state across
// epochs. (The HTTP POST /mutate route is covered in internal/server.)
func TestBinnedScanBitIdentityAcrossEpochs(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(9, 8, graph.Graph500Params(), 31))
	st, err := mutate.NewStore(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	batch := mutate.Batch{Ops: []mutate.Mutation{
		{Op: mutate.OpAddEdge, Src: 1, Dst: 200},
		{Op: mutate.OpAddEdge, Src: 200, Dst: 1},
		{Op: mutate.OpRemoveEdge, Src: g.OutNeighbors(3)[0], Dst: 3},
	}}
	child, err := st.Commit(batch)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := st.At(child.Epoch() - 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, snap := range []*mutate.Snapshot{parent, child} {
		for _, algo := range []string{"bfs", "kcore", "cc"} {
			opts := core.Options{NumNodes: 4, Mode: core.ModeSympleGraph, DepThreshold: 8, NumBuffers: 2}
			binned := runAlgo(t, algo, snap.Graph(), opts)
			opts.LegacyScan = true
			legacy := runAlgo(t, algo, snap.Graph(), opts)
			if !reflect.DeepEqual(binned, legacy) {
				t.Fatalf("epoch %d %s: binned result differs from legacy scan", snap.Epoch(), algo)
			}
		}
	}
}
