package core

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
)

func mustCluster(t testing.TB, g *graph.Graph, opts Options) *Cluster {
	t.Helper()
	c, err := NewCluster(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClusterOptionValidation(t *testing.T) {
	g := graph.Ring(8)
	if _, err := NewCluster(g, Options{NumNodes: 0}); err == nil {
		t.Fatal("NumNodes=0 accepted")
	}
	if _, err := NewCluster(g, Options{NumNodes: 2, DepThreshold: -1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := NewCluster(g, Options{NumNodes: 2, Mode: Mode(99)}); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModeSympleGraph.String() != "symplegraph" || ModeGemini.String() != "gemini" {
		t.Fatal("mode names wrong")
	}
	if Mode(7).String() == "" {
		t.Fatal("unknown mode name empty")
	}
}

func TestProcessVerticesSumsAcrossMachines(t *testing.T) {
	g := graph.Ring(200)
	for _, p := range []int{1, 2, 3, 5} {
		c := mustCluster(t, g, Options{NumNodes: p})
		sums := make([]int64, p)
		err := c.Run(func(w *Worker) error {
			s, err := w.ProcessVertices(func(v graph.VertexID) int64 { return int64(v) })
			sums[w.ID()] = s
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(199 * 200 / 2)
		for i, s := range sums {
			if s != want {
				t.Fatalf("p=%d node %d: sum %d, want %d", p, i, s, want)
			}
		}
	}
}

func TestProcessVerticesCoversExactlyOwnedRange(t *testing.T) {
	g := graph.Ring(130)
	c := mustCluster(t, g, Options{NumNodes: 3, Workers: 4})
	visited := bitset.New(130)
	err := c.Run(func(w *Worker) error {
		_, err := w.ProcessVertices(func(v graph.VertexID) int64 {
			if !visited.TestAndSetAtomic(int(v)) {
				t.Errorf("vertex %d visited twice", v)
			}
			return 1
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited.Count() != 130 {
		t.Fatalf("visited %d of 130", visited.Count())
	}
}

func TestSyncBitmapMergesMasterSegments(t *testing.T) {
	g := graph.Ring(300)
	c := mustCluster(t, g, Options{NumNodes: 4})
	results := make([]*bitset.Bitmap, 4)
	err := c.Run(func(w *Worker) error {
		b := bitset.New(300)
		lo, hi := w.MasterRange()
		for v := lo; v < hi; v += 2 { // every even offset within my range
			b.Set(v)
		}
		if err := w.SyncBitmap(b); err != nil {
			return err
		}
		results[w.ID()] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for node, b := range results {
		for other := 0; other < 4; other++ {
			lo, hi := c.Partition().Range(other)
			for v := lo; v < hi; v++ {
				want := (v-lo)%2 == 0
				if b.Get(v) != want {
					t.Fatalf("node %d: bit %d = %v, want %v", node, v, b.Get(v), want)
				}
			}
		}
	}
}

func TestAllGatherU32(t *testing.T) {
	g := graph.Ring(150)
	c := mustCluster(t, g, Options{NumNodes: 3})
	err := c.Run(func(w *Worker) error {
		arr := make([]uint32, 150)
		lo, hi := w.MasterRange()
		for v := lo; v < hi; v++ {
			arr[v] = uint32(v * 7)
		}
		if err := w.AllGatherU32(arr); err != nil {
			return err
		}
		for v := 0; v < 150; v++ {
			if arr[v] != uint32(v*7) {
				t.Errorf("node %d: arr[%d] = %d", w.ID(), v, arr[v])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherF64(t *testing.T) {
	g := graph.Ring(100)
	c := mustCluster(t, g, Options{NumNodes: 4})
	err := c.Run(func(w *Worker) error {
		arr := make([]float64, 100)
		lo, hi := w.MasterRange()
		for v := lo; v < hi; v++ {
			arr[v] = float64(v) / 3
		}
		if err := w.AllGatherF64(arr); err != nil {
			return err
		}
		for v := 0; v < 100; v++ {
			if arr[v] != float64(v)/3 {
				t.Errorf("node %d: arr[%d] = %g", w.ID(), v, arr[v])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesPanicsAsErrors(t *testing.T) {
	g := graph.Ring(64)
	c := mustCluster(t, g, Options{NumNodes: 1})
	err := c.Run(func(w *Worker) error {
		panic("boom")
	})
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
}

func TestRunStatsControlBytesCounted(t *testing.T) {
	g := graph.Ring(64)
	c := mustCluster(t, g, Options{NumNodes: 2})
	if err := c.Run(func(w *Worker) error { return w.Barrier() }); err != nil {
		t.Fatal(err)
	}
	s := c.Stats().Totals
	if s.ControlBytes == 0 {
		t.Fatal("barrier produced no control traffic")
	}
	if s.UpdateBytes != 0 || s.DependencyBytes != 0 {
		t.Fatalf("unexpected traffic: %+v", s)
	}
	// Stats are per run: a second run should not accumulate the first.
	if err := c.Run(func(w *Worker) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Totals.ControlBytes; got != 0 {
		t.Fatalf("second run control bytes = %d, want 0", got)
	}
}

func TestRunStatsAdd(t *testing.T) {
	a := RunStats{EdgesTraversed: 1, UpdateBytes: 2, DependencyBytes: 3, ControlBytes: 4}
	b := RunStats{EdgesTraversed: 10, UpdateBytes: 20, DependencyBytes: 30, ControlBytes: 40}
	a.Add(b)
	if a.EdgesTraversed != 11 || a.TotalBytes() != 99 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestWorkerOwns(t *testing.T) {
	g := graph.Ring(128)
	c := mustCluster(t, g, Options{NumNodes: 2})
	err := c.Run(func(w *Worker) error {
		lo, hi := w.MasterRange()
		if !w.Owns(graph.VertexID(lo)) || (hi < 128 && w.Owns(graph.VertexID(hi))) {
			t.Errorf("node %d Owns wrong for range [%d,%d)", w.ID(), lo, hi)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
