package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/bitset"
	"repro/internal/bufpool"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
)

// DenseParams configure one dense (pull-mode) edge-processing pass — the
// paper's signal/slot in pull mode (Figure 4), with dependency enforcement
// when the cluster runs in ModeSympleGraph.
type DenseParams[M any] struct {
	// Codec serializes update messages.
	Codec Codec[M]
	// ActiveDst filters destination vertices; it is evaluated on the
	// processing machine against replicated state (e.g. "not yet
	// visited"). nil processes every destination.
	ActiveDst func(dst graph.VertexID) bool
	// Signal is the dense-signal UDF, executed once per (destination,
	// block): it scans the destination's incoming neighbors local to
	// the machine, calling ctx.Edge per neighbor examined, ctx.Emit to
	// send a partial result to the master, and ctx.EmitDep when the
	// loop-carried break condition fires.
	Signal func(ctx *DenseCtx[M], dst graph.VertexID, srcs []graph.VertexID, weights []float32)
	// Slot aggregates one update at the destination's master (it runs
	// only there) and returns a contribution to the pass's global
	// reduced value. It must be commutative and associative across
	// messages for the same destination.
	Slot func(dst graph.VertexID, msg M) int64
	// Finalize, when non-nil, is called at the master for every tracked
	// destination of its own partition after the circulant ring
	// completes, with the final carried dependency state (skip bit and
	// data lanes). This is where algorithms with data dependency decide
	// from the fully accumulated value — e.g. K-core compares the
	// carried neighbor count against K. It is invoked only when
	// dependency propagation is active (ModeSympleGraph, p > 1); UDFs
	// must emit ordinary updates for untracked vertices instead, which
	// also covers ModeGemini and single-machine runs where ctx.Tracked
	// reports false.
	Finalize func(dst graph.VertexID, skip bool, data []float64) int64
	// Lanes is the number of float64 data-dependency lanes carried per
	// tracked vertex in this pass's dependency frames, for algorithms
	// whose loop-carried state is data (K-core counts, sampling prefix
	// sums). 0 for control-only dependency (BFS, MIS, K-means).
	Lanes int
}

// emitChunkBytes is the slab chunk size for update assembly: signal
// contexts fill fixed-capacity chunks from internal/bufpool and flush
// them into the step's buffer list when full, so a superstep's update
// traffic is assembled with zero garbage-collected allocations and sent
// vectored (no concatenation) through comm.SendBufs.
const emitChunkBytes = 64 << 10

// DenseCtx is the per-worker signal context. It carries the update buffer,
// traversal counters, and — in SympleGraph mode — the dependency state of
// the destination being processed (the engine-side realization of the
// paper's receive_dep/emit_dep primitives, Figure 5).
type DenseCtx[M any] struct {
	codec Codec[M]
	size  int
	buf   []byte

	// pooled selects the slab emit path: buf is a fixed-capacity chunk
	// from bufpool, pushed to chunks when full. When false (legacy data
	// plane) buf grows through the garbage collector instead.
	pooled   bool
	chunks   *[][]byte
	chunksMu *sync.Mutex

	edges   int64
	skipped int64

	depOn    bool
	tracked  bool
	trackIdx int32
	curDst   graph.VertexID
	depBreak bool
	depSkip  *bitset.Bitmap
	depData  [][]float64
}

// Edge records one neighbor traversal (the paper's computation metric).
// Instrumented UDFs call it once per neighbor examined.
func (ctx *DenseCtx[M]) Edge() { ctx.edges++ }

// Emit sends msg for the current destination to its master's slot.
func (ctx *DenseCtx[M]) Emit(msg M) {
	rec := 4 + ctx.size
	if ctx.pooled && cap(ctx.buf)-len(ctx.buf) < rec {
		ctx.flushChunk()
	}
	off := len(ctx.buf)
	ctx.buf = append(ctx.buf, make([]byte, rec)...)
	binary.LittleEndian.PutUint32(ctx.buf[off:], uint32(ctx.curDst))
	ctx.codec.Encode(ctx.buf[off+4:], msg)
}

// flushChunk retires the current emit chunk — into the step's buffer
// list when it holds records, back to the slab when untouched — and
// starts a fresh one. Chunks hold whole records only, so the eventual
// vectored frame decodes identically to a concatenated payload.
func (ctx *DenseCtx[M]) flushChunk() {
	if len(ctx.buf) > 0 {
		ctx.chunksMu.Lock()
		*ctx.chunks = append(*ctx.chunks, ctx.buf)
		ctx.chunksMu.Unlock()
	} else if ctx.buf != nil {
		bufpool.Put(ctx.buf)
	}
	ctx.buf = bufpool.Get(emitChunkBytes)[:0]
}

// EmitDep marks the loop-carried break: all following neighbors of the
// current destination — on this machine (the UDF breaks) and on machines
// later in the circulant ring (the engine propagates the bit) — are
// skipped. It has no cross-machine effect for untracked vertices or in
// ModeGemini; the UDF's local break still applies.
func (ctx *DenseCtx[M]) EmitDep() { ctx.depBreak = true }

// Tracked reports whether dependency state propagates across machines for
// the current destination. UDFs with data dependency use it to fall back
// to a parallel-decomposable path (e.g. hierarchical sampling) when the
// carried state is unavailable.
func (ctx *DenseCtx[M]) Tracked() bool { return ctx.depOn && ctx.tracked }

// DepFloat returns the carried data-dependency value of lane for the
// current destination, accumulated by machines earlier in the ring; 0 for
// untracked destinations and at the ring head.
func (ctx *DenseCtx[M]) DepFloat(lane int) float64 {
	if !ctx.Tracked() {
		return 0
	}
	return ctx.depData[lane][ctx.trackIdx]
}

// SetDepFloat stores the data-dependency value handed to machines later
// in the ring. A no-op for untracked destinations.
func (ctx *DenseCtx[M]) SetDepFloat(lane int, v float64) {
	if !ctx.Tracked() {
		return
	}
	ctx.depData[lane][ctx.trackIdx] = v
}

// ProcessEdgesDense runs one dense pass under the cluster's mode and
// returns the global sum of slot contributions.
//
// The pass executes the circulant schedule (paper §5.1): in step j this
// machine processes the block destined to partition (id+1+j) mod p.
// Untracked (low-degree) destinations are processed at step start — they
// need no dependency input, so their computation overlaps the
// predecessor's work (§5.3's low/high overlap). Tracked destinations are
// processed in NumBuffers groups: each group's dependency frame is
// received from the right neighbor just before the group and forwarded to
// the left neighbor right after (double buffering). Updates for the block
// are sent to the destination partition's master machine at the end of
// the step, and the update destined to this machine for the same step is
// received and slotted before the next step begins.
func ProcessEdgesDense[M any](w *Worker, params DenseParams[M]) (int64, error) {
	p := w.N()
	opts := w.cluster.opts
	B := opts.NumBuffers
	lanes := params.Lanes
	if lanes < 0 {
		return 0, fmt.Errorf("core: negative Lanes %d", lanes)
	}
	depOn := opts.Mode == ModeSympleGraph && p > 1
	if opts.binnedScan() {
		return processEdgesDenseBinned(w, &params, depOn)
	}
	pooled := !opts.LegacyDataPlane
	base := w.nextTags(int32(p*B + p)) // p*B dependency frames + p update rounds
	rn := (w.id + 1) % p
	ln := (w.id - 1 + p) % p
	w.observeStep()
	pass := w.densePass
	w.densePass++

	var reduced int64
	var localChunks [][]byte   // our own block's updates, applied in ring order below
	var depSkip *bitset.Bitmap // state for the step in flight; after the
	var depData [][]float64    // loop, the final state of our own partition
	for j := 0; j < p; j++ {
		stepStart := w.spanStart()
		d := (w.id + 1 + j) % p
		block := w.layout.Blocks[d]
		tracked := len(w.cluster.class.Highs[d])

		if depOn {
			depSkip = bitset.New(tracked)
			depData = make([][]float64, lanes)
			for l := range depData {
				depData[l] = make([]float64, tracked)
			}
		}

		var bufs [][]byte
		var bufsMu sync.Mutex
		// Low-degree destinations first: no dependency input needed, so
		// this computation overlaps the predecessor still working on the
		// groups we are about to wait for.
		processDensePositions(w, &params, block, block.LowPos, false, nil, nil, pooled, &bufs, &bufsMu)

		bounds := groupBounds(tracked, B)
		splits := splitTrackedByGroup(w.cluster.class, block, bounds)
		for g := 0; g < B; g++ {
			if depOn && j > 0 {
				m, err := w.recvTimed(&w.depWait, comm.NodeID(rn), comm.KindDependency, base+int32((j-1)*B+g),
					obs.PhaseDepWait, pass, j, g)
				if err != nil {
					return 0, err
				}
				if err := applyDepFrame(m.Payload, depSkip, depData, bounds[g], bounds[g+1]); err != nil {
					return 0, err
				}
				m.Release()
			}
			processDensePositions(w, &params, block, splits[g], depOn, depSkip, depData, pooled, &bufs, &bufsMu)
			if depOn && j < p-1 {
				flushStart := w.spanStart()
				frame := encodeDepFrame(depSkip, depData, bounds[g], bounds[g+1], pooled)
				var err error
				if pooled {
					err = w.ep.SendBufs(comm.NodeID(ln), comm.KindDependency, base+int32(j*B+g), comm.Buffers{frame})
				} else {
					err = w.ep.Send(comm.NodeID(ln), comm.KindDependency, base+int32(j*B+g), frame)
				}
				if err != nil {
					return 0, err
				}
				w.endSpan(obs.PhaseBufferFlush, pass, j, g, flushStart)
			}
		}

		updateTag := base + int32(p*B+j)
		if d != w.id {
			if pooled {
				// Vectored hand-off: the chunks go out as one frame with
				// no intermediate concatenation and return to the slab.
				if err := w.ep.SendBufs(comm.NodeID(d), comm.KindUpdate, updateTag, comm.Buffers(bufs)); err != nil {
					return 0, err
				}
			} else {
				var total int
				for _, b := range bufs {
					total += len(b)
				}
				payload := make([]byte, 0, total)
				for _, b := range bufs {
					payload = append(payload, b...)
				}
				if err := w.ep.Send(comm.NodeID(d), comm.KindUpdate, updateTag, payload); err != nil {
					return 0, err
				}
			}
		} else {
			localChunks = bufs // our own block, applied in ring position below
		}
		w.endSpan(obs.PhaseDenseStep, pass, j, -1, stepStart)
	}
	// Update communication overlaps with computation (§5.1: "the
	// computation and update communication of each step can be largely
	// overlapped"): the per-step messages were sent as each block
	// finished; collect and slot them only now that all steps are done,
	// in ring order so first-wins slots stay deterministic.
	for j := 0; j < p; j++ {
		src := ((w.id-1-j)%p + p) % p
		if src == w.id {
			// Chunks hold whole records, so per-chunk application equals
			// applying the concatenation.
			for _, b := range localChunks {
				reduced += applyDenseUpdates(w, &params, b)
			}
			if pooled {
				for _, b := range localChunks {
					bufpool.Put(b)
				}
			}
			continue
		}
		m, err := w.recvTimed(&w.updWait, comm.NodeID(src), comm.KindUpdate, base+int32(p*B+j),
			obs.PhaseUpdateWait, pass, j, -1)
		if err != nil {
			return 0, err
		}
		reduced += applyDenseUpdates(w, &params, m.Payload)
		m.Release()
	}
	if depOn && params.Finalize != nil {
		// depSkip/depData now hold the fully circulated state of our
		// own partition (processed in the final step).
		lane := make([]float64, lanes)
		for idx, dst := range w.cluster.class.Highs[w.id] {
			if params.ActiveDst != nil && !params.ActiveDst(dst) {
				continue
			}
			for l := range lane {
				lane[l] = depData[l][idx]
			}
			reduced += params.Finalize(dst, depSkip.Get(idx), lane)
		}
	}
	return w.AllReduceSum(reduced)
}

// processEdgesDenseBinned is the partition-binned dense pass (PR 9's
// scan). The circulant schedule, signal/slot semantics, and low/high
// overlap are identical to the legacy scan; what changes is framing and
// accounting:
//
//   - A step's update records accumulate into slab bins (one list per
//     destination partition, filled per worker with no intermediate
//     concatenation) and leave as a single vectored frame per (peer,
//     pass) — the flush contract DESIGN.md documents: bin ownership
//     passes to the transport at SendBufs and the buffers must not be
//     touched after.
//   - The NumBuffers dependency-frame groups of a step batch into one
//     frame covering the whole tracked index space [0, T). Group state
//     is index-disjoint and the predecessor has finished the entire
//     block before this machine's tracked slice runs, so the batched
//     frame carries byte-for-byte the concatenation of the per-group
//     frames: results are bit-identical, only frame count drops (×B
//     fewer dependency frames, and none at all for blocks with no
//     tracked vertices).
//   - DenseStep splits into traced sub-phases: DenseScan (signal
//     loops), DenseBin (dependency-frame assembly), DenseFlush
//     (vectored hand-off).
//
// Low-degree destinations still run before the dependency receive, so
// the §5.3 overlap with the predecessor is preserved; double buffering
// within a step no longer applies (NumBuffers only shapes the legacy
// scan's framing).
func processEdgesDenseBinned[M any](w *Worker, params *DenseParams[M], depOn bool) (int64, error) {
	p := w.N()
	lanes := params.Lanes
	base := w.nextTags(int32(2 * p)) // p dependency frames + p update rounds
	rn := (w.id + 1) % p
	ln := (w.id - 1 + p) % p
	w.observeStep()
	pass := w.densePass
	w.densePass++

	var reduced int64
	var localChunks [][]byte   // our own block's updates, applied in ring order below
	var depSkip *bitset.Bitmap // state for the step in flight; after the
	var depData [][]float64    // loop, the final state of our own partition
	for j := 0; j < p; j++ {
		stepStart := w.spanStart()
		d := (w.id + 1 + j) % p
		block := w.layout.Blocks[d]
		tracked := len(w.cluster.class.Highs[d])

		if depOn {
			depSkip = bitset.New(tracked)
			depData = make([][]float64, lanes)
			for l := range depData {
				depData[l] = make([]float64, tracked)
			}
		}

		var bins [][]byte
		var binsMu sync.Mutex
		// Low-degree destinations first: no dependency input needed, so
		// this computation overlaps the predecessor still working on the
		// tracked slice we are about to wait for.
		scanStart := w.spanStart()
		processDensePositions(w, params, block, block.LowPos, false, nil, nil, true, &bins, &binsMu)
		w.endSpan(obs.PhaseDenseScan, pass, j, 0, scanStart)

		if depOn && tracked > 0 && j > 0 {
			m, err := w.recvTimed(&w.depWait, comm.NodeID(rn), comm.KindDependency, base+int32(j-1),
				obs.PhaseDepWait, pass, j, -1)
			if err != nil {
				return 0, err
			}
			if err := applyDepFrame(m.Payload, depSkip, depData, 0, tracked); err != nil {
				return 0, err
			}
			m.Release()
		}
		if len(block.TrackedPos) > 0 {
			scanStart = w.spanStart()
			processDensePositions(w, params, block, block.TrackedPos, depOn, depSkip, depData, true, &bins, &binsMu)
			w.endSpan(obs.PhaseDenseScan, pass, j, 1, scanStart)
		}
		if depOn && tracked > 0 && j < p-1 {
			binStart := w.spanStart()
			frame := encodeDepFrame(depSkip, depData, 0, tracked, true)
			w.endSpan(obs.PhaseDenseBin, pass, j, -1, binStart)
			flushStart := w.spanStart()
			if err := w.ep.SendBufs(comm.NodeID(ln), comm.KindDependency, base+int32(j), comm.Buffers{frame}); err != nil {
				return 0, err
			}
			w.endSpan(obs.PhaseDenseFlush, pass, j, -1, flushStart)
		}

		if d != w.id {
			// Vectored hand-off: the step's bins leave as one frame with
			// no intermediate concatenation and return to the slab; bin
			// ownership passes to the transport here.
			flushStart := w.spanStart()
			if err := w.ep.SendBufs(comm.NodeID(d), comm.KindUpdate, base+int32(p+j), comm.Buffers(bins)); err != nil {
				return 0, err
			}
			w.endSpan(obs.PhaseDenseFlush, pass, j, -1, flushStart)
		} else {
			localChunks = bins // our own block, applied in ring position below
		}
		w.endSpan(obs.PhaseDenseStep, pass, j, -1, stepStart)
	}
	// Update application is identical to the legacy scan: collect in ring
	// order so first-wins slots stay deterministic. Received frames are
	// whole-bin concatenations; applyDenseUpdates walks them bin-at-a-time
	// on the local side and as one frame from remote peers.
	for j := 0; j < p; j++ {
		src := ((w.id-1-j)%p + p) % p
		if src == w.id {
			for _, b := range localChunks {
				reduced += applyDenseUpdates(w, params, b)
			}
			for _, b := range localChunks {
				bufpool.Put(b)
			}
			continue
		}
		m, err := w.recvTimed(&w.updWait, comm.NodeID(src), comm.KindUpdate, base+int32(p+j),
			obs.PhaseUpdateWait, pass, j, -1)
		if err != nil {
			return 0, err
		}
		reduced += applyDenseUpdates(w, params, m.Payload)
		m.Release()
	}
	if depOn && params.Finalize != nil {
		// depSkip/depData now hold the fully circulated state of our
		// own partition (processed in the final step).
		lane := make([]float64, lanes)
		for idx, dst := range w.cluster.class.Highs[w.id] {
			if params.ActiveDst != nil && !params.ActiveDst(dst) {
				continue
			}
			for l := range lane {
				lane[l] = depData[l][idx]
			}
			reduced += params.Finalize(dst, depSkip.Get(idx), lane)
		}
	}
	return w.AllReduceSum(reduced)
}

// processDensePositions runs the signal over the block destinations at
// the given positions, in parallel chunks, collecting update buffers.
func processDensePositions[M any](w *Worker, params *DenseParams[M], block *partition.Block,
	positions []int32, depOn bool, depSkip *bitset.Bitmap, depData [][]float64,
	pooled bool, bufs *[][]byte, bufsMu *sync.Mutex) {
	if len(positions) == 0 {
		return
	}
	class := w.cluster.class
	w.parallelRange(len(positions), func(start, end int) {
		ctx := &DenseCtx[M]{
			codec:    params.Codec,
			size:     params.Codec.Size(),
			pooled:   pooled,
			chunks:   bufs,
			chunksMu: bufsMu,
			depOn:    depOn,
			depSkip:  depSkip,
			depData:  depData,
		}
		for _, pos := range positions[start:end] {
			dst := block.Dsts[pos]
			if params.ActiveDst != nil && !params.ActiveDst(dst) {
				continue
			}
			idx := class.TrackIndex[dst]
			ctx.tracked = idx >= 0
			ctx.trackIdx = idx
			if depOn && ctx.tracked && depSkip.GetAtomic(int(idx)) {
				ctx.skipped++
				continue
			}
			ctx.curDst = dst
			ctx.depBreak = false
			params.Signal(ctx, dst, block.Sources(int(pos)), block.SourceWeights(int(pos)))
			if depOn && ctx.tracked && ctx.depBreak {
				depSkip.SetAtomic(int(idx))
			}
		}
		w.addEdges(ctx.edges)
		w.addSkipped(ctx.skipped)
		if len(ctx.buf) > 0 {
			bufsMu.Lock()
			*bufs = append(*bufs, ctx.buf)
			bufsMu.Unlock()
		} else if pooled && ctx.buf != nil {
			bufpool.Put(ctx.buf)
		}
	})
}

// applyDenseUpdates decodes (dst, msg) records and applies the slot at
// the master, returning the summed slot contributions.
func applyDenseUpdates[M any](w *Worker, params *DenseParams[M], payload []byte) int64 {
	rec := 4 + params.Codec.Size()
	var reduced int64
	for off := 0; off+rec <= len(payload); off += rec {
		dst := graph.VertexID(binary.LittleEndian.Uint32(payload[off:]))
		if !w.Owns(dst) {
			panic(fmt.Sprintf("core: node %d received update for vertex %d it does not own", w.id, dst))
		}
		reduced += params.Slot(dst, params.Codec.Decode(payload[off+4:]))
	}
	return reduced
}

// groupBounds splits the tracked index space [0, T) into B contiguous
// groups with 64-aligned interior boundaries, so dependency frames
// exchange whole bitmap words.
func groupBounds(T, B int) []int {
	bounds := make([]int, B+1)
	for g := 1; g < B; g++ {
		b := (T*g/B + 63) &^ 63
		if b > T {
			b = T
		}
		bounds[g] = b
	}
	bounds[B] = T
	for g := 1; g <= B; g++ {
		if bounds[g] < bounds[g-1] {
			bounds[g] = bounds[g-1]
		}
	}
	return bounds
}

// splitTrackedByGroup slices block.TrackedPos into per-group position
// lists. TrackedPos is ascending by tracked index, so a single pass
// suffices.
func splitTrackedByGroup(class *partition.DegreeClass, block *partition.Block, bounds []int) [][]int32 {
	B := len(bounds) - 1
	splits := make([][]int32, B)
	tp := block.TrackedPos
	i := 0
	for g := 0; g < B; g++ {
		start := i
		for i < len(tp) && int(class.TrackIndex[block.Dsts[tp[i]]]) < bounds[g+1] {
			i++
		}
		splits[g] = tp[start:i]
	}
	return splits
}

// encodeDepFrame serializes the dependency state for tracked indices
// [gLo, gHi): the skip bitmap words followed by each data lane's values —
// the paper's DepMessage in struct-of-arrays form (§6). With pooled set
// the frame lives in a slab buffer whose ownership passes to the
// transport via SendBufs; otherwise it is a plain allocation for the
// aliasing Send (legacy data plane).
func encodeDepFrame(depSkip *bitset.Bitmap, depData [][]float64, gLo, gHi int, pooled bool) []byte {
	if gLo >= gHi {
		return nil
	}
	if gLo%64 != 0 {
		panic("core: dependency frame start not word-aligned")
	}
	n := bitset.SegmentWordBytes(gLo, gHi) + len(depData)*(gHi-gLo)*8
	var out []byte
	if pooled {
		out = bufpool.Get(n)[:0]
	} else {
		out = make([]byte, 0, n)
	}
	out = depSkip.AppendSegmentLE(out, gLo, gHi)
	for _, lane := range depData {
		off := len(out)
		out = out[:off+(gHi-gLo)*8]
		for i, v := range lane[gLo:gHi] {
			binary.LittleEndian.PutUint64(out[off+i*8:], math.Float64bits(v))
		}
	}
	return out
}

// applyDepFrame merges a received dependency frame: skip bits are OR-ed
// (a break anywhere earlier in the ring holds), data lanes are
// overwritten (the predecessor's value is the accumulated state). The
// caller Releases the payload afterwards.
func applyDepFrame(payload []byte, depSkip *bitset.Bitmap, depData [][]float64, gLo, gHi int) error {
	if gLo >= gHi {
		if len(payload) != 0 {
			return fmt.Errorf("core: non-empty dependency frame for empty group")
		}
		return nil
	}
	wb := bitset.SegmentWordBytes(gLo, gHi)
	want := wb + len(depData)*(gHi-gLo)*8
	if len(payload) != want {
		return fmt.Errorf("core: dependency frame is %d bytes, want %d", len(payload), want)
	}
	if err := depSkip.OrSegmentLE(payload[:wb], gLo, gHi); err != nil {
		return fmt.Errorf("core: dependency frame: %w", err)
	}
	off := wb
	for _, lane := range depData {
		for i := gLo; i < gHi; i++ {
			lane[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
	}
	return nil
}
