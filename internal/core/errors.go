package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/obs"
)

// StallError reports a superstep receive that exceeded
// Options.StallTimeout: the structured replacement for a run hanging
// forever behind a slow, partitioned or dead peer. It names the blocked
// node, the engine phase it was executing, and the exact awaited stream,
// so an operator (or a recovery policy) knows who to blame.
type StallError struct {
	// Node is the machine whose receive stalled.
	Node int
	// Phase is the engine phase that was blocked (DepWait, UpdateWait).
	Phase obs.Phase
	// From, Kind, Tag identify the awaited message stream.
	From comm.NodeID
	Kind comm.Kind
	Tag  int32
	// Timeout is the deadline that fired.
	Timeout time.Duration

	cause error // the transport's *comm.TimeoutError
}

func (e *StallError) Error() string {
	return fmt.Sprintf("core: node %d stalled in %v for %v awaiting (from=%d kind=%v tag=%d)",
		e.Node, e.Phase, e.Timeout, e.From, e.Kind, e.Tag)
}

// Unwrap exposes the underlying transport timeout.
func (e *StallError) Unwrap() error { return e.cause }

// PoisonedError is returned by Run on a cluster whose previous run
// failed: the transport was closed to unblock the surviving workers and
// must be re-formed with Reset before the cluster is usable again.
type PoisonedError struct {
	// Cause is the error that poisoned the cluster.
	Cause error
}

func (e *PoisonedError) Error() string {
	return fmt.Sprintf("core: cluster poisoned by a failed run (%v); call Reset before running again", e.Cause)
}

// Unwrap exposes the poisoning run's error.
func (e *PoisonedError) Unwrap() error { return e.Cause }

// IsRecoverable classifies a run error for restart policies: stalls,
// peer loss and injected faults are survivable by re-forming the cluster
// and resuming from a checkpoint; protocol violations (desynchronized
// SPMD streams) and program errors are bugs that a retry would only
// replay.
func IsRecoverable(err error) bool {
	var pe *comm.ProtocolError
	if errors.As(err, &pe) {
		return false
	}
	var (
		stall    *StallError
		closed   *comm.ClosedError
		timeout  *comm.TimeoutError
		crash    *comm.CrashError
		injected *comm.InjectedError
	)
	return errors.As(err, &stall) || errors.As(err, &closed) ||
		errors.As(err, &timeout) || errors.As(err, &crash) || errors.As(err, &injected)
}
