package core

import (
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/comm"
	"repro/internal/graph"
)

func TestGatherU32CollectsAtRoot(t *testing.T) {
	g := graph.Ring(200)
	c := mustCluster(t, g, Options{NumNodes: 4})
	var rootCopy []uint32
	err := c.Run(func(w *Worker) error {
		arr := make([]uint32, 200)
		lo, hi := w.MasterRange()
		for v := lo; v < hi; v++ {
			arr[v] = uint32(v * 3)
		}
		if err := w.GatherU32(arr); err != nil {
			return err
		}
		if w.ID() == 0 {
			rootCopy = arr
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 200; v++ {
		if rootCopy[v] != uint32(v*3) {
			t.Fatalf("root arr[%d] = %d", v, rootCopy[v])
		}
	}
}

func TestSyncBitmapSparseAndDenseForms(t *testing.T) {
	g := graph.Ring(512)
	c := mustCluster(t, g, Options{NumNodes: 4})
	// Sparse case: one bit per node. Dense case: every other bit.
	for _, density := range []int{97, 2} {
		results := make([]*bitset.Bitmap, 4)
		err := c.Run(func(w *Worker) error {
			b := bitset.New(512)
			lo, hi := w.MasterRange()
			for v := lo; v < hi; v += density {
				b.Set(v)
			}
			if err := w.SyncBitmap(b); err != nil {
				return err
			}
			results[w.ID()] = b
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want := results[0]
		for node := 1; node < 4; node++ {
			if !results[node].Equal(want) {
				t.Fatalf("density %d: node %d bitmap differs", density, node)
			}
		}
		// Verify against the direct construction.
		check := bitset.New(512)
		for node := 0; node < 4; node++ {
			lo, hi := c.Partition().Range(node)
			for v := lo; v < hi; v += density {
				check.Set(v)
			}
		}
		if !want.Equal(check) {
			t.Fatalf("density %d: merged bitmap wrong", density)
		}
	}
}

func TestEncodeBitmapSegmentRoundTrip(t *testing.T) {
	b := bitset.New(256)
	for _, i := range []int{64, 65, 100, 127} {
		b.Set(i)
	}
	blob := encodeBitmapSegment(b, 64, 128)
	out := bitset.New(256)
	if err := applyBitmapSegment(out, 64, 128, blob); err != nil {
		t.Fatal(err)
	}
	for i := 64; i < 128; i++ {
		if out.Get(i) != b.Get(i) {
			t.Fatalf("bit %d mismatch", i)
		}
	}
	// Dense form: fill the range.
	for i := 64; i < 128; i++ {
		b.Set(i)
	}
	blob = encodeBitmapSegment(b, 64, 128)
	if blob[0] != segDense {
		t.Fatalf("full segment encoded as form %d", blob[0])
	}
	out = bitset.New(256)
	if err := applyBitmapSegment(out, 64, 128, blob); err != nil {
		t.Fatal(err)
	}
	if out.CountSegment(64, 128) != 64 {
		t.Fatal("dense round trip lost bits")
	}
}

func TestApplyBitmapSegmentRejectsCorrupt(t *testing.T) {
	b := bitset.New(128)
	if err := applyBitmapSegment(b, 0, 64, nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if err := applyBitmapSegment(b, 0, 64, []byte{0x7f}); err == nil {
		t.Fatal("unknown form accepted")
	}
	if err := applyBitmapSegment(b, 0, 64, []byte{segSparse, 1, 2, 3}); err == nil {
		t.Fatal("ragged sparse accepted")
	}
	if err := applyBitmapSegment(b, 0, 64, []byte{segDense, 1, 2, 3}); err == nil {
		t.Fatal("short dense accepted")
	}
	// Sparse index outside the range.
	bad := []byte{segSparse, 200, 0, 0, 0}
	if err := applyBitmapSegment(b, 0, 64, bad); err == nil {
		t.Fatal("out-of-range sparse index accepted")
	}
}

// TestClusterWithLinkModel runs a full pass over a simulated interconnect
// and checks results stay exact while elapsed time reflects the link.
func TestClusterWithLinkModel(t *testing.T) {
	g := graph.RMAT(8, 8, graph.Graph500Params(), 6)
	c := mustCluster(t, g, Options{
		NumNodes: 3,
		Mode:     ModeSympleGraph,
		Link:     &comm.LinkModel{Latency: time.Millisecond},
	})
	counts := make([]uint32, g.NumVertices())
	err := c.Run(func(w *Worker) error {
		_, err := ProcessEdgesDense(w, DenseParams[uint32]{
			Codec: U32Codec{},
			Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
				for range srcs {
					ctx.Edge()
				}
				ctx.Emit(uint32(len(srcs)))
			},
			Slot: func(dst graph.VertexID, msg uint32) int64 {
				counts[dst] += msg
				return 0
			},
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if got, want := counts[v], uint32(g.InDegree(graph.VertexID(v))); got != want {
			t.Fatalf("vertex %d: %d, want %d", v, got, want)
		}
	}
	if got := c.Stats().Totals.Elapsed; got < time.Millisecond {
		t.Fatalf("elapsed %v under a 1ms-latency link", got)
	}
}
