package core

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
)

// denseCountProgram is a representative workload for stats tests: one
// dense in-degree pass with a break (so SympleGraph mode emits
// dependency traffic), a sparse push, and a barrier.
func denseCountProgram(breakEarly bool) func(w *Worker) error {
	return func(w *Worker) error {
		_, err := ProcessEdgesDense(w, DenseParams[uint32]{
			Codec: U32Codec{},
			Signal: func(ctx *DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
				for range srcs {
					ctx.Edge()
					if breakEarly {
						ctx.Emit(1)
						ctx.EmitDep()
						return
					}
				}
				ctx.Emit(uint32(len(srcs)))
			},
			Slot: func(dst graph.VertexID, msg uint32) int64 { return int64(msg) },
		})
		if err != nil {
			return err
		}
		lo, hi := w.MasterRange()
		frontier := make([]graph.VertexID, 0, hi-lo)
		for v := lo; v < hi; v++ {
			frontier = append(frontier, graph.VertexID(v))
		}
		if _, err := ProcessEdgesSparse(w, SparseParams[uint32]{
			Codec:    U32Codec{},
			Frontier: frontier,
			Signal: func(ctx *SparseCtx[uint32], src graph.VertexID, dsts []graph.VertexID, _ []float32) {
				for _, d := range dsts {
					ctx.Edge()
					ctx.EmitTo(d, 1)
				}
			},
			Slot: func(dst graph.VertexID, msg uint32) int64 { return int64(msg) },
		}); err != nil {
			return err
		}
		return w.Barrier()
	}
}

// TestStatsNodeSharesSumToTotals is the snapshot API's core invariant:
// per-node byte/message/work shares sum exactly to the aggregate
// counters, across modes and transports.
func TestStatsNodeSharesSumToTotals(t *testing.T) {
	g := graph.RMAT(9, 8, graph.Graph500Params(), 11)
	for _, mode := range []Mode{ModeSympleGraph, ModeGemini} {
		for _, transport := range []string{"mem", "tcp"} {
			t.Run(mode.String()+"/"+transport, func(t *testing.T) {
				opts := Options{NumNodes: 4, Mode: mode, DepThreshold: 8, NumBuffers: 2}
				if transport == "tcp" {
					eps, err := comm.NewTCPClusterLoopback(4)
					if err != nil {
						t.Fatal(err)
					}
					opts.Endpoints = make([]comm.Endpoint, len(eps))
					for i, e := range eps {
						opts.Endpoints[i] = e
						defer e.Close()
					}
				}
				c := mustCluster(t, g, opts)
				if err := c.Run(denseCountProgram(mode == ModeSympleGraph)); err != nil {
					t.Fatal(err)
				}
				s := c.Stats()
				if len(s.Nodes) != 4 {
					t.Fatalf("%d node entries", len(s.Nodes))
				}
				var sum NodeRunStats
				for i, n := range s.Nodes {
					if n.Node != i {
						t.Fatalf("node entry %d has ID %d", i, n.Node)
					}
					sum.EdgesTraversed += n.EdgesTraversed
					sum.VerticesSkipped += n.VerticesSkipped
					sum.UpdateBytes += n.UpdateBytes
					sum.DependencyBytes += n.DependencyBytes
					sum.ControlBytes += n.ControlBytes
					sum.UpdateMessages += n.UpdateMessages
					sum.DependencyMessages += n.DependencyMessages
					sum.DependencyWait += n.DependencyWait
					sum.UpdateWait += n.UpdateWait
				}
				tot := s.Totals
				if sum.UpdateBytes != tot.UpdateBytes ||
					sum.DependencyBytes != tot.DependencyBytes ||
					sum.ControlBytes != tot.ControlBytes {
					t.Fatalf("byte shares %+v do not sum to totals %+v", sum, tot)
				}
				if sum.UpdateBytes+sum.DependencyBytes+sum.ControlBytes != tot.TotalBytes() {
					t.Fatalf("per-node TotalBytes mismatch")
				}
				if sum.EdgesTraversed != tot.EdgesTraversed ||
					sum.VerticesSkipped != tot.VerticesSkipped ||
					sum.UpdateMessages != tot.UpdateMessages ||
					sum.DependencyMessages != tot.DependencyMessages ||
					sum.DependencyWait != tot.DependencyWait ||
					sum.UpdateWait != tot.UpdateWait {
					t.Fatalf("work shares %+v do not sum to totals %+v", sum, tot)
				}
				if mode == ModeSympleGraph && tot.DependencyBytes == 0 {
					t.Fatal("no dependency traffic in SympleGraph mode")
				}
				if mode == ModeGemini && tot.DependencyBytes != 0 {
					t.Fatalf("Gemini sent %d dependency bytes", tot.DependencyBytes)
				}
			})
		}
	}
}

// TestStatsTracerPhases checks that an attached tracer yields per-phase
// histograms in the snapshot, covering dense steps, waits and barriers —
// under both scan paths, whose framing (and therefore span counts)
// differ: the legacy scan sends one dependency frame per (step, buffer
// group), the binned scan one per step (none for blocks with no tracked
// vertices) and splits DenseStep into scan/bin/flush sub-phases.
func TestStatsTracerPhases(t *testing.T) {
	g := graph.RMAT(9, 8, graph.Graph500Params(), 11)
	for _, legacyScan := range []bool{true, false} {
		name := "binned"
		if legacyScan {
			name = "legacy"
		}
		t.Run(name, func(t *testing.T) {
			tr := obs.NewTracer()
			c := mustCluster(t, g, Options{
				NumNodes: 4, Mode: ModeSympleGraph, DepThreshold: 8, NumBuffers: 2,
				Tracer: tr, LegacyScan: legacyScan,
			})
			if err := c.Run(denseCountProgram(true)); err != nil {
				t.Fatal(err)
			}
			s := c.Stats()
			byPhase := map[obs.Phase]int64{}
			nodesSeen := map[int]bool{}
			for _, ps := range s.Phases {
				byPhase[ps.Phase] += ps.Hist.Count
				nodesSeen[ps.Node] = true
			}
			// 4 nodes × 4 steps per dense pass.
			if byPhase[obs.PhaseDenseStep] != 16 {
				t.Fatalf("DenseStep count %d, want 16", byPhase[obs.PhaseDenseStep])
			}
			if byPhase[obs.PhaseSparsePush] != 4 {
				t.Fatalf("SparsePush count %d, want 4", byPhase[obs.PhaseSparsePush])
			}
			if byPhase[obs.PhaseBarrier] == 0 || byPhase[obs.PhaseUpdateWait] == 0 {
				t.Fatalf("missing barrier/update-wait spans: %v", byPhase)
			}
			if len(nodesSeen) != 4 {
				t.Fatalf("phases cover %d nodes", len(nodesSeen))
			}
			if legacyScan {
				// Each node receives and forwards (p-1)×B dependency
				// frames; no binned sub-phases exist on this path.
				if byPhase[obs.PhaseDepWait] != 4*3*2 {
					t.Fatalf("DepWait count %d, want 24", byPhase[obs.PhaseDepWait])
				}
				if byPhase[obs.PhaseBufferFlush] != 4*3*2 {
					t.Fatalf("BufferFlush count %d, want 24", byPhase[obs.PhaseBufferFlush])
				}
				for _, ph := range []obs.Phase{obs.PhaseDenseScan, obs.PhaseDenseBin, obs.PhaseDenseFlush} {
					if byPhase[ph] != 0 {
						t.Fatalf("%v count %d on the legacy scan", ph, byPhase[ph])
					}
				}
				return
			}
			// Binned: one batched dependency frame per step, and only for
			// blocks whose destination partition has tracked vertices.
			trackedParts := int64(0)
			for _, highs := range c.class.Highs {
				if len(highs) > 0 {
					trackedParts++
				}
			}
			wantDep := 3 * trackedParts // (p-1) × partitions with tracked vertices
			if byPhase[obs.PhaseDepWait] != wantDep {
				t.Fatalf("DepWait count %d, want %d", byPhase[obs.PhaseDepWait], wantDep)
			}
			if byPhase[obs.PhaseDenseBin] != wantDep {
				t.Fatalf("DenseBin count %d, want %d", byPhase[obs.PhaseDenseBin], wantDep)
			}
			// Dep flushes plus one update flush per remote step.
			if byPhase[obs.PhaseDenseFlush] != wantDep+4*3 {
				t.Fatalf("DenseFlush count %d, want %d", byPhase[obs.PhaseDenseFlush], wantDep+12)
			}
			if byPhase[obs.PhaseDenseScan] < 16 {
				t.Fatalf("DenseScan count %d, want ≥ 16", byPhase[obs.PhaseDenseScan])
			}
			if byPhase[obs.PhaseBufferFlush] != 0 {
				t.Fatalf("BufferFlush count %d on the binned scan", byPhase[obs.PhaseBufferFlush])
			}
		})
	}
}

// TestStatsWarningsReportClamps checks that explicitly out-of-range
// NumBuffers/Workers are clamped loudly, while the zero default stays
// silent.
func TestStatsWarningsReportClamps(t *testing.T) {
	g := graph.Ring(64)
	c := mustCluster(t, g, Options{NumNodes: 2, NumBuffers: -3, Workers: -1})
	warns := c.Stats().Warnings
	if len(warns) != 2 {
		t.Fatalf("warnings %v, want 2 entries", warns)
	}
	joined := strings.Join(warns, "\n")
	for _, want := range []string{"NumBuffers clamped from -3", "-buffers", "Workers clamped from -1", "-workers"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("warnings %v missing %q", warns, want)
		}
	}
	if c.Options().NumBuffers != 1 || c.Options().Workers != 1 {
		t.Fatalf("clamp not applied: %+v", c.Options())
	}

	quiet := mustCluster(t, g, Options{NumNodes: 2})
	if w := quiet.Stats().Warnings; len(w) != 0 {
		t.Fatalf("default options produced warnings %v", w)
	}
}

// TestOptionErrorsNameFlags checks validation errors carry the CLI flag
// vocabulary.
func TestOptionErrorsNameFlags(t *testing.T) {
	g := graph.Ring(8)
	cases := []struct {
		opts Options
		flag string
	}{
		{Options{NumNodes: 0}, "-nodes"},
		{Options{NumNodes: 2, DepThreshold: -1}, "-threshold"},
		{Options{NumNodes: 2, Mode: Mode(99)}, "-mode"},
	}
	for _, tc := range cases {
		_, err := NewCluster(g, tc.opts)
		if err == nil || !strings.Contains(err.Error(), tc.flag) {
			t.Fatalf("opts %+v: error %v does not name %s", tc.opts, err, tc.flag)
		}
	}
}

// TestClusterRegisterMetrics checks the live-gauge registration against
// a run's actual counters.
func TestClusterRegisterMetrics(t *testing.T) {
	g := graph.RMAT(8, 8, graph.Graph500Params(), 5)
	c := mustCluster(t, g, Options{NumNodes: 2, Mode: ModeSympleGraph, DepThreshold: 0})
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	if err := c.Run(denseCountProgram(false)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap["config.mode"] != "symplegraph" {
		t.Fatalf("config.mode = %v", snap["config.mode"])
	}
	sent, ok := snap["comm.node0.update.sent_bytes"].(int64)
	if !ok || sent <= 0 {
		t.Fatalf("comm.node0.update.sent_bytes = %v", snap["comm.node0.update.sent_bytes"])
	}
	if _, ok := snap["comm.link.0-1.sent_bytes"].(int64); !ok {
		t.Fatalf("missing per-link gauge: %v", snap["comm.link.0-1.sent_bytes"])
	}
}
