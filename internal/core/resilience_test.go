package core

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
)

// TestStallErrorOnDroppedUpdate drops all traffic between the two nodes
// and checks that a deadline receive surfaces a StallError naming the
// blocked node, its phase, and the awaited peer — within the configured
// timeout, not after hanging forever.
func TestStallErrorOnDroppedUpdate(t *testing.T) {
	const stall = 100 * time.Millisecond
	plan := &comm.FaultPlan{
		Seed: 1,
		Partitions: []comm.PartitionWindow{
			{A: 0, B: 1, FromStep: 0, ToStep: 1 << 30, Drop: true},
		},
	}
	c := mustCluster(t, graph.Ring(16), Options{
		NumNodes:     2,
		Fault:        plan,
		StallTimeout: stall,
	})
	start := time.Now()
	err := c.Run(func(w *Worker) error {
		if w.ID() == 0 {
			_, err := w.recvTimed(&w.updWait, 1, comm.KindUpdate, 0,
				obs.PhaseUpdateWait, 0, -1, -1)
			return err
		}
		return w.ep.Send(0, comm.KindUpdate, 0, []byte{1}) // silently dropped
	})
	elapsed := time.Since(start)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if se.Node != 0 || se.From != 1 || se.Kind != comm.KindUpdate {
		t.Fatalf("StallError names node %d awaiting (from=%d kind=%v), want node 0 awaiting (from=1 kind=Update)",
			se.Node, se.From, se.Kind)
	}
	if se.Phase != obs.PhaseUpdateWait || se.Timeout != stall {
		t.Fatalf("StallError phase/timeout = %v/%v, want %v/%v", se.Phase, se.Timeout, obs.PhaseUpdateWait, stall)
	}
	if elapsed > 10*stall {
		t.Fatalf("stall detected after %v, want within a few multiples of %v", elapsed, stall)
	}
	if got := c.Stats().Stalls; got != 1 {
		t.Fatalf("Stats().Stalls = %d, want 1", got)
	}
	if plan.Counters().Drops == 0 {
		t.Fatal("fault plan recorded no drops")
	}
}

// TestRunContextCancellation cancels a run whose workers are blocked in
// Recv, and checks the poisoning/Reset lifecycle: the cancelled run
// returns ctx's error, subsequent runs fail fast with *PoisonedError,
// and Reset restores the cluster to working order.
func TestRunContextCancellation(t *testing.T) {
	c := mustCluster(t, graph.Ring(16), Options{NumNodes: 2})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := c.RunContext(ctx, func(w *Worker) error {
		if w.ID() == 0 {
			_, err := w.ep.Recv(1, comm.KindUpdate, 0) // never sent: blocks until poisoned
			return err
		}
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}

	var pe *PoisonedError
	if err := c.Run(func(w *Worker) error { return nil }); !errors.As(err, &pe) {
		t.Fatalf("run after poison: err = %v, want *PoisonedError", err)
	}
	if !errors.Is(pe, context.Canceled) {
		t.Fatalf("PoisonedError cause = %v, want context.Canceled", pe.Cause)
	}

	if err := c.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if err := c.Run(func(w *Worker) error { return w.Barrier() }); err != nil {
		t.Fatalf("run after Reset: %v", err)
	}
}

// TestRunWithRecoveryRestartsAfterCrash kills node 1 at superstep 1 and
// checks that RunWithRecovery re-forms the cluster and the second
// attempt — against the same one-shot plan — completes cleanly.
func TestRunWithRecoveryRestartsAfterCrash(t *testing.T) {
	plan := &comm.FaultPlan{Seed: 42, CrashNode: 1, CrashAtSuperstep: 1}
	c := mustCluster(t, graph.Ring(16), Options{
		NumNodes:    2,
		Fault:       plan,
		MaxRestarts: 2,
	})
	var attempts atomic.Int32
	restarts, err := c.RunWithRecovery(context.Background(), func(w *Worker) error {
		if w.ID() == 0 {
			attempts.Add(1)
		}
		for step := 1; step <= 3; step++ {
			comm.ObserveSuperstep(w.ep, step)
			if err := w.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RunWithRecovery: %v", err)
	}
	if restarts != 1 || attempts.Load() != 2 {
		t.Fatalf("restarts = %d, attempts = %d, want 1 restart over 2 attempts", restarts, attempts.Load())
	}
	if got := plan.Counters().Crashes; got != 1 {
		t.Fatalf("Crashes = %d, want 1 (one-shot)", got)
	}
	if got := c.Stats().Restarts; got != 1 {
		t.Fatalf("Stats().Restarts = %d, want 1", got)
	}
}

// TestRunWithRecoveryGivesUpOnProtocolError checks that a protocol bug —
// not an environmental fault — is never retried.
func TestRunWithRecoveryGivesUpOnProtocolError(t *testing.T) {
	c := mustCluster(t, graph.Ring(16), Options{NumNodes: 1, MaxRestarts: 3})
	var attempts atomic.Int32
	perr := &comm.ProtocolError{Node: 0, From: 0, Kind: comm.KindUpdate, WantTag: 1, GotTag: 2}
	restarts, err := c.RunWithRecovery(context.Background(), func(w *Worker) error {
		attempts.Add(1)
		return perr
	})
	if restarts != 0 || attempts.Load() != 1 {
		t.Fatalf("restarts = %d, attempts = %d, want no retry of a protocol bug", restarts, attempts.Load())
	}
	if !errors.Is(err, perr) {
		t.Fatalf("err = %v, want the ProtocolError", err)
	}
}

// TestExecuteHonorsMaxRestarts checks the algorithm entry point: with
// MaxRestarts configured Execute recovers; without it the fault is fatal.
func TestExecuteHonorsMaxRestarts(t *testing.T) {
	prog := func(w *Worker) error {
		for step := 1; step <= 3; step++ {
			comm.ObserveSuperstep(w.ep, step)
			if err := w.Barrier(); err != nil {
				return err
			}
		}
		return nil
	}

	plan := &comm.FaultPlan{Seed: 9, CrashNode: 0, CrashAtSuperstep: 2}
	c := mustCluster(t, graph.Ring(16), Options{NumNodes: 2, Fault: plan, MaxRestarts: 1})
	if err := c.Execute(prog); err != nil {
		t.Fatalf("Execute with MaxRestarts=1: %v", err)
	}

	plan2 := &comm.FaultPlan{Seed: 9, CrashNode: 0, CrashAtSuperstep: 2}
	c2 := mustCluster(t, graph.Ring(16), Options{NumNodes: 2, Fault: plan2})
	if err := c2.Execute(prog); err == nil {
		t.Fatal("Execute without restarts survived a crash")
	}
}

// TestCheckpointStoreTwoPhaseCommit exercises both store
// implementations directly: partial saves stay staged, an iteration
// commits only when every member has saved it, stragglers re-saving a
// committed iteration are ignored, and Clear forgets everything.
func TestCheckpointStoreTwoPhaseCommit(t *testing.T) {
	stores := map[string]CheckpointStore{"mem": NewMemCheckpointStore()}
	if fs, err := NewFileCheckpointStore(t.TempDir()); err != nil {
		t.Fatal(err)
	} else {
		stores["file"] = fs
	}
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			s.SetMembers([]int{0, 1, 2})

			s.Save(0, 2, []byte("a0"))
			s.Save(1, 2, []byte("a1"))
			if _, _, ok := s.Restore(0); ok {
				t.Fatal("partial save committed")
			}
			s.Save(2, 2, []byte("a2"))
			iter, blob, ok := s.Restore(1)
			if !ok || iter != 2 || !bytes.Equal(blob, []byte("a1")) {
				t.Fatalf("Restore(1) = (%d, %q, %v), want (2, a1, true)", iter, blob, ok)
			}

			// A straggler re-saving the committed iteration must not regress it.
			s.Save(0, 2, []byte("stale"))
			if _, blob, _ := s.Restore(0); !bytes.Equal(blob, []byte("a0")) {
				t.Fatalf("straggler overwrote committed blob: %q", blob)
			}

			// A newer iteration supersedes, and older staging is pruned.
			s.Save(0, 4, []byte("b0"))
			s.Save(1, 4, []byte("b1"))
			s.Save(2, 4, []byte("b2"))
			if iter, _, _ := s.Restore(2); iter != 4 {
				t.Fatalf("committed iter = %d, want 4", iter)
			}

			s.Clear()
			if _, _, ok := s.Restore(0); ok {
				t.Fatal("Restore after Clear succeeded")
			}
			st := s.Stats()
			if st.Saved == 0 || st.Commits != 2 || st.Restores == 0 || st.CommittedIter != -1 {
				t.Fatalf("Stats = %+v, want saves and 2 commits recorded, committed=-1", st)
			}
		})
	}
}

// TestWorkerCheckpointHandle checks the worker-facing surface: cadence,
// saves committing across all nodes, restore after a simulated failure,
// and RunContext clearing state for a fresh program.
func TestWorkerCheckpointHandle(t *testing.T) {
	c := mustCluster(t, graph.Ring(16), Options{NumNodes: 2, CheckpointEvery: 2, MaxRestarts: 1})
	err := c.Run(func(w *Worker) error {
		ck := w.Checkpoint()
		if !ck.Enabled() || ck.Every() != 2 {
			t.Errorf("node %d: Enabled/Every = %v/%d", w.ID(), ck.Enabled(), ck.Every())
		}
		if ck.Due(0) || ck.Due(1) || !ck.Due(2) || ck.Due(3) || !ck.Due(4) {
			t.Errorf("node %d: Due cadence wrong", w.ID())
		}
		if _, _, ok := ck.Restore(); ok {
			t.Errorf("node %d: fresh program restored a snapshot", w.ID())
		}
		ck.Save(2, []byte{byte(w.ID())})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The commit survives into a recovery re-run (runOnce does not clear).
	err = c.runOnce(context.Background(), func(w *Worker) error {
		iter, blob, ok := w.Checkpoint().Restore()
		if !ok || iter != 2 || len(blob) != 1 || blob[0] != byte(w.ID()) {
			t.Errorf("node %d: restore = (%d, %v, %v)", w.ID(), iter, blob, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh program (RunContext) must not see its predecessor's state.
	err = c.Run(func(w *Worker) error {
		if _, _, ok := w.Checkpoint().Restore(); ok {
			t.Errorf("node %d: fresh Run restored stale snapshot", w.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointDisabledIsNoop checks the zero-config path.
func TestCheckpointDisabledIsNoop(t *testing.T) {
	c := mustCluster(t, graph.Ring(16), Options{NumNodes: 2})
	err := c.Run(func(w *Worker) error {
		ck := w.Checkpoint()
		if ck.Enabled() || ck.Due(4) {
			t.Errorf("node %d: checkpointing reported enabled without CheckpointEvery", w.ID())
		}
		ck.Save(4, []byte{1}) // must not panic
		if _, _, ok := ck.Restore(); ok {
			t.Errorf("node %d: restore succeeded while disabled", w.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
