package core_test

import (
	"fmt"
	"log"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
)

// Example runs one bottom-up BFS step over a 4-machine simulated cluster
// with precise loop-carried dependency: the signal breaks at the first
// frontier neighbor, and the engine skips the destination's remaining
// neighbors on every other machine.
func Example() {
	g := graph.Star(64) // hub 0 connected to 63 spokes, both directions
	frontier := bitset.New(g.NumVertices())
	frontier.Fill() // everyone is in the frontier: the hub breaks at once

	cluster, err := core.NewCluster(g, core.Options{
		NumNodes: 4,
		Mode:     core.ModeSympleGraph,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	parent := make([]uint32, g.NumVertices())
	err = cluster.Run(func(w *core.Worker) error {
		found, err := core.ProcessEdgesDense(w, core.DenseParams[uint32]{
			Codec: core.U32Codec{},
			Signal: func(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
				for _, u := range srcs {
					ctx.Edge()
					if frontier.Get(int(u)) {
						ctx.Emit(uint32(u))
						ctx.EmitDep() // skip dst's remaining neighbors cluster-wide
						break
					}
				}
			},
			Slot: func(dst graph.VertexID, u uint32) int64 {
				parent[dst] = u
				return 1
			},
		})
		if w.ID() == 0 && err == nil {
			fmt.Printf("found parents for %d vertices\n", found)
		}
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	s := cluster.Stats().Totals
	fmt.Printf("edges traversed: %d of %d\n", s.EdgesTraversed, g.NumEdges())
	// Output:
	// found parents for 64 vertices
	// edges traversed: 64 of 126
}
