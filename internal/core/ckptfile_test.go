package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestFileCheckpointStoreSurvivesReopen simulates a process death: a
// second store opened on the same directory adopts the committed
// snapshot and the partially staged iteration left behind.
func TestFileCheckpointStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFileCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1.SetMembers([]int{0, 1})
	s1.Save(0, 4, []byte("c0"))
	s1.Save(1, 4, []byte("c1"))
	s1.Save(0, 8, []byte("d0")) // staged, not committed

	// "Process death": reopen on the same directory.
	s2, err := NewFileCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetMembers([]int{0, 1})
	if got := s2.Stats().CommittedIter; got != 4 {
		t.Fatalf("reopened CommittedIter = %d, want 4", got)
	}
	iter, blob, ok := s2.Restore(1)
	if !ok || iter != 4 || !bytes.Equal(blob, []byte("c1")) {
		t.Fatalf("Restore(1) = (%d, %q, %v), want (4, c1, true)", iter, blob, ok)
	}
	// The staged iteration completes across the reopen.
	s2.Save(1, 8, []byte("d1"))
	iter, blob, ok = s2.Restore(0)
	if !ok || iter != 8 || !bytes.Equal(blob, []byte("d0")) {
		t.Fatalf("after completing staged iter: Restore(0) = (%d, %q, %v), want (8, d0, true)", iter, blob, ok)
	}
	if err := s2.Err(); err != nil {
		t.Fatalf("store error: %v", err)
	}
}

// TestFileCheckpointStoreTag checks program-identity binding: the same
// tag keeps snapshots, a different tag wipes them.
func TestFileCheckpointStoreTag(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetMembers([]int{0})
	s.SetTag("bfs/root=3")
	s.Save(0, 2, []byte("x"))
	if _, _, ok := s.Restore(0); !ok {
		t.Fatal("commit missing")
	}

	s2, err := NewFileCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetMembers([]int{0})
	if kept := s2.SetTag("bfs/root=3"); !kept {
		t.Fatal("same tag wiped the store")
	}
	if _, _, ok := s2.Restore(0); !ok {
		t.Fatal("same tag lost the snapshot")
	}
	if kept := s2.SetTag("bfs/root=9"); kept {
		t.Fatal("different tag kept the store")
	}
	if _, _, ok := s2.Restore(0); ok {
		t.Fatal("different tag leaked the old snapshot")
	}
}

// TestFileCheckpointStoreAtomicLayout checks that no temp files survive
// a commit and the committed blobs live where a recovering process
// expects them.
func TestFileCheckpointStoreAtomicLayout(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetMembers([]int{0, 1})
	s.Save(0, 2, []byte("a"))
	s.Save(1, 2, []byte("b"))
	s.Save(0, 4, []byte("c"))
	s.Save(1, 4, []byte("d"))

	if b, err := os.ReadFile(filepath.Join(dir, "CURRENT")); err != nil || string(b) != "4" {
		t.Fatalf("CURRENT = %q, %v; want 4", b, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "iter-2")); !os.IsNotExist(err) {
		t.Fatalf("superseded iter-2 not pruned: %v", err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*", ".tmp-*"))
	more, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if n := len(matches) + len(more); n != 0 {
		t.Fatalf("%d temp files left behind", n)
	}
}

// Cluster-level coverage (chaos recovery through the file store, and
// resuming a program across a simulated process restart) lives in
// internal/algorithms/filestore_test.go, where a checkpointing program
// (BFS) is available.
