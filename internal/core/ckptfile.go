package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// FileCheckpointStore is a CheckpointStore backed by a directory of
// blobs — the external stable storage DESIGN.md §5 names as the gap the
// in-memory store leaves: snapshots that survive a real process death,
// so a restarted daemon (sgserve) can resume a long query from its last
// committed superstep instead of starting over.
//
// Layout:
//
//	dir/TAG         program identity (see SetTag)
//	dir/CURRENT     committed iteration number, the commit pointer
//	dir/iter-<k>/node-<n>.ckpt   one blob per (iteration, node)
//
// Every write is write-to-temp + atomic rename, and the commit itself
// is a single rename of CURRENT — readers either see the previous
// consistent snapshot or the new one, never a torn mix. An iteration
// commits once every member node's blob is on disk, at which point
// older iteration directories are discarded.
//
// I/O errors never fail the engine (Save is fire-and-forget, like the
// in-memory store); a failed save simply leaves the iteration
// uncommitted, and the first error is retained for Err.
type FileCheckpointStore struct {
	dir string

	mu            sync.Mutex
	members       []int
	committedIter int
	staged        map[int]map[int]bool // iter → node → blob on disk
	firstErr      error

	saved    int64
	commits  int64
	restores int64
}

// NewFileCheckpointStore opens (creating if needed) a file-backed store
// rooted at dir. An existing CURRENT pointer and any staged iteration
// directories are adopted, so a store reopened after a process death
// resumes exactly where the previous incarnation committed.
func NewFileCheckpointStore(dir string) (*FileCheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: checkpoint dir: %w", err)
	}
	s := &FileCheckpointStore{
		dir:           dir,
		committedIter: -1,
		staged:        make(map[int]map[int]bool),
	}
	if b, err := os.ReadFile(s.currentPath()); err == nil {
		if it, err := strconv.Atoi(strings.TrimSpace(string(b))); err == nil && it >= 0 {
			s.committedIter = it
		}
	}
	// Rebuild the staging index from iteration directories newer than
	// the commit, so a partially saved iteration can still complete.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "iter-") {
			continue
		}
		it, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "iter-"))
		if err != nil || it <= s.committedIter {
			continue
		}
		blobs, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		nodes := make(map[int]bool)
		for _, be := range blobs {
			name := be.Name()
			if !strings.HasPrefix(name, "node-") || !strings.HasSuffix(name, ".ckpt") {
				continue
			}
			n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "node-"), ".ckpt"))
			if err == nil {
				nodes[n] = true
			}
		}
		if len(nodes) > 0 {
			s.staged[it] = nodes
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *FileCheckpointStore) Dir() string { return s.dir }

func (s *FileCheckpointStore) currentPath() string { return filepath.Join(s.dir, "CURRENT") }
func (s *FileCheckpointStore) tagPath() string     { return filepath.Join(s.dir, "TAG") }
func (s *FileCheckpointStore) iterDir(iter int) string {
	return filepath.Join(s.dir, fmt.Sprintf("iter-%d", iter))
}
func (s *FileCheckpointStore) blobPath(iter, node int) string {
	return filepath.Join(s.iterDir(iter), fmt.Sprintf("node-%d.ckpt", node))
}

// writeAtomic writes data to path via a temp file and rename, so a
// crash mid-write leaves either the old content or the new, never a
// truncated file.
func (s *FileCheckpointStore) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// fail records the store's first I/O error.
func (s *FileCheckpointStore) fail(err error) {
	if s.firstErr == nil {
		s.firstErr = err
	}
}

// Err returns the first I/O error the store swallowed (Save never fails
// the engine), nil when everything landed.
func (s *FileCheckpointStore) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

// SetMembers declares the committing quorum.
func (s *FileCheckpointStore) SetMembers(members []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.members = append([]int(nil), members...)
}

// SetTag binds the store to a program identity (e.g. a canonical query
// key). When the directory already carries a different tag, every
// snapshot in it is discarded first — a reused directory never resumes
// the wrong program. Returns true when the existing content was kept
// (same tag), false when it was wiped or the tag is new.
func (s *FileCheckpointStore) SetTag(tag string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, err := os.ReadFile(s.tagPath())
	same := err == nil && string(old) == tag
	if !same {
		s.clearLocked()
		if err := s.writeAtomic(s.tagPath(), []byte(tag)); err != nil {
			s.fail(err)
		}
	}
	return same
}

// Save writes node's blob for iteration iter and commits the iteration
// when every member's blob is on disk.
func (s *FileCheckpointStore) Save(node, iter int, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if iter <= s.committedIter {
		return
	}
	if err := os.MkdirAll(s.iterDir(iter), 0o755); err != nil {
		s.fail(err)
		return
	}
	if err := s.writeAtomic(s.blobPath(iter, node), blob); err != nil {
		s.fail(err)
		return
	}
	nodes, ok := s.staged[iter]
	if !ok {
		nodes = make(map[int]bool, len(s.members))
		s.staged[iter] = nodes
	}
	nodes[node] = true
	s.saved++
	for _, m := range s.members {
		if !nodes[m] {
			return
		}
	}
	// All members saved: move the commit pointer, then prune history.
	if err := s.writeAtomic(s.currentPath(), []byte(strconv.Itoa(iter))); err != nil {
		s.fail(err)
		return
	}
	prev := s.committedIter
	s.committedIter = iter
	s.commits++
	for k := range s.staged {
		if k <= iter {
			delete(s.staged, k)
		}
	}
	for k := prev; k < iter; k++ {
		os.RemoveAll(s.iterDir(k))
	}
}

// Restore reads node's blob at the last committed iteration.
func (s *FileCheckpointStore) Restore(node int) (iter int, blob []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.committedIter < 0 {
		return 0, nil, false
	}
	b, err := os.ReadFile(s.blobPath(s.committedIter, node))
	if err != nil {
		s.fail(err)
		return 0, nil, false
	}
	s.restores++
	return s.committedIter, b, true
}

// Clear discards every snapshot (the TAG survives).
func (s *FileCheckpointStore) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clearLocked()
}

func (s *FileCheckpointStore) clearLocked() {
	os.Remove(s.currentPath())
	entries, _ := os.ReadDir(s.dir)
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "iter-") {
			os.RemoveAll(filepath.Join(s.dir, e.Name()))
		}
	}
	s.committedIter = -1
	s.staged = make(map[int]map[int]bool)
}

// Stats reports lifetime counters of this store instance (a reopened
// store starts its counters fresh but adopts the committed iteration).
func (s *FileCheckpointStore) Stats() CheckpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CheckpointStats{Saved: s.saved, Commits: s.commits, Restores: s.restores, CommittedIter: s.committedIter}
}
