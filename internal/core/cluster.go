package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Cluster owns a partitioned graph and the transport connecting its
// simulated machines. A Cluster is created once per (graph, options) pair
// and can execute many programs; communication statistics are collected
// per Run.
type Cluster struct {
	g       *graph.Graph
	opts    Options
	part    *partition.Partition
	class   *partition.DegreeClass
	layouts []*partition.Layout

	endpoints []comm.Endpoint
	mem       *comm.MemCluster // non-nil when the cluster owns a memory transport
	// localNode is -1 for in-process clusters (Run spawns every
	// machine); otherwise the single machine this process hosts
	// (distributed mode, NewDistributedNode).
	localNode int

	statsMu   sync.Mutex
	lastStats RunStats
}

// RunStats aggregates one Run's work and traffic across all machines.
// Byte counts are sender-side and include per-message header overhead.
type RunStats struct {
	// EdgesTraversed counts neighbor visits inside signal UDFs — the
	// paper's computation metric (Table 5).
	EdgesTraversed int64
	// VerticesSkipped counts (vertex, block) signal executions skipped
	// because a dependency bit was set by an earlier machine.
	VerticesSkipped int64
	// UpdateBytes / DependencyBytes / ControlBytes break down sent
	// traffic by kind — the paper's communication metric (Table 6).
	UpdateBytes     int64
	DependencyBytes int64
	ControlBytes    int64
	// UpdateMessages / DependencyMessages count sent messages.
	UpdateMessages     int64
	DependencyMessages int64
	// DependencyWait / UpdateWait are the total times machines spent
	// blocked on dependency frames and update messages (summed over
	// machines) — the synchronization costs double buffering and update
	// overlap are designed to hide (§5.3).
	DependencyWait time.Duration
	UpdateWait     time.Duration
	// Elapsed is the wall-clock duration of the Run.
	Elapsed time.Duration
}

// TotalBytes returns all sent traffic.
func (s RunStats) TotalBytes() int64 { return s.UpdateBytes + s.DependencyBytes + s.ControlBytes }

// Add accumulates other into s (for multi-run experiments).
func (s *RunStats) Add(other RunStats) {
	s.EdgesTraversed += other.EdgesTraversed
	s.VerticesSkipped += other.VerticesSkipped
	s.UpdateBytes += other.UpdateBytes
	s.DependencyBytes += other.DependencyBytes
	s.ControlBytes += other.ControlBytes
	s.UpdateMessages += other.UpdateMessages
	s.DependencyMessages += other.DependencyMessages
	s.DependencyWait += other.DependencyWait
	s.UpdateWait += other.UpdateWait
	s.Elapsed += other.Elapsed
}

// NewCluster partitions g across opts.NumNodes machines and connects
// them. Close releases the transport.
func NewCluster(g *graph.Graph, opts Options) (*Cluster, error) {
	if err := opts.validateAndDefault(); err != nil {
		return nil, err
	}
	pt, err := partition.NewChunked(g, opts.NumNodes, opts.Alpha)
	if err != nil {
		return nil, err
	}
	threshold := opts.DepThreshold
	if opts.Mode == ModeGemini {
		threshold = 0 // classification irrelevant; track-all keeps layouts uniform
	}
	class := partition.BuildDegreeClass(g, pt, threshold)
	c := &Cluster{
		g:         g,
		opts:      opts,
		part:      pt,
		class:     class,
		layouts:   make([]*partition.Layout, opts.NumNodes),
		localNode: -1,
	}
	for m := 0; m < opts.NumNodes; m++ {
		c.layouts[m] = partition.BuildLayout(g, pt, class, m)
	}
	if opts.Endpoints != nil {
		c.endpoints = opts.Endpoints
	} else {
		c.mem = comm.NewMemClusterWithLink(opts.NumNodes, opts.Link)
		c.endpoints = c.mem.Endpoints()
	}
	return c, nil
}

// NewDistributedNode creates this process's view of a genuinely
// distributed cluster: ep connects to opts.NumNodes peers (for example a
// comm.TCPEndpoint built from a shared address list), this process hosts
// machine ep.ID() only, and Run executes the program once for that
// machine. Every process of the cluster must load the same graph and
// call the same programs in the same order; results materialize on the
// node-0 process, and LastRunStats reports this machine's share.
// opts.Endpoints and opts.Link are ignored.
func NewDistributedNode(g *graph.Graph, opts Options, ep comm.Endpoint) (*Cluster, error) {
	if err := opts.validateAndDefault(); err != nil {
		return nil, err
	}
	if ep.N() != opts.NumNodes {
		return nil, fmt.Errorf("core: endpoint knows %d nodes, options say %d", ep.N(), opts.NumNodes)
	}
	pt, err := partition.NewChunked(g, opts.NumNodes, opts.Alpha)
	if err != nil {
		return nil, err
	}
	threshold := opts.DepThreshold
	if opts.Mode == ModeGemini {
		threshold = 0
	}
	class := partition.BuildDegreeClass(g, pt, threshold)
	id := int(ep.ID())
	c := &Cluster{
		g:         g,
		opts:      opts,
		part:      pt,
		class:     class,
		layouts:   make([]*partition.Layout, opts.NumNodes),
		endpoints: make([]comm.Endpoint, opts.NumNodes),
		localNode: id,
	}
	// Only the local machine's layout and endpoint exist in this
	// process — the memory footprint a real cluster member would have.
	c.layouts[id] = partition.BuildLayout(g, pt, class, id)
	c.endpoints[id] = ep
	return c, nil
}

// Graph returns the cluster's graph.
func (c *Cluster) Graph() *graph.Graph { return c.g }

// Options returns the cluster's configuration.
func (c *Cluster) Options() Options { return c.opts }

// Partition returns the vertex partition.
func (c *Cluster) Partition() *partition.Partition { return c.part }

// Close releases the transport if the cluster owns it. Externally
// supplied endpoints are left open for the caller to close.
func (c *Cluster) Close() error {
	if c.mem != nil {
		return c.mem.Close()
	}
	return nil
}

// Run executes prog SPMD-style: one invocation per machine, concurrently,
// each with its own Worker. It blocks until every machine finishes and
// returns the first error. Statistics for the run are available from
// LastRunStats afterwards.
func (c *Cluster) Run(prog func(w *Worker) error) error {
	nodes := c.localNodes()
	before := make(map[int]map[comm.Kind]comm.Snapshot, len(nodes))
	for _, i := range nodes {
		ep := c.endpoints[i]
		before[i] = map[comm.Kind]comm.Snapshot{
			comm.KindUpdate:     ep.Stats().Snapshot(comm.KindUpdate),
			comm.KindDependency: ep.Stats().Snapshot(comm.KindDependency),
			comm.KindControl:    ep.Stats().Snapshot(comm.KindControl),
		}
	}

	workers := make([]*Worker, c.opts.NumNodes)
	errs := make([]error, c.opts.NumNodes)
	start := time.Now()
	done := make(chan int, len(nodes))
	for _, i := range nodes {
		workers[i] = &Worker{
			cluster: c,
			id:      i,
			ep:      c.endpoints[i],
			layout:  c.layouts[i],
		}
		go func(i int) {
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("core: node %d panicked: %v", i, r)
				}
				done <- i
			}()
			errs[i] = prog(workers[i])
		}(i)
	}
	// A failed worker would leave its peers blocked in Recv; on the first
	// error, poison the transport so every pending receive returns. The
	// cluster is unusable after a failed Run.
	poisoned := false
	for k := 0; k < len(nodes); k++ {
		i := <-done
		if errs[i] != nil && !poisoned {
			poisoned = true
			for _, j := range nodes {
				c.endpoints[j].Close()
			}
		}
	}
	elapsed := time.Since(start)

	var stats RunStats
	stats.Elapsed = elapsed
	for _, i := range nodes {
		ep := c.endpoints[i]
		w := workers[i]
		stats.EdgesTraversed += w.edges.Load()
		stats.VerticesSkipped += w.skipped.Load()
		stats.DependencyWait += time.Duration(w.depWait.Load())
		stats.UpdateWait += time.Duration(w.updWait.Load())
		u := ep.Stats().Snapshot(comm.KindUpdate)
		d := ep.Stats().Snapshot(comm.KindDependency)
		ct := ep.Stats().Snapshot(comm.KindControl)
		stats.UpdateBytes += u.SentBytes - before[i][comm.KindUpdate].SentBytes
		stats.UpdateMessages += u.SentMessages - before[i][comm.KindUpdate].SentMessages
		stats.DependencyBytes += d.SentBytes - before[i][comm.KindDependency].SentBytes
		stats.DependencyMessages += d.SentMessages - before[i][comm.KindDependency].SentMessages
		stats.ControlBytes += ct.SentBytes - before[i][comm.KindControl].SentBytes
	}
	c.statsMu.Lock()
	c.lastStats = stats
	c.statsMu.Unlock()

	for _, i := range nodes {
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// localNodes lists the machine IDs this process hosts.
func (c *Cluster) localNodes() []int {
	if c.localNode >= 0 {
		return []int{c.localNode}
	}
	out := make([]int, c.opts.NumNodes)
	for i := range out {
		out[i] = i
	}
	return out
}

// LastRunStats returns statistics for the most recent Run.
func (c *Cluster) LastRunStats() RunStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.lastStats
}
