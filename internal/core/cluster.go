package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
)

// Cluster owns a partitioned graph and the transport connecting its
// simulated machines. A Cluster is created once per (graph, options) pair
// and can execute many programs; communication statistics are collected
// per Run.
type Cluster struct {
	g       *graph.Graph
	opts    Options
	part    *partition.Partition
	class   *partition.DegreeClass
	layouts []*partition.Layout

	endpoints []comm.Endpoint
	mem       *comm.MemCluster // non-nil when the cluster owns a memory transport
	// localNode is -1 for in-process clusters (Run spawns every
	// machine); otherwise the single machine this process hosts
	// (distributed mode, NewDistributedNode).
	localNode int

	statsMu   sync.Mutex
	lastStats RunStats
	lastNodes []NodeRunStats

	// poisoned is the error of the run that closed the transport to
	// unblock its survivors; Reset clears it and re-forms the cluster.
	poisonMu sync.Mutex
	poisoned error

	// baseCtx, when set, governs the context-less entry points (Run,
	// Execute): a serving layer leases the cluster, binds the request's
	// deadline here, and every algorithm call inherits it unchanged.
	baseMu  sync.Mutex
	baseCtx context.Context

	ckpt     CheckpointStore // nil when Options.CheckpointEvery == 0
	restarts atomic.Int64    // recovery re-runs performed
	stalls   atomic.Int64    // StallErrors raised by workers
}

// RunStats aggregates one Run's work and traffic across all machines.
// Byte counts are sender-side and include per-message header overhead.
type RunStats struct {
	// EdgesTraversed counts neighbor visits inside signal UDFs — the
	// paper's computation metric (Table 5).
	EdgesTraversed int64
	// VerticesSkipped counts (vertex, block) signal executions skipped
	// because a dependency bit was set by an earlier machine.
	VerticesSkipped int64
	// UpdateBytes / DependencyBytes / ControlBytes break down sent
	// traffic by kind — the paper's communication metric (Table 6).
	UpdateBytes     int64
	DependencyBytes int64
	ControlBytes    int64
	// UpdateMessages / DependencyMessages count sent messages.
	UpdateMessages     int64
	DependencyMessages int64
	// DependencyWait / UpdateWait are the total times machines spent
	// blocked on dependency frames and update messages (summed over
	// machines) — the synchronization costs double buffering and update
	// overlap are designed to hide (§5.3).
	DependencyWait time.Duration
	UpdateWait     time.Duration
	// Supersteps counts edge-processing passes (dense + sparse), summed
	// over machines. Dividing traffic or allocation counters by it
	// yields the per-superstep rates the benchmark harness reports.
	Supersteps int64
	// Elapsed is the wall-clock duration of the Run.
	Elapsed time.Duration
}

// TotalBytes returns all sent traffic.
func (s RunStats) TotalBytes() int64 { return s.UpdateBytes + s.DependencyBytes + s.ControlBytes }

// NodeRunStats is one machine's share of a Run: the same work and
// traffic counters as RunStats, attributed to a single node. Byte
// counts are sender-side, so summing a field over all nodes yields
// exactly the corresponding RunStats total.
type NodeRunStats struct {
	Node               int
	EdgesTraversed     int64
	VerticesSkipped    int64
	UpdateBytes        int64
	DependencyBytes    int64
	ControlBytes       int64
	UpdateMessages     int64
	DependencyMessages int64
	DependencyWait     time.Duration
	UpdateWait         time.Duration
	Supersteps         int64
}

// TotalBytes returns the node's total sent traffic.
func (s NodeRunStats) TotalBytes() int64 {
	return s.UpdateBytes + s.DependencyBytes + s.ControlBytes
}

// StatsSnapshot is the cluster's full statistics surface for the most
// recent Run: aggregate totals, per-node shares, per-(node, phase) span
// histograms (when a tracer is attached), and configuration warnings.
type StatsSnapshot struct {
	// Totals aggregates the run across all machines this process
	// hosts (all of them for in-process clusters; this machine only in
	// distributed mode).
	Totals RunStats
	// Nodes holds each hosted machine's share, ordered by node ID.
	// Per-field sums over Nodes equal the corresponding Totals fields.
	Nodes []NodeRunStats
	// Phases summarizes the spans recorded by Options.Tracer since the
	// tracer was created (across runs); empty without a tracer.
	Phases []obs.PhaseSummary
	// Warnings lists configuration adjustments made during validation
	// (e.g. an out-of-range NumBuffers clamped to 1).
	Warnings []string
	// Restarts counts recovery re-runs performed over the cluster's
	// lifetime (RunWithRecovery); Stalls counts receives that hit
	// Options.StallTimeout.
	Restarts int64
	Stalls   int64
}

// Add accumulates other into s (for multi-run experiments).
func (s *RunStats) Add(other RunStats) {
	s.EdgesTraversed += other.EdgesTraversed
	s.VerticesSkipped += other.VerticesSkipped
	s.UpdateBytes += other.UpdateBytes
	s.DependencyBytes += other.DependencyBytes
	s.ControlBytes += other.ControlBytes
	s.UpdateMessages += other.UpdateMessages
	s.DependencyMessages += other.DependencyMessages
	s.DependencyWait += other.DependencyWait
	s.UpdateWait += other.UpdateWait
	s.Supersteps += other.Supersteps
	s.Elapsed += other.Elapsed
}

// NewCluster partitions g across opts.NumNodes machines and connects
// them. Close releases the transport.
func NewCluster(g *graph.Graph, opts Options) (*Cluster, error) {
	if err := opts.validateAndDefault(); err != nil {
		return nil, err
	}
	pt, err := partition.NewChunked(g, opts.NumNodes, opts.Alpha)
	if err != nil {
		return nil, err
	}
	threshold := opts.DepThreshold
	if opts.Mode == ModeGemini {
		threshold = 0 // classification irrelevant; track-all keeps layouts uniform
	}
	class := partition.BuildDegreeClass(g, pt, threshold)
	c := &Cluster{
		g:         g,
		opts:      opts,
		part:      pt,
		class:     class,
		layouts:   make([]*partition.Layout, opts.NumNodes),
		localNode: -1,
	}
	for m := 0; m < opts.NumNodes; m++ {
		c.layouts[m] = partition.BuildLayout(g, pt, class, m)
		if opts.binnedScan() {
			// The binned sparse scan reads the partition-blocked CSR.
			// Derivation is deterministic from (graph, partition), so a
			// rebuilt engine over any epoch snapshot blocks identically.
			if err := c.layouts[m].AttachBlocked(g, 0); err != nil {
				return nil, err
			}
		}
	}
	if opts.Endpoints != nil {
		c.endpoints = opts.Endpoints
		if opts.Fault != nil {
			c.endpoints = opts.Fault.Wrap(c.endpoints)
		}
	} else {
		c.buildMemTransport()
	}
	c.initCheckpoints()
	return c, nil
}

// initCheckpoints binds the configured (or default in-memory)
// checkpoint store to this cluster's quorum.
func (c *Cluster) initCheckpoints() {
	if c.opts.CheckpointEvery <= 0 {
		return
	}
	c.ckpt = c.opts.Checkpoints
	if c.ckpt == nil {
		c.ckpt = NewMemCheckpointStore()
	}
	c.ckpt.SetMembers(c.localNodes())
}

// buildMemTransport (re)creates the cluster-owned memory transport,
// layering the fault plan when one is configured. Used at construction
// and by Reset after a poisoned run.
func (c *Cluster) buildMemTransport() {
	c.mem = comm.NewMemClusterWithLink(c.opts.NumNodes, c.opts.Link)
	eps := c.mem.Endpoints()
	if c.opts.Fault != nil {
		eps = c.opts.Fault.Wrap(eps)
	}
	c.endpoints = eps
}

// NewDistributedNode creates this process's view of a genuinely
// distributed cluster: ep connects to opts.NumNodes peers (for example a
// comm.TCPEndpoint built from a shared address list), this process hosts
// machine ep.ID() only, and Run executes the program once for that
// machine. Every process of the cluster must load the same graph and
// call the same programs in the same order; results materialize on the
// node-0 process, and Stats reports this machine's share.
// opts.Endpoints and opts.Link are ignored.
func NewDistributedNode(g *graph.Graph, opts Options, ep comm.Endpoint) (*Cluster, error) {
	if err := opts.validateAndDefault(); err != nil {
		return nil, err
	}
	if ep.N() != opts.NumNodes {
		return nil, fmt.Errorf("core: endpoint knows %d nodes, options say %d", ep.N(), opts.NumNodes)
	}
	pt, err := partition.NewChunked(g, opts.NumNodes, opts.Alpha)
	if err != nil {
		return nil, err
	}
	threshold := opts.DepThreshold
	if opts.Mode == ModeGemini {
		threshold = 0
	}
	class := partition.BuildDegreeClass(g, pt, threshold)
	id := int(ep.ID())
	c := &Cluster{
		g:         g,
		opts:      opts,
		part:      pt,
		class:     class,
		layouts:   make([]*partition.Layout, opts.NumNodes),
		endpoints: make([]comm.Endpoint, opts.NumNodes),
		localNode: id,
	}
	// Only the local machine's layout and endpoint exist in this
	// process — the memory footprint a real cluster member would have.
	c.layouts[id] = partition.BuildLayout(g, pt, class, id)
	if opts.binnedScan() {
		if err := c.layouts[id].AttachBlocked(g, 0); err != nil {
			return nil, err
		}
	}
	if opts.Fault != nil {
		ep = opts.Fault.WrapOne(ep)
	}
	c.endpoints[id] = ep
	c.initCheckpoints()
	return c, nil
}

// Graph returns the cluster's graph.
func (c *Cluster) Graph() *graph.Graph { return c.g }

// Options returns the cluster's configuration.
func (c *Cluster) Options() Options { return c.opts }

// Partition returns the vertex partition.
func (c *Cluster) Partition() *partition.Partition { return c.part }

// Close releases the transport if the cluster owns it. Externally
// supplied endpoints are left open for the caller to close.
func (c *Cluster) Close() error {
	if c.mem != nil {
		return c.mem.Close()
	}
	return nil
}

// Run executes prog SPMD-style: one invocation per machine, concurrently,
// each with its own Worker. It blocks until every machine finishes and
// returns the first error. Statistics for the run are available from
// Stats afterwards.
//
// A failed run poisons the cluster — the transport is closed so the
// surviving machines' pending receives return instead of hanging — and
// subsequent Runs return a *PoisonedError until Reset re-forms it.
func (c *Cluster) Run(prog func(w *Worker) error) error {
	return c.RunContext(c.base(), prog)
}

// SetBaseContext installs the context that governs the context-less
// entry points Run and Execute (nil restores the default,
// context.Background). A serving layer leases the cluster, binds the
// request's deadline here before dispatching an algorithm — whose
// internal Execute calls then inherit the deadline — and clears it on
// release. Must not be called while a run is in progress.
func (c *Cluster) SetBaseContext(ctx context.Context) {
	c.baseMu.Lock()
	c.baseCtx = ctx
	c.baseMu.Unlock()
}

// base returns the installed base context, defaulting to Background.
func (c *Cluster) base() context.Context {
	c.baseMu.Lock()
	defer c.baseMu.Unlock()
	if c.baseCtx != nil {
		return c.baseCtx
	}
	return context.Background()
}

// clearCkpt discards prior snapshots at the top of a fresh program,
// unless Options.ResumeCheckpoints asked to adopt them (a restarted
// process resuming a persistent FileCheckpointStore).
func (c *Cluster) clearCkpt() {
	if c.ckpt != nil && !c.opts.ResumeCheckpoints {
		c.ckpt.Clear()
	}
}

// ClearCheckpoints explicitly discards the cluster's checkpoint store.
// Callers running with Options.ResumeCheckpoints use it between
// different programs on a reused cluster, so one query's snapshots
// never leak into the next.
func (c *Cluster) ClearCheckpoints() {
	if c.ckpt != nil {
		c.ckpt.Clear()
	}
}

// RunContext is Run with cooperative cancellation: when ctx is cancelled
// the transport is poisoned, every blocked worker unwinds with an error,
// and RunContext returns ctx's error once all workers have exited. The
// cluster then needs a Reset like any other failed run.
func (c *Cluster) RunContext(ctx context.Context, prog func(w *Worker) error) error {
	c.clearCkpt() // a fresh program must not restore its predecessor's state
	return c.runOnce(ctx, prog)
}

// Execute runs prog under the cluster's configured resilience policy:
// plain single-attempt Run when Options.MaxRestarts is 0, otherwise
// RunWithRecovery. Algorithms call Execute so the -max-restarts flag
// governs every entry point uniformly.
func (c *Cluster) Execute(prog func(w *Worker) error) error {
	if c.opts.MaxRestarts > 0 {
		_, err := c.RunWithRecovery(c.base(), prog)
		return err
	}
	return c.Run(prog)
}

// RunWithRecovery runs prog and, on a recoverable failure (stall, peer
// loss, injected fault or crash — see IsRecoverable), re-forms the
// cluster with Reset and re-runs it, up to Options.MaxRestarts times.
// Programs that checkpoint through Worker.Checkpoint resume from the
// last committed superstep snapshot; others simply start over. Returns
// the number of restarts performed alongside the final error.
func (c *Cluster) RunWithRecovery(ctx context.Context, prog func(w *Worker) error) (restarts int, err error) {
	c.clearCkpt()
	for attempt := 0; ; attempt++ {
		err = c.runOnce(ctx, prog)
		if err == nil || ctx.Err() != nil || !IsRecoverable(err) || attempt >= c.opts.MaxRestarts {
			return attempt, err
		}
		start := time.Now()
		if rerr := c.Reset(); rerr != nil {
			return attempt, fmt.Errorf("core: recovering from %q: %w", err, rerr)
		}
		c.restarts.Add(1)
		if tr := c.tracer(); tr != nil {
			tr.Record(0, obs.PhaseRecovery, attempt, -1, -1, start, time.Since(start))
		}
	}
}

// Poisoned returns the error of the failed run that poisoned the
// cluster, or nil when the cluster is healthy. A pool that leases
// clusters checks it on release: a poisoned cluster needs Reset (or
// replacement) before it can serve again.
func (c *Cluster) Poisoned() error {
	c.poisonMu.Lock()
	defer c.poisonMu.Unlock()
	return c.poisoned
}

// SetTracer replaces the tracer subsequent runs record into — the
// per-request trace-capture hook: a serving layer attaches a fresh
// capturing tracer for one query and restores the shared one after.
// Must not be called while a run is in progress.
func (c *Cluster) SetTracer(tr *obs.Tracer) {
	c.statsMu.Lock()
	c.opts.Tracer = tr
	c.statsMu.Unlock()
}

// tracer returns the current tracer (nil is a valid disabled tracer).
func (c *Cluster) tracer() *obs.Tracer {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.opts.Tracer
}

// Reset re-forms a poisoned cluster: the old transport is torn down, a
// fresh one is built (re-applying the fault plan, whose one-shot crash
// and counters carry over), and the poison mark is cleared. Only
// clusters that own their memory transport can be reset; distributed
// nodes and externally supplied endpoints must be re-formed by the
// caller, who owns them.
func (c *Cluster) Reset() error {
	if c.mem == nil {
		return fmt.Errorf("core: Reset needs a cluster-owned memory transport; re-form external endpoints and build a new cluster instead")
	}
	c.mem.Close()
	c.buildMemTransport()
	c.poisonMu.Lock()
	c.poisoned = nil
	c.poisonMu.Unlock()
	return nil
}

// runOnce is one attempt: it does not clear checkpoints, so a recovery
// re-run can restore what the failed attempt saved.
func (c *Cluster) runOnce(ctx context.Context, prog func(w *Worker) error) error {
	c.poisonMu.Lock()
	if cause := c.poisoned; cause != nil {
		c.poisonMu.Unlock()
		return &PoisonedError{Cause: cause}
	}
	c.poisonMu.Unlock()
	nodes := c.localNodes()
	before := make(map[int]map[comm.Kind]comm.Snapshot, len(nodes))
	for _, i := range nodes {
		ep := c.endpoints[i]
		before[i] = map[comm.Kind]comm.Snapshot{
			comm.KindUpdate:     ep.Stats().Snapshot(comm.KindUpdate),
			comm.KindDependency: ep.Stats().Snapshot(comm.KindDependency),
			comm.KindControl:    ep.Stats().Snapshot(comm.KindControl),
		}
	}

	workers := make([]*Worker, c.opts.NumNodes)
	errs := make([]error, c.opts.NumNodes)
	start := time.Now()
	done := make(chan int, len(nodes))
	runTracer := c.tracer()
	for _, i := range nodes {
		workers[i] = &Worker{
			cluster: c,
			id:      i,
			ep:      c.endpoints[i],
			layout:  c.layouts[i],
			tr:      runTracer,
		}
		go func(i int) {
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("core: node %d panicked: %v", i, r)
				}
				done <- i
			}()
			errs[i] = prog(workers[i])
		}(i)
	}
	// A failed worker (or a cancelled context) would leave its peers
	// blocked in Recv; poison the transport so every pending receive
	// returns. The cluster is unusable until Reset re-forms it.
	var poisonOnce sync.Once
	poison := func(cause error) {
		poisonOnce.Do(func() {
			c.poisonMu.Lock()
			c.poisoned = cause
			c.poisonMu.Unlock()
			for _, j := range nodes {
				c.endpoints[j].Close()
			}
		})
	}
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			poison(ctx.Err())
		case <-watchDone:
		}
	}()
	for k := 0; k < len(nodes); k++ {
		i := <-done
		if errs[i] != nil {
			poison(errs[i])
		}
	}
	close(watchDone)
	elapsed := time.Since(start)

	var stats RunStats
	stats.Elapsed = elapsed
	nodeStats := make([]NodeRunStats, 0, len(nodes))
	for _, i := range nodes {
		ep := c.endpoints[i]
		w := workers[i]
		u := ep.Stats().Snapshot(comm.KindUpdate)
		d := ep.Stats().Snapshot(comm.KindDependency)
		ct := ep.Stats().Snapshot(comm.KindControl)
		ns := NodeRunStats{
			Node:               i,
			EdgesTraversed:     w.edges.Load(),
			VerticesSkipped:    w.skipped.Load(),
			DependencyWait:     time.Duration(w.depWait.Load()),
			UpdateWait:         time.Duration(w.updWait.Load()),
			UpdateBytes:        u.SentBytes - before[i][comm.KindUpdate].SentBytes,
			UpdateMessages:     u.SentMessages - before[i][comm.KindUpdate].SentMessages,
			DependencyBytes:    d.SentBytes - before[i][comm.KindDependency].SentBytes,
			DependencyMessages: d.SentMessages - before[i][comm.KindDependency].SentMessages,
			ControlBytes:       ct.SentBytes - before[i][comm.KindControl].SentBytes,
			Supersteps:         int64(w.densePass + w.sparsePass),
		}
		nodeStats = append(nodeStats, ns)
		stats.EdgesTraversed += ns.EdgesTraversed
		stats.VerticesSkipped += ns.VerticesSkipped
		stats.DependencyWait += ns.DependencyWait
		stats.UpdateWait += ns.UpdateWait
		stats.UpdateBytes += ns.UpdateBytes
		stats.UpdateMessages += ns.UpdateMessages
		stats.DependencyBytes += ns.DependencyBytes
		stats.DependencyMessages += ns.DependencyMessages
		stats.ControlBytes += ns.ControlBytes
		stats.Supersteps += ns.Supersteps
	}
	c.statsMu.Lock()
	c.lastStats = stats
	c.lastNodes = nodeStats
	c.statsMu.Unlock()

	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: run cancelled: %w", err)
	}
	for _, i := range nodes {
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// localNodes lists the machine IDs this process hosts.
func (c *Cluster) localNodes() []int {
	if c.localNode >= 0 {
		return []int{c.localNode}
	}
	out := make([]int, c.opts.NumNodes)
	for i := range out {
		out[i] = i
	}
	return out
}

// Stats returns the full statistics snapshot for the most recent Run:
// aggregate totals, per-node shares, tracer phase histograms, and
// configuration warnings. The snapshot is a copy, safe to retain.
func (c *Cluster) Stats() StatsSnapshot {
	c.statsMu.Lock()
	totals := c.lastStats
	nodes := make([]NodeRunStats, len(c.lastNodes))
	copy(nodes, c.lastNodes)
	tr := c.opts.Tracer
	c.statsMu.Unlock()
	var warnings []string
	if len(c.opts.warnings) > 0 {
		warnings = append(warnings, c.opts.warnings...)
	}
	return StatsSnapshot{
		Totals:   totals,
		Nodes:    nodes,
		Phases:   tr.Summaries(),
		Warnings: warnings,
		Restarts: c.restarts.Load(),
		Stalls:   c.stalls.Load(),
	}
}

// RegisterMetrics exposes the cluster's live transport counters in r:
// per-node, per-kind sent/received bytes and frame counts, per-link
// traffic, simulated-link queueing delay, and configuration warnings.
// The registered gauges sample the endpoints at snapshot time, so a
// /debug/metrics scrape during a Run sees traffic as it happens.
func (c *Cluster) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Set("config.nodes", c.opts.NumNodes)
	r.Set("config.mode", c.opts.Mode.String())
	r.Set("config.buffers", c.opts.NumBuffers)
	r.Set("config.workers", c.opts.Workers)
	r.Set("config.warnings", append([]string(nil), c.opts.warnings...))
	r.RegisterTracer("phases", c.tracer())
	r.RegisterInt("resilience.restarts", func() int64 { return c.restarts.Load() })
	r.RegisterInt("resilience.stalls", func() int64 { return c.stalls.Load() })
	if c.ckpt != nil {
		ck := c.ckpt
		r.RegisterInt("resilience.checkpoint.saved", func() int64 { return ck.Stats().Saved })
		r.RegisterInt("resilience.checkpoint.commits", func() int64 { return ck.Stats().Commits })
		r.RegisterInt("resilience.checkpoint.restores", func() int64 { return ck.Stats().Restores })
		r.RegisterInt("resilience.checkpoint.committed_iter", func() int64 { return int64(ck.Stats().CommittedIter) })
	}
	if plan := c.opts.Fault; plan != nil {
		r.RegisterInt("fault.delays", func() int64 { return plan.Counters().Delays })
		r.RegisterInt("fault.send_errs", func() int64 { return plan.Counters().SendErrs })
		r.RegisterInt("fault.drops", func() int64 { return plan.Counters().Drops })
		r.RegisterInt("fault.crashes", func() int64 { return plan.Counters().Crashes })
	}
	for _, i := range c.localNodes() {
		st := c.endpoints[i].Stats()
		for _, kind := range []comm.Kind{comm.KindUpdate, comm.KindDependency, comm.KindControl} {
			kind := kind
			prefix := fmt.Sprintf("comm.node%d.%s", i, kind)
			r.RegisterInt(prefix+".sent_bytes", func() int64 { return st.SentBytes(kind) })
			r.RegisterInt(prefix+".sent_frames", func() int64 { return st.SentMessages(kind) })
			r.RegisterInt(prefix+".recv_bytes", func() int64 { return st.ReceivedBytes(kind) })
			r.RegisterInt(prefix+".recv_frames", func() int64 { return st.ReceivedMessages(kind) })
		}
		r.RegisterInt(fmt.Sprintf("comm.node%d.link_queue_delay_ns", i),
			func() int64 { return int64(st.QueueDelay()) })
		for peer := 0; peer < c.opts.NumNodes; peer++ {
			if peer == i {
				continue
			}
			peer := peer
			link := fmt.Sprintf("comm.link.%d-%d", i, peer)
			r.RegisterInt(link+".sent_bytes", func() int64 { return st.Peer(comm.NodeID(peer)).SentBytes })
			r.RegisterInt(link+".sent_frames", func() int64 { return st.Peer(comm.NodeID(peer)).SentMessages })
		}
	}
}
