package core

import (
	"encoding/binary"
	"math"
)

// Codec serializes fixed-size update messages. Update communication in
// both dense and sparse modes carries (vertex, message) records; a fixed
// message size keeps framing trivial and byte accounting exact.
type Codec[M any] interface {
	// Size is the encoded size in bytes. It must be constant.
	Size() int
	// Encode writes m into dst[:Size()].
	Encode(dst []byte, m M)
	// Decode reads a message from src[:Size()].
	Decode(src []byte) M
}

// UnitCodec encodes struct{} in zero bytes, for algorithms whose update
// message is pure presence (MIS vetoes).
type UnitCodec struct{}

// Size implements Codec.
func (UnitCodec) Size() int { return 0 }

// Encode implements Codec.
func (UnitCodec) Encode([]byte, struct{}) {}

// Decode implements Codec.
func (UnitCodec) Decode([]byte) struct{} { return struct{}{} }

// U32Codec encodes a uint32 (BFS parent IDs, K-means cluster IDs).
type U32Codec struct{}

// Size implements Codec.
func (U32Codec) Size() int { return 4 }

// Encode implements Codec.
func (U32Codec) Encode(dst []byte, m uint32) { binary.LittleEndian.PutUint32(dst, m) }

// Decode implements Codec.
func (U32Codec) Decode(src []byte) uint32 { return binary.LittleEndian.Uint32(src) }

// I64Codec encodes an int64 (K-core partial counts, distance sums).
type I64Codec struct{}

// Size implements Codec.
func (I64Codec) Size() int { return 8 }

// Encode implements Codec.
func (I64Codec) Encode(dst []byte, m int64) { binary.LittleEndian.PutUint64(dst, uint64(m)) }

// Decode implements Codec.
func (I64Codec) Decode(src []byte) int64 { return int64(binary.LittleEndian.Uint64(src)) }

// F64Codec encodes a float64.
type F64Codec struct{}

// Size implements Codec.
func (F64Codec) Size() int { return 8 }

// Encode implements Codec.
func (F64Codec) Encode(dst []byte, m float64) {
	binary.LittleEndian.PutUint64(dst, math.Float64bits(m))
}

// Decode implements Codec.
func (F64Codec) Decode(src []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(src))
}

// F32Codec encodes a float32 (SSSP distances).
type F32Codec struct{}

// Size implements Codec.
func (F32Codec) Size() int { return 4 }

// Encode implements Codec.
func (F32Codec) Encode(dst []byte, m float32) {
	binary.LittleEndian.PutUint32(dst, math.Float32bits(m))
}

// Decode implements Codec.
func (F32Codec) Decode(src []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(src))
}

// WeightedPick is the Gemini-mode sampling message: a machine's local
// weight mass and its local candidate, hierarchically combined at the
// master (§2.1's graph sampling under a framework without dependency
// propagation).
type WeightedPick struct {
	Sum  float64
	Cand uint32
}

// WeightedPickCodec encodes WeightedPick in 12 bytes.
type WeightedPickCodec struct{}

// Size implements Codec.
func (WeightedPickCodec) Size() int { return 12 }

// Encode implements Codec.
func (WeightedPickCodec) Encode(dst []byte, m WeightedPick) {
	binary.LittleEndian.PutUint64(dst, math.Float64bits(m.Sum))
	binary.LittleEndian.PutUint32(dst[8:], m.Cand)
}

// Decode implements Codec.
func (WeightedPickCodec) Decode(src []byte) WeightedPick {
	return WeightedPick{
		Sum:  math.Float64frombits(binary.LittleEndian.Uint64(src)),
		Cand: binary.LittleEndian.Uint32(src[8:]),
	}
}
