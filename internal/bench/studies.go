package bench

import (
	"fmt"
	"sort"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/xrand"
)

// PartitionStudy examines the paper's §2.3 remark that incoming edge-cut
// — the one partition family where loop-carried dependency needs no
// cross-machine propagation — "is inefficient and rarely used due to
// load imbalance issues". It reports three per-machine edge-load
// imbalances (max/mean): the engine's contiguous chunking balanced by
// out-edges; the same chunking balanced by in-edges (an idealized
// locality-aware incoming edge-cut); and Pregel-style hash placement of
// vertices with their indivisible in-edge sets. The hub column shows the
// largest single indivisible in-edge set as a fraction of |E| — the
// quantity that would make incoming edge-cut imbalance unavoidable if it
// approached 1/p. At laptop scale it does not bind (hubs hold ~2% of
// |E|), so the measured incoming-cut imbalance stays mild; the study
// quantifies rather than assumes the paper's claim, whose force grows
// with the hub concentration of production graphs.
func PartitionStudy(s *Suite, nodes int) (string, error) {
	b, w := newTable("Graph", "chunked-out max/mean", "chunked-in max/mean", "hashed-in max/mean", "hub share of |E|")
	for _, d := range s.Main {
		g := d.Graph()
		pt, err := partition.NewChunked(g, nodes, 0)
		if err != nil {
			return "", err
		}
		outImb := edgeImbalance(g, pt, func(v graph.VertexID) int { return g.OutDegree(v) })

		inPt, err := chunkByInDegree(g, nodes)
		if err != nil {
			return "", err
		}
		inImb := edgeImbalance(g, inPt, func(v graph.VertexID) int { return g.InDegree(v) })

		hashImb := hashedInImbalance(g, nodes)

		_, hubDeg := largestInDegree(g)
		hubShare := float64(hubDeg) / float64(g.NumEdges())
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.4f\n", d.Name, outImb, inImb, hashImb, hubShare)
	}
	w.Flush()
	return b.String(), nil
}

// hashedInImbalance computes max/mean machine edge load when vertices
// (and therefore their whole in-edge sets) are placed by hash.
func hashedInImbalance(g *graph.Graph, p int) float64 {
	loads := make([]float64, p)
	for v := 0; v < g.NumVertices(); v++ {
		m := int(xrand.Mix(0x9a97, uint64(v)) % uint64(p))
		loads[m] += float64(g.InDegree(graph.VertexID(v)))
	}
	var total, max float64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	return max / (total / float64(p))
}

// edgeImbalance returns max/mean of per-machine edge loads.
func edgeImbalance(g *graph.Graph, pt *partition.Partition, deg func(graph.VertexID) int) float64 {
	loads := make([]float64, pt.P)
	for m := 0; m < pt.P; m++ {
		lo, hi := pt.Range(m)
		for v := lo; v < hi; v++ {
			loads[m] += float64(deg(graph.VertexID(v)))
		}
	}
	var total, max float64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	return max / (total / float64(pt.P))
}

// chunkByInDegree builds contiguous chunks balanced by in-degree, the
// incoming edge-cut analogue of partition.NewChunked.
func chunkByInDegree(g *graph.Graph, p int) (*partition.Partition, error) {
	n := g.NumVertices()
	total := partition.DefaultAlpha*float64(n) + float64(g.NumEdges())
	perChunk := total / float64(p)
	starts := make([]int, p+1)
	v := 0
	for i := 0; i < p; i++ {
		starts[i] = v
		if i == p-1 {
			break
		}
		var acc float64
		for v < n && acc < perChunk {
			acc += partition.DefaultAlpha + float64(g.InDegree(graph.VertexID(v)))
			v++
		}
	}
	starts[p] = n
	for i := 1; i <= p; i++ {
		if starts[i] < starts[i-1] {
			starts[i] = starts[i-1]
		}
	}
	return &partition.Partition{P: p, NumV: n, Starts: starts}, nil
}

func largestInDegree(g *graph.Graph) (graph.VertexID, int) {
	var best graph.VertexID
	bestDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.InDegree(graph.VertexID(v)); d > bestDeg {
			best, bestDeg = graph.VertexID(v), d
		}
	}
	return best, bestDeg
}

// DirectionStudy measures BFS under forced traversal directions on the
// skewed (tw) and low-skew (cl) stand-ins — the mechanism behind Table
// 3's cl rows, where the adaptive switch rarely chooses bottom-up so
// SympleGraph ≈ Gemini. Reported per direction: edges traversed by each
// mode and their ratio.
func DirectionStudy(s *Suite, cfg Config) (string, error) {
	cfg = cfg.Defaults()
	b, w := newTable("Graph", "Direction", "Gemini edges", "SympG. edges", "ratio")
	datasets := []*Dataset{s.ByName("tw"), s.ByName("cl")}
	dirs := []struct {
		name string
		dir  algorithms.Direction
	}{
		{"adaptive", algorithms.DirectionAdaptive},
		{"top-down", algorithms.DirectionTopDown},
		{"bottom-up", algorithms.DirectionBottomUp},
	}
	for _, d := range datasets {
		g := d.Graph()
		roots := bfsRoots(g, cfg.Seed, cfg.BFSRoots)
		for _, dir := range dirs {
			edges := map[core.Mode]int64{}
			for _, mode := range []core.Mode{core.ModeGemini, core.ModeSympleGraph} {
				opts := core.Options{NumNodes: cfg.Nodes, Mode: mode, NumBuffers: 2, Link: cfg.Link}
				if mode == core.ModeSympleGraph {
					opts.DepThreshold = core.DefaultDepThreshold
				}
				c, err := core.NewCluster(g, opts)
				if err != nil {
					return "", err
				}
				for _, root := range roots {
					if _, err := algorithms.BFSWithDirection(c, root, dir.dir); err != nil {
						c.Close()
						return "", err
					}
					edges[mode] += c.Stats().Totals.EdgesTraversed
				}
				c.Close()
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.3f\n", d.Name, dir.name,
				edges[core.ModeGemini], edges[core.ModeSympleGraph],
				ratio(float64(edges[core.ModeSympleGraph]), float64(edges[core.ModeGemini])))
		}
	}
	w.Flush()
	return b.String(), nil
}

// sortedDatasetNames is a small helper for stable study output.
func sortedDatasetNames(s *Suite) []string {
	names := make([]string, 0, len(s.Main))
	for _, d := range s.Main {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return names
}
