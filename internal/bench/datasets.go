// Package bench is the experiment harness: it defines the laptop-scale
// workloads standing in for the paper's datasets (Table 1), runs each
// (system, algorithm, dataset) cell, and formats the rows of every table
// and figure in the paper's evaluation (§7). cmd/sgbench and the
// top-level benchmarks are thin wrappers over this package; EXPERIMENTS.md
// records the measured shapes against the paper's.
package bench

import (
	"sync"

	"repro/internal/graph"
)

// Dataset is a named workload graph. Build is lazy and cached: datasets
// are constructed deterministically from seeds, standing in for the
// paper's downloads (Twitter-2010, Friendster, Clueweb-12, Gsh-2015) and
// its R-MAT syntheses (s27/s28/s29).
type Dataset struct {
	// Name is the paper's dataset abbreviation ("tw", "s27", …).
	Name string
	// Description explains what the stand-in models.
	Description string

	build func() *graph.Graph
	once  sync.Once
	g     *graph.Graph
}

// Graph builds (once) and returns the dataset graph.
func (d *Dataset) Graph() *graph.Graph {
	d.once.Do(func() { d.g = d.build() })
	return d.g
}

// Suite is the set of datasets an experiment run uses. Scale is the base
// R-MAT scale (the paper's 27, here laptop-sized); the three synthesized
// graphs keep the paper's design of equal edge counts at edge factors
// 32/16/8, and the two real-graph stand-ins keep R-MAT skew at
// Twitter/Friendster-like edge factors.
type Suite struct {
	Scale int
	// Main lists the five Table 4/5/6 datasets: tw, fr, s27, s28, s29
	// stand-ins.
	Main []*Dataset
	// Large lists the Table 3 stand-ins: gsh (skewed web) and cl
	// (low-skew per-BFS-behaviour web, where bottom-up is rarely
	// chosen).
	Large []*Dataset
}

// NewSuite builds the dataset suite at the given base scale (≥ 8).
// Scale 14 gives benchmark-sized graphs (~500K-1M edges each); tests use
// smaller scales.
func NewSuite(scale int) *Suite {
	p := graph.Graph500Params()
	mk := func(name, desc string, build func() *graph.Graph) *Dataset {
		return &Dataset{Name: name, Description: desc, build: build}
	}
	return &Suite{
		Scale: scale,
		Main: []*Dataset{
			mk("tw", "Twitter-2010 stand-in: R-MAT, edge factor 24",
				func() *graph.Graph { return graph.RMAT(scale, 24, p, 1001) }),
			mk("fr", "Friendster stand-in: R-MAT, edge factor 28",
				func() *graph.Graph { return graph.RMAT(scale, 28, p, 1002) }),
			mk("s27", "R-MAT scale=base, edge factor 32",
				func() *graph.Graph { return graph.RMAT(scale, 32, p, 1003) }),
			mk("s28", "R-MAT scale=base+1, edge factor 16",
				func() *graph.Graph { return graph.RMAT(scale+1, 16, p, 1004) }),
			mk("s29", "R-MAT scale=base+2, edge factor 8",
				func() *graph.Graph { return graph.RMAT(scale+2, 8, p, 1005) }),
		},
		Large: []*Dataset{
			mk("gsh", "Gsh-2015 stand-in: skewed R-MAT, edge factor 32",
				func() *graph.Graph { return graph.RMAT(scale+1, 32, p, 1006) }),
			mk("cl", "Clueweb-12 stand-in: low-skew uniform graph",
				func() *graph.Graph {
					n := 1 << uint(scale+1)
					return graph.Uniform(n, int64(n)*16, 1007)
				}),
		},
	}
}

// All returns Main followed by Large.
func (s *Suite) All() []*Dataset { return append(append([]*Dataset{}, s.Main...), s.Large...) }

// ByName finds a dataset or returns nil.
func (s *Suite) ByName(name string) *Dataset {
	for _, d := range s.All() {
		if d.Name == name {
			return d
		}
	}
	return nil
}
