package bench

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func smallMatrix(t *testing.T) *Matrix {
	t.Helper()
	m := &Matrix{Cells: map[string]Measurement{}}
	for _, cell := range []Measurement{
		{System: "Gemini", Algo: AlgoBFS, Dataset: "tw", Seconds: 1.5, EdgesTraversed: 10, UpdateBytes: 100, Supported: true},
		{System: "SympleGraph", Algo: AlgoBFS, Dataset: "tw", Seconds: 1.0, EdgesTraversed: 5, UpdateBytes: 60, DependencyBytes: 7, DependencyWaitSeconds: 0.25, Supported: true},
		{System: "D-Galois", Algo: AlgoSampling, Dataset: "tw"},
	} {
		m.Cells[cellKey(cell.System, cell.Algo, cell.Dataset)] = cell
	}
	return m
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := smallMatrix(t).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 { // header + 3 cells
		t.Fatalf("%d records", len(records))
	}
	if records[0][0] != "system" || len(records[0]) != 11 {
		t.Fatalf("header %v", records[0])
	}
	// Sorted: BFS before Sampling; Gemini before SympleGraph.
	if records[1][0] != "Gemini" || records[2][0] != "SympleGraph" || records[3][0] != "D-Galois" {
		t.Fatalf("order wrong: %v", records)
	}
	if records[2][6] != "7" {
		t.Fatalf("dependency bytes column: %v", records[2])
	}
	if records[2][8] != "0.250000" {
		t.Fatalf("dependency wait column: %v", records[2])
	}
	if records[3][10] != "false" {
		t.Fatalf("supported column: %v", records[3])
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := smallMatrix(t).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var cells []Measurement
	if err := json.Unmarshal(buf.Bytes(), &cells); err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("%d cells", len(cells))
	}
	if cells[1].System != "SympleGraph" || cells[1].DependencyBytes != 7 {
		t.Fatalf("got %+v", cells[1])
	}
	if !strings.Contains(buf.String(), "\"Algo\": \"BFS\"") {
		t.Fatalf("json:\n%s", buf.String())
	}
}
