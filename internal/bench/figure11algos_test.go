package bench

import (
	"testing"
	"time"

	"repro/internal/comm"
)

// TestFigure11AlgosDependencyBound exercises the dependency-bound
// ablation path sgbench uses: sampling only, on a slow link. The
// differentiated-propagation variant must not be slower than
// circulant-only (it sends ~6× less dependency data).
func TestFigure11AlgosDependencyBound(t *testing.T) {
	if testing.Short() {
		t.Skip("slow-link sweep")
	}
	s := NewSuite(9)
	cfg := Config{
		Nodes: 4, BFSRoots: 1, KMeansIters: 1, SampleRounds: 2, Seed: 3, Repeats: 2,
		Link: &comm.LinkModel{Latency: 100 * time.Microsecond, BytesPerSecond: 1e6},
	}
	rows, err := Figure11Algos(s, cfg, []Algo{AlgoSampling})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Main) {
		t.Fatalf("%d rows", len(rows))
	}
	betterOrEqual := 0
	for _, r := range rows {
		if r.Normalized[VariantCirculant.Name] != 1.0 {
			t.Fatalf("baseline not 1.0: %+v", r)
		}
		if r.Normalized[VariantDP.Name] <= 1.05 {
			betterOrEqual++
		}
	}
	// Allow noise on a couple of datasets but demand the trend.
	if betterOrEqual < len(rows)-1 {
		t.Fatalf("DP slower than circulant-only on %d/%d datasets: %+v",
			len(rows)-betterOrEqual, len(rows), rows)
	}
}
