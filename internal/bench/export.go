package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteCSV exports every matrix cell as CSV — system, algorithm, dataset,
// seconds, edges traversed, update/dependency/control bytes, dependency/
// update wait seconds, supported — sorted by (algo, dataset, system) so
// exports diff cleanly.
func (m *Matrix) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"system", "algo", "dataset", "seconds",
		"edges_traversed", "update_bytes", "dependency_bytes", "control_bytes",
		"dependency_wait_seconds", "update_wait_seconds", "supported",
	}); err != nil {
		return err
	}
	for _, c := range m.sortedCells() {
		rec := []string{
			c.System, string(c.Algo), c.Dataset,
			fmt.Sprintf("%.6f", c.Seconds),
			fmt.Sprint(c.EdgesTraversed),
			fmt.Sprint(c.UpdateBytes),
			fmt.Sprint(c.DependencyBytes),
			fmt.Sprint(c.ControlBytes),
			fmt.Sprintf("%.6f", c.DependencyWaitSeconds),
			fmt.Sprintf("%.6f", c.UpdateWaitSeconds),
			fmt.Sprint(c.Supported),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON exports the sorted cells as a JSON array.
func (m *Matrix) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.sortedCells())
}

func (m *Matrix) sortedCells() []Measurement {
	cells := make([]Measurement, 0, len(m.Cells))
	for _, c := range m.Cells {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Algo != cells[j].Algo {
			return cells[i].Algo < cells[j].Algo
		}
		if cells[i].Dataset != cells[j].Dataset {
			return cells[i].Dataset < cells[j].Dataset
		}
		return cells[i].System < cells[j].System
	})
	return cells
}
