package bench

import (
	"strings"
	"testing"
)

func TestPartitionStudy(t *testing.T) {
	out, err := PartitionStudy(testSuite(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "chunked-out") || !strings.Contains(out, "hashed-in") {
		t.Fatalf("output:\n%s", out)
	}
	if strings.Count(out, "\n") < 6 {
		t.Fatalf("missing rows:\n%s", out)
	}
}

func TestDirectionStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs BFS sweeps")
	}
	out, err := DirectionStudy(testSuite(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"adaptive", "top-down", "bottom-up", "tw", "cl"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// Top-down rows must show ratio 1.000: push mode has no dependency.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "top-down") && !strings.Contains(line, "1.000") {
			t.Fatalf("top-down ratio not 1.0: %s", line)
		}
	}
}

func TestChunkByInDegreeCovers(t *testing.T) {
	s := testSuite()
	g := s.ByName("tw").Graph()
	pt, err := chunkByInDegree(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Starts[0] != 0 || pt.Starts[5] != g.NumVertices() {
		t.Fatalf("chunks do not cover: %v", pt.Starts)
	}
	for i := 1; i <= 5; i++ {
		if pt.Starts[i] < pt.Starts[i-1] {
			t.Fatalf("non-monotone starts: %v", pt.Starts)
		}
	}
}

func TestImbalanceHelpers(t *testing.T) {
	g := testSuite().ByName("s27").Graph()
	if imb := hashedInImbalance(g, 4); imb < 1 {
		t.Fatalf("imbalance %g < 1", imb)
	}
	v, d := largestInDegree(g)
	if d <= 0 || g.InDegree(v) != d {
		t.Fatalf("largestInDegree wrong: %d %d", v, d)
	}
	names := sortedDatasetNames(testSuite())
	if len(names) != 5 || names[0] > names[1] {
		t.Fatalf("sortedDatasetNames: %v", names)
	}
}
