package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/algorithms"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/gluon"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/seq"
	"repro/internal/xrand"
)

// Algo names the five evaluated algorithms.
type Algo string

// The paper's five algorithms (§2.1).
const (
	AlgoBFS      Algo = "BFS"
	AlgoMIS      Algo = "MIS"
	AlgoKCore    Algo = "K-core"
	AlgoKMeans   Algo = "K-means"
	AlgoSampling Algo = "Sampling"
)

// Algos lists all five in the paper's table order.
var Algos = []Algo{AlgoBFS, AlgoKCore, AlgoMIS, AlgoKMeans, AlgoSampling}

// Undirected reports whether the algorithm runs on the symmetrized graph
// (the paper's methodology for MIS, K-core, K-means).
func (a Algo) Undirected() bool {
	return a == AlgoMIS || a == AlgoKCore || a == AlgoKMeans
}

// Variant is an engine configuration under measurement — a system of the
// paper's comparison or an ablation point of Figure 11.
type Variant struct {
	Name         string
	Mode         core.Mode
	DepThreshold int
	NumBuffers   int
}

// The measured systems and ablation variants.
var (
	// VariantGemini is the baseline system.
	VariantGemini = Variant{Name: "Gemini", Mode: core.ModeGemini, NumBuffers: 1}
	// VariantSympleGraph is the full system: circulant scheduling +
	// differentiated propagation (threshold 32) + double buffering.
	VariantSympleGraph = Variant{Name: "SympleGraph", Mode: core.ModeSympleGraph, DepThreshold: core.DefaultDepThreshold, NumBuffers: 2}
	// VariantCirculant is Figure 11's base: circulant scheduling only.
	VariantCirculant = Variant{Name: "Circulant", Mode: core.ModeSympleGraph, DepThreshold: 0, NumBuffers: 1}
	// VariantDB adds double buffering only.
	VariantDB = Variant{Name: "Circulant+DB", Mode: core.ModeSympleGraph, DepThreshold: 0, NumBuffers: 2}
	// VariantDP adds differentiated propagation only.
	VariantDP = Variant{Name: "Circulant+DP", Mode: core.ModeSympleGraph, DepThreshold: core.DefaultDepThreshold, NumBuffers: 1}
)

// Config are experiment-wide knobs, shared across systems so every cell
// runs the identical workload.
type Config struct {
	// Nodes is the simulated cluster size (Cluster-A uses 16, most
	// per-table runs 8).
	Nodes int
	// Workers is the per-node worker-thread count.
	Workers int
	// Seed drives every deterministic draw.
	Seed uint64
	// BFSRoots is the number of BFS sources averaged (paper: 64).
	BFSRoots int
	// KCoreK is Table 4/5/6's K (Table 2 sweeps it).
	KCoreK int
	// KMeansIters is the number of outer K-means iterations (paper: 20).
	KMeansIters int
	// SampleRounds is the number of sampling rounds.
	SampleRounds int
	// Link is the simulated interconnect (nil selects
	// comm.DefaultLink; use &comm.LinkModel{} for instant delivery in
	// correctness-only runs).
	Link *comm.LinkModel
	// Repeats re-runs each cell and keeps the fastest time (work and
	// traffic are deterministic across repeats). Defaults to 1.
	Repeats int
	// Tracer, when non-nil, records per-phase spans for every core-engine
	// cell (gluon and sequential baselines are not traced).
	Tracer *obs.Tracer
	// StallTimeout, CheckpointEvery, MaxRestarts and Fault thread the
	// resilience policy into every core-engine cell — benchmarking under
	// chaos measures recovery overhead with the usual metrics. Baseline
	// systems (gluon, sequential) run without them.
	StallTimeout    time.Duration
	CheckpointEvery int
	MaxRestarts     int
	Fault           *comm.FaultPlan
}

// Defaults fills zero fields with the harness defaults.
func (c Config) Defaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.BFSRoots == 0 {
		c.BFSRoots = 4
	}
	if c.KCoreK == 0 {
		c.KCoreK = 8
	}
	if c.KMeansIters == 0 {
		c.KMeansIters = 3
	}
	if c.SampleRounds == 0 {
		c.SampleRounds = 4
	}
	if c.Link == nil {
		c.Link = comm.DefaultLink()
	}
	if c.Repeats == 0 {
		c.Repeats = 1
	}
	return c
}

// Measurement is one (system, algorithm, dataset) cell.
type Measurement struct {
	System, Dataset string
	Algo            Algo
	Seconds         float64
	EdgesTraversed  int64
	UpdateBytes     int64
	DependencyBytes int64
	ControlBytes    int64
	// DependencyWaitSeconds and UpdateWaitSeconds sum the per-node time
	// blocked on dependency and update receives (zero for systems that
	// do not report them).
	DependencyWaitSeconds float64
	UpdateWaitSeconds     float64
	// Supported is false for cells the system cannot run (D-Galois has
	// no sampling implementation, §7.1).
	Supported bool
}

// TotalBytes returns the cell's total sent traffic.
func (m Measurement) TotalBytes() int64 {
	return m.UpdateBytes + m.DependencyBytes + m.ControlBytes
}

// workGraph returns the dataset's graph in the orientation the algorithm
// needs, cached.
func workGraph(d *Dataset, a Algo) *graph.Graph {
	if a.Undirected() {
		return symmetrized(d)
	}
	return d.Graph()
}

var symCache = struct {
	m map[*Dataset]*graph.Graph
}{m: map[*Dataset]*graph.Graph{}}

var symCacheMu chan struct{} = make(chan struct{}, 1)

func symmetrized(d *Dataset) *graph.Graph {
	symCacheMu <- struct{}{}
	defer func() { <-symCacheMu }()
	if g, ok := symCache.m[d]; ok {
		return g
	}
	g := graph.Symmetrize(d.Graph())
	symCache.m[d] = g
	return g
}

// bfsRoots draws deterministic non-isolated roots, as the paper draws
// "64 randomly generated non-isolated roots".
func bfsRoots(g *graph.Graph, seed uint64, n int) []graph.VertexID {
	candidates := graph.NonIsolatedVertices(g)
	if len(candidates) == 0 {
		return nil
	}
	roots := make([]graph.VertexID, 0, n)
	for i := 0; i < n; i++ {
		roots = append(roots, candidates[xrand.Intn(len(candidates), seed, 0xb0075, uint64(i))])
	}
	return roots
}

// RunVariant runs one cell on the core engine, repeating cfg.Repeats
// times and keeping the fastest wall time (the workload is deterministic,
// so work and traffic metrics are identical across repeats).
func RunVariant(v Variant, a Algo, d *Dataset, cfg Config) (Measurement, error) {
	cfg = cfg.Defaults()
	best := Measurement{}
	for r := 0; r < cfg.Repeats; r++ {
		m, err := runVariantOnce(v, a, d, cfg)
		if err != nil {
			return m, err
		}
		if r == 0 || m.Seconds < best.Seconds {
			best = m
		}
	}
	return best, nil
}

func runVariantOnce(v Variant, a Algo, d *Dataset, cfg Config) (Measurement, error) {
	g := workGraph(d, a)
	c, err := core.NewCluster(g, core.Options{
		NumNodes:        cfg.Nodes,
		Mode:            v.Mode,
		DepThreshold:    v.DepThreshold,
		NumBuffers:      v.NumBuffers,
		Workers:         cfg.Workers,
		Link:            cfg.Link,
		Tracer:          cfg.Tracer,
		StallTimeout:    cfg.StallTimeout,
		CheckpointEvery: cfg.CheckpointEvery,
		MaxRestarts:     cfg.MaxRestarts,
		Fault:           cfg.Fault,
	})
	if err != nil {
		return Measurement{}, err
	}
	defer c.Close()

	m := Measurement{System: v.Name, Dataset: d.Name, Algo: a, Supported: true}
	accumulate := func() {
		s := c.Stats().Totals
		m.Seconds += s.Elapsed.Seconds()
		m.EdgesTraversed += s.EdgesTraversed
		m.UpdateBytes += s.UpdateBytes
		m.DependencyBytes += s.DependencyBytes
		m.ControlBytes += s.ControlBytes
		m.DependencyWaitSeconds += s.DependencyWait.Seconds()
		m.UpdateWaitSeconds += s.UpdateWait.Seconds()
	}
	switch a {
	case AlgoBFS:
		for _, root := range bfsRoots(g, cfg.Seed, cfg.BFSRoots) {
			if _, err := algorithms.BFS(c, root); err != nil {
				return m, err
			}
			accumulate()
		}
	case AlgoMIS:
		if _, err := algorithms.MIS(c, cfg.Seed); err != nil {
			return m, err
		}
		accumulate()
	case AlgoKCore:
		if _, err := algorithms.KCore(c, cfg.KCoreK); err != nil {
			return m, err
		}
		accumulate()
	case AlgoKMeans:
		centers := int(math.Sqrt(float64(g.NumVertices())))
		if _, err := algorithms.KMeans(c, centers, cfg.KMeansIters, cfg.Seed); err != nil {
			return m, err
		}
		accumulate()
	case AlgoSampling:
		if _, err := algorithms.Sample(c, cfg.Seed, cfg.SampleRounds); err != nil {
			return m, err
		}
		accumulate()
	default:
		return m, fmt.Errorf("bench: unknown algorithm %q", a)
	}
	return m, nil
}

// RunDGalois runs one cell on the gluon baseline, repeating like
// RunVariant. Sampling is unsupported (as in D-Galois) and returns
// Supported=false.
func RunDGalois(a Algo, d *Dataset, cfg Config) (Measurement, error) {
	cfg = cfg.Defaults()
	best := Measurement{}
	for r := 0; r < cfg.Repeats; r++ {
		m, err := runDGaloisOnce(a, d, cfg)
		if err != nil {
			return m, err
		}
		if r == 0 || (m.Supported && m.Seconds < best.Seconds) {
			best = m
		}
	}
	return best, nil
}

func runDGaloisOnce(a Algo, d *Dataset, cfg Config) (Measurement, error) {
	m := Measurement{System: "D-Galois", Dataset: d.Name, Algo: a}
	if a == AlgoSampling {
		return m, nil
	}
	g := workGraph(d, a)
	e, err := gluon.NewWithLink(g, cfg.Nodes, cfg.Link)
	if err != nil {
		return m, err
	}
	defer e.Close()
	m.Supported = true
	start := time.Now()
	switch a {
	case AlgoBFS:
		for _, root := range bfsRoots(g, cfg.Seed, cfg.BFSRoots) {
			if _, err := gluon.BFS(e, root); err != nil {
				return m, err
			}
			m.EdgesTraversed += e.LastRunStats().EdgesTraversed
			m.UpdateBytes += e.LastRunStats().SyncBytes
			m.ControlBytes += e.LastRunStats().ControlBytes
		}
	case AlgoMIS:
		if _, err := gluon.MIS(e, cfg.Seed); err != nil {
			return m, err
		}
	case AlgoKCore:
		if _, err := gluon.KCore(e, cfg.KCoreK); err != nil {
			return m, err
		}
	case AlgoKMeans:
		centers := int(math.Sqrt(float64(g.NumVertices())))
		if _, err := gluon.KMeans(e, centers, cfg.KMeansIters, cfg.Seed); err != nil {
			return m, err
		}
	default:
		return m, fmt.Errorf("bench: unknown algorithm %q", a)
	}
	if a != AlgoBFS {
		s := e.LastRunStats()
		m.EdgesTraversed = s.EdgesTraversed
		m.UpdateBytes = s.SyncBytes
		m.ControlBytes = s.ControlBytes
	}
	m.Seconds = time.Since(start).Seconds()
	return m, nil
}

// RunSequential runs the single-thread reference (the COST baseline:
// GAPBS-style BFS, greedy MIS, the linear-time Matula–Beck K-core).
func RunSequential(a Algo, d *Dataset, cfg Config) (Measurement, error) {
	cfg = cfg.Defaults()
	g := workGraph(d, a)
	m := Measurement{System: "sequential", Dataset: d.Name, Algo: a, Supported: true}
	start := time.Now()
	switch a {
	case AlgoBFS:
		for _, root := range bfsRoots(g, cfg.Seed, cfg.BFSRoots) {
			seq.DirectionOptimizingBFS(g, root)
		}
	case AlgoMIS:
		seq.GreedyMIS(g, seq.MISColors(g.NumVertices(), cfg.Seed))
	case AlgoKCore:
		seq.KCoreFromCoreness(seq.Coreness(g), cfg.KCoreK)
	case AlgoKMeans:
		centers := int(math.Sqrt(float64(g.NumVertices())))
		seq.KMeans(g, centers, cfg.KMeansIters, cfg.Seed, nil)
	case AlgoSampling:
		for round := 0; round < cfg.SampleRounds; round++ {
			seq.SampleNeighbors(g, cfg.Seed, round, nil)
		}
	default:
		return m, fmt.Errorf("bench: unknown algorithm %q", a)
	}
	m.Seconds = time.Since(start).Seconds()
	return m, nil
}

// Matrix holds every measured cell of a multi-system sweep, keyed by
// (system, algo, dataset).
type Matrix struct {
	Cells map[string]Measurement
}

func cellKey(system string, a Algo, dataset string) string {
	return system + "/" + string(a) + "/" + dataset
}

// Get returns a cell.
func (m *Matrix) Get(system string, a Algo, dataset string) (Measurement, bool) {
	c, ok := m.Cells[cellKey(system, a, dataset)]
	return c, ok
}

// RunMatrix measures every (system, algo, dataset) combination over the
// suite's main datasets: Gemini, D-Galois, SympleGraph — the shared input
// of Tables 4, 5 and 6.
func RunMatrix(s *Suite, cfg Config) (*Matrix, error) {
	m := &Matrix{Cells: map[string]Measurement{}}
	for _, d := range s.Main {
		for _, a := range Algos {
			for _, v := range []Variant{VariantGemini, VariantSympleGraph} {
				cell, err := RunVariant(v, a, d, cfg)
				if err != nil {
					return nil, fmt.Errorf("bench: %s/%s/%s: %w", v.Name, a, d.Name, err)
				}
				m.Cells[cellKey(v.Name, a, d.Name)] = cell
			}
			cell, err := RunDGalois(a, d, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: D-Galois/%s/%s: %w", a, d.Name, err)
			}
			m.Cells[cellKey("D-Galois", a, d.Name)] = cell
		}
	}
	return m, nil
}
