package bench

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
)

func newTable(header ...string) (*strings.Builder, *tabwriter.Writer) {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	return &b, w
}

// Table1 renders dataset statistics: |V|, |E| and the high-degree
// fraction |V'|/|V| at the dependency threshold (paper Table 1).
func Table1(s *Suite) string {
	b, w := newTable("Graph", "|V|", "|E|", "|V'|/|V|")
	for _, d := range s.All() {
		g := d.Graph()
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\n", d.Name, g.NumVertices(), g.NumEdges(),
			g.HighDegreeFraction(core.DefaultDepThreshold))
	}
	w.Flush()
	return b.String()
}

// Table2 renders the K-core K-sweep on the two social-graph stand-ins
// (paper Table 2: K ∈ {4, 8, 16, 32, 64}, Gemini vs SympleGraph).
func Table2(s *Suite, cfg Config) (string, error) {
	cfg = cfg.Defaults()
	b, w := newTable("Graph", "K", "Gemini(s)", "SympleG.(s)", "Speedup", "EdgeRatio")
	for _, name := range []string{"tw", "fr"} {
		d := s.ByName(name)
		for _, k := range []int{4, 8, 16, 32, 64} {
			kcfg := cfg
			kcfg.KCoreK = k
			gem, err := RunVariant(VariantGemini, AlgoKCore, d, kcfg)
			if err != nil {
				return "", err
			}
			sym, err := RunVariant(VariantSympleGraph, AlgoKCore, d, kcfg)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(w, "%s\t%d\t%.4f\t%.4f\t%.2f\t%.2f\n", name, k,
				gem.Seconds, sym.Seconds, ratio(gem.Seconds, sym.Seconds),
				ratio(float64(sym.EdgesTraversed), float64(gem.EdgesTraversed)))
		}
	}
	w.Flush()
	return b.String(), nil
}

// Table3 renders the large-graph comparison (paper Table 3: gsh and cl,
// all five algorithms, Gemini vs SympleGraph). The cl stand-in is
// low-skew, reproducing the BFS≈1.0 rows where bottom-up is rarely
// chosen.
func Table3(s *Suite, cfg Config) (string, error) {
	cfg = cfg.Defaults()
	b, w := newTable("Graph", "App", "Gemini(s)", "SympleG.(s)", "Speedup")
	for _, d := range s.Large {
		for _, a := range Algos {
			gem, err := RunVariant(VariantGemini, a, d, cfg)
			if err != nil {
				return "", err
			}
			sym, err := RunVariant(VariantSympleGraph, a, d, cfg)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(w, "%s\t%s\t%.4f\t%.4f\t%.2f\n", d.Name, a, gem.Seconds, sym.Seconds,
				ratio(gem.Seconds, sym.Seconds))
		}
	}
	w.Flush()
	return b.String(), nil
}

// Table4 renders the main result from a measured matrix (paper Table 4):
// execution time per system with SympleGraph speedup over the best
// baseline; the K-core rows carry the sequential Matula–Beck time in
// parentheses.
func Table4(s *Suite, m *Matrix, cfg Config) (string, error) {
	cfg = cfg.Defaults()
	b, w := newTable("App", "Graph", "Gemini(s)", "D-Galois(s)", "SymG.(s)", "Speedup")
	for _, a := range Algos {
		for _, d := range s.Main {
			gem, _ := m.Get(VariantGemini.Name, a, d.Name)
			dg, _ := m.Get("D-Galois", a, d.Name)
			sym, _ := m.Get(VariantSympleGraph.Name, a, d.Name)
			gemCol := fmt.Sprintf("%.4f", gem.Seconds)
			if a == AlgoKCore {
				mb, err := RunSequential(AlgoKCore, d, cfg)
				if err != nil {
					return "", err
				}
				gemCol = fmt.Sprintf("%.4f(%.4f)", gem.Seconds, mb.Seconds)
			}
			dgCol := "N/A"
			best := gem.Seconds
			if dg.Supported {
				dgCol = fmt.Sprintf("%.4f", dg.Seconds)
				if dg.Seconds < best {
					best = dg.Seconds
				}
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.4f\t%.2f\n", a, d.Name, gemCol, dgCol,
				sym.Seconds, ratio(best, sym.Seconds))
		}
	}
	w.Flush()
	return b.String(), nil
}

// Table5 renders edge-traversal counts normalized to the dataset's edge
// total, with the SympleGraph/Gemini ratio (paper Table 5).
func Table5(s *Suite, m *Matrix) string {
	b, w := newTable("App", "Graph", "Gemini", "SympG.", "SympG./Gemini")
	for _, a := range Algos {
		for _, d := range s.Main {
			gem, _ := m.Get(VariantGemini.Name, a, d.Name)
			sym, _ := m.Get(VariantSympleGraph.Name, a, d.Name)
			e := float64(workGraph(d, a).NumEdges())
			fmt.Fprintf(w, "%s\t%s\t%.4f\t%.4f\t%.4f\n", a, d.Name,
				float64(gem.EdgesTraversed)/e, float64(sym.EdgesTraversed)/e,
				ratio(float64(sym.EdgesTraversed), float64(gem.EdgesTraversed)))
		}
	}
	w.Flush()
	return b.String()
}

// Table6 renders SympleGraph's communication breakdown normalized to
// Gemini's update traffic (paper Table 6): update, dependency, and their
// sum. Control traffic (frontier/termination exchanges) is identical in
// both systems by construction and excluded from the normalization, as
// the paper's counts cover signal/slot message volume.
func Table6(s *Suite, m *Matrix) string {
	b, w := newTable("App", "Graph", "SymG.upt", "SymG.dep", "SymG")
	for _, a := range Algos {
		for _, d := range s.Main {
			gem, _ := m.Get(VariantGemini.Name, a, d.Name)
			sym, _ := m.Get(VariantSympleGraph.Name, a, d.Name)
			gemTotal := float64(gem.UpdateBytes)
			upt := float64(sym.UpdateBytes) / gemTotal
			dep := float64(sym.DependencyBytes) / gemTotal
			fmt.Fprintf(w, "%s\t%s\t%.4f\t%.4f\t%.4f\n", a, d.Name, upt, dep, upt+dep)
		}
	}
	w.Flush()
	return b.String()
}

// Table7 renders the best-performing node count for MIS (paper Table 7:
// D-Galois needed 128 Stampede2 nodes where SympleGraph needed 2–4).
func Table7(s *Suite, cfg Config, nodeCounts []int) (string, error) {
	cfg = cfg.Defaults()
	b, w := newTable("Graph", "D-Galois(s)", "SympleGraph(s)")
	for _, d := range s.Main {
		bestDG, bestDGNodes := math.Inf(1), 0
		bestSym, bestSymNodes := math.Inf(1), 0
		for _, nodes := range nodeCounts {
			ncfg := cfg
			ncfg.Nodes = nodes
			dg, err := RunDGalois(AlgoMIS, d, ncfg)
			if err != nil {
				return "", err
			}
			if dg.Seconds < bestDG {
				bestDG, bestDGNodes = dg.Seconds, nodes
			}
			sym, err := RunVariant(VariantSympleGraph, AlgoMIS, d, ncfg)
			if err != nil {
				return "", err
			}
			if sym.Seconds < bestSym {
				bestSym, bestSymNodes = sym.Seconds, nodes
			}
		}
		fmt.Fprintf(w, "%s\t%.4f(%d)\t%.4f(%d)\n", d.Name, bestDG, bestDGNodes, bestSym, bestSymNodes)
	}
	w.Flush()
	return b.String(), nil
}

// Figure10Row is one series point of the scalability figure.
type Figure10Row struct {
	Nodes   int
	Seconds map[string]float64 // system → seconds
}

// Figure10 measures MIS scalability on the s27 stand-in (paper
// Figure 10): runtime per system across cluster sizes, which the caller
// normalizes or plots.
func Figure10(s *Suite, cfg Config, nodeCounts []int) ([]Figure10Row, error) {
	cfg = cfg.Defaults()
	d := s.ByName("s27")
	var rows []Figure10Row
	for _, nodes := range nodeCounts {
		ncfg := cfg
		ncfg.Nodes = nodes
		row := Figure10Row{Nodes: nodes, Seconds: map[string]float64{}}
		for _, v := range []Variant{VariantGemini, VariantSympleGraph} {
			cell, err := RunVariant(v, AlgoMIS, d, ncfg)
			if err != nil {
				return nil, err
			}
			row.Seconds[v.Name] = cell.Seconds
		}
		dg, err := RunDGalois(AlgoMIS, d, ncfg)
		if err != nil {
			return nil, err
		}
		row.Seconds["D-Galois"] = dg.Seconds
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure10 renders the scalability series normalized to
// SympleGraph at the largest node count, as the paper's y-axis is.
func FormatFigure10(rows []Figure10Row) string {
	b, w := newTable("#nodes", "Gemini", "SympleGraph", "D-Galois")
	if len(rows) == 0 {
		w.Flush()
		return b.String()
	}
	base := rows[len(rows)-1].Seconds[VariantSympleGraph.Name]
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.2f\n", r.Nodes,
			r.Seconds[VariantGemini.Name]/base,
			r.Seconds[VariantSympleGraph.Name]/base,
			r.Seconds["D-Galois"]/base)
	}
	w.Flush()
	return b.String()
}

// Figure11Row is one dataset's ablation: normalized geomean runtime of
// each optimization combination over the circulant-only baseline.
type Figure11Row struct {
	Dataset    string
	Normalized map[string]float64 // variant name → geomean runtime / circulant-only
}

// Figure11 measures the optimization ablation (paper Figure 11):
// circulant-only vs +DB vs +DP vs full SympleGraph, geometric mean over
// all five algorithms per dataset.
func Figure11(s *Suite, cfg Config) ([]Figure11Row, error) {
	return Figure11Algos(s, cfg, Algos)
}

// Figure11Algos is Figure11 restricted to a subset of algorithms — used
// for the dependency-bound configuration, where the data-dependency
// algorithm (sampling, whose frames carry 8 bytes per vertex) isolates
// the effect the paper's Figure 11 measures.
func Figure11Algos(s *Suite, cfg Config, algos []Algo) ([]Figure11Row, error) {
	cfg = cfg.Defaults()
	variants := []Variant{VariantCirculant, VariantDB, VariantDP, VariantSympleGraph}
	var rows []Figure11Row
	for _, d := range s.Main {
		times := map[string]float64{}
		for _, v := range variants {
			logSum, count := 0.0, 0
			for _, a := range algos {
				cell, err := RunVariant(v, a, d, cfg)
				if err != nil {
					return nil, err
				}
				if cell.Seconds > 0 {
					logSum += math.Log(cell.Seconds)
					count++
				}
			}
			times[v.Name] = math.Exp(logSum / float64(count))
		}
		row := Figure11Row{Dataset: d.Name, Normalized: map[string]float64{}}
		base := times[VariantCirculant.Name]
		for name, t := range times {
			row.Normalized[name] = t / base
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure11 renders the ablation rows.
func FormatFigure11(rows []Figure11Row) string {
	b, w := newTable("Graph", "Circulant", "+DB", "+DP", "SympleGraph(DB+DP)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\n", r.Dataset,
			r.Normalized[VariantCirculant.Name],
			r.Normalized[VariantDB.Name],
			r.Normalized[VariantDP.Name],
			r.Normalized[VariantSympleGraph.Name])
	}
	w.Flush()
	return b.String()
}

// COST reports the single-thread baseline time against the distributed
// system across node counts (paper §7.4). In this simulated setting the
// "cores" axis is simulated machines; the shape of interest is how small
// the cluster can be while beating one thread.
func COST(s *Suite, cfg Config, nodeCounts []int) (string, error) {
	cfg = cfg.Defaults()
	d := s.ByName("s27")
	b, w := newTable("System", "Nodes", "MIS time(s)")
	seqCell, err := RunSequential(AlgoMIS, d, cfg)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(w, "single-thread (Galois-style greedy)\t1\t%.4f\n", seqCell.Seconds)
	for _, nodes := range nodeCounts {
		ncfg := cfg
		ncfg.Nodes = nodes
		sym, err := RunVariant(VariantSympleGraph, AlgoMIS, d, ncfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(w, "SympleGraph\t%d\t%.4f\n", nodes, sym.Seconds)
	}
	w.Flush()
	return b.String(), nil
}

// ratio returns a/b guarding division by zero.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
