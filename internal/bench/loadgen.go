package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/xrand"
)

// LoadConfig drives the query-service load generator: Clients closed
// loops issuing a deterministic (Seed-derived) mix of algorithm queries
// against a running sgserve for Duration.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8090".
	BaseURL string
	// Graphs are the serving names to spread queries across. Required.
	Graphs []string
	// Clients is the number of concurrent closed-loop clients
	// (default 8).
	Clients int
	// Duration is how long to sustain the load (default 5s).
	Duration time.Duration
	// Seed makes the query mix reproducible (default 1).
	Seed uint64
	// Algos is the query mix (default: a cheap six-algorithm blend).
	Algos []string
	// Spread is how many distinct parameter values each algorithm
	// cycles through — small spreads repeat queries and exercise the
	// cache, large spreads stay cold (default 4).
	Spread int
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
	// MutateMix interleaves this many deterministic (Seed-derived)
	// mutation batches with the query load, spread evenly across
	// Duration (0 = read-only). Each batch asks the server to verify
	// the incremental recompute against scratch, and the run reports
	// epoch lag (how far behind latest the answered queries ran) and
	// the incremental-vs-scratch speedup.
	MutateMix int
	// MutateOps is the ops per mutation batch (default 32).
	MutateOps int
}

// LoadResult tallies a load run.
type LoadResult struct {
	Requests        int64
	Status          map[int]int64 // HTTP status → count
	TransportErrors int64
	CacheHits       int64
	Latency         obs.HistSnapshot

	// Mutation-mix tallies (zero unless MutateMix was set).
	Mutations      int64
	MutationErrors int64
	// EpochLagMean/Max measure, over successful queries, how many
	// epochs behind the newest committed version the answer's pinned
	// epoch was — the staleness cost of letting in-flight queries
	// finish on the version they were admitted at.
	EpochLagMean float64
	EpochLagMax  int64
	// IncMsTotal/ScratchMsTotal sum the server-reported incremental and
	// from-scratch recompute times across verified batches.
	IncMsTotal     float64
	ScratchMsTotal float64
	CachePromoted  int64
	CacheDropped   int64
	// FinalEpochs is each mutated graph's last committed epoch.
	FinalEpochs map[string]uint64
}

// IncSpeedup is the scratch/incremental recompute time ratio (0 when
// either side was not measured).
func (r *LoadResult) IncSpeedup() float64 {
	if r.IncMsTotal <= 0 || r.ScratchMsTotal <= 0 {
		return 0
	}
	return r.ScratchMsTotal / r.IncMsTotal
}

// OK returns the number of 200 responses.
func (r *LoadResult) OK() int64 { return r.Status[http.StatusOK] }

// ServerErrors returns the number of 5xx responses.
func (r *LoadResult) ServerErrors() int64 {
	var n int64
	for code, c := range r.Status {
		if code >= 500 {
			n += c
		}
	}
	return n
}

func (c LoadConfig) defaults() LoadConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Algos) == 0 {
		c.Algos = []string{"bfs", "sssp", "kcore", "mis", "cc", "pagerank"}
	}
	if c.Spread <= 0 {
		c.Spread = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MutateOps <= 0 {
		c.MutateOps = 32
	}
	return c
}

// queryURL builds the i-th query of client id: a deterministic pick of
// graph, algorithm and parameters, so two runs with the same seed issue
// the identical mix. The chosen graph is returned alongside, so the
// caller can attribute the response's epoch to a version chain.
func (c LoadConfig) queryURL(id, i int) (string, string) {
	draw := func(salt uint64, n int) int {
		return xrand.Intn(n, c.Seed, salt, uint64(id), uint64(i))
	}
	g := c.Graphs[draw(0x9a1, len(c.Graphs))]
	algo := c.Algos[draw(0xb52, len(c.Algos))]
	u := fmt.Sprintf("%s/query?graph=%s&algo=%s", c.BaseURL, g, algo)
	switch algo {
	case "kcore":
		u += "&k=" + strconv.Itoa(2+draw(0xc3, c.Spread))
	case "mis", "sampling", "kmeans":
		u += "&seed=" + strconv.Itoa(1+draw(0xd4, c.Spread))
	case "pagerank":
		u += "&iters=" + strconv.Itoa(5+5*draw(0xe5, c.Spread))
	}
	return u, g
}

// mutationBatch builds the i-th deterministic mutation batch for graph
// g: a seeded blend of edge additions and removals over the vertex
// range, so two runs with the same seed commit identical histories.
func (c LoadConfig) mutationBatch(g string, vertices, i int) []map[string]any {
	if vertices < 2 {
		vertices = 2
	}
	ops := make([]map[string]any, 0, c.MutateOps)
	for j := 0; j < c.MutateOps; j++ {
		draw := func(salt uint64, n int) int {
			return xrand.Intn(n, c.Seed, salt, uint64(i), uint64(j))
		}
		op := "add_edge"
		if draw(0xf7, 3) == 0 { // 1/3 removals
			op = "remove_edge"
		}
		ops = append(ops, map[string]any{
			"op":  op,
			"src": draw(0x11a, vertices),
			"dst": draw(0x22b, vertices),
		})
	}
	return ops
}

// graphSizes asks /statusz for the vertex count of each served graph,
// so mutation endpoints stay in range.
func graphSizes(client *http.Client, baseURL string) (map[string]int, error) {
	resp, err := client.Get(baseURL + "/statusz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc struct {
		Graphs map[string]struct {
			Vertices int `json:"vertices"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	sizes := make(map[string]int, len(doc.Graphs))
	for name, g := range doc.Graphs {
		sizes[name] = g.Vertices
	}
	return sizes, nil
}

// epochBoard tracks the newest committed epoch per graph, shared
// between the mutator (writes) and query clients (lag reads).
type epochBoard struct {
	mu sync.Mutex
	m  map[string]uint64
}

func (b *epochBoard) bump(g string, e uint64) {
	b.mu.Lock()
	if e > b.m[g] {
		b.m[g] = e
	}
	b.mu.Unlock()
}

func (b *epochBoard) get(g string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.m[g]
}

func (b *epochBoard) snapshot() map[string]uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]uint64, len(b.m))
	for g, e := range b.m {
		out[g] = e
	}
	return out
}

// RunLoad sustains the configured load and tallies outcomes. A non-2xx
// status is not an error — rejections (429) and drains (503) are
// expected behaviors under load — but transport failures (connection
// refused, mid-body cut) are counted separately: a draining server must
// finish answering accepted requests, never cut them off.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.defaults()
	if cfg.BaseURL == "" || len(cfg.Graphs) == 0 {
		return nil, fmt.Errorf("bench: load needs a base URL and at least one graph")
	}
	client := &http.Client{Timeout: cfg.Timeout}
	deadline := time.Now().Add(cfg.Duration)

	var (
		mu      sync.Mutex
		status  = make(map[int]int64)
		reqs    atomic.Int64
		terrs   atomic.Int64
		hits    atomic.Int64
		latency obs.Histogram
		wg      sync.WaitGroup

		board    = &epochBoard{m: make(map[string]uint64)}
		muts     atomic.Int64
		mutErrs  atomic.Int64
		lagSum   atomic.Int64
		lagCount atomic.Int64
		lagMax   atomic.Int64
		incMs    atomic.Int64 // microseconds, for atomic accumulation
		scrMs    atomic.Int64
		promoted atomic.Int64
		dropped  atomic.Int64
	)

	if cfg.MutateMix > 0 {
		sizes, err := graphSizes(client, cfg.BaseURL)
		if err != nil {
			return nil, fmt.Errorf("bench: mutate-mix needs /statusz graph sizes: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			interval := cfg.Duration / time.Duration(cfg.MutateMix+1)
			for i := 0; i < cfg.MutateMix && time.Now().Before(deadline); i++ {
				time.Sleep(interval)
				g := cfg.Graphs[xrand.Intn(len(cfg.Graphs), cfg.Seed, 0x3c9, uint64(i))]
				body, _ := json.Marshal(map[string]any{
					"graph":     g,
					"mutations": cfg.mutationBatch(g, sizes[g], i),
					"verify":    true,
				})
				resp, err := client.Post(cfg.BaseURL+"/mutate", "application/json", strings.NewReader(string(body)))
				if err != nil {
					mutErrs.Add(1)
					continue
				}
				rbody, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					mutErrs.Add(1)
					continue
				}
				var doc struct {
					Epoch         uint64  `json:"epoch"`
					IncMs         float64 `json:"inc_ms"`
					ScratchMs     float64 `json:"scratch_ms"`
					CachePromoted int64   `json:"cache_promoted"`
					CacheDropped  int64   `json:"cache_dropped"`
				}
				if json.Unmarshal(rbody, &doc) != nil {
					mutErrs.Add(1)
					continue
				}
				muts.Add(1)
				board.bump(g, doc.Epoch)
				incMs.Add(int64(doc.IncMs * 1000))
				scrMs.Add(int64(doc.ScratchMs * 1000))
				promoted.Add(doc.CachePromoted)
				dropped.Add(doc.CacheDropped)
			}
		}()
	}

	for id := 0; id < cfg.Clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				start := time.Now()
				u, g := cfg.queryURL(id, i)
				resp, err := client.Get(u)
				if err != nil {
					terrs.Add(1)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				reqs.Add(1)
				latency.Observe(time.Since(start))
				if rerr != nil {
					terrs.Add(1)
					continue
				}
				mu.Lock()
				status[resp.StatusCode]++
				mu.Unlock()
				if resp.StatusCode == http.StatusOK {
					var doc struct {
						Cached bool   `json:"cached"`
						Epoch  uint64 `json:"epoch"`
					}
					if json.Unmarshal(body, &doc) == nil {
						if doc.Cached {
							hits.Add(1)
						}
						if latest := board.get(g); latest > doc.Epoch && doc.Epoch > 0 {
							lag := int64(latest - doc.Epoch)
							lagSum.Add(lag)
							for {
								cur := lagMax.Load()
								if lag <= cur || lagMax.CompareAndSwap(cur, lag) {
									break
								}
							}
						}
						if doc.Epoch > 0 {
							lagCount.Add(1)
						}
					}
				}
			}
		}(id)
	}
	wg.Wait()

	res := &LoadResult{
		Requests:        reqs.Load(),
		Status:          status,
		TransportErrors: terrs.Load(),
		CacheHits:       hits.Load(),
		Latency:         latency.Snapshot(),
		Mutations:       muts.Load(),
		MutationErrors:  mutErrs.Load(),
		EpochLagMax:     lagMax.Load(),
		IncMsTotal:      float64(incMs.Load()) / 1000,
		ScratchMsTotal:  float64(scrMs.Load()) / 1000,
		CachePromoted:   promoted.Load(),
		CacheDropped:    dropped.Load(),
		FinalEpochs:     board.snapshot(),
	}
	if n := lagCount.Load(); n > 0 {
		res.EpochLagMean = float64(lagSum.Load()) / float64(n)
	}
	return res, nil
}

// Print writes a one-screen load report.
func (r *LoadResult) Print(w io.Writer) {
	fmt.Fprintf(w, "load: requests=%d transport-errors=%d cache-hits=%d\n",
		r.Requests, r.TransportErrors, r.CacheHits)
	for code, n := range r.Status {
		fmt.Fprintf(w, "  status %d: %d\n", code, n)
	}
	fmt.Fprintf(w, "  latency: p50=%v p95=%v p99=%v max=%v\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Max)
	if r.Mutations > 0 || r.MutationErrors > 0 {
		fmt.Fprintf(w, "mutate-mix: batches=%d errors=%d epoch-lag mean=%.3f max=%d cache promoted=%d dropped=%d\n",
			r.Mutations, r.MutationErrors, r.EpochLagMean, r.EpochLagMax, r.CachePromoted, r.CacheDropped)
		if sp := r.IncSpeedup(); sp > 0 {
			fmt.Fprintf(w, "  incremental recompute: %.1fms vs %.1fms scratch (%.1fx speedup)\n",
				r.IncMsTotal, r.ScratchMsTotal, sp)
		}
		for g, e := range r.FinalEpochs {
			fmt.Fprintf(w, "  final epoch: %s@%d\n", g, e)
		}
	}
}
