package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/xrand"
)

// LoadConfig drives the query-service load generator: Clients closed
// loops issuing a deterministic (Seed-derived) mix of algorithm queries
// against a running sgserve for Duration.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8090".
	BaseURL string
	// Graphs are the serving names to spread queries across. Required.
	Graphs []string
	// Clients is the number of concurrent closed-loop clients
	// (default 8).
	Clients int
	// Duration is how long to sustain the load (default 5s).
	Duration time.Duration
	// Seed makes the query mix reproducible (default 1).
	Seed uint64
	// Algos is the query mix (default: a cheap six-algorithm blend).
	Algos []string
	// Spread is how many distinct parameter values each algorithm
	// cycles through — small spreads repeat queries and exercise the
	// cache, large spreads stay cold (default 4).
	Spread int
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
}

// LoadResult tallies a load run.
type LoadResult struct {
	Requests        int64
	Status          map[int]int64 // HTTP status → count
	TransportErrors int64
	CacheHits       int64
	Latency         obs.HistSnapshot
}

// OK returns the number of 200 responses.
func (r *LoadResult) OK() int64 { return r.Status[http.StatusOK] }

// ServerErrors returns the number of 5xx responses.
func (r *LoadResult) ServerErrors() int64 {
	var n int64
	for code, c := range r.Status {
		if code >= 500 {
			n += c
		}
	}
	return n
}

func (c LoadConfig) defaults() LoadConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Algos) == 0 {
		c.Algos = []string{"bfs", "sssp", "kcore", "mis", "cc", "pagerank"}
	}
	if c.Spread <= 0 {
		c.Spread = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// queryURL builds the i-th query of client id: a deterministic pick of
// graph, algorithm and parameters, so two runs with the same seed issue
// the identical mix.
func (c LoadConfig) queryURL(id, i int) string {
	draw := func(salt uint64, n int) int {
		return xrand.Intn(n, c.Seed, salt, uint64(id), uint64(i))
	}
	g := c.Graphs[draw(0x9a1, len(c.Graphs))]
	algo := c.Algos[draw(0xb52, len(c.Algos))]
	u := fmt.Sprintf("%s/query?graph=%s&algo=%s", c.BaseURL, g, algo)
	switch algo {
	case "kcore":
		u += "&k=" + strconv.Itoa(2+draw(0xc3, c.Spread))
	case "mis", "sampling", "kmeans":
		u += "&seed=" + strconv.Itoa(1+draw(0xd4, c.Spread))
	case "pagerank":
		u += "&iters=" + strconv.Itoa(5+5*draw(0xe5, c.Spread))
	}
	return u
}

// RunLoad sustains the configured load and tallies outcomes. A non-2xx
// status is not an error — rejections (429) and drains (503) are
// expected behaviors under load — but transport failures (connection
// refused, mid-body cut) are counted separately: a draining server must
// finish answering accepted requests, never cut them off.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.defaults()
	if cfg.BaseURL == "" || len(cfg.Graphs) == 0 {
		return nil, fmt.Errorf("bench: load needs a base URL and at least one graph")
	}
	client := &http.Client{Timeout: cfg.Timeout}
	deadline := time.Now().Add(cfg.Duration)

	var (
		mu      sync.Mutex
		status  = make(map[int]int64)
		reqs    atomic.Int64
		terrs   atomic.Int64
		hits    atomic.Int64
		latency obs.Histogram
		wg      sync.WaitGroup
	)
	for id := 0; id < cfg.Clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				start := time.Now()
				resp, err := client.Get(cfg.queryURL(id, i))
				if err != nil {
					terrs.Add(1)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				reqs.Add(1)
				latency.Observe(time.Since(start))
				if rerr != nil {
					terrs.Add(1)
					continue
				}
				mu.Lock()
				status[resp.StatusCode]++
				mu.Unlock()
				if resp.StatusCode == http.StatusOK {
					var doc struct {
						Cached bool `json:"cached"`
					}
					if json.Unmarshal(body, &doc) == nil && doc.Cached {
						hits.Add(1)
					}
				}
			}
		}(id)
	}
	wg.Wait()
	return &LoadResult{
		Requests:        reqs.Load(),
		Status:          status,
		TransportErrors: terrs.Load(),
		CacheHits:       hits.Load(),
		Latency:         latency.Snapshot(),
	}, nil
}

// Print writes a one-screen load report.
func (r *LoadResult) Print(w io.Writer) {
	fmt.Fprintf(w, "load: requests=%d transport-errors=%d cache-hits=%d\n",
		r.Requests, r.TransportErrors, r.CacheHits)
	for code, n := range r.Status {
		fmt.Fprintf(w, "  status %d: %d\n", code, n)
	}
	fmt.Fprintf(w, "  latency: p50=%v p95=%v p99=%v max=%v\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Max)
}
