package bench

import (
	"strings"
	"testing"
)

// testSuite returns a small suite so harness tests stay fast.
func testSuite() *Suite { return NewSuite(8) }

func testConfig() Config {
	return Config{Nodes: 4, BFSRoots: 2, KCoreK: 4, KMeansIters: 2, SampleRounds: 2, Seed: 7}
}

func TestSuiteDatasets(t *testing.T) {
	s := testSuite()
	if len(s.Main) != 5 || len(s.Large) != 2 {
		t.Fatalf("suite has %d main, %d large", len(s.Main), len(s.Large))
	}
	names := map[string]bool{}
	for _, d := range s.All() {
		if names[d.Name] {
			t.Fatalf("duplicate dataset %s", d.Name)
		}
		names[d.Name] = true
		g := d.Graph()
		if g.NumEdges() == 0 {
			t.Fatalf("%s is empty", d.Name)
		}
		if g != d.Graph() {
			t.Fatalf("%s rebuilt on second access", d.Name)
		}
	}
	if s.ByName("tw") == nil || s.ByName("nope") != nil {
		t.Fatal("ByName wrong")
	}
	// The cl stand-in must be low-skew relative to the R-MAT graphs.
	cl := s.ByName("cl").Graph()
	tw := s.ByName("tw").Graph()
	if cl.HighDegreeFraction(32) > tw.HighDegreeFraction(32) {
		t.Fatalf("cl skew %.3f >= tw skew %.3f", cl.HighDegreeFraction(32), tw.HighDegreeFraction(32))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Nodes == 0 || c.BFSRoots == 0 || c.KCoreK == 0 || c.KMeansIters == 0 || c.SampleRounds == 0 || c.Seed == 0 {
		t.Fatalf("defaults incomplete: %+v", c)
	}
	c2 := Config{Nodes: 3}.Defaults()
	if c2.Nodes != 3 {
		t.Fatal("explicit value overridden")
	}
}

func TestRunVariantAllAlgos(t *testing.T) {
	s := testSuite()
	d := s.ByName("s27")
	for _, a := range Algos {
		m, err := RunVariant(VariantSympleGraph, a, d, testConfig())
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if !m.Supported || m.EdgesTraversed == 0 {
			t.Fatalf("%s: %+v", a, m)
		}
		if m.System != "SympleGraph" || m.Algo != a || m.Dataset != "s27" {
			t.Fatalf("%s: labels %+v", a, m)
		}
	}
}

func TestRunDGalois(t *testing.T) {
	s := testSuite()
	d := s.ByName("s27")
	m, err := RunDGalois(AlgoMIS, d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Supported || m.UpdateBytes == 0 {
		t.Fatalf("%+v", m)
	}
	samp, err := RunDGalois(AlgoSampling, d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if samp.Supported {
		t.Fatal("D-Galois sampling should be unsupported")
	}
}

func TestRunSequential(t *testing.T) {
	s := testSuite()
	d := s.ByName("tw")
	for _, a := range Algos {
		m, err := RunSequential(a, d, testConfig())
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if !m.Supported {
			t.Fatalf("%s unsupported", a)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1(testSuite())
	for _, name := range []string{"tw", "fr", "s27", "s28", "s29", "gsh", "cl"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 1 missing %s:\n%s", name, out)
		}
	}
}

// TestMatrixAndMainTables runs a reduced matrix and checks the shape
// claims the paper's tables make: SympleGraph traverses fewer edges than
// Gemini, dependency traffic only exists for SympleGraph, and rendering
// includes all cells.
func TestMatrixAndMainTables(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in short mode")
	}
	s := testSuite()
	cfg := testConfig()
	m, err := RunMatrix(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 5 datasets × 5 algos × 3 systems.
	if len(m.Cells) != 75 {
		t.Fatalf("%d cells, want 75", len(m.Cells))
	}
	for _, a := range []Algo{AlgoBFS, AlgoKCore, AlgoMIS, AlgoKMeans} {
		for _, d := range s.Main {
			gem, ok1 := m.Get("Gemini", a, d.Name)
			sym, ok2 := m.Get("SympleGraph", a, d.Name)
			if !ok1 || !ok2 {
				t.Fatalf("missing cells for %s/%s", a, d.Name)
			}
			if sym.EdgesTraversed > gem.EdgesTraversed {
				t.Errorf("%s/%s: SympleGraph traversed %d > Gemini %d", a, d.Name,
					sym.EdgesTraversed, gem.EdgesTraversed)
			}
			if gem.DependencyBytes != 0 || sym.DependencyBytes == 0 {
				t.Errorf("%s/%s: dep bytes gem=%d sym=%d", a, d.Name,
					gem.DependencyBytes, sym.DependencyBytes)
			}
		}
	}
	t4, err := Table4(s, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t4, "Speedup") || !strings.Contains(t4, "N/A") {
		t.Fatalf("Table 4:\n%s", t4)
	}
	t5 := Table5(s, m)
	if !strings.Contains(t5, "SympG./Gemini") {
		t.Fatalf("Table 5:\n%s", t5)
	}
	t6 := Table6(s, m)
	if !strings.Contains(t6, "SymG.dep") {
		t.Fatalf("Table 6:\n%s", t6)
	}
}

func TestFigure10SeriesComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	rows, err := Figure10(testSuite(), testConfig(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		for _, sys := range []string{"Gemini", "SympleGraph", "D-Galois"} {
			if r.Seconds[sys] <= 0 {
				t.Fatalf("node %d system %s: %g", r.Nodes, sys, r.Seconds[sys])
			}
		}
	}
	out := FormatFigure10(rows)
	if !strings.Contains(out, "#nodes") {
		t.Fatal(out)
	}
	if FormatFigure10(nil) == "" {
		t.Fatal("empty series render failed")
	}
}

func TestFigure11AblationComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in short mode")
	}
	s := NewSuite(7)
	cfg := testConfig()
	rows, err := Figure11(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Main) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Normalized[VariantCirculant.Name] != 1.0 {
			t.Fatalf("baseline not normalized: %+v", r)
		}
		for name, v := range r.Normalized {
			if v <= 0 {
				t.Fatalf("%s/%s: %g", r.Dataset, name, v)
			}
		}
	}
	if out := FormatFigure11(rows); !strings.Contains(out, "Circulant") {
		t.Fatal(out)
	}
}

func TestCOSTRenders(t *testing.T) {
	out, err := COST(testSuite(), testConfig(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "single-thread") || !strings.Contains(out, "SympleGraph") {
		t.Fatal(out)
	}
}

func TestTable2And3Render(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps in short mode")
	}
	s := testSuite()
	cfg := testConfig()
	t2, err := Table2(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t2, "Speedup") || strings.Count(t2, "\n") < 10 {
		t.Fatalf("Table 2:\n%s", t2)
	}
	t3, err := Table3(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t3, "gsh") || !strings.Contains(t3, "cl") {
		t.Fatalf("Table 3:\n%s", t3)
	}
}

func TestTable7Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	s := NewSuite(7)
	out, err := Table7(s, testConfig(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "D-Galois") {
		t.Fatal(out)
	}
}
