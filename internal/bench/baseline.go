package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/algorithms"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// The committed perf baseline (BENCH_<n>.json). Each harness run sweeps
// all eight algorithms across both engine modes and two cluster sizes on
// a fixed deterministic workload, recording per-cell engine seconds,
// bytes moved, allocations per superstep and messages per superstep.
// Successive BENCH files form the repo's performance trajectory;
// bench-check compares the working tree against the newest committed
// file and fails on regressions.

// BaselineAlgos lists the eight benchmarked algorithms in report order.
var BaselineAlgos = []string{
	"bfs", "sssp", "kcore", "mis", "kmeans", "sampling", "pagerank", "cc",
}

// BaselineCell is one (algorithm, mode, nodes) measurement.
type BaselineCell struct {
	Algo  string `json:"algo"`
	Mode  string `json:"mode"`
	Nodes int    `json:"nodes"`

	// EngineSeconds is engine wall time (RunStats.Elapsed) summed over
	// the cell's runs.
	EngineSeconds float64 `json:"engine_seconds"`
	// BytesMoved is all sent traffic (update + dependency + control).
	BytesMoved int64 `json:"bytes_moved"`
	// Supersteps counts edge-processing passes summed over machines.
	Supersteps int64 `json:"supersteps"`
	// Messages counts update + dependency messages sent.
	Messages int64 `json:"messages"`
	// AllocsPerOp is the heap-allocation count (runtime Mallocs delta
	// across the cell) divided by Supersteps — the data-plane cost the
	// zero-copy path attacks.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// MessagesPerSuperstep is Messages / Supersteps.
	MessagesPerSuperstep float64 `json:"messages_per_superstep"`
	// FramesPerSuperstep is the wire-frame count per superstep. The
	// data plane sends one frame per Send/SendBufs call, so this equals
	// MessagesPerSuperstep; it is recorded under its own name because
	// frame batching is what the binned scan optimizes.
	FramesPerSuperstep float64 `json:"frames_per_superstep"`
	// BytesPerFrame is BytesMoved / Messages — how much payload each
	// frame carries. Binning should push this up as frame counts drop.
	BytesPerFrame float64 `json:"bytes_per_frame"`
	// DenseStepSeconds is the summed PhaseDenseStep span time across
	// nodes, measured on one extra traced run (not the timed repeats,
	// so EngineSeconds stays comparable to untraced baselines).
	DenseStepSeconds float64 `json:"dense_step_seconds"`
}

// Key identifies the cell within a report.
func (c BaselineCell) Key() string {
	return fmt.Sprintf("%s/%s/n%d", c.Algo, c.Mode, c.Nodes)
}

// BaselineReport is the schema of a BENCH_<n>.json artifact.
type BaselineReport struct {
	Schema int    `json:"schema"`
	Scale  int    `json:"scale"`
	Seed   uint64 `json:"seed"`
	// LegacyDataPlane records which core assembly path produced the
	// numbers (true = pre-zero-copy copying path).
	LegacyDataPlane bool `json:"legacy_data_plane"`
	// LegacyScan records which edge-scan path produced the numbers
	// (true = pre-binning per-buffer-group framing).
	LegacyScan bool           `json:"legacy_scan"`
	Cells      []BaselineCell `json:"cells"`
}

// BaselineConfig are the harness knobs. The zero value selects the
// committed-artifact defaults; every field is deterministic.
type BaselineConfig struct {
	// Scale is the R-MAT scale of the workload graph.
	Scale int
	// Seed drives graph generation and every algorithm draw.
	Seed uint64
	// NodeCounts are the simulated cluster sizes swept.
	NodeCounts []int
	// Repeats re-runs each cell and keeps the fastest run (work,
	// traffic and allocation counts are deterministic across repeats;
	// only wall time is noisy).
	Repeats int
	// LegacyDataPlane selects the pre-zero-copy core assembly path.
	LegacyDataPlane bool
	// LegacyScan selects the pre-binning edge-scan loops.
	LegacyScan bool
}

func (c BaselineConfig) defaults() BaselineConfig {
	if c.Scale == 0 {
		c.Scale = 13
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.NodeCounts) == 0 {
		c.NodeCounts = []int{2, 4}
	}
	if c.Repeats == 0 {
		c.Repeats = 5
	}
	return c
}

// baselineModes are the engine modes swept, with their standard knobs.
var baselineModes = []Variant{VariantSympleGraph, VariantGemini}

// RunBaseline runs the full sweep and returns the report. The workload
// is a fixed R-MAT graph (symmetrized for the undirected algorithms,
// weighted for SSSP) on the in-memory transport with instant links, so
// engine seconds measure compute and copying rather than simulated
// wire delay.
func RunBaseline(cfg BaselineConfig) (*BaselineReport, error) {
	cfg = cfg.defaults()
	p := graph.Graph500Params()
	base := graph.RMAT(cfg.Scale, 16, p, int64(cfg.Seed))
	sym := graph.Symmetrize(base)
	weighted := graph.RandomWeights(sym, int64(cfg.Seed)+1)

	rep := &BaselineReport{
		Schema:          1,
		Scale:           cfg.Scale,
		Seed:            cfg.Seed,
		LegacyDataPlane: cfg.LegacyDataPlane,
		LegacyScan:      cfg.LegacyScan,
	}
	for _, v := range baselineModes {
		for _, nodes := range cfg.NodeCounts {
			for _, algo := range BaselineAlgos {
				var best BaselineCell
				for r := 0; r < cfg.Repeats; r++ {
					cell, err := runBaselineCell(algo, v, nodes, cfg, base, sym, weighted, nil)
					if err != nil {
						return nil, fmt.Errorf("bench: baseline %s: %w", cell.Key(), err)
					}
					if r == 0 || cell.EngineSeconds < best.EngineSeconds {
						best = cell
					}
				}
				// One extra traced run for the phase-time column; the
				// tracer's span overhead stays out of the timed repeats.
				tr := obs.NewTracer()
				traced, err := runBaselineCell(algo, v, nodes, cfg, base, sym, weighted, tr)
				if err != nil {
					return nil, fmt.Errorf("bench: baseline %s (traced): %w", traced.Key(), err)
				}
				best.DenseStepSeconds = traced.DenseStepSeconds
				rep.Cells = append(rep.Cells, best)
			}
		}
	}
	return rep, nil
}

func runBaselineCell(algo string, v Variant, nodes int, cfg BaselineConfig,
	base, sym, weighted *graph.Graph, tr *obs.Tracer) (BaselineCell, error) {
	cell := BaselineCell{Algo: algo, Mode: v.Mode.String(), Nodes: nodes}
	g := base
	switch algo {
	case "sssp":
		g = weighted
	case "kcore", "mis", "kmeans", "cc":
		g = sym
	}
	c, err := core.NewCluster(g, core.Options{
		NumNodes:        nodes,
		Mode:            v.Mode,
		DepThreshold:    v.DepThreshold,
		NumBuffers:      v.NumBuffers,
		Link:            &comm.LinkModel{}, // instant: measure compute, not simulated wire
		LegacyDataPlane: cfg.LegacyDataPlane,
		LegacyScan:      cfg.LegacyScan,
		Tracer:          tr,
	})
	if err != nil {
		return cell, err
	}
	defer c.Close()

	run := func() error {
		switch algo {
		case "bfs":
			for _, root := range bfsRoots(g, cfg.Seed, 4) {
				if _, err := algorithms.BFS(c, root); err != nil {
					return err
				}
			}
			return nil
		case "sssp":
			roots := bfsRoots(g, cfg.Seed, 4)
			for _, root := range roots {
				if _, err := algorithms.SSSP(c, root); err != nil {
					return err
				}
			}
			return nil
		case "kcore":
			_, err := algorithms.KCore(c, 8)
			return err
		case "mis":
			_, err := algorithms.MIS(c, cfg.Seed)
			return err
		case "kmeans":
			_, err := algorithms.KMeans(c, 16, 3, cfg.Seed)
			return err
		case "sampling":
			_, err := algorithms.Sample(c, cfg.Seed, 4)
			return err
		case "pagerank":
			_, err := algorithms.PageRank(c, 5, 0.85)
			return err
		case "cc":
			_, err := algorithms.ConnectedComponents(c)
			return err
		default:
			return fmt.Errorf("unknown algorithm %q", algo)
		}
	}

	// Mallocs is cumulative across the process; the delta over the cell
	// (after a settling GC) is the engine's allocation bill for the run.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := run(); err != nil {
		return cell, err
	}
	runtime.ReadMemStats(&after)
	allocs := int64(after.Mallocs - before.Mallocs)

	s := c.Stats().Totals
	cell.EngineSeconds = s.Elapsed.Seconds()
	cell.BytesMoved = s.TotalBytes()
	cell.Supersteps = s.Supersteps
	cell.Messages = s.UpdateMessages + s.DependencyMessages
	if s.Supersteps > 0 {
		cell.AllocsPerOp = float64(allocs) / float64(s.Supersteps)
		cell.MessagesPerSuperstep = float64(cell.Messages) / float64(s.Supersteps)
		cell.FramesPerSuperstep = cell.MessagesPerSuperstep
	}
	if cell.Messages > 0 {
		cell.BytesPerFrame = float64(cell.BytesMoved) / float64(cell.Messages)
	}
	if tr != nil {
		var dense time.Duration
		for _, ps := range c.Stats().Phases {
			if ps.Phase == obs.PhaseDenseStep {
				dense += ps.Hist.Sum
			}
		}
		cell.DenseStepSeconds = dense.Seconds()
	}
	return cell, nil
}

// WriteJSON writes the report, stable-sorted by cell key.
func (r *BaselineReport) WriteJSON(w io.Writer) error {
	sort.SliceStable(r.Cells, func(i, j int) bool { return r.Cells[i].Key() < r.Cells[j].Key() })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBaseline parses a BENCH_<n>.json artifact.
func ReadBaseline(rd io.Reader) (*BaselineReport, error) {
	var r BaselineReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parse baseline: %w", err)
	}
	return &r, nil
}

// minCheckSeconds is the timing-noise floor: cells where both sides run
// faster than this are not compared on engine seconds (sub-50ms cells
// swing far more than 10% run to run on a loaded machine).
const minCheckSeconds = 0.05

// CompareBaselines reports regressions of next against prev: cells whose
// engine seconds (above the noise floor) or allocs/op worsened by more
// than tolerance (e.g. 0.10 = 10%). Cells present on only one side are
// ignored — adding or retiring an algorithm is not a regression.
func CompareBaselines(prev, next *BaselineReport, tolerance float64) []string {
	old := map[string]BaselineCell{}
	for _, c := range prev.Cells {
		old[c.Key()] = c
	}
	var regressions []string
	for _, c := range next.Cells {
		p, ok := old[c.Key()]
		if !ok {
			continue
		}
		if p.EngineSeconds > minCheckSeconds || c.EngineSeconds > minCheckSeconds {
			if worsened(p.EngineSeconds, c.EngineSeconds, tolerance) {
				regressions = append(regressions,
					fmt.Sprintf("%s: engine seconds %.4f -> %.4f (+%.1f%%)",
						c.Key(), p.EngineSeconds, c.EngineSeconds, pctWorse(p.EngineSeconds, c.EngineSeconds)))
			}
		}
		if worsened(p.AllocsPerOp, c.AllocsPerOp, tolerance) {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %.1f -> %.1f (+%.1f%%)",
					c.Key(), p.AllocsPerOp, c.AllocsPerOp, pctWorse(p.AllocsPerOp, c.AllocsPerOp)))
		}
	}
	sort.Strings(regressions)
	return regressions
}

func worsened(prev, next, tolerance float64) bool {
	return prev > 0 && next > prev*(1+tolerance)
}

func pctWorse(prev, next float64) float64 {
	if prev <= 0 {
		return 0
	}
	return (next/prev - 1) * 100
}
