package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// postMutate fires one mutation batch and decodes the response.
func postMutate(t *testing.T, url string, req MutateRequest) (int, MutateResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/mutate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var mr MutateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &mr); err != nil {
			t.Fatalf("bad mutate response: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, mr, string(raw)
}

func addEdge(src, dst int) MutationJSON {
	return MutationJSON{Op: "add_edge", Src: uint32(src), Dst: uint32(dst)}
}

// chainGraph is a tiny hand-built graph whose reachability is obvious:
// 0→1→2 plus 3→4, vertex 0 carrying the largest out-degree (0→1, 0→2)
// so it is the default BFS root.
func chainGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(10, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMutateEndpoint walks the /mutate lifecycle: a verified commit
// advances the epoch, queries pin to any retained epoch (and reject
// unretained ones), and /statusz reports the version chain.
func TestMutateEndpoint(t *testing.T) {
	s := testServer(t, Config{Graphs: map[string]*graph.Graph{"g": chainGraph(t)}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Input validation: unknown graph, unknown op, method.
	if code, _, _ := postMutate(t, ts.URL, MutateRequest{Graph: "nosuch"}); code != http.StatusBadRequest {
		t.Fatalf("unknown graph: %d", code)
	}
	if code, _, body := postMutate(t, ts.URL, MutateRequest{
		Graph: "g", Mutations: []MutationJSON{{Op: "merge_vertex"}},
	}); code != http.StatusBadRequest {
		t.Fatalf("unknown op: %d %s", code, body)
	}
	if resp, err := http.Get(ts.URL + "/mutate"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /mutate: %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// A verified commit: epoch 1 → 2, scratch recompute bit-identical.
	code, mr, body := postMutate(t, ts.URL, MutateRequest{
		Graph:     "g",
		Mutations: []MutationJSON{addEdge(2, 3), {Op: "add_vertex"}},
		Verify:    true,
	})
	if code != http.StatusOK {
		t.Fatalf("mutate: %d %s", code, body)
	}
	if mr.Epoch != 2 || mr.ParentEpoch != 1 || !mr.Verified || mr.Applied != 2 {
		t.Fatalf("mutate response %+v", mr)
	}
	if mr.Vertices != 11 || mr.Edges != 5 {
		t.Fatalf("post-commit shape: %d vertices %d edges", mr.Vertices, mr.Edges)
	}

	// Queries pin: default = latest, epoch=1 = the pre-mutation graph,
	// a never-committed epoch is a client error.
	code, latest, body := getResponse(t, ts.URL+"/query?graph=g&algo=bfs&root=0&no_cache=1")
	if code != http.StatusOK || latest.Epoch != 2 {
		t.Fatalf("latest query: %d epoch=%d %s", code, latest.Epoch, body)
	}
	if latest.Result.Reached != 5 { // 0→{1,2}, new 2→3, 3→4
		t.Fatalf("epoch-2 bfs reached %d, want 5", latest.Result.Reached)
	}
	code, pinned, body := getResponse(t, ts.URL+"/query?graph=g&algo=bfs&root=0&epoch=1&no_cache=1")
	if code != http.StatusOK || pinned.Epoch != 1 {
		t.Fatalf("pinned query: %d epoch=%d %s", code, pinned.Epoch, body)
	}
	if pinned.Result.Reached != 3 { // 0→{1,2} only
		t.Fatalf("epoch-1 bfs reached %d, want 3", pinned.Result.Reached)
	}
	if code, _, _ := getResponse(t, ts.URL+"/query?graph=g&algo=bfs&epoch=9"); code != http.StatusBadRequest {
		t.Fatalf("future epoch: %d", code)
	}

	// /statusz surfaces the chain and the commit counters.
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	es, ok := st.Epochs["g"]
	if !ok {
		t.Fatalf("statusz has no epochs section: %+v", st)
	}
	if es.Epoch != 2 || es.Commits != 1 || es.OpsApplied != 2 || es.Verifies != 1 || es.VerifyFails != 0 {
		t.Fatalf("epoch status %+v", es)
	}
	if st.Mutations.Applied != 1 || st.Mutations.Errors == 0 {
		t.Fatalf("mutation counters %+v", st.Mutations)
	}
}

// TestCacheAdvanceAcrossEpochs pins the delta-keyed invalidation: a
// cached BFS whose read-set is disjoint from the mutated region is
// promoted to the new epoch (still served without recompute), while an
// intersecting one is dropped.
func TestCacheAdvanceAcrossEpochs(t *testing.T) {
	s := testServer(t, Config{Graphs: map[string]*graph.Graph{"g": chainGraph(t)}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Populate the cache: bfs from 0 reads {0,1,2}.
	code, first, body := getResponse(t, ts.URL+"/query?graph=g&algo=bfs&root=0")
	if code != http.StatusOK || first.Cached {
		t.Fatalf("first bfs: %d cached=%v %s", code, first.Cached, body)
	}

	// Mutate far from the read-set: {8,9} ∩ {0,1,2} = ∅ → promotion.
	code, mr, body := postMutate(t, ts.URL, MutateRequest{
		Graph: "g", Mutations: []MutationJSON{addEdge(8, 9)},
	})
	if code != http.StatusOK {
		t.Fatalf("mutate: %d %s", code, body)
	}
	if mr.CachePromoted != 1 || mr.CacheDropped != 0 {
		t.Fatalf("disjoint mutation: promoted=%d dropped=%d", mr.CachePromoted, mr.CacheDropped)
	}
	code, again, body := getResponse(t, ts.URL+"/query?graph=g&algo=bfs&root=0")
	if code != http.StatusOK || !again.Cached || again.Epoch != 2 {
		t.Fatalf("promoted entry not served: %d cached=%v epoch=%d %s", code, again.Cached, again.Epoch, body)
	}
	if again.Result.Reached != first.Result.Reached {
		t.Fatalf("promoted answer changed: %d vs %d", again.Result.Reached, first.Result.Reached)
	}

	// Mutate inside the read-set: {2,5} ∩ {0,1,2} ≠ ∅ → drop, and the
	// recomputed answer reflects the new edge.
	code, mr, body = postMutate(t, ts.URL, MutateRequest{
		Graph: "g", Mutations: []MutationJSON{addEdge(2, 5)},
	})
	if code != http.StatusOK {
		t.Fatalf("mutate: %d %s", code, body)
	}
	if mr.CacheDropped != 1 {
		t.Fatalf("intersecting mutation: promoted=%d dropped=%d", mr.CachePromoted, mr.CacheDropped)
	}
	code, third, body := getResponse(t, ts.URL+"/query?graph=g&algo=bfs&root=0")
	if code != http.StatusOK || third.Cached {
		t.Fatalf("dropped entry still served: %d cached=%v %s", code, third.Cached, body)
	}
	if third.Result.Reached != first.Result.Reached+1 {
		t.Fatalf("recomputed reach %d, want %d", third.Result.Reached, first.Result.Reached+1)
	}
}

// TestQueryPinnedEpochSurvivesCommit is the acceptance criterion for
// admission pinning: a query admitted at epoch N answers from epoch N's
// graph even when N+1 commits mid-flight — verified by replaying every
// concurrent answer against its pinned epoch after the dust settles.
func TestQueryPinnedEpochSurvivesCommit(t *testing.T) {
	s := testServer(t, Config{Graphs: map[string]*graph.Graph{"g": chainGraph(t)}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const rounds = 8
	answers := make([]Response, rounds)
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, r, body := getResponse(t, ts.URL+"/query?graph=g&algo=bfs&root=0&no_cache=1")
			if code != http.StatusOK {
				t.Errorf("round %d: %d %s", i, code, body)
				return
			}
			answers[i] = r
		}(i)
		// Each round racing one commit that extends the BFS tree.
		code, _, body := postMutate(t, ts.URL, MutateRequest{
			Graph: "g", Mutations: []MutationJSON{addEdge(2, 5+(i%5))},
		})
		if code != http.StatusOK {
			t.Fatalf("round %d mutate: %d %s", i, code, body)
		}
	}
	wg.Wait()

	for i, r := range answers {
		if r.Epoch == 0 {
			continue // query errored; already reported
		}
		code, replay, body := getResponse(t,
			fmt.Sprintf("%s/query?graph=g&algo=bfs&root=0&epoch=%d&no_cache=1", ts.URL, r.Epoch))
		if code != http.StatusBadRequest && code != http.StatusOK {
			t.Fatalf("round %d replay: %d %s", i, code, body)
		}
		if code == http.StatusBadRequest {
			continue // epoch aged out of the retention window
		}
		if !reflect.DeepEqual(replay.Result, r.Result) {
			t.Fatalf("round %d: answer at epoch %d not reproducible: %+v vs %+v",
				i, r.Epoch, r.Result, replay.Result)
		}
	}
}

// TestMutateChaos is the torn-snapshot chaos gate: mutation batches
// commit while a worker is killed and later rejoins, and every epoch a
// worker serves must be exactly the front-end's version — remote
// answers bit-identical to local at every step, new epochs reaching
// surviving workers as verified deltas, never a torn blob.
func TestMutateChaos(t *testing.T) {
	daemons, addrs := startWorkers(t, 2)
	cfg := Config{Graphs: map[string]*graph.Graph{"g": testGraph(7, 3)}, Workers: addrs}
	fastFleet(&cfg)
	s := testServer(t, cfg)
	t.Cleanup(s.pool.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	waitFleet(t, s, "all healthy", func(fs FleetStatus) bool { return fs.Healthy == 2 })

	compare := func(stage, algo string) Response {
		t.Helper()
		code, remote, body := getResponse(t, ts.URL+"/query?graph=g&algo="+algo+"&no_cache=1&provider=remote")
		if code != http.StatusOK {
			t.Fatalf("%s remote %s: %d %s", stage, algo, code, body)
		}
		code, local, body := getResponse(t, ts.URL+"/query?graph=g&algo="+algo+"&no_cache=1&provider=local")
		if code != http.StatusOK {
			t.Fatalf("%s local %s: %d %s", stage, algo, code, body)
		}
		if remote.Epoch != local.Epoch {
			t.Fatalf("%s %s: epochs diverged remote=%d local=%d", stage, algo, remote.Epoch, local.Epoch)
		}
		if !reflect.DeepEqual(remote.Result, local.Result) {
			t.Fatalf("%s %s: remote %+v local %+v", stage, algo, remote.Result, local.Result)
		}
		return remote
	}

	mutate := func(stage string, ops ...MutationJSON) MutateResponse {
		t.Helper()
		code, mr, body := postMutate(t, ts.URL, MutateRequest{Graph: "g", Mutations: ops, Verify: true})
		if code != http.StatusOK {
			t.Fatalf("%s mutate: %d %s", stage, code, body)
		}
		if !mr.Verified {
			t.Fatalf("%s commit not verified: %+v", stage, mr)
		}
		return mr
	}

	// Epoch 1 baseline: both workers hold the directed and undirected
	// variants after serving bfs and kcore.
	compare("baseline", "bfs")
	compare("baseline", "kcore")

	// Commit epoch 2, then kill worker 1 inside the mutation window —
	// before any epoch-2 slot was built on it.
	mutate("epoch2", addEdge(1, 100), addEdge(100, 101), MutationJSON{Op: "remove_edge", Src: 0, Dst: 1})
	daemons[1].Close()

	// The survivor serves epoch 2; the front-end ships it the canonical
	// delta (it holds the epoch-1 parent), not a fresh blob.
	r := compare("post-kill", "bfs")
	if r.Epoch != 2 {
		t.Fatalf("post-kill epoch %d, want 2", r.Epoch)
	}
	compare("post-kill", "kcore")
	if daemons[0].DeltasApplied() == 0 {
		t.Fatal("survivor materialized epoch 2 without a delta frame")
	}

	// Restart the victim on its port; the roster walks it back through
	// rejoining, preloading the current ships.
	d2, err := StartWorkerDaemon(WorkerConfig{Addr: addrs[1], Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d2.Close() })
	waitFleet(t, s, "victim healthy again", func(fs FleetStatus) bool {
		return stateOf(fs, addrs[1]) == StateHealthy
	})

	// Epoch 3 commits after the rejoin; full-width serving must agree
	// with local on both variants, and the version chain stays clean.
	mutate("epoch3", addEdge(2, 102), addEdge(102, 0))
	deadline := time.Now().Add(15 * time.Second)
	for {
		r = compare("post-rejoin", "bfs")
		if r.Epoch != 3 {
			t.Fatalf("post-rejoin epoch %d, want 3", r.Epoch)
		}
		compare("post-rejoin", "kcore")
		if !r.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ring never returned to full width")
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	es := st.Epochs["g"]
	if es.Epoch != 3 || es.Commits != 2 || es.VerifyFails != 0 {
		t.Fatalf("chaos epoch status %+v", es)
	}
}

// TestMutateBinnedScanIdentity drives the real POST /mutate route on
// two servers that differ only in the engine's scan path (binned vs
// legacy), then compares answers on the parent epoch and on the
// post-commit epoch for a mix of dense- and sparse-heavy algorithms.
// Every epoch advance rebuilds engines from the new snapshot, so this
// proves the partition-blocked CSR is re-derived correctly (not carried
// stale) across mutations reaching the engine through the serving
// layer.
func TestMutateBinnedScanIdentity(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(8, 8, graph.Graph500Params(), 17))
	servers := map[string]*httptest.Server{}
	for name, legacy := range map[string]bool{"binned": false, "legacy": true} {
		s := testServer(t, Config{
			Graphs: map[string]*graph.Graph{"g": g},
			Engine: core.Options{NumNodes: 4, Mode: core.ModeSympleGraph, DepThreshold: 8, NumBuffers: 2, LegacyScan: legacy},
		})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		servers[name] = ts
	}

	batch := MutateRequest{
		Graph: "g",
		Mutations: []MutationJSON{
			addEdge(1, 200), addEdge(200, 1),
			{Op: "remove_edge", Src: uint32(g.OutNeighbors(3)[0]), Dst: 3},
		},
		Verify: true,
	}
	epochs := map[string]uint64{}
	for name, ts := range servers {
		code, mr, body := postMutate(t, ts.URL, batch)
		if code != http.StatusOK || !mr.Verified {
			t.Fatalf("%s mutate: %d %s", name, code, body)
		}
		epochs[name] = mr.Epoch
	}
	if epochs["binned"] != epochs["legacy"] {
		t.Fatalf("epoch skew: %v", epochs)
	}

	queries := []string{
		"algo=bfs&root=1", "algo=cc", "algo=kcore&k=4", "algo=sssp&root=1", "algo=pagerank&iters=4",
	}
	for _, q := range queries {
		for _, pin := range []string{"", fmt.Sprintf("&epoch=%d", epochs["binned"]-1)} {
			url := "/query?graph=g&no_cache=1&" + q + pin
			code, binned, body := getResponse(t, servers["binned"].URL+url)
			if code != http.StatusOK {
				t.Fatalf("binned %s: %d %s", url, code, body)
			}
			code, legacy, body := getResponse(t, servers["legacy"].URL+url)
			if code != http.StatusOK {
				t.Fatalf("legacy %s: %d %s", url, code, body)
			}
			if !reflect.DeepEqual(binned.Result, legacy.Result) || binned.Epoch != legacy.Epoch {
				t.Fatalf("%s: binned %+v (epoch %d) != legacy %+v (epoch %d)",
					url, binned.Result, binned.Epoch, legacy.Result, legacy.Epoch)
			}
		}
	}
}
