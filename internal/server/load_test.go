package server

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
)

// TestSustainedLoad is the serving acceptance test: 64 concurrent
// clients against a two-graph server for 5 seconds must sustain zero
// 5xx responses, a non-zero cache hit-rate, populated queue-wait and
// engine-time histograms, and a clean drain that answers every
// in-flight request.
func TestSustainedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained load test skipped in -short mode")
	}
	s := testServer(t, Config{
		Graphs: map[string]*graph.Graph{
			"web":    testGraph(8, 1),
			"social": testGraph(8, 2),
		},
		Engine:      core.Options{NumNodes: 2, Mode: core.ModeSympleGraph},
		MaxInflight: 4,
		MaxQueue:    64,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := bench.RunLoad(bench.LoadConfig{
		BaseURL:   ts.URL,
		Graphs:    []string{"web", "social"},
		Clients:   64,
		Duration:  5 * time.Second,
		Seed:      2026,
		Spread:    3,
		MutateMix: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load: %d requests, status=%v, hits=%d, transport errors=%d, mutations=%d (errors=%d), epochs=%v",
		res.Requests, res.Status, res.CacheHits, res.TransportErrors,
		res.Mutations, res.MutationErrors, res.FinalEpochs)

	if res.Requests == 0 || res.OK() == 0 {
		t.Fatalf("no successful requests: %+v", res)
	}
	if res.TransportErrors > 0 {
		t.Fatalf("%d transport errors under load", res.TransportErrors)
	}
	if n := res.ServerErrors(); n > 0 {
		t.Fatalf("%d 5xx responses under load: %v", n, res.Status)
	}

	// The mutate mix must actually commit, every batch verified
	// bit-identical to the from-scratch recompute, and the version bump
	// must be visible to clients.
	if res.Mutations == 0 || res.MutationErrors > 0 {
		t.Fatalf("mutate mix: %d committed, %d errors", res.Mutations, res.MutationErrors)
	}
	for _, g := range []string{"web", "social"} {
		if res.FinalEpochs[g] < 2 {
			t.Fatalf("graph %s never advanced past epoch %d", g, res.FinalEpochs[g])
		}
	}

	st := s.StatusSnapshot()
	if st.Cache.HitRate <= 0 {
		t.Fatalf("cache hit-rate %.3f, want > 0 (hits=%d misses=%d)",
			st.Cache.HitRate, st.Cache.Hits, st.Cache.Misses)
	}
	var engineSpans, queueSpans int64
	for name, as := range st.Algos {
		engineSpans += as.Engine.Count
		queueSpans += as.Queue.Count
		if as.Engine.Count > 0 && (as.Engine.P50Ms <= 0 || as.Engine.P99Ms < as.Engine.P50Ms) {
			t.Fatalf("%s engine histogram not populated: %+v", name, as.Engine)
		}
	}
	if engineSpans == 0 || queueSpans == 0 {
		t.Fatalf("histograms empty: engine=%d queue=%d", engineSpans, queueSpans)
	}

	// Drain under residual pressure: every accepted request answered.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after load: %v", err)
	}
}
