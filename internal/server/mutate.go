package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/graph"
	"repro/internal/mutate"
)

// MutationJSON is one mutation op on the wire.
type MutationJSON struct {
	Op     string  `json:"op"` // add_edge | remove_edge | add_vertex | remove_vertex
	Src    uint32  `json:"src"`
	Dst    uint32  `json:"dst"`
	Weight float32 `json:"weight,omitempty"`
}

// MutateRequest is one POST /mutate body: an ordered batch applied
// atomically to the named graph's latest epoch.
type MutateRequest struct {
	Graph     string         `json:"graph"`
	Mutations []MutationJSON `json:"mutations"`
	// Verify forces a from-scratch recompute of the incremental
	// trackers and asserts bit-identical results (500 on divergence —
	// which is a server bug, never a data error).
	Verify bool `json:"verify"`
}

// MutateResponse reports one committed batch.
type MutateResponse struct {
	Graph       string `json:"graph"`
	Epoch       uint64 `json:"epoch"`
	ParentEpoch uint64 `json:"parent_epoch"`
	Fingerprint string `json:"fingerprint"`
	Applied     int    `json:"applied"`
	Vertices    int    `json:"vertices"`
	Edges       int64  `json:"edges"`
	// Incremental recompute effort: vertices whose k-core membership /
	// BFS label changed, and the time the incremental path took vs the
	// from-scratch verification (when requested).
	CoreChanged  int     `json:"core_changed"`
	BFSRelabeled int     `json:"bfs_relabeled"`
	IncMs        float64 `json:"inc_ms"`
	ScratchMs    float64 `json:"scratch_ms,omitempty"`
	Verified     bool    `json:"verified,omitempty"`
	// Cache consequences of the commit.
	CachePromoted int `json:"cache_promoted"`
	CacheDropped  int `json:"cache_dropped"`
	// PoolRetired counts idle old-epoch engines reclaimed.
	PoolRetired int `json:"pool_retired"`
}

// batchFromJSON validates op names and assembles the canonical batch.
func batchFromJSON(ops []MutationJSON) (mutate.Batch, error) {
	var b mutate.Batch
	for i, m := range ops {
		op, ok := mutate.OpFromString(m.Op)
		if !ok {
			return b, fmt.Errorf("mutation %d: unknown op %q", i, m.Op)
		}
		b.Ops = append(b.Ops, mutate.Mutation{
			Op:     op,
			Src:    graph.VertexID(m.Src),
			Dst:    graph.VertexID(m.Dst),
			Weight: m.Weight,
		})
	}
	return b, nil
}

// handleMutate commits one mutation batch: validate → apply on the
// version chain (new immutable snapshot, chained fingerprint) →
// advance the incremental trackers → promote/drop cache entries by
// read-set intersection → retire idle old-epoch pool slots. In-flight
// queries are untouched: they hold epoch-pinned slots and finish on
// the version they started on.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.wg.Add(1)
	s.drainMu.RUnlock()
	defer s.wg.Done()

	var req MutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.mutateErr.Add(1)
		http.Error(w, fmt.Sprintf("bad JSON body: %v", err), http.StatusBadRequest)
		return
	}
	ge, ok := s.pool.Entry(req.Graph)
	if !ok {
		s.mutateErr.Add(1)
		http.Error(w, fmt.Sprintf("unknown graph %q (serving %v)", req.Graph, s.pool.GraphNames()), http.StatusBadRequest)
		return
	}
	batch, err := batchFromJSON(req.Mutations)
	if err != nil {
		s.mutateErr.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	res, err := ge.commit(batch, req.Verify)
	if err != nil {
		s.mutateErr.Add(1)
		if res.snap != nil {
			// The commit landed but verification failed: a server bug.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	s.mutations.Add(1)

	// The batch region is conservative for every variant: symmetrizing
	// adds no endpoints, and the full-region override for synthesized
	// weights happened at Put time.
	promoted, dropped := s.cache.Advance(req.Graph, res.snap.Epoch(), batch.Region())
	retired := s.pool.RetireEpochs(req.Graph)

	info := res.state.Info()
	writeJSON(w, http.StatusOK, MutateResponse{
		Graph:         req.Graph,
		Epoch:         res.snap.Epoch(),
		ParentEpoch:   res.snap.Epoch() - 1,
		Fingerprint:   res.snap.Fingerprint(),
		Applied:       len(batch.Ops),
		Vertices:      info.vertices,
		Edges:         info.edges,
		CoreChanged:   res.coreChanged,
		BFSRelabeled:  res.bfsRelabeled,
		IncMs:         durMs(res.incDur),
		ScratchMs:     durMs(res.scratchDur),
		Verified:      res.verified,
		CachePromoted: promoted,
		CacheDropped:  dropped,
		PoolRetired:   retired,
	})
}
