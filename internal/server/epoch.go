// Graph versioning: this file is the snapshot accessor — the only
// place in the serving layer allowed to reach into a graph entry's raw
// graphs. Everything else resolves an epoch through Resolve/Latest and
// works on the immutable epochState it gets back (the epochpin
// analyzer enforces this).
package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mutate"
)

// graphEntry is one served graph's version chain: the snapshot store,
// the per-epoch derived state (variants, fingerprints, ship deltas),
// and the incremental trackers the mutation path keeps warm.
type graphEntry struct {
	name  string
	store *mutate.Store

	// commitMu serializes mutation commits for this graph; queries
	// never take it.
	commitMu sync.Mutex

	mu     sync.Mutex
	states map[uint64]*epochState

	// Incremental recompute trackers, advanced under commitMu on every
	// commit. The k-core tracker follows the undirected variant at the
	// serving default k; the BFS tracker follows the base graph from
	// the root epoch's default root.
	core    *mutate.CoreTracker
	coreK   int
	bfs     *mutate.BFSTracker
	bfsRoot graph.VertexID

	incNanos     atomic.Int64
	scratchNanos atomic.Int64
	verifies     atomic.Int64
	verifyFails  atomic.Int64
}

// epochState is everything derived from one immutable snapshot:
// canonicalization defaults, lazily built serving variants, their
// fingerprints, and the per-variant ship payloads (blob or delta).
type epochState struct {
	snap *mutate.Snapshot
	info graphInfo

	mu       sync.Mutex
	variants map[graphVariant]*graph.Graph
	blobs    map[graphVariant]*variantBlob  // memoized full serializations
	deltas   map[graphVariant]*variantDelta // memoized deltas vs parent epoch
	parent   *epochState                    // nil when the parent epoch aged out
}

type variantBlob struct {
	once sync.Once
	data []byte
	sha  string
	err  error
}

// variantDelta is the canonical delta from the parent epoch's variant
// graph to this epoch's, for delta shipping. nil bytes mean "no delta
// path" (parent unavailable or the delta would not beat a full ship).
type variantDelta struct {
	bytes   []byte
	chained bool // FP == ChainFingerprint(parent FP, bytes), verifiable by the receiver
}

func newGraphEntry(name string, g *graph.Graph, retention int) (*graphEntry, error) {
	store, err := mutate.NewStore(g, retention)
	if err != nil {
		return nil, fmt.Errorf("server: versioning %s: %w", name, err)
	}
	e := &graphEntry{name: name, store: store, states: make(map[uint64]*epochState)}
	root, _ := graph.LargestOutDegreeVertex(g)
	e.bfsRoot = root
	e.coreK = 8 // the kcore serving default; canonicalize uses the same fallback
	e.stateFor(store.Latest())
	return e, nil
}

// stateFor returns the cached epochState for a resolved snapshot,
// creating and linking it to its parent (when retained) on first use.
func (e *graphEntry) stateFor(snap *mutate.Snapshot) *epochState {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st, ok := e.states[snap.Epoch()]; ok {
		return st
	}
	g := snap.Graph()
	root, _ := graph.LargestOutDegreeVertex(g)
	st := &epochState{
		snap: snap,
		info: graphInfo{
			vertices:    g.NumVertices(),
			edges:       g.NumEdges(),
			defaultRoot: int(root),
			weighted:    g.Weighted(),
			epoch:       snap.Epoch(),
		},
		variants: map[graphVariant]*graph.Graph{variantDirected: g},
		blobs:    make(map[graphVariant]*variantBlob),
		deltas:   make(map[graphVariant]*variantDelta),
		parent:   e.states[snap.Epoch()-1],
	}
	e.states[snap.Epoch()] = st
	// Prune states the store no longer resolves, and cut parent links
	// that would pin pruned graphs.
	lo, _ := e.store.Window()
	for ep, old := range e.states {
		if ep < lo {
			delete(e.states, ep)
		} else if old.parent != nil && old.parent.snap.Epoch() < lo {
			old.parent = nil
		}
	}
	return st
}

// Resolve maps a requested epoch (0 = latest) to its epochState. A
// pruned or future epoch returns the store's window error.
func (e *graphEntry) Resolve(epoch uint64) (*epochState, error) {
	snap, err := e.store.At(epoch)
	if err != nil {
		return nil, err
	}
	return e.stateFor(snap), nil
}

// Latest returns the newest epoch's state.
func (e *graphEntry) Latest() *epochState {
	return e.stateFor(e.store.Latest())
}

// Epoch returns the snapshot's version number.
func (st *epochState) Epoch() uint64 { return st.snap.Epoch() }

// Info returns the canonicalization defaults for this epoch.
func (st *epochState) Info() graphInfo { return st.info }

// Fingerprint returns the base chained fingerprint of this epoch.
func (st *epochState) Fingerprint() string { return st.snap.Fingerprint() }

// Graph materializes (once) and returns the serving variant of this
// epoch's snapshot.
func (st *epochState) Graph(v graphVariant) *graph.Graph {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.graphLocked(v)
}

func (st *epochState) graphLocked(v graphVariant) *graph.Graph {
	if g, ok := st.variants[v]; ok {
		return g
	}
	base := st.variants[variantDirected]
	g := base
	switch v {
	case variantUndirected:
		g = graph.Symmetrize(base)
	case variantWeighted:
		if !base.Weighted() {
			g = graph.RandomWeights(base, 7)
		}
	}
	st.variants[v] = g
	return g
}

// VariantFP names a variant of this epoch: the base chain fingerprint
// for the directed variant, a derived fingerprint for the rest — O(1)
// either way, never re-hashing adjacency.
func (st *epochState) VariantFP(v graphVariant) string {
	if v == variantDirected {
		return st.snap.Fingerprint()
	}
	return mutate.DeriveFingerprint(st.snap.Fingerprint(), v.String())
}

// blob memoizes the full serialization of one variant for full-graph
// shipping. The directed variant reuses the snapshot's own memoized
// blob.
func (st *epochState) blob(v graphVariant) ([]byte, string, error) {
	if v == variantDirected {
		return st.snap.Blob()
	}
	st.mu.Lock()
	b, ok := st.blobs[v]
	if !ok {
		b = &variantBlob{}
		st.blobs[v] = b
	}
	g := st.graphLocked(v)
	st.mu.Unlock()
	b.once.Do(func() {
		b.data, b.sha, b.err = mutate.SerializeGraph(g)
	})
	return b.data, b.sha, b.err
}

// shipDelta returns the canonical delta (and the parent variant's
// fingerprint) that turns the parent epoch's variant into this one,
// for workers that already hold the parent. Returns ok=false when the
// parent epoch aged out or a delta would not beat the full blob —
// notably the synthesized-weights variant of an unweighted base, whose
// weights are positional and churn wholesale on any topology change.
func (st *epochState) shipDelta(v graphVariant) (bytes []byte, parentFP string, chained bool, ok bool) {
	st.mu.Lock()
	parent := st.parent
	d, have := st.deltas[v]
	st.mu.Unlock()
	if parent == nil {
		return nil, "", false, false
	}
	if !have {
		d = st.computeDelta(v, parent)
		st.mu.Lock()
		st.deltas[v] = d
		st.mu.Unlock()
	}
	if d.bytes == nil {
		return nil, "", false, false
	}
	return d.bytes, parent.VariantFP(v), d.chained, true
}

func (st *epochState) computeDelta(v graphVariant, parent *epochState) *variantDelta {
	if v == variantDirected {
		// The committed batch is exactly the delta the base chain
		// fingerprint hashed, so the receiver can verify
		// ChainFingerprint(parentFP, bytes) == FP.
		b := st.snap.Delta()
		if len(b.Ops) == 0 {
			return &variantDelta{}
		}
		return &variantDelta{bytes: b.Encode(), chained: true}
	}
	diff, err := mutate.Diff(parent.Graph(v), st.Graph(v))
	if err != nil || len(diff.Ops) > mutate.MaxBatchOps {
		return &variantDelta{}
	}
	// A delta near the graph's own edge count ships more bytes than
	// the blob (13 B/op vs ~8 B/edge serialized); fall back to full.
	if int64(len(diff.Ops)) > st.info.edges/2 {
		return &variantDelta{}
	}
	return &variantDelta{bytes: diff.Encode(), chained: false}
}

// buildSpec assembles the provider handoff for one (epoch, variant)
// slot build: the materialized graph, its fingerprint identity, the
// lazily serialized blob, and the delta ship path when available.
func (st *epochState) buildSpec(name string, v graphVariant, mode core.Mode, slotID int) BuildSpec {
	spec := BuildSpec{
		GraphName: name,
		Variant:   v,
		Graph:     st.Graph(v),
		Mode:      mode,
		SlotID:    slotID,
		Epoch:     st.Epoch(),
		FP:        st.VariantFP(v),
		Blob:      func() ([]byte, string, error) { return st.blob(v) },
	}
	if bytes, parentFP, chained, ok := st.shipDelta(v); ok {
		spec.ParentFP = parentFP
		spec.DeltaBytes = bytes
		spec.DeltaChained = chained
	}
	return spec
}

// commitResult reports one applied mutation batch.
type commitResult struct {
	snap         *mutate.Snapshot
	state        *epochState
	coreChanged  int
	bfsRelabeled int
	incDur       time.Duration
	scratchDur   time.Duration
	verified     bool
}

// commit validates and applies one batch, advances the incremental
// trackers against the canonical diff, and (when verify is set)
// asserts the trackers are bit-identical to a from-scratch recompute
// on the new epoch. Caller-visible invariant: the store, the state
// map, and the trackers move together — the commit mutex makes the
// epoch bump atomic with respect to other commits, and queries pinned
// to older epochs keep resolving their snapshots untouched.
func (e *graphEntry) commit(b mutate.Batch, verify bool) (commitResult, error) {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()

	parent := e.Latest()
	if err := b.Validate(parent.Graph(variantDirected)); err != nil {
		return commitResult{}, err
	}

	// Initialize trackers lazily on the first commit, against the
	// parent (pre-mutation) epoch, so their first Update exercises the
	// incremental path.
	if e.core == nil {
		e.core = mutate.NewCoreTracker(parent.Graph(variantUndirected), e.coreK)
	}
	if e.bfs == nil {
		e.bfs = mutate.NewBFSTracker(parent.Graph(variantDirected), e.bfsRoot)
	}

	snap, err := e.store.Commit(b)
	if err != nil {
		return commitResult{}, err
	}
	st := e.stateFor(snap)

	res := commitResult{snap: snap, state: st}
	incStart := time.Now()
	baseDiff, err := mutate.Diff(parent.Graph(variantDirected), st.Graph(variantDirected))
	if err == nil {
		res.bfsRelabeled = e.bfs.Update(st.Graph(variantDirected), baseDiff)
	}
	undirDiff, err := mutate.Diff(parent.Graph(variantUndirected), st.Graph(variantUndirected))
	if err == nil {
		res.coreChanged = e.core.Update(st.Graph(variantUndirected), undirDiff)
	}
	res.incDur = time.Since(incStart)
	e.incNanos.Add(res.incDur.Nanoseconds())

	if verify {
		scratchStart := time.Now()
		_, coreOK := e.core.VerifyScratch(st.Graph(variantUndirected))
		_, bfsOK := e.bfs.VerifyScratch(st.Graph(variantDirected))
		res.scratchDur = time.Since(scratchStart)
		e.scratchNanos.Add(res.scratchDur.Nanoseconds())
		e.verifies.Add(1)
		res.verified = true
		if !coreOK || !bfsOK {
			e.verifyFails.Add(1)
			// Re-anchor the diverged tracker from scratch so later
			// commits are not poisoned, then surface the bug loudly.
			e.core = mutate.NewCoreTracker(st.Graph(variantUndirected), e.coreK)
			e.bfs = mutate.NewBFSTracker(st.Graph(variantDirected), e.bfsRoot)
			return res, fmt.Errorf("server: incremental recompute diverged from scratch at epoch %d (core_ok=%v bfs_ok=%v)",
				snap.Epoch(), coreOK, bfsOK)
		}
	}
	return res, nil
}

// EpochStatus is one graph's versioning state for /statusz.
type EpochStatus struct {
	Epoch       uint64  `json:"epoch"`
	Fingerprint string  `json:"fingerprint"`
	WindowLo    uint64  `json:"window_lo"`
	WindowHi    uint64  `json:"window_hi"`
	Commits     uint64  `json:"commits"`
	OpsApplied  uint64  `json:"ops_applied"`
	Evictions   uint64  `json:"evictions"`
	IncMs       float64 `json:"inc_ms_total"`
	ScratchMs   float64 `json:"scratch_ms_total"`
	Verifies    int64   `json:"verifies"`
	VerifyFails int64   `json:"verify_fails"`
}

// epochStatus snapshots the entry's versioning counters.
func (e *graphEntry) epochStatus() EpochStatus {
	lo, hi := e.store.Window()
	commits, ops, evictions := e.store.Stats()
	return EpochStatus{
		Epoch:       hi,
		Fingerprint: e.store.Latest().Fingerprint(),
		WindowLo:    lo,
		WindowHi:    hi,
		Commits:     commits,
		OpsApplied:  ops,
		Evictions:   evictions,
		IncMs:       float64(e.incNanos.Load()) / 1e6,
		ScratchMs:   float64(e.scratchNanos.Load()) / 1e6,
		Verifies:    e.verifies.Load(),
		VerifyFails: e.verifyFails.Load(),
	}
}
