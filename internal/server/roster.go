package server

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/obs"
)

// The roster manager replaces the static worker host list with a live
// view of the fleet. One probe loop per configured worker sends a
// control-protocol ping on a fresh connection and keeps a small state
// machine per worker:
//
//	healthy ──probe fails──▶ suspect ──DeadAfter consecutive──▶ dead
//	   ▲                        │ probe succeeds                  │
//	   └────────────────────────┘            probe succeeds       │
//	   ▲                                                          ▼
//	   └──────── rejoin hook succeeds ◀──────────────────── rejoining
//
// Healthy and suspect workers are probed on a fixed interval with full
// jitter; dead workers are probed on an exponential backoff capped at
// BackoffCap, so a crashed fleet does not get hammered while a
// restarted worker is still noticed within a few seconds. A worker
// coming back from dead passes through rejoining: the rejoin hook
// (graph preloading, in the remote provider) runs before the worker is
// offered to new slot builds, so re-admission never stalls a build on a
// cold graph transfer.

// WorkerState is the typed health state of one fleet member. Compare
// states with the constants below — never by formatting to a string —
// so the compiler (and the sgvet fleetstate check) can catch typos.
type WorkerState int32

const (
	// StateHealthy workers answer probes and are offered to slot builds.
	StateHealthy WorkerState = iota
	// StateSuspect workers missed at least one probe; they are excluded
	// from new builds but not yet declared gone.
	StateSuspect
	// StateDead workers missed DeadAfter consecutive probes; probing
	// drops to a capped backoff until they answer again.
	StateDead
	// StateRejoining workers answered a probe after being dead; the
	// rejoin hook is re-shipping state before they serve builds again.
	StateRejoining
)

func (s WorkerState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateRejoining:
		return "rejoining"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the state as its name, so /statusz and chaos
// tests read "healthy" rather than an opaque integer.
func (s WorkerState) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the marshalled name, so Status round-trips
// through JSON (statusz scrapers, test clients).
func (s *WorkerState) UnmarshalJSON(data []byte) error {
	name := strings.Trim(string(data), `"`)
	for _, st := range []WorkerState{StateHealthy, StateSuspect, StateDead, StateRejoining} {
		//sgvet:ignore fleetstate this IS the name→enum decoding table, the inverse of String()
		if st.String() == name {
			*s = st
			return nil
		}
	}
	return fmt.Errorf("unknown worker state %q", name)
}

// pongMsg is a worker's answer to a control-plane ping: its current
// load and cache state, which the roster folds into scheduling
// decisions (capacity-aware slot placement, rejoin detection).
type pongMsg struct {
	SlotsActive  int `json:"slots_active"`
	MaxSlots     int `json:"max_slots"` // 0 = unlimited
	GraphsCached int `json:"graphs_cached"`
}

// RosterConfig configures fleet health probing.
type RosterConfig struct {
	// Workers lists the sgworker control addresses to track.
	Workers []string
	// ProbeInterval paces probes to healthy/suspect workers
	// (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one dial+ping round trip (default 1s).
	ProbeTimeout time.Duration
	// DeadAfter is how many consecutive probe failures turn a worker
	// dead (default 3). The first failure already makes it suspect.
	DeadAfter int
	// BackoffCap bounds the probe backoff for dead workers (default 5s).
	BackoffCap time.Duration
	// OnRejoin runs when a dead worker answers again, before it is
	// offered to builds; a non-nil error keeps the worker dead until a
	// later probe retries the hook.
	OnRejoin func(addr string) error
	// Logf receives one line per state transition when non-nil.
	Logf func(format string, args ...any)
	// Registry receives server.fleet.* metrics when non-nil.
	Registry *obs.Registry
}

// workerHealth is the mutable per-worker record; guarded by roster.mu.
type workerHealth struct {
	addr     string
	state    WorkerState
	fails    int // consecutive probe failures
	deadFor  uint64
	lastRTT  time.Duration
	lastSeen time.Time
	pong     pongMsg
}

// FleetWorker is one worker's row in a fleet snapshot.
type FleetWorker struct {
	Addr         string      `json:"addr"`
	State        WorkerState `json:"state"`
	Fails        int         `json:"consecutive_fails,omitempty"`
	LastRTTMs    float64     `json:"last_rtt_ms"`
	SlotsActive  int         `json:"slots_active"`
	MaxSlots     int         `json:"max_slots"`
	GraphsCached int         `json:"graphs_cached"`
}

// FleetStatus is the roster's snapshot for /statusz and tests.
type FleetStatus struct {
	Workers  []FleetWorker `json:"workers"`
	Healthy  int           `json:"healthy"`
	Total    int           `json:"total"`
	Degraded bool          `json:"degraded"`
}

// rosterManager runs the probe loops and answers scheduling queries.
type rosterManager struct {
	cfg     RosterConfig
	mu      sync.Mutex
	workers map[string]*workerHealth
	order   []string
	stop    chan struct{}
	wg      sync.WaitGroup

	probes        atomic.Int64
	probeFailures atomic.Int64
	rejoins       atomic.Int64
	transitions   atomic.Int64
	rtt           obs.Histogram
}

// newRosterManager starts one probe loop per worker. Every worker
// begins healthy — the fleet was just configured, and an immediate
// first probe corrects optimism within one interval.
func newRosterManager(cfg RosterConfig) *rosterManager {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	r := &rosterManager{
		cfg:     cfg,
		workers: make(map[string]*workerHealth, len(cfg.Workers)),
		order:   append([]string(nil), cfg.Workers...),
		stop:    make(chan struct{}),
	}
	for _, addr := range cfg.Workers {
		r.workers[addr] = &workerHealth{addr: addr, state: StateHealthy}
	}
	if cfg.Registry != nil {
		cfg.Registry.RegisterInt("server.fleet.probes", r.probes.Load)
		cfg.Registry.RegisterInt("server.fleet.probe_failures", r.probeFailures.Load)
		cfg.Registry.RegisterInt("server.fleet.rejoins", r.rejoins.Load)
		cfg.Registry.RegisterInt("server.fleet.transitions", r.transitions.Load)
		cfg.Registry.RegisterInt("server.fleet.healthy_workers", func() int64 {
			return int64(len(r.Usable()))
		})
		cfg.Registry.RegisterHistogram("server.fleet.probe_rtt", &r.rtt)
	}
	for _, addr := range cfg.Workers {
		r.wg.Add(1)
		go r.probeLoop(addr)
	}
	return r
}

// Close stops the probe loops and waits for them.
func (r *rosterManager) Close() {
	close(r.stop)
	r.wg.Wait()
}

// Usable returns the workers slot builds may target — the healthy
// members, in configured order so node numbering stays deterministic.
func (r *rosterManager) Usable() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.order))
	for _, addr := range r.order {
		if r.workers[addr].state == StateHealthy {
			out = append(out, addr)
		}
	}
	return out
}

// UsableWithCapacity filters Usable down to workers advertising a free
// slot; the pool's stale-on-grow check uses it so a worker that is
// alive but full does not trigger rebuild churn.
func (r *rosterManager) UsableWithCapacity() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.order))
	for _, addr := range r.order {
		w := r.workers[addr]
		if w.state == StateHealthy && (w.pong.MaxSlots == 0 || w.pong.SlotsActive < w.pong.MaxSlots) {
			out = append(out, addr)
		}
	}
	return out
}

// IsUsable reports whether addr is currently offered to builds.
func (r *rosterManager) IsUsable(addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[addr]
	return ok && w.state == StateHealthy
}

// ObserveFailure records a build-path failure (dial refused, handshake
// died) as a missed probe, so scheduling reacts immediately instead of
// waiting out the probe interval.
func (r *rosterManager) ObserveFailure(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[addr]
	if !ok {
		return
	}
	r.recordFailureLocked(w)
}

// Fleet snapshots every worker for /statusz.
func (r *rosterManager) Fleet() FleetStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	fs := FleetStatus{Total: len(r.order)}
	for _, addr := range r.order {
		w := r.workers[addr]
		if w.state == StateHealthy {
			fs.Healthy++
		}
		fs.Workers = append(fs.Workers, FleetWorker{
			Addr:         w.addr,
			State:        w.state,
			Fails:        w.fails,
			LastRTTMs:    float64(w.lastRTT) / float64(time.Millisecond),
			SlotsActive:  w.pong.SlotsActive,
			MaxSlots:     w.pong.MaxSlots,
			GraphsCached: w.pong.GraphsCached,
		})
	}
	sort.SliceStable(fs.Workers, func(i, j int) bool { return fs.Workers[i].Addr < fs.Workers[j].Addr })
	fs.Degraded = fs.Healthy < fs.Total
	return fs
}

// probeLoop drives one worker's state machine until Close.
func (r *rosterManager) probeLoop(addr string) {
	defer r.wg.Done()
	h := fnv.New64a()
	h.Write([]byte(addr))
	bo := comm.Backoff{Base: r.cfg.ProbeInterval, Cap: r.cfg.BackoffCap, Key: h.Sum64()}
	timer := time.NewTimer(0) // first probe fires immediately
	defer timer.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-timer.C:
		}
		rtt, pong, err := r.probe(addr)
		r.probes.Add(1)

		r.mu.Lock()
		w := r.workers[addr]
		if err != nil {
			r.probeFailures.Add(1)
			r.recordFailureLocked(w)
		} else {
			r.rtt.Observe(rtt)
			w.lastRTT = rtt
			w.lastSeen = time.Now()
			w.pong = pong
			w.fails = 0
			w.deadFor = 0
			switch w.state {
			case StateSuspect:
				r.transitionLocked(w, StateHealthy)
			case StateDead:
				r.transitionLocked(w, StateRejoining)
			}
		}
		state := w.state
		deadFor := w.deadFor
		r.mu.Unlock()

		if state == StateRejoining {
			// Run the rejoin hook outside the lock — it ships graphs.
			rejoinErr := error(nil)
			if r.cfg.OnRejoin != nil {
				rejoinErr = r.cfg.OnRejoin(addr)
			}
			r.mu.Lock()
			if rejoinErr != nil {
				r.cfg.Logf("server: worker %s rejoin failed, keeping dead: %v", addr, rejoinErr)
				r.transitionLocked(w, StateDead)
			} else if w.state == StateRejoining {
				r.rejoins.Add(1)
				r.transitionLocked(w, StateHealthy)
			}
			state = w.state
			r.mu.Unlock()
		}

		// Dead workers back off; live ones re-probe on the interval,
		// jittered so a fleet of front-ends decorrelates.
		if state == StateDead {
			timer.Reset(bo.Delay(deadFor))
		} else {
			timer.Reset(bo.Delay(0))
		}
	}
}

// recordFailureLocked advances the failure side of the state machine.
func (r *rosterManager) recordFailureLocked(w *workerHealth) {
	w.fails++
	switch w.state {
	case StateHealthy, StateRejoining:
		r.transitionLocked(w, StateSuspect)
	case StateSuspect:
		if w.fails >= r.cfg.DeadAfter {
			r.transitionLocked(w, StateDead)
		}
	case StateDead:
		w.deadFor++
	}
}

func (r *rosterManager) transitionLocked(w *workerHealth, to WorkerState) {
	if w.state == to {
		return
	}
	r.transitions.Add(1)
	r.cfg.Logf("server: worker %s %v -> %v (fails=%d)", w.addr, w.state, to, w.fails)
	w.state = to
	if to == StateDead {
		w.deadFor = 0
	}
}

// probe performs one dial+ping round trip on a fresh control
// connection.
func (r *rosterManager) probe(addr string) (time.Duration, pongMsg, error) {
	start := time.Now()
	cc, err := comm.DialCtrl(addr, r.cfg.ProbeTimeout)
	if err != nil {
		return 0, pongMsg{}, err
	}
	defer cc.Close()
	//sgvet:ignore commerr deadline-arm failure means the conn is already dead; the ping below reports the real error
	cc.SetDeadline(time.Now().Add(r.cfg.ProbeTimeout))
	if err := cc.Send("ping", nil); err != nil {
		return 0, pongMsg{}, err
	}
	var pong pongMsg
	if err := cc.Expect("pong", &pong); err != nil {
		return 0, pongMsg{}, err
	}
	return time.Since(start), pong, nil
}
