package server

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// localTestPool builds a pool backed by the in-process provider alone.
func localTestPool(t *testing.T, g *graph.Graph, opts core.Options, slots int) *Pool {
	t.Helper()
	p, err := NewPool(PoolConfig{
		Graphs:        map[string]*graph.Graph{"g": g},
		Providers:     []EngineProvider{NewLocalProvider(LocalProviderConfig{Options: opts})},
		SlotsPerEntry: slots,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestPoolConcurrentLeasesMatchSequential leases two engines from the
// same pool and runs different algorithms on them simultaneously (run
// under -race in `make race`): the slots must be fully isolated — the
// concurrent results bit-identical to sequential runs of the same
// queries.
func TestPoolConcurrentLeasesMatchSequential(t *testing.T) {
	g := testGraph(7, 3)
	p := localTestPool(t, g, core.Options{NumNodes: 2, Mode: core.ModeSympleGraph}, 2)
	mode := core.ModeSympleGraph

	// Sequential baselines on dedicated engines.
	baseBFS, err := core.NewEngine(g, core.Options{NumNodes: 2, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	defer baseBFS.Close()
	root, _ := graph.LargestOutDegreeVertex(g)
	wantBFS, err := algorithms.BFS(baseBFS, root)
	if err != nil {
		t.Fatal(err)
	}
	baseKC, err := core.NewEngine(graph.Symmetrize(g), core.Options{NumNodes: 2, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	defer baseKC.Close()
	wantKC, err := algorithms.KCore(baseKC, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent: two different algorithms on two leased slots, several
	// rounds so the slots are recycled through Release in between.
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		s1, err := p.Lease(ctx, "", "g", 0, variantDirected, mode)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := p.Lease(ctx, "local", "g", 0, variantUndirected, mode)
		if err != nil {
			t.Fatal(err)
		}
		if s1.eng == s2.eng {
			t.Fatal("two live leases share an engine")
		}
		var wg sync.WaitGroup
		var gotBFS *algorithms.BFSResult
		var gotKC *algorithms.KCoreResult
		var err1, err2 error
		wg.Add(2)
		go func() {
			defer wg.Done()
			gotBFS, err1 = algorithms.BFS(s1.eng, root)
		}()
		go func() {
			defer wg.Done()
			gotKC, err2 = algorithms.KCore(s2.eng, 3)
		}()
		wg.Wait()
		p.Release(s1)
		p.Release(s2)
		if err1 != nil || err2 != nil {
			t.Fatalf("round %d: bfs err=%v kcore err=%v", round, err1, err2)
		}
		if !reflect.DeepEqual(gotBFS.Depth, wantBFS.Depth) || !reflect.DeepEqual(gotBFS.Parent, wantBFS.Parent) {
			t.Fatalf("round %d: concurrent BFS diverged from sequential", round)
		}
		if !reflect.DeepEqual(gotKC.InCore, wantKC.InCore) {
			t.Fatalf("round %d: concurrent KCore diverged from sequential", round)
		}
	}
	// Both variants reuse warm engines across rounds: 2 slots total.
	if p.Slots() != 2 {
		t.Fatalf("pool built %d engines, want 2", p.Slots())
	}
	if got := p.ProviderSlots()["local"]; got != 2 {
		t.Fatalf("provider slot count = %d, want 2", got)
	}
}

// TestPoolLeaseBlocksAtCapacity pins the capacity contract: a third
// lease with 2 slots outstanding waits until one is released, and a
// cancelled context unblocks it with ctx.Err().
func TestPoolLeaseBlocksAtCapacity(t *testing.T) {
	p := localTestPool(t, testGraph(6, 1), core.Options{NumNodes: 2}, 2)
	mode := core.ModeSympleGraph
	ctx := context.Background()

	s1, err := p.Lease(ctx, "", "g", 0, variantDirected, mode)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Lease(ctx, "", "g", 0, variantDirected, mode)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan *slot)
	go func() {
		s3, err := p.Lease(ctx, "", "g", 0, variantDirected, mode)
		if err != nil {
			t.Errorf("blocked lease: %v", err)
		}
		done <- s3
	}()
	select {
	case <-done:
		t.Fatal("third lease did not block at capacity")
	case <-time.After(50 * time.Millisecond):
	}
	p.Release(s1)
	s3 := <-done
	if s3 == nil {
		t.Fatal("no slot after release")
	}
	p.Release(s2)
	p.Release(s3)

	// At capacity with nothing released, a deadline unblocks the wait.
	a, _ := p.Lease(ctx, "", "g", 0, variantDirected, mode)
	b, _ := p.Lease(ctx, "", "g", 0, variantDirected, mode)
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := p.Lease(cctx, "", "g", 0, variantDirected, mode); err != context.Canceled {
		t.Fatalf("cancelled lease: %v", err)
	}
	p.Release(a)
	p.Release(b)

	if _, err := p.Lease(ctx, "", "missing", 0, variantDirected, mode); err == nil {
		t.Fatal("unknown graph leased")
	}
	if _, err := p.Lease(ctx, "nosuch", "g", 0, variantDirected, mode); err == nil {
		t.Fatal("unknown provider leased")
	}
}

// TestPoolNamesSorted pins the sgvet snapdet fix: GraphNames and
// ProviderNames are built by map iteration, so without an explicit sort
// their order — and with it /statusz rendering and error messages —
// changed run to run.
func TestPoolNamesSorted(t *testing.T) {
	graphs := map[string]*graph.Graph{}
	for _, n := range []string{"zeta", "alpha", "mid", "beta", "omega"} {
		graphs[n] = testGraph(4, 1)
	}
	p, err := NewPool(PoolConfig{
		Graphs:        graphs,
		Providers:     []EngineProvider{NewLocalProvider(LocalProviderConfig{Options: core.Options{NumNodes: 1}})},
		SlotsPerEntry: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	want := []string{"alpha", "beta", "mid", "omega", "zeta"}
	for i := 0; i < 8; i++ {
		if got := p.GraphNames(); !reflect.DeepEqual(got, want) {
			t.Fatalf("GraphNames() = %v, want sorted %v", got, want)
		}
	}
	if got := p.ProviderNames(); !reflect.DeepEqual(got, []string{"local"}) {
		t.Fatalf("ProviderNames() = %v", got)
	}
}
