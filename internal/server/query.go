// Package server is the graph query service: a long-running daemon that
// loads and partitions graphs once, keeps a pool of warm clusters, and
// answers algorithm queries over HTTP. It layers admission control (a
// bounded queue with backpressure), a result cache keyed by canonical
// query parameters, and per-request engine scheduling — deadline, trace
// capture, resilience — on top of the core engine, so one process can
// serve many queries without re-paying graph load and partition cost.
package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/algorithms"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mutate"
)

// Request is one algorithm query. Fields irrelevant to the requested
// algorithm are ignored and zeroed by canonicalization so that, e.g.,
// two BFS queries differing only in -k share a cache entry.
type Request struct {
	Graph   string `json:"graph"`
	Algo    string `json:"algo"`
	Mode    string `json:"mode"`    // symplegraph (default) or gemini
	Root    int    `json:"root"`    // bfs/sssp; -1 = highest out-degree vertex
	K       int    `json:"k"`       // kcore
	Centers int    `json:"centers"` // kmeans; 0 = sqrt(|V|)
	Iters   int    `json:"iters"`   // kmeans outer iterations / pagerank iterations
	Rounds  int    `json:"rounds"`  // sampling
	Seed    uint64 `json:"seed"`    // mis/kmeans/sampling
	// Epoch pins the query to one graph version; 0 resolves to the
	// latest at admission time and is rewritten to the concrete epoch,
	// so the cache key and the leased engine always agree on the
	// version, even when a mutation commits mid-flight.
	Epoch uint64 `json:"epoch"`

	// Per-request scheduling knobs; never part of the cache key.
	// Provider stays out of the key deliberately: results are
	// deterministic and independent of where the engine runs, so a
	// remote answer satisfies a later local query and vice versa.
	DeadlineMs int    `json:"deadline_ms"` // 0 = no per-request deadline
	NoCache    bool   `json:"no_cache"`    // bypass the result cache
	Trace      bool   `json:"trace"`       // capture a per-request phase trace
	Provider   string `json:"provider"`    // engine provider ("local", "remote"); "" = server default
}

// algoNames is the fixed serving vocabulary; per-algo histograms and the
// dispatch switch both range over it.
var algoNames = []string{"bfs", "sssp", "kcore", "mis", "kmeans", "sampling", "pagerank", "cc"}

func validAlgo(a string) bool {
	for _, n := range algoNames {
		if n == a {
			return true
		}
	}
	return false
}

// parseRequest decodes a query from either the URL query string (GET)
// or a JSON body (POST).
func parseRequest(r *http.Request) (Request, error) {
	if r.Method == http.MethodPost {
		var q Request
		q.Root = -1
		if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
			return q, fmt.Errorf("bad JSON body: %w", err)
		}
		return q, nil
	}
	return parseQueryValues(r.URL.Query())
}

func parseQueryValues(v url.Values) (Request, error) {
	q := Request{Root: -1}
	q.Graph = v.Get("graph")
	q.Algo = v.Get("algo")
	q.Mode = v.Get("mode")
	var err error
	geti := func(key string, dst *int) {
		if s := v.Get(key); s != "" && err == nil {
			n, e := strconv.Atoi(s)
			if e != nil {
				err = fmt.Errorf("bad %s=%q", key, s)
				return
			}
			*dst = n
		}
	}
	geti("root", &q.Root)
	geti("k", &q.K)
	geti("centers", &q.Centers)
	geti("iters", &q.Iters)
	geti("rounds", &q.Rounds)
	geti("deadline_ms", &q.DeadlineMs)
	if s := v.Get("seed"); s != "" && err == nil {
		n, e := strconv.ParseUint(s, 10, 64)
		if e != nil {
			err = fmt.Errorf("bad seed=%q", s)
		}
		q.Seed = n
	}
	if s := v.Get("epoch"); s != "" && err == nil {
		n, e := strconv.ParseUint(s, 10, 64)
		if e != nil {
			err = fmt.Errorf("bad epoch=%q", s)
		}
		q.Epoch = n
	}
	q.NoCache = v.Get("no_cache") == "1" || v.Get("no_cache") == "true"
	q.Trace = v.Get("trace") == "1" || v.Get("trace") == "true"
	q.Provider = v.Get("provider")
	return q, err
}

// canonicalize validates q against the loaded graph, fills defaults, and
// zeroes every parameter the algorithm does not read, so the cache key
// identifies the work actually performed. info supplies graph-derived
// defaults (the fallback BFS root, |V| for the kmeans center count).
func canonicalize(q Request, info graphInfo) (Request, error) {
	if !validAlgo(q.Algo) {
		return q, fmt.Errorf("unknown algo %q (want one of %v)", q.Algo, algoNames)
	}
	if q.Mode == "" {
		q.Mode = "symplegraph"
	}
	if _, err := cliutil.ParseMode(q.Mode); err != nil {
		return q, err
	}

	c := Request{Graph: q.Graph, Algo: q.Algo, Mode: q.Mode, Epoch: q.Epoch,
		DeadlineMs: q.DeadlineMs, NoCache: q.NoCache, Trace: q.Trace, Provider: q.Provider}
	switch q.Algo {
	case "bfs", "sssp":
		c.Root = q.Root
		if c.Root < 0 {
			c.Root = info.defaultRoot
		}
		if c.Root >= info.vertices {
			return q, fmt.Errorf("root %d out of range (graph has %d vertices)", c.Root, info.vertices)
		}
	case "kcore":
		c.K = q.K
		if c.K <= 0 {
			c.K = 8
		}
	case "mis":
		c.Seed = defaultSeed(q.Seed)
	case "kmeans":
		c.Seed = defaultSeed(q.Seed)
		c.Centers = q.Centers
		if c.Centers <= 0 {
			c.Centers = int(math.Sqrt(float64(info.vertices)))
		}
		c.Iters = q.Iters
		if c.Iters <= 0 {
			c.Iters = 3
		}
	case "sampling":
		c.Seed = defaultSeed(q.Seed)
		c.Rounds = q.Rounds
		if c.Rounds <= 0 {
			c.Rounds = 4
		}
	case "pagerank":
		c.Iters = q.Iters
		if c.Iters <= 0 {
			c.Iters = 20
		}
	case "cc":
		// graph and mode only
	}
	return c, nil
}

func defaultSeed(s uint64) uint64 {
	if s == 0 {
		return 42
	}
	return s
}

// cacheKey identifies the cache entry (and the checkpoint tag) for a
// canonicalized request. Scheduling knobs are deliberately absent: a
// traced query and an untraced one compute the same answer.
func cacheKey(q Request) string {
	return fmt.Sprintf("g=%s|e=%d|algo=%s|mode=%s|root=%d|k=%d|centers=%d|iters=%d|rounds=%d|seed=%d",
		q.Graph, q.Epoch, q.Algo, q.Mode, q.Root, q.K, q.Centers, q.Iters, q.Rounds, q.Seed)
}

// variantFor maps an algorithm to the graph variant it runs on:
// undirected algorithms need the symmetrized graph, SSSP a weighted one.
func variantFor(algo string) graphVariant {
	switch algo {
	case "mis", "kcore", "kmeans":
		return variantUndirected
	case "sssp":
		return variantWeighted
	default:
		return variantDirected
	}
}

// Result is the algorithm-specific part of a response; only the fields
// the queried algorithm produces are populated.
type Result struct {
	Reached       int     `json:"reached,omitempty"`         // bfs, sssp
	TopDownSteps  int     `json:"top_down_steps,omitempty"`  // bfs
	BottomUpSteps int     `json:"bottom_up_steps,omitempty"` // bfs
	Size          int     `json:"size,omitempty"`            // mis, kcore
	Rounds        int     `json:"rounds,omitempty"`          // mis, kcore
	DistSums      []int64 `json:"dist_sums,omitempty"`       // kmeans
	ExactPicks    int64   `json:"exact_picks,omitempty"`     // sampling
	Components    int     `json:"components,omitempty"`      // cc
	TopVertex     int     `json:"top_vertex,omitempty"`      // pagerank
	TopRank       float64 `json:"top_rank,omitempty"`        // pagerank
}

// EngineStats is the paper's per-run metric set, attached to every
// uncached response.
type EngineStats struct {
	EdgesTraversed  int64 `json:"edges_traversed"`
	UpdateBytes     int64 `json:"update_bytes"`
	DependencyBytes int64 `json:"dependency_bytes"`
	ControlBytes    int64 `json:"control_bytes"`
	Restarts        int64 `json:"restarts"`
}

// TraceSpan is one (node, phase) aggregate from a per-request capture.
type TraceSpan struct {
	Node  int     `json:"node"`
	Phase string  `json:"phase"`
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Response is the full answer to one query.
type Response struct {
	Graph string `json:"graph"`
	Algo  string `json:"algo"`
	Mode  string `json:"mode"`
	// Epoch is the graph version this answer was computed on.
	Epoch     uint64      `json:"epoch,omitempty"`
	Result    Result      `json:"result"`
	Engine    EngineStats `json:"engine"`
	Cached    bool        `json:"cached"`
	Coalesced bool        `json:"coalesced,omitempty"`
	Provider  string      `json:"provider,omitempty"`
	// Degraded marks an answer computed below the requested fleet
	// width — fewer ring members than configured workers (or none,
	// served in-process) because part of the fleet was unhealthy.
	Degraded    bool        `json:"degraded,omitempty"`
	QueueWaitMs float64     `json:"queue_wait_ms"`
	EngineMs    float64     `json:"engine_ms"`
	Trace       []TraceSpan `json:"trace,omitempty"`
}

// runAlgorithm dispatches a canonicalized request on a leased engine
// and distills the algorithm's answer into the compact Result. The
// engine's graph is the variant variantFor(q.Algo) selected. The same
// dispatch runs on every machine of a distributed engine — the
// canonical request is the SPMD program selector, so front-end and
// workers issue identical Execute sequences.
//
// The returned Region is the answer's read-set signature, for
// delta-keyed cache invalidation: traversals from a root read only the
// vertices they reach (a mutation touching no reached vertex cannot
// change the answer — an arc out of an unreached vertex never relaxes,
// and an arc into one would have made it reached), so they report the
// reached set; whole-graph algorithms report the full region.
func runAlgorithm(c core.Engine, q Request) (Result, mutate.Region, error) {
	var res Result
	region := mutate.FullRegion()
	switch q.Algo {
	case "bfs":
		out, err := algorithms.BFS(c, graph.VertexID(q.Root))
		if err != nil {
			return res, region, err
		}
		var reads mutate.Region
		for v, d := range out.Depth {
			if d >= 0 {
				res.Reached++
				reads.Add(graph.VertexID(v))
			}
		}
		region = reads
		res.TopDownSteps, res.BottomUpSteps = out.TopDownSteps, out.BottomUpSteps
	case "sssp":
		dist, err := algorithms.SSSP(c, graph.VertexID(q.Root))
		if err != nil {
			return res, region, err
		}
		var reads mutate.Region
		for v, d := range dist {
			if d < algorithms.InfDist {
				res.Reached++
				reads.Add(graph.VertexID(v))
			}
		}
		region = reads
	case "kcore":
		out, err := algorithms.KCore(c, q.K)
		if err != nil {
			return res, region, err
		}
		for _, in := range out.InCore {
			if in {
				res.Size++
			}
		}
		res.Rounds = out.Rounds
	case "mis":
		out, err := algorithms.MIS(c, q.Seed)
		if err != nil {
			return res, region, err
		}
		for _, in := range out.InMIS {
			if in {
				res.Size++
			}
		}
		res.Rounds = out.Rounds
	case "kmeans":
		out, err := algorithms.KMeans(c, q.Centers, q.Iters, q.Seed)
		if err != nil {
			return res, region, err
		}
		res.DistSums = out.DistSums
		res.Rounds = out.Rounds
	case "sampling":
		out, err := algorithms.Sample(c, q.Seed, q.Rounds)
		if err != nil {
			return res, region, err
		}
		res.ExactPicks = out.ExactPicks
		res.Rounds = q.Rounds
	case "pagerank":
		rank, err := algorithms.PageRank(c, q.Iters, 0.85)
		if err != nil {
			return res, region, err
		}
		for v, r := range rank {
			if r > res.TopRank {
				res.TopVertex, res.TopRank = v, r
			}
		}
	case "cc":
		labels, err := algorithms.ConnectedComponents(c)
		if err != nil {
			return res, region, err
		}
		comps := map[uint32]bool{}
		for _, l := range labels {
			comps[l] = true
		}
		res.Components = len(comps)
	default:
		return res, region, fmt.Errorf("unknown algo %q", q.Algo)
	}
	return res, region, nil
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
