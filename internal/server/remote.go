package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/mutate"
	"repro/internal/obs"
)

// The remote provider turns a worker roster into pool slots: each Build
// forms one distributed cluster with this process as node 0 and one
// sgworker process per healthy roster member as nodes 1..p-1, connected
// by the engine's TCP endpoints. The control protocol (comm.CtrlConn)
// carries the per-slot negotiation:
//
//	front-end → worker   build {graph, variant, fp, parent_fp, epoch, node, nodes, opts}
//	worker → front-end   build-reject {reason}  (worker at slot capacity)
//	worker → front-end   graph-state {have, have_parent, offset, epoch}
//	front-end → worker   delta {size, sha, chained} + chunked batch  (when
//	                     the worker holds parent_fp; it applies the
//	                     canonical mutation batch locally)
//	front-end → worker   graph {size, chunk, sha} + chunked blob  (when the
//	                     worker lacks both fp and parent; resumes from offset)
//	worker → front-end   ready {data_addr}
//	front-end → worker   start {addrs}       (the full data-plane address list)
//	worker → front-end   up {error}          (mesh formed, engine built)
//	…per query…          run {Request} / done {error}
//	front-end → worker   close               (slot teardown)
//
// Graphs ship in fixed-size CRC-checked chunks (comm.SendBlobChunked);
// the worker retains the acknowledged prefix across a disconnect, and
// graph-state's offset lets the next transfer resume where the last one
// died instead of starting over.
//
// Closures cannot cross process boundaries, so queries ship as the
// canonical Request and every machine runs the same runAlgorithm
// dispatch — the SPMD contract: identical Execute sequences on every
// node, differing only in which vertex partition each owns.

// Remote engines run with recovery and checkpointing disabled: a node
// cannot re-form a ring it does not own. The failure model is the
// roster's probe/rejoin state machine (roster.go): a worker loss
// poisons the slot, the rebuild re-forms the ring over the healthy
// members, and a restarted worker is preloaded and folded back in on
// the next rebuild — queries keep being served at reduced width in
// between, flagged degraded.

const (
	defaultCtrlDialTimeout = 3 * time.Second
	// defaultBuildTimeout bounds each control-protocol step of slot
	// construction (graph shipping dominates).
	defaultBuildTimeout = 2 * time.Minute
	// defaultFinishTimeout bounds waiting for per-query worker
	// acknowledgements; a worker that cannot answer by then is treated
	// as lost and the slot is rebuilt.
	defaultFinishTimeout = 30 * time.Second
	// maxBuildAttempts bounds how many times one Build re-forms the
	// ring after a worker dies mid-handshake before going degraded.
	maxBuildAttempts = 3
)

// wireOptions is the engine configuration shipped to workers — the
// subset of core.Options that is meaningful across process boundaries.
type wireOptions struct {
	Mode         string  `json:"mode"`
	DepThreshold int     `json:"dep_threshold"`
	NumBuffers   int     `json:"num_buffers"`
	Workers      int     `json:"workers"`
	Alpha        float64 `json:"alpha"`
	StallMs      int64   `json:"stall_ms"`
}

type buildMsg struct {
	Graph   string `json:"graph"`
	Variant string `json:"variant"`
	// FP names the (epoch, variant) graph version; ParentFP the same
	// variant at the parent epoch, offered so the worker can answer
	// whether a delta ship suffices. Epoch is the version number, for
	// worker-side bookkeeping and chaos assertions.
	FP       string      `json:"fp"`
	ParentFP string      `json:"parent_fp,omitempty"`
	Epoch    uint64      `json:"epoch,omitempty"`
	Node     int         `json:"node"`
	Nodes    int         `json:"nodes"`
	Opts     wireOptions `json:"opts"`
}

// rejectMsg is a worker's refusal to host another slot.
type rejectMsg struct {
	Reason string `json:"reason"`
}

type graphStateMsg struct {
	Have bool `json:"have"`
	// HaveParent reports the worker holds the parent-epoch variant, so
	// the sender may ship the canonical delta instead of the blob.
	HaveParent bool `json:"have_parent,omitempty"`
	// Offset is how many bytes of a previously interrupted transfer of
	// this fingerprint the worker retained; the sender resumes there.
	Offset int `json:"offset,omitempty"`
	// Epoch is the newest epoch the worker has seen for this
	// graph/variant, for observability.
	Epoch uint64 `json:"epoch,omitempty"`
}

// graphMsg announces a chunked full-graph transfer.
type graphMsg struct {
	Size  int    `json:"size"`  // total serialized bytes
	Chunk int    `json:"chunk"` // chunk size the sender will use
	SHA   string `json:"sha"`   // sha256 of the blob, verified on receipt
}

// deltaMsg announces a chunked delta transfer: the worker applies the
// canonical batch to the parent-epoch graph it already holds instead
// of receiving the whole adjacency. Chained deltas additionally prove
// the result: FP == ChainFingerprint(ParentFP, bytes).
type deltaMsg struct {
	Size    int    `json:"size"`
	SHA     string `json:"sha"` // sha256 of the delta bytes
	Chained bool   `json:"chained,omitempty"`
}

// preloadMsg asks a rejoining worker to warm one graph fingerprint
// ahead of slot builds.
type preloadMsg struct {
	FP       string `json:"fp"`
	ParentFP string `json:"parent_fp,omitempty"`
}

type readyMsg struct {
	DataAddr string `json:"data_addr"`
}

type startMsg struct {
	Addrs []string `json:"addrs"`
}

type upMsg struct {
	Error string `json:"error,omitempty"`
}

type doneMsg struct {
	Error string `json:"error,omitempty"`
}

// RemoteProviderConfig configures the remote engine provider.
type RemoteProviderConfig struct {
	// Workers lists sgworker control addresses. Required non-empty.
	Workers []string
	// Options is the base engine configuration; NumNodes is derived
	// from the surviving roster, and recovery/checkpoint fields are
	// forced off (see the failure model above).
	Options core.Options
	// Tracer receives node-0 phase spans (worker-side spans stay on the
	// workers).
	Tracer *obs.Tracer
	// AdvertiseHost is the host workers dial back for node 0's data
	// plane; default 127.0.0.1.
	AdvertiseHost string
	// DialTimeout bounds each control dial; BuildTimeout each build
	// step; FinishTimeout the per-query acknowledgement wait.
	DialTimeout   time.Duration
	BuildTimeout  time.Duration
	FinishTimeout time.Duration
	// ProbeInterval / ProbeTimeout / DeadAfter / BackoffCap tune the
	// roster's health probing (see RosterConfig for defaults).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	DeadAfter     int
	BackoffCap    time.Duration
	// Logf receives fleet state transitions and degraded-build notices
	// when non-nil.
	Logf func(format string, args ...any)
	// Registry receives server.fleet.* metrics when non-nil.
	Registry *obs.Registry
}

// maxCachedShips bounds the fp-keyed ship cache: old epochs' payloads
// age out in insertion order once no build references them.
const maxCachedShips = 32

// RemoteProvider builds engines over a roster of sgworker processes.
type RemoteProvider struct {
	cfg    RemoteProviderConfig
	roster *rosterManager

	mu        sync.Mutex
	ships     map[string]*shipEntry // fp → ship payloads
	shipOrder []string              // insertion order, for eviction

	deltaShips     atomic.Int64
	degradedBuilds atomic.Int64
}

// shipEntry is everything needed to get one (epoch, variant) graph
// onto a worker: the delta path (when the front-end could compute one)
// and the lazily materialized full blob.
type shipEntry struct {
	fp       string
	parentFP string
	delta    []byte
	deltaSHA string
	chained  bool

	blobFn  func() ([]byte, string, error)
	mu      sync.Mutex
	blob    []byte
	blobSHA string
}

// fullBlob materializes (once) the full serialized graph.
func (e *shipEntry) fullBlob() ([]byte, string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.blob != nil {
		return e.blob, e.blobSHA, nil
	}
	if e.blobFn == nil {
		return nil, "", fmt.Errorf("no blob source for fp %.12s", e.fp)
	}
	data, sha, err := e.blobFn()
	if err != nil {
		return nil, "", err
	}
	e.blob, e.blobSHA = data, sha
	return data, sha, nil
}

// NewRemoteProvider returns a provider that schedules onto cfg.Workers,
// tracking their health with a probing roster.
func NewRemoteProvider(cfg RemoteProviderConfig) EngineProvider {
	if cfg.AdvertiseHost == "" {
		cfg.AdvertiseHost = "127.0.0.1"
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultCtrlDialTimeout
	}
	if cfg.BuildTimeout <= 0 {
		cfg.BuildTimeout = defaultBuildTimeout
	}
	if cfg.FinishTimeout <= 0 {
		cfg.FinishTimeout = defaultFinishTimeout
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	p := &RemoteProvider{cfg: cfg, ships: make(map[string]*shipEntry)}
	p.roster = newRosterManager(RosterConfig{
		Workers:       cfg.Workers,
		ProbeInterval: cfg.ProbeInterval,
		ProbeTimeout:  cfg.ProbeTimeout,
		DeadAfter:     cfg.DeadAfter,
		BackoffCap:    cfg.BackoffCap,
		OnRejoin:      p.preload,
		Logf:          cfg.Logf,
		Registry:      cfg.Registry,
	})
	if cfg.Registry != nil {
		cfg.Registry.RegisterInt("server.fleet.degraded_builds", p.degradedBuilds.Load)
	}
	return p
}

func (p *RemoteProvider) Name() string { return "remote" }

func (p *RemoteProvider) Close() { p.roster.Close() }

// Fleet exposes the roster snapshot for /statusz.
func (p *RemoteProvider) Fleet() FleetStatus { return p.roster.Fleet() }

// shipFor indexes the spec's ship payloads by fingerprint: every slot
// build for the same (epoch, variant) reuses them, workers that
// already hold the fingerprint skip the transfer entirely, and workers
// holding the parent epoch receive only the delta. A spec without
// version metadata (tests building the provider directly) falls back
// to serializing the engine graph, fingerprinted by its blob hash.
func (p *RemoteProvider) shipFor(spec BuildSpec) (*shipEntry, error) {
	fp := spec.FP
	blobFn := spec.Blob
	if blobFn == nil {
		g := spec.Graph
		blobFn = func() ([]byte, string, error) { return mutate.SerializeGraph(g) }
	}
	if fp == "" {
		data, sha, err := blobFn()
		if err != nil {
			return nil, err
		}
		fp = sha
		blobFn = func() ([]byte, string, error) { return data, sha, nil }
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.ships[fp]
	if !ok {
		e = &shipEntry{fp: fp, blobFn: blobFn}
		if len(spec.DeltaBytes) > 0 && spec.ParentFP != "" {
			sum := sha256.Sum256(spec.DeltaBytes)
			e.parentFP = spec.ParentFP
			e.delta = spec.DeltaBytes
			e.deltaSHA = hex.EncodeToString(sum[:])
			e.chained = spec.DeltaChained
		}
		p.ships[fp] = e
		p.shipOrder = append(p.shipOrder, fp)
		for len(p.shipOrder) > maxCachedShips {
			delete(p.ships, p.shipOrder[0])
			p.shipOrder = p.shipOrder[1:]
		}
	}
	return e, nil
}

// DeltaShips counts graph transfers satisfied by a delta frame instead
// of a full blob; test harnesses assert the cheap path was taken.
func (p *RemoteProvider) DeltaShips() int64 { return p.deltaShips.Load() }

// cachedShips snapshots the ship cache for preloading, sorted by
// fingerprint so rejoin transfers are ordered deterministically.
func (p *RemoteProvider) cachedShips() []*shipEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*shipEntry, 0, len(p.ships))
	for _, e := range p.ships {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].fp < out[j].fp })
	return out
}

// preload is the roster's rejoin hook: re-ship every cached graph to a
// worker coming back from dead, so its re-admission never stalls a slot
// build on a cold transfer. A worker that retained the parent epoch of
// a cached ship gets only the delta; interrupted full transfers resume
// from the worker's retained offset.
func (p *RemoteProvider) preload(addr string) error {
	ships := p.cachedShips()
	if len(ships) == 0 {
		return nil
	}
	cc, err := comm.DialCtrl(addr, p.cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer cc.Close()
	//sgvet:ignore commerr deadline-arm failure means the conn is already dead; the preload traffic below reports the real error
	cc.SetDeadline(time.Now().Add(p.cfg.BuildTimeout))
	for _, e := range ships {
		if err := p.shipGraph(cc, "preload", preloadMsg{FP: e.fp, ParentFP: e.parentFP}, e); err != nil {
			return fmt.Errorf("preloading %s: %w", addr, err)
		}
		var up upMsg
		if err := cc.Expect("preloaded", &up); err != nil {
			return fmt.Errorf("preloading %s: %w", addr, err)
		}
		if up.Error != "" {
			return fmt.Errorf("preloading %s: %s", addr, up.Error)
		}
	}
	return nil
}

// shipGraph runs the announce → graph-state → chunked-transfer exchange
// shared by preloading and slot builds: the worker reports what it has
// (the fingerprint itself, the parent epoch, a retained partial offset)
// and the sender picks the cheapest sufficient path — nothing, the
// canonical delta, or the full blob's missing suffix.
func (p *RemoteProvider) shipGraph(cc *comm.CtrlConn, announce string, msg any, e *shipEntry) error {
	if err := cc.Send(announce, msg); err != nil {
		return err
	}
	var gs graphStateMsg
	if err := cc.Expect("graph-state", &gs); err != nil {
		return err
	}
	return p.shipPayload(cc, gs, e)
}

// shipPayload is the transfer step after graph-state: nothing if the
// worker has the fingerprint, the delta if it has the parent and one
// exists, the full blob (resumed from the retained offset) otherwise.
func (p *RemoteProvider) shipPayload(cc *comm.CtrlConn, gs graphStateMsg, e *shipEntry) error {
	if gs.Have {
		return nil
	}
	if gs.HaveParent && len(e.delta) > 0 {
		if err := cc.Send("delta", deltaMsg{Size: len(e.delta), SHA: e.deltaSHA, Chained: e.chained}); err != nil {
			return err
		}
		if err := cc.SendBlobChunked(e.delta, 0, comm.DefaultChunkBytes); err != nil {
			return err
		}
		p.deltaShips.Add(1)
		return nil
	}
	blob, sha, err := e.fullBlob()
	if err != nil {
		return err
	}
	if gs.Offset < 0 || gs.Offset > len(blob) {
		gs.Offset = 0
	}
	if err := cc.Send("graph", graphMsg{Size: len(blob), Chunk: comm.DefaultChunkBytes, SHA: sha}); err != nil {
		return err
	}
	return cc.SendBlobChunked(blob, gs.Offset, comm.DefaultChunkBytes)
}

// Build forms a ring over the roster's healthy workers. A worker that
// fails mid-handshake is reported to the roster and the attempt retried
// over the survivors; a worker at capacity is excluded without a health
// penalty. When no worker is usable (or every attempt failed), the
// build degrades to an in-process engine flagged degraded rather than
// failing the query path.
func (p *RemoteProvider) Build(spec BuildSpec) (Engine, error) {
	ship, err := p.shipFor(spec)
	if err != nil {
		return nil, err
	}

	exclude := make(map[string]bool)
	var lastErr error
	for attempt := 0; attempt < maxBuildAttempts; attempt++ {
		targets := make([]string, 0, len(p.cfg.Workers))
		for _, addr := range p.roster.Usable() {
			if !exclude[addr] {
				targets = append(targets, addr)
			}
		}
		if len(targets) == 0 {
			break
		}
		eng, badAddr, rejected, err := p.buildAttempt(spec, ship, targets)
		if err == nil {
			return eng, nil
		}
		lastErr = err
		if badAddr != "" {
			if rejected {
				exclude[badAddr] = true
			} else {
				p.roster.ObserveFailure(badAddr)
			}
		}
	}
	if lastErr != nil {
		p.cfg.Logf("server: remote build failed (%v); serving degraded", lastErr)
	}
	return p.buildDegraded(spec)
}

// workerLink pairs one slot control connection with the roster address
// it was dialed at (RemoteAddr may differ after resolution).
type workerLink struct {
	addr string
	cc   *comm.CtrlConn
}

// buildAttempt forms one ring over targets. On failure it names the
// worker that broke the handshake (empty when the failure was local)
// and whether it was a capacity rejection rather than a fault.
func (p *RemoteProvider) buildAttempt(spec BuildSpec, ship *shipEntry, targets []string) (eng Engine, badAddr string, rejected bool, err error) {
	var links []workerLink
	for _, addr := range targets {
		cc, derr := comm.DialCtrl(addr, p.cfg.DialTimeout)
		if derr != nil {
			// Report the dial failure immediately so the retry skips
			// this worker, and keep forming the ring over the rest.
			p.roster.ObserveFailure(addr)
			continue
		}
		links = append(links, workerLink{addr: addr, cc: cc})
	}
	if len(links) == 0 {
		return nil, "", false, fmt.Errorf("no sgworker reachable (targets %v)", targets)
	}
	closeAll := func() {
		for _, l := range links {
			l.cc.Close()
		}
	}
	fail := func(l workerLink, e error) (Engine, string, bool, error) {
		closeAll()
		return nil, l.addr, false, fmt.Errorf("worker %s: %w", l.addr, e)
	}

	n := len(links) + 1 // node 0 is this process
	opts := p.cfg.Options
	opts.NumNodes = n
	opts.Mode = spec.Mode
	opts.Tracer = p.cfg.Tracer
	opts.Endpoints = nil
	opts.Link = nil
	opts.Fault = nil
	opts.MaxRestarts = 0
	opts.CheckpointEvery = 0
	opts.Checkpoints = nil
	opts.ResumeCheckpoints = false

	wire := wireOptions{
		Mode:         spec.Mode.String(),
		DepThreshold: opts.DepThreshold,
		NumBuffers:   opts.NumBuffers,
		Workers:      opts.Workers,
		Alpha:        opts.Alpha,
		StallMs:      opts.StallTimeout.Milliseconds(),
	}

	deadline := time.Now().Add(p.cfg.BuildTimeout)
	for _, l := range links {
		//sgvet:ignore commerr deadline-arm failure means the conn is already dead; the next Expect/Send on it reports the real error
		l.cc.SetDeadline(deadline)
	}

	// Phase 1: announce the build and ship the graph where needed.
	addrs := make([]string, n)
	for i, l := range links {
		node := i + 1
		msg := buildMsg{Graph: spec.GraphName, Variant: spec.Variant.String(),
			FP: ship.fp, ParentFP: spec.ParentFP, Epoch: spec.Epoch,
			Node: node, Nodes: n, Opts: wire}
		if err := l.cc.Send("build", msg); err != nil {
			return fail(l, err)
		}
		env, err := l.cc.Recv()
		if err != nil {
			return fail(l, err)
		}
		switch env.Type {
		case "build-reject":
			var rej rejectMsg
			//sgvet:ignore commerr a malformed reject body still rejects; the reason is advisory
			json.Unmarshal(env.Body, &rej)
			closeAll()
			return nil, l.addr, true, fmt.Errorf("worker %s rejected build: %s", l.addr, rej.Reason)
		case "graph-state":
			var gs graphStateMsg
			if err := json.Unmarshal(env.Body, &gs); err != nil {
				return fail(l, err)
			}
			if err := p.shipPayload(l.cc, gs, ship); err != nil {
				return fail(l, fmt.Errorf("shipping graph: %w", err))
			}
		default:
			return fail(l, fmt.Errorf("unexpected control message %q answering build", env.Type))
		}
		var rd readyMsg
		if err := l.cc.Expect("ready", &rd); err != nil {
			return fail(l, err)
		}
		addrs[node] = rd.DataAddr
	}

	// Phase 2: open node 0's data listener, broadcast the address list,
	// and form the mesh. Every NewTCPEndpoint (ours and each worker's)
	// must run concurrently — the mesh blocks until complete.
	ln, err := net.Listen("tcp", net.JoinHostPort(p.cfg.AdvertiseHost, "0"))
	if err != nil {
		closeAll()
		return nil, "", false, fmt.Errorf("node-0 data listener: %w", err)
	}
	addrs[0] = ln.Addr().String()
	for _, l := range links {
		if err := l.cc.Send("start", startMsg{Addrs: addrs}); err != nil {
			ln.Close()
			return fail(l, err)
		}
	}
	ep, err := comm.NewTCPEndpoint(0, ln, addrs)
	if err != nil {
		closeAll()
		return nil, "", false, fmt.Errorf("forming data plane: %w", err)
	}
	for _, l := range links {
		var up upMsg
		err := l.cc.Expect("up", &up)
		if err == nil && up.Error != "" {
			err = fmt.Errorf("%s", up.Error)
		}
		if err != nil {
			ep.Close()
			return fail(l, fmt.Errorf("failed to come up: %w", err))
		}
	}
	for _, l := range links {
		//sgvet:ignore commerr clearing a deadline on a dead conn is harmless; later traffic reports the real error
		l.cc.SetDeadline(time.Time{})
	}

	ceng, err := core.NewDistributedEngine(spec.Graph, opts, ep)
	if err != nil {
		ep.Close()
		closeAll()
		return nil, "", false, fmt.Errorf("building node-0 engine: %w", err)
	}
	members := make([]string, len(links))
	for i, l := range links {
		members[i] = l.addr
	}
	return &remoteEngine{
		Engine:        ceng,
		ep:            ep,
		links:         links,
		finishTimeout: p.cfg.FinishTimeout,
		prov:          p,
		members:       members,
		degraded:      len(members) < len(p.cfg.Workers),
	}, "", false, nil
}

// buildDegraded serves the slot from an in-process engine when no
// worker ring can be formed: reduced capacity, but never a hard 500 for
// want of a fleet. The slot reports degraded on every response and goes
// stale as soon as a worker becomes usable again.
func (p *RemoteProvider) buildDegraded(spec BuildSpec) (Engine, error) {
	p.degradedBuilds.Add(1)
	opts := p.cfg.Options
	opts.Mode = spec.Mode
	opts.Tracer = p.cfg.Tracer
	opts.Endpoints = nil
	opts.Link = nil
	opts.Fault = nil
	if opts.NumNodes <= 0 {
		opts.NumNodes = 1
	}
	eng, err := core.NewEngine(spec.Graph, opts)
	if err != nil {
		return nil, fmt.Errorf("degraded in-process engine for %s/%v: %w", spec.GraphName, spec.Variant, err)
	}
	p.cfg.Logf("server: no usable worker; serving %s/%v degraded in-process", spec.GraphName, spec.Variant)
	return &degradedEngine{Engine: eng, prov: p}, nil
}

// degradedEngine is the zero-worker fallback: the local simulated
// cluster behind the remote provider's name, flagged on every response.
type degradedEngine struct {
	core.Engine
	prov *RemoteProvider
}

func (e *degradedEngine) BindQuery(ctx context.Context, q Request, key string, tr *obs.Tracer) error {
	e.SetBaseContext(ctx)
	if tr != nil {
		e.SetTracer(tr)
	}
	return nil
}

func (e *degradedEngine) FinishQuery() error { return nil }

// Degraded marks responses served below the requested fleet width.
func (e *degradedEngine) Degraded() bool { return true }

// Stale turns true the moment any worker is usable again: the pool
// rebuilds this slot into a real ring on its next lease or release.
func (e *degradedEngine) Stale() bool {
	return len(e.prov.roster.UsableWithCapacity()) > 0
}

// remoteEngine is node 0 of a worker ring: the embedded engine runs the
// local share of every program over the TCP endpoint, and the control
// connections keep the workers' dispatch in lockstep with ours.
//
// BindQuery/FinishQuery are called by the single request holding the
// slot lease, so the per-query fields need no locking.
type remoteEngine struct {
	core.Engine
	ep            *comm.TCPEndpoint
	links         []workerLink
	finishTimeout time.Duration
	prov          *RemoteProvider
	members       []string
	degraded      bool

	inFlight bool
	failed   error // sticky: a worker-side failure marks the slot for rebuild
}

// Degraded marks a ring formed below the configured fleet width.
func (e *remoteEngine) Degraded() bool { return e.degraded }

// Stale reports whether the roster has diverged from the ring this slot
// was built over: a member died (shrink), or — when the ring is running
// below the configured width — a non-member worker with free slot
// capacity is healthy again (grow). Stale slots are rebuilt by the pool
// on lease/release, never mid-query.
func (e *remoteEngine) Stale() bool {
	for _, m := range e.members {
		if !e.prov.roster.IsUsable(m) {
			return true
		}
	}
	if len(e.members) < len(e.prov.cfg.Workers) {
		for _, addr := range e.prov.roster.UsableWithCapacity() {
			member := false
			for _, m := range e.members {
				if m == addr {
					member = true
					break
				}
			}
			if !member {
				return true
			}
		}
	}
	return false
}

// BindQuery announces the canonicalized request to every worker — each
// starts the same runAlgorithm dispatch — and binds the local context
// and tracer. The request context does not propagate to workers; a
// cancelled node 0 tears its endpoint down, which unblocks them.
func (e *remoteEngine) BindQuery(ctx context.Context, q Request, key string, tr *obs.Tracer) error {
	e.Engine.SetBaseContext(ctx)
	if tr != nil {
		e.Engine.SetTracer(tr)
	}
	e.inFlight = true
	for _, l := range e.links {
		if err := l.cc.Send("run", q); err != nil {
			e.failed = fmt.Errorf("announcing query to worker %s: %w", l.addr, err)
			return e.failed
		}
	}
	return nil
}

// FinishQuery collects one done acknowledgement per worker. Any worker
// error — or a worker that cannot answer within the finish timeout —
// poisons the slot: the pool rebuilds it through the provider, which
// re-evaluates the roster.
func (e *remoteEngine) FinishQuery() error {
	if !e.inFlight {
		return e.failed
	}
	e.inFlight = false
	deadline := time.Now().Add(e.finishTimeout)
	for _, l := range e.links {
		//sgvet:ignore commerr deadline-arm failure means the conn is already dead; Expect below reports it
		l.cc.SetDeadline(deadline)
		var d doneMsg
		if err := l.cc.Expect("done", &d); err != nil {
			e.failed = fmt.Errorf("worker %s lost mid-query: %w", l.addr, err)
			e.prov.roster.ObserveFailure(l.addr)
			continue
		}
		if d.Error != "" {
			e.failed = fmt.Errorf("worker %s: %s", l.addr, d.Error)
		}
		//sgvet:ignore commerr clearing a deadline on a dead conn is harmless; the next query's traffic reports it
		l.cc.SetDeadline(time.Time{})
	}
	return e.failed
}

// Reset always fails: node 0 does not own the workers' endpoints, so a
// poisoned remote engine is rebuilt through the provider instead.
func (e *remoteEngine) Reset() error {
	return fmt.Errorf("server: remote engine cannot reset in place; rebuild through the provider")
}

// Close tears the slot down: a best-effort close message lets each
// worker free its engine promptly, then the control connections and the
// data plane drop.
func (e *remoteEngine) Close() error {
	for _, l := range e.links {
		//sgvet:ignore commerr best-effort teardown: the close message is a courtesy, Close below drops the conn regardless
		l.cc.SetDeadline(time.Now().Add(2 * time.Second))
		//sgvet:ignore commerr best-effort teardown: the close message is a courtesy, Close below drops the conn regardless
		l.cc.Send("close", nil)
		l.cc.Close()
	}
	e.ep.Close()
	return e.Engine.Close()
}
