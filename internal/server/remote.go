package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// The remote provider turns a worker roster into pool slots: each Build
// forms one distributed cluster with this process as node 0 and one
// sgworker process per surviving roster entry as nodes 1..p-1, connected
// by the engine's TCP endpoints. The control protocol (comm.CtrlConn)
// carries the per-slot negotiation:
//
//	front-end → worker   build {graph, variant, fp, node, nodes, opts}
//	worker → front-end   graph-state {have}
//	front-end → worker   graph + blob        (only when the worker lacks fp)
//	worker → front-end   ready {data_addr}
//	front-end → worker   start {addrs}       (the full data-plane address list)
//	worker → front-end   up {error}          (mesh formed, engine built)
//	…per query…          run {Request} / done {error}
//	front-end → worker   close               (slot teardown)
//
// Closures cannot cross process boundaries, so queries ship as the
// canonical Request and every machine runs the same runAlgorithm
// dispatch — the SPMD contract: identical Execute sequences on every
// node, differing only in which vertex partition each owns.

// Remote engines run with recovery and checkpointing disabled: a node
// cannot re-form a ring it does not own, so the failure model is
// "poison, rebuild through the provider against the surviving roster"
// rather than in-place restart.

const (
	defaultCtrlDialTimeout = 3 * time.Second
	// defaultBuildTimeout bounds each control-protocol step of slot
	// construction (graph shipping dominates).
	defaultBuildTimeout = 2 * time.Minute
	// defaultFinishTimeout bounds waiting for per-query worker
	// acknowledgements; a worker that cannot answer by then is treated
	// as lost and the slot is rebuilt.
	defaultFinishTimeout = 30 * time.Second
)

// wireOptions is the engine configuration shipped to workers — the
// subset of core.Options that is meaningful across process boundaries.
type wireOptions struct {
	Mode         string  `json:"mode"`
	DepThreshold int     `json:"dep_threshold"`
	NumBuffers   int     `json:"num_buffers"`
	Workers      int     `json:"workers"`
	Alpha        float64 `json:"alpha"`
	StallMs      int64   `json:"stall_ms"`
}

type buildMsg struct {
	Graph   string      `json:"graph"`
	Variant string      `json:"variant"`
	FP      string      `json:"fp"` // sha256 of the serialized graph
	Node    int         `json:"node"`
	Nodes   int         `json:"nodes"`
	Opts    wireOptions `json:"opts"`
}

type graphStateMsg struct {
	Have bool `json:"have"`
}

type readyMsg struct {
	DataAddr string `json:"data_addr"`
}

type startMsg struct {
	Addrs []string `json:"addrs"`
}

type upMsg struct {
	Error string `json:"error,omitempty"`
}

type doneMsg struct {
	Error string `json:"error,omitempty"`
}

// RemoteProviderConfig configures the remote engine provider.
type RemoteProviderConfig struct {
	// Workers lists sgworker control addresses. Required non-empty.
	Workers []string
	// Options is the base engine configuration; NumNodes is derived
	// from the surviving roster, and recovery/checkpoint fields are
	// forced off (see the failure model above).
	Options core.Options
	// Tracer receives node-0 phase spans (worker-side spans stay on the
	// workers).
	Tracer *obs.Tracer
	// AdvertiseHost is the host workers dial back for node 0's data
	// plane; default 127.0.0.1.
	AdvertiseHost string
	// DialTimeout bounds each control dial; BuildTimeout each build
	// step; FinishTimeout the per-query acknowledgement wait.
	DialTimeout   time.Duration
	BuildTimeout  time.Duration
	FinishTimeout time.Duration
}

// RemoteProvider builds engines over a roster of sgworker processes.
type RemoteProvider struct {
	cfg RemoteProviderConfig

	mu    sync.Mutex
	blobs map[*graph.Graph]graphBlob // serialized-variant cache
}

type graphBlob struct {
	data []byte
	fp   string
}

// NewRemoteProvider returns a provider that schedules onto cfg.Workers.
func NewRemoteProvider(cfg RemoteProviderConfig) EngineProvider {
	if cfg.AdvertiseHost == "" {
		cfg.AdvertiseHost = "127.0.0.1"
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultCtrlDialTimeout
	}
	if cfg.BuildTimeout <= 0 {
		cfg.BuildTimeout = defaultBuildTimeout
	}
	if cfg.FinishTimeout <= 0 {
		cfg.FinishTimeout = defaultFinishTimeout
	}
	return &RemoteProvider{cfg: cfg, blobs: make(map[*graph.Graph]graphBlob)}
}

func (p *RemoteProvider) Name() string { return "remote" }

func (p *RemoteProvider) Close() {}

// blobFor serializes g once and caches the bytes + fingerprint; every
// slot build for the same variant reuses them, and workers that already
// hold the fingerprint skip the transfer entirely.
func (p *RemoteProvider) blobFor(g *graph.Graph) (graphBlob, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.blobs[g]; ok {
		return b, nil
	}
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		return graphBlob{}, fmt.Errorf("serializing graph: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	b := graphBlob{data: buf.Bytes(), fp: hex.EncodeToString(sum[:])}
	p.blobs[g] = b
	return b, nil
}

// Build dials the roster, ships the graph to workers that lack it,
// forms the data-plane ring, and returns the node-0 engine. Unreachable
// workers are skipped — the slot is built over the survivors — so a
// rebuild after a worker death re-forms the ring without it; only a
// fully unreachable roster fails the build.
func (p *RemoteProvider) Build(spec BuildSpec) (Engine, error) {
	blob, err := p.blobFor(spec.Graph)
	if err != nil {
		return nil, err
	}

	var conns []*comm.CtrlConn
	var dialErrs []error
	for _, addr := range p.cfg.Workers {
		cc, err := comm.DialCtrl(addr, p.cfg.DialTimeout)
		if err != nil {
			dialErrs = append(dialErrs, err)
			continue
		}
		conns = append(conns, cc)
	}
	if len(conns) == 0 {
		return nil, fmt.Errorf("no sgworker reachable (roster %v): %v", p.cfg.Workers, dialErrs)
	}
	closeAll := func() {
		for _, cc := range conns {
			cc.Close()
		}
	}

	n := len(conns) + 1 // node 0 is this process
	opts := p.cfg.Options
	opts.NumNodes = n
	opts.Mode = spec.Mode
	opts.Tracer = p.cfg.Tracer
	opts.Endpoints = nil
	opts.Link = nil
	opts.Fault = nil
	opts.MaxRestarts = 0
	opts.CheckpointEvery = 0
	opts.Checkpoints = nil
	opts.ResumeCheckpoints = false

	wire := wireOptions{
		Mode:         spec.Mode.String(),
		DepThreshold: opts.DepThreshold,
		NumBuffers:   opts.NumBuffers,
		Workers:      opts.Workers,
		Alpha:        opts.Alpha,
		StallMs:      opts.StallTimeout.Milliseconds(),
	}

	deadline := time.Now().Add(p.cfg.BuildTimeout)
	for _, cc := range conns {
		//sgvet:ignore commerr deadline-arm failure means the conn is already dead; the next Expect/Send on it reports the real error
		cc.SetDeadline(deadline)
	}

	// Phase 1: announce the build and ship the graph where needed.
	addrs := make([]string, n)
	for i, cc := range conns {
		node := i + 1
		msg := buildMsg{Graph: spec.GraphName, Variant: spec.Variant.String(),
			FP: blob.fp, Node: node, Nodes: n, Opts: wire}
		if err := cc.Send("build", msg); err != nil {
			closeAll()
			return nil, fmt.Errorf("worker %s: %w", cc.RemoteAddr(), err)
		}
		var gs graphStateMsg
		if err := cc.Expect("graph-state", &gs); err != nil {
			closeAll()
			return nil, fmt.Errorf("worker %s: %w", cc.RemoteAddr(), err)
		}
		if !gs.Have {
			if err := cc.Send("graph", nil); err == nil {
				err = cc.SendBlob(blob.data)
			}
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("shipping graph to worker %s: %w", cc.RemoteAddr(), err)
			}
		}
		var rd readyMsg
		if err := cc.Expect("ready", &rd); err != nil {
			closeAll()
			return nil, fmt.Errorf("worker %s: %w", cc.RemoteAddr(), err)
		}
		addrs[node] = rd.DataAddr
	}

	// Phase 2: open node 0's data listener, broadcast the address list,
	// and form the mesh. Every NewTCPEndpoint (ours and each worker's)
	// must run concurrently — the mesh blocks until complete.
	ln, err := net.Listen("tcp", net.JoinHostPort(p.cfg.AdvertiseHost, "0"))
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("node-0 data listener: %w", err)
	}
	addrs[0] = ln.Addr().String()
	for _, cc := range conns {
		if err := cc.Send("start", startMsg{Addrs: addrs}); err != nil {
			ln.Close()
			closeAll()
			return nil, fmt.Errorf("worker %s: %w", cc.RemoteAddr(), err)
		}
	}
	ep, err := comm.NewTCPEndpoint(0, ln, addrs)
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("forming data plane: %w", err)
	}
	for _, cc := range conns {
		var up upMsg
		err := cc.Expect("up", &up)
		if err == nil && up.Error != "" {
			err = fmt.Errorf("%s", up.Error)
		}
		if err != nil {
			ep.Close()
			closeAll()
			return nil, fmt.Errorf("worker %s failed to come up: %w", cc.RemoteAddr(), err)
		}
	}
	for _, cc := range conns {
		//sgvet:ignore commerr clearing a deadline on a dead conn is harmless; later traffic reports the real error
		cc.SetDeadline(time.Time{})
	}

	eng, err := core.NewDistributedEngine(spec.Graph, opts, ep)
	if err != nil {
		ep.Close()
		closeAll()
		return nil, fmt.Errorf("building node-0 engine: %w", err)
	}
	return &remoteEngine{Engine: eng, ep: ep, conns: conns, finishTimeout: p.cfg.FinishTimeout}, nil
}

// remoteEngine is node 0 of a worker ring: the embedded engine runs the
// local share of every program over the TCP endpoint, and the control
// connections keep the workers' dispatch in lockstep with ours.
//
// BindQuery/FinishQuery are called by the single request holding the
// slot lease, so the per-query fields need no locking.
type remoteEngine struct {
	core.Engine
	ep            *comm.TCPEndpoint
	conns         []*comm.CtrlConn
	finishTimeout time.Duration

	inFlight bool
	failed   error // sticky: a worker-side failure marks the slot for rebuild
}

// BindQuery announces the canonicalized request to every worker — each
// starts the same runAlgorithm dispatch — and binds the local context
// and tracer. The request context does not propagate to workers; a
// cancelled node 0 tears its endpoint down, which unblocks them.
func (e *remoteEngine) BindQuery(ctx context.Context, q Request, key string, tr *obs.Tracer) error {
	e.Engine.SetBaseContext(ctx)
	if tr != nil {
		e.Engine.SetTracer(tr)
	}
	e.inFlight = true
	for _, cc := range e.conns {
		if err := cc.Send("run", q); err != nil {
			e.failed = fmt.Errorf("announcing query to worker %s: %w", cc.RemoteAddr(), err)
			return e.failed
		}
	}
	return nil
}

// FinishQuery collects one done acknowledgement per worker. Any worker
// error — or a worker that cannot answer within the finish timeout —
// poisons the slot: the pool rebuilds it through the provider, which
// re-evaluates the roster.
func (e *remoteEngine) FinishQuery() error {
	if !e.inFlight {
		return e.failed
	}
	e.inFlight = false
	deadline := time.Now().Add(e.finishTimeout)
	for _, cc := range e.conns {
		//sgvet:ignore commerr deadline-arm failure means the conn is already dead; Expect below reports it
		cc.SetDeadline(deadline)
		var d doneMsg
		if err := cc.Expect("done", &d); err != nil {
			e.failed = fmt.Errorf("worker %s lost mid-query: %w", cc.RemoteAddr(), err)
			continue
		}
		if d.Error != "" {
			e.failed = fmt.Errorf("worker %s: %s", cc.RemoteAddr(), d.Error)
		}
		//sgvet:ignore commerr clearing a deadline on a dead conn is harmless; the next query's traffic reports it
		cc.SetDeadline(time.Time{})
	}
	return e.failed
}

// Reset always fails: node 0 does not own the workers' endpoints, so a
// poisoned remote engine is rebuilt through the provider instead.
func (e *remoteEngine) Reset() error {
	return fmt.Errorf("server: remote engine cannot reset in place; rebuild through the provider")
}

// Close tears the slot down: a best-effort close message lets each
// worker free its engine promptly, then the control connections and the
// data plane drop.
func (e *remoteEngine) Close() error {
	for _, cc := range e.conns {
		//sgvet:ignore commerr best-effort teardown: the close message is a courtesy, Close below drops the conn regardless
		cc.SetDeadline(time.Now().Add(2 * time.Second))
		//sgvet:ignore commerr best-effort teardown: the close message is a courtesy, Close below drops the conn regardless
		cc.Send("close", nil)
		cc.Close()
	}
	e.ep.Close()
	return e.Engine.Close()
}
