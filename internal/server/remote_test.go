package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// startWorkers launches n in-process worker daemons and returns their
// control addresses.
func startWorkers(t *testing.T, n int) ([]*WorkerDaemon, []string) {
	t.Helper()
	daemons := make([]*WorkerDaemon, n)
	addrs := make([]string, n)
	for i := range daemons {
		d, err := StartWorkerDaemon(WorkerConfig{Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		daemons[i] = d
		addrs[i] = d.Addr()
	}
	return daemons, addrs
}

func getResponse(t *testing.T, url string) (int, Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var r Response
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatalf("bad response body: %v\n%s", err, body)
		}
	}
	return resp.StatusCode, r, string(body)
}

// TestRemoteProviderMatchesLocal is the acceptance gate for the remote
// path: a front-end with a 2-worker roster serves BFS, SSSP and K-core
// in both engine modes over real TCP worker processes, and every result
// is identical to the in-process provider on the same graph and seed.
func TestRemoteProviderMatchesLocal(t *testing.T) {
	daemons, addrs := startWorkers(t, 2)
	s := testServer(t, Config{Workers: addrs})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, mode := range []string{"symplegraph", "gemini"} {
		for _, algo := range []string{"bfs", "sssp", "kcore"} {
			base := fmt.Sprintf("%s/query?graph=g1&algo=%s&mode=%s&no_cache=1", ts.URL, algo, mode)
			code, remote, body := getResponse(t, base+"&provider=remote")
			if code != http.StatusOK {
				t.Fatalf("%s/%s remote: %d %s", algo, mode, code, body)
			}
			code, local, body := getResponse(t, base+"&provider=local")
			if code != http.StatusOK {
				t.Fatalf("%s/%s local: %d %s", algo, mode, code, body)
			}
			if remote.Provider != "remote" || local.Provider != "local" {
				t.Fatalf("%s/%s providers: %q vs %q", algo, mode, remote.Provider, local.Provider)
			}
			if !reflect.DeepEqual(remote.Result, local.Result) {
				t.Fatalf("%s/%s diverged: remote %+v local %+v", algo, mode, remote.Result, local.Result)
			}
		}
	}

	// The roster is the default provider: an unrouted query runs remote.
	code, r, body := getResponse(t, ts.URL+"/query?graph=g1&algo=bfs&no_cache=1")
	if code != http.StatusOK || r.Provider != "remote" {
		t.Fatalf("default provider: %d %q %s", code, r.Provider, body)
	}
	if daemons[0].SlotsBuilt() == 0 || daemons[1].SlotsBuilt() == 0 {
		t.Fatalf("worker slots built: %d, %d", daemons[0].SlotsBuilt(), daemons[1].SlotsBuilt())
	}

	// Unknown providers are a client error, not a scheduling surprise.
	if code, _, _ := getResponse(t, ts.URL+"/query?graph=g1&algo=bfs&provider=cloud"); code != http.StatusBadRequest {
		t.Fatalf("unknown provider: %d", code)
	}
}

// TestWorkerLossMidQueryRebuildsSlot kills one sgworker while it is
// executing a query: the in-flight query must fail with the peer-lost
// typed error (comm.ClosedError through cliutil's classifier), the
// poisoned slot must be rebuilt against the surviving roster, and a
// re-issued query must succeed.
func TestWorkerLossMidQueryRebuildsSlot(t *testing.T) {
	daemons, addrs := startWorkers(t, 2)
	s := testServer(t, Config{Workers: addrs})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Kill worker 1 as soon as any worker has started executing.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if daemons[0].RunsStarted()+daemons[1].RunsStarted() > 0 {
				daemons[1].Close()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	code, _, body := getResponse(t, ts.URL+"/query?graph=g1&algo=pagerank&iters=400&no_cache=1&provider=remote")
	<-killed
	if code != http.StatusInternalServerError {
		t.Fatalf("mid-kill query: %d %s", code, body)
	}
	if !strings.Contains(body, "peer lost") {
		t.Fatalf("mid-kill error not classified as peer loss: %s", body)
	}

	// The slot rebuild re-evaluated the roster: the next remote query
	// runs on a ring formed over the surviving worker alone.
	code, r, body := getResponse(t, ts.URL+"/query?graph=g1&algo=bfs&no_cache=1&provider=remote")
	if code != http.StatusOK || r.Provider != "remote" {
		t.Fatalf("post-kill query: %d %q %s", code, r.Provider, body)
	}
	// And it still matches the in-process answer.
	code, local, body := getResponse(t, ts.URL+"/query?graph=g1&algo=bfs&no_cache=1&provider=local")
	if code != http.StatusOK {
		t.Fatalf("post-kill local query: %d %s", code, body)
	}
	if !reflect.DeepEqual(r.Result, local.Result) {
		t.Fatalf("post-kill results diverged: remote %+v local %+v", r.Result, local.Result)
	}
}

// TestRetryAfterClamp pins the overload-amplification fix: with an
// empty engine-latency histogram (mean 0) a shed client must still be
// told to back off at least one second, never "retry immediately".
func TestRetryAfterClamp(t *testing.T) {
	if got := retryAfter(0, 0, 1); got < time.Second {
		t.Fatalf("empty-histogram retry-after = %v, want ≥ 1s", got)
	}
	if got := retryAfter(0, 100, 0); got < time.Second {
		t.Fatalf("zero-inflight retry-after = %v, want ≥ 1s", got)
	}
	if got := retryAfter(time.Microsecond, 1, 8); got < time.Second {
		t.Fatalf("tiny-mean retry-after = %v, want ≥ 1s", got)
	}
	// A genuinely long drain estimate passes through (rounded).
	if got := retryAfter(10*time.Second, 7, 2); got < 10*time.Second {
		t.Fatalf("long drain estimate clamped down: %v", got)
	}
}
