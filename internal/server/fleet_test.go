package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// fastFleet is the probe configuration chaos tests run with: state
// transitions within tens of milliseconds instead of seconds.
func fastFleet(cfg *Config) {
	cfg.ProbeInterval = 25 * time.Millisecond
	cfg.ProbeTimeout = 250 * time.Millisecond
	cfg.ProbeDeadAfter = 2
	cfg.ProbeBackoffCap = 100 * time.Millisecond
}

// fleetOf reads the remote provider's roster snapshot out of a server.
func fleetOf(s *Server) FleetStatus {
	return s.pool.Fleets()["remote"]
}

// waitFleet polls until cond holds on the fleet snapshot or the
// deadline passes.
func waitFleet(t *testing.T, s *Server, what string, cond func(FleetStatus) bool) FleetStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		fs := fleetOf(s)
		if cond(fs) {
			return fs
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %s: %+v", what, fs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func stateOf(fs FleetStatus, addr string) WorkerState {
	for _, w := range fs.Workers {
		if w.Addr == addr {
			return w.State
		}
	}
	return -1
}

// TestFleetRosterStateMachine walks one worker through the full probe
// state machine: healthy while serving, suspect then dead after a kill,
// rejoining → healthy (with the preload hook having run) after a
// restart on the same port.
func TestFleetRosterStateMachine(t *testing.T) {
	d, err := StartWorkerDaemon(WorkerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	addr := d.Addr()

	rejoined := make(chan string, 1)
	r := newRosterManager(RosterConfig{
		Workers:       []string{addr},
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		DeadAfter:     2,
		BackoffCap:    100 * time.Millisecond,
		OnRejoin:      func(a string) error { rejoined <- a; return nil },
	})
	defer r.Close()

	wait := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("roster never reached %s: %+v", what, r.Fleet())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	wait("healthy with pong data", func() bool {
		fs := r.Fleet()
		return fs.Healthy == 1 && !fs.Degraded && fs.Workers[0].State == StateHealthy
	})
	if got := r.Usable(); len(got) != 1 || got[0] != addr {
		t.Fatalf("usable = %v", got)
	}

	// Kill: healthy → suspect → dead, and the worker leaves Usable.
	d.Close()
	wait("dead", func() bool { return stateOf(r.Fleet(), addr) == StateDead })
	if fs := r.Fleet(); !fs.Degraded || fs.Healthy != 0 {
		t.Fatalf("dead fleet not degraded: %+v", fs)
	}
	if got := r.Usable(); len(got) != 0 {
		t.Fatalf("dead worker still usable: %v", got)
	}

	// Restart on the same port: dead → rejoining (hook runs) → healthy.
	d2, err := StartWorkerDaemon(WorkerConfig{Addr: addr})
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer d2.Close()
	wait("healthy after rejoin", func() bool { return stateOf(r.Fleet(), addr) == StateHealthy })
	select {
	case a := <-rejoined:
		if a != addr {
			t.Fatalf("rejoin hook got %q, want %q", a, addr)
		}
	default:
		t.Fatal("worker rejoined without the rejoin hook running")
	}
	if r.rejoins.Load() == 0 {
		t.Fatal("rejoin counter never incremented")
	}
}

// TestFleetBuildFailureMarksWorker pins ObserveFailure: a build-path
// dial failure suspects the worker immediately instead of waiting out
// the probe interval.
func TestFleetBuildFailureMarksWorker(t *testing.T) {
	r := newRosterManager(RosterConfig{
		Workers:       []string{"127.0.0.1:1"}, // nothing listens here
		ProbeInterval: time.Hour,               // probes effectively off
		ProbeTimeout:  50 * time.Millisecond,
		DeadAfter:     2,
	})
	defer r.Close()
	// The first scheduled probe may or may not have fired yet; the
	// explicit failure reports must drive the state machine regardless.
	r.ObserveFailure("127.0.0.1:1")
	r.ObserveFailure("127.0.0.1:1")
	r.ObserveFailure("127.0.0.1:1")
	if st := stateOf(r.Fleet(), "127.0.0.1:1"); st != StateDead {
		t.Fatalf("after 3 observed failures state = %v, want %v", st, StateDead)
	}
	if len(r.Usable()) != 0 {
		t.Fatal("failed worker still usable")
	}
}

// TestFleetCapacityReject pins the slot-capacity advertisement: a
// worker at -slots capacity answers build-reject, and the provider
// degrades rather than over-subscribing it.
func TestFleetCapacityReject(t *testing.T) {
	d, err := StartWorkerDaemon(WorkerConfig{MaxSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	prov := NewRemoteProvider(RemoteProviderConfig{
		Workers:       []string{d.Addr()},
		Options:       core.Options{NumNodes: 2, Mode: core.ModeSympleGraph},
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
	}).(*RemoteProvider)
	defer prov.Close()

	spec := BuildSpec{GraphName: "g", Variant: variantDirected, Graph: testGraph(6, 1), Mode: core.ModeSympleGraph}
	first, err := prov.Build(spec)
	if err != nil {
		t.Fatalf("first build: %v", err)
	}
	defer first.Close()
	if dg, ok := first.(interface{ Degraded() bool }); !ok || dg.Degraded() {
		t.Fatalf("first build should be a full-width ring, got %T degraded=%v", first, ok)
	}

	// The only worker is at capacity: the second build must not steal
	// its slot — it degrades to an in-process engine instead.
	second, err := prov.Build(spec)
	if err != nil {
		t.Fatalf("second build: %v", err)
	}
	defer second.Close()
	if dg, ok := second.(interface{ Degraded() bool }); !ok || !dg.Degraded() {
		t.Fatalf("over-capacity build not degraded: %T", second)
	}
	if d.SlotsBuilt() != 1 {
		t.Fatalf("worker built %d slots, want 1", d.SlotsBuilt())
	}
}

// TestFleetKillRejoinServesDegradedThenFullWidth is the chaos
// acceptance test: kill an sgworker mid-query, watch the roster declare
// it dead, keep serving (degraded) on the survivor, restart the worker
// on the same port, and verify the fleet returns to healthy, the pool
// regains full width without a front-end restart, results stay
// bit-identical with the local provider, and no request 5xxes after the
// rejoin window closes.
func TestFleetKillRejoinServesDegradedThenFullWidth(t *testing.T) {
	daemons, addrs := startWorkers(t, 2)
	cfg := Config{Workers: addrs}
	fastFleet(&cfg)
	s := testServer(t, cfg)
	t.Cleanup(s.pool.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	waitFleet(t, s, "all healthy", func(fs FleetStatus) bool { return fs.Healthy == 2 })

	// Baseline: remote matches local at full width.
	code, full, body := getResponse(t, ts.URL+"/query?graph=g1&algo=bfs&no_cache=1&provider=remote")
	if code != http.StatusOK || full.Degraded {
		t.Fatalf("baseline remote: %d degraded=%v %s", code, full.Degraded, body)
	}
	_, local, _ := getResponse(t, ts.URL+"/query?graph=g1&algo=bfs&no_cache=1&provider=local")
	if !reflect.DeepEqual(full.Result, local.Result) {
		t.Fatalf("baseline diverged: %+v vs %+v", full.Result, local.Result)
	}

	// Kill worker 1 mid-query: the in-flight query fails with the
	// peer-lost classification.
	victim := addrs[1]
	startedBefore := daemons[0].RunsStarted() + daemons[1].RunsStarted()
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if daemons[0].RunsStarted()+daemons[1].RunsStarted() > startedBefore {
				daemons[1].Close()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	code, _, body = getResponse(t, ts.URL+"/query?graph=g1&algo=pagerank&iters=400&no_cache=1&provider=remote")
	<-killed
	if code != http.StatusInternalServerError {
		t.Fatalf("mid-kill query: %d %s", code, body)
	}

	// The roster declares the victim dead; queries keep flowing on the
	// survivor, flagged degraded, bit-identical to local.
	waitFleet(t, s, "victim dead", func(fs FleetStatus) bool { return stateOf(fs, victim) == StateDead })
	code, degResp, body := getResponse(t, ts.URL+"/query?graph=g1&algo=bfs&no_cache=1&provider=remote")
	if code != http.StatusOK {
		t.Fatalf("degraded query: %d %s", code, body)
	}
	if !degResp.Degraded {
		t.Fatalf("survivor-roster response not flagged degraded: %s", body)
	}
	if !reflect.DeepEqual(degResp.Result, local.Result) {
		t.Fatalf("degraded result diverged: %+v vs %+v", degResp.Result, local.Result)
	}

	// Restart the worker on the same port. The roster must walk it
	// through rejoining (preloading the graph by fingerprint) back to
	// healthy — no front-end restart.
	d2, err := StartWorkerDaemon(WorkerConfig{Addr: victim})
	if err != nil {
		t.Fatalf("restarting worker on %s: %v", victim, err)
	}
	t.Cleanup(func() { d2.Close() })
	waitFleet(t, s, "victim healthy again", func(fs FleetStatus) bool { return stateOf(fs, victim) == StateHealthy })
	if d2.GraphsCached() == 0 {
		t.Fatal("rejoined worker was not preloaded with the served graphs")
	}

	// Rejoin window closed: every query from here on must succeed, and
	// the pool must regain full width (the restarted worker hosts slots
	// again, responses stop carrying degraded).
	sawFullWidth := false
	deadline := time.Now().Add(15 * time.Second)
	for i := 0; !sawFullWidth && time.Now().Before(deadline); i++ {
		algo := []string{"bfs", "kcore", "pagerank"}[i%3]
		code, r, body := getResponse(t, fmt.Sprintf("%s/query?graph=g1&algo=%s&no_cache=1&provider=remote", ts.URL, algo))
		if code >= 500 {
			t.Fatalf("5xx after rejoin window: %d %s", code, body)
		}
		if code != http.StatusOK {
			t.Fatalf("post-rejoin query: %d %s", code, body)
		}
		if !r.Degraded {
			sawFullWidth = true
		}
	}
	if !sawFullWidth {
		t.Fatal("pool never regained full width after rejoin")
	}
	if d2.SlotsBuilt() == 0 {
		t.Fatal("restarted worker never hosted a slot")
	}

	// Full-width answers still match local bit for bit.
	code, after, body := getResponse(t, ts.URL+"/query?graph=g1&algo=bfs&no_cache=1&provider=remote")
	if code != http.StatusOK {
		t.Fatalf("final query: %d %s", code, body)
	}
	if !reflect.DeepEqual(after.Result, local.Result) {
		t.Fatalf("post-rejoin result diverged: %+v vs %+v", after.Result, local.Result)
	}
}

// TestFleetSoakKillRestartCycles runs several seeded kill/restart
// cycles back to back: after each cycle the fleet must converge back to
// healthy and keep answering correctly — the make fleet-chaos gate.
func TestFleetSoakKillRestartCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	daemons, addrs := startWorkers(t, 2)
	cfg := Config{Workers: addrs}
	fastFleet(&cfg)
	s := testServer(t, cfg)
	t.Cleanup(s.pool.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	waitFleet(t, s, "all healthy", func(fs FleetStatus) bool { return fs.Healthy == 2 })
	_, want, _ := getResponse(t, ts.URL+"/query?graph=g1&algo=bfs&no_cache=1&provider=local")

	cur := daemons[1]
	for cycle := 0; cycle < 3; cycle++ {
		victim := addrs[1]
		cur.Close()
		waitFleet(t, s, "victim dead", func(fs FleetStatus) bool { return stateOf(fs, victim) == StateDead })

		// Degraded serving stays correct while the worker is down.
		code, r, body := getResponse(t, ts.URL+"/query?graph=g1&algo=bfs&no_cache=1&provider=remote")
		if code != http.StatusOK || !reflect.DeepEqual(r.Result, want.Result) {
			t.Fatalf("cycle %d degraded: %d %s", cycle, code, body)
		}

		d, err := StartWorkerDaemon(WorkerConfig{Addr: victim})
		if err != nil {
			t.Fatalf("cycle %d restart: %v", cycle, err)
		}
		t.Cleanup(func() { d.Close() })
		cur = d
		waitFleet(t, s, "victim healthy", func(fs FleetStatus) bool { return stateOf(fs, victim) == StateHealthy })

		code, r, body = getResponse(t, ts.URL+"/query?graph=g1&algo=bfs&no_cache=1&provider=remote")
		if code != http.StatusOK || !reflect.DeepEqual(r.Result, want.Result) {
			t.Fatalf("cycle %d recovered: %d %s", cycle, code, body)
		}
	}
}
