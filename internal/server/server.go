package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/obs"
)

// Config configures the query service.
type Config struct {
	// Graphs maps serving names to loaded graphs. Required.
	Graphs map[string]*graph.Graph
	// Engine is the base engine configuration (nodes, mode defaults,
	// resilience policy) every pooled cluster is built with.
	Engine core.Options
	// MaxInflight bounds concurrently executing queries (default 2).
	MaxInflight int
	// MaxQueue bounds queries waiting for an execution slot; beyond
	// it requests are shed with 429 (default 4×MaxInflight).
	MaxQueue int
	// CacheEntries / CacheBytes bound the result cache (defaults 256
	// entries, 64 MiB; CacheEntries < 0 disables caching).
	CacheEntries int
	CacheBytes   int64
	// Retention is how many graph epochs stay resolvable for pinned
	// queries (default mutate.DefaultRetention).
	Retention int
	// CheckpointRoot, when set, persists superstep checkpoints per
	// pool slot under this directory (local provider only; remote
	// engines are rebuilt, not resumed).
	CheckpointRoot string
	// Workers lists sgworker control addresses (host:port). When
	// non-empty a remote provider is registered alongside the local one
	// and becomes the default: queries run on a TCP ring of worker
	// processes with this server as node 0. Requests pick explicitly
	// with provider=local|remote.
	Workers []string
	// AdvertiseHost is the host workers dial back for the data plane
	// (default 127.0.0.1; set to this machine's reachable address when
	// workers are remote).
	AdvertiseHost string
	// ProbeInterval / ProbeTimeout / ProbeDeadAfter / ProbeBackoffCap
	// tune the fleet health prober (see RosterConfig for defaults).
	ProbeInterval   time.Duration
	ProbeTimeout    time.Duration
	ProbeDeadAfter  int
	ProbeBackoffCap time.Duration
	// Logf receives fleet state transitions and degraded-serving
	// notices when non-nil.
	Logf func(format string, args ...any)
	// Registry receives serving metrics when non-nil.
	Registry *obs.Registry
	// Tracer is the shared engine tracer (may be nil).
	Tracer *obs.Tracer
}

// perAlgo holds one algorithm's serving histograms: time spent queued
// for admission versus time inside the engine.
type perAlgo struct {
	queue  obs.Histogram
	engine obs.Histogram
}

// flight is one in-progress uncached query that identical concurrent
// requests coalesce onto: the leader runs the engine, publishes resp,
// and closes done; followers wait on done and reuse the answer without
// passing admission.
type flight struct {
	done chan struct{}
	resp Response
	ok   bool // leader succeeded; resp is valid
}

// Server is the graph query service. Create with New, mount Handler on
// an http.Server, and call Drain on shutdown.
type Server struct {
	cfg   Config
	pool  *Pool
	adm   *admission
	cache *resultCache
	algos map[string]*perAlgo
	start time.Time

	drainMu  sync.RWMutex // orders handler registration against Drain
	draining atomic.Bool
	wg       sync.WaitGroup // in-flight /query handlers

	flightMu sync.Mutex
	flights  map[string]*flight

	total     atomic.Int64
	ok        atomic.Int64
	clientErr atomic.Int64
	serverErr atomic.Int64
	timeouts  atomic.Int64
	coalesced atomic.Int64
	mutations atomic.Int64
	mutateErr atomic.Int64

	deltaMu   sync.Mutex
	deltaAt   time.Time
	deltaBase deltaBaseline
}

// deltaBaseline is the monotonic-counter snapshot taken at the last
// /statusz?delta=1 scrape; the next scrape reports counters minus it.
type deltaBaseline struct {
	requests                               RequestCounters
	cacheHits, cacheMisses, cacheEvictions int64
	restarts                               int64
}

// New builds the service: graphs indexed, pool warm-ready, admission
// and cache sized from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 4 * cfg.MaxInflight
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	providers := []EngineProvider{NewLocalProvider(LocalProviderConfig{
		Options:        cfg.Engine,
		Tracer:         cfg.Tracer,
		CheckpointRoot: cfg.CheckpointRoot,
	})}
	def := "local"
	if len(cfg.Workers) > 0 {
		providers = append(providers, NewRemoteProvider(RemoteProviderConfig{
			Workers:       cfg.Workers,
			Options:       cfg.Engine,
			Tracer:        cfg.Tracer,
			AdvertiseHost: cfg.AdvertiseHost,
			ProbeInterval: cfg.ProbeInterval,
			ProbeTimeout:  cfg.ProbeTimeout,
			DeadAfter:     cfg.ProbeDeadAfter,
			BackoffCap:    cfg.ProbeBackoffCap,
			Logf:          cfg.Logf,
			Registry:      cfg.Registry,
		}))
		def = "remote"
	}
	pool, err := NewPool(PoolConfig{
		Graphs:          cfg.Graphs,
		Providers:       providers,
		DefaultProvider: def,
		SlotsPerEntry:   cfg.MaxInflight,
		Retention:       cfg.Retention,
		Tracer:          cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		pool:    pool,
		adm:     newAdmission(cfg.MaxInflight, cfg.MaxQueue),
		cache:   newResultCache(cfg.CacheEntries, cfg.CacheBytes),
		algos:   make(map[string]*perAlgo, len(algoNames)),
		flights: make(map[string]*flight),
		start:   time.Now(),
	}
	s.deltaAt = s.start
	for _, a := range algoNames {
		s.algos[a] = &perAlgo{}
	}
	if cfg.Registry != nil {
		s.RegisterMetrics(cfg.Registry)
	}
	return s, nil
}

// Handler returns the service's HTTP mux:
//
//	GET|POST /query    run (or serve from cache) one algorithm query
//	POST     /mutate   apply a mutation batch, bumping the graph epoch
//	GET      /statusz  serving state: counters, histograms, cache, pool
//	GET      /healthz  200 while accepting, 503 while draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/mutate", s.handleMutate)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Drain stops admitting new queries and waits for in-flight handlers to
// finish answering, up to ctx. After Drain the pool is closed; the
// process can exit without cutting off any accepted request.
func (s *Server) Drain(ctx context.Context) error {
	// The write lock fences handler registration: after it is released,
	// every accepted request is in the wait group and every new one
	// sees draining — so Wait cannot race a late Add.
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.pool.Close()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %d queries still in flight: %w",
			s.adm.running.Load()+s.adm.waiting.Load(), ctx.Err())
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		http.Error(w, "use GET or POST", http.StatusMethodNotAllowed)
		return
	}
	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.wg.Add(1)
	s.drainMu.RUnlock()
	defer s.wg.Done()
	s.total.Add(1)

	q, err := parseRequest(r)
	if err != nil {
		s.clientErr.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ge, ok := s.pool.Entry(q.Graph)
	if !ok {
		s.clientErr.Add(1)
		http.Error(w, fmt.Sprintf("unknown graph %q (serving %v)", q.Graph, s.pool.GraphNames()), http.StatusBadRequest)
		return
	}
	// Pin the version now: epoch 0 resolves to the latest snapshot,
	// and the concrete epoch rides the canonical request from here on,
	// so the cache key, the leased engine and the response all name
	// the same immutable graph even if a mutation commits mid-flight.
	st, err := ge.Resolve(q.Epoch)
	if err != nil {
		s.clientErr.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q.Epoch = st.Epoch()
	q, err = canonicalize(q, st.Info())
	if err != nil {
		s.clientErr.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if q.Provider != "" && !s.pool.HasProvider(q.Provider) {
		s.clientErr.Add(1)
		http.Error(w, fmt.Sprintf("unknown provider %q (have %v)", q.Provider, s.pool.ProviderNames()), http.StatusBadRequest)
		return
	}
	key := cacheKey(q)
	pa := s.algos[q.Algo]

	// Cache hits skip admission entirely: they cost microseconds and
	// must stay fast exactly when the engine is saturated.
	if !q.NoCache {
		if resp, ok := s.cache.Get(key); ok {
			resp.Cached = true
			resp.QueueWaitMs = 0
			s.ok.Add(1)
			writeJSON(w, http.StatusOK, resp)
			return
		}
	} else {
		s.cache.misses.Add(1)
	}

	ctx := r.Context()
	if q.DeadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(q.DeadlineMs)*time.Millisecond)
		defer cancel()
	}

	// Coalesce concurrent identical queries: one leader runs the engine,
	// followers wait for its answer and — like cache hits — never pass
	// admission, so a thundering herd on one key costs one pool slot.
	// Traced and no-cache requests opt out: their answers are
	// request-specific. Provider is part of the cache key's identity
	// problem only insofar as results are provider-independent, so
	// requests naming different providers still coalesce.
	var lead *flight
	if !q.NoCache && !q.Trace {
		s.flightMu.Lock()
		if f, ok := s.flights[key]; ok {
			s.flightMu.Unlock()
			select {
			case <-f.done:
				if f.ok {
					resp := f.resp
					resp.Coalesced = true
					resp.QueueWaitMs = 0
					s.coalesced.Add(1)
					s.ok.Add(1)
					writeJSON(w, http.StatusOK, resp)
					return
				}
				// Leader failed; run independently below — a transient
				// engine fault on the leader shouldn't fail the herd.
			case <-ctx.Done():
				s.timeouts.Add(1)
				http.Error(w, "deadline expired waiting for coalesced result", http.StatusGatewayTimeout)
				return
			}
		} else {
			lead = &flight{done: make(chan struct{})}
			s.flights[key] = lead
			s.flightMu.Unlock()
			defer func() {
				s.flightMu.Lock()
				delete(s.flights, key)
				s.flightMu.Unlock()
				close(lead.done)
			}()
		}
	}

	release, wait, err := s.adm.admit(ctx)
	if err != nil {
		if errors.Is(err, errOverloaded) {
			ra := retryAfter(pa.engine.Snapshot().Mean(), s.adm.waiting.Load(), int64(s.cfg.MaxInflight))
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(ra.Seconds())))
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		s.timeouts.Add(1)
		http.Error(w, fmt.Sprintf("deadline expired while queued (waited %v)", wait), http.StatusGatewayTimeout)
		return
	}
	defer release()
	pa.queue.Observe(wait)

	resp, status, err := s.execute(ctx, q, key)
	if err != nil {
		msg := classifyMessage(err)
		switch {
		case status == http.StatusGatewayTimeout:
			s.timeouts.Add(1)
		case status >= 500:
			s.serverErr.Add(1)
		default:
			s.clientErr.Add(1)
		}
		http.Error(w, msg, status)
		return
	}
	resp.QueueWaitMs = durMs(wait)
	if lead != nil {
		lead.resp, lead.ok = resp, true
	}
	s.ok.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// execute leases an engine from the requested provider, binds the
// request's context / tracer / checkpoint tag, runs the algorithm, and
// populates the cache.
func (s *Server) execute(ctx context.Context, q Request, key string) (Response, int, error) {
	v := variantFor(q.Algo)
	mode, _ := cliutil.ParseMode(q.Mode) // canonicalize validated it
	slot, err := s.pool.Lease(ctx, q.Provider, q.Graph, q.Epoch, v, mode)
	if err != nil {
		if ctx.Err() != nil {
			return Response{}, http.StatusGatewayTimeout, err
		}
		return Response{}, http.StatusInternalServerError, err
	}
	defer s.pool.Release(slot)

	var reqTracer *obs.Tracer
	if q.Trace {
		reqTracer = obs.NewCapturingTracer(4096)
	}
	if err := slot.eng.BindQuery(ctx, q, key, reqTracer); err != nil {
		return Response{}, http.StatusInternalServerError, err
	}

	statsBefore := slot.eng.Stats().Restarts
	engineStart := time.Now()
	result, region, err := runAlgorithm(slot.eng, q)
	engineDur := time.Since(engineStart)
	s.algos[q.Algo].engine.Observe(engineDur)
	if err != nil {
		if ctx.Err() != nil {
			return Response{}, http.StatusGatewayTimeout, ctx.Err()
		}
		return Response{}, http.StatusInternalServerError, err
	}

	degraded := false
	if dg, ok := slot.eng.(interface{ Degraded() bool }); ok {
		degraded = dg.Degraded()
	}
	// SSSP over synthesized weights reads more than it reaches: the
	// seeded weights are positional, so any topology change reshuffles
	// weights on unrelated edges. Its read-set is the whole graph.
	if q.Algo == "sssp" {
		if info, ok := s.pool.Info(q.Graph); ok && !info.weighted {
			region = mutate.FullRegion()
		}
	}

	run := slot.eng.Stats().Totals
	resp := Response{
		Graph:    q.Graph,
		Algo:     q.Algo,
		Mode:     q.Mode,
		Epoch:    q.Epoch,
		Provider: slot.provider,
		Degraded: degraded,
		Result:   result,
		Engine: EngineStats{
			EdgesTraversed:  run.EdgesTraversed,
			UpdateBytes:     run.UpdateBytes,
			DependencyBytes: run.DependencyBytes,
			ControlBytes:    run.ControlBytes,
			Restarts:        slot.eng.Stats().Restarts - statsBefore,
		},
		EngineMs: durMs(engineDur),
	}
	if reqTracer != nil {
		resp.Trace = traceSpans(reqTracer)
	}

	// Cache the canonical answer without request-specific fields; the
	// marshaled size feeds the byte budget. Degraded is a property of
	// the serving moment, not the answer — a cache hit after the fleet
	// recovers must not claim degradation.
	cached := resp
	cached.Trace = nil
	cached.QueueWaitMs = 0
	cached.Degraded = false
	if !q.NoCache {
		if b, err := json.Marshal(cached); err == nil {
			s.cache.Put(key, cached, int64(len(b)), q, region)
		}
	}
	return resp, http.StatusOK, nil
}

// classifyMessage renders an engine failure with the typed-error
// context (blocked node, phase, awaited peer) instead of a flat %v.
func classifyMessage(err error) string {
	_, msg := cliutil.ErrorReport(err)
	return msg
}

func traceSpans(tr *obs.Tracer) []TraceSpan {
	sums := tr.Summaries()
	spans := make([]TraceSpan, 0, len(sums))
	for _, ps := range sums {
		spans = append(spans, TraceSpan{
			Node:  ps.Node,
			Phase: ps.Phase.String(),
			Count: ps.Hist.Count,
			P50Ms: durMs(ps.Hist.P50),
			P95Ms: durMs(ps.Hist.P95),
			MaxMs: durMs(ps.Hist.Max),
		})
	}
	return spans
}

// histJSON summarizes a histogram for /statusz.
type histJSON struct {
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

func histToJSON(h *obs.Histogram) histJSON {
	s := h.Snapshot()
	return histJSON{
		Count:  s.Count,
		P50Ms:  durMs(s.P50),
		P95Ms:  durMs(s.P95),
		P99Ms:  durMs(s.P99),
		MaxMs:  durMs(s.Max),
		MeanMs: durMs(s.Mean()),
	}
}

// Status is the /statusz document.
type Status struct {
	UptimeSec float64              `json:"uptime_sec"`
	Draining  bool                 `json:"draining"`
	Graphs    map[string]GraphInfo `json:"graphs"`
	Requests  RequestCounters      `json:"requests"`
	Cache     CacheCounters        `json:"cache"`
	Pool      PoolCounters         `json:"pool"`
	Admission AdmissionCounters    `json:"admission"`
	Algos     map[string]AlgoStats `json:"algos"`
	// Epochs reports each graph's version chain: current epoch and
	// fingerprint, retained window, commit counters, and the
	// incremental-vs-scratch recompute time split.
	Epochs map[string]EpochStatus `json:"epochs"`
	// Mutations counts /mutate commits (and rejected batches).
	Mutations MutationCounters `json:"mutations"`
	// Fleet reports worker health per provider that tracks a roster
	// (the remote provider); absent for purely local serving.
	Fleet map[string]FleetStatus `json:"fleet,omitempty"`
}

type MutationCounters struct {
	Applied int64 `json:"applied"`
	Errors  int64 `json:"errors"`
	// CachePromoted/CacheDropped count cache entries carried across
	// epochs versus invalidated by mutation regions.
	CachePromoted int64 `json:"cache_promoted"`
	CacheDropped  int64 `json:"cache_dropped"`
}

type GraphInfo struct {
	Vertices int   `json:"vertices"`
	Edges    int64 `json:"edges"`
}

type RequestCounters struct {
	Total        int64 `json:"total"`
	OK           int64 `json:"ok"`
	ClientErrors int64 `json:"client_errors"`
	ServerErrors int64 `json:"server_errors"`
	Timeouts     int64 `json:"timeouts"`
	Rejected     int64 `json:"rejected"`
	Coalesced    int64 `json:"coalesced"`
}

// sub returns the counter deltas since base; every field is monotonic.
func (c RequestCounters) sub(base RequestCounters) RequestCounters {
	return RequestCounters{
		Total:        c.Total - base.Total,
		OK:           c.OK - base.OK,
		ClientErrors: c.ClientErrors - base.ClientErrors,
		ServerErrors: c.ServerErrors - base.ServerErrors,
		Timeouts:     c.Timeouts - base.Timeouts,
		Rejected:     c.Rejected - base.Rejected,
		Coalesced:    c.Coalesced - base.Coalesced,
	}
}

type CacheCounters struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	HitRate   float64 `json:"hit_rate"`
}

type PoolCounters struct {
	Clusters        int            `json:"clusters"`
	Restarts        int64          `json:"restarts"`
	Providers       map[string]int `json:"providers"` // built slots per provider
	DefaultProvider string         `json:"default_provider"`
}

type AdmissionCounters struct {
	Running     int64 `json:"running"`
	Waiting     int64 `json:"waiting"`
	MaxInflight int   `json:"max_inflight"`
	MaxQueue    int   `json:"max_queue"`
}

type AlgoStats struct {
	Queue  histJSON `json:"queue"`
	Engine histJSON `json:"engine"`
}

// StatusSnapshot assembles the current serving state.
func (s *Server) StatusSnapshot() Status {
	st := Status{
		UptimeSec: time.Since(s.start).Seconds(),
		Draining:  s.draining.Load(),
		Graphs:    make(map[string]GraphInfo),
		Requests: RequestCounters{
			Total:        s.total.Load(),
			OK:           s.ok.Load(),
			ClientErrors: s.clientErr.Load(),
			ServerErrors: s.serverErr.Load(),
			Timeouts:     s.timeouts.Load(),
			Rejected:     s.adm.rejected.Load(),
			Coalesced:    s.coalesced.Load(),
		},
		Cache: CacheCounters{
			Hits:      s.cache.hits.Load(),
			Misses:    s.cache.misses.Load(),
			Evictions: s.cache.evictions.Load(),
			Entries:   s.cache.Len(),
			Bytes:     s.cache.Bytes(),
		},
		Pool: PoolCounters{
			Clusters:        s.pool.Slots(),
			Restarts:        s.pool.Restarts(),
			Providers:       s.pool.ProviderSlots(),
			DefaultProvider: s.pool.DefaultProvider(),
		},
		Admission: AdmissionCounters{
			Running:     s.adm.running.Load(),
			Waiting:     s.adm.waiting.Load(),
			MaxInflight: s.cfg.MaxInflight,
			MaxQueue:    s.cfg.MaxQueue,
		},
		Algos:  make(map[string]AlgoStats),
		Epochs: make(map[string]EpochStatus),
		Mutations: MutationCounters{
			Applied:       s.mutations.Load(),
			Errors:        s.mutateErr.Load(),
			CachePromoted: s.cache.promoted.Load(),
			CacheDropped:  s.cache.dropped.Load(),
		},
	}
	if lookups := st.Cache.Hits + st.Cache.Misses; lookups > 0 {
		st.Cache.HitRate = float64(st.Cache.Hits) / float64(lookups)
	}
	if fleets := s.pool.Fleets(); len(fleets) > 0 {
		st.Fleet = fleets
	}
	for _, n := range s.pool.GraphNames() { // already sorted
		info, _ := s.pool.Info(n)
		st.Graphs[n] = GraphInfo{Vertices: info.vertices, Edges: info.edges}
		if ge, ok := s.pool.Entry(n); ok {
			st.Epochs[n] = ge.epochStatus()
		}
	}
	for name, pa := range s.algos {
		if pa.queue.Snapshot().Count == 0 && pa.engine.Snapshot().Count == 0 {
			continue
		}
		st.Algos[name] = AlgoStats{Queue: histToJSON(&pa.queue), Engine: histToJSON(&pa.engine)}
	}
	return st
}

// DeltaStatus is the /statusz?delta=1 document: monotonic counters
// since the previous delta scrape, so a scraper reads rates directly
// instead of subtracting successive absolute snapshots.
type DeltaStatus struct {
	WindowSec float64         `json:"window_sec"`
	Requests  RequestCounters `json:"requests"`
	Cache     CacheDelta      `json:"cache"`
	Pool      PoolDelta       `json:"pool"`
}

type CacheDelta struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

type PoolDelta struct {
	Restarts int64 `json:"restarts"`
}

// DeltaSnapshot reports counters accumulated since the last
// DeltaSnapshot call (or server start) and resets the baseline.
func (s *Server) DeltaSnapshot() DeltaStatus {
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	now := time.Now()
	cur := deltaBaseline{
		requests: RequestCounters{
			Total:        s.total.Load(),
			OK:           s.ok.Load(),
			ClientErrors: s.clientErr.Load(),
			ServerErrors: s.serverErr.Load(),
			Timeouts:     s.timeouts.Load(),
			Rejected:     s.adm.rejected.Load(),
			Coalesced:    s.coalesced.Load(),
		},
		cacheHits:      s.cache.hits.Load(),
		cacheMisses:    s.cache.misses.Load(),
		cacheEvictions: s.cache.evictions.Load(),
		restarts:       s.pool.Restarts(),
	}
	d := DeltaStatus{
		WindowSec: now.Sub(s.deltaAt).Seconds(),
		Requests:  cur.requests.sub(s.deltaBase.requests),
		Cache: CacheDelta{
			Hits:      cur.cacheHits - s.deltaBase.cacheHits,
			Misses:    cur.cacheMisses - s.deltaBase.cacheMisses,
			Evictions: cur.cacheEvictions - s.deltaBase.cacheEvictions,
		},
		Pool: PoolDelta{Restarts: cur.restarts - s.deltaBase.restarts},
	}
	s.deltaBase = cur
	s.deltaAt = now
	return d
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if v := r.URL.Query().Get("delta"); v == "1" || v == "true" {
		writeJSON(w, http.StatusOK, s.DeltaSnapshot())
		return
	}
	writeJSON(w, http.StatusOK, s.StatusSnapshot())
}

// RegisterMetrics exports serving counters into reg under server.*.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterInt("server.requests.total", s.total.Load)
	reg.RegisterInt("server.requests.ok", s.ok.Load)
	reg.RegisterInt("server.requests.client_errors", s.clientErr.Load)
	reg.RegisterInt("server.requests.server_errors", s.serverErr.Load)
	reg.RegisterInt("server.requests.timeouts", s.timeouts.Load)
	reg.RegisterInt("server.requests.rejected", s.adm.rejected.Load)
	reg.RegisterInt("server.requests.coalesced", s.coalesced.Load)
	reg.RegisterInt("server.mutations.applied", s.mutations.Load)
	reg.RegisterInt("server.mutations.errors", s.mutateErr.Load)
	reg.RegisterInt("server.pool.clusters", func() int64 { return int64(s.pool.Slots()) })
	reg.RegisterInt("server.pool.restarts", s.pool.Restarts)
	s.cache.RegisterMetrics(reg)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
