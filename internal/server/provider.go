package server

import (
	"context"
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Engine is one schedulable query engine as the pool sees it: the full
// core.Engine surface plus the per-request binding hooks. The pool
// leases Engines without knowing whether they are in-process clusters
// or front-ends to a ring of worker processes.
type Engine interface {
	core.Engine

	// BindQuery prepares the engine for one leased request: the
	// request's context governs the run, a capturing tracer replaces
	// the shared one when non-nil, and — for implementations that
	// schedule remote workers — the canonicalized query is announced to
	// every machine so the SPMD programs line up. An error means the
	// engine could not be prepared; the pool treats it like a poisoned
	// run.
	BindQuery(ctx context.Context, q Request, key string, tr *obs.Tracer) error

	// FinishQuery completes the request's engine-side protocol on
	// release (collecting worker acknowledgements, surfacing failures
	// the local run did not observe). A non-nil error marks the engine
	// unfit for reuse; the pool resets or rebuilds it.
	FinishQuery() error
}

// BuildSpec describes one engine the pool asks a provider to build.
// It is assembled by the snapshot accessor, so the graph, epoch and
// fingerprints are mutually consistent by construction; providers
// reading spec.Graph are epoch-pinned for free.
type BuildSpec struct {
	// GraphName is the serving name; Graph the (variant-derived) graph
	// the engine must load.
	GraphName string
	Variant   graphVariant
	Graph     *graph.Graph
	// Mode is the engine mode this slot serves.
	Mode core.Mode
	// SlotID is the pool-unique slot number, for checkpoint roots and
	// diagnostics.
	SlotID int

	// Epoch identifies the graph version; FP names this (epoch,
	// variant) for worker-side caching.
	Epoch uint64
	FP    string
	// Blob lazily serializes Graph (memoized per epoch/variant) for
	// full-graph shipping; delta shipping never calls it.
	Blob func() ([]byte, string, error)
	// ParentFP/DeltaBytes, when set, offer the cheap ship path: a
	// worker holding ParentFP applies the canonical delta instead of
	// receiving the whole graph. DeltaChained marks deltas whose
	// result fingerprint is ChainFingerprint(ParentFP, DeltaBytes),
	// which the worker verifies before trusting the frame.
	ParentFP     string
	DeltaBytes   []byte
	DeltaChained bool
}

// EngineProvider builds warm engines for the pool. The provider owns
// everything behind the Engine surface — where the machines live, how
// the graph reaches them, what happens when one dies. Build is called
// lazily (first lease of each pool entry) and again whenever a poisoned
// slot could not be reset in place, so a provider backed by fallible
// workers re-evaluates its roster on every build.
type EngineProvider interface {
	// Name identifies the provider in pool keys, request routing and
	// /statusz ("local", "remote").
	Name() string
	// Build constructs one warm engine for spec.
	Build(spec BuildSpec) (Engine, error)
	// Close releases provider-held resources once the pool is done.
	Close()
}

// LocalProviderConfig configures the in-process provider.
type LocalProviderConfig struct {
	// Options is the base engine configuration every cluster is built
	// with; Mode, Tracer and Checkpoints are managed per slot.
	Options core.Options
	// Tracer is the shared tracer slots record into when no
	// per-request capture is active.
	Tracer *obs.Tracer
	// CheckpointRoot, when set, gives each slot a file-backed
	// checkpoint store under CheckpointRoot/slot-<id>.
	CheckpointRoot string
}

// localProvider builds in-process simulated clusters — the single-node
// deployment every sgserve has served since PR 3, now behind the
// provider boundary.
type localProvider struct {
	cfg LocalProviderConfig
}

// NewLocalProvider returns the in-process engine provider.
func NewLocalProvider(cfg LocalProviderConfig) EngineProvider {
	return &localProvider{cfg: cfg}
}

func (p *localProvider) Name() string { return "local" }

func (p *localProvider) Close() {}

func (p *localProvider) Build(spec BuildSpec) (Engine, error) {
	opts := p.cfg.Options
	opts.Mode = spec.Mode
	opts.Tracer = p.cfg.Tracer
	var fs *core.FileCheckpointStore
	if p.cfg.CheckpointRoot != "" {
		var err error
		fs, err = core.NewFileCheckpointStore(filepath.Join(p.cfg.CheckpointRoot, fmt.Sprintf("slot-%d", spec.SlotID)))
		if err != nil {
			return nil, fmt.Errorf("checkpoint store for slot %d: %w", spec.SlotID, err)
		}
		opts.Checkpoints = fs
		// The slot store is cleared by tag (one query's snapshots never
		// leak into another), not at program start, so a restarted
		// daemon re-running the same query resumes it.
		opts.ResumeCheckpoints = true
	}
	eng, err := core.NewEngine(spec.Graph, opts)
	if err != nil {
		return nil, fmt.Errorf("building cluster for %s/%v: %w", spec.GraphName, spec.Variant, err)
	}
	return &localEngine{Engine: eng, fs: fs}, nil
}

// localEngine decorates an in-process cluster with the per-request
// binding the pool expects: context, tracer, and the checkpoint-store
// tag that keeps one query's snapshots from leaking into the next.
type localEngine struct {
	core.Engine
	fs *core.FileCheckpointStore // nil when checkpointing is in-memory
}

func (e *localEngine) BindQuery(ctx context.Context, q Request, key string, tr *obs.Tracer) error {
	e.SetBaseContext(ctx)
	if tr != nil {
		e.SetTracer(tr)
	}
	if e.fs != nil {
		// Re-tag with the query key: wipes snapshots of a different
		// previous query, keeps them when the same query is resumed.
		e.fs.SetTag(key)
	}
	return nil
}

func (e *localEngine) FinishQuery() error { return nil }
