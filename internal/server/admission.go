package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errOverloaded is returned by admit when the waiting queue is full;
// the handler maps it to 429 with a Retry-After estimate.
var errOverloaded = errors.New("server overloaded: admission queue full")

// admission is the bounded two-stage gate in front of the engine:
// at most maxInflight queries execute concurrently, at most maxQueue
// more wait for a slot, and everything beyond that is rejected
// immediately so load shedding happens at the door instead of as
// unbounded goroutine pile-up.
type admission struct {
	queue    chan struct{} // tokens for waiting positions
	inflight chan struct{} // tokens for executing queries
	waiting  atomic.Int64
	running  atomic.Int64
	rejected atomic.Int64
}

func newAdmission(maxInflight, maxQueue int) *admission {
	if maxInflight <= 0 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		queue:    make(chan struct{}, maxQueue),
		inflight: make(chan struct{}, maxInflight),
	}
}

// admit tries to enter the gate: an immediate errOverloaded when the
// waiting queue is full, ctx.Err() when the request's deadline fires
// while queued, otherwise a release func and the time spent waiting.
func (a *admission) admit(ctx context.Context) (release func(), wait time.Duration, err error) {
	start := time.Now()
	// Fast path: an execution slot is free, skip the queue entirely.
	select {
	case a.inflight <- struct{}{}:
		a.running.Add(1)
		return a.releaseFunc(), time.Since(start), nil
	default:
	}
	// Claim a waiting position or shed the request.
	select {
	case a.queue <- struct{}{}:
	default:
		a.rejected.Add(1)
		return nil, 0, errOverloaded
	}
	a.waiting.Add(1)
	defer func() {
		a.waiting.Add(-1)
		//sgvet:ignore ctxblock returns this goroutine's own token to a buffered channel it filled; capacity guarantees room, so the receive never blocks
		<-a.queue
	}()
	select {
	case a.inflight <- struct{}{}:
		a.running.Add(1)
		return a.releaseFunc(), time.Since(start), nil
	case <-ctx.Done():
		return nil, time.Since(start), ctx.Err()
	}
}

func (a *admission) releaseFunc() func() {
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			a.running.Add(-1)
			//sgvet:ignore ctxblock returns this goroutine's own token to a buffered channel it filled; capacity guarantees room, so the receive never blocks
			<-a.inflight
		}
	}
}

// retryAfter estimates how long a shed client should back off: the
// queue's expected drain time given the mean engine latency, never less
// than a second.
func retryAfter(meanEngine time.Duration, waiting, maxInflight int64) time.Duration {
	if meanEngine <= 0 {
		meanEngine = 100 * time.Millisecond
	}
	if maxInflight < 1 {
		maxInflight = 1
	}
	est := meanEngine * time.Duration(waiting+1) / time.Duration(maxInflight)
	if est < time.Second {
		return time.Second
	}
	return est.Round(time.Second)
}
