package server

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// graphVariant selects which derived form of a loaded graph an
// algorithm runs on. Variants are built once per graph, on first use,
// and shared by every pool slot.
type graphVariant int

const (
	variantDirected   graphVariant = iota // the graph as loaded
	variantUndirected                     // Symmetrize(g), for mis/kcore/kmeans
	variantWeighted                       // RandomWeights(g, 7) when unweighted, for sssp
)

func (v graphVariant) String() string {
	switch v {
	case variantUndirected:
		return "undirected"
	case variantWeighted:
		return "weighted"
	default:
		return "directed"
	}
}

// graphInfo carries the graph-derived defaults canonicalization needs.
type graphInfo struct {
	vertices    int
	edges       int64
	defaultRoot int
}

// graphEntry is one loaded graph with its lazily built variants.
type graphEntry struct {
	name string
	base *graph.Graph
	info graphInfo

	mu       sync.Mutex
	variants map[graphVariant]*graph.Graph
}

func (e *graphEntry) variant(v graphVariant) *graph.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	if g, ok := e.variants[v]; ok {
		return g
	}
	g := e.base
	switch v {
	case variantUndirected:
		g = graph.Symmetrize(e.base)
	case variantWeighted:
		if !e.base.Weighted() {
			g = graph.RandomWeights(e.base, 7)
		}
	}
	e.variants[v] = g
	return g
}

// slot is one leased unit: a warm cluster plus its private checkpoint
// store (file-backed when the pool has a checkpoint root).
type slot struct {
	c  *core.Cluster
	fs *core.FileCheckpointStore // nil when checkpointing is in-memory
	id int
}

// poolEntry is the free list for one (graph, variant, mode) triple. Clusters
// are built lazily — the first lease pays partition cost, later leases
// reuse warm slots — up to the pool's per-entry cap.
type poolEntry struct {
	free  chan *slot
	mu    sync.Mutex
	built int
}

// PoolConfig configures the cluster pool.
type PoolConfig struct {
	// Graphs maps serving names to loaded graphs.
	Graphs map[string]*graph.Graph
	// Engine is the base engine configuration every cluster is built
	// with; Checkpoints/ResumeCheckpoints/Tracer are managed per slot.
	Engine core.Options
	// SlotsPerEntry caps concurrent clusters per (graph, variant).
	SlotsPerEntry int
	// CheckpointRoot, when set, gives each slot a file-backed
	// checkpoint store under CheckpointRoot/slot-<id>, so an engine
	// recovery — or a restarted daemon re-issued the same query —
	// resumes from the last committed superstep.
	CheckpointRoot string
	// Tracer is the shared tracer slots record into when no
	// per-request capture is active.
	Tracer *obs.Tracer
}

// Pool owns the warm clusters the server leases per request.
type Pool struct {
	cfg     PoolConfig
	graphs  map[string]*graphEntry
	mu      sync.Mutex
	entries map[string]*poolEntry
	slots   []*slot // every slot ever built, for stats aggregation
	nextID  int
}

// NewPool validates the configuration and indexes the graphs. Clusters
// are not built yet; the first query for each (graph, variant) pays
// that cost.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if len(cfg.Graphs) == 0 {
		return nil, fmt.Errorf("server: pool needs at least one graph")
	}
	if cfg.SlotsPerEntry <= 0 {
		cfg.SlotsPerEntry = 1
	}
	p := &Pool{
		cfg:     cfg,
		graphs:  make(map[string]*graphEntry, len(cfg.Graphs)),
		entries: make(map[string]*poolEntry),
	}
	for name, g := range cfg.Graphs {
		root, _ := graph.LargestOutDegreeVertex(g)
		p.graphs[name] = &graphEntry{
			name: name,
			base: g,
			info: graphInfo{
				vertices:    g.NumVertices(),
				edges:       g.NumEdges(),
				defaultRoot: int(root),
			},
			variants: map[graphVariant]*graph.Graph{variantDirected: g},
		}
	}
	return p, nil
}

// Info returns the graph-derived defaults for name.
func (p *Pool) Info(name string) (graphInfo, bool) {
	e, ok := p.graphs[name]
	if !ok {
		return graphInfo{}, false
	}
	return e.info, true
}

// GraphNames lists the served graphs (unordered).
func (p *Pool) GraphNames() []string {
	names := make([]string, 0, len(p.graphs))
	for n := range p.graphs {
		names = append(names, n)
	}
	return names
}

func (p *Pool) entry(graphName string, v graphVariant, mode core.Mode) *poolEntry {
	key := fmt.Sprintf("%s/%v/%v", graphName, v, mode)
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[key]
	if !ok {
		e = &poolEntry{free: make(chan *slot, p.cfg.SlotsPerEntry)}
		p.entries[key] = e
	}
	return e
}

// Lease hands out a warm cluster for (graphName, variant), building one
// if the entry has spare capacity, otherwise blocking until a slot is
// released or ctx is done.
func (p *Pool) Lease(ctx context.Context, graphName string, v graphVariant, mode core.Mode) (*slot, error) {
	ge, ok := p.graphs[graphName]
	if !ok {
		return nil, fmt.Errorf("unknown graph %q", graphName)
	}
	e := p.entry(graphName, v, mode)

	select {
	case s := <-e.free:
		return s, nil
	default:
	}
	e.mu.Lock()
	if e.built < p.cfg.SlotsPerEntry {
		e.built++
		e.mu.Unlock()
		s, err := p.build(ge, v, mode)
		if err != nil {
			e.mu.Lock()
			e.built--
			e.mu.Unlock()
			return nil, err
		}
		return s, nil
	}
	e.mu.Unlock()
	select {
	case s := <-e.free:
		return s, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (p *Pool) build(ge *graphEntry, v graphVariant, mode core.Mode) (*slot, error) {
	p.mu.Lock()
	id := p.nextID
	p.nextID++
	p.mu.Unlock()

	opts := p.cfg.Engine
	opts.Mode = mode
	opts.Tracer = p.cfg.Tracer
	var fs *core.FileCheckpointStore
	if p.cfg.CheckpointRoot != "" {
		var err error
		fs, err = core.NewFileCheckpointStore(filepath.Join(p.cfg.CheckpointRoot, fmt.Sprintf("slot-%d", id)))
		if err != nil {
			return nil, fmt.Errorf("checkpoint store for slot %d: %w", id, err)
		}
		opts.Checkpoints = fs
		// The slot store is cleared by tag (one query's snapshots never
		// leak into another), not at program start, so a restarted
		// daemon re-running the same query resumes it.
		opts.ResumeCheckpoints = true
	}
	c, err := core.NewCluster(ge.variant(v), opts)
	if err != nil {
		return nil, fmt.Errorf("building cluster for %s/%v: %w", ge.name, v, err)
	}
	s := &slot{c: c, fs: fs, id: id}
	p.mu.Lock()
	p.slots = append(p.slots, s)
	p.mu.Unlock()
	return s, nil
}

// BindQuery prepares the slot for one request: the request context
// governs the run, a capturing tracer replaces the shared one when the
// request asked for a trace, and the checkpoint store is re-tagged with
// the query key — wiping snapshots of a different previous query,
// keeping them when the same query is being resumed.
func (s *slot) BindQuery(ctx context.Context, key string, tr *obs.Tracer) {
	s.c.SetBaseContext(ctx)
	if tr != nil {
		s.c.SetTracer(tr)
	}
	if s.fs != nil {
		s.fs.SetTag(key)
	}
}

// Release returns the slot to its free list. A poisoned cluster (failed
// run past its restart budget, cancelled deadline) is Reset first; if
// the Reset itself fails the cluster is rebuilt from scratch, so the
// pool never recycles a broken slot and a chaos failure never shrinks
// serving capacity.
func (p *Pool) Release(s *slot, graphName string, v graphVariant, mode core.Mode) {
	s.c.SetBaseContext(nil)
	s.c.SetTracer(p.cfg.Tracer)
	if s.c.Poisoned() != nil {
		if err := s.c.Reset(); err != nil {
			s.c.Close()
			if ge, ok := p.graphs[graphName]; ok {
				if fresh, berr := p.build(ge, v, mode); berr == nil {
					s = fresh
				} else {
					// Capacity shrinks by one slot; the next lease
					// with spare room rebuilds it.
					e := p.entry(graphName, v, mode)
					e.mu.Lock()
					e.built--
					e.mu.Unlock()
					return
				}
			}
		}
	}
	e := p.entry(graphName, v, mode)
	select {
	case e.free <- s:
	default:
		// Free list full: a replacement was built while this slot was
		// out (can't happen in the current accounting, but never block
		// a release).
		s.c.Close()
	}
}

// Close tears down every idle cluster. Leased slots are abandoned; call
// only after the server has drained.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.entries {
		for {
			select {
			case s := <-e.free:
				s.c.Close()
			default:
				goto next
			}
		}
	next:
	}
}

// Restarts sums recovery restarts across every cluster the pool ever
// built — the serving-level view of how much chaos the resilience loop
// absorbed. Reading a leased cluster's stats mid-run is safe.
func (p *Pool) Restarts() int64 {
	p.mu.Lock()
	slots := append([]*slot(nil), p.slots...)
	p.mu.Unlock()
	var total int64
	for _, s := range slots {
		total += s.c.Stats().Restarts
	}
	return total
}

// Slots reports how many clusters the pool has built.
func (p *Pool) Slots() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.slots)
}
