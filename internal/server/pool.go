package server

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// graphVariant selects which derived form of a loaded graph an
// algorithm runs on. Variants are built once per epoch, on first use,
// and shared by every pool slot at that epoch.
type graphVariant int

const (
	variantDirected   graphVariant = iota // the graph as loaded
	variantUndirected                     // Symmetrize(g), for mis/kcore/kmeans
	variantWeighted                       // RandomWeights(g, 7) when unweighted, for sssp
)

func (v graphVariant) String() string {
	switch v {
	case variantUndirected:
		return "undirected"
	case variantWeighted:
		return "weighted"
	default:
		return "directed"
	}
}

// graphInfo carries the graph-derived defaults canonicalization needs,
// per epoch.
type graphInfo struct {
	vertices    int
	edges       int64
	defaultRoot int
	weighted    bool // the base graph carries real weights
	epoch       uint64
}

// slot is one leased unit: a warm engine plus the coordinates it was
// built for, so Release can route it home without the caller re-stating
// them.
type slot struct {
	eng      Engine
	provider string
	graph    string
	epoch    uint64
	variant  graphVariant
	mode     core.Mode
	id       int
}

// entryKey identifies one free list: slots are keyed by epoch, so a
// commit naturally drains old-epoch entries while in-flight queries
// finish on the version they started on.
type entryKey struct {
	provider string
	graph    string
	epoch    uint64
	variant  graphVariant
	mode     core.Mode
}

// poolEntry is the free list for one (provider, graph, epoch, variant,
// mode) tuple. Engines are built lazily — the first lease pays
// partition (and, for remote providers, graph-shipping) cost, later
// leases reuse warm slots — up to the pool's per-entry cap.
type poolEntry struct {
	free  chan *slot
	mu    sync.Mutex
	built int
}

// PoolConfig configures the engine pool.
type PoolConfig struct {
	// Graphs maps serving names to loaded graphs (each becomes the
	// root epoch of a version chain).
	Graphs map[string]*graph.Graph
	// Providers lists the engine providers slots can be built on,
	// keyed into the pool by Name(). At least one is required.
	Providers []EngineProvider
	// DefaultProvider names the provider used when a request does not
	// pick one; empty selects the first entry of Providers.
	DefaultProvider string
	// SlotsPerEntry caps concurrent engines per (provider, graph,
	// epoch, variant, mode).
	SlotsPerEntry int
	// Retention is how many epochs each graph keeps resolvable
	// (default mutate.DefaultRetention).
	Retention int
	// Tracer is the shared tracer slots record into when no
	// per-request capture is active.
	Tracer *obs.Tracer
}

// Pool owns the warm engines the server leases per request. Slots from
// different providers coexist: the pool key is (provider, graph, epoch,
// variant, mode), so an in-process cluster and a remote worker ring for
// the same graph are separate free lists, and two epochs of one graph
// never share an engine.
type Pool struct {
	cfg       PoolConfig
	providers map[string]EngineProvider
	defName   string
	graphs    map[string]*graphEntry
	mu        sync.Mutex
	entries   map[entryKey]*poolEntry
	slots     []*slot // every slot ever built, for stats aggregation
	nextID    int
}

// NewPool validates the configuration and indexes the graphs and
// providers. Engines are not built yet; the first query for each
// (provider, graph, epoch, variant) pays that cost.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if len(cfg.Graphs) == 0 {
		return nil, fmt.Errorf("server: pool needs at least one graph")
	}
	if len(cfg.Providers) == 0 {
		return nil, fmt.Errorf("server: pool needs at least one engine provider")
	}
	if cfg.SlotsPerEntry <= 0 {
		cfg.SlotsPerEntry = 1
	}
	p := &Pool{
		cfg:       cfg,
		providers: make(map[string]EngineProvider, len(cfg.Providers)),
		graphs:    make(map[string]*graphEntry, len(cfg.Graphs)),
		entries:   make(map[entryKey]*poolEntry),
	}
	for _, prov := range cfg.Providers {
		if _, dup := p.providers[prov.Name()]; dup {
			return nil, fmt.Errorf("server: duplicate engine provider %q", prov.Name())
		}
		p.providers[prov.Name()] = prov
	}
	p.defName = cfg.DefaultProvider
	if p.defName == "" {
		p.defName = cfg.Providers[0].Name()
	}
	if _, ok := p.providers[p.defName]; !ok {
		return nil, fmt.Errorf("server: default provider %q not in provider list", p.defName)
	}
	for name, g := range cfg.Graphs {
		ge, err := newGraphEntry(name, g, cfg.Retention)
		if err != nil {
			return nil, err
		}
		p.graphs[name] = ge
	}
	return p, nil
}

// Entry returns the version chain for a served graph.
func (p *Pool) Entry(name string) (*graphEntry, bool) {
	e, ok := p.graphs[name]
	return e, ok
}

// Info returns the latest epoch's graph-derived defaults for name.
func (p *Pool) Info(name string) (graphInfo, bool) {
	e, ok := p.graphs[name]
	if !ok {
		return graphInfo{}, false
	}
	return e.Latest().Info(), true
}

// GraphNames lists the served graphs in sorted order, so status
// snapshots and logs render identically across calls.
func (p *Pool) GraphNames() []string {
	names := make([]string, 0, len(p.graphs))
	for n := range p.graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultProvider names the provider used when a request picks none.
func (p *Pool) DefaultProvider() string { return p.defName }

// HasProvider reports whether the pool can schedule onto name.
func (p *Pool) HasProvider(name string) bool {
	_, ok := p.providers[name]
	return ok
}

// ProviderNames lists the configured providers in sorted order.
func (p *Pool) ProviderNames() []string {
	names := make([]string, 0, len(p.providers))
	for n := range p.providers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (p *Pool) entry(k entryKey) *poolEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[k]
	if !ok {
		e = &poolEntry{free: make(chan *slot, p.cfg.SlotsPerEntry)}
		p.entries[k] = e
	}
	return e
}

func keyOf(s *slot) entryKey {
	return entryKey{provider: s.provider, graph: s.graph, epoch: s.epoch, variant: s.variant, mode: s.mode}
}

// Lease hands out a warm engine for (provider, graphName, epoch,
// variant), building one if the entry has spare capacity, otherwise
// blocking until a slot is released or ctx is done. An empty provider
// selects the pool's default. epoch 0 resolves to latest; it is pinned
// to a concrete epoch here, before any blocking, so a commit mid-wait
// cannot move the query to a different version than the one reported.
func (p *Pool) Lease(ctx context.Context, provider, graphName string, epoch uint64, v graphVariant, mode core.Mode) (*slot, error) {
	if provider == "" {
		provider = p.defName
	}
	prov, ok := p.providers[provider]
	if !ok {
		return nil, fmt.Errorf("unknown engine provider %q", provider)
	}
	ge, ok := p.graphs[graphName]
	if !ok {
		return nil, fmt.Errorf("unknown graph %q", graphName)
	}
	st, err := ge.Resolve(epoch)
	if err != nil {
		return nil, err
	}
	epoch = st.Epoch()
	k := entryKey{provider: provider, graph: graphName, epoch: epoch, variant: v, mode: mode}
	e := p.entry(k)

	select {
	case s := <-e.free:
		return p.freshen(prov, ge, e, s)
	default:
	}
	e.mu.Lock()
	if e.built < p.cfg.SlotsPerEntry {
		e.built++
		e.mu.Unlock()
		s, err := p.build(prov, ge, epoch, v, mode)
		if err != nil {
			e.mu.Lock()
			e.built--
			e.mu.Unlock()
			return nil, err
		}
		return s, nil
	}
	e.mu.Unlock()
	select {
	case s := <-e.free:
		return p.freshen(prov, ge, e, s)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// isStale asks an engine whether the world it was built for has moved
// on — for remote engines, whether the worker roster diverged from the
// ring members (a member died, or a rejoined worker could widen the
// ring). Engines without the hook are never stale.
func isStale(e Engine) bool {
	st, ok := e.(interface{ Stale() bool })
	return ok && st.Stale()
}

// freshen rebuilds a stale free-list slot before handing it out, so a
// lease taken after a worker rejoined runs at full width — and one
// taken after a worker died does not pay a mid-query poisoning. Fresh
// slots pass through untouched.
func (p *Pool) freshen(prov EngineProvider, ge *graphEntry, e *poolEntry, s *slot) (*slot, error) {
	if !isStale(s.eng) {
		return s, nil
	}
	s.eng.Close()
	fresh, err := p.build(prov, ge, s.epoch, s.variant, s.mode)
	if err != nil {
		e.mu.Lock()
		e.built--
		e.mu.Unlock()
		return nil, err
	}
	return fresh, nil
}

func (p *Pool) build(prov EngineProvider, ge *graphEntry, epoch uint64, v graphVariant, mode core.Mode) (*slot, error) {
	st, err := ge.Resolve(epoch)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	id := p.nextID
	p.nextID++
	p.mu.Unlock()

	eng, err := prov.Build(st.buildSpec(ge.name, v, mode, id))
	if err != nil {
		return nil, fmt.Errorf("provider %s: %w", prov.Name(), err)
	}
	s := &slot{eng: eng, provider: prov.Name(), graph: ge.name, epoch: st.Epoch(), variant: v, mode: mode, id: id}
	p.mu.Lock()
	p.slots = append(p.slots, s)
	p.mu.Unlock()
	return s, nil
}

// Release returns the slot to its free list. The engine first completes
// its request protocol (FinishQuery — for remote engines, collecting
// worker acknowledgements); a poisoned or finish-failed engine is Reset
// in place when the implementation supports it, and rebuilt from
// scratch through its provider otherwise — so the pool never recycles a
// broken slot, and a dead remote worker triggers a rebuild that
// re-evaluates the roster and re-forms the ring over the survivors.
// A slot whose epoch has been superseded is closed instead of pooled:
// the query that held it finished on the version it started on, and
// the next lease builds at the epoch it asks for.
func (p *Pool) Release(s *slot) {
	finishErr := s.eng.FinishQuery()
	s.eng.SetBaseContext(nil)
	s.eng.SetTracer(p.cfg.Tracer)

	if ge := p.graphs[s.graph]; ge != nil {
		if _, hi := ge.store.Window(); s.epoch < hi {
			s.eng.Close()
			e := p.entry(keyOf(s))
			e.mu.Lock()
			e.built--
			e.mu.Unlock()
			return
		}
	}

	rebuild := false
	if finishErr != nil || s.eng.Poisoned() != nil {
		if err := s.eng.Reset(); err != nil || finishErr != nil {
			rebuild = true
		}
	} else if isStale(s.eng) {
		// The slot is healthy but the roster moved under it (worker
		// died or rejoined while this query ran): rebuild at current
		// width instead of parking a stale ring on the free list.
		rebuild = true
	}
	if rebuild {
		s.eng.Close()
		prov := p.providers[s.provider]
		ge := p.graphs[s.graph]
		var fresh *slot
		var berr error
		if prov != nil && ge != nil {
			fresh, berr = p.build(prov, ge, s.epoch, s.variant, s.mode)
		} else {
			berr = fmt.Errorf("slot %d has no provider/graph to rebuild from", s.id)
		}
		if berr != nil {
			// Capacity shrinks by one slot; the next lease with
			// spare room rebuilds it.
			e := p.entry(keyOf(s))
			e.mu.Lock()
			e.built--
			e.mu.Unlock()
			return
		}
		s = fresh
	}
	e := p.entry(keyOf(s))
	select {
	case e.free <- s:
	default:
		// Free list full: a replacement was built while this slot was
		// out (can't happen in the current accounting, but never block
		// a release).
		s.eng.Close()
	}
}

// RetireEpochs drains and closes every idle slot of graphName built
// for an epoch older than the latest, reclaiming engines (and remote
// worker slots) the new version obsoletes. Leased slots are untouched:
// their queries finish on the epoch they started on, and Release
// closes them on the way back.
func (p *Pool) RetireEpochs(graphName string) int {
	ge, ok := p.graphs[graphName]
	if !ok {
		return 0
	}
	_, hi := ge.store.Window()
	p.mu.Lock()
	type victim struct {
		key entryKey
		e   *poolEntry
	}
	var victims []victim
	for k, e := range p.entries {
		if k.graph == graphName && k.epoch < hi {
			victims = append(victims, victim{key: k, e: e})
		}
	}
	p.mu.Unlock()
	retired := 0
	for _, v := range victims {
		for {
			select {
			case s := <-v.e.free:
				s.eng.Close()
				v.e.mu.Lock()
				v.e.built--
				v.e.mu.Unlock()
				retired++
			default:
				goto next
			}
		}
	next:
	}
	return retired
}

// Close tears down every idle engine and then the providers. Leased
// slots are abandoned; call only after the server has drained.
func (p *Pool) Close() {
	p.mu.Lock()
	for _, e := range p.entries {
		for {
			select {
			case s := <-e.free:
				s.eng.Close()
			default:
				goto next
			}
		}
	next:
	}
	p.mu.Unlock()
	for _, prov := range p.providers {
		prov.Close()
	}
}

// Restarts sums recovery restarts across every engine the pool ever
// built — the serving-level view of how much chaos the resilience loop
// absorbed. Reading a leased engine's stats mid-run is safe.
func (p *Pool) Restarts() int64 {
	p.mu.Lock()
	slots := append([]*slot(nil), p.slots...)
	p.mu.Unlock()
	var total int64
	for _, s := range slots {
		total += s.eng.Stats().Restarts
	}
	return total
}

// Slots reports how many engines the pool has built.
func (p *Pool) Slots() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.slots)
}

// Fleets collects the roster snapshot of every provider that tracks
// worker health, keyed by provider name, for /statusz.
func (p *Pool) Fleets() map[string]FleetStatus {
	out := make(map[string]FleetStatus)
	for n, prov := range p.providers {
		if f, ok := prov.(interface{ Fleet() FleetStatus }); ok {
			out[n] = f.Fleet()
		}
	}
	return out
}

// ProviderSlots breaks Slots down by provider, for /statusz.
func (p *Pool) ProviderSlots() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.providers))
	for n := range p.providers {
		out[n] = 0
	}
	for _, s := range p.slots {
		out[s.provider]++
	}
	return out
}
