package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// resultCache is an LRU over computed responses, bounded both by entry
// count and by total marshaled byte size so a handful of huge answers
// can't monopolize memory. The engine is deterministic for a canonical
// key, so entries never expire — they only age out.
type resultCache struct {
	mu         sync.Mutex
	ll         *list.List // front = most recent
	entries    map[string]*list.Element
	maxEntries int
	maxBytes   int64
	bytes      int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key  string
	resp Response
	size int64 // marshaled size of resp, for the byte budget
}

// newResultCache builds a cache; maxEntries <= 0 disables caching
// entirely (every Get misses, Put drops).
func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &resultCache{
		ll:         list.New(),
		entries:    make(map[string]*list.Element),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
}

// Get returns the cached response for key, if any, and records the
// hit/miss. The returned Response is a copy; callers stamp their own
// Cached/QueueWaitMs fields without disturbing the entry.
func (rc *resultCache) Get(key string) (Response, bool) {
	rc.mu.Lock()
	el, ok := rc.entries[key]
	if ok {
		rc.ll.MoveToFront(el)
	}
	var resp Response
	if ok {
		resp = el.Value.(*cacheEntry).resp
	}
	rc.mu.Unlock()
	if ok {
		rc.hits.Add(1)
	} else {
		rc.misses.Add(1)
	}
	return resp, ok
}

// Put stores resp under key, evicting least-recently-used entries until
// both budgets hold. size is the marshaled byte length of resp.
func (rc *resultCache) Put(key string, resp Response, size int64) {
	if rc.maxEntries <= 0 {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		rc.bytes += size - ent.size
		ent.resp, ent.size = resp, size
		rc.ll.MoveToFront(el)
	} else {
		rc.entries[key] = rc.ll.PushFront(&cacheEntry{key: key, resp: resp, size: size})
		rc.bytes += size
	}
	for rc.ll.Len() > rc.maxEntries || (rc.bytes > rc.maxBytes && rc.ll.Len() > 1) {
		oldest := rc.ll.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*cacheEntry)
		rc.ll.Remove(oldest)
		delete(rc.entries, ent.key)
		rc.bytes -= ent.size
		rc.evictions.Add(1)
	}
}

// Len and Bytes report current occupancy.
func (rc *resultCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.ll.Len()
}

func (rc *resultCache) Bytes() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.bytes
}

// RegisterMetrics exports the cache counters into reg under the
// server.cache.* namespace.
func (rc *resultCache) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterInt("server.cache.hits", rc.hits.Load)
	reg.RegisterInt("server.cache.misses", rc.misses.Load)
	reg.RegisterInt("server.cache.evictions", rc.evictions.Load)
	reg.RegisterInt("server.cache.entries", func() int64 { return int64(rc.Len()) })
	reg.RegisterInt("server.cache.bytes", rc.Bytes)
}
