package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/mutate"
	"repro/internal/obs"
)

// resultCache is an LRU over computed responses, bounded both by entry
// count and by total marshaled byte size so a handful of huge answers
// can't monopolize memory. The engine is deterministic for a canonical
// (epoch-pinned) key, so entries never expire — they age out, or are
// advanced/dropped by Advance when their graph mutates.
type resultCache struct {
	mu         sync.Mutex
	ll         *list.List // front = most recent
	entries    map[string]*list.Element
	maxEntries int
	maxBytes   int64
	bytes      int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	promoted  atomic.Int64
	dropped   atomic.Int64
}

type cacheEntry struct {
	key  string
	resp Response
	size int64 // marshaled size of resp, for the byte budget

	// req is the canonical request (for re-keying on epoch promotion)
	// and region the answer's read-set signature (for delta-keyed
	// invalidation).
	req    Request
	region mutate.Region
}

// newResultCache builds a cache; maxEntries <= 0 disables caching
// entirely (every Get misses, Put drops).
func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &resultCache{
		ll:         list.New(),
		entries:    make(map[string]*list.Element),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
}

// Get returns the cached response for key, if any, and records the
// hit/miss. The returned Response is a copy; callers stamp their own
// Cached/QueueWaitMs fields without disturbing the entry.
func (rc *resultCache) Get(key string) (Response, bool) {
	rc.mu.Lock()
	el, ok := rc.entries[key]
	if ok {
		rc.ll.MoveToFront(el)
	}
	var resp Response
	if ok {
		resp = el.Value.(*cacheEntry).resp
	}
	rc.mu.Unlock()
	if ok {
		rc.hits.Add(1)
	} else {
		rc.misses.Add(1)
	}
	return resp, ok
}

// Put stores resp under key, evicting least-recently-used entries until
// both budgets hold. size is the marshaled byte length of resp; req is
// the canonical request and region the answer's read-set signature.
func (rc *resultCache) Put(key string, resp Response, size int64, req Request, region mutate.Region) {
	if rc.maxEntries <= 0 {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.putLocked(key, resp, size, req, region)
}

func (rc *resultCache) putLocked(key string, resp Response, size int64, req Request, region mutate.Region) {
	if el, ok := rc.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		rc.bytes += size - ent.size
		ent.resp, ent.size, ent.req, ent.region = resp, size, req, region
		rc.ll.MoveToFront(el)
	} else {
		rc.entries[key] = rc.ll.PushFront(&cacheEntry{key: key, resp: resp, size: size, req: req, region: region})
		rc.bytes += size
	}
	for rc.ll.Len() > rc.maxEntries || (rc.bytes > rc.maxBytes && rc.ll.Len() > 1) {
		oldest := rc.ll.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*cacheEntry)
		rc.ll.Remove(oldest)
		delete(rc.entries, ent.key)
		rc.bytes -= ent.size
		rc.evictions.Add(1)
	}
}

// Advance applies one committed mutation to the cache: every entry of
// graphName computed at the parent epoch whose read-set does NOT
// intersect the mutated region is still the correct answer at the new
// epoch, so it is promoted — duplicated under the new epoch's key with
// the epoch restamped — and keeps serving latest-epoch lookups without
// a recompute. Entries whose read-set intersects the region are
// dropped: the mutation may have changed their answer. Entries pinned
// to older epochs are untouched either way — they remain exact for the
// version they name.
func (rc *resultCache) Advance(graphName string, toEpoch uint64, region mutate.Region) (promoted, dropped int) {
	if rc.maxEntries <= 0 {
		return 0, 0
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	type promo struct {
		resp   Response
		size   int64
		req    Request
		region mutate.Region
	}
	var promos []promo
	var victims []*list.Element
	for el := rc.ll.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		if ent.req.Graph != graphName || ent.req.Epoch != toEpoch-1 {
			continue
		}
		if ent.region.Intersects(region) {
			victims = append(victims, el)
			continue
		}
		req := ent.req
		req.Epoch = toEpoch
		resp := ent.resp
		resp.Epoch = toEpoch
		promos = append(promos, promo{resp: resp, size: ent.size, req: req, region: ent.region})
	}
	for _, el := range victims {
		ent := el.Value.(*cacheEntry)
		rc.ll.Remove(el)
		delete(rc.entries, ent.key)
		rc.bytes -= ent.size
		dropped++
	}
	for _, pr := range promos {
		rc.putLocked(cacheKey(pr.req), pr.resp, pr.size, pr.req, pr.region)
		promoted++
	}
	rc.promoted.Add(int64(promoted))
	rc.dropped.Add(int64(dropped))
	return promoted, dropped
}

// Len and Bytes report current occupancy.
func (rc *resultCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.ll.Len()
}

func (rc *resultCache) Bytes() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.bytes
}

// RegisterMetrics exports the cache counters into reg under the
// server.cache.* namespace.
func (rc *resultCache) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterInt("server.cache.hits", rc.hits.Load)
	reg.RegisterInt("server.cache.misses", rc.misses.Load)
	reg.RegisterInt("server.cache.evictions", rc.evictions.Load)
	reg.RegisterInt("server.cache.promoted", rc.promoted.Load)
	reg.RegisterInt("server.cache.dropped_invalid", rc.dropped.Load)
	reg.RegisterInt("server.cache.entries", func() int64 { return int64(rc.Len()) })
	reg.RegisterInt("server.cache.bytes", rc.Bytes)
}
