package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mutate"
)

func testGraph(scale int, seed int64) *graph.Graph {
	return graph.RMAT(scale, 8, graph.Graph500Params(), seed)
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Graphs == nil {
		cfg.Graphs = map[string]*graph.Graph{"g1": testGraph(7, 1)}
	}
	if cfg.Engine.NumNodes == 0 {
		cfg.Engine = core.Options{NumNodes: 2, Mode: core.ModeSympleGraph}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCanonicalize(t *testing.T) {
	info := graphInfo{vertices: 128, defaultRoot: 5}

	// Irrelevant parameters are zeroed so they can't fragment the cache.
	q, err := canonicalize(Request{Graph: "g", Algo: "bfs", Root: -1, K: 9, Seed: 77, Iters: 4}, info)
	if err != nil {
		t.Fatal(err)
	}
	if q.Root != 5 || q.K != 0 || q.Seed != 0 || q.Iters != 0 {
		t.Fatalf("bfs canonical %+v", q)
	}
	if q.Mode != "symplegraph" {
		t.Fatalf("default mode %q", q.Mode)
	}

	// Two queries that differ only in ignored fields share a key; a
	// meaningful difference splits them.
	a, _ := canonicalize(Request{Graph: "g", Algo: "kcore", K: 4, Seed: 1}, info)
	b, _ := canonicalize(Request{Graph: "g", Algo: "kcore", K: 4, Seed: 2, Trace: true}, info)
	if cacheKey(a) != cacheKey(b) {
		t.Fatalf("keys differ: %q vs %q", cacheKey(a), cacheKey(b))
	}
	c, _ := canonicalize(Request{Graph: "g", Algo: "kcore", K: 5}, info)
	if cacheKey(a) == cacheKey(c) {
		t.Fatalf("k=4 and k=5 share key %q", cacheKey(a))
	}

	if _, err := canonicalize(Request{Graph: "g", Algo: "dijkstra"}, info); err == nil {
		t.Fatal("unknown algo accepted")
	}
	if _, err := canonicalize(Request{Graph: "g", Algo: "bfs", Root: 1 << 20}, info); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	if _, err := canonicalize(Request{Graph: "g", Algo: "bfs", Mode: "giraph"}, info); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestResultCacheLRUAndBudgets(t *testing.T) {
	rc := newResultCache(2, 1<<20)
	rc.Put("a", Response{Algo: "a"}, 100, Request{}, mutate.FullRegion())
	rc.Put("b", Response{Algo: "b"}, 100, Request{}, mutate.FullRegion())
	if _, ok := rc.Get("a"); !ok {
		t.Fatal("a missing")
	}
	// "b" is now least recent; inserting "c" evicts it.
	rc.Put("c", Response{Algo: "c"}, 100, Request{}, mutate.FullRegion())
	if _, ok := rc.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := rc.Get("a"); !ok {
		t.Fatal("a evicted instead of b")
	}
	if rc.evictions.Load() != 1 {
		t.Fatalf("evictions %d", rc.evictions.Load())
	}

	// Byte budget: one huge entry forces the others out (but the
	// newest entry itself always stays).
	rc2 := newResultCache(10, 250)
	rc2.Put("x", Response{}, 100, Request{}, mutate.FullRegion())
	rc2.Put("y", Response{}, 100, Request{}, mutate.FullRegion())
	rc2.Put("z", Response{}, 200, Request{}, mutate.FullRegion())
	if rc2.Len() != 1 || rc2.Bytes() != 200 {
		t.Fatalf("len=%d bytes=%d after byte-budget eviction", rc2.Len(), rc2.Bytes())
	}

	// Disabled cache never stores.
	off := newResultCache(-1, 0)
	off.Put("k", Response{}, 10, Request{}, mutate.FullRegion())
	if _, ok := off.Get("k"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestAdmissionShedsBeyondQueue(t *testing.T) {
	a := newAdmission(1, 1)

	rel1, _, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Second occupies the single waiting slot.
	var wg sync.WaitGroup
	wg.Add(1)
	admitted := make(chan struct{})
	go func() {
		defer wg.Done()
		rel2, _, err := a.admit(context.Background())
		if err != nil {
			t.Errorf("queued admit: %v", err)
			return
		}
		close(admitted)
		rel2()
	}()
	// Wait until the goroutine holds the waiting slot.
	for i := 0; a.waiting.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	// Third finds the queue full and is shed immediately.
	if _, _, err := a.admit(context.Background()); err != errOverloaded {
		t.Fatalf("want errOverloaded, got %v", err)
	}
	if a.rejected.Load() != 1 {
		t.Fatalf("rejected %d", a.rejected.Load())
	}
	rel1()
	wg.Wait()
	select {
	case <-admitted:
	default:
		t.Fatal("queued request never ran")
	}

	// A queued request whose deadline fires unwinds cleanly.
	rel3, _, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := a.admit(ctx); err != context.DeadlineExceeded {
		t.Fatalf("queued deadline: %v", err)
	}
	rel3()
}

func TestQueryEndpoint(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	code, body := get("/query?graph=g1&algo=bfs")
	if code != http.StatusOK {
		t.Fatalf("bfs status %d: %s", code, body)
	}
	var first Response
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Result.Reached == 0 || first.Engine.EdgesTraversed == 0 {
		t.Fatalf("first response %+v", first)
	}

	// Identical query: served from cache, same answer.
	code, body = get("/query?graph=g1&algo=bfs")
	var second Response
	if code != http.StatusOK || json.Unmarshal(body, &second) != nil {
		t.Fatalf("cached status %d", code)
	}
	if !second.Cached || second.Result.Reached != first.Result.Reached {
		t.Fatalf("cached response %+v vs %+v", second, first)
	}

	// no_cache bypasses and recomputes, still the same answer.
	code, body = get("/query?graph=g1&algo=bfs&no_cache=1")
	var third Response
	if code != http.StatusOK || json.Unmarshal(body, &third) != nil {
		t.Fatalf("no_cache status %d", code)
	}
	if third.Cached || third.Result.Reached != first.Result.Reached {
		t.Fatalf("no_cache response %+v", third)
	}

	// Trace capture returns per-phase spans.
	code, body = get("/query?graph=g1&algo=kcore&k=3&trace=1")
	var traced Response
	if code != http.StatusOK || json.Unmarshal(body, &traced) != nil {
		t.Fatalf("trace status %d: %s", code, body)
	}
	if len(traced.Trace) == 0 {
		t.Fatal("trace=1 returned no spans")
	}

	// POST JSON body works too.
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"graph":"g1","algo":"cc"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "components") {
		t.Fatalf("POST status %d: %s", resp.StatusCode, b)
	}

	// Client errors.
	if code, _ := get("/query?graph=nope&algo=bfs"); code != http.StatusBadRequest {
		t.Fatalf("unknown graph status %d", code)
	}
	if code, _ := get("/query?graph=g1&algo=dijkstra"); code != http.StatusBadRequest {
		t.Fatalf("unknown algo status %d", code)
	}
	if code, _ := get("/query?graph=g1&algo=bfs&root=bananas"); code != http.StatusBadRequest {
		t.Fatalf("bad root status %d", code)
	}

	// statusz reflects the traffic.
	code, body = get("/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz %d", code)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests.OK < 5 || st.Cache.Hits < 1 || st.Cache.HitRate <= 0 {
		t.Fatalf("statusz %+v", st.Requests)
	}
	if st.Algos["bfs"].Engine.Count < 2 || st.Graphs["g1"].Vertices != 1<<7 {
		t.Fatalf("statusz algos/graphs: %+v", st)
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz %d", code)
	}
}

func TestDeadlineReturns504AndSlotRecovers(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A 1ms deadline cannot finish a 5000-iteration pagerank (a warm
	// slot clears 50 iterations on this graph in about a millisecond,
	// which made the old iters=50 version a coin flip on idle
	// machines); the request must come back 504, not hang and not 500.
	resp, err := http.Get(ts.URL + "/query?graph=g1&algo=pagerank&iters=5000&deadline_ms=1&no_cache=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline status %d", resp.StatusCode)
	}

	// The poisoned slot is Reset on release: the same entry serves the
	// next query normally.
	resp, err = http.Get(ts.URL + "/query?graph=g1&algo=pagerank&iters=5")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-deadline status %d: %s", resp.StatusCode, b)
	}
}

func TestDrainAnswersInFlightThenRefuses(t *testing.T) {
	s := testServer(t, Config{MaxInflight: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Launch a batch of queries, then drain while some are in flight.
	const n = 8
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/query?graph=g1&algo=mis&seed=%d", ts.URL, i+1))
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("in-flight query got %d during drain", code)
		}
	}

	// After the drain everything is refused.
	resp, err := http.Get(ts.URL + "/query?graph=g1&algo=bfs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d", resp.StatusCode)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz %d", hr.StatusCode)
	}
}

// TestCoalescingSharesOneRun fires a herd of identical uncached queries
// and checks the singleflight accounting: every response is exactly one
// of engine-run / coalesced / cache-hit, and at least one follower
// shared the leader's run instead of burning a pool slot.
func TestCoalescingSharesOneRun(t *testing.T) {
	s := testServer(t, Config{MaxInflight: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/query?graph=g1&algo=pagerank&iters=2000")
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("herd query got %d", code)
		}
	}

	st := s.StatusSnapshot()
	runs := st.Algos["pagerank"].Engine.Count
	if st.Requests.OK != n {
		t.Fatalf("ok = %d, want %d", st.Requests.OK, n)
	}
	// Exact accounting: each answer came from exactly one source.
	if runs+st.Requests.Coalesced+st.Cache.Hits != n {
		t.Fatalf("runs %d + coalesced %d + hits %d != %d",
			runs, st.Requests.Coalesced, st.Cache.Hits, n)
	}
	if st.Requests.Coalesced == 0 {
		t.Fatalf("no request coalesced (runs %d, hits %d)", runs, st.Cache.Hits)
	}
}

// TestStatuszDelta pins the ?delta=1 contract: the first scrape reports
// counters since start, the second only what happened in between.
func TestStatuszDelta(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/query?graph=g1&algo=bfs")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	scrape := func() DeltaStatus {
		t.Helper()
		resp, err := http.Get(ts.URL + "/statusz?delta=1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var d DeltaStatus
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		return d
	}

	first := scrape()
	if first.Requests.Total != 3 || first.Requests.OK != 3 {
		t.Fatalf("first delta %+v", first.Requests)
	}
	if first.Cache.Hits != 2 || first.Cache.Misses != 1 {
		t.Fatalf("first delta cache %+v", first.Cache)
	}
	if first.WindowSec <= 0 {
		t.Fatalf("window %v", first.WindowSec)
	}

	// Nothing happened since: the next window is all zeros.
	second := scrape()
	if second.Requests.Total != 0 || second.Cache.Hits != 0 || second.Cache.Misses != 0 {
		t.Fatalf("second delta not zeroed: %+v / %+v", second.Requests, second.Cache)
	}

	// One more query lands in the third window alone, and the absolute
	// /statusz view stays monotonic throughout.
	resp, err := http.Get(ts.URL + "/query?graph=g1&algo=bfs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	third := scrape()
	if third.Requests.Total != 1 || third.Cache.Hits != 1 {
		t.Fatalf("third delta %+v / %+v", third.Requests, third.Cache)
	}
	full := s.StatusSnapshot()
	if full.Requests.Total != 4 || full.Pool.DefaultProvider != "local" {
		t.Fatalf("absolute statusz drifted: %+v pool %+v", full.Requests, full.Pool)
	}
}
