package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// WorkerConfig configures a worker daemon.
type WorkerConfig struct {
	// Addr is the control listen address ("127.0.0.1:0", ":7101").
	Addr string
	// DataHost is the host data-plane listeners bind and advertise
	// (default 127.0.0.1; set to this machine's reachable address when
	// the ring spans hosts).
	DataHost string
	// Logf receives one line per lifecycle event when non-nil.
	Logf func(format string, args ...any)
	// Registry receives worker.* metrics when non-nil.
	Registry *obs.Registry
}

// WorkerDaemon is the sgworker runtime: it accepts control connections
// from a serving front-end, each negotiating one engine slot — graph
// (shipped once per fingerprint and cached), data-plane endpoint,
// distributed engine — and then answers run requests in lockstep with
// node 0. One connection is one slot; the front-end's RemoteProvider
// holds one per pooled remote engine.
type WorkerDaemon struct {
	cfg WorkerConfig
	ln  net.Listener

	mu     sync.Mutex
	conns  map[*workerConn]struct{}
	closed atomic.Bool
	wg     sync.WaitGroup

	graphMu sync.Mutex
	graphs  map[string]*graph.Graph // fingerprint → deserialized graph

	slotsBuilt  atomic.Int64
	runsStarted atomic.Int64
	runsFailed  atomic.Int64
}

// workerConn is one control connection and the slot state hanging off
// it; ep is published under mu so Close can cut a run short.
type workerConn struct {
	cc *comm.CtrlConn
	mu sync.Mutex
	ep *comm.TCPEndpoint
}

func (wc *workerConn) setEndpoint(ep *comm.TCPEndpoint) {
	wc.mu.Lock()
	wc.ep = ep
	wc.mu.Unlock()
}

func (wc *workerConn) closeEndpoint() {
	wc.mu.Lock()
	if wc.ep != nil {
		wc.ep.Close()
	}
	wc.mu.Unlock()
}

// StartWorkerDaemon listens on cfg.Addr and serves slots until Close.
func StartWorkerDaemon(cfg WorkerConfig) (*WorkerDaemon, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.DataHost == "" {
		cfg.DataHost = "127.0.0.1"
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: worker listen %s: %w", cfg.Addr, err)
	}
	d := &WorkerDaemon{
		cfg:    cfg,
		ln:     ln,
		conns:  make(map[*workerConn]struct{}),
		graphs: make(map[string]*graph.Graph),
	}
	if cfg.Registry != nil {
		cfg.Registry.RegisterInt("worker.slots_built", d.slotsBuilt.Load)
		cfg.Registry.RegisterInt("worker.runs_started", d.runsStarted.Load)
		cfg.Registry.RegisterInt("worker.runs_failed", d.runsFailed.Load)
		cfg.Registry.RegisterInt("worker.graphs_cached", func() int64 {
			d.graphMu.Lock()
			defer d.graphMu.Unlock()
			return int64(len(d.graphs))
		})
	}
	d.wg.Add(1)
	go d.acceptLoop()
	return d, nil
}

// Addr is the control address the daemon is reachable on.
func (d *WorkerDaemon) Addr() string { return d.ln.Addr().String() }

// RunsStarted counts queries this worker has begun executing; test
// harnesses poll it to time a mid-run kill deterministically.
func (d *WorkerDaemon) RunsStarted() int64 { return d.runsStarted.Load() }

// SlotsBuilt counts engine slots successfully negotiated.
func (d *WorkerDaemon) SlotsBuilt() int64 { return d.slotsBuilt.Load() }

// Close stops accepting, severs every control connection and data
// plane (aborting in-flight runs), and waits for slot goroutines.
func (d *WorkerDaemon) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	err := d.ln.Close()
	d.mu.Lock()
	for wc := range d.conns {
		wc.cc.Close()
		wc.closeEndpoint()
	}
	d.mu.Unlock()
	d.wg.Wait()
	return err
}

func (d *WorkerDaemon) acceptLoop() {
	defer d.wg.Done()
	for {
		c, err := d.ln.Accept()
		if err != nil {
			return // listener closed
		}
		wc := &workerConn{cc: comm.NewCtrlConn(c)}
		d.mu.Lock()
		if d.closed.Load() {
			d.mu.Unlock()
			wc.cc.Close()
			return
		}
		d.conns[wc] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.serveSlot(wc)
			d.mu.Lock()
			delete(d.conns, wc)
			d.mu.Unlock()
		}()
	}
}

// graphFor returns the cached graph for a fingerprint.
func (d *WorkerDaemon) graphFor(fp string) (*graph.Graph, bool) {
	d.graphMu.Lock()
	defer d.graphMu.Unlock()
	g, ok := d.graphs[fp]
	return g, ok
}

func (d *WorkerDaemon) storeGraph(fp string, g *graph.Graph) {
	d.graphMu.Lock()
	d.graphs[fp] = g
	d.graphMu.Unlock()
}

// serveSlot drives one slot's lifetime on one control connection:
// build handshake, graph transfer when the fingerprint is new, mesh
// formation, then the run/done loop until the front-end closes the
// slot or either side fails.
func (d *WorkerDaemon) serveSlot(wc *workerConn) {
	cc := wc.cc
	defer cc.Close()

	var bm buildMsg
	if err := cc.Expect("build", &bm); err != nil {
		return
	}
	g, have := d.graphFor(bm.FP)
	if err := cc.Send("graph-state", graphStateMsg{Have: have}); err != nil {
		return
	}
	if !have {
		if err := cc.Expect("graph", nil); err != nil {
			return
		}
		blob, err := cc.RecvBlob()
		if err != nil {
			return
		}
		sum := sha256.Sum256(blob)
		if hex.EncodeToString(sum[:]) != bm.FP {
			d.cfg.Logf("sgworker: graph blob fingerprint mismatch from %s", cc.RemoteAddr())
			return
		}
		g, err = graph.ReadBinary(bytes.NewReader(blob))
		if err != nil {
			d.cfg.Logf("sgworker: bad graph blob: %v", err)
			return
		}
		d.storeGraph(bm.FP, g)
		d.cfg.Logf("sgworker: cached graph %s/%s (%d vertices, fp %.12s)",
			bm.Graph, bm.Variant, g.NumVertices(), bm.FP)
	}

	dataLn, err := net.Listen("tcp", net.JoinHostPort(d.cfg.DataHost, "0"))
	if err != nil {
		d.cfg.Logf("sgworker: data listener: %v", err)
		return
	}
	if err := cc.Send("ready", readyMsg{DataAddr: dataLn.Addr().String()}); err != nil {
		dataLn.Close()
		return
	}
	var st startMsg
	if err := cc.Expect("start", &st); err != nil {
		dataLn.Close()
		return
	}
	ep, err := comm.NewTCPEndpoint(comm.NodeID(bm.Node), dataLn, st.Addrs)
	if err != nil {
		//sgvet:ignore commerr best-effort error reply: if the send fails the master's Expect fails too and reports the drop
		cc.Send("up", upMsg{Error: err.Error()})
		dataLn.Close()
		return
	}
	wc.setEndpoint(ep) // Close() can now cut a run short
	defer ep.Close()   // closes dataLn too

	mode, err := cliutil.ParseMode(bm.Opts.Mode)
	if err != nil {
		//sgvet:ignore commerr best-effort error reply: if the send fails the master's Expect fails too and reports the drop
		cc.Send("up", upMsg{Error: err.Error()})
		return
	}
	opts := core.Options{
		NumNodes:     bm.Nodes,
		Mode:         mode,
		DepThreshold: bm.Opts.DepThreshold,
		NumBuffers:   bm.Opts.NumBuffers,
		Workers:      bm.Opts.Workers,
		Alpha:        bm.Opts.Alpha,
		StallTimeout: time.Duration(bm.Opts.StallMs) * time.Millisecond,
	}
	eng, err := core.NewDistributedEngine(g, opts, ep)
	if err != nil {
		//sgvet:ignore commerr best-effort error reply: if the send fails the master's Expect fails too and reports the drop
		cc.Send("up", upMsg{Error: err.Error()})
		return
	}
	defer eng.Close()
	if err := cc.Send("up", upMsg{}); err != nil {
		return
	}
	d.slotsBuilt.Add(1)
	d.cfg.Logf("sgworker: slot up as node %d/%d for %s/%s (%v)",
		bm.Node, bm.Nodes, bm.Graph, bm.Variant, mode)

	for {
		env, err := cc.Recv()
		if err != nil {
			return
		}
		switch env.Type {
		case "run":
			var q Request
			if err := json.Unmarshal(env.Body, &q); err != nil {
				//sgvet:ignore commerr best-effort error reply: if the send fails the master's Expect fails too and reports the drop
				cc.Send("done", doneMsg{Error: fmt.Sprintf("bad run request: %v", err)})
				return
			}
			d.runsStarted.Add(1)
			_, runErr := runAlgorithm(eng, q)
			var dm doneMsg
			if runErr != nil {
				d.runsFailed.Add(1)
				dm.Error = runErr.Error()
			}
			if err := cc.Send("done", dm); err != nil {
				return
			}
			if runErr != nil {
				// The engine is poisoned and this node cannot re-form
				// the ring; the front-end rebuilds the slot.
				d.cfg.Logf("sgworker: run failed, retiring slot: %v", runErr)
				return
			}
		case "close":
			return
		default:
			d.cfg.Logf("sgworker: unexpected control message %q", env.Type)
			return
		}
	}
}
