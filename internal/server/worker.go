package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/obs"
)

// WorkerConfig configures a worker daemon.
type WorkerConfig struct {
	// Addr is the control listen address ("127.0.0.1:0", ":7101").
	Addr string
	// DataHost is the host data-plane listeners bind and advertise
	// (default 127.0.0.1; set to this machine's reachable address when
	// the ring spans hosts).
	DataHost string
	// MaxSlots caps concurrently active engine slots; further builds
	// are answered with build-reject so the front-end schedules
	// elsewhere. 0 means unlimited.
	MaxSlots int
	// Logf receives one line per lifecycle event when non-nil.
	Logf func(format string, args ...any)
	// Registry receives worker.* metrics when non-nil.
	Registry *obs.Registry
}

// WorkerDaemon is the sgworker runtime: it accepts control connections
// from a serving front-end. A connection starts in a lightweight
// request loop — health pings and graph preloads — and becomes one
// engine slot when a build arrives: graph (shipped chunked once per
// fingerprint and cached, with interrupted transfers resumed),
// data-plane endpoint, distributed engine — then answers run requests
// in lockstep with node 0. One connection is one slot; the front-end's
// RemoteProvider holds one per pooled remote engine.
type WorkerDaemon struct {
	cfg WorkerConfig
	ln  net.Listener

	mu     sync.Mutex
	conns  map[*workerConn]struct{}
	closed atomic.Bool
	wg     sync.WaitGroup

	graphMu sync.Mutex
	graphs  map[string]*graph.Graph // fingerprint → deserialized graph
	partial map[string][]byte       // fingerprint → acked prefix of an interrupted transfer
	epochs  map[string]uint64       // "graph/variant" → newest epoch seen

	slotsActive   atomic.Int64
	slotsBuilt    atomic.Int64
	buildsRej     atomic.Int64
	runsStarted   atomic.Int64
	runsFailed    atomic.Int64
	pings         atomic.Int64
	preloads      atomic.Int64
	deltasApplied atomic.Int64
}

// workerConn is one control connection and the slot state hanging off
// it; ep is published under mu so Close can cut a run short.
type workerConn struct {
	cc *comm.CtrlConn
	mu sync.Mutex
	ep *comm.TCPEndpoint
}

func (wc *workerConn) setEndpoint(ep *comm.TCPEndpoint) {
	wc.mu.Lock()
	wc.ep = ep
	wc.mu.Unlock()
}

func (wc *workerConn) closeEndpoint() {
	wc.mu.Lock()
	if wc.ep != nil {
		wc.ep.Close()
	}
	wc.mu.Unlock()
}

// StartWorkerDaemon listens on cfg.Addr and serves slots until Close.
func StartWorkerDaemon(cfg WorkerConfig) (*WorkerDaemon, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.DataHost == "" {
		cfg.DataHost = "127.0.0.1"
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: worker listen %s: %w", cfg.Addr, err)
	}
	d := &WorkerDaemon{
		cfg:     cfg,
		ln:      ln,
		conns:   make(map[*workerConn]struct{}),
		graphs:  make(map[string]*graph.Graph),
		partial: make(map[string][]byte),
		epochs:  make(map[string]uint64),
	}
	if cfg.Registry != nil {
		cfg.Registry.RegisterInt("worker.slots_active", d.slotsActive.Load)
		cfg.Registry.RegisterInt("worker.slots_built", d.slotsBuilt.Load)
		cfg.Registry.RegisterInt("worker.builds_rejected", d.buildsRej.Load)
		cfg.Registry.RegisterInt("worker.runs_started", d.runsStarted.Load)
		cfg.Registry.RegisterInt("worker.runs_failed", d.runsFailed.Load)
		cfg.Registry.RegisterInt("worker.pings", d.pings.Load)
		cfg.Registry.RegisterInt("worker.preloads", d.preloads.Load)
		cfg.Registry.RegisterInt("worker.deltas_applied", d.deltasApplied.Load)
		cfg.Registry.RegisterInt("worker.graphs_cached", func() int64 {
			d.graphMu.Lock()
			defer d.graphMu.Unlock()
			return int64(len(d.graphs))
		})
	}
	d.wg.Add(1)
	go d.acceptLoop()
	return d, nil
}

// Addr is the control address the daemon is reachable on.
func (d *WorkerDaemon) Addr() string { return d.ln.Addr().String() }

// RunsStarted counts queries this worker has begun executing; test
// harnesses poll it to time a mid-run kill deterministically.
func (d *WorkerDaemon) RunsStarted() int64 { return d.runsStarted.Load() }

// SlotsBuilt counts engine slots successfully negotiated.
func (d *WorkerDaemon) SlotsBuilt() int64 { return d.slotsBuilt.Load() }

// DeltasApplied counts graph versions materialized from a delta frame
// instead of a full blob; test harnesses assert the cheap path ran.
func (d *WorkerDaemon) DeltasApplied() int64 { return d.deltasApplied.Load() }

// GraphsCached counts distinct graph fingerprints held in memory; test
// harnesses poll it to observe a preload landing.
func (d *WorkerDaemon) GraphsCached() int {
	d.graphMu.Lock()
	defer d.graphMu.Unlock()
	return len(d.graphs)
}

// Close stops accepting, severs every control connection and data
// plane (aborting in-flight runs), and waits for slot goroutines.
func (d *WorkerDaemon) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	err := d.ln.Close()
	d.mu.Lock()
	for wc := range d.conns {
		wc.cc.Close()
		wc.closeEndpoint()
	}
	d.mu.Unlock()
	d.wg.Wait()
	return err
}

func (d *WorkerDaemon) acceptLoop() {
	defer d.wg.Done()
	for {
		c, err := d.ln.Accept()
		if err != nil {
			return // listener closed
		}
		wc := &workerConn{cc: comm.NewCtrlConn(c)}
		d.mu.Lock()
		if d.closed.Load() {
			d.mu.Unlock()
			wc.cc.Close()
			return
		}
		d.conns[wc] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.serveConn(wc)
			d.mu.Lock()
			delete(d.conns, wc)
			d.mu.Unlock()
		}()
	}
}

// graphFor returns the cached graph for a fingerprint.
func (d *WorkerDaemon) graphFor(fp string) (*graph.Graph, bool) {
	d.graphMu.Lock()
	defer d.graphMu.Unlock()
	g, ok := d.graphs[fp]
	return g, ok
}

func (d *WorkerDaemon) storeGraph(fp string, g *graph.Graph) {
	d.graphMu.Lock()
	d.graphs[fp] = g
	delete(d.partial, fp)
	d.graphMu.Unlock()
}

// takePartial claims the retained prefix of an interrupted transfer of
// fp; the caller owns it until it either completes the transfer or
// stashes the (possibly longer) prefix back.
func (d *WorkerDaemon) takePartial(fp string) []byte {
	d.graphMu.Lock()
	defer d.graphMu.Unlock()
	buf := d.partial[fp]
	delete(d.partial, fp)
	return buf
}

func (d *WorkerDaemon) stashPartial(fp string, buf []byte) {
	if len(buf) == 0 {
		return
	}
	d.graphMu.Lock()
	d.partial[fp] = buf
	d.graphMu.Unlock()
}

// pong snapshots the capacity advertisement probes fold into
// scheduling.
func (d *WorkerDaemon) pong() pongMsg {
	return pongMsg{
		SlotsActive:  int(d.slotsActive.Load()),
		MaxSlots:     d.cfg.MaxSlots,
		GraphsCached: d.GraphsCached(),
	}
}

// tryAcquireSlot claims one slot of capacity; false when the worker is
// at MaxSlots.
func (d *WorkerDaemon) tryAcquireSlot() bool {
	for {
		cur := d.slotsActive.Load()
		if d.cfg.MaxSlots > 0 && cur >= int64(d.cfg.MaxSlots) {
			return false
		}
		if d.slotsActive.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// noteEpoch records the newest epoch seen for a graph/variant and
// returns what was recorded before — the graph-state reply reports the
// prior high-water mark.
func (d *WorkerDaemon) noteEpoch(graphName, variant string, epoch uint64) uint64 {
	key := graphName + "/" + variant
	d.graphMu.Lock()
	defer d.graphMu.Unlock()
	prev := d.epochs[key]
	if epoch > prev {
		d.epochs[key] = epoch
	}
	return prev
}

// recvGraphPayload receives one graph version announced by a build or
// preload the worker lacks: either a delta frame (the canonical
// mutation batch, applied to the cached parent-epoch graph) or a
// chunked full blob, caching the result under fp.
func (d *WorkerDaemon) recvGraphPayload(cc *comm.CtrlConn, fp, parentFP string, buf []byte) (*graph.Graph, error) {
	env, err := cc.Recv()
	if err != nil {
		d.stashPartial(fp, buf)
		return nil, err
	}
	switch env.Type {
	case "graph":
		var gm graphMsg
		if err := json.Unmarshal(env.Body, &gm); err != nil {
			d.stashPartial(fp, buf)
			return nil, err
		}
		return d.recvGraphChunked(cc, fp, gm, buf)
	case "delta":
		var dm deltaMsg
		if err := json.Unmarshal(env.Body, &dm); err != nil {
			return nil, err
		}
		return d.recvDelta(cc, fp, parentFP, dm)
	default:
		return nil, fmt.Errorf("unexpected control message %q announcing graph payload", env.Type)
	}
}

// recvGraphChunked receives one chunked full-graph transfer, resuming
// from (and on failure re-stashing) the retained prefix for fp, and
// verifies the content hash before caching.
func (d *WorkerDaemon) recvGraphChunked(cc *comm.CtrlConn, fp string, gm graphMsg, buf []byte) (*graph.Graph, error) {
	if gm.Size <= 0 || len(buf) > gm.Size {
		buf = nil
	}
	blob, err := cc.RecvBlobChunked(buf, gm.Size)
	if err != nil {
		// Keep the acknowledged prefix: the next transfer of this
		// fingerprint resumes here instead of starting over.
		d.stashPartial(fp, blob)
		return nil, err
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != gm.SHA {
		return nil, fmt.Errorf("graph blob hash mismatch from %s", cc.RemoteAddr())
	}
	g, err := graph.ReadBinary(bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("bad graph blob: %w", err)
	}
	d.storeGraph(fp, g)
	return g, nil
}

// recvDelta materializes fp by applying a shipped mutation batch to the
// cached parent-epoch graph. Integrity is the delta hash; chained
// deltas additionally prove lineage: the sender's fingerprint must
// equal ChainFingerprint(parentFP, bytes), so a torn or misdirected
// batch cannot silently produce a wrong graph.
func (d *WorkerDaemon) recvDelta(cc *comm.CtrlConn, fp, parentFP string, dm deltaMsg) (*graph.Graph, error) {
	parent, ok := d.graphFor(parentFP)
	if !ok {
		return nil, fmt.Errorf("delta announced but parent fp %.12s not cached", parentFP)
	}
	blob, err := cc.RecvBlobChunked(nil, dm.Size)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != dm.SHA {
		return nil, fmt.Errorf("delta hash mismatch from %s", cc.RemoteAddr())
	}
	if dm.Chained {
		if got := mutate.ChainFingerprint(parentFP, blob); got != fp {
			return nil, fmt.Errorf("delta chain mismatch: parent %.12s + batch → %.12s, want %.12s", parentFP, got, fp)
		}
	}
	batch, err := mutate.DecodeBatch(blob)
	if err != nil {
		return nil, fmt.Errorf("bad delta: %w", err)
	}
	// An empty delta is a legitimate ship: the new fingerprint names a
	// graph structurally identical to its parent (e.g. a symmetrized
	// variant that already contained every added arc's reverse). Graphs
	// are immutable, so the new fp can alias the parent outright.
	g := parent
	if len(batch.Ops) > 0 {
		if g, err = mutate.Apply(parent, batch); err != nil {
			return nil, fmt.Errorf("applying delta: %w", err)
		}
	}
	d.deltasApplied.Add(1)
	d.storeGraph(fp, g)
	return g, nil
}

// serveConn drives one control connection: health pings and graph
// preloads until a build arrives, then the slot's whole lifetime.
func (d *WorkerDaemon) serveConn(wc *workerConn) {
	cc := wc.cc
	defer cc.Close()

	for {
		env, err := cc.Recv()
		if err != nil {
			return
		}
		switch env.Type {
		case "ping":
			d.pings.Add(1)
			if err := cc.Send("pong", d.pong()); err != nil {
				return
			}
		case "preload":
			var pm preloadMsg
			if err := json.Unmarshal(env.Body, &pm); err != nil {
				return
			}
			if err := d.handlePreload(cc, pm); err != nil {
				d.cfg.Logf("sgworker: preload failed: %v", err)
				return
			}
		case "build":
			var bm buildMsg
			if err := json.Unmarshal(env.Body, &bm); err != nil {
				return
			}
			if !d.tryAcquireSlot() {
				d.buildsRej.Add(1)
				if err := cc.Send("build-reject", rejectMsg{
					Reason: fmt.Sprintf("at capacity (%d/%d slots active)", d.slotsActive.Load(), d.cfg.MaxSlots),
				}); err != nil {
					return
				}
				continue
			}
			d.serveSlot(wc, bm)
			d.slotsActive.Add(-1)
			return
		case "close":
			return
		default:
			d.cfg.Logf("sgworker: unexpected control message %q", env.Type)
			return
		}
	}
}

// handlePreload warms one graph fingerprint ahead of slot builds: a
// rejoining worker receives every graph the front-end serves, chunked,
// resuming interrupted transfers.
func (d *WorkerDaemon) handlePreload(cc *comm.CtrlConn, pm preloadMsg) error {
	d.preloads.Add(1)
	_, have := d.graphFor(pm.FP)
	var haveParent bool
	if !have && pm.ParentFP != "" {
		_, haveParent = d.graphFor(pm.ParentFP)
	}
	buf := d.takePartial(pm.FP)
	if err := cc.Send("graph-state", graphStateMsg{Have: have, HaveParent: haveParent, Offset: len(buf)}); err != nil {
		d.stashPartial(pm.FP, buf)
		return err
	}
	if !have {
		g, err := d.recvGraphPayload(cc, pm.FP, pm.ParentFP, buf)
		if err != nil {
			return err
		}
		d.cfg.Logf("sgworker: preloaded graph fp %.12s (%d vertices)", pm.FP, g.NumVertices())
	}
	return cc.Send("preloaded", upMsg{})
}

// serveSlot drives one slot's lifetime after its build was accepted:
// graph transfer when the fingerprint is new, mesh formation, then the
// run/done loop until the front-end closes the slot or either side
// fails.
func (d *WorkerDaemon) serveSlot(wc *workerConn, bm buildMsg) {
	cc := wc.cc
	g, have := d.graphFor(bm.FP)
	var haveParent bool
	if !have && bm.ParentFP != "" {
		_, haveParent = d.graphFor(bm.ParentFP)
	}
	buf := d.takePartial(bm.FP)
	prevEpoch := d.noteEpoch(bm.Graph, bm.Variant, bm.Epoch)
	if err := cc.Send("graph-state", graphStateMsg{Have: have, HaveParent: haveParent, Offset: len(buf), Epoch: prevEpoch}); err != nil {
		d.stashPartial(bm.FP, buf)
		return
	}
	if !have {
		var err error
		g, err = d.recvGraphPayload(cc, bm.FP, bm.ParentFP, buf)
		if err != nil {
			d.cfg.Logf("sgworker: graph transfer failed: %v", err)
			return
		}
		d.cfg.Logf("sgworker: cached graph %s/%s@%d (%d vertices, fp %.12s)",
			bm.Graph, bm.Variant, bm.Epoch, g.NumVertices(), bm.FP)
	}

	dataLn, err := net.Listen("tcp", net.JoinHostPort(d.cfg.DataHost, "0"))
	if err != nil {
		d.cfg.Logf("sgworker: data listener: %v", err)
		return
	}
	if err := cc.Send("ready", readyMsg{DataAddr: dataLn.Addr().String()}); err != nil {
		dataLn.Close()
		return
	}
	var st startMsg
	if err := cc.Expect("start", &st); err != nil {
		dataLn.Close()
		return
	}
	ep, err := comm.NewTCPEndpoint(comm.NodeID(bm.Node), dataLn, st.Addrs)
	if err != nil {
		//sgvet:ignore commerr best-effort error reply: if the send fails the master's Expect fails too and reports the drop
		cc.Send("up", upMsg{Error: err.Error()})
		dataLn.Close()
		return
	}
	wc.setEndpoint(ep) // Close() can now cut a run short
	defer ep.Close()   // closes dataLn too

	mode, err := cliutil.ParseMode(bm.Opts.Mode)
	if err != nil {
		//sgvet:ignore commerr best-effort error reply: if the send fails the master's Expect fails too and reports the drop
		cc.Send("up", upMsg{Error: err.Error()})
		return
	}
	opts := core.Options{
		NumNodes:     bm.Nodes,
		Mode:         mode,
		DepThreshold: bm.Opts.DepThreshold,
		NumBuffers:   bm.Opts.NumBuffers,
		Workers:      bm.Opts.Workers,
		Alpha:        bm.Opts.Alpha,
		StallTimeout: time.Duration(bm.Opts.StallMs) * time.Millisecond,
	}
	eng, err := core.NewDistributedEngine(g, opts, ep)
	if err != nil {
		//sgvet:ignore commerr best-effort error reply: if the send fails the master's Expect fails too and reports the drop
		cc.Send("up", upMsg{Error: err.Error()})
		return
	}
	defer eng.Close()
	if err := cc.Send("up", upMsg{}); err != nil {
		return
	}
	d.slotsBuilt.Add(1)
	d.cfg.Logf("sgworker: slot up as node %d/%d for %s/%s (%v)",
		bm.Node, bm.Nodes, bm.Graph, bm.Variant, mode)

	for {
		env, err := cc.Recv()
		if err != nil {
			return
		}
		switch env.Type {
		case "run":
			var q Request
			if err := json.Unmarshal(env.Body, &q); err != nil {
				//sgvet:ignore commerr best-effort error reply: if the send fails the master's Expect fails too and reports the drop
				cc.Send("done", doneMsg{Error: fmt.Sprintf("bad run request: %v", err)})
				return
			}
			d.runsStarted.Add(1)
			_, _, runErr := runAlgorithm(eng, q)
			var dm doneMsg
			if runErr != nil {
				d.runsFailed.Add(1)
				dm.Error = runErr.Error()
			}
			if err := cc.Send("done", dm); err != nil {
				return
			}
			if runErr != nil {
				// The engine is poisoned and this node cannot re-form
				// the ring; the front-end rebuilds the slot.
				d.cfg.Logf("sgworker: run failed, retiring slot: %v", runErr)
				return
			}
		case "close":
			return
		default:
			d.cfg.Logf("sgworker: unexpected control message %q", env.Type)
			return
		}
	}
}
