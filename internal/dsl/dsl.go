// Package dsl provides the fold_while interface the paper proposes as an
// explicit alternative to UDF analysis (§4.3): "a new functional
// interface fold_while to replace the for-loop. It specifies a state
// machine and takes three parameters: initial dependency data, a function
// that composes dependency state and current neighbor, a condition that
// exits the loop."
//
// A FoldWhile declares the loop-carried state explicitly, so the
// "compiler" — here Compile — can generate the instrumented dense signal
// mechanically: state loads from the dependency lanes, the stop condition
// becomes EmitDep, and the residual state saves back to the lanes for the
// next machine in the ring. No static analysis is needed.
package dsl

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// FoldWhile is a declarative neighbor fold with loop-carried state S and
// update message type M.
//
// The zero value of the lane encoding must equal Init's result: the first
// machine in the circulant ring receives all-zero lanes and must observe
// the initial state. (All the paper's algorithms satisfy this naturally —
// counts and prefix sums start at 0.)
type FoldWhile[S, M any] struct {
	// Init returns the fold's initial state for a destination.
	Init func(dst graph.VertexID) S
	// Step folds one neighbor into the state and reports whether the
	// exit condition fired (the paper's "condition that exits the
	// loop").
	Step func(s S, dst, u graph.VertexID, w float32) (S, bool)
	// Emit produces the update message sent to the master when the exit
	// condition fired on neighbor u. Returning false sends nothing.
	Emit func(s S, dst, u graph.VertexID) (M, bool)
	// Partial produces the update message sent when the scan finishes
	// without firing and the state cannot be carried onward (untracked
	// vertices, Gemini mode, single machine) — the parallel-
	// decomposable fallback. nil sends nothing.
	Partial func(s S, dst graph.VertexID) (M, bool)
	// Lanes is the number of float64 dependency lanes the state needs
	// (0 for pure control dependency).
	Lanes int
	// Save encodes the state into the dependency lanes; Load decodes
	// it. Both may be nil when Lanes is 0.
	Save func(s S, lanes []float64)
	// Load decodes the carried state.
	Load func(lanes []float64) S
}

// Compile generates the instrumented dense-signal UDF and the lane count
// for core.DenseParams — the DSL equivalent of the analyzer's Figure 5
// transformation.
func Compile[S, M any](fw FoldWhile[S, M]) (func(ctx *core.DenseCtx[M], dst graph.VertexID, srcs []graph.VertexID, ws []float32), int) {
	signal := func(ctx *core.DenseCtx[M], dst graph.VertexID, srcs []graph.VertexID, ws []float32) {
		var s S
		carried := ctx.Tracked()
		if carried && fw.Lanes > 0 {
			lanes := make([]float64, fw.Lanes)
			for l := range lanes {
				lanes[l] = ctx.DepFloat(l)
			}
			s = fw.Load(lanes)
		} else {
			s = fw.Init(dst)
		}
		for i, u := range srcs {
			ctx.Edge()
			w := float32(1)
			if ws != nil {
				w = ws[i]
			}
			var stop bool
			s, stop = fw.Step(s, dst, u, w)
			if stop {
				if m, ok := fw.Emit(s, dst, u); ok {
					ctx.Emit(m)
				}
				ctx.EmitDep()
				return
			}
		}
		if carried && fw.Lanes > 0 {
			lanes := make([]float64, fw.Lanes)
			fw.Save(s, lanes)
			for l, v := range lanes {
				ctx.SetDepFloat(l, v)
			}
			return
		}
		if fw.Partial != nil {
			if m, ok := fw.Partial(s, dst); ok {
				ctx.Emit(m)
			}
		}
	}
	return signal, fw.Lanes
}

// Params assembles a complete core.DenseParams from the fold plus the
// caller's codec, filters and slot functions.
//
// finalize runs at the master for tracked destinations whose fold
// completed the whole ring *without* firing, receiving the final carried
// state. When the fold fired, the breaking machine's Emit message already
// delivered the outcome (and the carried lanes stop updating), so
// finalize is not invoked — exactly one of Emit/finalize reports per
// tracked destination.
func Params[S, M any](fw FoldWhile[S, M], codec core.Codec[M],
	activeDst func(graph.VertexID) bool,
	slot func(graph.VertexID, M) int64,
	finalize func(dst graph.VertexID, s S) int64) core.DenseParams[M] {
	signal, lanes := Compile(fw)
	p := core.DenseParams[M]{
		Codec:     codec,
		ActiveDst: activeDst,
		Signal:    signal,
		Slot:      slot,
		Lanes:     lanes,
	}
	if finalize != nil {
		p.Finalize = func(dst graph.VertexID, skip bool, data []float64) int64 {
			if skip {
				return 0
			}
			var s S
			if fw.Lanes > 0 {
				s = fw.Load(data)
			} else {
				s = fw.Init(dst)
			}
			return finalize(dst, s)
		}
	}
	return p
}
