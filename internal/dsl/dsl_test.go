package dsl

import (
	"fmt"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/seq"
)

// bfsFold is bottom-up BFS declared as a fold: state is "found or not"
// (pure control), stop on the first frontier neighbor.
func bfsFold(frontier *bitset.Bitmap) FoldWhile[struct{}, uint32] {
	return FoldWhile[struct{}, uint32]{
		Init: func(graph.VertexID) struct{} { return struct{}{} },
		Step: func(s struct{}, _, u graph.VertexID, _ float32) (struct{}, bool) {
			return s, frontier.Get(int(u))
		},
		Emit: func(_ struct{}, _, u graph.VertexID) (uint32, bool) { return uint32(u), true },
	}
}

// TestFoldBFSIterationMatchesHandWritten runs one bottom-up step both
// ways and compares parents exactly.
func TestFoldBFSIterationMatchesHandWritten(t *testing.T) {
	g := graph.RMAT(9, 8, graph.Graph500Params(), 3)
	n := g.NumVertices()
	frontier := bitset.New(n)
	for v := 0; v < n; v += 3 {
		frontier.Set(v)
	}
	for _, mode := range []core.Mode{core.ModeGemini, core.ModeSympleGraph} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(useDSL bool) []uint32 {
				c, err := core.NewCluster(g, core.Options{NumNodes: 4, Mode: mode, NumBuffers: 2})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				parent := make([]uint32, n)
				for i := range parent {
					parent[i] = ^uint32(0)
				}
				slot := func(dst graph.VertexID, u uint32) int64 {
					if parent[dst] == ^uint32(0) {
						parent[dst] = u
						return 1
					}
					return 0
				}
				err = c.Run(func(w *core.Worker) error {
					var params core.DenseParams[uint32]
					if useDSL {
						params = Params(bfsFold(frontier), core.U32Codec{}, nil, slot, nil)
					} else {
						params = core.DenseParams[uint32]{
							Codec: core.U32Codec{},
							Signal: func(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
								for _, u := range srcs {
									ctx.Edge()
									if frontier.Get(int(u)) {
										ctx.Emit(uint32(u))
										ctx.EmitDep()
										break
									}
								}
							},
							Slot: slot,
						}
					}
					_, err := core.ProcessEdgesDense(w, params)
					return err
				})
				if err != nil {
					t.Fatal(err)
				}
				return parent
			}
			hand := run(false)
			folded := run(true)
			for v := range hand {
				if hand[v] != folded[v] {
					t.Fatalf("vertex %d: hand %d, dsl %d", v, hand[v], folded[v])
				}
			}
		})
	}
}

// kcoreFold is the K-core counting kernel as a fold with carried int
// state in one lane.
func kcoreFold(active *bitset.Bitmap, k int) FoldWhile[int64, int64] {
	return FoldWhile[int64, int64]{
		Init: func(graph.VertexID) int64 { return 0 },
		Step: func(cnt int64, _, u graph.VertexID, _ float32) (int64, bool) {
			if active.Get(int(u)) {
				cnt++
				if cnt >= int64(k) {
					return cnt, true
				}
			}
			return cnt, false
		},
		Emit:    func(cnt int64, _, _ graph.VertexID) (int64, bool) { return cnt, true },
		Partial: func(cnt int64, _ graph.VertexID) (int64, bool) { return cnt, cnt > 0 },
		Lanes:   1,
		Save:    func(cnt int64, lanes []float64) { lanes[0] = float64(cnt) },
		Load:    func(lanes []float64) int64 { return int64(lanes[0]) },
	}
}

// TestFoldKCoreCountsMatchDegrees verifies carried data state through the
// fold: a single counting pass must reproduce active in-degrees capped
// at k, in every mode.
func TestFoldKCoreCountsMatchDegrees(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(8, 8, graph.Graph500Params(), 4))
	n := g.NumVertices()
	active := bitset.New(n)
	active.Fill()
	const k = 4
	for _, p := range []int{1, 3} {
		for _, mode := range []core.Mode{core.ModeGemini, core.ModeSympleGraph} {
			t.Run(fmt.Sprintf("p=%d/%v", p, mode), func(t *testing.T) {
				c, err := core.NewCluster(g, core.Options{NumNodes: p, Mode: mode, NumBuffers: 2})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				counts := make([]int64, n)
				err = c.Run(func(w *core.Worker) error {
					params := Params(kcoreFold(active, k), core.I64Codec{}, nil,
						func(dst graph.VertexID, partial int64) int64 {
							counts[dst] += partial
							return 0
						},
						func(dst graph.VertexID, cnt int64) int64 {
							counts[dst] += cnt
							return 0
						})
					_, err := core.ProcessEdgesDense(w, params)
					return err
				})
				if err != nil {
					t.Fatal(err)
				}
				for v := 0; v < n; v++ {
					deg := int64(g.InDegree(graph.VertexID(v)))
					got := counts[v]
					// Partial sums may exceed k when machines cap
					// independently (Gemini); the carried fold caps
					// globally. Either way the keep/remove verdict
					// agrees.
					if (got >= k) != (deg >= k) {
						t.Fatalf("vertex %d: count %d vs degree %d disagree at k=%d", v, got, deg, k)
					}
					if got > deg {
						t.Fatalf("vertex %d: count %d exceeds degree %d", v, got, deg)
					}
				}
			})
		}
	}
}

// sampleFold is the prefix-sum sampling kernel as a fold.
func sampleFold(seed uint64, round int, totalW []float64) FoldWhile[float64, uint32] {
	return FoldWhile[float64, uint32]{
		Init: func(graph.VertexID) float64 { return 0 },
		Step: func(acc float64, dst, u graph.VertexID, _ float32) (float64, bool) {
			acc += seq.VertexWeight(seed, u)
			return acc, acc >= seq.SampleThresholdFromTotal(seed, round, dst, totalW[dst])
		},
		Emit:  func(_ float64, _, u graph.VertexID) (uint32, bool) { return uint32(u), true },
		Lanes: 1,
		Save:  func(acc float64, lanes []float64) { lanes[0] = acc },
		Load:  func(lanes []float64) float64 { return lanes[0] },
	}
}

// TestFoldSamplingMatchesOracle reproduces the exact-sampling semantics
// through the DSL under full tracking.
func TestFoldSamplingMatchesOracle(t *testing.T) {
	g := graph.RMAT(8, 8, graph.Graph500Params(), 5)
	n := g.NumVertices()
	const seed, round = 21, 0
	c, err := core.NewCluster(g, core.Options{NumNodes: 4, Mode: core.ModeSympleGraph, DepThreshold: 0, NumBuffers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	order := seq.RingOrder(c.Partition())
	// W computed over the ring chain, as algorithms.Sample does.
	totalW := make([]float64, n)
	for v := 0; v < n; v++ {
		nbrs, _ := order(g, graph.VertexID(v))
		for _, u := range nbrs {
			totalW[v] += seq.VertexWeight(seed, u)
		}
	}
	pick := make([]uint32, n)
	for i := range pick {
		pick[i] = ^uint32(0)
	}
	err = c.Run(func(w *core.Worker) error {
		params := Params(sampleFold(seed, round, totalW), core.U32Codec{}, nil,
			func(dst graph.VertexID, u uint32) int64 {
				pick[dst] = u
				return 1
			}, nil)
		_, err := core.ProcessEdgesDense(w, params)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := seq.SampleNeighbors(g, seed, round, order)
	for v := 0; v < n; v++ {
		if pick[v] != want[v] {
			t.Fatalf("vertex %d: pick %d, want %d", v, pick[v], want[v])
		}
	}
}
