package algorithms

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/seq"
)

// Property: on arbitrary random graphs and arbitrary engine
// configurations, SympleGraph-mode results equal Gemini-mode results
// equal the sequential oracle — the paper's Definition 2.2/2.4
// equivalence, checked by randomized search rather than fixed seeds.
func TestQuickCrossModeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep")
	}
	f := func(gSeed int64, pRaw, thrRaw, bRaw uint8, algoRaw uint8) bool {
		p := int(pRaw)%4 + 1
		threshold := []int{0, 4, 32}[int(thrRaw)%3]
		buffers := int(bRaw)%3 + 1
		g := graph.Symmetrize(graph.Uniform(256, 2048, gSeed))

		mk := func(mode core.Mode) *core.Cluster {
			c, err := core.NewCluster(g, core.Options{
				NumNodes:     p,
				Mode:         mode,
				DepThreshold: threshold,
				NumBuffers:   buffers,
			})
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		sym := mk(core.ModeSympleGraph)
		defer sym.Close()
		gem := mk(core.ModeGemini)
		defer gem.Close()

		switch algoRaw % 3 {
		case 0: // BFS depths vs sequential
			root, _ := graph.LargestOutDegreeVertex(g)
			a, err := BFS(sym, root)
			if err != nil {
				t.Fatal(err)
			}
			b, err := BFS(gem, root)
			if err != nil {
				t.Fatal(err)
			}
			want := seq.TopDownBFS(g, root)
			for v := range want.Depth {
				if a.Depth[v] != want.Depth[v] || b.Depth[v] != want.Depth[v] {
					return false
				}
			}
		case 1: // MIS vs greedy oracle
			want := seq.GreedyMIS(g, seq.MISColors(g.NumVertices(), uint64(gSeed)))
			a, err := MIS(sym, uint64(gSeed))
			if err != nil {
				t.Fatal(err)
			}
			b, err := MIS(gem, uint64(gSeed))
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if a.InMIS[v] != want[v] || b.InMIS[v] != want[v] {
					return false
				}
			}
		default: // K-core vs iterative oracle
			k := int(thrRaw)%6 + 2
			want, _ := seq.KCoreIterative(g, k)
			a, err := KCore(sym, k)
			if err != nil {
				t.Fatal(err)
			}
			b, err := KCore(gem, k)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if a.InCore[v] != want[v] || b.InCore[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: sampling under full tracking equals the ring-order oracle on
// arbitrary graphs.
func TestQuickSamplingExactness(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep")
	}
	f := func(gSeed int64, pRaw uint8) bool {
		p := int(pRaw)%3 + 2
		g := graph.Uniform(192, 1024, gSeed)
		c, err := core.NewCluster(g, core.Options{
			NumNodes: p, Mode: core.ModeSympleGraph, DepThreshold: 0, NumBuffers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		res, err := Sample(c, uint64(gSeed)+1, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := seq.SampleNeighbors(g, uint64(gSeed)+1, 0, seq.RingOrder(c.Partition()))
		for v := range want {
			if res.Picks[0][v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSForcedDirections(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(9, 8, graph.Graph500Params(), 41))
	root, _ := graph.LargestOutDegreeVertex(g)
	want := seq.TopDownBFS(g, root)
	for _, dir := range []Direction{DirectionTopDown, DirectionBottomUp, DirectionAdaptive} {
		c, err := core.NewCluster(g, core.Options{NumNodes: 4, Mode: core.ModeSympleGraph, NumBuffers: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := BFSWithDirection(c, root, dir)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want.Depth {
			if res.Depth[v] != want.Depth[v] {
				t.Fatalf("dir %d: depth[%d] = %d, want %d", dir, v, res.Depth[v], want.Depth[v])
			}
		}
		switch dir {
		case DirectionTopDown:
			if res.BottomUpSteps != 0 {
				t.Fatalf("forced top-down ran %d bottom-up steps", res.BottomUpSteps)
			}
		case DirectionBottomUp:
			if res.TopDownSteps != 0 {
				t.Fatalf("forced bottom-up ran %d top-down steps", res.TopDownSteps)
			}
		}
		c.Close()
	}
}

// Forced bottom-up maximizes the dependency benefit: SympleGraph must
// traverse strictly fewer edges than Gemini on a skewed graph.
func TestBottomUpDependencySavings(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(10, 16, graph.Graph500Params(), 42))
	root, _ := graph.LargestOutDegreeVertex(g)
	run := func(mode core.Mode) int64 {
		c, err := core.NewCluster(g, core.Options{NumNodes: 4, Mode: mode, DepThreshold: 0})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := BFSWithDirection(c, root, DirectionBottomUp); err != nil {
			t.Fatal(err)
		}
		return c.Stats().Totals.EdgesTraversed
	}
	gem, sym := run(core.ModeGemini), run(core.ModeSympleGraph)
	if sym >= gem {
		t.Fatalf("bottom-up: symple %d edges >= gemini %d", sym, gem)
	}
}
