package algorithms

import (
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/seq"
)

// MISResult is the distributed MIS output.
type MISResult struct {
	InMIS  []bool
	Rounds int
}

// MIS computes a maximal independent set with the paper's color-based
// iterative algorithm (Figure 3a) on a symmetric graph: each round,
// active vertices whose color is smaller than every active neighbor's
// color join the set; members and their neighbors then deactivate. Both
// phases carry the loop-carried dependency — the scan breaks at the first
// smaller-colored active neighbor (veto) and at the first new-member
// neighbor (cover).
//
// Colors are the deterministic permutation seq.MISColors(n, seed), so the
// result equals seq.GreedyMIS for every mode and machine count.
func MIS(c core.Engine, seed uint64) (*MISResult, error) {
	g := c.Graph()
	n := g.NumVertices()
	colors := seq.MISColors(n, seed)
	res := &MISResult{}
	err := c.Execute(func(w *core.Worker) error {
		active := bitset.New(n)
		active.Fill()
		inMIS := make([]bool, n) // masters authoritative
		rounds := 0
		for active.Any() {
			rounds++
			// Phase 1: veto pass. A vertex is vetoed when some active
			// neighbor has a smaller color; un-vetoed active vertices
			// join the MIS.
			vetoed := bitset.New(n)
			if _, err := core.ProcessEdgesDense(w, core.DenseParams[struct{}]{
				Codec:     core.UnitCodec{},
				ActiveDst: func(dst graph.VertexID) bool { return active.Get(int(dst)) },
				Signal: func(ctx *core.DenseCtx[struct{}], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
					for _, u := range srcs {
						ctx.Edge()
						if active.Get(int(u)) && colors[u] < colors[dst] {
							ctx.Emit(struct{}{})
							ctx.EmitDep()
							break
						}
					}
				},
				Slot: func(dst graph.VertexID, _ struct{}) int64 {
					if vetoed.Get(int(dst)) {
						return 0
					}
					vetoed.Set(int(dst))
					return 1
				},
			}); err != nil {
				return err
			}
			newMIS := bitset.New(n)
			joined, err := w.ProcessVertices(func(v graph.VertexID) int64 {
				if active.Get(int(v)) && !vetoed.Get(int(v)) {
					inMIS[v] = true
					newMIS.SetAtomic(int(v)) // workers share words
					return 1
				}
				return 0
			})
			if err != nil {
				return err
			}
			if joined == 0 {
				break
			}
			if err := syncMasterBitmapFrom(w, newMIS); err != nil {
				return err
			}
			// Phase 2: cover pass. Active vertices adjacent to a new
			// member deactivate (first member neighbor suffices).
			covered := bitset.New(n)
			if _, err := core.ProcessEdgesDense(w, core.DenseParams[struct{}]{
				Codec:     core.UnitCodec{},
				ActiveDst: func(dst graph.VertexID) bool { return active.Get(int(dst)) && !newMIS.Get(int(dst)) },
				Signal: func(ctx *core.DenseCtx[struct{}], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
					for _, u := range srcs {
						ctx.Edge()
						if newMIS.Get(int(u)) {
							ctx.Emit(struct{}{})
							ctx.EmitDep()
							break
						}
					}
				},
				Slot: func(dst graph.VertexID, _ struct{}) int64 {
					if covered.Get(int(dst)) {
						return 0
					}
					covered.Set(int(dst))
					return 1
				},
			}); err != nil {
				return err
			}
			if err := syncMasterBitmapFrom(w, covered); err != nil {
				return err
			}
			active.AndNot(newMIS)
			active.AndNot(covered)
		}

		// Publish membership.
		out := make([]uint32, n)
		lo, hi := w.MasterRange()
		for v := lo; v < hi; v++ {
			if inMIS[v] {
				out[v] = 1
			}
		}
		if err := w.GatherU32(out); err != nil {
			return err
		}
		if w.ID() == 0 {
			full := make([]bool, n)
			for v, x := range out {
				full[v] = x == 1
			}
			res.InMIS = full
			res.Rounds = rounds
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
