package algorithms

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/seq"
	"repro/internal/xrand"
)

// SampleResult holds weighted neighbor sampling output: Picks[r][v] is
// the in-neighbor vertex v drew in round r (None for vertices without
// incoming edges).
type SampleResult struct {
	Picks [][]uint32
	// ExactPicks counts picks made by cross-machine prefix walks (the
	// dependency-propagated path); the rest used the hierarchical
	// fallback.
	ExactPicks int64
}

// Sample draws, in each of `rounds` rounds, one incoming neighbor per
// vertex with probability proportional to the neighbor's deterministic
// vertex weight — the paper's graph-sampling kernel (Figure 3d). The
// loop-carried state is *data*: the running prefix sum of weights, which
// must cross a per-vertex threshold r_v.
//
// In SympleGraph mode, tracked vertices run the exact prefix walk across
// machines: a one-time setup pass carries the weight sum around the ring
// so every machine agrees bit-exactly on W_v, and each round's walk
// resumes from the carried prefix and breaks at the crossing — matching
// seq.SampleNeighbors under seq.RingOrder exactly. Untracked vertices —
// and all vertices in ModeGemini, where no dependency state exists — fall
// back to the parallel-decomposable hierarchical scheme: each machine
// scans all its local neighbors (no cross-machine pruning, the paper's
// redundancy), picks a local candidate, and the master combines
// candidates weighted by local mass. The hierarchical path sends a
// 12-byte message per (vertex, machine); the exact path sends one 4-byte
// pick but adds 8 bytes of dependency data per tracked vertex per step —
// the trade-off behind Table 6's sampling row, where total communication
// can exceed Gemini's.
func Sample(c core.Engine, seed uint64, rounds int) (*SampleResult, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("algorithms: Sample rounds = %d", rounds)
	}
	g := c.Graph()
	n := g.NumVertices()
	depOn := c.Options().Mode == core.ModeSympleGraph && c.Options().NumNodes > 1
	res := &SampleResult{}
	err := c.Execute(func(w *core.Worker) error {
		totalW := make([]float64, n)
		if depOn {
			// Setup: circulate each tracked vertex's weight sum around
			// the ring so W_v is the exact ring-ordered addition chain —
			// the same chain the per-round walks will follow, so the
			// crossing is guaranteed despite floating-point rounding.
			if _, err := core.ProcessEdgesDense(w, core.DenseParams[struct{}]{
				Codec: core.UnitCodec{},
				Signal: func(ctx *core.DenseCtx[struct{}], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
					if !ctx.Tracked() {
						return
					}
					acc := ctx.DepFloat(0)
					for _, u := range srcs {
						ctx.Edge()
						acc += seq.VertexWeight(seed, u)
					}
					ctx.SetDepFloat(0, acc)
				},
				Slot: func(graph.VertexID, struct{}) int64 { return 0 },
				Finalize: func(dst graph.VertexID, _ bool, data []float64) int64 {
					totalW[dst] = data[0]
					return 0
				},
				Lanes: 1,
			}); err != nil {
				return err
			}
			if err := w.AllGatherF64(totalW); err != nil {
				return err
			}
		}

		var exactPicks int64
		allPicks := make([][]uint32, rounds)
		for round := 0; round < rounds; round++ {
			pick := make([]uint32, n)
			for i := range pick {
				pick[i] = None
			}
			hierMass := make([]float64, n) // running mass at master
			hierSeq := make([]uint64, n)   // arrival index at master
			exact, err := core.ProcessEdgesDense(w, core.DenseParams[core.WeightedPick]{
				Codec: core.WeightedPickCodec{},
				Signal: func(ctx *core.DenseCtx[core.WeightedPick], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
					if ctx.Tracked() {
						acc := ctx.DepFloat(0)
						r := seq.SampleThresholdFromTotal(seed, round, dst, totalW[dst])
						for _, u := range srcs {
							ctx.Edge()
							acc += seq.VertexWeight(seed, u)
							if acc >= r {
								ctx.Emit(core.WeightedPick{Sum: -1, Cand: uint32(u)})
								ctx.EmitDep()
								break
							}
						}
						ctx.SetDepFloat(0, acc)
						return
					}
					// Hierarchical fallback: full local scan (the
					// unpruned redundancy of existing frameworks), local
					// prefix-walk pick, master-side weighted combine.
					var mass float64
					for _, u := range srcs {
						ctx.Edge()
						mass += seq.VertexWeight(seed, u)
					}
					r := seq.SampleThresholdFromTotal(seed, round, dst, mass)
					acc := 0.0
					cand := srcs[len(srcs)-1]
					for _, u := range srcs {
						acc += seq.VertexWeight(seed, u)
						if acc >= r {
							cand = u
							// Machine-local pick over neighbors the mass
							// loop above already scanned in full: later
							// machines still need their own scans, so no
							// dependency is emitted.
							break //sgc:local
						}
					}
					ctx.Emit(core.WeightedPick{Sum: mass, Cand: uint32(cand)})
				},
				Slot: func(dst graph.VertexID, msg core.WeightedPick) int64 {
					if msg.Sum < 0 {
						// Exact pick from the dependency-propagated walk;
						// at most one arrives per vertex.
						pick[dst] = msg.Cand
						return 1
					}
					hierMass[dst] += msg.Sum
					take := xrand.Uniform01(seed, 0x99, uint64(round), uint64(dst), hierSeq[dst]) < msg.Sum/hierMass[dst]
					hierSeq[dst]++
					if pick[dst] == None || take {
						pick[dst] = msg.Cand
					}
					return 0
				},
				Lanes: 1,
			})
			if err != nil {
				return err
			}
			exactPicks += exact // already globally reduced by the pass
			if err := w.GatherU32(pick); err != nil {
				return err
			}
			allPicks[round] = pick
		}
		if w.ID() == 0 {
			res.Picks = allPicks
			res.ExactPicks = exactPicks
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
