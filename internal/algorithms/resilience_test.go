package algorithms

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// chaosGraph is a long directed path: BFS and SSSP need one superstep
// per hop, so a mid-run crash lands well after several checkpoints have
// committed and well before the run would finish on its own.
func chaosGraph(n int) *graph.Graph { return graph.Path(n) }

// TestChaosBFSRecoversBitIdentical is the headline resilience claim: a
// seeded fault plan crashes node 1 mid-run, the engine re-forms the
// cluster and resumes from the last committed superstep checkpoint, and
// the recovered result is bit-identical to a fault-free run.
func TestChaosBFSRecoversBitIdentical(t *testing.T) {
	g := chaosGraph(64)

	baseline, err := BFS(mustAlgCluster(t, g, core.Options{NumNodes: 2}), 0)
	if err != nil {
		t.Fatal(err)
	}

	plan := &comm.FaultPlan{Seed: 2026, CrashNode: 1, CrashAtSuperstep: 10}
	c := mustAlgCluster(t, g, core.Options{
		NumNodes:        2,
		Fault:           plan,
		CheckpointEvery: 4,
		MaxRestarts:     1,
	})
	got, err := BFS(c, 0)
	if err != nil {
		t.Fatalf("BFS under chaos: %v", err)
	}

	if plan.Counters().Crashes != 1 {
		t.Fatalf("Crashes = %d, want exactly 1", plan.Counters().Crashes)
	}
	if c.Stats().Restarts != 1 {
		t.Fatalf("Stats().Restarts = %d, want 1", c.Stats().Restarts)
	}
	if !reflect.DeepEqual(got.Parent, baseline.Parent) || !reflect.DeepEqual(got.Depth, baseline.Depth) {
		t.Fatal("recovered BFS result differs from fault-free baseline")
	}
	// The recovered run must have resumed from a committed snapshot, not
	// recomputed from scratch.
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	snap := reg.Snapshot()
	if n, _ := snap["resilience.checkpoint.restores"].(int64); n == 0 {
		t.Fatalf("no checkpoint restores recorded: %v", snap["resilience.checkpoint.restores"])
	}
	if n, _ := snap["resilience.checkpoint.commits"].(int64); n == 0 {
		t.Fatal("no checkpoint commits recorded")
	}
}

// TestChaosSSSPRecoversBitIdentical is the same claim for SSSP: float
// distances must match bit for bit, not approximately.
func TestChaosSSSPRecoversBitIdentical(t *testing.T) {
	g := graph.RandomWeights(chaosGraph(64), 5)

	baseline, err := SSSP(mustAlgCluster(t, g, core.Options{NumNodes: 2}), 0)
	if err != nil {
		t.Fatal(err)
	}

	plan := &comm.FaultPlan{Seed: 11, CrashNode: 0, CrashAtSuperstep: 9}
	c := mustAlgCluster(t, g, core.Options{
		NumNodes:        2,
		Fault:           plan,
		CheckpointEvery: 3,
		MaxRestarts:     1,
	})
	got, err := SSSP(c, 0)
	if err != nil {
		t.Fatalf("SSSP under chaos: %v", err)
	}

	if plan.Counters().Crashes != 1 || c.Stats().Restarts != 1 {
		t.Fatalf("crashes = %d, restarts = %d, want 1 and 1",
			plan.Counters().Crashes, c.Stats().Restarts)
	}
	for v := range got {
		if math.Float32bits(got[v]) != math.Float32bits(baseline[v]) {
			t.Fatalf("dist[%d] = %x, baseline %x: not bit-identical",
				v, math.Float32bits(got[v]), math.Float32bits(baseline[v]))
		}
	}
}

// TestChaosBFSWithoutCheckpointsStartsOver checks the restart-only
// degenerate mode: no checkpoints, the recovered run recomputes from the
// root and still matches.
func TestChaosBFSWithoutCheckpointsStartsOver(t *testing.T) {
	g := chaosGraph(48)
	baseline, err := BFS(mustAlgCluster(t, g, core.Options{NumNodes: 2}), 0)
	if err != nil {
		t.Fatal(err)
	}
	plan := &comm.FaultPlan{Seed: 3, CrashNode: 1, CrashAtSuperstep: 5}
	c := mustAlgCluster(t, g, core.Options{NumNodes: 2, Fault: plan, MaxRestarts: 1})
	got, err := BFS(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Depth, baseline.Depth) {
		t.Fatal("restarted BFS differs from baseline")
	}
}

// TestChaosSoak sweeps crash points, cluster sizes and seeds — the
// `make chaos` target. Delay spikes are layered on top of the crash so
// recovery is exercised under timing jitter too.
func TestChaosSoak(t *testing.T) {
	g := chaosGraph(48)
	baseline, err := BFS(mustAlgCluster(t, g, core.Options{NumNodes: 2}), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{2, 3} {
		for _, crashAt := range []int{1, 6, 13} {
			for seed := uint64(1); seed <= 3; seed++ {
				plan := &comm.FaultPlan{
					Seed:             seed,
					CrashNode:        comm.NodeID(int(seed) % nodes),
					CrashAtSuperstep: crashAt,
					DelayProb:        0.02,
					Delay:            500 * time.Microsecond,
				}
				c := mustAlgCluster(t, g, core.Options{
					NumNodes:        nodes,
					Fault:           plan,
					CheckpointEvery: 5,
					MaxRestarts:     2,
					StallTimeout:    5 * time.Second,
				})
				got, err := BFS(c, 0)
				if err != nil {
					t.Fatalf("nodes=%d crashAt=%d seed=%d: %v", nodes, crashAt, seed, err)
				}
				if !reflect.DeepEqual(got.Parent, baseline.Parent) || !reflect.DeepEqual(got.Depth, baseline.Depth) {
					t.Fatalf("nodes=%d crashAt=%d seed=%d: result differs from baseline", nodes, crashAt, seed)
				}
				if plan.Counters().Crashes != 1 {
					t.Fatalf("nodes=%d crashAt=%d seed=%d: crashes = %d", nodes, crashAt, seed, plan.Counters().Crashes)
				}
			}
		}
	}
}

func mustAlgCluster(t testing.TB, g *graph.Graph, opts core.Options) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}
