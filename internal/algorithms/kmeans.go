package algorithms

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/seq"
	"repro/internal/xrand"
)

// KMeans runs distributed graph K-means (paper Figure 3c, §2.1):
// `centers` clusters, `iters` outer iterations of assign / measure /
// re-center. The assignment phase is BFS-like adoption — an unassigned
// vertex adopts the cluster of its first assigned neighbor, the
// loop-carried dependency — executed as dense pull rounds. Results match
// seq.KMeans under seq.RingOrder(c.Partition()) exactly.
func KMeans(c core.Engine, centers, iters int, seed uint64) (*seq.KMeansResult, error) {
	if centers < 1 || iters < 1 {
		return nil, fmt.Errorf("algorithms: KMeans centers=%d iters=%d", centers, iters)
	}
	g := c.Graph()
	n := g.NumVertices()
	if centers > n {
		return nil, fmt.Errorf("algorithms: %d centers for %d vertices", centers, n)
	}
	res := &seq.KMeansResult{}
	err := c.Execute(func(w *core.Worker) error {
		// Initial centers: identical deterministic choice on every node.
		perm := xrand.Perm(n, xrand.Mix(seed, 0x4b3))
		cs := make([]graph.VertexID, 0, centers)
		for _, v := range perm {
			if len(cs) == centers {
				break
			}
			cs = append(cs, graph.VertexID(v))
		}

		cluster := make([]uint32, n) // masters authoritative
		dist := make([]int32, n)
		var distSums []int64
		totalRounds := 0
		for iter := 0; iter < iters; iter++ {
			for v := range cluster {
				cluster[v] = seq.NoCluster
				dist[v] = -1
			}
			assigned := bitset.New(n)
			for cid, cv := range cs {
				cluster[cv] = uint32(cid)
				dist[cv] = 0
				assigned.Set(int(cv))
			}
			for round := int32(1); ; round++ {
				totalRounds++
				newAssigned := bitset.New(n)
				adopted, err := core.ProcessEdgesDense(w, core.DenseParams[uint32]{
					Codec:     core.U32Codec{},
					ActiveDst: func(dst graph.VertexID) bool { return !assigned.Get(int(dst)) },
					Signal: func(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
						for _, u := range srcs {
							ctx.Edge()
							if assigned.Get(int(u)) {
								ctx.Emit(cluster[u])
								ctx.EmitDep()
								break
							}
						}
					},
					Slot: func(dst graph.VertexID, cid uint32) int64 {
						if cluster[dst] != seq.NoCluster {
							return 0
						}
						cluster[dst] = cid
						dist[dst] = round
						newAssigned.Set(int(dst))
						return 1
					},
				})
				if err != nil {
					return err
				}
				if adopted == 0 {
					break
				}
				if err := syncMasterBitmapFrom(w, newAssigned); err != nil {
					return err
				}
				assigned.Union(newAssigned)
			}
			// Step 3: total distance.
			sum, err := w.ProcessVertices(func(v graph.VertexID) int64 {
				if dist[v] > 0 {
					return int64(dist[v])
				}
				return 0
			})
			if err != nil {
				return err
			}
			distSums = append(distSums, sum)
			if iter == iters-1 {
				break
			}
			// Step 4: re-center — global argmin of a deterministic hash
			// per cluster, combined from per-node local minima.
			cs2, err := recenterDistributed(w, cluster, cs, seed, iter)
			if err != nil {
				return err
			}
			cs = cs2
		}

		if err := w.GatherU32(cluster); err != nil {
			return err
		}
		distU := make([]uint32, n)
		for v, d := range dist {
			distU[v] = uint32(d)
		}
		if err := w.GatherU32(distU); err != nil {
			return err
		}
		if w.ID() == 0 {
			res.Cluster = cluster
			res.Dist = make([]int32, n)
			for v, d := range distU {
				res.Dist[v] = int32(d)
			}
			res.Centers = cs
			res.DistSums = distSums
			res.Rounds = totalRounds
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// recenterDistributed computes seq.Recenter's result without shared
// memory: each node finds, per cluster, the member of its master range
// minimizing the deterministic hash; the per-cluster (key, vertex) pairs
// are all-gathered and combined identically everywhere.
func recenterDistributed(w *core.Worker, cluster []uint32, prev []graph.VertexID, seed uint64, iter int) ([]graph.VertexID, error) {
	k := len(prev)
	bestKey := make([]float64, k)
	bestV := make([]graph.VertexID, k)
	for cid := range bestKey {
		bestKey[cid] = math.Inf(1)
		bestV[cid] = prev[cid]
	}
	lo, hi := w.MasterRange()
	for v := lo; v < hi; v++ {
		cid := cluster[v]
		if cid == seq.NoCluster {
			continue
		}
		key := xrand.Uniform01(seed, 0x7e, uint64(iter), uint64(v))
		if key < bestKey[cid] {
			bestKey[cid] = key
			bestV[cid] = graph.VertexID(v)
		}
	}
	blob := make([]byte, k*12)
	for cid := 0; cid < k; cid++ {
		binary.LittleEndian.PutUint64(blob[cid*12:], math.Float64bits(bestKey[cid]))
		binary.LittleEndian.PutUint32(blob[cid*12+8:], uint32(bestV[cid]))
	}
	all, err := w.AllGatherBlob(blob)
	if err != nil {
		return nil, err
	}
	out := make([]graph.VertexID, k)
	outKey := make([]float64, k)
	for cid := 0; cid < k; cid++ {
		outKey[cid] = math.Inf(1)
		out[cid] = prev[cid]
	}
	for _, payload := range all {
		if len(payload) != k*12 {
			return nil, fmt.Errorf("algorithms: recenter blob is %d bytes, want %d", len(payload), k*12)
		}
		for cid := 0; cid < k; cid++ {
			key := math.Float64frombits(binary.LittleEndian.Uint64(payload[cid*12:]))
			v := graph.VertexID(binary.LittleEndian.Uint32(payload[cid*12+8:]))
			if key < outKey[cid] {
				outKey[cid] = key
				out[cid] = v
			}
		}
	}
	return out, nil
}
