package algorithms

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/seq"
)

// testConfigs is the cross-mode configuration grid: both modes, several
// cluster sizes, with and without differentiated propagation and double
// buffering, and one multi-worker config.
var testConfigs = []core.Options{
	{NumNodes: 1, Mode: core.ModeGemini},
	{NumNodes: 1, Mode: core.ModeSympleGraph},
	{NumNodes: 2, Mode: core.ModeGemini},
	{NumNodes: 2, Mode: core.ModeSympleGraph, DepThreshold: 0, NumBuffers: 1},
	{NumNodes: 4, Mode: core.ModeGemini, Workers: 2},
	{NumNodes: 4, Mode: core.ModeSympleGraph, DepThreshold: 0, NumBuffers: 2},
	{NumNodes: 4, Mode: core.ModeSympleGraph, DepThreshold: 32, NumBuffers: 2, Workers: 2},
	{NumNodes: 5, Mode: core.ModeSympleGraph, DepThreshold: 8, NumBuffers: 3},
}

func cfgName(o core.Options) string {
	return fmt.Sprintf("p=%d/%v/thr=%d/B=%d/w=%d", o.NumNodes, o.Mode, o.DepThreshold, o.NumBuffers, o.Workers)
}

func forAllConfigs(t *testing.T, g *graph.Graph, fn func(t *testing.T, c *core.Cluster)) {
	t.Helper()
	for _, opts := range testConfigs {
		t.Run(cfgName(opts), func(t *testing.T) {
			c, err := core.NewCluster(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			fn(t, c)
		})
	}
}

func TestBFSMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat": graph.RMAT(10, 8, graph.Graph500Params(), 1),
		"sym":  graph.Symmetrize(graph.RMAT(9, 8, graph.Graph500Params(), 2)),
		"grid": graph.Grid(16, 16),
		"star": graph.Star(600),
	}
	for name, g := range graphs {
		root, _ := graph.LargestOutDegreeVertex(g)
		t.Run(name, func(t *testing.T) {
			forAllConfigs(t, g, func(t *testing.T, c *core.Cluster) {
				res, err := BFS(c, root)
				if err != nil {
					t.Fatal(err)
				}
				if msg := seq.ValidateBFS(g, root, &seq.BFSResult{Depth: res.Depth, Parent: res.Parent}); msg != "" {
					t.Fatal(msg)
				}
			})
		})
	}
}

func TestBFSUsesBothDirections(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(11, 16, graph.Graph500Params(), 3))
	root, _ := graph.LargestOutDegreeVertex(g)
	c, err := core.NewCluster(g, core.Options{NumNodes: 4, Mode: core.ModeSympleGraph, DepThreshold: 32, NumBuffers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := BFS(c, root)
	if err != nil {
		t.Fatal(err)
	}
	if res.BottomUpSteps == 0 {
		t.Fatalf("adaptive BFS never went bottom-up: %+v", res)
	}
	if res.TopDownSteps == 0 {
		t.Fatalf("adaptive BFS never went top-down: %+v", res)
	}
}

func TestBFSRejectsBadRoot(t *testing.T) {
	g := graph.Ring(16)
	c, _ := core.NewCluster(g, core.Options{NumNodes: 2})
	defer c.Close()
	if _, err := BFS(c, 99); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestMISMatchesSequential(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(9, 8, graph.Graph500Params(), 4))
	const seed = 7
	want := seq.GreedyMIS(g, seq.MISColors(g.NumVertices(), seed))
	forAllConfigs(t, g, func(t *testing.T, c *core.Cluster) {
		res, err := MIS(c, seed)
		if err != nil {
			t.Fatal(err)
		}
		if msg := seq.ValidateMIS(g, res.InMIS); msg != "" {
			t.Fatal(msg)
		}
		for v := range want {
			if res.InMIS[v] != want[v] {
				t.Fatalf("vertex %d: got %v, want %v", v, res.InMIS[v], want[v])
			}
		}
		if res.Rounds < 1 {
			t.Fatal("no rounds recorded")
		}
	})
}

func TestKCoreMatchesSequential(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(9, 8, graph.Graph500Params(), 5))
	core8 := seq.Coreness(g)
	for _, k := range []int{2, 4, 8} {
		want, _ := seq.KCoreIterative(g, k)
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			forAllConfigs(t, g, func(t *testing.T, c *core.Cluster) {
				res, err := KCore(c, k)
				if err != nil {
					t.Fatal(err)
				}
				for v := range want {
					if res.InCore[v] != want[v] {
						t.Fatalf("vertex %d: got %v, want %v (coreness %d)", v, res.InCore[v], want[v], core8[v])
					}
				}
			})
		})
	}
}

func TestKCoreRejectsBadK(t *testing.T) {
	g := graph.Ring(16)
	c, _ := core.NewCluster(g, core.Options{NumNodes: 2})
	defer c.Close()
	if _, err := KCore(c, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestKMeansMatchesSequentialRingOrder(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(9, 8, graph.Graph500Params(), 6))
	const seed, centers, iters = 11, 16, 3
	forAllConfigs(t, g, func(t *testing.T, c *core.Cluster) {
		res, err := KMeans(c, centers, iters, seed)
		if err != nil {
			t.Fatal(err)
		}
		if msg := seq.ValidateKMeans(g, res); msg != "" {
			t.Fatal(msg)
		}
		want := seq.KMeans(g, centers, iters, seed, seq.RingOrder(c.Partition()))
		for v := range want.Cluster {
			if res.Cluster[v] != want.Cluster[v] {
				t.Fatalf("vertex %d: cluster %d, want %d", v, res.Cluster[v], want.Cluster[v])
			}
			if res.Dist[v] != want.Dist[v] {
				t.Fatalf("vertex %d: dist %d, want %d", v, res.Dist[v], want.Dist[v])
			}
		}
		for i := range want.DistSums {
			if res.DistSums[i] != want.DistSums[i] {
				t.Fatalf("iteration %d: dist sum %d, want %d", i, res.DistSums[i], want.DistSums[i])
			}
		}
	})
}

func TestKMeansRejectsBadArgs(t *testing.T) {
	g := graph.Ring(16)
	c, _ := core.NewCluster(g, core.Options{NumNodes: 2})
	defer c.Close()
	if _, err := KMeans(c, 0, 1, 1); err == nil {
		t.Fatal("centers=0 accepted")
	}
	if _, err := KMeans(c, 99, 1, 1); err == nil {
		t.Fatal("centers>|V| accepted")
	}
	if _, err := KMeans(c, 2, 0, 1); err == nil {
		t.Fatal("iters=0 accepted")
	}
}

func TestSampleValidEverywhere(t *testing.T) {
	g := graph.RMAT(9, 8, graph.Graph500Params(), 8)
	const seed, rounds = 13, 3
	forAllConfigs(t, g, func(t *testing.T, c *core.Cluster) {
		res, err := Sample(c, seed, rounds)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Picks) != rounds {
			t.Fatalf("%d rounds returned", len(res.Picks))
		}
		for r, pick := range res.Picks {
			if msg := seq.ValidateSample(g, pick); msg != "" {
				t.Fatalf("round %d: %s", r, msg)
			}
		}
		if c.Options().Mode == core.ModeSympleGraph && c.Options().NumNodes > 1 && c.Options().DepThreshold == 0 {
			if res.ExactPicks == 0 {
				t.Fatal("no exact picks under full dependency tracking")
			}
		}
	})
}

// TestSampleMatchesOracleExactly: with full dependency tracking the
// distributed prefix walk must reproduce the sequential ring-order oracle
// pick for pick; single-machine runs must reproduce the ascending oracle.
func TestSampleMatchesOracleExactly(t *testing.T) {
	g := graph.RMAT(9, 8, graph.Graph500Params(), 9)
	const seed, rounds = 17, 2
	for _, p := range []int{2, 4} {
		t.Run(fmt.Sprintf("dep/p=%d", p), func(t *testing.T) {
			c, err := core.NewCluster(g, core.Options{
				NumNodes: p, Mode: core.ModeSympleGraph, DepThreshold: 0, NumBuffers: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			res, err := Sample(c, seed, rounds)
			if err != nil {
				t.Fatal(err)
			}
			order := seq.RingOrder(c.Partition())
			for round := 0; round < rounds; round++ {
				want, _ := seq.SampleNeighbors(g, seed, round, order)
				for v := range want {
					if res.Picks[round][v] != want[v] {
						t.Fatalf("round %d vertex %d: pick %d, want %d", round, v, res.Picks[round][v], want[v])
					}
				}
			}
		})
	}
	for _, mode := range []core.Mode{core.ModeGemini, core.ModeSympleGraph} {
		t.Run(fmt.Sprintf("p=1/%v", mode), func(t *testing.T) {
			c, err := core.NewCluster(g, core.Options{NumNodes: 1, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			res, err := Sample(c, seed, 1)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := seq.SampleNeighbors(g, seed, 0, nil)
			for v := range want {
				if res.Picks[0][v] != want[v] {
					t.Fatalf("vertex %d: pick %d, want %d", v, res.Picks[0][v], want[v])
				}
			}
		})
	}
}

// TestSympleGraphBeatsGeminiOnWork asserts the paper's headline effect at
// test scale: with dependency propagation the cluster traverses fewer
// edges and sends fewer update bytes than the Gemini baseline on a skewed
// graph.
func TestSympleGraphBeatsGeminiOnWork(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(10, 16, graph.Graph500Params(), 10))
	root, _ := graph.LargestOutDegreeVertex(g)
	run := func(mode core.Mode) core.RunStats {
		opts := core.Options{NumNodes: 4, Mode: mode, NumBuffers: 2}
		if mode == core.ModeSympleGraph {
			opts.DepThreshold = 32
		}
		c, err := core.NewCluster(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := BFS(c, root); err != nil {
			t.Fatal(err)
		}
		return c.Stats().Totals
	}
	gem := run(core.ModeGemini)
	sym := run(core.ModeSympleGraph)
	if sym.EdgesTraversed >= gem.EdgesTraversed {
		t.Fatalf("edges: symple %d, gemini %d", sym.EdgesTraversed, gem.EdgesTraversed)
	}
	if sym.UpdateBytes >= gem.UpdateBytes {
		t.Fatalf("update bytes: symple %d, gemini %d", sym.UpdateBytes, gem.UpdateBytes)
	}
	if sym.DependencyBytes == 0 || gem.DependencyBytes != 0 {
		t.Fatalf("dependency bytes: symple %d, gemini %d", sym.DependencyBytes, gem.DependencyBytes)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two rings plus isolated vertices.
	var edges []graph.Edge
	for v := 0; v < 10; v++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID((v + 1) % 10)})
	}
	for v := 20; v < 30; v++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID((v-20+1)%10 + 20)})
	}
	g := graph.Symmetrize(graph.MustFromEdges(40, edges, graph.BuildOptions{}))
	forAllConfigs(t, g, func(t *testing.T, c *core.Cluster) {
		labels, err := ConnectedComponents(c)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 10; v++ {
			if labels[v] != 0 {
				t.Fatalf("vertex %d label %d, want 0", v, labels[v])
			}
		}
		for v := 20; v < 30; v++ {
			if labels[v] != 20 {
				t.Fatalf("vertex %d label %d, want 20", v, labels[v])
			}
		}
		for v := 30; v < 40; v++ {
			if labels[v] != uint32(v) {
				t.Fatalf("isolated vertex %d label %d", v, labels[v])
			}
		}
	})
}

func dijkstra(g *graph.Graph, root graph.VertexID) []float32 {
	n := g.NumVertices()
	dist := make([]float32, n)
	for i := range dist {
		dist[i] = InfDist
	}
	dist[root] = 0
	visited := make([]bool, n)
	for {
		best := -1
		for v := 0; v < n; v++ {
			if !visited[v] && dist[v] < InfDist && (best < 0 || dist[v] < dist[best]) {
				best = v
			}
		}
		if best < 0 {
			break
		}
		visited[best] = true
		ws := g.OutWeights(graph.VertexID(best))
		for i, u := range g.OutNeighbors(graph.VertexID(best)) {
			if d := dist[best] + ws[i]; d < dist[u] {
				dist[u] = d
			}
		}
	}
	return dist
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	g := graph.RandomWeights(graph.Symmetrize(graph.RMAT(8, 8, graph.Graph500Params(), 11)), 12)
	root, _ := graph.LargestOutDegreeVertex(g)
	want := dijkstra(g, root)
	forAllConfigs(t, g, func(t *testing.T, c *core.Cluster) {
		dist, err := SSSP(c, root)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if dist[v] != want[v] {
				t.Fatalf("vertex %d: dist %g, want %g", v, dist[v], want[v])
			}
		}
	})
}

func TestSSSPRejectsUnweighted(t *testing.T) {
	g := graph.Ring(16)
	c, _ := core.NewCluster(g, core.Options{NumNodes: 2})
	defer c.Close()
	if _, err := SSSP(c, 0); err == nil {
		t.Fatal("unweighted graph accepted")
	}
}
