// Package algorithms implements the paper's five evaluation algorithms —
// direction-optimizing BFS, Maximal Independent Set, K-core, graph
// K-means, and weighted neighbor sampling (§2.1, Figure 3) — plus
// connected components and SSSP to demonstrate the substrate generality,
// all on the core engine's signal/slot API.
//
// Every algorithm runs unchanged in ModeGemini (the baseline) and
// ModeSympleGraph (dependency propagation), producing identical results;
// the difference is the work and traffic recorded in the cluster's
// RunStats. UDFs here are the instrumented forms of the paper's Figure 5:
// the engine performs receive_dep before invoking the signal, the UDF
// calls ctx.EmitDep at its break, and ctx.Edge where the analyzer inserts
// traversal accounting.
package algorithms

import (
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
)

// None marks absent vertex values (no parent, no cluster, no pick).
const None = ^uint32(0)

// syncMasterBitmapFrom builds a full-length bitmap whose master segment
// contains the bits this worker's slot pass recorded, then merges all
// segments. It is the per-iteration frontier publication step.
func syncMasterBitmapFrom(w *core.Worker, local *bitset.Bitmap) error {
	return w.SyncBitmap(local)
}

// frontierEdges sums the out-degrees of this worker's master vertices in
// the frontier — the direction-switch statistic — and reduces globally.
func frontierEdges(w *core.Worker, frontier *bitset.Bitmap) (int64, error) {
	g := w.Graph()
	lo, hi := w.MasterRange()
	var local int64
	frontier.RangeSegment(lo, hi, func(v int) bool {
		local += int64(g.OutDegree(graph.VertexID(v)))
		return true
	})
	return w.AllReduceSum(local)
}

// localFrontierList materializes this worker's master vertices in the
// frontier bitmap.
func localFrontierList(w *core.Worker, frontier *bitset.Bitmap) []graph.VertexID {
	lo, hi := w.MasterRange()
	var out []graph.VertexID
	frontier.RangeSegment(lo, hi, func(v int) bool {
		out = append(out, graph.VertexID(v))
		return true
	})
	return out
}
