package algorithms

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bitset"
)

// Superstep snapshot encoding for the checkpoint/restart path
// (core.Worker.Checkpoint). Each algorithm serializes exactly the
// per-node replicated state its superstep loop carries — the same bytes
// a real machine would spill to stable storage — so a recovered run
// resumes from the committed iteration and produces bit-identical
// results to a fault-free one.
//
// The format is a version byte followed by fixed-order little-endian
// fields; array lengths are implied by the graph size, which the
// re-formed cluster shares with the failed one.

const snapVersion = 1

// snapWriter accumulates a snapshot blob.
type snapWriter struct {
	buf []byte
}

func newSnapWriter() *snapWriter {
	return &snapWriter{buf: []byte{snapVersion}}
}

func (sw *snapWriter) u32(v uint32) {
	sw.buf = binary.LittleEndian.AppendUint32(sw.buf, v)
}

func (sw *snapWriter) u32s(vs []uint32) {
	for _, v := range vs {
		sw.u32(v)
	}
}

func (sw *snapWriter) i32s(vs []int32) {
	for _, v := range vs {
		sw.u32(uint32(v))
	}
}

func (sw *snapWriter) f32s(vs []float32) {
	for _, v := range vs {
		sw.u32(math.Float32bits(v))
	}
}

func (sw *snapWriter) bitmap(b *bitset.Bitmap) {
	sw.buf = b.MarshalBinaryTo(sw.buf)
}

func (sw *snapWriter) bytes() []byte { return sw.buf }

// snapReader decodes a snapshot blob, tracking truncation.
type snapReader struct {
	buf []byte
	off int
	err error
}

func newSnapReader(blob []byte) *snapReader {
	r := &snapReader{buf: blob}
	if len(blob) < 1 || blob[0] != snapVersion {
		r.err = fmt.Errorf("algorithms: snapshot version mismatch")
		return r
	}
	r.off = 1
	return r
}

func (sr *snapReader) u32() uint32 {
	if sr.err != nil {
		return 0
	}
	if sr.off+4 > len(sr.buf) {
		sr.err = fmt.Errorf("algorithms: snapshot truncated at offset %d", sr.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(sr.buf[sr.off:])
	sr.off += 4
	return v
}

func (sr *snapReader) u32s(dst []uint32) {
	for i := range dst {
		dst[i] = sr.u32()
	}
}

func (sr *snapReader) i32s(dst []int32) {
	for i := range dst {
		dst[i] = int32(sr.u32())
	}
}

func (sr *snapReader) f32s(dst []float32) {
	for i := range dst {
		dst[i] = math.Float32frombits(sr.u32())
	}
}

func (sr *snapReader) bitmap(b *bitset.Bitmap) {
	if sr.err != nil {
		return
	}
	size := b.MarshaledSize()
	if sr.off+size > len(sr.buf) {
		sr.err = fmt.Errorf("algorithms: snapshot truncated at offset %d", sr.off)
		return
	}
	sr.err = b.UnmarshalBinary(sr.buf[sr.off : sr.off+size])
	sr.off += size
}

// finish reports a decoding error, including trailing garbage.
func (sr *snapReader) finish() error {
	if sr.err != nil {
		return sr.err
	}
	if sr.off != len(sr.buf) {
		return fmt.Errorf("algorithms: snapshot has %d trailing bytes", len(sr.buf)-sr.off)
	}
	return nil
}
