package algorithms

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// PageRank runs power-iteration PageRank in dense pull mode for a fixed
// number of iterations with the given damping factor (dangling mass is
// not redistributed, as in Gemini's reference implementation). PageRank's
// signal has *no* loop-carried dependency — every neighbor contributes to
// the sum — so SympleGraph mode runs it at Gemini cost; it is included
// (like CC and SSSP) to show the engine is a complete vertex-centric
// framework, and serves as the analyzer's negative example.
func PageRank(c core.Engine, iters int, damping float64) ([]float64, error) {
	if iters < 1 || damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("algorithms: PageRank iters=%d damping=%g", iters, damping)
	}
	g := c.Graph()
	n := g.NumVertices()
	if n == 0 {
		return nil, nil
	}
	out := make([]float64, n)
	err := c.Execute(func(w *core.Worker) error {
		// The signal reads rank[u] for local masters only (sources are
		// always local in pull mode), so the array needs no mid-run
		// replication: masters update their own range each iteration.
		rank := make([]float64, n)
		next := make([]float64, n)
		for v := range rank {
			rank[v] = 1 / float64(n)
		}
		base := (1 - damping) / float64(n)
		lo, hi := w.MasterRange()
		for it := 0; it < iters; it++ {
			for v := lo; v < hi; v++ {
				next[v] = 0
			}
			if _, err := core.ProcessEdgesDense(w, core.DenseParams[float64]{
				Codec: core.F64Codec{},
				Signal: func(ctx *core.DenseCtx[float64], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
					sum := 0.0
					for _, u := range srcs {
						ctx.Edge()
						if d := g.OutDegree(u); d > 0 {
							sum += rank[u] / float64(d)
						}
					}
					ctx.Emit(sum)
				},
				Slot: func(dst graph.VertexID, contrib float64) int64 {
					next[dst] += contrib
					return 0
				},
			}); err != nil {
				return err
			}
			for v := lo; v < hi; v++ {
				rank[v] = base + damping*next[v]
			}
		}
		if err := w.AllGatherF64(rank); err != nil {
			return err
		}
		if w.ID() == 0 {
			copy(out, rank)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
