package algorithms

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
)

// KCoreResult is the distributed K-core output.
type KCoreResult struct {
	InCore []bool
	Rounds int
}

// KCore computes the K-core of a symmetric graph with the paper's
// iterative algorithm (Figure 3b): each round counts every active
// vertex's active neighbors — exiting at K, the loop-carried dependency —
// and removes vertices below K until a fixed point.
//
// The dependency message is control-only, as in the paper ("for these
// algorithms, control dependency communication is one bit per vertex"):
// a machine whose local partial count reaches K emits the skip bit, so
// machines later in the ring neither scan nor send; the master keeps any
// vertex whose summed partials reach K. Counts are not carried across
// machines — each machine counts its local neighbors from zero.
func KCore(c core.Engine, k int) (*KCoreResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("algorithms: KCore k = %d", k)
	}
	g := c.Graph()
	n := g.NumVertices()
	res := &KCoreResult{}
	err := c.Execute(func(w *core.Worker) error {
		active := bitset.New(n)
		active.Fill()
		lo, hi := w.MasterRange()
		counts := make([]int64, n) // master partial-count accumulator
		rounds := 0
		for {
			rounds++
			for v := lo; v < hi; v++ {
				counts[v] = 0
			}
			if _, err := core.ProcessEdgesDense(w, core.DenseParams[int64]{
				Codec:     core.I64Codec{},
				ActiveDst: func(dst graph.VertexID) bool { return active.Get(int(dst)) },
				Signal: func(ctx *core.DenseCtx[int64], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
					var cnt int64
					for _, u := range srcs {
						ctx.Edge()
						if active.Get(int(u)) {
							cnt++
							if cnt >= int64(k) {
								// Locally certain: later machines can
								// skip this vertex entirely.
								ctx.EmitDep()
								break
							}
						}
					}
					if cnt > 0 {
						ctx.Emit(cnt)
					}
				},
				Slot: func(dst graph.VertexID, partial int64) int64 {
					counts[dst] += partial
					return 0
				},
			}); err != nil {
				return err
			}
			removed := bitset.New(n)
			nRemoved, err := w.ProcessVertices(func(v graph.VertexID) int64 {
				if !active.Get(int(v)) {
					return 0
				}
				if counts[v] >= int64(k) {
					return 0
				}
				removed.SetAtomic(int(v)) // workers share words
				return 1
			})
			if err != nil {
				return err
			}
			if nRemoved == 0 {
				break
			}
			if err := syncMasterBitmapFrom(w, removed); err != nil {
				return err
			}
			active.AndNot(removed)
		}

		out := make([]uint32, n)
		active.RangeSegment(lo, hi, func(v int) bool { out[v] = 1; return true })
		if err := w.AllGatherU32(out); err != nil {
			return err
		}
		if w.ID() == 0 {
			full := make([]bool, n)
			for v, x := range out {
				full[v] = x == 1
			}
			res.InCore = full
			res.Rounds = rounds
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
