package algorithms

import (
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
)

// TestChaosBFSRecoversViaFileStore is TestChaosBFSRecoversBitIdentical
// with the file-backed checkpoint store standing in for stable storage:
// the crash recovery restores the snapshot from disk and the result
// still matches the fault-free baseline bit for bit.
func TestChaosBFSRecoversViaFileStore(t *testing.T) {
	g := chaosGraph(64)

	baseline, err := BFS(mustAlgCluster(t, g, core.Options{NumNodes: 2}), 0)
	if err != nil {
		t.Fatal(err)
	}

	fs, err := core.NewFileCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plan := &comm.FaultPlan{Seed: 2026, CrashNode: 1, CrashAtSuperstep: 10}
	c := mustAlgCluster(t, g, core.Options{
		NumNodes:        2,
		Fault:           plan,
		CheckpointEvery: 4,
		Checkpoints:     fs,
		MaxRestarts:     1,
	})
	got, err := BFS(c, 0)
	if err != nil {
		t.Fatalf("BFS under chaos: %v", err)
	}
	if c.Stats().Restarts != 1 {
		t.Fatalf("Stats().Restarts = %d, want 1", c.Stats().Restarts)
	}
	st := fs.Stats()
	if st.Commits == 0 || st.Restores == 0 {
		t.Fatalf("file store saw commits=%d restores=%d, want both > 0", st.Commits, st.Restores)
	}
	if err := fs.Err(); err != nil {
		t.Fatalf("file store I/O error: %v", err)
	}
	if !reflect.DeepEqual(got.Parent, baseline.Parent) || !reflect.DeepEqual(got.Depth, baseline.Depth) {
		t.Fatal("recovered BFS result differs from fault-free baseline")
	}
}

// TestBFSResumesAcrossProcessRestart simulates a daemon dying and
// restarting mid-query: the first incarnation runs checkpointed BFS to
// completion (committing snapshots to disk), the second builds a fresh
// cluster over a reopened store with ResumeCheckpoints — its run
// restores the committed superstep instead of starting from the root,
// and its result matches the first run exactly.
func TestBFSResumesAcrossProcessRestart(t *testing.T) {
	g := chaosGraph(64)
	dir := t.TempDir()

	s1, err := core.NewFileCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := mustAlgCluster(t, g, core.Options{NumNodes: 2, CheckpointEvery: 4, Checkpoints: s1})
	want, err := BFS(c1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Stats().Commits == 0 {
		t.Fatal("first incarnation committed no checkpoints")
	}

	// "Process restart": new store object on the same directory, new
	// cluster, resume enabled so the engine keeps the on-disk snapshot.
	s2, err := core.NewFileCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Stats().CommittedIter < 0 {
		t.Fatal("reopened store lost the committed snapshot")
	}
	c2 := mustAlgCluster(t, g, core.Options{
		NumNodes:          2,
		CheckpointEvery:   4,
		Checkpoints:       s2,
		ResumeCheckpoints: true,
	})
	got, err := BFS(c2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Stats().Restores == 0 {
		t.Fatal("resumed run restored nothing from disk")
	}
	if !reflect.DeepEqual(got.Parent, want.Parent) || !reflect.DeepEqual(got.Depth, want.Depth) {
		t.Fatal("resumed BFS result differs from the first incarnation")
	}
}
