package algorithms

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
)

// BFSResult is the distributed BFS output plus per-direction iteration
// counts (the adaptive switch statistic).
type BFSResult struct {
	Parent []uint32 // None for the root and unreached vertices
	Depth  []int32  // -1 for unreached vertices
	// TopDownSteps/BottomUpSteps count iterations executed in each
	// direction by the adaptive switch.
	TopDownSteps, BottomUpSteps int
}

// Direction selects BFS's traversal strategy per iteration.
type Direction int

const (
	// DirectionAdaptive switches per iteration on the frontier's
	// out-edge count (Beamer's heuristic; the paper's evaluation
	// configuration).
	DirectionAdaptive Direction = iota
	// DirectionTopDown forces sparse push every iteration — no
	// loop-carried dependency, the conventional BFS.
	DirectionTopDown
	// DirectionBottomUp forces dense pull every iteration — maximal
	// exposure of the loop-carried dependency.
	DirectionBottomUp
)

// BFS runs direction-optimizing breadth-first search from root (paper
// §2.1/§7.1: "adaptive direction-switch BFS that chooses from both
// top-down and bottom-up algorithms in each iteration"). Bottom-up
// iterations carry the loop-carried dependency — an unvisited vertex
// stops scanning incoming neighbors at its first frontier hit — which
// SympleGraph mode enforces across machines.
func BFS(c core.Engine, root graph.VertexID) (*BFSResult, error) {
	return BFSWithDirection(c, root, DirectionAdaptive)
}

// BFSWithDirection is BFS with a forced traversal direction, for
// direction-ablation experiments.
func BFSWithDirection(c core.Engine, root graph.VertexID, dir Direction) (*BFSResult, error) {
	g := c.Graph()
	n := g.NumVertices()
	if int(root) >= n {
		return nil, fmt.Errorf("algorithms: BFS root %d out of range", root)
	}
	res := &BFSResult{}
	err := c.Execute(func(w *core.Worker) error {
		// Per-node replicated state: what a real machine would hold.
		visited := bitset.New(n)
		frontier := bitset.New(n)
		parent := make([]uint32, n)
		depth := make([]int32, n)
		for i := range parent {
			parent[i] = None
			depth[i] = -1
		}
		visited.Set(int(root))
		frontier.Set(int(root))
		depth[root] = 0

		level := int32(0)
		topDown, bottomUp := 0, 0
		// Superstep checkpointing: on a recovery re-run, resume from the
		// last committed level instead of the root.
		ck := w.Checkpoint()
		iter := 0
		if it, blob, ok := ck.Restore(); ok {
			r := newSnapReader(blob)
			level = int32(r.u32())
			topDown = int(r.u32())
			bottomUp = int(r.u32())
			r.u32s(parent)
			r.i32s(depth)
			r.bitmap(visited)
			r.bitmap(frontier)
			if err := r.finish(); err != nil {
				return err
			}
			iter = it
		}
		for {
			if ck.Due(iter) {
				sw := newSnapWriter()
				sw.u32(uint32(level))
				sw.u32(uint32(topDown))
				sw.u32(uint32(bottomUp))
				sw.u32s(parent)
				sw.i32s(depth)
				sw.bitmap(visited)
				sw.bitmap(frontier)
				ck.Save(iter, sw.bytes())
			}
			fe, err := frontierEdges(w, frontier)
			if err != nil {
				return err
			}
			level++
			next := bitset.New(n)
			var newly int64
			bottomUpNow := dir == DirectionBottomUp ||
				(dir == DirectionAdaptive && fe > g.NumEdges()/20)
			if bottomUpNow {
				// Bottom-up (dense/pull): unvisited vertices look for a
				// frontier in-neighbor — Figure 1's UDF, instrumented.
				bottomUp++
				newly, err = core.ProcessEdgesDense(w, core.DenseParams[uint32]{
					Codec:     core.U32Codec{},
					ActiveDst: func(dst graph.VertexID) bool { return !visited.Get(int(dst)) },
					Signal: func(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
						for _, u := range srcs {
							ctx.Edge()
							if frontier.Get(int(u)) {
								ctx.Emit(uint32(u))
								ctx.EmitDep()
								break
							}
						}
					},
					Slot: func(dst graph.VertexID, u uint32) int64 {
						if parent[dst] != None {
							return 0
						}
						parent[dst] = u
						depth[dst] = level
						next.Set(int(dst))
						return 1
					},
				})
			} else {
				// Top-down (sparse/push).
				topDown++
				newly, err = core.ProcessEdgesSparse(w, core.SparseParams[uint32]{
					Codec:    core.U32Codec{},
					Frontier: localFrontierList(w, frontier),
					Signal: func(ctx *core.SparseCtx[uint32], src graph.VertexID, dsts []graph.VertexID, _ []float32) {
						for _, v := range dsts {
							ctx.Edge()
							if !visited.Get(int(v)) {
								ctx.EmitTo(v, uint32(src))
							}
						}
					},
					Slot: func(dst graph.VertexID, u uint32) int64 {
						if parent[dst] != None {
							return 0
						}
						parent[dst] = u
						depth[dst] = level
						next.Set(int(dst))
						return 1
					},
				})
			}
			if err != nil {
				return err
			}
			if newly == 0 {
				break
			}
			if err := syncMasterBitmapFrom(w, next); err != nil {
				return err
			}
			visited.Union(next)
			frontier = next
			iter++
		}

		// Publish results to node 0, whose copy becomes the return value.
		if err := w.GatherU32(parent); err != nil {
			return err
		}
		depthU := make([]uint32, n)
		for i, d := range depth {
			depthU[i] = uint32(d)
		}
		if err := w.GatherU32(depthU); err != nil {
			return err
		}
		if w.ID() == 0 {
			for i, d := range depthU {
				depth[i] = int32(d)
			}
			res.Parent = parent
			res.Depth = depth
			res.TopDownSteps = topDown
			res.BottomUpSteps = bottomUp
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
