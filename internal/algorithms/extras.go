package algorithms

import (
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
)

// ConnectedComponents labels each vertex of a symmetric graph with the
// smallest vertex ID in its component, by push-style label propagation.
// It has no loop-carried dependency (min is fully commutative) and is
// included to show the substrate runs ordinary Gemini programs unchanged.
func ConnectedComponents(c core.Engine) ([]uint32, error) {
	g := c.Graph()
	n := g.NumVertices()
	out := make([]uint32, n)
	err := c.Execute(func(w *core.Worker) error {
		label := make([]uint32, n) // masters authoritative
		for v := range label {
			label[v] = uint32(v)
		}
		lo, hi := w.MasterRange()
		changed := bitset.New(n)
		for v := lo; v < hi; v++ {
			changed.Set(v)
		}
		for {
			frontier := localFrontierList(w, changed)
			next := bitset.New(n)
			red, err := core.ProcessEdgesSparse(w, core.SparseParams[uint32]{
				Codec:    core.U32Codec{},
				Frontier: frontier,
				Signal: func(ctx *core.SparseCtx[uint32], src graph.VertexID, dsts []graph.VertexID, _ []float32) {
					for _, d := range dsts {
						ctx.Edge()
						ctx.EmitTo(d, label[src])
					}
				},
				Slot: func(dst graph.VertexID, l uint32) int64 {
					if l < label[dst] {
						label[dst] = l
						next.Set(int(dst))
						return 1
					}
					return 0
				},
			})
			if err != nil {
				return err
			}
			if red == 0 {
				break
			}
			// changed is only read for local masters, so no sync is
			// needed — next already holds exactly our changed masters.
			changed = next
		}
		if err := w.GatherU32(label); err != nil {
			return err
		}
		if w.ID() == 0 {
			copy(out, label)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// InfDist marks unreachable vertices in SSSP output.
var InfDist = float32(math.Inf(1))

// SSSP computes single-source shortest paths over positive edge weights
// by distributed Bellman-Ford (push mode). Like ConnectedComponents it
// exercises the general framework rather than the dependency machinery.
func SSSP(c core.Engine, root graph.VertexID) ([]float32, error) {
	g := c.Graph()
	if !g.Weighted() {
		return nil, fmt.Errorf("algorithms: SSSP needs a weighted graph")
	}
	n := g.NumVertices()
	out := make([]float32, n)
	err := c.Execute(func(w *core.Worker) error {
		dist := make([]float32, n) // masters authoritative
		for v := range dist {
			dist[v] = InfDist
		}
		changed := bitset.New(n)
		if w.Owns(root) {
			dist[root] = 0
			changed.Set(int(root))
		}
		// Superstep checkpointing: resume relaxation from the last
		// committed round after a recovery.
		ck := w.Checkpoint()
		iter := 0
		if it, blob, ok := ck.Restore(); ok {
			r := newSnapReader(blob)
			r.f32s(dist)
			r.bitmap(changed)
			if err := r.finish(); err != nil {
				return err
			}
			iter = it
		}
		for {
			if ck.Due(iter) {
				sw := newSnapWriter()
				sw.f32s(dist)
				sw.bitmap(changed)
				ck.Save(iter, sw.bytes())
			}
			frontier := localFrontierList(w, changed)
			next := bitset.New(n)
			red, err := core.ProcessEdgesSparse(w, core.SparseParams[float32]{
				Codec:    core.F32Codec{},
				Frontier: frontier,
				Signal: func(ctx *core.SparseCtx[float32], src graph.VertexID, dsts []graph.VertexID, ws []float32) {
					for i, d := range dsts {
						ctx.Edge()
						ctx.EmitTo(d, dist[src]+ws[i])
					}
				},
				Slot: func(dst graph.VertexID, cand float32) int64 {
					if cand < dist[dst] {
						dist[dst] = cand
						next.Set(int(dst))
						return 1
					}
					return 0
				},
			})
			if err != nil {
				return err
			}
			if red == 0 {
				break
			}
			changed = next
			iter++
		}
		// Publish as bit patterns to survive the u32 gather.
		bits := make([]uint32, n)
		lo, hi := w.MasterRange()
		for v := lo; v < hi; v++ {
			bits[v] = math.Float32bits(dist[v])
		}
		if err := w.GatherU32(bits); err != nil {
			return err
		}
		if w.ID() == 0 {
			for v, b := range bits {
				out[v] = math.Float32frombits(b)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
