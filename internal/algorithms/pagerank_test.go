package algorithms

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// seqPageRank is the single-threaded oracle matching PageRank's
// semantics (fixed iterations, no dangling redistribution).
func seqPageRank(g *graph.Graph, iters int, damping float64) []float64 {
	n := g.NumVertices()
	rank := make([]float64, n)
	for v := range rank {
		rank[v] = 1 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(graph.VertexID(v)) {
				if d := g.OutDegree(u); d > 0 {
					sum += rank[u] / float64(d)
				}
			}
			next[v] = base + damping*sum
		}
		rank = next
	}
	return rank
}

func TestPageRankMatchesSequential(t *testing.T) {
	g := graph.RMAT(9, 8, graph.Graph500Params(), 14)
	want := seqPageRank(g, 5, 0.85)
	forAllConfigs(t, g, func(t *testing.T, c *core.Cluster) {
		got, err := PageRank(c, 5, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-12 {
				t.Fatalf("vertex %d: rank %g, want %g", v, got[v], want[v])
			}
		}
	})
}

func TestPageRankRanksHubsHigher(t *testing.T) {
	// The star hub receives rank from all spokes.
	g := graph.Star(64)
	c, err := core.NewCluster(g, core.Options{NumNodes: 4, Mode: core.ModeSympleGraph})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rank, err := PageRank(c, 10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 64; v++ {
		if rank[0] <= rank[v] {
			t.Fatalf("hub rank %g not above spoke %d rank %g", rank[0], v, rank[v])
		}
	}
}

func TestPageRankRejectsBadArgs(t *testing.T) {
	g := graph.Ring(16)
	c, _ := core.NewCluster(g, core.Options{NumNodes: 2})
	defer c.Close()
	for _, tc := range []struct {
		iters   int
		damping float64
	}{{0, 0.85}, {3, 0}, {3, 1}, {3, -0.5}} {
		if _, err := PageRank(c, tc.iters, tc.damping); err == nil {
			t.Fatalf("iters=%d damping=%g accepted", tc.iters, tc.damping)
		}
	}
}

// PageRank has no loop-carried dependency, so SympleGraph mode must not
// reduce its edge traversals — the engine's pruning applies only when
// UDFs emit dependency.
func TestPageRankNoDependencySavings(t *testing.T) {
	g := graph.RMAT(9, 8, graph.Graph500Params(), 15)
	run := func(mode core.Mode) int64 {
		c, err := core.NewCluster(g, core.Options{NumNodes: 4, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := PageRank(c, 3, 0.85); err != nil {
			t.Fatal(err)
		}
		return c.Stats().Totals.EdgesTraversed
	}
	if gem, sym := run(core.ModeGemini), run(core.ModeSympleGraph); gem != sym {
		t.Fatalf("edge traversals differ without dependency: gemini %d, symple %d", gem, sym)
	}
}
