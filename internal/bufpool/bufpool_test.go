package bufpool

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{0, 0}, {1, 0}, {64, 0},
		{65, 1}, {128, 1},
		{129, 2}, {256, 2},
		{1 << 24, numClasses - 1},
		{1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetLenCap(t *testing.T) {
	var p Pool
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 4096, 1 << 20} {
		buf := p.Get(n)
		if len(buf) != n {
			t.Fatalf("Get(%d): len %d", n, len(buf))
		}
		c := classFor(n)
		if cap(buf) != classSize(c) {
			t.Fatalf("Get(%d): cap %d, want class size %d", n, cap(buf), classSize(c))
		}
	}
	// Oversized requests are plain allocations.
	huge := p.Get(1<<24 + 1)
	if len(huge) != 1<<24+1 {
		t.Fatalf("oversized Get: len %d", len(huge))
	}
}

func TestRecycle(t *testing.T) {
	var p Pool
	a := p.Get(100)
	a[0] = 0xAB
	p.Put(a)
	b := p.Get(90) // same class (65..128]
	if cap(b) != cap(a) {
		t.Fatalf("recycled buffer has cap %d, want %d", cap(b), cap(a))
	}
	s := p.Stats()
	if s.Hits != 1 {
		t.Fatalf("hits = %d, want 1", s.Hits)
	}
	if s.Gets != 2 || s.Puts != 1 || s.Discards != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPutForeignAndOversized(t *testing.T) {
	var p Pool
	p.Put(make([]byte, 100)) // cap 100 is not a class size
	p.Put(make([]byte, 1<<24+1))
	s := p.Stats()
	if s.Discards != 2 {
		t.Fatalf("discards = %d, want 2", s.Discards)
	}
	// Neither must be handed back out with a short capacity.
	buf := p.Get(100)
	if cap(buf) != 128 {
		t.Fatalf("Get after foreign Put: cap %d", cap(buf))
	}
}

func TestPerClassBound(t *testing.T) {
	var p Pool
	bufs := make([][]byte, 0, maxPerClass+8)
	for i := 0; i < maxPerClass+8; i++ {
		bufs = append(bufs, make([]byte, 64))
	}
	for _, b := range bufs {
		p.Put(b)
	}
	if got := p.Stats().Discards; got != 8 {
		t.Fatalf("discards = %d, want 8", got)
	}
}

func TestConcurrent(t *testing.T) {
	var p Pool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				buf := p.Get(64 + (g*31+i)%4000)
				for j := range buf {
					buf[j] = byte(g)
				}
				for j := range buf {
					if buf[j] != byte(g) {
						t.Errorf("goroutine %d saw foreign byte", g)
						return
					}
				}
				p.Put(buf)
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkGetPut(b *testing.B) {
	var p Pool
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := p.Get(4096)
		p.Put(buf)
	}
}
