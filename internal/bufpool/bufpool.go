// Package bufpool is the engine's size-classed payload slab: the
// allocation substrate of the zero-copy data plane. Message payloads —
// superstep update frames, dependency frames, collective blobs — are
// acquired with Get, handed to the transport with ownership (comm's
// SendBufs), surfaced to the receiver inside a comm.Message, and
// returned with Message.Release. A payload that completes that cycle
// costs zero garbage-collector work in steady state: the slab recycles
// the backing array for the next superstep.
//
// Buffers are grouped in power-of-two size classes from 64 B to 16 MiB.
// Get returns a slice whose capacity is exactly the class size (so Put
// can re-class it without bookkeeping) and whose length is the
// requested size. Requests beyond the largest class fall through to the
// ordinary allocator and are not retained on Put — graphs big enough to
// exceed 16 MiB per frame should be sent in blocks, not pooled whole.
//
// The pool never clears returned buffers: a recycled payload carries
// the previous superstep's bytes until the new owner overwrites them.
// Every producer in the engine writes its full frame before sending, so
// stale bytes are unobservable; the slab cross-pollination race test in
// internal/comm pins this under the race detector.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// minClassBits is the smallest class: 1<<6 = 64 bytes.
	minClassBits = 6
	// maxClassBits is the largest class: 1<<24 = 16 MiB.
	maxClassBits = 24
	numClasses   = maxClassBits - minClassBits + 1

	// maxPerClass bounds how many idle buffers one class retains; the
	// engine's working set is a few frames per (peer, kind) stream, so a
	// deep free list only delays reclamation of a burst.
	maxPerClass = 64
)

// Pool is a size-classed free list of byte buffers. The zero value is
// ready to use; all methods are safe for concurrent use.
type Pool struct {
	classes [numClasses]classList

	gets     atomic.Int64
	hits     atomic.Int64
	puts     atomic.Int64
	discards atomic.Int64
}

type classList struct {
	mu   sync.Mutex
	bufs [][]byte
}

// classFor returns the class index whose buffers hold n bytes, or -1
// when n exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClassBits
	if c >= numClasses {
		return -1
	}
	return c
}

// classSize is the capacity of class c's buffers.
func classSize(c int) int { return 1 << (minClassBits + c) }

// Get returns a buffer of length n whose capacity is the class size
// (≥ n). The contents are unspecified — callers overwrite the full
// length. Buffers beyond the largest class are plain allocations.
func (p *Pool) Get(n int) []byte {
	if n < 0 {
		panic("bufpool: negative size")
	}
	p.gets.Add(1)
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	cl := &p.classes[c]
	cl.mu.Lock()
	if last := len(cl.bufs) - 1; last >= 0 {
		buf := cl.bufs[last]
		cl.bufs[last] = nil
		cl.bufs = cl.bufs[:last]
		cl.mu.Unlock()
		p.hits.Add(1)
		return buf[:n]
	}
	cl.mu.Unlock()
	return make([]byte, n, classSize(c))
}

// Put returns buf to its size class. Only buffers whose capacity is an
// exact class size are retained (everything Get hands out qualifies);
// other buffers — and overflow beyond the per-class bound — are left to
// the garbage collector. The caller must not use buf afterwards.
func (p *Pool) Put(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	p.puts.Add(1)
	c := classFor(cap(buf))
	if c < 0 || classSize(c) != cap(buf) {
		p.discards.Add(1)
		return
	}
	cl := &p.classes[c]
	cl.mu.Lock()
	if len(cl.bufs) >= maxPerClass {
		cl.mu.Unlock()
		p.discards.Add(1)
		return
	}
	cl.bufs = append(cl.bufs, buf[:cap(buf)])
	cl.mu.Unlock()
}

// Stats is a snapshot of the pool's traffic counters.
type Stats struct {
	// Gets counts Get calls; Hits the subset served from a free list.
	Gets, Hits int64
	// Puts counts Put calls; Discards the subset not retained
	// (foreign capacity, oversized, or a full class).
	Puts, Discards int64
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Gets:     p.gets.Load(),
		Hits:     p.hits.Load(),
		Puts:     p.puts.Load(),
		Discards: p.discards.Load(),
	}
}

// Default is the process-wide pool the transports and the engine share.
var Default Pool

// Get returns a buffer of length n from the default pool.
func Get(n int) []byte { return Default.Get(n) }

// Put returns buf to the default pool. The caller must not use buf
// afterwards.
func Put(buf []byte) { Default.Put(buf) }

// PoolStats returns the default pool's counters.
func PoolStats() Stats { return Default.Stats() }
