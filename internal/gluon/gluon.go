// Package gluon is the D-Galois (Gluon) baseline: a bulk-synchronous
// distributed graph engine in the style of Dathathri et al. (PLDI 2018),
// which the paper compares against (§7). Its execution model differs from
// the Gemini/SympleGraph engine in the two ways that matter for the
// comparison:
//
//   - synchronization is Gluon-style reduce + broadcast of vertex-label
//     arrays: after each compute round every machine sends its locally
//     updated proxy values to the owner (reduce), and owners broadcast
//     the combined values to every other machine — rather than Gemini's
//     single-direction delta messages;
//   - there is no dependency propagation and no circulant scheduling:
//     every machine scans its local edges in full each round (local
//     breaks still apply inside a machine, as in the original UDFs).
//
// This reproduces the paper's observation that D-Galois, tuned for
// 128–256-node scale, loses to Gemini and SympleGraph on small clusters
// where its heavier synchronization dominates (Tables 4 and 7,
// Figure 10). Graph sampling is intentionally absent, as it is in
// D-Galois ("Graph sampling implementation is not available", §7.1).
package gluon

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Engine is a Gluon-style cluster over a partitioned graph.
type Engine struct {
	g         *graph.Graph
	pt        *partition.Partition
	kind      PartitionKind
	local     []*localCSR
	endpoints []comm.Endpoint
	mem       *comm.MemCluster

	statsMu   sync.Mutex
	lastStats Stats
}

// Stats aggregates one Run's work and traffic.
type Stats struct {
	EdgesTraversed int64
	SyncBytes      int64
	ControlBytes   int64
}

// TotalBytes returns all sent traffic.
func (s Stats) TotalBytes() int64 { return s.SyncBytes + s.ControlBytes }

// New creates a Gluon engine over p machines with instant delivery and
// the default Cartesian vertex-cut.
func New(g *graph.Graph, p int) (*Engine, error) { return NewWithLink(g, p, nil) }

// NewWithLink creates a Gluon engine whose in-memory transport simulates
// the given interconnect (nil = instant), with the default Cartesian
// vertex-cut.
func NewWithLink(g *graph.Graph, p int, link *comm.LinkModel) (*Engine, error) {
	return NewWithOptions(g, p, link, PartitionCVC)
}

// NewWithOptions additionally selects the edge partition.
func NewWithOptions(g *graph.Graph, p int, link *comm.LinkModel, kind PartitionKind) (*Engine, error) {
	pt, err := partition.NewChunked(g, p, 0)
	if err != nil {
		return nil, err
	}
	e := &Engine{g: g, pt: pt, kind: kind}
	e.local = buildLocalCSRs(g, func(v graph.VertexID) int { return pt.Owner(v) }, p, kind)
	e.mem = comm.NewMemClusterWithLink(p, link)
	e.endpoints = e.mem.Endpoints()
	return e, nil
}

// PartitionKindUsed returns the engine's edge partition.
func (e *Engine) PartitionKindUsed() PartitionKind { return e.kind }

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Close releases the transport.
func (e *Engine) Close() error { return e.mem.Close() }

// LastRunStats returns statistics for the most recent Run.
func (e *Engine) LastRunStats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.lastStats
}

// Worker is one machine's view inside Run.
type Worker struct {
	engine *Engine
	id     int
	ep     comm.Endpoint
	tag    int32
	edges  int64
}

// ID returns the machine's node ID.
func (w *Worker) ID() int { return w.id }

// N returns the cluster size.
func (w *Worker) N() int { return w.engine.pt.P }

// Graph returns the engine's graph.
func (w *Worker) Graph() *graph.Graph { return w.engine.g }

// MasterRange returns the owned vertex range.
func (w *Worker) MasterRange() (int, int) { return w.engine.pt.Range(w.id) }

// CountEdge accounts one local edge traversal.
func (w *Worker) CountEdge() { w.edges++ }

// Local returns this machine's edge share.
func (w *Worker) Local() *localCSR { return w.engine.local[w.id] }

func (w *Worker) nextTags(k int32) int32 {
	t := w.tag
	w.tag += k
	return t
}

// AllReduceSum reduces a sum across machines.
func (w *Worker) AllReduceSum(x int64) (int64, error) {
	return comm.AllReduceInt64(w.ep, x, w.nextTags(1), func(a, b int64) int64 { return a + b })
}

// Run executes prog on every machine concurrently, like core.Cluster.Run.
func (e *Engine) Run(prog func(w *Worker) error) error {
	p := e.pt.P
	before := make([]int64, p)
	beforeCtl := make([]int64, p)
	for i, ep := range e.endpoints {
		before[i] = ep.Stats().SentBytes(comm.KindUpdate)
		beforeCtl[i] = ep.Stats().SentBytes(comm.KindControl)
	}
	workers := make([]*Worker, p)
	errs := make([]error, p)
	done := make(chan int, p)
	for i := 0; i < p; i++ {
		workers[i] = &Worker{engine: e, id: i, ep: e.endpoints[i]}
		go func(i int) {
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("gluon: node %d panicked: %v", i, r)
				}
				done <- i
			}()
			errs[i] = prog(workers[i])
		}(i)
	}
	poisoned := false
	for k := 0; k < p; k++ {
		i := <-done
		if errs[i] != nil && !poisoned {
			poisoned = true
			for _, ep := range e.endpoints {
				ep.Close()
			}
		}
	}
	var stats Stats
	for i, ep := range e.endpoints {
		stats.EdgesTraversed += workers[i].edges
		stats.SyncBytes += ep.Stats().SentBytes(comm.KindUpdate) - before[i]
		stats.ControlBytes += ep.Stats().SentBytes(comm.KindControl) - beforeCtl[i]
	}
	e.statsMu.Lock()
	e.lastStats = stats
	e.statsMu.Unlock()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SyncReduceBroadcastU32 is the Gluon synchronization primitive for a
// uint32 vertex field: every machine sends (vertex, value) for the
// non-owned vertices it touched this round to their owners; owners fold
// the values into the field with combine; owners then broadcast every
// master value that changed (or received a reduction) to all other
// machines, which overwrite their proxies. `touched` is cleared on
// return. The returned count is the number of master vertices whose value
// changed globally this round.
func (w *Worker) SyncReduceBroadcastU32(field []uint32, touched *bitset.Bitmap, combine func(a, b uint32) uint32) (int64, error) {
	p := w.N()
	base := w.nextTags(2)
	lo, hi := w.MasterRange()
	pt := w.engine.pt

	// Reduce phase: route touched non-owned entries to owners.
	bufs := make([][]byte, p)
	touched.Range(func(v int) bool {
		owner := pt.Owner(graph.VertexID(v))
		if owner == w.id {
			return true
		}
		var rec [8]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(v))
		binary.LittleEndian.PutUint32(rec[4:], field[v])
		bufs[owner] = append(bufs[owner], rec[:]...)
		return true
	})
	for peer := 0; peer < p; peer++ {
		if peer == w.id {
			continue
		}
		if err := w.ep.Send(comm.NodeID(peer), comm.KindUpdate, base, bufs[peer]); err != nil {
			return 0, err
		}
	}
	changedMasters := bitset.New(hi - lo)
	touched.RangeSegment(lo, hi, func(v int) bool { changedMasters.Set(v - lo); return true })
	for peer := 0; peer < p; peer++ {
		if peer == w.id {
			continue
		}
		m, err := w.ep.Recv(comm.NodeID(peer), comm.KindUpdate, base)
		if err != nil {
			return 0, err
		}
		for off := 0; off+8 <= len(m.Payload); off += 8 {
			v := int(binary.LittleEndian.Uint32(m.Payload[off:]))
			val := binary.LittleEndian.Uint32(m.Payload[off+4:])
			if v < lo || v >= hi {
				return 0, fmt.Errorf("gluon: reduced vertex %d not owned by %d", v, w.id)
			}
			if nv := combine(field[v], val); nv != field[v] {
				field[v] = nv
				changedMasters.Set(v - lo)
			}
		}
	}

	// Broadcast phase: publish changed master values to every machine.
	var bcast []byte
	changedMasters.Range(func(i int) bool {
		v := lo + i
		var rec [8]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(v))
		binary.LittleEndian.PutUint32(rec[4:], field[v])
		bcast = append(bcast, rec[:]...)
		return true
	})
	for peer := 0; peer < p; peer++ {
		if peer == w.id {
			continue
		}
		if err := w.ep.Send(comm.NodeID(peer), comm.KindUpdate, base+1, bcast); err != nil {
			return 0, err
		}
	}
	for peer := 0; peer < p; peer++ {
		if peer == w.id {
			continue
		}
		m, err := w.ep.Recv(comm.NodeID(peer), comm.KindUpdate, base+1)
		if err != nil {
			return 0, err
		}
		for off := 0; off+8 <= len(m.Payload); off += 8 {
			v := int(binary.LittleEndian.Uint32(m.Payload[off:]))
			field[v] = binary.LittleEndian.Uint32(m.Payload[off+4:])
		}
	}
	touched.ClearAll()
	return w.AllReduceSum(int64(changedMasters.Count()))
}
