package gluon

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// PartitionKind selects how the gluon engine distributes edges.
type PartitionKind int

const (
	// PartitionCVC is the Cartesian vertex-cut D-Galois defaults to
	// ("since it performs well at scale", paper §2.3): machines form an
	// r×c grid, edge (u,v) is placed on the machine at (row of u's
	// owner, column of v's owner), so both endpoints' proxies may be
	// remote.
	PartitionCVC PartitionKind = iota
	// Partition1D places every out-edge with its source's owner —
	// the outgoing edge-cut, for comparison with the core engine.
	Partition1D
)

// String returns the kind's name.
func (k PartitionKind) String() string {
	switch k {
	case PartitionCVC:
		return "cvc"
	case Partition1D:
		return "1d"
	default:
		return fmt.Sprintf("PartitionKind(%d)", int(k))
	}
}

// localCSR is one machine's edge share grouped by source: Srcs lists the
// sources with ≥1 local edge (ascending), Offsets delimits each source's
// destination run in Dsts.
type localCSR struct {
	Srcs    []graph.VertexID
	Offsets []int64
	Dsts    []graph.VertexID
}

// Dests returns the destinations of the i-th source.
func (l *localCSR) Dests(i int) []graph.VertexID {
	return l.Dsts[l.Offsets[i]:l.Offsets[i+1]]
}

// NumEdges returns the machine's local edge count.
func (l *localCSR) NumEdges() int64 { return int64(len(l.Dsts)) }

// gridShape picks the most square r×c factorization of p (r ≤ c).
func gridShape(p int) (r, c int) {
	r = 1
	for f := 1; f*f <= p; f++ {
		if p%f == 0 {
			r = f
		}
	}
	return r, p / r
}

// buildLocalCSRs distributes g's edges to p machines under the given
// partition kind (owner is the 1D master assignment shared with the sync
// layer) and builds each machine's local CSR.
func buildLocalCSRs(g *graph.Graph, owner func(graph.VertexID) int, p int, kind PartitionKind) []*localCSR {
	type rec struct{ src, dst graph.VertexID }
	perMachine := make([][]rec, p)
	rows, cols := gridShape(p)
	_ = rows
	for u := 0; u < g.NumVertices(); u++ {
		src := graph.VertexID(u)
		for _, dst := range g.OutNeighbors(src) {
			var m int
			switch kind {
			case Partition1D:
				m = owner(src)
			default: // PartitionCVC
				m = (owner(src)/cols)*cols + owner(dst)%cols
			}
			perMachine[m] = append(perMachine[m], rec{src, dst})
		}
	}
	out := make([]*localCSR, p)
	for m := 0; m < p; m++ {
		recs := perMachine[m]
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].src != recs[j].src {
				return recs[i].src < recs[j].src
			}
			return recs[i].dst < recs[j].dst
		})
		csr := &localCSR{}
		for _, r := range recs {
			if len(csr.Srcs) == 0 || csr.Srcs[len(csr.Srcs)-1] != r.src {
				csr.Srcs = append(csr.Srcs, r.src)
				csr.Offsets = append(csr.Offsets, int64(len(csr.Dsts)))
			}
			csr.Dsts = append(csr.Dsts, r.dst)
		}
		csr.Offsets = append(csr.Offsets, int64(len(csr.Dsts)))
		out[m] = csr
	}
	return out
}
