package gluon

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/seq"
)

func TestGridShape(t *testing.T) {
	for _, tc := range []struct{ p, r, c int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4}, {9, 3, 3}, {12, 3, 4}, {16, 4, 4}, {7, 1, 7},
	} {
		r, c := gridShape(tc.p)
		if r != tc.r || c != tc.c {
			t.Fatalf("gridShape(%d) = %d×%d, want %d×%d", tc.p, r, c, tc.r, tc.c)
		}
		if r*c != tc.p {
			t.Fatalf("gridShape(%d) does not factorize", tc.p)
		}
	}
}

// Property: under both partition kinds, every edge lands on exactly one
// machine and the local CSRs reconstruct the graph's edge multiset.
func TestQuickLocalCSRsPartitionEdges(t *testing.T) {
	f := func(seed int64, pRaw uint8, cvc bool) bool {
		p := int(pRaw)%8 + 1
		g := graph.Uniform(128, 768, seed)
		pt, err := partition.NewChunked(g, p, 0)
		if err != nil {
			return false
		}
		kind := Partition1D
		if cvc {
			kind = PartitionCVC
		}
		csrs := buildLocalCSRs(g, func(v graph.VertexID) int { return pt.Owner(v) }, p, kind)
		type edge struct{ s, d graph.VertexID }
		seen := map[edge]int{}
		var total int64
		for m, csr := range csrs {
			total += csr.NumEdges()
			for i, u := range csr.Srcs {
				if kind == Partition1D && pt.Owner(u) != m {
					return false
				}
				for _, v := range csr.Dests(i) {
					if !g.HasEdge(u, v) {
						return false
					}
					seen[edge{u, v}]++
				}
			}
		}
		if total != g.NumEdges() || int64(len(seen)) != g.NumEdges() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// CVC must place edge (u,v) on the machine at (row of owner(u), column
// of owner(v)).
func TestCVCPlacementRule(t *testing.T) {
	g := graph.RMAT(8, 8, graph.Graph500Params(), 3)
	const p = 6
	pt, err := partition.NewChunked(g, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, cols := gridShape(p)
	csrs := buildLocalCSRs(g, func(v graph.VertexID) int { return pt.Owner(v) }, p, PartitionCVC)
	for m, csr := range csrs {
		for i, u := range csr.Srcs {
			for _, v := range csr.Dests(i) {
				want := (pt.Owner(u)/cols)*cols + pt.Owner(v)%cols
				if m != want {
					t.Fatalf("edge (%d,%d) on machine %d, want %d", u, v, m, want)
				}
			}
		}
	}
}

// Both partition kinds must produce identical algorithm results.
func TestGluonPartitionKindsAgree(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(8, 8, graph.Graph500Params(), 9))
	const seed = 4
	want := seq.GreedyMIS(g, seq.MISColors(g.NumVertices(), seed))
	for _, kind := range []PartitionKind{Partition1D, PartitionCVC} {
		for _, p := range []int{4, 6} {
			t.Run(fmt.Sprintf("%v/p=%d", kind, p), func(t *testing.T) {
				e, err := NewWithOptions(g, p, nil, kind)
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				if e.PartitionKindUsed() != kind {
					t.Fatal("kind not recorded")
				}
				got, err := MIS(e, seed)
				if err != nil {
					t.Fatal(err)
				}
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("vertex %d: %v, want %v", v, got[v], want[v])
					}
				}
				root, _ := graph.LargestOutDegreeVertex(g)
				depth, err := BFS(e, root)
				if err != nil {
					t.Fatal(err)
				}
				ref := seq.TopDownBFS(g, root)
				for v := range depth {
					wantD := uint32(ref.Depth[v])
					if ref.Depth[v] < 0 {
						wantD = Inf
					}
					if depth[v] != wantD {
						t.Fatalf("vertex %d: depth %d, want %d", v, depth[v], wantD)
					}
				}
			})
		}
	}
}

func TestPartitionKindString(t *testing.T) {
	if PartitionCVC.String() != "cvc" || Partition1D.String() != "1d" || PartitionKind(9).String() == "" {
		t.Fatal("PartitionKind.String wrong")
	}
}
