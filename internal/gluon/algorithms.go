package gluon

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/seq"
	"repro/internal/xrand"
)

// Inf marks unreached/unset entries in gluon label arrays.
const Inf = ^uint32(0)

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func addU32(a, b uint32) uint32 { return a + b }

// BFS computes hop distances from root with push-style rounds and
// reduce+broadcast label sync. No direction adaptivity, no dependency
// pruning — the baseline profile the paper measures for D-Galois (with
// adaptive switch treated as an orthogonal fairness add-on).
func BFS(e *Engine, root graph.VertexID) ([]uint32, error) {
	g := e.g
	n := g.NumVertices()
	out := make([]uint32, n)
	err := e.Run(func(w *Worker) error {
		depth := make([]uint32, n)
		for i := range depth {
			depth[i] = Inf
		}
		depth[root] = 0
		touched := bitset.New(n)
		if w.Owns(root) {
			touched.Set(int(root))
		}
		if _, err := w.SyncReduceBroadcastU32(depth, touched, minU32); err != nil {
			return err
		}
		local := w.Local()
		for round := uint32(1); ; round++ {
			for i, u := range local.Srcs {
				if depth[u] != round-1 {
					continue
				}
				for _, v := range local.Dests(i) {
					w.CountEdge()
					if round < depth[v] {
						depth[v] = round
						touched.Set(int(v))
					}
				}
			}
			changed, err := w.SyncReduceBroadcastU32(depth, touched, minU32)
			if err != nil {
				return err
			}
			if changed == 0 {
				break
			}
		}
		if w.ID() == 0 {
			copy(out, depth)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Owns reports master ownership of v.
func (w *Worker) Owns(v graph.VertexID) bool {
	lo, hi := w.MasterRange()
	return int(v) >= lo && int(v) < hi
}

// MIS computes the color-based maximal independent set (same rule as
// algorithms.MIS and seq.GreedyMIS) under gluon synchronization: veto
// flags and membership are full-array reduce+broadcast fields. The graph
// must be symmetric.
func MIS(e *Engine, seedVal uint64) ([]bool, error) {
	g := e.g
	n := g.NumVertices()
	colors := seq.MISColors(n, seedVal)
	out := make([]bool, n)
	err := e.Run(func(w *Worker) error {
		active := make([]uint32, n)
		for i := range active {
			active[i] = 1
		}
		inMIS := make([]uint32, n)
		touched := bitset.New(n)
		lo, hi := w.MasterRange()
		local := w.Local()
		for {
			// Veto pass over local edges (u → v proxies).
			veto := make([]uint32, n)
			for i, u := range local.Srcs {
				if active[u] == 0 {
					continue
				}
				for _, v := range local.Dests(i) {
					w.CountEdge()
					if active[v] != 0 && colors[u] < colors[v] && veto[v] == 0 {
						veto[v] = 1
						touched.Set(int(v))
					}
				}
			}
			if _, err := w.SyncReduceBroadcastU32(veto, touched, maxU32); err != nil {
				return err
			}
			// Join: unvetoed active masters enter the set.
			joinedLocal := int64(0)
			for v := lo; v < hi; v++ {
				if active[v] != 0 && veto[v] == 0 {
					inMIS[v] = 1
					touched.Set(v)
					joinedLocal++
				}
			}
			joined, err := w.SyncReduceBroadcastU32(inMIS, touched, maxU32)
			if err != nil {
				return err
			}
			_ = joined
			total, err := w.AllReduceSum(joinedLocal)
			if err != nil {
				return err
			}
			if total == 0 {
				break
			}
			// Cover pass: members deactivate (masters), and their
			// neighbors deactivate via the local edges.
			for v := lo; v < hi; v++ {
				if inMIS[v] != 0 && active[v] != 0 {
					active[v] = 0
					touched.Set(v)
				}
			}
			for i, u := range local.Srcs {
				if inMIS[u] == 0 {
					continue
				}
				for _, v := range local.Dests(i) {
					w.CountEdge()
					if active[v] != 0 {
						active[v] = 0
						touched.Set(int(v))
					}
				}
			}
			if _, err := w.SyncReduceBroadcastU32(active, touched, minU32); err != nil {
				return err
			}
			remaining := int64(0)
			for v := lo; v < hi; v++ {
				if active[v] != 0 {
					remaining++
				}
			}
			left, err := w.AllReduceSum(remaining)
			if err != nil {
				return err
			}
			if left == 0 {
				break
			}
		}
		if w.ID() == 0 {
			for v := range out {
				out[v] = inMIS[v] == 1
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// KCore computes the K-core with full-scan counting rounds and summed
// reductions — no count-to-K break across machines. The graph must be
// symmetric.
func KCore(e *Engine, k int) ([]bool, error) {
	if k < 1 {
		return nil, fmt.Errorf("gluon: KCore k = %d", k)
	}
	g := e.g
	n := g.NumVertices()
	out := make([]bool, n)
	err := e.Run(func(w *Worker) error {
		active := make([]uint32, n)
		for i := range active {
			active[i] = 1
		}
		touched := bitset.New(n)
		lo, hi := w.MasterRange()
		local := w.Local()
		for {
			count := make([]uint32, n)
			for i, u := range local.Srcs {
				if active[u] == 0 {
					continue
				}
				for _, v := range local.Dests(i) {
					w.CountEdge()
					if active[v] != 0 {
						count[v]++
						touched.Set(int(v))
					}
				}
			}
			if _, err := w.SyncReduceBroadcastU32(count, touched, addU32); err != nil {
				return err
			}
			removedLocal := int64(0)
			for v := lo; v < hi; v++ {
				if active[v] != 0 && count[v] < uint32(k) {
					active[v] = 0
					touched.Set(v)
					removedLocal++
				}
			}
			if _, err := w.SyncReduceBroadcastU32(active, touched, minU32); err != nil {
				return err
			}
			removed, err := w.AllReduceSum(removedLocal)
			if err != nil {
				return err
			}
			if removed == 0 {
				break
			}
		}
		if w.ID() == 0 {
			for v := range out {
				out[v] = active[v] == 1
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// KMeans runs the assignment phase of graph K-means (the measured kernel)
// under gluon sync: candidate clusters propagate with min-combine, so the
// tie-break is "smallest cluster ID" rather than ring order — a valid
// assignment with the same per-iteration BFS levels.
func KMeans(e *Engine, centers, iters int, seedVal uint64) (*seq.KMeansResult, error) {
	if centers < 1 || iters < 1 {
		return nil, fmt.Errorf("gluon: KMeans centers=%d iters=%d", centers, iters)
	}
	g := e.g
	n := g.NumVertices()
	if centers > n {
		return nil, fmt.Errorf("gluon: %d centers for %d vertices", centers, n)
	}
	res := &seq.KMeansResult{}
	err := e.Run(func(w *Worker) error {
		cs := seqInitialCenters(n, centers, seedVal)
		cluster := make([]uint32, n)
		dist := make([]int32, n)
		touched := bitset.New(n)
		lo, hi := w.MasterRange()
		local := w.Local()
		var distSums []int64
		rounds := 0
		for iter := 0; iter < iters; iter++ {
			for v := range cluster {
				cluster[v] = Inf
				dist[v] = -1
			}
			for cid, cv := range cs {
				cluster[cv] = uint32(cid)
				dist[cv] = 0
			}
			for round := int32(1); ; round++ {
				rounds++
				cand := make([]uint32, n)
				for i := range cand {
					cand[i] = Inf
				}
				for i, u := range local.Srcs {
					if dist[u] < 0 || dist[u] >= round {
						continue
					}
					for _, v := range local.Dests(i) {
						w.CountEdge()
						if cluster[v] == Inf && cluster[u] < cand[v] {
							cand[v] = cluster[u]
							touched.Set(int(v))
						}
					}
				}
				if _, err := w.SyncReduceBroadcastU32(cand, touched, minU32); err != nil {
					return err
				}
				adoptedLocal := int64(0)
				for v := lo; v < hi; v++ {
					if cluster[v] == Inf && cand[v] != Inf {
						cluster[v] = cand[v]
						dist[v] = round
						touched.Set(v)
						adoptedLocal++
					}
				}
				if _, err := w.SyncReduceBroadcastU32(cluster, touched, minU32); err != nil {
					return err
				}
				// Distances are derivable (assignment round), broadcast
				// via recompute: proxies learn dist from round number.
				for v := 0; v < n; v++ {
					if cluster[v] != Inf && dist[v] < 0 {
						dist[v] = round
					}
				}
				adopted, err := w.AllReduceSum(adoptedLocal)
				if err != nil {
					return err
				}
				if adopted == 0 {
					break
				}
			}
			sumLocal := int64(0)
			for v := lo; v < hi; v++ {
				if dist[v] > 0 {
					sumLocal += int64(dist[v])
				}
			}
			sum, err := w.AllReduceSum(sumLocal)
			if err != nil {
				return err
			}
			distSums = append(distSums, sum)
			if iter == iters-1 {
				break
			}
			cs = seqRecenter(cluster, cs, seedVal, iter)
		}
		if w.ID() == 0 {
			res.Cluster = append([]uint32(nil), cluster...)
			res.Dist = append([]int32(nil), dist...)
			res.Centers = cs
			res.DistSums = distSums
			res.Rounds = rounds
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// seqInitialCenters mirrors algorithms.KMeans's deterministic center
// choice so the two engines start from identical configurations.
func seqInitialCenters(n, centers int, seedVal uint64) []graph.VertexID {
	perm := xrand.Perm(n, xrand.Mix(seedVal, 0x4b3))
	cs := make([]graph.VertexID, 0, centers)
	for _, v := range perm {
		if len(cs) == centers {
			break
		}
		cs = append(cs, graph.VertexID(v))
	}
	return cs
}

// seqRecenter applies the shared deterministic re-centering rule; the
// cluster array is fully replicated under gluon sync so every machine
// computes the same centers locally.
func seqRecenter(cluster []uint32, prev []graph.VertexID, seedVal uint64, iter int) []graph.VertexID {
	return seq.Recenter(cluster, len(prev), seedVal, iter, prev)
}
