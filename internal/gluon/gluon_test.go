package gluon

import (
	"fmt"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/seq"
)

func mustEngine(t testing.TB, g *graph.Graph, p int) *Engine {
	t.Helper()
	e, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestGluonBFSMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat": graph.RMAT(9, 8, graph.Graph500Params(), 1),
		"grid": graph.Grid(12, 12),
	}
	for name, g := range graphs {
		root, _ := graph.LargestOutDegreeVertex(g)
		want := seq.TopDownBFS(g, root)
		for _, p := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/p=%d", name, p), func(t *testing.T) {
				e := mustEngine(t, g, p)
				depth, err := BFS(e, root)
				if err != nil {
					t.Fatal(err)
				}
				for v := range depth {
					wantD := uint32(want.Depth[v])
					if want.Depth[v] < 0 {
						wantD = Inf
					}
					if depth[v] != wantD {
						t.Fatalf("vertex %d: depth %d, want %d", v, depth[v], wantD)
					}
				}
			})
		}
	}
}

func TestGluonMISMatchesGreedy(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(8, 8, graph.Graph500Params(), 2))
	const seed = 3
	want := seq.GreedyMIS(g, seq.MISColors(g.NumVertices(), seed))
	for _, p := range []int{1, 3} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			e := mustEngine(t, g, p)
			got, err := MIS(e, seed)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("vertex %d: %v, want %v", v, got[v], want[v])
				}
			}
		})
	}
}

func TestGluonKCoreMatchesSequential(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(8, 8, graph.Graph500Params(), 4))
	for _, k := range []int{2, 5} {
		want, _ := seq.KCoreIterative(g, k)
		for _, p := range []int{1, 4} {
			t.Run(fmt.Sprintf("k=%d/p=%d", k, p), func(t *testing.T) {
				e := mustEngine(t, g, p)
				got, err := KCore(e, k)
				if err != nil {
					t.Fatal(err)
				}
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("vertex %d: %v, want %v", v, got[v], want[v])
					}
				}
			})
		}
	}
	e := mustEngine(t, g, 2)
	if _, err := KCore(e, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestGluonKMeansValid(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(8, 8, graph.Graph500Params(), 5))
	for _, p := range []int{1, 3} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			e := mustEngine(t, g, p)
			res, err := KMeans(e, 8, 3, 6)
			if err != nil {
				t.Fatal(err)
			}
			if msg := seq.ValidateKMeans(g, res); msg != "" {
				t.Fatal(msg)
			}
			if len(res.DistSums) != 3 {
				t.Fatalf("%d dist sums", len(res.DistSums))
			}
		})
	}
}

func TestGluonKMeansRejectsBadArgs(t *testing.T) {
	g := graph.Ring(16)
	e := mustEngine(t, g, 2)
	if _, err := KMeans(e, 0, 1, 1); err == nil {
		t.Fatal("centers=0 accepted")
	}
	if _, err := KMeans(e, 99, 1, 1); err == nil {
		t.Fatal("too many centers accepted")
	}
}

func TestGluonStatsRecorded(t *testing.T) {
	g := graph.RMAT(8, 8, graph.Graph500Params(), 7)
	root, _ := graph.LargestOutDegreeVertex(g)
	e := mustEngine(t, g, 4)
	if _, err := BFS(e, root); err != nil {
		t.Fatal(err)
	}
	s := e.LastRunStats()
	if s.EdgesTraversed == 0 || s.SyncBytes == 0 || s.ControlBytes == 0 {
		t.Fatalf("stats empty: %+v", s)
	}
}

// Gluon synchronization must cost more bytes than the Gemini-style engine
// on the same workload — the mechanism behind Tables 4/7 at small scale.
func TestGluonHeavierThanGeminiEngine(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(9, 16, graph.Graph500Params(), 8))
	const seed = 9
	e := mustEngine(t, g, 4)
	if _, err := MIS(e, seed); err != nil {
		t.Fatal(err)
	}
	gluonBytes := e.LastRunStats().SyncBytes

	// Same algorithm on the core engine in Gemini mode.
	gemBytes := geminiMISUpdateBytes(t, g, seed)
	if gluonBytes <= gemBytes {
		t.Fatalf("gluon sync %d bytes <= gemini update %d bytes", gluonBytes, gemBytes)
	}
}

// geminiMISUpdateBytes runs MIS on the core engine in Gemini mode and
// returns its update traffic.
func geminiMISUpdateBytes(t *testing.T, g *graph.Graph, seed uint64) int64 {
	t.Helper()
	c, err := core.NewCluster(g, core.Options{NumNodes: 4, Mode: core.ModeGemini})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := algorithms.MIS(c, seed); err != nil {
		t.Fatal(err)
	}
	return c.Stats().Totals.UpdateBytes
}

func TestGluonRunPropagatesErrors(t *testing.T) {
	g := graph.Ring(64)
	e := mustEngine(t, g, 2)
	if err := e.Run(func(w *Worker) error {
		if w.ID() == 1 {
			panic("boom")
		}
		_, err := w.AllReduceSum(1)
		return err
	}); err == nil {
		t.Fatal("panic not surfaced")
	}
}
