// Package obs is the engine's observability layer: a lightweight,
// allocation-conscious tracing and metrics subsystem built on the
// standard library only.
//
// It provides three surfaces:
//
//   - a Tracer/span API with a fixed phase taxonomy (sparse push, dense
//     circulant steps, dependency/update waits, barriers, buffer
//     flushes) that the core runtime emits per iteration × circulant
//     step × buffer group; spans aggregate into per-(node, phase)
//     duration histograms (p50/p95/max) rather than unbounded event
//     logs, with optional bounded event capture for timeline export;
//   - a metrics Registry of named live gauges that subsumes the comm
//     package's byte counters (per-kind and per-link traffic, frame
//     counts, simulated-link queueing delay) and exports them as an
//     expvar-compatible JSON snapshot;
//   - export endpoints: a Chrome trace_event-format timeline writer
//     (chrome://tracing, Perfetto) and a net/http debug handler wiring
//     /debug/metrics, /debug/vars, /debug/trace and /debug/pprof.
//
// The package has no dependency on the engine; core and the CLIs thread
// a *Tracer and a *Registry through their options. A nil *Tracer is a
// valid no-op sink, so the hot paths pay a single pointer test when
// tracing is off.
package obs

import "fmt"

// Phase classifies a traced span of engine work. The taxonomy follows
// the paper's cost model (§5, §7): dense edge processing is dominated
// by per-step computation (PhaseDenseStep), the synchronization costs
// double buffering is designed to hide show up as PhaseDepWait and
// PhaseUpdateWait, and dependency-frame forwarding is PhaseBufferFlush.
type Phase uint8

const (
	// PhaseSparsePush is one sparse (push-mode) edge-processing pass:
	// frontier scan plus update sends.
	PhaseSparsePush Phase = iota
	// PhaseDenseStep is one circulant step of a dense pass: processing
	// the edge block destined to one partition, including dependency
	// receives/sends for its buffer groups and the update send.
	PhaseDenseStep
	// PhaseDepWait is time blocked receiving a dependency frame from
	// the right neighbor — the stall double buffering hides (§5.3).
	PhaseDepWait
	// PhaseUpdateWait is time blocked receiving update messages.
	PhaseUpdateWait
	// PhaseBarrier is time spent in inter-iteration barriers.
	PhaseBarrier
	// PhaseBufferFlush is the send of one buffer group's dependency
	// frame to the left neighbor.
	PhaseBufferFlush
	// PhaseCheckpoint is the serialization and storage of one node's
	// superstep checkpoint.
	PhaseCheckpoint
	// PhaseRecovery is cluster re-formation plus checkpoint restore
	// after a failed run.
	PhaseRecovery
	// PhaseDenseScan is the binned dense scan's signal loop over one
	// (block, degree-class) slice: edge reads and bin appends, no
	// transport. Sub-phase of PhaseDenseStep.
	PhaseDenseScan
	// PhaseDenseBin is frame assembly in the binned dense step:
	// encoding the batched dependency frame from the step's skip/lane
	// state. Sub-phase of PhaseDenseStep.
	PhaseDenseBin
	// PhaseDenseFlush is the vectored hand-off of a step's bins (one
	// SendBufs per peer) in the binned dense step. Sub-phase of
	// PhaseDenseStep.
	PhaseDenseFlush
	// NumPhases is the number of phases; valid phases are < NumPhases.
	NumPhases
)

// String returns the phase's canonical name, used in trace files and
// metric keys.
func (p Phase) String() string {
	switch p {
	case PhaseSparsePush:
		return "SparsePush"
	case PhaseDenseStep:
		return "DenseStep"
	case PhaseDepWait:
		return "DepWait"
	case PhaseUpdateWait:
		return "UpdateWait"
	case PhaseBarrier:
		return "Barrier"
	case PhaseBufferFlush:
		return "BufferFlush"
	case PhaseCheckpoint:
		return "Checkpoint"
	case PhaseRecovery:
		return "Recovery"
	case PhaseDenseScan:
		return "DenseScan"
	case PhaseDenseBin:
		return "DenseBin"
	case PhaseDenseFlush:
		return "DenseFlush"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// Phases lists all valid phases in declaration order.
func Phases() []Phase {
	out := make([]Phase, NumPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}
