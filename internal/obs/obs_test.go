package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Max != 10*time.Millisecond {
		t.Fatalf("max %v", s.Max)
	}
	// p50 lands in the 10µs bucket (8..16µs), p95 in the 10ms bucket.
	if s.P50 < 4*time.Microsecond || s.P50 > 32*time.Microsecond {
		t.Fatalf("p50 %v not near 10µs", s.P50)
	}
	if s.P95 < 4*time.Millisecond || s.P95 > 32*time.Millisecond {
		t.Fatalf("p95 %v not near 10ms", s.P95)
	}
	if s.P99 < s.P95 || s.P99 > s.Max {
		t.Fatalf("p99 %v outside [p95 %v, max %v]", s.P99, s.P95, s.Max)
	}
	if want := 90*10*time.Microsecond + 10*10*time.Millisecond; s.Sum != want {
		t.Fatalf("sum %v, want %v", s.Sum, want)
	}
	if s.Mean() == 0 {
		t.Fatal("mean is zero")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count %d", s.Count)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Record(0, PhaseDenseStep, 0, 0, 0, time.Now(), time.Millisecond)
	if tr.Summaries() != nil || tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer returned data")
	}
}

func TestTracerAggregatesAndCaptures(t *testing.T) {
	tr := NewCapturingTracer(4)
	start := tr.Epoch()
	for i := 0; i < 6; i++ {
		tr.Record(i%2, PhaseDepWait, 0, i, 0, start.Add(time.Duration(i)*time.Millisecond), time.Millisecond)
	}
	tr.Record(0, PhaseDenseStep, 1, 2, -1, start, 2*time.Millisecond)

	sums := tr.Summaries()
	var depCount, stepCount int64
	for _, s := range sums {
		switch s.Phase {
		case PhaseDepWait:
			depCount += s.Hist.Count
		case PhaseDenseStep:
			stepCount += s.Hist.Count
		}
	}
	if depCount != 6 || stepCount != 1 {
		t.Fatalf("dep=%d step=%d", depCount, stepCount)
	}
	// Capture was bounded at 4; all 7 spans still aggregated above.
	if got := len(tr.Events()); got != 4 {
		t.Fatalf("%d events captured", got)
	}
	if tr.Dropped() != 3 {
		t.Fatalf("%d dropped", tr.Dropped())
	}
}

func TestChromeTraceParses(t *testing.T) {
	tr := NewCapturingTracer(0)
	now := tr.Epoch()
	tr.Record(0, PhaseDenseStep, 0, 0, -1, now, 5*time.Millisecond)
	tr.Record(1, PhaseDepWait, 0, 1, 0, now.Add(time.Millisecond), 2*time.Millisecond)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not JSON: %v\n%s", err, buf.String())
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	if !names["DenseStep"] || !names["DepWait"] || !names["thread_name"] {
		t.Fatalf("events missing: %v", names)
	}

	// Histogram-only tracers refuse instead of writing an empty file.
	if err := WriteChromeTrace(io.Discard, NewTracer()); err == nil {
		t.Fatal("histogram-only tracer exported a trace")
	}
}

func TestRegistrySnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	var n int64
	r.RegisterInt("comm.sent_bytes", func() int64 { return n })
	r.Set("config.mode", "symplegraph")
	n = 42
	snap := r.Snapshot()
	if snap["comm.sent_bytes"] != int64(42) || snap["config.mode"] != "symplegraph" {
		t.Fatalf("snapshot %v", snap)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"comm.sent_bytes": 42`) {
		t.Fatalf("json:\n%s", buf.String())
	}
}

func TestRegistryTracerExport(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer()
	tr.Record(3, PhaseBarrier, 0, -1, -1, time.Now(), time.Millisecond)
	r.RegisterTracer("phases", tr)
	snap := r.Snapshot()
	phases, ok := snap["phases"].(map[string]any)
	if !ok {
		t.Fatalf("phases metric: %T", snap["phases"])
	}
	if _, ok := phases["node3.Barrier"]; !ok {
		t.Fatalf("no node3.Barrier in %v", phases)
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Set("up", 1)
	tr := NewCapturingTracer(0)
	tr.Record(0, PhaseSparsePush, 0, -1, -1, time.Now(), time.Millisecond)
	s, err := StartDebugServer("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", s.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if body := get("/debug/metrics"); !strings.Contains(body, `"up": 1`) {
		t.Fatalf("/debug/metrics:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars:\n%s", body)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(get("/debug/trace")), &doc); err != nil {
		t.Fatalf("/debug/trace not JSON: %v", err)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

// TestDebugServerBindErrorIsSurfaced pins the fail-fast contract: a
// second server on an occupied port must return the bind error to the
// caller synchronously, never log-and-continue without its endpoint.
func TestDebugServerBindErrorIsSurfaced(t *testing.T) {
	s, err := StartDebugServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	dup, err := StartDebugServer(s.Addr, nil, nil)
	if err == nil {
		dup.Close()
		t.Fatalf("second bind on %s succeeded", s.Addr)
	}
	if !strings.Contains(err.Error(), s.Addr) {
		t.Fatalf("bind error %q does not name the address %s", err, s.Addr)
	}
	if s.Err() != nil {
		t.Fatalf("healthy server reports Err %v", s.Err())
	}
}

// The serve loop's lifecycle classification must treat ErrServerClosed
// as a clean exit even when a wrapping layer annotates it; any other
// error passes through untouched.
func TestServeResultClassifiesWrappedClose(t *testing.T) {
	if got := serveResult(http.ErrServerClosed); got != nil {
		t.Fatalf("bare ErrServerClosed classified as failure: %v", got)
	}
	wrapped := fmt.Errorf("serve loop: %w", http.ErrServerClosed)
	if got := serveResult(wrapped); got != nil {
		t.Fatalf("wrapped ErrServerClosed classified as failure: %v", got)
	}
	real := fmt.Errorf("accept tcp: use of closed socket")
	if got := serveResult(real); got != real {
		t.Fatalf("real error not passed through: %v", got)
	}
	if got := serveResult(nil); got != nil {
		t.Fatalf("nil error classified as failure: %v", got)
	}
}
