package obs

import (
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// NewDebugMux builds the engine's debug handler:
//
//	/healthz        200 "ok" while the process serves (liveness probe)
//	/debug/metrics  registry JSON snapshot
//	/debug/vars     expvar (stdlib memstats + published registries)
//	/debug/trace    Chrome trace_event timeline (capturing tracers)
//	/debug/pprof/*  runtime profiles
//
// reg and tr may each be nil; the corresponding endpoints then report
// 404/503 instead of being absent, so probes keep stable URLs.
func NewDebugMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.Error(w, "no metrics registry", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.Error(w, "no tracer attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := WriteChromeTrace(w, tr); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP endpoint.
type DebugServer struct {
	// Addr is the server's resolved listen address (host:port).
	Addr    string
	ln      net.Listener
	srv     *http.Server
	serveMu sync.Mutex
	served  error // Serve's exit error, nil while running or after a clean Close
}

// StartDebugServer listens on addr (":0" picks a free port) and serves
// the debug mux in a background goroutine until Close. A bind failure
// (port in use, bad address) is returned here, synchronously — callers
// must fail fast on it rather than run without their debug surface; an
// error the serve loop hits later is retained and surfaced by Err and
// Close.
func StartDebugServer(addr string, reg *Registry, tr *Tracer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen on %s: %w", addr, err)
	}
	s := &DebugServer{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: NewDebugMux(reg, tr)},
	}
	go func() {
		err := serveResult(s.srv.Serve(ln))
		s.serveMu.Lock()
		s.served = err
		s.serveMu.Unlock()
	}()
	return s, nil
}

// serveResult classifies the serve loop's exit: ErrServerClosed — even
// wrapped — is the Close lifecycle, not a failure.
func serveResult(err error) error {
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Err reports the error that stopped the serve loop, if any. Nil while
// the server is running and after a clean Close.
func (s *DebugServer) Err() error {
	s.serveMu.Lock()
	defer s.serveMu.Unlock()
	return s.served
}

// Close shuts the server down and returns the first error of the
// shutdown or — if the serve loop already died on its own — the error
// that killed it, so a silently dead debug endpoint is noticed at the
// latest on the tool's exit path.
func (s *DebugServer) Close() error {
	err := s.srv.Close()
	if serr := s.Err(); serr != nil && err == nil {
		err = serr
	}
	return err
}
