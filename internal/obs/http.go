package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the engine's debug handler:
//
//	/debug/metrics  registry JSON snapshot
//	/debug/vars     expvar (stdlib memstats + published registries)
//	/debug/trace    Chrome trace_event timeline (capturing tracers)
//	/debug/pprof/*  runtime profiles
//
// reg and tr may each be nil; the corresponding endpoints then report
// 404/503 instead of being absent, so probes keep stable URLs.
func NewDebugMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.Error(w, "no metrics registry", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.Error(w, "no tracer attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := WriteChromeTrace(w, tr); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP endpoint.
type DebugServer struct {
	// Addr is the server's resolved listen address (host:port).
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// StartDebugServer listens on addr (":0" picks a free port) and serves
// the debug mux in a background goroutine until Close.
func StartDebugServer(addr string, reg *Registry, tr *Tracer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen on %s: %w", addr, err)
	}
	s := &DebugServer{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: NewDebugMux(reg, tr)},
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return s, nil
}

// Close shuts the server down.
func (s *DebugServer) Close() error { return s.srv.Close() }
