package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two duration buckets: bucket 0
// holds durations ≤ 1ns, bucket i holds (2^(i-1), 2^i] ns, and the last
// bucket absorbs everything longer — 2^39 ns ≈ 9 minutes, far beyond
// any span the engine emits.
const histBuckets = 40

// Histogram aggregates span durations into fixed log₂ buckets. All
// methods are safe for concurrent use; Observe is a few atomic adds and
// never allocates, so workers can record every span.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	idx := bits.Len64(uint64(ns)) // 0 for 0ns, k for 2^(k-1) ≤ ns < 2^k
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistSnapshot is an immutable summary of a histogram: span count,
// total time, approximate p50/p95/p99 (bucket midpoints), and the exact
// maximum.
type HistSnapshot struct {
	Count int64
	Sum   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Mean returns the average span duration.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Snapshot summarizes the histogram's current state. Quantiles are
// approximate: the midpoint of the log₂ bucket containing the quantile,
// so they carry at most ~50% relative error — plenty to tell a 10µs
// stall from a 10ms one.
func (h *Histogram) Snapshot() HistSnapshot {
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	s.P50 = quantile(counts[:], total, 0.50)
	s.P95 = quantile(counts[:], total, 0.95)
	s.P99 = quantile(counts[:], total, 0.99)
	// A bucket midpoint can overshoot the true maximum; no quantile
	// should ever exceed it (or an estimate of a higher quantile).
	if s.Max > 0 {
		if s.P50 > s.Max {
			s.P50 = s.Max
		}
		if s.P95 > s.Max {
			s.P95 = s.Max
		}
		if s.P99 > s.Max {
			s.P99 = s.Max
		}
	}
	if s.P95 < s.P50 {
		s.P95 = s.P50
	}
	if s.P99 < s.P95 {
		s.P99 = s.P95
	}
	return s
}

// quantile returns the midpoint of the bucket containing quantile q.
func quantile(counts []int64, total int64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum > rank {
			if i == 0 {
				return 0
			}
			lo := int64(1) << (i - 1) // bucket i covers (2^(i-1), 2^i]
			return time.Duration(lo + lo/2)
		}
	}
	return 0
}
