package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sync"
)

// Registry is a flat namespace of live metrics: each name maps to a
// function sampled at snapshot time, so registered values (endpoint
// byte counters, clamp counts, histogram summaries) are always current
// without any update path. Snapshots marshal to JSON with sorted keys,
// making exports diff cleanly, and the registry can publish itself as a
// single expvar variable for stdlib interoperability.
type Registry struct {
	mu   sync.Mutex
	vars map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]func() any)}
}

// Register binds name to a sampling function. Re-registering a name
// replaces the previous binding.
func (r *Registry) Register(name string, fn func() any) {
	r.mu.Lock()
	r.vars[name] = fn
	r.mu.Unlock()
}

// RegisterInt binds name to an int64 gauge.
func (r *Registry) RegisterInt(name string, fn func() int64) {
	r.Register(name, func() any { return fn() })
}

// Set binds name to a constant value (configuration echoes, warnings).
func (r *Registry) Set(name string, v any) {
	r.Register(name, func() any { return v })
}

// Snapshot samples every registered metric.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fns := make(map[string]func() any, len(r.vars))
	for k, fn := range r.vars {
		fns[k] = fn
	}
	r.mu.Unlock()
	out := make(map[string]any, len(fns))
	for k, fn := range fns {
		out[k] = fn()
	}
	return out
}

// WriteJSON writes an indented JSON snapshot with sorted keys.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// published guards expvar.Publish, which panics on duplicate names;
// re-publishing under a used name is a silent no-op instead.
var published sync.Map

// PublishExpvar exposes the registry as one expvar.Func variable under
// name, visible on /debug/vars alongside the stdlib's memstats.
func (r *Registry) PublishExpvar(name string) {
	if _, loaded := published.LoadOrStore(name, true); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// RegisterHistogram exposes one histogram's summary under name: count,
// total/p50/p95/p99/max nanoseconds, freshly snapshotted per sample.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if h == nil {
		return
	}
	r.Register(name, func() any {
		s := h.Snapshot()
		return map[string]int64{
			"count":  s.Count,
			"sum_ns": int64(s.Sum),
			"p50_ns": int64(s.P50),
			"p95_ns": int64(s.P95),
			"p99_ns": int64(s.P99),
			"max_ns": int64(s.Max),
		}
	})
}

// RegisterTracer exposes a tracer's per-(node, phase) aggregates under
// prefix: count, total/p50/p95/max nanoseconds per histogram, and the
// event-capture drop counter.
func (r *Registry) RegisterTracer(prefix string, t *Tracer) {
	if t == nil {
		return
	}
	r.Register(prefix, func() any {
		sums := t.Summaries()
		out := make(map[string]any, len(sums)+1)
		for _, s := range sums {
			key := fmt.Sprintf("node%d.%s", s.Node, s.Phase)
			out[key] = map[string]int64{
				"count":  s.Hist.Count,
				"sum_ns": int64(s.Hist.Sum),
				"p50_ns": int64(s.Hist.P50),
				"p95_ns": int64(s.Hist.P95),
				"max_ns": int64(s.Hist.Max),
			}
		}
		out["events_dropped"] = t.Dropped()
		return out
	})
}
