package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export: the captured events render as a timeline
// in chrome://tracing or https://ui.perfetto.dev, one track (tid) per
// cluster node, so cross-node overlap — a DepWait on one node against
// the DenseStep still running on its neighbor — is literally visible.

// chromeEvent is one trace_event record ("X" = complete event, "M" =
// metadata). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes t's captured events as a Chrome
// trace_event-format JSON document. The tracer must have been created
// with NewCapturingTracer; a histogram-only tracer yields an error
// rather than a silently empty timeline.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	events := t.Events()
	if events == nil {
		return fmt.Errorf("obs: tracer does not capture events (use NewCapturingTracer)")
	}
	doc := chromeTrace{DisplayTimeUnit: "ms"}
	seen := map[int]bool{}
	for _, ev := range events {
		if !seen[ev.Node] {
			seen[ev.Node] = true
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: ev.Node,
				Args: map[string]any{"name": fmt.Sprintf("node %d", ev.Node)},
			})
		}
		ce := chromeEvent{
			Name: ev.Phase.String(),
			Cat:  "engine",
			Ph:   "X",
			Ts:   float64(ev.Start.Nanoseconds()) / 1e3,
			Dur:  float64(ev.Dur.Nanoseconds()) / 1e3,
			Pid:  0,
			Tid:  ev.Node,
			Args: map[string]any{"iter": ev.Iter, "step": ev.Step, "group": ev.Group},
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
