package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects engine spans. Every span is folded into a per-(node,
// phase) histogram; when event capture is enabled (NewCapturingTracer),
// spans are additionally kept as individual events — bounded, with a
// drop counter — for Chrome trace_event timeline export.
//
// All methods are safe for concurrent use by the workers of a run, and
// all methods are nil-receiver-safe: a nil *Tracer is the canonical
// "tracing off" sink.
type Tracer struct {
	epoch time.Time

	mu    sync.RWMutex
	nodes []*nodeHists // indexed by node ID, grown on demand

	capture   bool
	maxEvents int
	evMu      sync.Mutex
	events    []Event
	dropped   atomic.Int64
}

type nodeHists struct {
	h [NumPhases]Histogram
}

// Event is one captured span, with times relative to the tracer's
// creation. Iter/Step/Group are -1 when the dimension does not apply
// (e.g. barriers have no step).
type Event struct {
	Node  int
	Phase Phase
	Iter  int
	Step  int
	Group int
	Start time.Duration
	Dur   time.Duration
}

// DefaultMaxEvents bounds event capture: at ~64 bytes per event this is
// ~16MB, enough for hundreds of iterations on a 16-node cluster.
const DefaultMaxEvents = 1 << 18

// NewTracer returns a tracer that aggregates spans into histograms
// only — constant memory, suitable for always-on use.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// NewCapturingTracer returns a tracer that additionally retains up to
// maxEvents individual spans for timeline export (≤ 0 selects
// DefaultMaxEvents). Spans beyond the bound are still aggregated into
// histograms; only the timeline drops them (see Dropped).
func NewCapturingTracer(maxEvents int) *Tracer {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Tracer{epoch: time.Now(), capture: true, maxEvents: maxEvents}
}

// Epoch returns the tracer's time origin; event Start offsets are
// relative to it.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Record folds one span into the aggregates (and the event log, when
// capturing). start is the span's wall-clock begin, d its duration.
func (t *Tracer) Record(node int, ph Phase, iter, step, group int, start time.Time, d time.Duration) {
	if t == nil || node < 0 || ph >= NumPhases {
		return
	}
	t.hist(node, ph).Observe(d)
	if !t.capture {
		return
	}
	ev := Event{
		Node: node, Phase: ph, Iter: iter, Step: step, Group: group,
		Start: start.Sub(t.epoch), Dur: d,
	}
	t.evMu.Lock()
	if len(t.events) < t.maxEvents {
		t.events = append(t.events, ev)
		t.evMu.Unlock()
		return
	}
	t.evMu.Unlock()
	t.dropped.Add(1)
}

// hist returns the histogram for (node, ph), growing the node table as
// needed. The fast path is a read lock and two indexings.
func (t *Tracer) hist(node int, ph Phase) *Histogram {
	t.mu.RLock()
	if node < len(t.nodes) {
		h := &t.nodes[node].h[ph]
		t.mu.RUnlock()
		return h
	}
	t.mu.RUnlock()
	t.mu.Lock()
	for len(t.nodes) <= node {
		t.nodes = append(t.nodes, &nodeHists{})
	}
	h := &t.nodes[node].h[ph]
	t.mu.Unlock()
	return h
}

// PhaseSummary is one (node, phase) histogram snapshot.
type PhaseSummary struct {
	Node  int
	Phase Phase
	Hist  HistSnapshot
}

// Summaries returns a snapshot of every non-empty (node, phase)
// histogram, sorted by node then phase.
func (t *Tracer) Summaries() []PhaseSummary {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	nodes := make([]*nodeHists, len(t.nodes))
	copy(nodes, t.nodes)
	t.mu.RUnlock()
	var out []PhaseSummary
	for node, nh := range nodes {
		for ph := Phase(0); ph < NumPhases; ph++ {
			s := nh.h[ph].Snapshot()
			if s.Count == 0 {
				continue
			}
			out = append(out, PhaseSummary{Node: node, Phase: ph, Hist: s})
		}
	}
	return out
}

// Events returns a copy of the captured events sorted by start time.
// Nil when capture is off.
func (t *Tracer) Events() []Event {
	if t == nil || !t.capture {
		return nil
	}
	t.evMu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.evMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Dropped reports how many events the capture bound discarded (their
// histogram aggregation is unaffected).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}
