package seq

import (
	"repro/internal/graph"
	"repro/internal/xrand"
)

// NotSampled marks vertices that drew no neighbor (no incoming edges).
const NotSampled = ^uint32(0)

// SampleNeighbors draws, for every vertex, one incoming neighbor with
// probability proportional to the neighbor's vertex weight — the paper's
// graph-sampling kernel (Figure 3d): walk the neighbor prefix sums until
// they cross a uniform draw, the loop-carried data dependency. The draw
// r_v is deterministic per (seed, round, v); weights come from
// VertexWeight(seed, ·). The visit order decides which neighbor a given
// prefix crossing selects, so exact distributed equivalence requires the
// matching NeighborOrder.
//
// It returns the picked neighbor per vertex and the number of neighbor
// visits (the traversal cost the paper's Table 5 reports).
func SampleNeighbors(g *graph.Graph, seed uint64, round int, order NeighborOrder) ([]uint32, int64) {
	if order == nil {
		order = AscendingOrder
	}
	n := g.NumVertices()
	pick := make([]uint32, n)
	var visits int64
	for v := 0; v < n; v++ {
		pick[v] = NotSampled
		nbrs, _ := order(g, graph.VertexID(v))
		if len(nbrs) == 0 {
			continue
		}
		r := SampleThresholdOrdered(seed, round, graph.VertexID(v), nbrs)
		acc := 0.0
		for _, u := range nbrs {
			visits++
			acc += VertexWeight(seed, u)
			if acc >= r {
				pick[v] = uint32(u)
				break // the loop-carried dependency
			}
		}
		if pick[v] == NotSampled {
			// Floating-point shortfall at the tail: take the last.
			pick[v] = uint32(nbrs[len(nbrs)-1])
		}
	}
	return pick, visits
}

// TotalInWeight returns the sum of in-neighbor weights of v.
func TotalInWeight(g *graph.Graph, seed uint64, v graph.VertexID) float64 {
	total := 0.0
	for _, u := range g.InNeighbors(v) {
		total += VertexWeight(seed, u)
	}
	return total
}

// SampleThresholdOrdered returns r_v: the deterministic uniform draw in
// (0, W_v], where W_v is the sum of the listed neighbors' weights
// accumulated *in the given order*. The same left-to-right addition chain
// is used by the prefix walk, so floating-point non-associativity cannot
// push r_v past the final prefix sum — the walk is guaranteed to cross.
// The distributed engine computes the same W_v through a dependency-lane
// pass over the same ring order.
func SampleThresholdOrdered(seed uint64, round int, v graph.VertexID, ordered []graph.VertexID) float64 {
	var w float64
	for _, u := range ordered {
		w += VertexWeight(seed, u)
	}
	return SampleThresholdFromTotal(seed, round, v, w)
}

// SampleThresholdFromTotal returns r_v given a precomputed total weight.
func SampleThresholdFromTotal(seed uint64, round int, v graph.VertexID, total float64) float64 {
	return sampleUnit(seed, round, v) * total
}

func sampleUnit(seed uint64, round int, v graph.VertexID) float64 {
	// Keep the draw in (0, 1] so a zero cannot select "before" the
	// first neighbor.
	return 1 - xrand.Uniform01(seed, 0x5a, uint64(round), uint64(v))
}

// ValidateSample checks that every vertex with incoming edges picked one
// of its in-neighbors and isolated-in vertices picked nothing. Returns ""
// if valid.
func ValidateSample(g *graph.Graph, pick []uint32) string {
	for v := 0; v < g.NumVertices(); v++ {
		in := g.InNeighbors(graph.VertexID(v))
		if len(in) == 0 {
			if pick[v] != NotSampled {
				return "pick for vertex without in-edges"
			}
			continue
		}
		if pick[v] == NotSampled {
			return "no pick for vertex with in-edges"
		}
		found := false
		for _, u := range in {
			if uint32(u) == pick[v] {
				found = true
				break
			}
		}
		if !found {
			return "picked non-neighbor"
		}
	}
	return ""
}
