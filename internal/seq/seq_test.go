package seq

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/partition"
)

func TestTopDownBFSPath(t *testing.T) {
	g := graph.Path(6)
	r := TopDownBFS(g, 0)
	for v := 0; v < 6; v++ {
		if r.Depth[v] != int32(v) {
			t.Fatalf("depth[%d] = %d", v, r.Depth[v])
		}
	}
	if r.Parent[0] != NoParent || r.Parent[3] != 2 {
		t.Fatalf("parents wrong: %v", r.Parent)
	}
	// From the far end nothing is reachable.
	r = TopDownBFS(g, 5)
	for v := 0; v < 5; v++ {
		if r.Depth[v] != -1 {
			t.Fatalf("vertex %d reachable from sink", v)
		}
	}
}

func TestDirectionOptimizingBFSMatchesTopDown(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.RMAT(10, 16, graph.Graph500Params(), 4),
		graph.Symmetrize(graph.RMAT(10, 8, graph.Graph500Params(), 5)),
		graph.Grid(17, 13),
		graph.Star(500),
	} {
		root, _ := graph.LargestOutDegreeVertex(g)
		r := DirectionOptimizingBFS(g, root)
		if msg := ValidateBFS(g, root, r); msg != "" {
			t.Fatalf("%v root %d: %s", g, root, msg)
		}
	}
}

func TestValidateBFSCatchesBadTrees(t *testing.T) {
	g := graph.Path(4)
	r := TopDownBFS(g, 0)
	r.Depth[3] = 7
	if ValidateBFS(g, 0, r) == "" {
		t.Fatal("depth corruption not caught")
	}
	r = TopDownBFS(g, 0)
	r.Parent[2] = 0 // no edge 0→2
	if ValidateBFS(g, 0, r) == "" {
		t.Fatal("phantom parent not caught")
	}
}

func TestGreedyAndRoundMISAgree(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := graph.Symmetrize(graph.RMAT(9, 8, graph.Graph500Params(), int64(seed)))
		colors := MISColors(g.NumVertices(), seed)
		a := GreedyMIS(g, colors)
		b, rounds := RoundMIS(g, colors)
		if rounds < 1 {
			t.Fatal("no rounds")
		}
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("seed %d: greedy and round MIS disagree at %d", seed, v)
			}
		}
		if msg := ValidateMIS(g, a); msg != "" {
			t.Fatalf("seed %d: %s", seed, msg)
		}
	}
}

func TestMISOnStructuredGraphs(t *testing.T) {
	// Complete graph: exactly one vertex.
	g := graph.Complete(8)
	colors := MISColors(8, 1)
	mis := GreedyMIS(g, colors)
	cnt := 0
	for _, in := range mis {
		if in {
			cnt++
		}
	}
	if cnt != 1 {
		t.Fatalf("complete graph MIS size %d", cnt)
	}
	// Star: either the hub alone or all spokes.
	s := graph.Star(10)
	mis = GreedyMIS(s, MISColors(10, 2))
	if msg := ValidateMIS(s, mis); msg != "" {
		t.Fatal(msg)
	}
	if mis[0] {
		for v := 1; v < 10; v++ {
			if mis[v] {
				t.Fatal("hub and spoke both in MIS")
			}
		}
	} else {
		for v := 1; v < 10; v++ {
			if !mis[v] {
				t.Fatal("hub out but spoke missing")
			}
		}
	}
}

func TestValidateMISCatchesViolations(t *testing.T) {
	g := graph.Complete(4)
	bad := []bool{true, true, false, false}
	if ValidateMIS(g, bad) == "" {
		t.Fatal("dependent set not caught")
	}
	if ValidateMIS(g, []bool{false, false, false, false}) == "" {
		t.Fatal("non-maximal set not caught")
	}
}

func TestKCoreIterativeMatchesCoreness(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := graph.Symmetrize(graph.RMAT(9, 8, graph.Graph500Params(), seed))
		core := Coreness(g)
		for _, k := range []int{1, 2, 3, 5, 8, 16} {
			iter, rounds := KCoreIterative(g, k)
			if rounds < 1 {
				t.Fatal("no rounds")
			}
			want := KCoreFromCoreness(core, k)
			for v := range iter {
				if iter[v] != want[v] {
					t.Fatalf("seed %d k %d: iterative and Matula–Beck disagree at %d", seed, k, v)
				}
			}
			if msg := ValidateKCore(g, iter, k); msg != "" {
				t.Fatalf("seed %d k %d: %s", seed, k, msg)
			}
		}
	}
}

func TestKCoreGrid(t *testing.T) {
	// An interior grid vertex has 4 neighbors but corners have 2; the
	// 2-core of a grid is the whole grid, the 3-core of a plain grid is
	// empty (peeling the boundary cascades inward).
	g := graph.Grid(8, 8)
	in2, _ := KCoreIterative(g, 2)
	for v, in := range in2 {
		if !in {
			t.Fatalf("grid vertex %d not in 2-core", v)
		}
	}
	in3, _ := KCoreIterative(g, 3)
	for v, in := range in3 {
		if in {
			t.Fatalf("grid vertex %d in 3-core", v)
		}
	}
}

func TestCorenessStar(t *testing.T) {
	core := Coreness(graph.Star(10))
	for v := 0; v < 10; v++ {
		if core[v] != 1 {
			t.Fatalf("star coreness[%d] = %d, want 1", v, core[v])
		}
	}
}

func TestKMeansValid(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(9, 8, graph.Graph500Params(), 6))
	k := int(math.Sqrt(float64(g.NumVertices())))
	r := KMeans(g, k, 5, 11, nil)
	if msg := ValidateKMeans(g, r); msg != "" {
		t.Fatal(msg)
	}
	if len(r.DistSums) != 5 || len(r.Centers) != k {
		t.Fatalf("got %d sums, %d centers", len(r.DistSums), len(r.Centers))
	}
}

func TestKMeansRingOrderDiffersOnlyInTies(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(8, 8, graph.Graph500Params(), 7))
	pt, err := partition.NewChunked(g, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := KMeans(g, 8, 3, 5, nil)
	b := KMeans(g, 8, 3, 5, RingOrder(pt))
	if msg := ValidateKMeans(g, b); msg != "" {
		t.Fatal(msg)
	}
	// Distances (BFS levels) are order independent on the first
	// iteration even though cluster choice may differ.
	for v := 0; v < g.NumVertices(); v++ {
		_ = a
		_ = v
	}
}

func TestKMeansDeterministic(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(8, 8, graph.Graph500Params(), 8))
	a := KMeans(g, 8, 4, 9, nil)
	b := KMeans(g, 8, 4, 9, nil)
	for v := range a.Cluster {
		if a.Cluster[v] != b.Cluster[v] {
			t.Fatal("KMeans not deterministic")
		}
	}
}

func TestSampleNeighborsValidAndDeterministic(t *testing.T) {
	g := graph.RMAT(9, 8, graph.Graph500Params(), 9)
	pick, visits := SampleNeighbors(g, 3, 0, nil)
	if msg := ValidateSample(g, pick); msg != "" {
		t.Fatal(msg)
	}
	if visits <= 0 || visits > g.NumEdges() {
		t.Fatalf("visits = %d", visits)
	}
	pick2, _ := SampleNeighbors(g, 3, 0, nil)
	for v := range pick {
		if pick[v] != pick2[v] {
			t.Fatal("sampling not deterministic")
		}
	}
	// Different rounds draw differently somewhere.
	pick3, _ := SampleNeighbors(g, 3, 1, nil)
	same := true
	for v := range pick {
		if pick[v] != pick3[v] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("round does not influence the draw")
	}
}

func TestSampleDistributionFollowsWeights(t *testing.T) {
	// A two-in-neighbor vertex: picks should split ∝ vertex weights
	// across many rounds.
	g := graph.MustFromEdges(3, []graph.Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}}, graph.BuildOptions{})
	const seed = 5
	w0, w1 := VertexWeight(seed, 0), VertexWeight(seed, 1)
	count0 := 0
	const rounds = 20000
	for round := 0; round < rounds; round++ {
		pick, _ := SampleNeighbors(g, seed, round, nil)
		if pick[2] == 0 {
			count0++
		}
	}
	want := w0 / (w0 + w1)
	got := float64(count0) / rounds
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("P(pick 0) = %.3f, want %.3f", got, want)
	}
}

// Property: ring order is a permutation of the ascending in-neighbors.
func TestQuickRingOrderIsPermutation(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := int(pRaw)%5 + 1
		g := graph.Uniform(192, 1500, seed)
		pt, err := partition.NewChunked(g, p, 0)
		if err != nil {
			return false
		}
		order := RingOrder(pt)
		for v := 0; v < g.NumVertices(); v++ {
			ring, _ := order(g, graph.VertexID(v))
			asc := g.InNeighbors(graph.VertexID(v))
			if len(ring) != len(asc) {
				return false
			}
			seen := map[graph.VertexID]int{}
			for _, u := range asc {
				seen[u]++
			}
			for _, u := range ring {
				seen[u]--
			}
			for _, c := range seen {
				if c != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRingOrderKeepsWeightsAligned(t *testing.T) {
	g := graph.RandomWeights(graph.Symmetrize(graph.RMAT(7, 4, graph.Graph500Params(), 2)), 3)
	pt, err := partition.NewChunked(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	order := RingOrder(pt)
	for v := 0; v < g.NumVertices(); v++ {
		nbrs, ws := order(g, graph.VertexID(v))
		if len(nbrs) != len(ws) {
			t.Fatalf("vertex %d: %d nbrs, %d weights", v, len(nbrs), len(ws))
		}
		for i, u := range nbrs {
			// Find (u → v) weight in the graph and compare.
			want := float32(-1)
			gws := g.InWeights(graph.VertexID(v))
			for j, x := range g.InNeighbors(graph.VertexID(v)) {
				if x == u {
					want = gws[j]
					break
				}
			}
			if ws[i] != want {
				t.Fatalf("vertex %d neighbor %d: weight %g, want %g", v, u, ws[i], want)
			}
		}
	}
}
