package seq

import "repro/internal/graph"

// KCoreIterative computes the K-core by the paper's iterative algorithm
// (Figure 3b): repeatedly count each active vertex's active neighbors —
// exiting the count at K, the loop-carried dependency — and remove those
// below K, until a fixed point. It returns the membership bitmap and the
// number of rounds. The graph must be symmetric.
func KCoreIterative(g *graph.Graph, k int) ([]bool, int) {
	n := g.NumVertices()
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	rounds := 0
	for {
		rounds++
		var removed []graph.VertexID
		for v := 0; v < n; v++ {
			if !active[v] {
				continue
			}
			cnt := 0
			for _, u := range g.InNeighbors(graph.VertexID(v)) {
				if active[u] {
					cnt++
					if cnt >= k {
						break // the loop-carried dependency
					}
				}
			}
			if cnt < k {
				removed = append(removed, graph.VertexID(v))
			}
		}
		if len(removed) == 0 {
			break
		}
		for _, v := range removed {
			active[v] = false
		}
	}
	return active, rounds
}

// Coreness computes every vertex's core number with the Matula–Beck
// smallest-last peeling algorithm — the "optimal algorithm with linear
// complexity" the paper compares against in Table 4's parentheses. The
// graph must be symmetric; the degree of v is its in-degree.
func Coreness(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.InDegree(graph.VertexID(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree (bin[d] = start of degree-d block).
	bin := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]+1]++
	}
	for d := int32(1); d <= maxDeg+1; d++ {
		bin[d] += bin[d-1]
	}
	pos := make([]int32, n)  // position of vertex in vert
	vert := make([]int32, n) // vertices sorted by current degree
	cursor := make([]int32, maxDeg+1)
	copy(cursor, bin)
	for v := 0; v < n; v++ {
		pos[v] = cursor[deg[v]]
		vert[pos[v]] = int32(v)
		cursor[deg[v]]++
	}
	core := make([]int32, n)
	copy(core, deg)
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, u := range g.InNeighbors(graph.VertexID(v)) {
			if core[u] > core[v] {
				// Move u one bucket down: swap it with the first
				// vertex of its current-degree block.
				du := core[u]
				pu := pos[u]
				pw := bin[du]
				wv := vert[pw]
				if int32(u) != wv {
					pos[u], pos[wv] = pw, pu
					vert[pu], vert[pw] = wv, int32(u)
				}
				bin[du]++
				core[u]--
			}
		}
	}
	return core
}

// KCoreFromCoreness converts core numbers into K-core membership.
func KCoreFromCoreness(core []int32, k int) []bool {
	out := make([]bool, len(core))
	for v, c := range core {
		out[v] = c >= int32(k)
	}
	return out
}

// ValidateKCore checks the defining property: every member has ≥ k
// members among its neighbors, and the set is maximal (peeling non-members
// does not free anyone, which iterative convergence guarantees; here we
// re-verify membership degrees only). Returns "" if valid.
func ValidateKCore(g *graph.Graph, inCore []bool, k int) string {
	for v := 0; v < g.NumVertices(); v++ {
		if !inCore[v] {
			continue
		}
		cnt := 0
		for _, u := range g.InNeighbors(graph.VertexID(v)) {
			if inCore[u] {
				cnt++
			}
		}
		if cnt < k {
			return "member with too few member neighbors"
		}
	}
	return ""
}
