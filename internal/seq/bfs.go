package seq

import "repro/internal/graph"

// NoParent marks unreached vertices in BFS parent arrays.
const NoParent = ^uint32(0)

// BFSResult holds a BFS tree: Depth[v] is the hop distance from the root
// (-1 if unreached) and Parent[v] the tree parent (NoParent for the root
// and unreached vertices).
type BFSResult struct {
	Depth  []int32
	Parent []uint32
}

// TopDownBFS runs the conventional queue-based BFS over outgoing edges.
func TopDownBFS(g *graph.Graph, root graph.VertexID) *BFSResult {
	n := g.NumVertices()
	r := &BFSResult{Depth: make([]int32, n), Parent: make([]uint32, n)}
	for i := range r.Depth {
		r.Depth[i] = -1
		r.Parent[i] = NoParent
	}
	r.Depth[root] = 0
	queue := []graph.VertexID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.OutNeighbors(u) {
			if r.Depth[v] < 0 {
				r.Depth[v] = r.Depth[u] + 1
				r.Parent[v] = uint32(u)
				queue = append(queue, v)
			}
		}
	}
	return r
}

// DirectionOptimizingBFS runs Beamer-style adaptive BFS: top-down steps
// switch to bottom-up when the frontier grows past a fraction of the
// graph's edges, and back when it shrinks — the single-thread baseline
// configuration of GAPBS used in the paper's COST comparison. The result
// is identical to TopDownBFS in depths; parents may differ but are valid.
func DirectionOptimizingBFS(g *graph.Graph, root graph.VertexID) *BFSResult {
	n := g.NumVertices()
	r := &BFSResult{Depth: make([]int32, n), Parent: make([]uint32, n)}
	for i := range r.Depth {
		r.Depth[i] = -1
		r.Parent[i] = NoParent
	}
	r.Depth[root] = 0
	frontier := []graph.VertexID{root}
	depth := int32(0)
	for len(frontier) > 0 {
		var frontierEdges int64
		for _, u := range frontier {
			frontierEdges += int64(g.OutDegree(u))
		}
		depth++
		if useBottomUp(g, frontierEdges) {
			inFrontier := make([]bool, n)
			for _, u := range frontier {
				inFrontier[u] = true
			}
			var next []graph.VertexID
			for v := 0; v < n; v++ {
				if r.Depth[v] >= 0 {
					continue
				}
				for _, u := range g.InNeighbors(graph.VertexID(v)) {
					if inFrontier[u] {
						r.Depth[v] = depth
						r.Parent[v] = uint32(u)
						next = append(next, graph.VertexID(v))
						break // the loop-carried dependency
					}
				}
			}
			frontier = next
			continue
		}
		var next []graph.VertexID
		for _, u := range frontier {
			for _, v := range g.OutNeighbors(u) {
				if r.Depth[v] < 0 {
					r.Depth[v] = depth
					r.Parent[v] = uint32(u)
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return r
}

// useBottomUp is the direction heuristic: switch to bottom-up when the
// frontier's out-edges exceed |E|/20, the Ligra/Gemini threshold.
func useBottomUp(g *graph.Graph, frontierEdges int64) bool {
	return frontierEdges > g.NumEdges()/20
}

// ValidateBFS checks that a result is a correct BFS tree for (g, root):
// depths match TopDownBFS and every parent edge exists with depth
// parent+1. It returns a descriptive mismatch or "" when valid.
func ValidateBFS(g *graph.Graph, root graph.VertexID, r *BFSResult) string {
	want := TopDownBFS(g, root)
	for v := 0; v < g.NumVertices(); v++ {
		if r.Depth[v] != want.Depth[v] {
			return "depth mismatch"
		}
		if r.Depth[v] > 0 {
			p := graph.VertexID(r.Parent[v])
			if r.Parent[v] == NoParent || !g.HasEdge(p, graph.VertexID(v)) {
				return "missing or phantom parent edge"
			}
			if r.Depth[p] != r.Depth[v]-1 {
				return "parent not one level up"
			}
		}
		if r.Depth[v] == 0 && graph.VertexID(v) != root {
			return "non-root at depth 0"
		}
	}
	return ""
}
