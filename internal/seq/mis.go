package seq

import (
	"repro/internal/graph"
	"repro/internal/xrand"
)

// MISColors returns the deterministic distinct colors (a permutation of
// vertex IDs) used by the MIS algorithms; every machine and the oracle
// compute the same assignment from the seed.
func MISColors(n int, seed uint64) []uint32 {
	return xrand.Perm(n, xrand.Mix(seed, 0x6d15))
}

// GreedyMIS computes the lexicographically-first maximal independent set
// by ascending color: a vertex joins unless a neighbor of smaller color
// already joined. This is the sequential equivalent of the round-based
// algorithm (the classic Luby-style equivalence for distinct priorities)
// and the package's MIS oracle. The graph must be symmetric.
func GreedyMIS(g *graph.Graph, colors []uint32) []bool {
	n := g.NumVertices()
	byColor := make([]graph.VertexID, n)
	for v := 0; v < n; v++ {
		byColor[colors[v]] = graph.VertexID(v)
	}
	inMIS := make([]bool, n)
	blocked := make([]bool, n)
	for _, v := range byColor {
		if blocked[v] {
			continue
		}
		inMIS[v] = true
		for _, u := range g.InNeighbors(v) {
			blocked[u] = true
		}
	}
	return inMIS
}

// RoundMIS computes the same MIS with the paper's iterative algorithm
// (Figure 3a): each round, active vertices whose color is smaller than
// all active neighbors' colors join the set; joined vertices and their
// neighbors deactivate. It mirrors the distributed execution round for
// round and returns the set plus the number of rounds.
func RoundMIS(g *graph.Graph, colors []uint32) ([]bool, int) {
	n := g.NumVertices()
	inMIS := make([]bool, n)
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	rounds := 0
	for {
		rounds++
		var newMIS []graph.VertexID
		for v := 0; v < n; v++ {
			if !active[v] {
				continue
			}
			smallest := true
			for _, u := range g.InNeighbors(graph.VertexID(v)) {
				if active[u] && colors[u] < colors[graph.VertexID(v)] {
					smallest = false
					break // the loop-carried dependency
				}
			}
			if smallest {
				newMIS = append(newMIS, graph.VertexID(v))
			}
		}
		if len(newMIS) == 0 {
			break
		}
		for _, v := range newMIS {
			inMIS[v] = true
			active[v] = false
			for _, u := range g.InNeighbors(v) {
				active[u] = false
			}
		}
		remaining := false
		for v := 0; v < n; v++ {
			if active[v] {
				remaining = true
				break
			}
		}
		if !remaining {
			break
		}
	}
	return inMIS, rounds
}

// ValidateMIS checks independence and maximality of a set on a symmetric
// graph, returning a description of the first violation or "".
func ValidateMIS(g *graph.Graph, inMIS []bool) string {
	for v := 0; v < g.NumVertices(); v++ {
		if inMIS[v] {
			for _, u := range g.InNeighbors(graph.VertexID(v)) {
				if inMIS[u] && int(u) != v {
					return "two adjacent vertices in set"
				}
			}
			continue
		}
		covered := false
		for _, u := range g.InNeighbors(graph.VertexID(v)) {
			if inMIS[u] {
				covered = true
				break
			}
		}
		if !covered {
			return "vertex neither in set nor adjacent to it"
		}
	}
	return ""
}
