// Package seq provides single-threaded reference implementations of the
// paper's five algorithms (plus the linear-time Matula–Beck K-core
// baseline). They serve two purposes: correctness oracles for the
// distributed engine — every mode of the engine must reproduce their
// results — and the single-thread baselines of the paper's COST analysis
// (§7.4, where GAPBS BFS and Galois MIS play this role).
//
// Algorithms whose result depends on the order neighbors are visited
// (K-means tie-breaking, weighted sampling's prefix walk) take a
// NeighborOrder; RingOrder reproduces the exact order the distributed
// circulant schedule uses, making cross-checks exact rather than merely
// plausible.
package seq

import (
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/xrand"
)

// NeighborOrder returns v's incoming neighbors (and parallel weights, nil
// if unweighted) in the order a traversal should visit them.
type NeighborOrder func(g *graph.Graph, v graph.VertexID) ([]graph.VertexID, []float32)

// AscendingOrder visits incoming neighbors in ascending vertex ID — the
// natural single-machine order.
func AscendingOrder(g *graph.Graph, v graph.VertexID) ([]graph.VertexID, []float32) {
	return g.InNeighbors(v), g.InWeights(v)
}

// RingOrder returns the order the circulant schedule visits v's incoming
// neighbors under partition pt: machines (owner−1), (owner−2), …, owner
// (mod p), ascending source ID within each machine.
func RingOrder(pt *partition.Partition) NeighborOrder {
	return func(g *graph.Graph, v graph.VertexID) ([]graph.VertexID, []float32) {
		all := g.InNeighbors(v)
		ws := g.InWeights(v)
		out := make([]graph.VertexID, 0, len(all))
		var outW []float32
		if ws != nil {
			outW = make([]float32, 0, len(ws))
		}
		d := pt.Owner(v)
		for j := 0; j < pt.P; j++ {
			m := ((d-1-j)%pt.P + pt.P) % pt.P
			lo, hi := pt.Range(m)
			for i, u := range all {
				if int(u) >= lo && int(u) < hi {
					out = append(out, u)
					if ws != nil {
						outW = append(outW, ws[i])
					}
				}
			}
		}
		return out, outW
	}
}

// VertexWeight is the deterministic positive weight of v used by weighted
// neighbor sampling, identical on every machine and in the oracle.
func VertexWeight(seed uint64, v graph.VertexID) float64 {
	return xrand.UniformWeight(seed, 0xabcd, uint64(v))
}
