package seq

import (
	"math"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// NoCluster marks unassigned vertices in K-means assignments.
const NoCluster = ^uint32(0)

// KMeansResult holds graph K-means output: per-vertex cluster IDs,
// per-vertex hop distance to the adopted center, the final centers, and
// the per-outer-iteration total distance (the paper's step 3 metric).
type KMeansResult struct {
	Cluster  []uint32
	Dist     []int32
	Centers  []graph.VertexID
	DistSums []int64
	Rounds   int // total assignment (inner BFS) rounds across iterations
}

// KMeans runs the paper's graph-based K-means (Figure 3c, §2.1) for
// `iters` outer iterations with `centers` clusters: (1) pick centers,
// (2) assign every vertex to a cluster by BFS-like adoption — a vertex
// adopts the cluster of its first assigned neighbor, the loop-carried
// dependency — (3) sum distances, (4) re-center and repeat. Re-centering
// picks a deterministic pseudo-random member of each cluster. The order
// of neighbor visits decides ties, so distributed equivalence requires
// the matching NeighborOrder. The graph must be symmetric.
func KMeans(g *graph.Graph, centers, iters int, seed uint64, order NeighborOrder) *KMeansResult {
	if order == nil {
		order = AscendingOrder
	}
	n := g.NumVertices()
	res := &KMeansResult{
		Cluster: make([]uint32, n),
		Dist:    make([]int32, n),
	}
	// Initial centers: the first `centers` entries of a deterministic
	// permutation.
	perm := xrand.Perm(n, xrand.Mix(seed, 0x4b3))
	cs := make([]graph.VertexID, 0, centers)
	for _, v := range perm {
		if len(cs) == centers {
			break
		}
		cs = append(cs, graph.VertexID(v))
	}

	for iter := 0; iter < iters; iter++ {
		for v := range res.Cluster {
			res.Cluster[v] = NoCluster
			res.Dist[v] = -1
		}
		for cid, c := range cs {
			res.Cluster[c] = uint32(cid)
			res.Dist[c] = 0
		}
		// Assignment rounds: simultaneous adoption against the previous
		// round's assignment, mirroring the distributed iteration.
		for round := int32(1); ; round++ {
			res.Rounds++
			type adoption struct {
				v   graph.VertexID
				cid uint32
			}
			var adopted []adoption
			for v := 0; v < n; v++ {
				if res.Cluster[v] != NoCluster {
					continue
				}
				nbrs, _ := order(g, graph.VertexID(v))
				for _, u := range nbrs {
					if res.Cluster[u] != NoCluster && res.Dist[u] < round {
						adopted = append(adopted, adoption{graph.VertexID(v), res.Cluster[u]})
						break // the loop-carried dependency
					}
				}
			}
			if len(adopted) == 0 {
				break
			}
			for _, a := range adopted {
				res.Cluster[a.v] = a.cid
				res.Dist[a.v] = round
			}
		}
		var sum int64
		for v := 0; v < n; v++ {
			if res.Dist[v] > 0 {
				sum += int64(res.Dist[v])
			}
		}
		res.DistSums = append(res.DistSums, sum)
		if iter == iters-1 {
			break
		}
		cs = Recenter(res.Cluster, len(cs), seed, iter, cs)
	}
	res.Centers = cs
	return res
}

// Recenter picks each cluster's next center: the member minimizing a
// deterministic per-iteration hash — a seeded stand-in for "pick a random
// member", computable identically by every machine. Empty clusters keep
// their previous center.
func Recenter(cluster []uint32, k int, seed uint64, iter int, prev []graph.VertexID) []graph.VertexID {
	best := make([]graph.VertexID, k)
	bestKey := make([]float64, k)
	for cid := range best {
		best[cid] = prev[cid]
		bestKey[cid] = math.Inf(1)
	}
	for v, cid := range cluster {
		if cid == NoCluster {
			continue
		}
		key := xrand.Uniform01(seed, 0x7e, uint64(iter), uint64(v))
		if key < bestKey[cid] {
			bestKey[cid] = key
			best[cid] = graph.VertexID(v)
		}
	}
	return best
}

// ValidateKMeans checks structural properties independent of tie-breaking:
// every assigned vertex's distance matches the multi-source BFS level from
// the centers, unassigned vertices are unreachable from every center, and
// cluster IDs are consistent with adoption (each vertex at distance d > 0
// has a neighbor in the same cluster at distance d−1). Returns "" if valid.
func ValidateKMeans(g *graph.Graph, r *KMeansResult) string {
	n := g.NumVertices()
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	var frontier []graph.VertexID
	for _, c := range r.Centers {
		if level[c] == 0 {
			continue
		}
		level[c] = 0
		frontier = append(frontier, c)
	}
	for d := int32(1); len(frontier) > 0; d++ {
		var next []graph.VertexID
		for _, u := range frontier {
			for _, v := range g.OutNeighbors(u) {
				if level[v] < 0 {
					level[v] = d
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	for v := 0; v < n; v++ {
		if (r.Cluster[v] == NoCluster) != (level[v] < 0) {
			return "assignment/reachability mismatch"
		}
		if r.Cluster[v] == NoCluster {
			continue
		}
		if r.Dist[v] != level[v] {
			return "distance is not the BFS level"
		}
		if r.Dist[v] == 0 {
			continue
		}
		ok := false
		for _, u := range g.InNeighbors(graph.VertexID(v)) {
			if r.Cluster[u] == r.Cluster[v] && r.Dist[u] == r.Dist[v]-1 {
				ok = true
				break
			}
		}
		if !ok {
			return "no adoption witness neighbor"
		}
	}
	return ""
}
