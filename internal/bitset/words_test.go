package bitset

import "testing"

func TestSegmentWordBytes(t *testing.T) {
	cases := []struct{ lo, hi, want int }{
		{0, 0, 0}, {5, 5, 0}, {10, 5, 0},
		{0, 1, 8}, {0, 64, 8}, {0, 65, 16},
		{64, 128, 8}, {63, 65, 16}, {128, 300, 24},
	}
	for _, c := range cases {
		if got := SegmentWordBytes(c.lo, c.hi); got != c.want {
			t.Errorf("SegmentWordBytes(%d, %d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestAppendOrSegmentRoundTrip(t *testing.T) {
	b := New(300)
	for _, i := range []int{0, 1, 63, 64, 100, 191, 192, 255, 299} {
		b.Set(i)
	}
	for _, seg := range [][2]int{{0, 300}, {0, 64}, {64, 192}, {64, 300}, {192, 299}} {
		lo, hi := seg[0], seg[1]
		blob := b.AppendSegmentLE(nil, lo, hi)
		if len(blob) != SegmentWordBytes(lo, hi) {
			t.Fatalf("[%d,%d): %d bytes, want %d", lo, hi, len(blob), SegmentWordBytes(lo, hi))
		}
		out := New(300)
		if err := out.OrSegmentLE(blob, lo, hi); err != nil {
			t.Fatal(err)
		}
		// Every set bit within the covered words must round-trip.
		wLo, wHi := (lo/64)*64, ((hi+63)/64)*64
		if wHi > 300 {
			wHi = 300
		}
		b.RangeSegment(wLo, wHi, func(i int) bool {
			if !out.Get(i) {
				t.Errorf("[%d,%d): bit %d lost", lo, hi, i)
			}
			return true
		})
		if out.Count() != b.CountSegment(wLo, wHi) {
			t.Errorf("[%d,%d): %d bits, want %d", lo, hi, out.Count(), b.CountSegment(wLo, wHi))
		}
	}
}

func TestOrSegmentMerges(t *testing.T) {
	a := New(128)
	a.Set(3)
	blob := a.AppendSegmentLE(nil, 0, 64)
	b := New(128)
	b.Set(70)
	b.Set(5)
	if err := b.OrSegmentLE(blob, 0, 64); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{3, 5, 70} {
		if !b.Get(i) {
			t.Errorf("bit %d missing after OR merge", i)
		}
	}
	if b.Count() != 3 {
		t.Errorf("count = %d, want 3", b.Count())
	}
}

func TestOrSegmentSizeMismatch(t *testing.T) {
	b := New(128)
	if err := b.OrSegmentLE(make([]byte, 7), 0, 64); err == nil {
		t.Fatal("short payload accepted")
	}
	if err := b.OrSegmentLE(make([]byte, 8), 64, 64); err == nil {
		t.Fatal("non-empty payload for empty segment accepted")
	}
	if err := b.OrSegmentLE(nil, 70, 64); err != nil {
		t.Fatal("empty payload for empty segment rejected:", err)
	}
}

func TestAppendSegmentNoAllocWithCapacity(t *testing.T) {
	b := New(1024)
	b.Fill()
	dst := make([]byte, 0, SegmentWordBytes(0, 1024))
	allocs := testing.AllocsPerRun(100, func() {
		dst = b.AppendSegmentLE(dst[:0], 0, 1024)
	})
	if allocs != 0 {
		t.Fatalf("AppendSegmentLE with spare capacity allocated %.1f/op", allocs)
	}
}
