// Package bitset provides a fixed-size bitmap specialized for dense vertex
// sets in graph processing.
//
// The zero value of Bitmap is an empty bitmap of length zero; use New to
// allocate one sized for a vertex range. Bitmap supports both plain and
// atomic mutation so that a frontier can be filled concurrently by worker
// threads and then scanned sequentially, which is the dominant access
// pattern in the engine. Dependency messages circulate between simulated
// machines as serialized bitmaps (one bit per vertex), so Bitmap also
// round-trips to a compact byte representation.
package bitset

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Bitmap is a fixed-length bit vector indexed from 0 to Len()-1.
type Bitmap struct {
	n     int
	words []uint64
}

// New returns a Bitmap holding n bits, all zero.
func New(n int) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", n))
	}
	return &Bitmap{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len reports the number of bits the bitmap holds.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i. It panics if i is out of range.
func (b *Bitmap) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i. It panics if i is out of range.
func (b *Bitmap) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is set. It panics if i is out of range.
func (b *Bitmap) Get(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// SetAtomic sets bit i using an atomic read-modify-write, safe for
// concurrent use with other SetAtomic and GetAtomic calls on any bits.
func (b *Bitmap) SetAtomic(i int) {
	b.check(i)
	addr := &b.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return
		}
	}
}

// TestAndSetAtomic atomically sets bit i and reports whether this call
// changed it from 0 to 1 (i.e. returns false if it was already set).
func (b *Bitmap) TestAndSetAtomic(i int) bool {
	b.check(i)
	addr := &b.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return true
		}
	}
}

// GetAtomic reports whether bit i is set using an atomic load.
func (b *Bitmap) GetAtomic(i int) bool {
	b.check(i)
	return atomic.LoadUint64(&b.words[i/wordBits])&(1<<(uint(i)%wordBits)) != 0
}

// ClearAll zeroes every bit.
func (b *Bitmap) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Fill sets every bit.
func (b *Bitmap) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// trim zeroes the tail bits of the last word beyond Len.
func (b *Bitmap) trim() {
	if rem := b.n % wordBits; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Union ORs other into b. Both bitmaps must have the same length.
func (b *Bitmap) Union(other *Bitmap) {
	b.sameLen(other)
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Intersect ANDs other into b. Both bitmaps must have the same length.
func (b *Bitmap) Intersect(other *Bitmap) {
	b.sameLen(other)
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// AndNot clears every bit of b that is set in other.
func (b *Bitmap) AndNot(other *Bitmap) {
	b.sameLen(other)
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

// CopyFrom overwrites b's contents with other's. Lengths must match.
func (b *Bitmap) CopyFrom(other *Bitmap) {
	b.sameLen(other)
	copy(b.words, other.words)
}

// Clone returns a deep copy of b.
func (b *Bitmap) Clone() *Bitmap {
	c := New(b.n)
	copy(c.words, b.words)
	return c
}

// Equal reports whether b and other have identical length and contents.
func (b *Bitmap) Equal(other *Bitmap) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range b.words {
		if other.words[i] != w {
			return false
		}
	}
	return true
}

// Range calls fn for each set bit in ascending order. If fn returns false
// the iteration stops early.
func (b *Bitmap) Range(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// RangeSegment calls fn for each set bit i with lo <= i < hi, in ascending
// order. It panics if the segment is out of range.
func (b *Bitmap) RangeSegment(lo, hi int, fn func(i int) bool) {
	if lo < 0 || hi > b.n || lo > hi {
		panic(fmt.Sprintf("bitset: segment [%d,%d) out of range [0,%d)", lo, hi, b.n))
	}
	if lo == hi {
		return
	}
	loWord, hiWord := lo/wordBits, (hi-1)/wordBits
	for wi := loWord; wi <= hiWord; wi++ {
		w := b.words[wi]
		if wi == loWord {
			w &= ^uint64(0) << (uint(lo) % wordBits)
		}
		if wi == hiWord {
			if rem := hi % wordBits; rem != 0 {
				w &= (1 << uint(rem)) - 1
			}
		}
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// CountSegment returns the number of set bits i with lo <= i < hi.
func (b *Bitmap) CountSegment(lo, hi int) int {
	c := 0
	b.RangeSegment(lo, hi, func(int) bool { c++; return true })
	return c
}

// AppendSet appends the indices of all set bits to dst and returns it.
func (b *Bitmap) AppendSet(dst []int) []int {
	b.Range(func(i int) bool { dst = append(dst, i); return true })
	return dst
}

// Words exposes the underlying word slice for bulk operations such as
// serialization. The slice must not be resized by callers.
func (b *Bitmap) Words() []uint64 { return b.words }

// MarshalBinaryTo appends the bitmap payload (words in little-endian order)
// to dst and returns the extended slice. The length is not encoded; the
// receiver must know it (dependency bitmaps always cover a fixed vertex
// partition).
func (b *Bitmap) MarshalBinaryTo(dst []byte) []byte {
	return b.AppendSegmentLE(dst, 0, b.n)
}

// MarshaledSize returns the number of bytes MarshalBinaryTo appends.
func (b *Bitmap) MarshaledSize() int { return len(b.words) * 8 }

// UnmarshalBinary overwrites b from a payload produced by MarshalBinaryTo
// on a bitmap of the same length.
func (b *Bitmap) UnmarshalBinary(src []byte) error {
	if len(src) != len(b.words)*8 {
		return fmt.Errorf("bitset: payload is %d bytes, want %d", len(src), len(b.words)*8)
	}
	for i := range b.words {
		off := i * 8
		b.words[i] = uint64(src[off]) | uint64(src[off+1])<<8 |
			uint64(src[off+2])<<16 | uint64(src[off+3])<<24 |
			uint64(src[off+4])<<32 | uint64(src[off+5])<<40 |
			uint64(src[off+6])<<48 | uint64(src[off+7])<<56
	}
	b.trim()
	return nil
}

// String renders the bitmap as a compact {i, j, ...} set, for debugging.
func (b *Bitmap) String() string {
	out := "{"
	first := true
	b.Range(func(i int) bool {
		if !first {
			out += " "
		}
		out += fmt.Sprint(i)
		first = false
		return true
	})
	return out + "}"
}

func (b *Bitmap) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.n))
	}
}

func (b *Bitmap) sameLen(other *Bitmap) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitset: length mismatch %d vs %d", b.n, other.n))
	}
}
