package bitset

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		b.Clear(i)
		if b.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestCountAndAny(t *testing.T) {
	b := New(130)
	if b.Any() {
		t.Fatal("fresh bitmap reports Any")
	}
	want := []int{3, 64, 128, 129}
	for _, i := range want {
		b.Set(i)
	}
	if got := b.Count(); got != len(want) {
		t.Fatalf("Count = %d, want %d", got, len(want))
	}
	if !b.Any() {
		t.Fatal("Any = false with bits set")
	}
	b.ClearAll()
	if b.Count() != 0 || b.Any() {
		t.Fatal("ClearAll left bits set")
	}
}

func TestFillTrimsTail(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		b := New(n)
		b.Fill()
		if got := b.Count(); got != n {
			t.Fatalf("n=%d: Fill then Count = %d", n, got)
		}
	}
}

func TestZeroLength(t *testing.T) {
	b := New(0)
	if b.Count() != 0 || b.Any() {
		t.Fatal("zero-length bitmap misbehaves")
	}
	b.Fill()
	if b.Count() != 0 {
		t.Fatal("Fill on zero-length bitmap set bits")
	}
	b.Range(func(int) bool { t.Fatal("Range visited a bit"); return false })
}

func TestRangeOrderAndEarlyStop(t *testing.T) {
	b := New(300)
	want := []int{0, 5, 63, 64, 190, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.Range(func(i int) bool { got = append(got, i); return true })
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order %v, want %v", got, want)
		}
	}
	var count int
	b.Range(func(i int) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d bits, want 3", count)
	}
}

func TestRangeSegment(t *testing.T) {
	b := New(256)
	for i := 0; i < 256; i += 3 {
		b.Set(i)
	}
	for _, seg := range [][2]int{{0, 256}, {0, 1}, {63, 65}, {64, 128}, {100, 101}, {130, 130}, {255, 256}} {
		lo, hi := seg[0], seg[1]
		var got []int
		b.RangeSegment(lo, hi, func(i int) bool { got = append(got, i); return true })
		var want []int
		for i := lo; i < hi; i++ {
			if b.Get(i) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("segment [%d,%d): got %v want %v", lo, hi, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("segment [%d,%d): got %v want %v", lo, hi, got, want)
			}
		}
		if c := b.CountSegment(lo, hi); c != len(want) {
			t.Fatalf("CountSegment [%d,%d) = %d, want %d", lo, hi, c, len(want))
		}
	}
}

func TestSetOps(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)

	u := a.Clone()
	u.Union(b)
	if !(u.Get(1) && u.Get(50) && u.Get(99) && u.Count() == 3) {
		t.Fatalf("Union wrong: %v", u)
	}

	in := a.Clone()
	in.Intersect(b)
	if !(in.Get(50) && in.Count() == 1) {
		t.Fatalf("Intersect wrong: %v", in)
	}

	d := a.Clone()
	d.AndNot(b)
	if !(d.Get(1) && d.Count() == 1) {
		t.Fatalf("AndNot wrong: %v", d)
	}
}

func TestCloneEqualCopyFrom(t *testing.T) {
	a := New(70)
	a.Set(0)
	a.Set(69)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(30)
	if a.Equal(c) {
		t.Fatal("mutating clone affected equality check unexpectedly")
	}
	if a.Get(30) {
		t.Fatal("clone shares storage with original")
	}
	a.CopyFrom(c)
	if !a.Equal(c) {
		t.Fatal("CopyFrom did not copy")
	}
	if a.Equal(New(71)) {
		t.Fatal("Equal ignores length")
	}
}

func TestAtomicSetConcurrent(t *testing.T) {
	const n = 4096
	b := New(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				b.SetAtomic(i)
			}
		}(w)
	}
	wg.Wait()
	if got := b.Count(); got != n {
		t.Fatalf("concurrent SetAtomic: Count = %d, want %d", got, n)
	}
}

func TestTestAndSetAtomic(t *testing.T) {
	b := New(64)
	if !b.TestAndSetAtomic(7) {
		t.Fatal("first TestAndSetAtomic returned false")
	}
	if b.TestAndSetAtomic(7) {
		t.Fatal("second TestAndSetAtomic returned true")
	}
	if !b.Get(7) {
		t.Fatal("bit not set")
	}
	// Exactly one winner under contention.
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		bm := New(1)
		var wg sync.WaitGroup
		wins := make(chan bool, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if bm.TestAndSetAtomic(0) {
					wins <- true
				}
			}()
		}
		wg.Wait()
		close(wins)
		n := 0
		for range wins {
			n++
		}
		if n != 1 {
			t.Fatalf("trial %d: %d winners, want 1", trial, n)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 64, 65, 1000} {
		b := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		buf := b.MarshalBinaryTo(nil)
		if len(buf) != b.MarshaledSize() {
			t.Fatalf("n=%d: payload %d bytes, MarshaledSize %d", n, len(buf), b.MarshaledSize())
		}
		c := New(n)
		if err := c.UnmarshalBinary(buf); err != nil {
			t.Fatalf("n=%d: unmarshal: %v", n, err)
		}
		if !b.Equal(c) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestUnmarshalSizeMismatch(t *testing.T) {
	b := New(64)
	if err := b.UnmarshalBinary(make([]byte, 7)); err == nil {
		t.Fatal("UnmarshalBinary accepted short payload")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(*Bitmap){
		func(b *Bitmap) { b.Set(-1) },
		func(b *Bitmap) { b.Set(10) },
		func(b *Bitmap) { b.Get(10) },
		func(b *Bitmap) { b.Clear(10) },
		func(b *Bitmap) { b.SetAtomic(10) },
		func(b *Bitmap) { b.RangeSegment(0, 11, func(int) bool { return true }) },
		func(b *Bitmap) { b.RangeSegment(5, 4, func(int) bool { return true }) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn(New(10))
		}()
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union with mismatched lengths did not panic")
		}
	}()
	New(10).Union(New(11))
}

// Property: for arbitrary index sets, the bitmap behaves like a set of ints.
func TestQuickSetSemantics(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 1 << 16
		b := New(n)
		ref := map[int]bool{}
		for _, r := range raw {
			i := int(r)
			b.Set(i)
			ref[i] = true
		}
		if b.Count() != len(ref) {
			return false
		}
		ok := true
		b.Range(func(i int) bool {
			if !ref[i] {
				ok = false
				return false
			}
			delete(ref, i)
			return true
		})
		return ok && len(ref) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: marshal/unmarshal is the identity for arbitrary contents.
func TestQuickMarshalIdentity(t *testing.T) {
	f := func(raw []uint16, nRaw uint16) bool {
		n := int(nRaw) + 1
		b := New(n)
		for _, r := range raw {
			b.Set(int(r) % n)
		}
		c := New(n)
		if err := c.UnmarshalBinary(b.MarshalBinaryTo(nil)); err != nil {
			return false
		}
		return b.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetSequential(b *testing.B) {
	bm := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Set(i & (1<<20 - 1))
	}
}

func BenchmarkRangeDense(b *testing.B) {
	bm := New(1 << 20)
	for i := 0; i < bm.Len(); i += 2 {
		bm.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0
		bm.Range(func(j int) bool { sum += j; return true })
	}
}
