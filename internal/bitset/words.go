package bitset

import (
	"encoding/binary"
	"fmt"
)

// Word-level serialization kernels. Frontier and dependency bitmaps
// travel between machines as runs of little-endian 64-bit words; these
// kernels move whole words between a Bitmap and a byte buffer in one
// pass, so the data plane never touches bits one at a time. Segments
// are addressed in bit coordinates: lo rounds down and hi rounds up to
// word boundaries, which is why the engine aligns its group bounds to
// 64 (see core.groupBounds).

// SegmentWordBytes returns the number of bytes the word-aligned
// little-endian encoding of bits [lo, hi) occupies.
func SegmentWordBytes(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	return ((hi+wordBits-1)/wordBits - lo/wordBits) * 8
}

// AppendSegmentLE appends the words covering bits [lo, hi) to dst in
// little-endian order and returns the extended slice. When dst already
// has SegmentWordBytes(lo, hi) spare capacity — a slab buffer sized up
// front — no allocation occurs.
func (b *Bitmap) AppendSegmentLE(dst []byte, lo, hi int) []byte {
	if lo >= hi {
		return dst
	}
	wLo, wHi := lo/wordBits, (hi+wordBits-1)/wordBits
	off := len(dst)
	n := (wHi - wLo) * 8
	if cap(dst)-off < n {
		grown := make([]byte, off, off+n)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+n]
	for i, w := range b.words[wLo:wHi] {
		binary.LittleEndian.PutUint64(dst[off+i*8:], w)
	}
	return dst
}

// OrSegmentLE ORs little-endian words from src into the words covering
// bits [lo, hi) — the merge kernel for received bitmap segments. src
// must be exactly SegmentWordBytes(lo, hi) long, and bits beyond the
// bitmap's length in the final word must be zero in src.
func (b *Bitmap) OrSegmentLE(src []byte, lo, hi int) error {
	if lo >= hi {
		if len(src) != 0 {
			return fmt.Errorf("bitset: %d-byte payload for empty segment", len(src))
		}
		return nil
	}
	wLo, wHi := lo/wordBits, (hi+wordBits-1)/wordBits
	if len(src) != (wHi-wLo)*8 {
		return fmt.Errorf("bitset: segment payload is %d bytes, want %d", len(src), (wHi-wLo)*8)
	}
	for wi := wLo; wi < wHi; wi++ {
		b.words[wi] |= binary.LittleEndian.Uint64(src[(wi-wLo)*8:])
	}
	return nil
}
