// Package xrand provides deterministic, coordinate-indexed pseudo-random
// values. Distributed algorithms need per-(seed, iteration, vertex)
// randomness that every machine — and the sequential oracle — computes
// identically without communication; a counter-mode hash provides exactly
// that. The mixer is SplitMix64's finalizer, which passes standard
// avalanche tests and is the stdlib-independent workhorse for this use.
package xrand

import "math"

// Mix hashes an arbitrary coordinate tuple into a uint64.
func Mix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = splitmix(h)
	}
	return h
}

func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uniform01 returns a deterministic value in [0, 1) for the coordinate
// tuple.
func Uniform01(vals ...uint64) float64 {
	return float64(Mix(vals...)>>11) / float64(1<<53)
}

// UniformWeight returns a deterministic value in (0, 1] — usable as a
// positive vertex or edge weight.
func UniformWeight(vals ...uint64) float64 {
	u := Uniform01(vals...)
	if u == 0 {
		return 1
	}
	return 1 - u
}

// Intn returns a deterministic value in [0, n) for the coordinate tuple.
// It panics if n <= 0.
func Intn(n int, vals ...uint64) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	v := Uniform01(vals...) * float64(n)
	i := int(v)
	if i >= n { // guard against float rounding at the boundary
		i = n - 1
	}
	return i
}

// Perm returns a deterministic permutation of [0, n) for the seed — used
// for MIS color assignment, where every machine must agree on distinct
// vertex colors without exchanging them.
func Perm(n int, seed uint64) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	// Fisher–Yates with deterministic draws.
	for i := n - 1; i > 0; i-- {
		j := Intn(i+1, seed, uint64(i))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NaNGuard converts NaN to 0; useful when mixing measured floats into
// deterministic decisions.
func NaNGuard(f float64) float64 {
	if math.IsNaN(f) {
		return 0
	}
	return f
}
