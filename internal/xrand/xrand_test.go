package xrand

import (
	"testing"
	"testing/quick"
)

func TestMixDeterministic(t *testing.T) {
	if Mix(1, 2, 3) != Mix(1, 2, 3) {
		t.Fatal("Mix not deterministic")
	}
	if Mix(1, 2, 3) == Mix(1, 2, 4) || Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix collides on trivially different tuples")
	}
}

func TestUniform01Range(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		u := Uniform01(42, i)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform01 = %g out of [0,1)", u)
		}
	}
}

func TestUniform01Distribution(t *testing.T) {
	const n = 100000
	var sum float64
	buckets := make([]int, 10)
	for i := uint64(0); i < n; i++ {
		u := Uniform01(7, i)
		sum += u
		buckets[int(u*10)]++
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean %g, want ~0.5", mean)
	}
	for b, c := range buckets {
		if c < n/10-n/100 || c > n/10+n/100 {
			t.Fatalf("bucket %d has %d of %d", b, c, n)
		}
	}
}

func TestUniformWeightPositive(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		w := UniformWeight(3, i)
		if w <= 0 || w > 1 {
			t.Fatalf("UniformWeight = %g out of (0,1]", w)
		}
	}
}

func TestIntn(t *testing.T) {
	seen := make([]bool, 7)
	for i := uint64(0); i < 1000; i++ {
		v := Intn(7, 5, i)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn = %d", v)
		}
		seen[v] = true
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("value %d never drawn", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	Intn(0, 1)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(nRaw uint8, seed uint64) bool {
		n := int(nRaw)
		p := Perm(n, seed)
		seen := make([]bool, n)
		for _, v := range p {
			if int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPermVariesWithSeed(t *testing.T) {
	a, b := Perm(100, 1), Perm(100, 2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds gave identical permutations")
	}
}
