package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// VetConfig is the subset of cmd/go's vet JSON config the unit loader
// needs (the file go vet hands a -vettool per package).
type VetConfig struct {
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
}

// LoadVetUnit parses and type-checks one vet unit against the
// toolchain's pre-built export data, producing the same Package shape
// the source loader yields — so analyses written against Package run
// unchanged under `go vet -vettool`.
func LoadVetUnit(cfg *VetConfig) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, path := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, path)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exportFile, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exportFile)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tcfg := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Sizes:    types.SizesFor(compiler, runtime.GOARCH),
	}
	tpkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Filenames:  names,
		Types:      tpkg,
		Info:       info,
	}, nil
}
