// Package loader is the shared stdlib-only package loader behind every
// type-resolved analysis in the repository: the §4 UDF analysis
// (internal/analyzer/typed) and the sgvet invariant suite
// (internal/sgvet) both load and type-check packages through it, so
// module discovery, import resolution and memoization live in exactly
// one place.
//
// The loader is deliberately stdlib-only (go/build for file selection,
// go/parser + go/types for checking, the source importer for GOROOT
// packages): the build environment pins dependencies, so
// golang.org/x/tools/go/packages is not available. Imports inside the
// current module are resolved by walking the module tree itself;
// everything else is delegated to importer.ForCompiler(fset, "source").
// A second entry point, LoadVetUnit, type-checks one package against
// the toolchain's pre-built export data — the `go vet -vettool` unit
// protocol — and yields the same Package shape.
package loader

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the package's path within the module (or the
	// synthetic path it was loaded under).
	ImportPath string
	// Dir is the directory the files were read from.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File
	// Filenames parallels Files.
	Filenames []string

	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check errors; loading is tolerant, so a
	// package with errors still yields whatever type information could
	// be computed.
	TypeErrors []error
}

// Config parameterizes a Loader. The zero value discovers the module
// from the working directory.
type Config struct {
	// ModuleRoot is the directory containing go.mod. Discovered by
	// walking up from Dir (or the working directory) when empty.
	ModuleRoot string
	// ModulePath is the module's path. Parsed from go.mod when empty.
	ModulePath string
}

// Loader loads and type-checks packages of one module. It memoizes by
// import path, so repeated imports (and the stdlib behind them) are
// checked once per Loader.
type Loader struct {
	cfg  Config
	fset *token.FileSet
	std  types.Importer
	ctxt build.Context

	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewLoader returns a loader for the module identified by cfg, or an
// error when no go.mod can be found.
func NewLoader(cfg Config) (*Loader, error) {
	if cfg.ModuleRoot == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		root, err := FindModuleRoot(wd)
		if err != nil {
			return nil, err
		}
		cfg.ModuleRoot = root
	}
	if cfg.ModulePath == "" {
		b, err := os.ReadFile(filepath.Join(cfg.ModuleRoot, "go.mod"))
		if err != nil {
			return nil, fmt.Errorf("loader: reading go.mod: %w", err)
		}
		m := moduleRe.FindSubmatch(b)
		if m == nil {
			return nil, fmt.Errorf("loader: no module directive in %s/go.mod", cfg.ModuleRoot)
		}
		cfg.ModulePath = string(m[1])
	}
	fset := token.NewFileSet()
	ctxt := build.Default
	ctxt.CgoEnabled = false // pure-Go module; never invoke cgo for our own files
	return &Loader{
		cfg:     cfg,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		ctxt:    ctxt,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// ModuleRoot returns the directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.cfg.ModuleRoot }

// ModulePath returns the module path.
func (l *Loader) ModulePath() string { return l.cfg.ModulePath }

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// FindModuleRoot walks up from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loader: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// LoadDir loads the package in a single directory. The directory may
// live outside the module tree (test fixtures); imports are still
// resolved against the loader's module.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.importPathFor(dir)
	return l.load(path, dir)
}

// LoadPatterns expands package patterns relative to the module root —
// "./..." wildcards and plain directory paths — and loads each package.
// Directories without buildable Go files are skipped silently, matching
// the go tool.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		rel := strings.TrimPrefix(pat, "./")
		switch {
		case rel == "..." || strings.HasSuffix(rel, "/..."):
			base := strings.TrimSuffix(rel, "...")
			base = strings.TrimSuffix(base, "/")
			root := filepath.Join(l.cfg.ModuleRoot, base)
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				add(p)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("loader: expanding %s: %w", pat, err)
			}
		default:
			if filepath.IsAbs(pat) {
				add(pat)
			} else {
				add(filepath.Join(l.cfg.ModuleRoot, rel))
			}
		}
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			if isNoGo(err) {
				continue
			}
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

func isNoGo(err error) bool {
	var ng *build.NoGoError
	return errors.As(err, &ng)
}

// importPathFor maps a directory to its import path: module-relative
// when inside the module, a synthetic rooted path otherwise.
func (l *Loader) importPathFor(dir string) string {
	if rel, err := filepath.Rel(l.cfg.ModuleRoot, dir); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		if rel == "." {
			return l.cfg.ModulePath
		}
		return l.cfg.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return "dir:" + filepath.ToSlash(dir)
}

// dirFor maps an import path inside the module to its directory, or ""
// when the path is not ours.
func (l *Loader) dirFor(path string) string {
	if path == l.cfg.ModulePath {
		return l.cfg.ModuleRoot
	}
	if rest, ok := strings.CutPrefix(path, l.cfg.ModulePath+"/"); ok {
		return filepath.Join(l.cfg.ModuleRoot, filepath.FromSlash(rest))
	}
	if rest, ok := strings.CutPrefix(path, "dir:"); ok {
		return filepath.FromSlash(rest)
	}
	return ""
}

// Import implements types.Importer: module-internal paths are loaded
// from source by this loader, everything else (GOROOT) by the stdlib
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirFor(path); dir != "" {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package in dir under import path,
// memoized.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)

	pkg := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	for _, name := range names {
		full := filepath.Join(dir, name)
		file, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		pkg.Files = append(pkg.Files, file)
		pkg.Filenames = append(pkg.Filenames, full)
	}

	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.fset, pkg.Files, pkg.Info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("loader: checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}
