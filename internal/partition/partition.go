// Package partition implements Gemini-style outgoing edge-cut graph
// partitioning (paper §2.2) and the per-machine edge layouts the engine's
// schedulers consume.
//
// Vertices are divided into p contiguous chunks, one per machine; a
// machine owns the master copies of its chunk and *all outgoing edges* of
// those vertices. Consequently a vertex v acquires a mirror on machine m
// exactly when some of v's incoming edges originate from masters of m —
// the configuration in the paper's Figure 2. Chunk boundaries are aligned
// to 64-vertex multiples so replicated bitmaps can be exchanged as whole
// words.
//
// Chunks are balanced on α·|V_chunk| + |E_chunk| (out-edges), the balance
// heuristic Gemini uses, so skewed graphs do not pile their edges onto one
// machine.
package partition

import (
	"fmt"

	"repro/internal/graph"
)

// Align is the vertex alignment of chunk boundaries, chosen to match the
// bitmap word size.
const Align = 64

// DefaultAlpha is the vertex-versus-edge balance weight in the chunking
// objective α·|V|+|E|. Gemini uses 8·(p−1); a flat 8 behaves equivalently
// at the cluster sizes evaluated here.
const DefaultAlpha = 8.0

// Partition assigns each vertex to an owning machine. Starts has p+1
// entries; machine i owns vertices [Starts[i], Starts[i+1]).
type Partition struct {
	P      int
	NumV   int
	Starts []int
}

// NewChunked partitions g's vertices into p contiguous chunks balanced by
// alpha·vertices + out-edges, with 64-aligned boundaries. p must be ≥ 1;
// alpha ≤ 0 selects DefaultAlpha.
func NewChunked(g *graph.Graph, p int, alpha float64) (*Partition, error) {
	if p < 1 {
		return nil, fmt.Errorf("partition: %d machines", p)
	}
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	n := g.NumVertices()
	total := alpha*float64(n) + float64(g.NumEdges())
	perChunk := total / float64(p)

	starts := make([]int, p+1)
	v := 0
	for i := 0; i < p; i++ {
		starts[i] = v
		if i == p-1 {
			break
		}
		var acc float64
		for v < n && acc < perChunk {
			acc += alpha + float64(g.OutDegree(graph.VertexID(v)))
			v++
		}
		// Round up to the alignment boundary so bitmap segments are
		// word-exchangeable.
		if rem := v % Align; rem != 0 {
			v += Align - rem
		}
		if v > n {
			v = n
		}
	}
	starts[p] = n
	// Monotonicity can break when rounding overshoots on tiny graphs;
	// clamp so every machine has a valid (possibly empty) range.
	for i := 1; i <= p; i++ {
		if starts[i] < starts[i-1] {
			starts[i] = starts[i-1]
		}
	}
	return &Partition{P: p, NumV: n, Starts: starts}, nil
}

// Owner returns the machine owning vertex v's master copy.
func (pt *Partition) Owner(v graph.VertexID) int {
	// Binary search over Starts; p is small so this is effectively
	// constant, and it avoids a second O(|V|) owner table.
	lo, hi := 0, pt.P
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if pt.Starts[mid] <= int(v) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Range returns machine i's vertex range [lo, hi).
func (pt *Partition) Range(i int) (lo, hi int) { return pt.Starts[i], pt.Starts[i+1] }

// Size returns the number of vertices machine i owns.
func (pt *Partition) Size(i int) int { return pt.Starts[i+1] - pt.Starts[i] }

// Validate checks structural invariants, for tests.
func (pt *Partition) Validate() error {
	if len(pt.Starts) != pt.P+1 {
		return fmt.Errorf("partition: %d starts for %d machines", len(pt.Starts), pt.P)
	}
	if pt.Starts[0] != 0 || pt.Starts[pt.P] != pt.NumV {
		return fmt.Errorf("partition: range [%d,%d) does not cover [0,%d)", pt.Starts[0], pt.Starts[pt.P], pt.NumV)
	}
	for i := 0; i < pt.P; i++ {
		if pt.Starts[i] > pt.Starts[i+1] {
			return fmt.Errorf("partition: starts not monotone at %d", i)
		}
		if i > 0 && pt.Starts[i]%Align != 0 && pt.Starts[i] != pt.NumV {
			return fmt.Errorf("partition: start[%d]=%d not %d-aligned", i, pt.Starts[i], Align)
		}
	}
	return nil
}
