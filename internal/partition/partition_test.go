package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestChunkedCoversAllVertices(t *testing.T) {
	g := graph.RMAT(10, 8, graph.Graph500Params(), 1)
	for _, p := range []int{1, 2, 3, 4, 7, 16} {
		pt, err := NewChunked(g, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := pt.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		total := 0
		for i := 0; i < p; i++ {
			total += pt.Size(i)
		}
		if total != g.NumVertices() {
			t.Fatalf("p=%d: chunks cover %d of %d vertices", p, total, g.NumVertices())
		}
	}
}

func TestChunkedRejectsBadP(t *testing.T) {
	g := graph.Ring(10)
	if _, err := NewChunked(g, 0, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestOwnerMatchesRange(t *testing.T) {
	g := graph.RMAT(9, 8, graph.Graph500Params(), 2)
	pt, err := NewChunked(g, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		o := pt.Owner(graph.VertexID(v))
		lo, hi := pt.Range(o)
		if v < lo || v >= hi {
			t.Fatalf("vertex %d: owner %d range [%d,%d)", v, o, lo, hi)
		}
	}
}

func TestChunkedAlignment(t *testing.T) {
	g := graph.RMAT(10, 16, graph.Graph500Params(), 3)
	pt, err := NewChunked(g, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < pt.P; i++ {
		if pt.Starts[i]%Align != 0 && pt.Starts[i] != g.NumVertices() {
			t.Fatalf("boundary %d = %d not aligned", i, pt.Starts[i])
		}
	}
}

func TestChunkedEdgeBalance(t *testing.T) {
	g := graph.RMAT(12, 16, graph.Graph500Params(), 4)
	const p = 4
	pt, err := NewChunked(g, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, p)
	for i := 0; i < p; i++ {
		lo, hi := pt.Range(i)
		for v := lo; v < hi; v++ {
			loads[i] += DefaultAlpha + float64(g.OutDegree(graph.VertexID(v)))
		}
	}
	var total float64
	maxLoad := 0.0
	for _, l := range loads {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	// R-MAT graphs are skewed; a naive |V|/p split gives the first chunk
	// several times the average load. The balanced chunking should stay
	// within 2x of the mean.
	if maxLoad > 2*total/p {
		t.Fatalf("imbalanced: max load %.0f vs mean %.0f (loads %v)", maxLoad, total/p, loads)
	}
}

func TestMorePartitionsThanVertices(t *testing.T) {
	g := graph.Ring(3)
	pt, err := NewChunked(g, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 8; i++ {
		total += pt.Size(i)
	}
	if total != 3 {
		t.Fatalf("covered %d vertices", total)
	}
}

func TestDegreeClassThreshold(t *testing.T) {
	g := graph.Star(100) // hub in-degree 99, spokes in-degree 1
	pt, err := NewChunked(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	dc := BuildDegreeClass(g, pt, 32)
	if !dc.Tracked(0) {
		t.Fatal("hub not tracked at threshold 32")
	}
	for v := 1; v < 100; v++ {
		if dc.Tracked(graph.VertexID(v)) {
			t.Fatalf("spoke %d tracked", v)
		}
	}
	nTracked := 0
	for _, highs := range dc.Highs {
		nTracked += len(highs)
	}
	if nTracked != 1 {
		t.Fatalf("%d tracked vertices, want 1", nTracked)
	}
}

func TestDegreeClassZeroThresholdTracksAll(t *testing.T) {
	g := graph.Ring(64)
	pt, _ := NewChunked(g, 2, 0)
	dc := BuildDegreeClass(g, pt, 0)
	for v := 0; v < 64; v++ {
		if !dc.Tracked(graph.VertexID(v)) {
			t.Fatalf("vertex %d untracked with threshold 0", v)
		}
	}
	// Dense indices are 0..size-1 per partition, ascending.
	for d := 0; d < pt.P; d++ {
		lo, hi := pt.Range(d)
		for v := lo; v < hi; v++ {
			if got := dc.TrackIndex[v]; got != int32(v-lo) {
				t.Fatalf("TrackIndex[%d] = %d, want %d", v, got, v-lo)
			}
		}
	}
}

func TestLayoutValidOnGenerators(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat": graph.RMAT(9, 8, graph.Graph500Params(), 5),
		"star": graph.Star(200),
		"grid": graph.Grid(10, 10),
		"ring": graph.Ring(128),
	}
	for name, g := range graphs {
		for _, p := range []int{1, 2, 4} {
			pt, err := NewChunked(g, p, 0)
			if err != nil {
				t.Fatal(err)
			}
			dc := BuildDegreeClass(g, pt, 32)
			for m := 0; m < p; m++ {
				lay := BuildLayout(g, pt, dc, m)
				if err := lay.Validate(g); err != nil {
					t.Fatalf("%s p=%d m=%d: %v", name, p, m, err)
				}
			}
		}
	}
}

// TestLayoutAttachBlocked checks the blocked-CSR attachment: the view
// covers exactly the machine's master range, validates against the flat
// CSR, and Layout.Validate exercises it once attached. A tiny block
// size forces multi-block machines.
func TestLayoutAttachBlocked(t *testing.T) {
	g := graph.RMAT(9, 8, graph.Graph500Params(), 5)
	for _, p := range []int{1, 2, 4} {
		pt, err := NewChunked(g, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		dc := BuildDegreeClass(g, pt, 32)
		for m := 0; m < p; m++ {
			lay := BuildLayout(g, pt, dc, m)
			for _, bv := range []int{0, 64} {
				if err := lay.AttachBlocked(g, bv); err != nil {
					t.Fatalf("p=%d m=%d bv=%d: %v", p, m, bv, err)
				}
				if err := lay.Validate(g); err != nil {
					t.Fatalf("p=%d m=%d bv=%d: %v", p, m, bv, err)
				}
				lo, hi := lay.Blocked.SrcRange()
				wlo, whi := pt.Range(m)
				if lo != wlo || hi != whi {
					t.Fatalf("p=%d m=%d: blocked range [%d,%d), want [%d,%d)", p, m, lo, hi, wlo, whi)
				}
			}
			if lay.Blocked.BlockVerts() != 64 {
				t.Fatalf("explicit block size not kept: %d", lay.Blocked.BlockVerts())
			}
		}
	}
}

func TestLayoutWeightsPreserved(t *testing.T) {
	g := graph.RandomWeights(graph.Grid(6, 6), 9)
	pt, _ := NewChunked(g, 3, 0)
	dc := BuildDegreeClass(g, pt, 0)
	for m := 0; m < 3; m++ {
		lay := BuildLayout(g, pt, dc, m)
		for d, b := range lay.Blocks {
			_ = d
			if b.NumEdges() > 0 && b.Weights == nil {
				t.Fatal("weighted graph produced unweighted block")
			}
			for i := range b.Dsts {
				srcs, ws := b.Sources(i), b.SourceWeights(i)
				for j, src := range srcs {
					// Find weight of (src, dst) in the graph.
					found := false
					gws := g.OutWeights(src)
					for k, nb := range g.OutNeighbors(src) {
						if nb == b.Dsts[i] && gws[k] == ws[j] {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("weight mismatch for edge (%d,%d)", src, b.Dsts[i])
					}
				}
			}
		}
	}
}

// Property: across all machines, blocks partition the edge set exactly —
// every edge appears in exactly one block of exactly one machine.
func TestQuickBlocksPartitionEdges(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := int(pRaw)%6 + 1
		g := graph.Uniform(256, 2048, seed)
		pt, err := NewChunked(g, p, 0)
		if err != nil {
			return false
		}
		dc := BuildDegreeClass(g, pt, 32)
		type edge struct{ s, d graph.VertexID }
		seen := map[edge]int{}
		for m := 0; m < p; m++ {
			lay := BuildLayout(g, pt, dc, m)
			if lay.Validate(g) != nil {
				return false
			}
			for _, b := range lay.Blocks {
				for i, dst := range b.Dsts {
					for _, src := range b.Sources(i) {
						seen[edge{src, dst}]++
					}
				}
			}
		}
		if int64(len(seen)) != g.NumEdges() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
