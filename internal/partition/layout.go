package partition

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Block holds the edges whose sources are one machine's masters and whose
// destinations are masters of one (possibly the same) partition — the
// subgraph "[i,j]" of the paper's Figure 7 — grouped by destination for
// pull-mode processing. Dsts is ascending; Srcs within a destination's
// segment are ascending too, so a dependency-respecting scan visits
// neighbors in a deterministic global order fixed by the circulant ring.
type Block struct {
	Dsts    []graph.VertexID // destinations with ≥1 edge in this block, ascending
	Offsets []int64          // len(Dsts)+1 prefix offsets into Srcs
	Srcs    []graph.VertexID // source masters (global IDs)
	Weights []float32        // parallel to Srcs; nil when unweighted

	// TrackedPos/LowPos split positions into Dsts by dependency class:
	// TrackedPos lists positions whose destination participates in
	// dependency propagation (ascending tracked index), LowPos the rest.
	TrackedPos []int32
	LowPos     []int32
}

// NumEdges returns the edge count of the block.
func (b *Block) NumEdges() int64 { return int64(len(b.Srcs)) }

// Sources returns the source list of the i-th destination in Dsts.
func (b *Block) Sources(i int) []graph.VertexID {
	return b.Srcs[b.Offsets[i]:b.Offsets[i+1]]
}

// SourceWeights returns the weights parallel to Sources(i), or nil.
func (b *Block) SourceWeights(i int) []float32 {
	if b.Weights == nil {
		return nil
	}
	return b.Weights[b.Offsets[i]:b.Offsets[i+1]]
}

// DegreeClass classifies vertices for differentiated dependency
// propagation (paper §5.2): vertices with in-degree ≥ Threshold are
// "tracked" (dependency bits circulate for them); the rest fall back to
// the plain schedule. Threshold ≤ 0 tracks every vertex, which disables
// the differentiation (but not dependency propagation itself).
//
// Tracked vertices of each partition get dense indices 0..len(Highs[d])-1
// in ascending vertex order; dependency frames cover exactly that index
// space, so their size is |tracked(d)| bits (plus any data lanes). The
// classification depends only on global in-degrees and the partition, so
// every machine computes identical tables.
type DegreeClass struct {
	Threshold int
	// TrackIndex maps a vertex to its dense index within its
	// partition's tracked set, or -1 if untracked.
	TrackIndex []int32
	// Highs lists each partition's tracked vertices in ascending order.
	Highs [][]graph.VertexID
}

// BuildDegreeClass computes the tracked-vertex tables for threshold.
func BuildDegreeClass(g *graph.Graph, pt *Partition, threshold int) *DegreeClass {
	dc := &DegreeClass{
		Threshold:  threshold,
		TrackIndex: make([]int32, g.NumVertices()),
		Highs:      make([][]graph.VertexID, pt.P),
	}
	for d := 0; d < pt.P; d++ {
		lo, hi := pt.Range(d)
		var highs []graph.VertexID
		for v := lo; v < hi; v++ {
			if threshold <= 0 || g.InDegree(graph.VertexID(v)) >= threshold {
				dc.TrackIndex[v] = int32(len(highs))
				highs = append(highs, graph.VertexID(v))
			} else {
				dc.TrackIndex[v] = -1
			}
		}
		dc.Highs[d] = highs
	}
	return dc
}

// Tracked reports whether v participates in dependency propagation.
func (dc *DegreeClass) Tracked(v graph.VertexID) bool { return dc.TrackIndex[v] >= 0 }

// Layout is machine `Machine`'s share of the graph: one Block per
// destination partition (covering all out-edges of its masters), plus the
// shared partition and degree-class tables. Pull mode reads Blocks; push
// mode reads the global CSR rows of the machine's own vertex range, which
// are exactly its out-edges under outgoing edge-cut.
type Layout struct {
	Machine int
	Part    *Partition
	Class   *DegreeClass
	Blocks  []*Block // indexed by destination partition

	// Blocked is the partition-blocked view of the machine's out-CSR
	// (push mode's source-blocked, destination-partitioned scan order).
	// Built on demand by AttachBlocked when the binned scan is enabled;
	// nil layouts fall back to the flat push scan. Pull mode needs no
	// analogue: Blocks already group edges by (machine block,
	// destination partition).
	Blocked *graph.BlockedCSR
}

// BuildLayout constructs machine m's layout.
func BuildLayout(g *graph.Graph, pt *Partition, dc *DegreeClass, m int) *Layout {
	lo, hi := pt.Range(m)
	type rec struct {
		src, dst graph.VertexID
		w        float32
	}
	perPart := make([][]rec, pt.P)
	for u := lo; u < hi; u++ {
		nbrs := g.OutNeighbors(graph.VertexID(u))
		ws := g.OutWeights(graph.VertexID(u))
		for i, v := range nbrs {
			d := pt.Owner(v)
			w := float32(1)
			if ws != nil {
				w = ws[i]
			}
			perPart[d] = append(perPart[d], rec{src: graph.VertexID(u), dst: v, w: w})
		}
	}
	lay := &Layout{Machine: m, Part: pt, Class: dc, Blocks: make([]*Block, pt.P)}
	for d := 0; d < pt.P; d++ {
		recs := perPart[d]
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].dst != recs[j].dst {
				return recs[i].dst < recs[j].dst
			}
			return recs[i].src < recs[j].src
		})
		b := &Block{}
		if g.Weighted() {
			b.Weights = make([]float32, 0, len(recs))
		}
		for _, r := range recs {
			if len(b.Dsts) == 0 || b.Dsts[len(b.Dsts)-1] != r.dst {
				b.Dsts = append(b.Dsts, r.dst)
				b.Offsets = append(b.Offsets, int64(len(b.Srcs)))
			}
			b.Srcs = append(b.Srcs, r.src)
			if b.Weights != nil {
				b.Weights = append(b.Weights, r.w)
			}
		}
		b.Offsets = append(b.Offsets, int64(len(b.Srcs)))
		for pos, dst := range b.Dsts {
			if dc.Tracked(dst) {
				b.TrackedPos = append(b.TrackedPos, int32(pos))
			} else {
				b.LowPos = append(b.LowPos, int32(pos))
			}
		}
		lay.Blocks[d] = b
	}
	return lay
}

// AttachBlocked builds the machine's partition-blocked CSR view over
// its master source range, with blockVerts source vertices per block
// (≤ 0 selects graph.DefaultBlockVerts). The derivation reads only the
// graph and the partition boundaries, so it is deterministic across
// machines and epochs: a rebuilt engine over the same snapshot always
// sees identical blocking, and fingerprints (computed over the graph)
// never observe it.
func (lay *Layout) AttachBlocked(g *graph.Graph, blockVerts int) error {
	if blockVerts <= 0 {
		blockVerts = graph.DefaultBlockVerts
	}
	lo, hi := lay.Part.Range(lay.Machine)
	bc, err := graph.BuildBlockedCSR(g, lo, hi, blockVerts, lay.Part.Starts)
	if err != nil {
		return fmt.Errorf("layout: machine %d blocked CSR: %w", lay.Machine, err)
	}
	lay.Blocked = bc
	return nil
}

// Validate checks layout invariants against the source graph, for tests:
// every out-edge of the machine's masters appears in exactly one block,
// destinations route to the right partition, and orderings hold.
func (lay *Layout) Validate(g *graph.Graph) error {
	lo, hi := lay.Part.Range(lay.Machine)
	var want int64
	for u := lo; u < hi; u++ {
		want += int64(g.OutDegree(graph.VertexID(u)))
	}
	var got int64
	for d, b := range lay.Blocks {
		got += b.NumEdges()
		if len(b.Offsets) != len(b.Dsts)+1 {
			return fmt.Errorf("layout: block %d has %d offsets for %d dsts", d, len(b.Offsets), len(b.Dsts))
		}
		if len(b.TrackedPos)+len(b.LowPos) != len(b.Dsts) {
			return fmt.Errorf("layout: block %d tracked+low != dsts", d)
		}
		plo, phi := lay.Part.Range(d)
		for i, dst := range b.Dsts {
			if int(dst) < plo || int(dst) >= phi {
				return fmt.Errorf("layout: block %d dst %d outside partition [%d,%d)", d, dst, plo, phi)
			}
			if i > 0 && b.Dsts[i-1] >= dst {
				return fmt.Errorf("layout: block %d dsts not strictly ascending", d)
			}
			srcs := b.Sources(i)
			if len(srcs) == 0 {
				return fmt.Errorf("layout: block %d dst %d has no sources", d, dst)
			}
			for j, src := range srcs {
				if int(src) < lo || int(src) >= hi {
					return fmt.Errorf("layout: block %d src %d not a local master", d, src)
				}
				if !g.HasEdge(src, dst) {
					return fmt.Errorf("layout: phantom edge (%d,%d)", src, dst)
				}
				if j > 0 && srcs[j-1] >= src {
					return fmt.Errorf("layout: block %d dst %d sources not ascending", d, dst)
				}
			}
		}
		last := int32(-1)
		for _, pos := range b.TrackedPos {
			idx := lay.Class.TrackIndex[b.Dsts[pos]]
			if idx < 0 {
				return fmt.Errorf("layout: low vertex in TrackedPos")
			}
			if idx <= last {
				return fmt.Errorf("layout: TrackedPos not ascending by tracked index")
			}
			last = idx
		}
	}
	if got != want {
		return fmt.Errorf("layout: machine %d has %d edges across blocks, owns %d", lay.Machine, got, want)
	}
	if lay.Blocked != nil {
		blo, bhi := lay.Blocked.SrcRange()
		if blo != lo || bhi != hi {
			return fmt.Errorf("layout: blocked CSR covers [%d,%d), machine owns [%d,%d)", blo, bhi, lo, hi)
		}
		if lay.Blocked.NumParts() != lay.Part.P {
			return fmt.Errorf("layout: blocked CSR has %d partitions, partition has %d", lay.Blocked.NumParts(), lay.Part.P)
		}
		if err := lay.Blocked.Validate(); err != nil {
			return fmt.Errorf("layout: machine %d: %w", lay.Machine, err)
		}
	}
	return nil
}
