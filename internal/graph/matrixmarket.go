package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a Matrix Market coordinate file — the
// interchange format of SuiteSparse and many graph repositories — into a
// Graph. Supported headers are
//
//	%%MatrixMarket matrix coordinate (pattern|real|integer) (general|symmetric)
//
// Symmetric matrices produce both edge directions. Entries are 1-indexed
// per the format; self-loops are preserved unless opts says otherwise.
// Real/integer values become edge weights when opts.Weighted is set.
func ReadMatrixMarket(r io.Reader, opts BuildOptions) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("graph: unsupported MatrixMarket header %q", sc.Text())
	}
	valueType := header[3]
	switch valueType {
	case "pattern", "real", "integer":
	default:
		return nil, fmt.Errorf("graph: unsupported MatrixMarket value type %q", valueType)
	}
	symmetric := false
	switch header[4] {
	case "general":
	case "symmetric":
		symmetric = true
	default:
		return nil, fmt.Errorf("graph: unsupported MatrixMarket symmetry %q", header[4])
	}

	// Skip comments; read the size line.
	var rows, cols int
	var declared int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: bad MatrixMarket size line %q", line)
		}
		var err error
		if rows, err = strconv.Atoi(fields[0]); err != nil {
			return nil, fmt.Errorf("graph: bad row count: %v", err)
		}
		if cols, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("graph: bad column count: %v", err)
		}
		if declared, err = strconv.ParseInt(fields[2], 10, 64); err != nil {
			return nil, fmt.Errorf("graph: bad entry count: %v", err)
		}
		break
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("graph: MatrixMarket size %dx%d", rows, cols)
	}
	n := rows
	if cols > n {
		n = cols
	}

	capHint := declared
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	edges := make([]Edge, 0, capHint)
	var read int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		wantFields := 3
		if valueType == "pattern" {
			wantFields = 2
		}
		if len(fields) < wantFields {
			return nil, fmt.Errorf("graph: bad MatrixMarket entry %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: bad row index: %v", err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad column index: %v", err)
		}
		if i < 1 || i > n || j < 1 || j > n {
			return nil, fmt.Errorf("graph: entry (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		w := float32(1)
		if valueType != "pattern" {
			f, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: bad value: %v", err)
			}
			w = float32(f)
			opts.Weighted = true
		}
		src, dst := VertexID(i-1), VertexID(j-1)
		edges = append(edges, Edge{Src: src, Dst: dst, Weight: w})
		if symmetric && src != dst {
			edges = append(edges, Edge{Src: dst, Dst: src, Weight: w})
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read != declared {
		return nil, fmt.Errorf("graph: MatrixMarket declares %d entries, found %d", declared, read)
	}
	return FromEdges(n, edges, opts)
}
