package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeListText checks the text parser never panics and that
// anything it accepts builds a valid graph. Seeds run as regular tests;
// `go test -fuzz=FuzzReadEdgeListText ./internal/graph` explores further.
func FuzzReadEdgeListText(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# vertices 5 edges 1\n0 4\n")
	f.Add("% comment\n\n3 3 0.5\n")
	f.Add("x y\n")
	f.Add("0 1 2 3\n")
	f.Add("4294967295 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeListText(strings.NewReader(input), BuildOptions{Dedupe: true})
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid graph: %v\ninput: %q", err, input)
		}
	})
}

// FuzzReadBinary checks the binary loader rejects corruption without
// panicking, and accepts what WriteBinary produces.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Ring(8)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("SGG1"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), buf.Bytes()...)
	if len(corrupt) > 10 {
		corrupt[9] = 0xff
	}
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, input []byte) {
		g, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid graph: %v", err)
		}
	})
}

// FuzzReadMatrixMarket checks the Matrix Market parser likewise.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 0.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadMatrixMarket(strings.NewReader(input), BuildOptions{})
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid graph: %v\ninput: %q", err, input)
		}
	})
}
