package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func triangle(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(3, []Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 0, Weight: 1},
	}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := triangle(t)
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := g.OutDegree(0); d != 1 {
		t.Fatalf("OutDegree(0) = %d", d)
	}
	if d := g.InDegree(0); d != 1 {
		t.Fatalf("InDegree(0) = %d", d)
	}
	if nbrs := g.OutNeighbors(0); len(nbrs) != 1 || nbrs[0] != 1 {
		t.Fatalf("OutNeighbors(0) = %v", nbrs)
	}
	if nbrs := g.InNeighbors(0); len(nbrs) != 1 || nbrs[0] != 2 {
		t.Fatalf("InNeighbors(0) = %v", nbrs)
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{Src: 0, Dst: 2}}, BuildOptions{}); err == nil {
		t.Fatal("accepted out-of-range target")
	}
	if _, err := FromEdges(-1, nil, BuildOptions{}); err == nil {
		t.Fatal("accepted negative n")
	}
}

func TestDedupeAndSelfLoops(t *testing.T) {
	edges := []Edge{
		{Src: 0, Dst: 1, Weight: 5},
		{Src: 0, Dst: 1, Weight: 7},
		{Src: 1, Dst: 1, Weight: 1},
		{Src: 1, Dst: 0, Weight: 2},
	}
	g := MustFromEdges(2, edges, BuildOptions{Dedupe: true, DropSelfLoops: true, Weighted: true})
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if w := g.OutWeights(0)[0]; w != 5 {
		t.Fatalf("dedupe kept weight %g, want first occurrence 5", w)
	}
}

func TestNeighborsSorted(t *testing.T) {
	edges := []Edge{{Src: 0, Dst: 3}, {Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 2, Dst: 0}, {Src: 1, Dst: 0}}
	g := MustFromEdges(4, edges, BuildOptions{})
	nbrs := g.OutNeighbors(0)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] > nbrs[i] {
			t.Fatalf("out neighbors not sorted: %v", nbrs)
		}
	}
	in := g.InNeighbors(0)
	if len(in) != 2 || in[0] != 1 || in[1] != 2 {
		t.Fatalf("in neighbors = %v, want [1 2]", in)
	}
}

func TestHasEdge(t *testing.T) {
	g := triangle(t)
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	orig := []Edge{{Src: 0, Dst: 2, Weight: 0.5}, {Src: 1, Dst: 0, Weight: 1.5}}
	g := MustFromEdges(3, orig, BuildOptions{Weighted: true})
	back := g.Edges()
	if len(back) != 2 {
		t.Fatalf("Edges() = %v", back)
	}
	g2 := MustFromEdges(3, back, BuildOptions{Weighted: true})
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed edge count")
	}
	for v := VertexID(0); v < 3; v++ {
		a, b := g.OutWeights(v), g2.OutWeights(v)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("weights differ at %d", v)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := MustFromEdges(0, nil, BuildOptions{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() != 0 || g.HighDegreeFraction(1) != 0 {
		t.Fatal("empty graph stats nonzero")
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := MustFromEdges(5, []Edge{{Src: 1, Dst: 3}}, BuildOptions{})
	if g.OutDegree(0) != 0 || g.InDegree(4) != 0 {
		t.Fatal("isolated vertex has edges")
	}
	vs := NonIsolatedVertices(g)
	if len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("NonIsolatedVertices = %v", vs)
	}
}

func TestRMATDeterministicAndValid(t *testing.T) {
	g1 := RMAT(10, 8, Graph500Params(), 42)
	g2 := RMAT(10, 8, Graph500Params(), 42)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("RMAT not deterministic")
	}
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != 1024 {
		t.Fatalf("|V| = %d", g1.NumVertices())
	}
	if g1.NumEdges() == 0 || g1.NumEdges() > 8*1024 {
		t.Fatalf("|E| = %d out of expected range", g1.NumEdges())
	}
	g3 := RMAT(10, 8, Graph500Params(), 43)
	if g1.NumEdges() == g3.NumEdges() && equalEdges(g1, g3) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func equalEdges(a, b *Graph) bool {
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func TestRMATIsSkewed(t *testing.T) {
	g := RMAT(12, 16, Graph500Params(), 7)
	// Scale-free: max degree far above average.
	avg := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 8*avg {
		t.Fatalf("R-MAT max degree %d not skewed vs avg %.1f", g.MaxDegree(), avg)
	}
	if f := g.HighDegreeFraction(32); f <= 0 || f >= 1 {
		t.Fatalf("HighDegreeFraction = %g", f)
	}
}

func TestUniformIsNotSkewed(t *testing.T) {
	n := 1 << 12
	g := Uniform(n, int64(16*n), 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) > 8*avg {
		t.Fatalf("uniform graph unexpectedly skewed: max %d avg %.1f", g.MaxDegree(), avg)
	}
}

func TestStructuredGenerators(t *testing.T) {
	ring := Ring(10)
	if ring.NumEdges() != 10 {
		t.Fatalf("ring edges = %d", ring.NumEdges())
	}
	for v := 0; v < 10; v++ {
		if ring.OutDegree(VertexID(v)) != 1 || ring.InDegree(VertexID(v)) != 1 {
			t.Fatal("ring degree wrong")
		}
	}

	path := Path(5)
	if path.NumEdges() != 4 || path.OutDegree(4) != 0 {
		t.Fatal("path wrong")
	}

	star := Star(6)
	if star.OutDegree(0) != 5 || star.InDegree(0) != 5 {
		t.Fatal("star hub degree wrong")
	}
	if !IsSymmetric(star) {
		t.Fatal("star not symmetric")
	}

	k := Complete(5)
	if k.NumEdges() != 20 {
		t.Fatalf("complete edges = %d", k.NumEdges())
	}

	grid := Grid(3, 4)
	if grid.NumVertices() != 12 || !IsSymmetric(grid) {
		t.Fatal("grid wrong")
	}
	// Corner has degree 2, interior degree <= 4.
	if grid.OutDegree(0) != 2 {
		t.Fatalf("grid corner degree = %d", grid.OutDegree(0))
	}
	for _, g := range []*Graph{ring, path, star, k, grid} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSymmetrizeAndReverse(t *testing.T) {
	g := triangle(t)
	s := Symmetrize(g)
	if !IsSymmetric(s) {
		t.Fatal("Symmetrize output not symmetric")
	}
	if s.NumEdges() != 6 {
		t.Fatalf("symmetrized triangle has %d edges", s.NumEdges())
	}
	r := Reverse(g)
	if !r.HasEdge(1, 0) || r.HasEdge(0, 1) {
		t.Fatal("Reverse wrong")
	}
	if rr := Reverse(r); !equalEdges(g, rr) {
		t.Fatal("double reverse is not identity")
	}
}

func TestRandomWeights(t *testing.T) {
	g := RandomWeights(Ring(16), 3)
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
	for v := 0; v < 16; v++ {
		for _, w := range g.OutWeights(VertexID(v)) {
			if w <= 0 || w > 1 {
				t.Fatalf("weight %g out of (0,1]", w)
			}
		}
	}
	g2 := RandomWeights(Ring(16), 3)
	for v := VertexID(0); v < 16; v++ {
		if g.OutWeights(v)[0] != g2.OutWeights(v)[0] {
			t.Fatal("RandomWeights not deterministic")
		}
	}
}

func TestLargestOutDegreeVertex(t *testing.T) {
	v, d := LargestOutDegreeVertex(Star(8))
	if v != 0 || d != 7 {
		t.Fatalf("got (%d,%d), want (0,7)", v, d)
	}
	if v, d := LargestOutDegreeVertex(MustFromEdges(0, nil, BuildOptions{})); v != 0 || d != 0 {
		t.Fatal("empty graph case wrong")
	}
}

// Property: for arbitrary edge lists, in-edge view and out-edge view
// describe the same edge multiset, and Validate passes.
func TestQuickDualViewConsistency(t *testing.T) {
	f := func(raw []uint32, seed int64) bool {
		const n = 64
		rng := rand.New(rand.NewSource(seed))
		edges := make([]Edge, 0, len(raw))
		for _, r := range raw {
			edges = append(edges, Edge{
				Src:    VertexID(r % n),
				Dst:    VertexID(uint32(rng.Intn(n))),
				Weight: 1,
			})
		}
		g, err := FromEdges(n, edges, BuildOptions{Dedupe: true})
		if err != nil || g.Validate() != nil {
			return false
		}
		// Every out edge appears as an in edge and vice versa.
		type pair struct{ s, d VertexID }
		outSet := map[pair]int{}
		for v := 0; v < n; v++ {
			for _, u := range g.OutNeighbors(VertexID(v)) {
				outSet[pair{VertexID(v), u}]++
			}
		}
		inCount := 0
		for v := 0; v < n; v++ {
			for _, u := range g.InNeighbors(VertexID(v)) {
				if outSet[pair{u, VertexID(v)}] == 0 {
					return false
				}
				inCount++
			}
		}
		return inCount == len(outSet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
