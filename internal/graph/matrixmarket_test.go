package graph

import (
	"strings"
	"testing"
)

func TestReadMatrixMarketGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
% a comment
3 3 3
1 2
2 3
3 1
`
	g, err := ReadMatrixMarket(strings.NewReader(in), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(2, 0) {
		t.Fatal("edges wrong")
	}
	if g.Weighted() {
		t.Fatal("pattern matrix weighted")
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
2 2 1
2 1 0.5
`
	g, err := ReadMatrixMarket(strings.NewReader(in), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatalf("symmetric expansion wrong: %v", g)
	}
	if !g.Weighted() || g.OutWeights(1)[0] != 0.5 {
		t.Fatal("weight lost")
	}
	if !IsSymmetric(g) {
		t.Fatal("not symmetric")
	}
}

func TestReadMatrixMarketRectangular(t *testing.T) {
	// Rectangular matrices map to max(rows, cols) vertices.
	in := `%%MatrixMarket matrix coordinate pattern general
2 5 1
1 5
`
	g, err := ReadMatrixMarket(strings.NewReader(in), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || !g.HasEdge(0, 4) {
		t.Fatalf("got %v", g)
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2 4\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"%%MatrixMarket matrix coordinate pattern skew-symmetric\n1 1 0\n",
		"%%MatrixMarket matrix coordinate pattern general\n0 0 0\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n", // out of range
		"%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n", // count mismatch
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",    // missing value
		"%%MatrixMarket matrix coordinate pattern general\nx y z\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in), BuildOptions{}); err == nil {
			t.Fatalf("case %d accepted:\n%s", i, in)
		}
	}
}

func TestMatrixMarketSelfLoopAndDedupe(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
2 2 2
1 1
2 1
`
	g, err := ReadMatrixMarket(strings.NewReader(in), BuildOptions{DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.HasEdge(0, 0) {
		t.Fatalf("self loop handling wrong: %v", g)
	}
}
