package graph

import (
	"math/rand"
)

// RMATParams are the recursive-matrix quadrant probabilities. The zero
// value is not useful; use Graph500Params for the paper's configuration.
type RMATParams struct {
	A, B, C float64 // D is the remainder 1-A-B-C
}

// Graph500Params returns the R-MAT parameters used by the Graph500
// benchmark and by the paper's s27/s28/s29 datasets ("We use the same
// generator parameters as in Graph500"): a=0.57, b=0.19, c=0.19, d=0.05.
func Graph500Params() RMATParams { return RMATParams{A: 0.57, B: 0.19, C: 0.19} }

// RMAT generates a scale-free directed graph with 2^scale vertices and
// edgeFactor*2^scale edges using the recursive matrix method of
// Chakrabarti, Zhan and Faloutsos (the paper's synthesized datasets, §7.1).
// Duplicate edges and self loops are removed, so the final edge count is
// slightly below the nominal one, as in Graph500. Generation is
// deterministic for a given seed.
func RMAT(scale int, edgeFactor int, params RMATParams, seed int64) *Graph {
	n := 1 << uint(scale)
	m := int64(edgeFactor) * int64(n)
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := int64(0); i < m; i++ {
		src, dst := rmatEdge(scale, params, rng)
		edges = append(edges, Edge{Src: src, Dst: dst, Weight: 1})
	}
	return MustFromEdges(n, edges, BuildOptions{Dedupe: true, DropSelfLoops: true})
}

func rmatEdge(scale int, p RMATParams, rng *rand.Rand) (VertexID, VertexID) {
	var src, dst uint32
	for level := 0; level < scale; level++ {
		r := rng.Float64()
		switch {
		case r < p.A:
			// top-left: both bits 0
		case r < p.A+p.B:
			dst |= 1 << uint(level)
		case r < p.A+p.B+p.C:
			src |= 1 << uint(level)
		default:
			src |= 1 << uint(level)
			dst |= 1 << uint(level)
		}
	}
	return VertexID(src), VertexID(dst)
}

// Uniform generates an Erdős–Rényi-style directed graph with n vertices
// and approximately m edges drawn uniformly at random (duplicates and self
// loops removed). Low-skew graphs like this reproduce the paper's
// Clueweb-12 BFS case where bottom-up traversal is rarely profitable.
func Uniform(n int, m int64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := int64(0); i < m; i++ {
		edges = append(edges, Edge{
			Src:    VertexID(rng.Intn(n)),
			Dst:    VertexID(rng.Intn(n)),
			Weight: 1,
		})
	}
	return MustFromEdges(n, edges, BuildOptions{Dedupe: true, DropSelfLoops: true})
}

// Ring generates a directed cycle 0→1→…→n-1→0.
func Ring(n int) *Graph {
	edges := make([]Edge, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, Edge{Src: VertexID(v), Dst: VertexID((v + 1) % n), Weight: 1})
	}
	return MustFromEdges(n, edges, BuildOptions{Dedupe: true, DropSelfLoops: true})
}

// Path generates a directed path 0→1→…→n-1.
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, Edge{Src: VertexID(v), Dst: VertexID(v + 1), Weight: 1})
	}
	return MustFromEdges(n, edges, BuildOptions{})
}

// Star generates a hub-and-spoke graph: edges hub→i and i→hub for every
// other vertex i. Vertex 0 is the hub. Stars stress the high-degree path
// of differentiated dependency propagation.
func Star(n int) *Graph {
	edges := make([]Edge, 0, 2*(n-1))
	for v := 1; v < n; v++ {
		edges = append(edges,
			Edge{Src: 0, Dst: VertexID(v), Weight: 1},
			Edge{Src: VertexID(v), Dst: 0, Weight: 1})
	}
	return MustFromEdges(n, edges, BuildOptions{})
}

// Complete generates the complete directed graph on n vertices (no self
// loops). Quadratic; for small test graphs only.
func Complete(n int) *Graph {
	edges := make([]Edge, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				edges = append(edges, Edge{Src: VertexID(s), Dst: VertexID(d), Weight: 1})
			}
		}
	}
	return MustFromEdges(n, edges, BuildOptions{})
}

// Grid generates a rows×cols 4-neighbor mesh with edges in both
// directions. Grids have uniform low degree and large diameter — the graph
// class where the paper's linear-time Matula–Beck K-core baseline wins.
func Grid(rows, cols int) *Graph {
	n := rows * cols
	id := func(r, c int) VertexID { return VertexID(r*cols + c) }
	var edges []Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges,
					Edge{Src: id(r, c), Dst: id(r, c+1), Weight: 1},
					Edge{Src: id(r, c+1), Dst: id(r, c), Weight: 1})
			}
			if r+1 < rows {
				edges = append(edges,
					Edge{Src: id(r, c), Dst: id(r+1, c), Weight: 1},
					Edge{Src: id(r+1, c), Dst: id(r, c), Weight: 1})
			}
		}
	}
	return MustFromEdges(n, edges, BuildOptions{})
}

// RandomWeights returns a copy of g with edge weights drawn uniformly from
// (0, 1], deterministic for a given seed. Weighted graphs drive SSSP and
// weighted neighbor sampling.
func RandomWeights(g *Graph, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := g.Edges()
	for i := range edges {
		edges[i].Weight = float32(1 - rng.Float64()) // in (0, 1]
	}
	return MustFromEdges(g.NumVertices(), edges, BuildOptions{Weighted: true})
}
