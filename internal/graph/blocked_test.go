package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// evenStarts splits [0, n] into p roughly equal ascending boundaries.
func evenStarts(n, p int) []int {
	starts := make([]int, p+1)
	for q := 0; q <= p; q++ {
		starts[q] = q * n / p
	}
	return starts
}

// TestBlockedCSRAgreesWithFlat builds blocked views over generated
// graphs at several block sizes and partition counts and checks full
// agreement with the flat CSR via Validate, plus spot-checks the
// per-range aggregates.
func TestBlockedCSRAgreesWithFlat(t *testing.T) {
	graphs := map[string]*Graph{
		"rmat":     RMAT(9, 8, Graph500Params(), 7),
		"weighted": RandomWeights(RMAT(8, 8, Graph500Params(), 11), 3),
		"ring":     Ring(257),
		"star":     Star(100),
		"empty":    MustFromEdges(64, nil, BuildOptions{}),
	}
	for name, g := range graphs {
		for _, p := range []int{1, 2, 3, 5} {
			for _, bv := range []int{1, 7, 64, 4096} {
				starts := evenStarts(g.NumVertices(), p)
				bc, err := BuildBlockedCSR(g, 0, g.NumVertices(), bv, starts)
				if err != nil {
					t.Fatalf("%s p=%d bv=%d: %v", name, p, bv, err)
				}
				if err := bc.Validate(); err != nil {
					t.Fatalf("%s p=%d bv=%d: %v", name, p, bv, err)
				}
				var total int64
				for b := 0; b < bc.NumBlocks(); b++ {
					for q := 0; q < p; q++ {
						total += bc.RangeEdges(b, q)
					}
				}
				if total != g.NumEdges() {
					t.Fatalf("%s p=%d bv=%d: ranges cover %d edges, graph has %d", name, p, bv, total, g.NumEdges())
				}
			}
		}
	}
}

// TestBlockedCSRSubrange checks a view restricted to a machine's source
// range (the form the engine builds per node).
func TestBlockedCSRSubrange(t *testing.T) {
	g := RMAT(9, 8, Graph500Params(), 5)
	n := g.NumVertices()
	starts := evenStarts(n, 4)
	for q := 0; q < 4; q++ {
		bc, err := BuildBlockedCSR(g, starts[q], starts[q+1], 64, starts)
		if err != nil {
			t.Fatal(err)
		}
		if err := bc.Validate(); err != nil {
			t.Fatalf("machine %d: %v", q, err)
		}
		lo, hi := bc.SrcRange()
		if lo != starts[q] || hi != starts[q+1] {
			t.Fatalf("machine %d: source range [%d,%d)", q, lo, hi)
		}
		for v := lo; v < hi; v++ {
			deg := 0
			for qq := 0; qq < 4; qq++ {
				dsts, _ := bc.Row(VertexID(v), qq)
				deg += len(dsts)
			}
			if deg != g.OutDegree(VertexID(v)) {
				t.Fatalf("vertex %d: rows cover %d of %d edges", v, deg, g.OutDegree(VertexID(v)))
			}
		}
	}
}

// TestBlockedCSRDeterministic checks two builds over the same inputs
// produce identical offset arrays — the property that keeps graph
// fingerprints and mutation deltas independent of when blocking runs.
func TestBlockedCSRDeterministic(t *testing.T) {
	g := RMAT(8, 8, Graph500Params(), 9)
	starts := evenStarts(g.NumVertices(), 3)
	a, err := BuildBlockedCSR(g, 0, g.NumVertices(), 128, starts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildBlockedCSR(g, 0, g.NumVertices(), 128, starts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.rowOff) != len(b.rowOff) || len(a.blockOff) != len(b.blockOff) {
		t.Fatal("offset arrays differ in size across builds")
	}
	for i := range a.rowOff {
		if a.rowOff[i] != b.rowOff[i] {
			t.Fatalf("rowOff[%d] differs across builds", i)
		}
	}
	for i := range a.blockOff {
		if a.blockOff[i] != b.blockOff[i] {
			t.Fatalf("blockOff[%d] differs across builds", i)
		}
	}
}

// TestBlockedCSRRejectsBadInputs covers the builder's error paths.
func TestBlockedCSRRejectsBadInputs(t *testing.T) {
	g := Ring(16)
	cases := []struct {
		name       string
		lo, hi, bv int
		starts     []int
	}{
		{"negative lo", -1, 16, 4, []int{0, 16}},
		{"hi past n", 0, 17, 4, []int{0, 16}},
		{"inverted range", 8, 4, 4, []int{0, 16}},
		{"zero block", 0, 16, 0, []int{0, 16}},
		{"no partitions", 0, 16, 4, []int{0}},
		{"starts not from zero", 0, 16, 4, []int{1, 16}},
		{"starts short of n", 0, 16, 4, []int{0, 15}},
		{"starts not monotone", 0, 16, 4, []int{0, 9, 5, 16}},
	}
	for _, tc := range cases {
		if _, err := BuildBlockedCSR(g, tc.lo, tc.hi, tc.bv, tc.starts); err == nil {
			t.Fatalf("%s: build accepted", tc.name)
		}
	}
}

// FuzzBlockedCSR drives the builder with random graphs, partition
// boundaries and block sizes: whatever it accepts must cover every edge
// exactly once and agree with the flat CSR (Validate checks both, plus
// order preservation). Seeds run as regular tests;
// `go test -fuzz=FuzzBlockedCSR ./internal/graph` explores further.
func FuzzBlockedCSR(f *testing.F) {
	f.Add(int64(1), uint16(32), uint16(40), uint8(2), uint8(4), false)
	f.Add(int64(2), uint16(1), uint16(0), uint8(1), uint8(1), true)
	f.Add(int64(3), uint16(100), uint16(900), uint8(7), uint8(3), false)
	f.Add(int64(4), uint16(257), uint16(50), uint8(3), uint8(200), true)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw uint16, pRaw, bvRaw uint8, weighted bool) {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%1024 + 1
		m := int(mRaw)
		p := int(pRaw)%8 + 1
		bv := int(bvRaw)%300 + 1

		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{
				Src:    VertexID(rng.Intn(n)),
				Dst:    VertexID(rng.Intn(n)),
				Weight: rng.Float32(),
			}
		}
		g, err := FromEdges(n, edges, BuildOptions{Weighted: weighted})
		if err != nil {
			t.Fatal(err)
		}

		// Random ascending partition boundaries over [0, n].
		starts := make([]int, p+1)
		for q := 1; q < p; q++ {
			starts[q] = rng.Intn(n + 1)
		}
		starts[p] = n
		sort.Ints(starts)

		// Random source subrange, biased toward full coverage.
		lo, hi := 0, n
		if rng.Intn(3) == 0 {
			lo = rng.Intn(n + 1)
			hi = lo + rng.Intn(n+1-lo)
		}

		bc, err := BuildBlockedCSR(g, lo, hi, bv, starts)
		if err != nil {
			t.Fatalf("build rejected valid inputs: %v", err)
		}
		if err := bc.Validate(); err != nil {
			t.Fatalf("n=%d m=%d p=%d bv=%d [%d,%d): %v", n, m, p, bv, lo, hi, err)
		}
		var total int64
		for b := 0; b < bc.NumBlocks(); b++ {
			for q := 0; q < p; q++ {
				total += bc.RangeEdges(b, q)
			}
		}
		var want int64
		for v := lo; v < hi; v++ {
			want += int64(g.OutDegree(VertexID(v)))
		}
		if total != want {
			t.Fatalf("ranges cover %d edges, subrange has %d", total, want)
		}
	})
}
