package graph

// Symmetrize returns a graph with every edge of g present in both
// directions (deduplicated, self loops dropped). This is how the paper
// runs undirected algorithms — MIS, K-core, K-means — on directed
// datasets.
func Symmetrize(g *Graph) *Graph {
	edges := g.Edges()
	both := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		both = append(both, e, Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	return MustFromEdges(g.NumVertices(), both, BuildOptions{
		Dedupe:        true,
		DropSelfLoops: true,
		Weighted:      g.Weighted(),
	})
}

// Reverse returns the transpose of g: edge (u,v) becomes (v,u).
func Reverse(g *Graph) *Graph {
	edges := g.Edges()
	for i := range edges {
		edges[i].Src, edges[i].Dst = edges[i].Dst, edges[i].Src
	}
	return MustFromEdges(g.NumVertices(), edges, BuildOptions{Weighted: g.Weighted()})
}

// IsSymmetric reports whether every edge has its reverse edge.
func IsSymmetric(g *Graph) bool {
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.OutNeighbors(VertexID(v)) {
			if !g.HasEdge(u, VertexID(v)) {
				return false
			}
		}
	}
	return true
}

// LargestOutDegreeVertex returns the vertex with the highest out-degree,
// a convenient deterministic BFS root for skewed graphs, and its degree.
// Returns (0, 0) for an empty graph.
func LargestOutDegreeVertex(g *Graph) (VertexID, int) {
	var best VertexID
	bestDeg := -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(VertexID(v)); d > bestDeg {
			best, bestDeg = VertexID(v), d
		}
	}
	if bestDeg < 0 {
		return 0, 0
	}
	return best, bestDeg
}

// NonIsolatedVertices returns all vertices with at least one outgoing
// edge, used to draw valid BFS roots the way the paper samples "64
// randomly generated non-isolated roots".
func NonIsolatedVertices(g *Graph) []VertexID {
	var vs []VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(VertexID(v)) > 0 {
			vs = append(vs, VertexID(v))
		}
	}
	return vs
}
