package graph

import "fmt"

// BlockedCSR is the partition-blocked view of a source range of the
// out-CSR, the representation behind the binned edge scan (GPOP's
// partition-centric processing mapped onto SympleGraph's layout).
//
// Sources in [SrcLo, SrcHi) are grouped into blocks of BlockVerts
// consecutive vertices, and each source's adjacency is split by the
// destination partition it lands in. Because a vertex's out-neighbors
// are sorted by ID and partitions are contiguous ascending vertex
// ranges, every (source, partition) range is a contiguous subrange of
// the flat adjacency — so the blocked CSR stores offsets into the
// graph's own edge arrays and never copies an edge. That makes the
// derivation trivially deterministic: two builds over the same graph
// and partition boundaries produce identical offsets, so content
// fingerprints and mutation deltas (computed over the graph itself)
// are untouched by blocking.
//
// Iterating a fixed (block, partition) pair visits sources in
// ascending ID order and, within a source, edges in adjacency order —
// exactly the flat scan's order restricted to that partition. The
// binned scans rely on this to reproduce the legacy scan's per-peer
// byte streams bit-identically.
type BlockedCSR struct {
	g *Graph

	srcLo, srcHi int
	blockVerts   int
	partStarts   []int // len p+1, ascending, partStarts[p] == |V|

	// rowOff has one entry per (source, partition) pair plus a final
	// sentinel: rowOff[(v-srcLo)*p+q] is the absolute offset into the
	// graph's out-edge array where v's edges destined to partition q
	// begin. The entry after a source's last partition is the next
	// source's first, so every range is rowOff[i] : rowOff[i+1].
	rowOff []int64

	// blockOff are prefix sums of edge counts per (block, partition):
	// blockOff[b*p+q+1]-blockOff[b*p+q] edges go from block b to
	// partition q. Used for bin sizing and coverage checks.
	blockOff []int64
}

// DefaultBlockVerts is the source-block granularity used by the binned
// scans: 4096 sources keep a block's vertex state (a few bytes per
// source) and one destination bin resident in L2 together.
const DefaultBlockVerts = 4096

// BuildBlockedCSR derives the blocked view of g's out-edges for sources
// in [srcLo, srcHi), with destination partitions given by partStarts
// (len p+1, ascending, partStarts[0]==0, partStarts[p]==|V|).
// blockVerts is the source-block granularity; the final block may be
// short.
func BuildBlockedCSR(g *Graph, srcLo, srcHi, blockVerts int, partStarts []int) (*BlockedCSR, error) {
	if srcLo < 0 || srcHi > g.n || srcLo > srcHi {
		return nil, fmt.Errorf("graph: blocked CSR source range [%d,%d) outside [0,%d)", srcLo, srcHi, g.n)
	}
	if blockVerts <= 0 {
		return nil, fmt.Errorf("graph: blocked CSR block size %d, want > 0", blockVerts)
	}
	p := len(partStarts) - 1
	if p < 1 {
		return nil, fmt.Errorf("graph: blocked CSR needs at least one partition")
	}
	if partStarts[0] != 0 || partStarts[p] != g.n {
		return nil, fmt.Errorf("graph: partition starts span [%d,%d], want [0,%d]", partStarts[0], partStarts[p], g.n)
	}
	for q := 0; q < p; q++ {
		if partStarts[q] > partStarts[q+1] {
			return nil, fmt.Errorf("graph: partition starts not monotone at %d", q)
		}
	}

	bc := &BlockedCSR{
		g:          g,
		srcLo:      srcLo,
		srcHi:      srcHi,
		blockVerts: blockVerts,
		partStarts: partStarts,
	}
	n := srcHi - srcLo
	bc.rowOff = make([]int64, n*p+1)
	bc.blockOff = make([]int64, bc.NumBlocks()*p+1)

	for v := srcLo; v < srcHi; v++ {
		nbrs := g.outTargets[g.outOffsets[v]:g.outOffsets[v+1]]
		base := g.outOffsets[v]
		b := (v - srcLo) / blockVerts
		i := 0 // adjacency cursor: nbrs[:i] assigned to partitions < q
		for q := 0; q < p; q++ {
			bc.rowOff[(v-srcLo)*p+q] = base + int64(i)
			bound := VertexID(partStarts[q+1])
			start := i
			for i < len(nbrs) && nbrs[i] < bound {
				i++
			}
			bc.blockOff[b*p+q+1] += int64(i - start)
		}
		if i != len(nbrs) {
			// Unreachable on a validated graph (targets < |V| ==
			// partStarts[p]); defend against corrupt inputs anyway.
			return nil, fmt.Errorf("graph: vertex %d has %d edges beyond the last partition", v, len(nbrs)-i)
		}
	}
	bc.rowOff[n*p] = g.outOffsets[srcHi]
	for i := 1; i < len(bc.blockOff); i++ {
		bc.blockOff[i] += bc.blockOff[i-1]
	}
	return bc, nil
}

// SrcRange returns the source vertex range [lo, hi) the view covers.
func (bc *BlockedCSR) SrcRange() (lo, hi int) { return bc.srcLo, bc.srcHi }

// NumParts returns the number of destination partitions.
func (bc *BlockedCSR) NumParts() int { return len(bc.partStarts) - 1 }

// BlockVerts returns the source-block granularity.
func (bc *BlockedCSR) BlockVerts() int { return bc.blockVerts }

// NumBlocks returns the number of source blocks (the last may be short).
func (bc *BlockedCSR) NumBlocks() int {
	n := bc.srcHi - bc.srcLo
	return (n + bc.blockVerts - 1) / bc.blockVerts
}

// Block returns the source range [lo, hi) of block b.
func (bc *BlockedCSR) Block(b int) (lo, hi int) {
	lo = bc.srcLo + b*bc.blockVerts
	hi = lo + bc.blockVerts
	if hi > bc.srcHi {
		hi = bc.srcHi
	}
	return lo, hi
}

// PartRange returns the destination vertex range [lo, hi) of partition q.
func (bc *BlockedCSR) PartRange(q int) (lo, hi int) {
	return bc.partStarts[q], bc.partStarts[q+1]
}

// Row returns src's out-edges destined to partition q: targets and (for
// weighted graphs) the parallel weights, in adjacency order. The slices
// alias the graph's storage and must not be modified.
func (bc *BlockedCSR) Row(src VertexID, q int) ([]VertexID, []float32) {
	i := (int(src)-bc.srcLo)*bc.NumParts() + q
	lo, hi := bc.rowOff[i], bc.rowOff[i+1]
	if bc.g.outWeights == nil {
		return bc.g.outTargets[lo:hi], nil
	}
	return bc.g.outTargets[lo:hi], bc.g.outWeights[lo:hi]
}

// RangeEdges returns the number of edges in the (block b, partition q)
// range — the exact bin capacity a binned scan of that range needs.
func (bc *BlockedCSR) RangeEdges(b, q int) int64 {
	p := bc.NumParts()
	return bc.blockOff[b*p+q+1] - bc.blockOff[b*p+q]
}

// Validate checks the blocked view against the flat CSR: row offsets
// are monotone and within each source's adjacency, every edge is
// covered exactly once by exactly the partition that owns its
// destination, and the per-(block, partition) counts agree with the
// rows they aggregate. Fuzzed in blocked_fuzz_test.go.
func (bc *BlockedCSR) Validate() error {
	p := bc.NumParts()
	n := bc.srcHi - bc.srcLo
	if len(bc.rowOff) != n*p+1 {
		return fmt.Errorf("graph: blocked CSR row offsets sized %d, want %d", len(bc.rowOff), n*p+1)
	}
	if len(bc.blockOff) != bc.NumBlocks()*p+1 {
		return fmt.Errorf("graph: blocked CSR block offsets sized %d, want %d", len(bc.blockOff), bc.NumBlocks()*p+1)
	}
	var total int64
	for v := bc.srcLo; v < bc.srcHi; v++ {
		deg := int64(0)
		for q := 0; q < p; q++ {
			i := (v-bc.srcLo)*p + q
			if bc.rowOff[i] > bc.rowOff[i+1] {
				return fmt.Errorf("graph: blocked CSR row offsets not monotone at (%d,%d)", v, q)
			}
			if q == 0 && bc.rowOff[i] != bc.g.outOffsets[v] {
				return fmt.Errorf("graph: vertex %d rows start at %d, adjacency at %d", v, bc.rowOff[i], bc.g.outOffsets[v])
			}
			dsts, ws := bc.Row(VertexID(v), q)
			if bc.g.Weighted() != (ws != nil) {
				return fmt.Errorf("graph: vertex %d partition %d weight presence mismatch", v, q)
			}
			for _, d := range dsts {
				if int(d) < bc.partStarts[q] || int(d) >= bc.partStarts[q+1] {
					return fmt.Errorf("graph: edge (%d,%d) filed under partition %d [%d,%d)",
						v, d, q, bc.partStarts[q], bc.partStarts[q+1])
				}
			}
			deg += int64(len(dsts))
			total += int64(len(dsts))
		}
		if deg != int64(bc.g.OutDegree(VertexID(v))) {
			return fmt.Errorf("graph: vertex %d rows cover %d edges, out-degree %d", v, deg, bc.g.OutDegree(VertexID(v)))
		}
		// Concatenating the partition rows in order must reproduce the
		// flat adjacency exactly (same edges, same order).
		k := 0
		flat := bc.g.OutNeighbors(VertexID(v))
		for q := 0; q < p; q++ {
			dsts, _ := bc.Row(VertexID(v), q)
			for _, d := range dsts {
				if flat[k] != d {
					return fmt.Errorf("graph: vertex %d edge %d: blocked order %d, flat order %d", v, k, d, flat[k])
				}
				k++
			}
		}
	}
	if want := bc.g.outOffsets[bc.srcHi] - bc.g.outOffsets[bc.srcLo]; total != want {
		return fmt.Errorf("graph: blocked CSR covers %d edges, range has %d", total, want)
	}
	for b := 0; b < bc.NumBlocks(); b++ {
		lo, hi := bc.Block(b)
		for q := 0; q < p; q++ {
			var cnt int64
			for v := lo; v < hi; v++ {
				dsts, _ := bc.Row(VertexID(v), q)
				cnt += int64(len(dsts))
			}
			if cnt != bc.RangeEdges(b, q) {
				return fmt.Errorf("graph: block %d partition %d aggregates %d edges, rows sum to %d",
					b, q, bc.RangeEdges(b, q), cnt)
			}
		}
	}
	return nil
}
