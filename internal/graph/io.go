package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteEdgeListText writes g as whitespace-separated "src dst" lines
// ("src dst weight" for weighted graphs), the interchange format used by
// SNAP datasets and by Gemini's input tooling.
func WriteEdgeListText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d edges %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		var err error
		if g.Weighted() {
			_, err = fmt.Fprintf(bw, "%d %d %g\n", e.Src, e.Dst, e.Weight)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeListText parses the format written by WriteEdgeListText. Lines
// starting with '#' or '%' are comments. The vertex count is one more than
// the largest ID seen unless a "# vertices N" header is present. Weighted
// is inferred from the first data line's field count.
func ReadEdgeListText(r io.Reader, opts BuildOptions) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	declaredN := -1
	maxID := VertexID(0)
	sawEdge := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '#' || line[0] == '%' {
			var n, m int
			if _, err := fmt.Sscanf(line, "# vertices %d edges %d", &n, &m); err == nil {
				declaredN = n
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 2 or 3 fields, got %d", lineNo, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source: %v", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target: %v", lineNo, err)
		}
		w := float32(1)
		if len(fields) == 3 {
			f, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", lineNo, err)
			}
			w = float32(f)
			opts.Weighted = true
		}
		e := Edge{Src: VertexID(src), Dst: VertexID(dst), Weight: w}
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
		sawEdge = true
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	n := declaredN
	if n < 0 {
		n = 0
		if sawEdge {
			n = int(maxID) + 1
		}
	}
	return FromEdges(n, edges, opts)
}

const binaryMagic = "SGG1"

// WriteBinary writes g in the compact binary format: a 4-byte magic,
// little-endian header (n, m, weighted flag), then (src, dst[, weight])
// records. The binary format round-trips graphs byte-exactly and loads an
// order of magnitude faster than text.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var hdr [17]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.NumEdges()))
	if g.Weighted() {
		hdr[16] = 1
	}
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [12]byte
	for _, e := range g.Edges() {
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.Src))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.Dst))
		sz := 8
		if g.Weighted() {
			binary.LittleEndian.PutUint32(rec[8:], math.Float32bits(e.Weight))
			sz = 12
		}
		if _, err := bw.Write(rec[:sz]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the format written by WriteBinary and validates the
// result.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var hdr [17]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	n := int(binary.LittleEndian.Uint64(hdr[0:]))
	m := int64(binary.LittleEndian.Uint64(hdr[8:]))
	weighted := hdr[16] == 1
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: corrupt header n=%d m=%d", n, m)
	}
	recSize := 8
	if weighted {
		recSize = 12
	}
	// Preallocate conservatively: a corrupt header must not allocate
	// unbounded memory before the records fail to materialize.
	capHint := m
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	edges := make([]Edge, 0, capHint)
	rec := make([]byte, recSize)
	for i := int64(0); i < m; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		e := Edge{
			Src:    VertexID(binary.LittleEndian.Uint32(rec[0:])),
			Dst:    VertexID(binary.LittleEndian.Uint32(rec[4:])),
			Weight: 1,
		}
		if weighted {
			e.Weight = math.Float32frombits(binary.LittleEndian.Uint32(rec[8:]))
		}
		edges = append(edges, e)
	}
	g, err := FromEdges(n, edges, BuildOptions{Weighted: weighted})
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
