package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	g := RMAT(8, 4, Graph500Params(), 11)
	var buf bytes.Buffer
	if err := WriteEdgeListText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeListText(&buf, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: got |V|=%d |E|=%d, want |V|=%d |E|=%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if !equalEdges(g, g2) {
		t.Fatal("round trip changed edges")
	}
}

func TestTextWeightedRoundTrip(t *testing.T) {
	g := RandomWeights(Ring(8), 5)
	var buf bytes.Buffer
	if err := WriteEdgeListText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeListText(&buf, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Weighted() {
		t.Fatal("weights lost in text round trip")
	}
	for v := VertexID(0); v < 8; v++ {
		a, b := g.OutWeights(v), g2.OutWeights(v)
		for i := range a {
			// Text uses %g, so compare loosely.
			if diff := a[i] - b[i]; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("weight drift at %d: %g vs %g", v, a[i], b[i])
			}
		}
	}
}

func TestReadTextComments(t *testing.T) {
	in := "# a comment\n% another\n\n0 1\n1 2\n"
	g, err := ReadEdgeListText(strings.NewReader(in), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %v", g)
	}
}

func TestReadTextHeaderVertexCount(t *testing.T) {
	in := "# vertices 10 edges 1\n0 1\n"
	g, err := ReadEdgeListText(strings.NewReader(in), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("|V| = %d, want 10 from header", g.NumVertices())
	}
}

func TestReadTextErrors(t *testing.T) {
	for _, in := range []string{"0\n", "0 1 2 3\n", "x 1\n", "1 y\n", "1 2 z\n"} {
		if _, err := ReadEdgeListText(strings.NewReader(in), BuildOptions{}); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestReadTextEmpty(t *testing.T) {
	g, err := ReadEdgeListText(strings.NewReader(""), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 {
		t.Fatalf("|V| = %d for empty input", g.NumVertices())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		RMAT(8, 4, Graph500Params(), 11),
		RandomWeights(Grid(5, 5), 2),
		MustFromEdges(0, nil, BuildOptions{}),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumVertices() != g.NumVertices() || !equalEdges(g, g2) {
			t.Fatal("binary round trip changed graph")
		}
		if g2.Weighted() != g.Weighted() {
			t.Fatal("binary round trip changed weightedness")
		}
	}
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	g := Ring(4)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	if _, err := ReadBinary(bytes.NewReader(full[:3])); err == nil {
		t.Fatal("accepted truncated magic")
	}
	bad := append([]byte("XXXX"), full[4:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader(full[:len(full)-3])); err == nil {
		t.Fatal("accepted truncated edge records")
	}
}
