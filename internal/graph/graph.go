// Package graph provides the in-memory graph substrate for SympleGraph-Go:
// a compressed sparse row/column representation, builders, generators
// (including the Graph500 R-MAT generator used by the paper's synthesized
// datasets), transforms, and edge-list I/O.
//
// Graphs are directed. Algorithms that operate on undirected graphs
// (MIS, K-core, K-means) run on symmetrized graphs, matching the paper's
// methodology ("we consider every directed edge as its undirected
// counterpart" / "convert the undirected datasets to directed graphs by
// adding reverse edges").
package graph

import "fmt"

// VertexID identifies a vertex. The paper's datasets reach ~1B vertices;
// at this repository's simulated scale uint32 is ample and halves the
// memory traffic of edge arrays.
type VertexID uint32

// Edge is a directed edge with an optional weight. Weight is meaningful
// only for weighted graphs (SSSP and weighted sampling); unweighted
// builders leave it at 1.
type Edge struct {
	Src, Dst VertexID
	Weight   float32
}

// Graph is an immutable directed graph in dual CSR form: OutOffsets/
// OutTargets index edges by source (push/top-down traversal) and
// InOffsets/InSources index the same edges by destination (pull/bottom-up
// traversal, the mode SympleGraph optimizes).
//
// Within a vertex's adjacency segment, neighbors are sorted by ID. Weights
// are stored only when the graph is weighted; Weighted() reports this.
type Graph struct {
	n int

	outOffsets []int64
	outTargets []VertexID
	outWeights []float32 // nil if unweighted

	inOffsets []int64
	inSources []VertexID
	inWeights []float32 // nil if unweighted
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns |E| (directed edge count).
func (g *Graph) NumEdges() int64 { return int64(len(g.outTargets)) }

// Weighted reports whether edges carry weights.
func (g *Graph) Weighted() bool { return g.outWeights != nil }

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.outOffsets[v+1] - g.outOffsets[v])
}

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v VertexID) int {
	return int(g.inOffsets[v+1] - g.inOffsets[v])
}

// OutNeighbors returns the targets of v's outgoing edges, sorted by ID.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.outTargets[g.outOffsets[v]:g.outOffsets[v+1]]
}

// InNeighbors returns the sources of v's incoming edges, sorted by ID.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	return g.inSources[g.inOffsets[v]:g.inOffsets[v+1]]
}

// OutWeights returns the weights parallel to OutNeighbors(v), or nil for
// unweighted graphs.
func (g *Graph) OutWeights(v VertexID) []float32 {
	if g.outWeights == nil {
		return nil
	}
	return g.outWeights[g.outOffsets[v]:g.outOffsets[v+1]]
}

// InWeights returns the weights parallel to InNeighbors(v), or nil for
// unweighted graphs.
func (g *Graph) InWeights(v VertexID) []float32 {
	if g.inWeights == nil {
		return nil
	}
	return g.inWeights[g.inOffsets[v]:g.inOffsets[v+1]]
}

// Edges materializes all edges in source-major order. Intended for tests
// and I/O, not hot paths.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, len(g.outTargets))
	for v := 0; v < g.n; v++ {
		ws := g.OutWeights(VertexID(v))
		for i, u := range g.OutNeighbors(VertexID(v)) {
			w := float32(1)
			if ws != nil {
				w = ws[i]
			}
			edges = append(edges, Edge{Src: VertexID(v), Dst: u, Weight: w})
		}
	}
	return edges
}

// HasEdge reports whether the directed edge (src, dst) exists, by binary
// search over src's sorted adjacency.
func (g *Graph) HasEdge(src, dst VertexID) bool {
	nbrs := g.OutNeighbors(src)
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if nbrs[mid] < dst {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nbrs) && nbrs[lo] == dst
}

// MaxDegree returns the maximum total (in+out) degree over all vertices,
// or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		d := g.OutDegree(VertexID(v)) + g.InDegree(VertexID(v))
		if d > max {
			max = d
		}
	}
	return max
}

// HighDegreeFraction returns |V'|/|V|: the fraction of vertices whose
// in-degree is at least threshold. Table 1 of the paper reports this per
// dataset; it predicts how much traffic differentiated dependency
// propagation covers.
func (g *Graph) HighDegreeFraction(threshold int) float64 {
	if g.n == 0 {
		return 0
	}
	c := 0
	for v := 0; v < g.n; v++ {
		if g.InDegree(VertexID(v)) >= threshold {
			c++
		}
	}
	return float64(c) / float64(g.n)
}

// String summarizes the graph for logs.
func (g *Graph) String() string {
	w := ""
	if g.Weighted() {
		w = ", weighted"
	}
	return fmt.Sprintf("graph{|V|=%d |E|=%d%s}", g.n, g.NumEdges(), w)
}

// Validate checks structural invariants: offset monotonicity, neighbor
// sorting, ID ranges, and in/out edge-count agreement. It is used by tests
// and by loaders on untrusted input.
func (g *Graph) Validate() error {
	if len(g.outOffsets) != g.n+1 || len(g.inOffsets) != g.n+1 {
		return fmt.Errorf("graph: offset array sized %d/%d, want %d", len(g.outOffsets), len(g.inOffsets), g.n+1)
	}
	if g.outOffsets[g.n] != int64(len(g.outTargets)) {
		return fmt.Errorf("graph: out offsets end at %d, have %d targets", g.outOffsets[g.n], len(g.outTargets))
	}
	if g.inOffsets[g.n] != int64(len(g.inSources)) {
		return fmt.Errorf("graph: in offsets end at %d, have %d sources", g.inOffsets[g.n], len(g.inSources))
	}
	if len(g.outTargets) != len(g.inSources) {
		return fmt.Errorf("graph: %d out edges but %d in edges", len(g.outTargets), len(g.inSources))
	}
	if (g.outWeights == nil) != (g.inWeights == nil) {
		return fmt.Errorf("graph: weight arrays present on one side only")
	}
	for v := 0; v < g.n; v++ {
		if g.outOffsets[v] > g.outOffsets[v+1] || g.inOffsets[v] > g.inOffsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		for i, u := range g.OutNeighbors(VertexID(v)) {
			if int(u) >= g.n {
				return fmt.Errorf("graph: edge (%d,%d) target out of range", v, u)
			}
			if i > 0 && g.OutNeighbors(VertexID(v))[i-1] > u {
				return fmt.Errorf("graph: out neighbors of %d not sorted", v)
			}
		}
		for i, u := range g.InNeighbors(VertexID(v)) {
			if int(u) >= g.n {
				return fmt.Errorf("graph: in edge (%d,%d) source out of range", u, v)
			}
			if i > 0 && g.InNeighbors(VertexID(v))[i-1] > u {
				return fmt.Errorf("graph: in neighbors of %d not sorted", v)
			}
		}
	}
	return nil
}
