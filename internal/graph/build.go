package graph

import (
	"fmt"
	"sort"
)

// DefaultMaxVertices bounds vertex counts accepted from untrusted input:
// loaders infer |V| from the largest vertex ID, so a single corrupt edge
// naming vertex 2^32−1 would otherwise allocate tens of gigabytes.
const DefaultMaxVertices = 1 << 28

// BuildOptions control how FromEdges constructs a Graph.
type BuildOptions struct {
	// Dedupe removes duplicate (src, dst) pairs, keeping the first
	// occurrence's weight.
	Dedupe bool
	// DropSelfLoops removes edges with Src == Dst.
	DropSelfLoops bool
	// Weighted stores edge weights. When false, weights are discarded.
	Weighted bool
	// MaxVertices rejects graphs larger than this. 0 selects
	// DefaultMaxVertices; negative disables the bound.
	MaxVertices int
}

// FromEdges builds a Graph over n vertices from an edge list. The input
// slice is not modified. It returns an error if any endpoint is out of
// range or n is negative.
func FromEdges(n int, edges []Edge, opts BuildOptions) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	limit := opts.MaxVertices
	if limit == 0 {
		limit = DefaultMaxVertices
	}
	if limit > 0 && n > limit {
		return nil, fmt.Errorf("graph: %d vertices exceeds limit %d (raise BuildOptions.MaxVertices)", n, limit)
	}
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.Src, e.Dst, n)
		}
	}

	work := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if opts.DropSelfLoops && e.Src == e.Dst {
			continue
		}
		work = append(work, e)
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].Src != work[j].Src {
			return work[i].Src < work[j].Src
		}
		return work[i].Dst < work[j].Dst
	})
	if opts.Dedupe {
		out := work[:0]
		for i, e := range work {
			if i > 0 && e.Src == work[i-1].Src && e.Dst == work[i-1].Dst {
				continue
			}
			out = append(out, e)
		}
		work = out
	}

	g := &Graph{n: n}
	g.outOffsets = make([]int64, n+1)
	for _, e := range work {
		g.outOffsets[e.Src+1]++
	}
	for v := 0; v < n; v++ {
		g.outOffsets[v+1] += g.outOffsets[v]
	}
	g.outTargets = make([]VertexID, len(work))
	if opts.Weighted {
		g.outWeights = make([]float32, len(work))
	}
	for i, e := range work { // work is sorted by (src, dst) so this fills in order
		g.outTargets[i] = e.Dst
		if opts.Weighted {
			g.outWeights[i] = e.Weight
		}
		_ = i
	}

	// CSC: count in-degrees, then place each edge at its destination
	// bucket. Scanning work in (src, dst) order makes each destination's
	// source list sorted automatically.
	g.inOffsets = make([]int64, n+1)
	for _, e := range work {
		g.inOffsets[e.Dst+1]++
	}
	for v := 0; v < n; v++ {
		g.inOffsets[v+1] += g.inOffsets[v]
	}
	g.inSources = make([]VertexID, len(work))
	if opts.Weighted {
		g.inWeights = make([]float32, len(work))
	}
	cursor := make([]int64, n)
	copy(cursor, g.inOffsets[:n])
	for _, e := range work {
		at := cursor[e.Dst]
		cursor[e.Dst]++
		g.inSources[at] = e.Src
		if opts.Weighted {
			g.inWeights[at] = e.Weight
		}
	}
	return g, nil
}

// MustFromEdges is FromEdges that panics on error, for tests and
// generators whose inputs are constructed to be valid.
func MustFromEdges(n int, edges []Edge, opts BuildOptions) *Graph {
	g, err := FromEdges(n, edges, opts)
	if err != nil {
		panic(err)
	}
	return g
}
