package mutate

import (
	"math/bits"

	"repro/internal/graph"
)

// regionBuckets is the signature width. 256 bits keeps the signature
// four words — cheap to store per cache entry and to intersect on
// every commit — while still discriminating well on the graphs we
// serve (a query that touched 1% of a scale-14 graph sets ~150 of the
// 256 buckets, so a 3-op batch collides with it only ~60% of the
// time; small localized read-sets almost never collide).
const regionBuckets = 256

// Region is a fixed-width vertex-set signature: vertex v occupies
// bucket v mod 256. It over-approximates set intersection — two
// disjoint sets can collide in a bucket — which is the safe direction
// for cache invalidation: a collision drops a cache entry that could
// have been kept, never the reverse.
//
// The invalidation rule (server/mutate.go): a cached result survives a
// commit iff its read-set signature does not intersect the batch's
// mutated-region signature. Soundness for the root-based algorithms
// (the only ones that record a partial read-set — everything global
// records Full and is always dropped): the read-set is the set of
// reached vertices. Removing an arc u→v only changes the answer if v
// was reached (if v was unreached then u was too, else the arc would
// have made v reached), and v is in the batch region. Adding an arc
// u→v only changes the answer if u was reached, and u is in the batch
// region. Isolating vertex v only changes the answer if v was reached.
// In every case a change implies a bucket collision, so non-intersection
// proves the cached answer is still exact on the new epoch.
type Region [regionBuckets / 64]uint64

// Add inserts vertex v's bucket.
func (r *Region) Add(v graph.VertexID) {
	b := uint32(v) % regionBuckets
	r[b/64] |= 1 << (b % 64)
}

// Union folds o into r.
func (r *Region) Union(o Region) {
	for i := range r {
		r[i] |= o[i]
	}
}

// Intersects reports whether any bucket is set in both signatures.
func (r Region) Intersects(o Region) bool {
	for i := range r {
		if r[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// Empty reports whether no bucket is set.
func (r Region) Empty() bool {
	for _, w := range r {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set buckets (observability only).
func (r Region) Count() int {
	n := 0
	for _, w := range r {
		n += bits.OnesCount64(w)
	}
	return n
}

// FullRegion is the signature that intersects everything — the
// read-set of a global algorithm (pagerank, cc, kcore, ...) whose
// answer can depend on any vertex.
func FullRegion() Region {
	var r Region
	for i := range r {
		r[i] = ^uint64(0)
	}
	return r
}
