package mutate

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/graph"
)

// DefaultRetention is how many epochs a Store keeps resolvable. Old
// epochs age out so pinned queries can't hold memory forever; a query
// pinning an aged-out epoch gets a clean 4xx, not a torn answer.
const DefaultRetention = 8

// Snapshot is one immutable graph version. The content fingerprint is
// memoized at commit time and chained to the parent —
//
//	fp(root)  = sha256(serialized graph bytes)
//	fp(child) = sha256(parent fp bytes ‖ canonical delta bytes)
//
// — so advancing an epoch hashes O(delta) bytes, not the full
// adjacency (the old blobFor path re-serialized and re-hashed the
// whole graph per build spec). The serialized blob and its sha256 are
// computed lazily, once, only if a cold worker actually needs a full
// ship; delta shipping never touches them.
type Snapshot struct {
	epoch    uint64
	g        *graph.Graph
	fp       string
	parentFP string
	delta    Batch // empty for the root snapshot

	blobOnce sync.Once
	blob     []byte
	blobSHA  string
	blobErr  error
}

// Epoch returns the snapshot's version number (root = 1).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Graph returns the immutable graph at this epoch.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Fingerprint returns the chained content fingerprint.
func (s *Snapshot) Fingerprint() string { return s.fp }

// ParentFingerprint returns the parent's fingerprint ("" for root).
func (s *Snapshot) ParentFingerprint() string { return s.parentFP }

// Delta returns the batch that produced this snapshot from its parent
// (zero-length for the root).
func (s *Snapshot) Delta() Batch { return s.delta }

// Blob serializes the snapshot's graph (SGG1 binary form) and returns
// it with its sha256, memoized. The sha travels next to full-graph
// ships so the receiver can verify the transfer; the chained
// fingerprint cannot serve that role because a worker holding only the
// blob cannot recompute the chain.
func (s *Snapshot) Blob() ([]byte, string, error) {
	s.blobOnce.Do(func() {
		var buf bytes.Buffer
		if err := graph.WriteBinary(&buf, s.g); err != nil {
			s.blobErr = fmt.Errorf("mutate: serialize snapshot @%d: %w", s.epoch, err)
			return
		}
		s.blob = buf.Bytes()
		sum := sha256.Sum256(s.blob)
		s.blobSHA = hex.EncodeToString(sum[:])
	})
	return s.blob, s.blobSHA, s.blobErr
}

// ChainFingerprint derives a child fingerprint from the parent's and
// the canonical delta encoding. Exposed so workers can verify a delta
// frame produces the graph the front-end claims it does.
func ChainFingerprint(parentFP string, deltaBytes []byte) string {
	h := sha256.New()
	h.Write([]byte(parentFP))
	h.Write(deltaBytes)
	return hex.EncodeToString(h.Sum(nil))
}

// SerializeGraph writes g's binary form and returns it with its
// sha256, for full-graph shipping of derived variants (the snapshot's
// own blob memoization covers the base graph).
func SerializeGraph(g *graph.Graph) ([]byte, string, error) {
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return buf.Bytes(), hex.EncodeToString(sum[:]), nil
}

// RootFingerprint fingerprints a root snapshot's graph content.
func RootFingerprint(g *graph.Graph) (string, error) {
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// DeriveFingerprint names a deterministic transformation of a
// fingerprinted graph (a serving variant: symmetrized, weighted).
// Chaining off the base fingerprint keeps variant identity O(1)
// instead of serializing and hashing each materialized variant.
func DeriveFingerprint(baseFP, transform string) string {
	h := sha256.New()
	h.Write([]byte(baseFP))
	h.Write([]byte("\x00variant\x00"))
	h.Write([]byte(transform))
	return hex.EncodeToString(h.Sum(nil))
}

// Store is the versioned snapshot chain for one served graph. Commits
// are serialized by the caller (the server holds a per-graph commit
// lock); reads are safe under concurrent commits.
type Store struct {
	mu        sync.RWMutex
	snaps     []*Snapshot // ascending epoch, contiguous
	retention int

	commits   uint64
	opsTotal  uint64
	evictions uint64
}

// NewStore roots a version chain at epoch 1 with the given graph.
func NewStore(g *graph.Graph, retention int) (*Store, error) {
	fp, err := RootFingerprint(g)
	if err != nil {
		return nil, err
	}
	if retention <= 0 {
		retention = DefaultRetention
	}
	return &Store{
		snaps:     []*Snapshot{{epoch: 1, g: g, fp: fp}},
		retention: retention,
	}, nil
}

// Latest returns the newest snapshot.
func (st *Store) Latest() *Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.snaps[len(st.snaps)-1]
}

// At resolves an epoch. epoch 0 means latest. A pruned or future epoch
// returns an error naming the retained window.
func (st *Store) At(epoch uint64) (*Snapshot, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if epoch == 0 {
		return st.snaps[len(st.snaps)-1], nil
	}
	lo, hi := st.snaps[0].epoch, st.snaps[len(st.snaps)-1].epoch
	if epoch < lo || epoch > hi {
		return nil, fmt.Errorf("mutate: epoch %d not retained (have %d..%d)", epoch, lo, hi)
	}
	return st.snaps[epoch-lo], nil
}

// Window returns the retained epoch range.
func (st *Store) Window() (lo, hi uint64) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.snaps[0].epoch, st.snaps[len(st.snaps)-1].epoch
}

// Commit applies a batch to the latest snapshot and appends the
// resulting epoch, pruning past the retention window. The caller must
// serialize Commit calls per store.
func (st *Store) Commit(b Batch) (*Snapshot, error) {
	parent := st.Latest()
	ng, err := Apply(parent.g, b)
	if err != nil {
		return nil, err
	}
	child := &Snapshot{
		epoch:    parent.epoch + 1,
		g:        ng,
		fp:       ChainFingerprint(parent.fp, b.Encode()),
		parentFP: parent.fp,
		delta:    b,
	}
	st.mu.Lock()
	st.snaps = append(st.snaps, child)
	st.commits++
	st.opsTotal += uint64(len(b.Ops))
	for len(st.snaps) > st.retention {
		st.snaps[0] = nil // release the graph; the slice header still pins the array
		st.snaps = st.snaps[1:]
		st.evictions++
	}
	st.mu.Unlock()
	return child, nil
}

// Stats reports commit counters for /statusz.
func (st *Store) Stats() (commits, opsTotal, evictions uint64) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.commits, st.opsTotal, st.evictions
}
