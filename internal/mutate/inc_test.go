package mutate

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// symmetric random mutation: pick undirected edge toggles and apply
// both arcs, keeping the graph symmetric for the k-core tracker.
func randomSymBatch(rng *rand.Rand, n int, ops int) Batch {
	var b Batch
	for i := 0; i < ops; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		op := OpAddEdge
		if rng.Intn(2) == 0 {
			op = OpRemoveEdge
		}
		b.Ops = append(b.Ops, Mutation{Op: op, Src: u, Dst: v}, Mutation{Op: op, Src: v, Dst: u})
	}
	if len(b.Ops) == 0 {
		b.Ops = append(b.Ops, Mutation{Op: OpAddVertex})
	}
	return b
}

func randomDirBatch(rng *rand.Rand, n int, ops int) Batch {
	var b Batch
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0:
			b.Ops = append(b.Ops, Mutation{Op: OpAddVertex})
			n++
		case 1:
			b.Ops = append(b.Ops, Mutation{Op: OpRemoveVertex, Src: graph.VertexID(rng.Intn(n))})
		case 2, 3, 4:
			b.Ops = append(b.Ops, Mutation{Op: OpRemoveEdge,
				Src: graph.VertexID(rng.Intn(n)), Dst: graph.VertexID(rng.Intn(n))})
		default:
			b.Ops = append(b.Ops, Mutation{Op: OpAddEdge,
				Src: graph.VertexID(rng.Intn(n)), Dst: graph.VertexID(rng.Intn(n))})
		}
	}
	return b
}

// TestIncCoreMatchesScratch is the tentpole property test: over seeded
// mutation sequences, incremental k-core membership is bit-identical
// to the from-scratch fixpoint at every epoch. Runs under -race via
// the Makefile race target.
func TestIncCoreMatchesScratch(t *testing.T) {
	for _, k := range []int{0, 1, 2, 3} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed*31 + int64(k)))
			n := 24 + rng.Intn(16)
			var edges []graph.Edge
			for i := 0; i < n*3; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				edges = append(edges,
					graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)},
					graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(u)})
			}
			g, err := graph.FromEdges(n, edges, graph.BuildOptions{Dedupe: true})
			if err != nil {
				t.Fatal(err)
			}
			tr := NewCoreTracker(g, k)
			for step := 0; step < 12; step++ {
				batch := randomSymBatch(rng, g.NumVertices(), 4)
				ng, err := Apply(g, batch)
				if err != nil {
					t.Fatalf("k=%d seed=%d step=%d: apply: %v", k, seed, step, err)
				}
				delta, err := Diff(g, ng)
				if err != nil {
					t.Fatal(err)
				}
				tr.Update(ng, delta)
				if _, ok := tr.VerifyScratch(ng); !ok {
					t.Fatalf("k=%d seed=%d step=%d: incremental k-core diverged from scratch", k, seed, step)
				}
				g = ng
			}
		}
	}
}

// TestIncBFSMatchesScratch: over seeded directed mutation sequences
// (including vertex adds and isolations), incremental BFS depths are
// bit-identical to a scratch traversal at every epoch.
func TestIncBFSMatchesScratch(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 24 + rng.Intn(16)
		var edges []graph.Edge
		for i := 0; i < n*2; i++ {
			edges = append(edges, graph.Edge{
				Src: graph.VertexID(rng.Intn(n)), Dst: graph.VertexID(rng.Intn(n))})
		}
		g, err := graph.FromEdges(n, edges, graph.BuildOptions{Dedupe: true})
		if err != nil {
			t.Fatal(err)
		}
		root := graph.VertexID(rng.Intn(n))
		tr := NewBFSTracker(g, root)
		for step := 0; step < 16; step++ {
			batch := randomDirBatch(rng, g.NumVertices(), 5)
			ng, err := Apply(g, batch)
			if err != nil {
				t.Fatalf("seed=%d step=%d: apply: %v", seed, step, err)
			}
			delta, err := Diff(g, ng)
			if err != nil {
				t.Fatal(err)
			}
			tr.Update(ng, delta)
			if scratch, ok := tr.VerifyScratch(ng); !ok {
				for v := range scratch.Depth {
					if scratch.Depth[v] != tr.Depths()[v] {
						t.Logf("v=%d scratch=%d inc=%d", v, scratch.Depth[v], tr.Depths()[v])
					}
				}
				t.Fatalf("seed=%d step=%d root=%d: incremental BFS diverged from scratch", seed, step, root)
			}
			g = ng
		}
	}
}

// TestIncCoreTargeted pins the mutual-dependence cascade a naive
// optimistic grow pass gets wrong: two non-members that only reach
// degree k by counting each other, unlocked by one inserted edge.
func TestIncCoreTargeted(t *testing.T) {
	sym := func(pairs ...[2]graph.VertexID) []graph.Edge {
		var out []graph.Edge
		for _, p := range pairs {
			out = append(out,
				graph.Edge{Src: p[0], Dst: p[1]},
				graph.Edge{Src: p[1], Dst: p[0]})
		}
		return out
	}
	// Vertices 0-2 form a triangle (2-core). 3 and 4 hang off it with
	// degree 1 each plus the mutual edge 3–4 missing: after inserting
	// 3–4, both 3 and 4 have degree 2 only by counting each other.
	g := graph.MustFromEdges(5, sym(
		[2]graph.VertexID{0, 1}, [2]graph.VertexID{1, 2}, [2]graph.VertexID{0, 2},
		[2]graph.VertexID{0, 3}, [2]graph.VertexID{1, 4},
	), graph.BuildOptions{Dedupe: true})
	tr := NewCoreTracker(g, 2)
	m := tr.Members()
	if !m[0] || !m[1] || !m[2] || m[3] || m[4] {
		t.Fatalf("initial membership wrong: %v", m)
	}
	batch := Batch{Ops: []Mutation{
		{Op: OpAddEdge, Src: 3, Dst: 4}, {Op: OpAddEdge, Src: 4, Dst: 3},
	}}
	ng, err := Apply(g, batch)
	if err != nil {
		t.Fatal(err)
	}
	delta, _ := Diff(g, ng)
	tr.Update(ng, delta)
	if _, ok := tr.VerifyScratch(ng); !ok {
		t.Fatal("mutual-dependence grow case diverged from scratch")
	}
	if m := tr.Members(); !m[3] || !m[4] {
		t.Fatalf("3 and 4 must join the 2-core together: %v", m)
	}
	// And the symmetric shrink: deleting 3–4 must evict both.
	back := Batch{Ops: []Mutation{
		{Op: OpRemoveEdge, Src: 3, Dst: 4}, {Op: OpRemoveEdge, Src: 4, Dst: 3},
	}}
	ng2, err := Apply(ng, back)
	if err != nil {
		t.Fatal(err)
	}
	delta2, _ := Diff(ng, ng2)
	tr.Update(ng2, delta2)
	if _, ok := tr.VerifyScratch(ng2); !ok {
		t.Fatal("mutual-dependence shrink case diverged from scratch")
	}
	if m := tr.Members(); m[3] || m[4] {
		t.Fatalf("3 and 4 must leave the 2-core together: %v", m)
	}
}

// TestIncBFSTargeted pins the orphan-subtree case: deleting a tree arc
// must relabel the whole detached subtree, including vertices that
// become unreachable.
func TestIncBFSTargeted(t *testing.T) {
	// 0→1→2→3 chain plus shortcut 0→3 missing; delete 1→2 and 2,3
	// become unreachable; then insert 0→3 and 3 comes back at depth 1.
	g := graph.MustFromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
	}, graph.BuildOptions{})
	tr := NewBFSTracker(g, 0)
	cut := Batch{Ops: []Mutation{{Op: OpRemoveEdge, Src: 1, Dst: 2}}}
	ng, err := Apply(g, cut)
	if err != nil {
		t.Fatal(err)
	}
	delta, _ := Diff(g, ng)
	tr.Update(ng, delta)
	if _, ok := tr.VerifyScratch(ng); !ok {
		t.Fatal("subtree detach diverged from scratch")
	}
	if d := tr.Depths(); d[2] != -1 || d[3] != -1 {
		t.Fatalf("detached subtree must be unreached: %v", d)
	}
	patch := Batch{Ops: []Mutation{{Op: OpAddEdge, Src: 0, Dst: 3}}}
	ng2, err := Apply(ng, patch)
	if err != nil {
		t.Fatal(err)
	}
	delta2, _ := Diff(ng, ng2)
	tr.Update(ng2, delta2)
	if _, ok := tr.VerifyScratch(ng2); !ok {
		t.Fatal("re-attach diverged from scratch")
	}
	if d := tr.Depths(); d[3] != 1 || d[2] != -1 {
		t.Fatalf("after 0→3 insert: %v", d)
	}
}
