package mutate

import (
	"repro/internal/graph"
	"repro/internal/seq"
)

// BFSTracker maintains a BFS tree (depths + parents) from a fixed root
// across epochs, re-seeding only the affected region instead of
// re-traversing the whole graph.
//
// Why the affected region is exactly what it touches:
//
//   - Removing a non-tree arc changes nothing: the BFS tree realizes
//     every shortest distance, and the tree survives, so no depth can
//     grow; removals cannot shrink a distance either.
//   - Removing a tree arc orphans its child; the vertices whose
//     certificate (their tree path) broke are precisely the orphan's
//     tree descendants. Those become dirty: depths reset, then
//     re-seeded from their non-dirty in-neighbors.
//   - Inserting an arc u→v can only *decrease* distances, starting at
//     v with candidate depth(u)+1 and cascading monotonically.
//
// All candidates go through one bucket queue processed in increasing
// depth. Dirty vertices accept their first (minimal) label; clean
// vertices accept only improvements and then relax their out-edges so
// a decrease cascades into their old subtree. Distances are unit, so
// the bucket order makes every accepted label final — the result is
// the true BFS depth array, bit-identical to a from-scratch
// traversal (parents may differ between valid trees, as with the
// direction-optimizing engine, so verification compares depths and
// checks the parent invariant structurally).
type BFSTracker struct {
	root   graph.VertexID
	depth  []int32
	parent []uint32
}

// NewBFSTracker runs the initial scratch traversal.
func NewBFSTracker(g *graph.Graph, root graph.VertexID) *BFSTracker {
	r := seq.TopDownBFS(g, root)
	return &BFSTracker{root: root, depth: r.Depth, parent: r.Parent}
}

// Root returns the tracked root.
func (t *BFSTracker) Root() graph.VertexID { return t.root }

// Depths exposes the live depth array; callers must not mutate it.
func (t *BFSTracker) Depths() []int32 { return t.depth }

type bfsSeed struct {
	v, from graph.VertexID
}

// Update advances the tree to gNew given the canonical delta
// (Diff(gOld, gNew)). It returns the number of vertices relabeled.
func (t *BFSTracker) Update(gNew *graph.Graph, delta Batch) int {
	n := gNew.NumVertices()
	for len(t.depth) < n {
		t.depth = append(t.depth, -1)
		t.parent = append(t.parent, seq.NoParent)
	}

	// Orphans: reached vertices whose tree arc was removed.
	var orphans []graph.VertexID
	for _, m := range delta.Ops {
		if m.Op == OpRemoveEdge && m.Dst < graph.VertexID(n) &&
			t.depth[m.Dst] >= 0 && t.parent[m.Dst] == uint32(m.Src) {
			orphans = append(orphans, m.Dst)
		}
	}

	// Dirty = orphans plus all their tree descendants, found by one
	// pass building child lists in CSR form from the parent array.
	dirty := make([]bool, n)
	if len(orphans) > 0 {
		off := make([]int32, n+1)
		for v := 0; v < n; v++ {
			if t.depth[v] > 0 && t.parent[v] != seq.NoParent {
				off[t.parent[v]+1]++
			}
		}
		for i := 0; i < n; i++ {
			off[i+1] += off[i]
		}
		child := make([]int32, off[n])
		cur := make([]int32, n)
		copy(cur, off[:n])
		for v := 0; v < n; v++ {
			if t.depth[v] > 0 && t.parent[v] != seq.NoParent {
				p := t.parent[v]
				child[cur[p]] = int32(v)
				cur[p]++
			}
		}
		stack := append([]graph.VertexID(nil), orphans...)
		for _, v := range orphans {
			dirty[v] = true
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, c := range child[off[v]:off[v+1]] {
				if !dirty[c] {
					dirty[c] = true
					stack = append(stack, graph.VertexID(c))
				}
			}
		}
		for v := 0; v < n; v++ {
			if dirty[v] {
				t.depth[v] = -1
				t.parent[v] = seq.NoParent
			}
		}
	}

	// Bucket queue seeded by (a) dirty vertices' clean reached
	// in-neighbors, (b) inserted arcs from clean reached sources.
	var buckets [][]bfsSeed
	push := func(d int32, v, from graph.VertexID) {
		for int32(len(buckets)) <= d {
			buckets = append(buckets, nil)
		}
		buckets[d] = append(buckets[d], bfsSeed{v: v, from: from})
	}
	for v := 0; v < n; v++ {
		if !dirty[v] {
			continue
		}
		for _, u := range gNew.InNeighbors(graph.VertexID(v)) {
			if !dirty[u] && t.depth[u] >= 0 {
				push(t.depth[u]+1, graph.VertexID(v), u)
			}
		}
	}
	for _, m := range delta.Ops {
		if m.Op == OpAddEdge && !dirty[m.Src] && t.depth[m.Src] >= 0 {
			push(t.depth[m.Src]+1, m.Dst, m.Src)
		}
	}

	relabeled := 0
	for d := int32(0); d < int32(len(buckets)); d++ {
		for i := 0; i < len(buckets[d]); i++ {
			s := buckets[d][i]
			if t.depth[s.v] >= 0 && t.depth[s.v] <= d {
				continue // already has a label at least this good
			}
			t.depth[s.v] = d
			t.parent[s.v] = uint32(s.from)
			relabeled++
			for _, w := range gNew.OutNeighbors(s.v) {
				if t.depth[w] < 0 || t.depth[w] > d+1 {
					push(d+1, w, s.v)
				}
			}
		}
		buckets[d] = nil
	}
	return relabeled
}

// VerifyScratch re-runs BFS from scratch on g and reports whether the
// tracked depths are bit-identical, returning the scratch result for
// diagnostics.
func (t *BFSTracker) VerifyScratch(g *graph.Graph) (*seq.BFSResult, bool) {
	scratch := seq.TopDownBFS(g, t.root)
	if len(scratch.Depth) != len(t.depth) {
		return scratch, false
	}
	for i := range scratch.Depth {
		if scratch.Depth[i] != t.depth[i] {
			return scratch, false
		}
	}
	// Parents may legitimately differ from scratch, but must form a
	// valid shortest-path tree over the tracked depths.
	for v := range t.parent {
		p := t.parent[v]
		if p == seq.NoParent {
			if t.depth[v] > 0 {
				return scratch, false
			}
			continue
		}
		if t.depth[p] < 0 || t.depth[v] != t.depth[p]+1 || !g.HasEdge(graph.VertexID(p), graph.VertexID(v)) {
			return scratch, false
		}
	}
	return scratch, true
}
