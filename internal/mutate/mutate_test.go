package mutate

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge, weighted bool) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{Weighted: weighted, Dedupe: true})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := Batch{Ops: []Mutation{
		{Op: OpAddEdge, Src: 1, Dst: 2, Weight: 0.5},
		{Op: OpRemoveEdge, Src: 2, Dst: 1},
		{Op: OpAddVertex},
		{Op: OpRemoveVertex, Src: 3},
	}}
	enc := b.Encode()
	dec, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec.Ops) != len(b.Ops) {
		t.Fatalf("op count %d != %d", len(dec.Ops), len(b.Ops))
	}
	for i := range dec.Ops {
		if dec.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, dec.Ops[i], b.Ops[i])
		}
	}
	if string(dec.Encode()) != string(enc) {
		t.Fatal("re-encode differs from original encoding")
	}
}

func TestDecodeRejects(t *testing.T) {
	b := Batch{Ops: []Mutation{{Op: OpAddEdge, Src: 0, Dst: 1}}}
	enc := b.Encode()
	cases := map[string][]byte{
		"short":      enc[:5],
		"bad magic":  append([]byte("XXXX"), enc[4:]...),
		"trailing":   append(append([]byte{}, enc...), 0),
		"unknown op": func() []byte { c := append([]byte{}, enc...); c[8] = 99; return c }(),
	}
	for name, data := range cases {
		if _, err := DecodeBatch(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestValidate(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{Src: 0, Dst: 1}}, false)
	if err := (Batch{}).Validate(g); err == nil {
		t.Error("empty batch accepted")
	}
	if err := (Batch{Ops: []Mutation{{Op: OpAddEdge, Src: 0, Dst: 5}}}).Validate(g); err == nil {
		t.Error("out-of-range dst accepted")
	}
	// AddVertex extends the valid range for later ops.
	ok := Batch{Ops: []Mutation{{Op: OpAddVertex}, {Op: OpAddEdge, Src: 0, Dst: 3}}}
	if err := ok.Validate(g); err != nil {
		t.Errorf("add-vertex then edge to the new slot rejected: %v", err)
	}
	bad := Batch{Ops: []Mutation{{Op: OpAddEdge, Src: 0, Dst: 3}, {Op: OpAddVertex}}}
	if err := bad.Validate(g); err == nil {
		t.Error("edge to not-yet-added vertex accepted")
	}
}

func TestApplyOrderSensitive(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false)

	// remove-vertex then add-edge: the new edge survives.
	g1, err := Apply(g, Batch{Ops: []Mutation{
		{Op: OpRemoveVertex, Src: 1},
		{Op: OpAddEdge, Src: 1, Dst: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !g1.HasEdge(1, 3) || g1.HasEdge(0, 1) || g1.HasEdge(1, 2) {
		t.Fatalf("isolate-then-add wrong edges: %v", g1.Edges())
	}

	// add-edge then remove-vertex: nothing incident to 1 survives.
	g2, err := Apply(g, Batch{Ops: []Mutation{
		{Op: OpAddEdge, Src: 1, Dst: 3},
		{Op: OpRemoveVertex, Src: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if g2.HasEdge(1, 3) || g2.NumEdges() != 0 {
		t.Fatalf("add-then-isolate wrong edges: %v", g2.Edges())
	}
	if g2.NumVertices() != 4 {
		t.Fatalf("remove-vertex must keep the ID slot: n=%d", g2.NumVertices())
	}
}

func TestApplyWeighted(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{{Src: 0, Dst: 1, Weight: 2}}, true)
	g1, err := Apply(g, Batch{Ops: []Mutation{{Op: OpAddEdge, Src: 0, Dst: 1, Weight: 7}}})
	if err != nil {
		t.Fatal(err)
	}
	if w := g1.OutWeights(0)[0]; w != 7 {
		t.Fatalf("weight update: got %v want 7", w)
	}
}

func randomGraph(rng *rand.Rand, n, m int, weighted bool) *graph.Graph {
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		e := graph.Edge{
			Src:    graph.VertexID(rng.Intn(n)),
			Dst:    graph.VertexID(rng.Intn(n)),
			Weight: 1,
		}
		if weighted {
			e.Weight = float32(rng.Intn(9) + 1)
		}
		edges = append(edges, e)
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{Weighted: weighted, Dedupe: true})
	if err != nil {
		panic(err)
	}
	return g
}

func TestDiffApplyIdentity(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		weighted := seed%2 == 0
		oldG := randomGraph(rng, 20, 40, weighted)
		newG := randomGraph(rand.New(rand.NewSource(seed+1000)), 20+rng.Intn(3), 40, weighted)
		d, err := Diff(oldG, newG)
		if err != nil {
			t.Fatalf("seed %d: diff: %v", seed, err)
		}
		if len(d.Ops) == 0 {
			continue
		}
		got, err := Apply(oldG, d)
		if err != nil {
			t.Fatalf("seed %d: apply: %v", seed, err)
		}
		if !Equal(got, newG) {
			t.Fatalf("seed %d: apply(diff) != target", seed)
		}
	}
}

func TestStoreChainAndRetention(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{{Src: 0, Dst: 1}}, false)
	st, err := NewStore(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	root := st.Latest()
	if root.Epoch() != 1 || root.Fingerprint() == "" {
		t.Fatalf("root snapshot: epoch=%d fp=%q", root.Epoch(), root.Fingerprint())
	}

	var fps []string
	for i := 0; i < 5; i++ {
		sn, err := st.Commit(Batch{Ops: []Mutation{{Op: OpAddEdge, Src: graph.VertexID(i % 4), Dst: graph.VertexID((i + 1) % 4)}}})
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, sn.Fingerprint())
		if sn.ParentFingerprint() == "" {
			t.Fatal("child snapshot missing parent fp")
		}
	}
	lo, hi := st.Window()
	if hi != 6 || hi-lo+1 != 3 {
		t.Fatalf("window [%d,%d], want 3 epochs ending at 6", lo, hi)
	}
	if _, err := st.At(1); err == nil || !strings.Contains(err.Error(), "not retained") {
		t.Fatalf("pruned epoch resolved: %v", err)
	}
	if sn, err := st.At(0); err != nil || sn.Epoch() != 6 {
		t.Fatalf("At(0) = %v, %v; want latest epoch 6", sn, err)
	}

	// The chain is a pure function of (parent fp, delta bytes):
	// replaying the same commits from the same root reproduces the
	// same fingerprints without touching full adjacency bytes.
	st2, _ := NewStore(g, 3)
	for i := 0; i < 5; i++ {
		sn, err := st2.Commit(Batch{Ops: []Mutation{{Op: OpAddEdge, Src: graph.VertexID(i % 4), Dst: graph.VertexID((i + 1) % 4)}}})
		if err != nil {
			t.Fatal(err)
		}
		if sn.Fingerprint() != fps[i] {
			t.Fatalf("epoch %d fp not reproducible", sn.Epoch())
		}
	}
}

func TestSnapshotBlobMemoized(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{Src: 0, Dst: 1}}, false)
	st, _ := NewStore(g, 0)
	sn := st.Latest()
	b1, sha1, err := sn.Blob()
	if err != nil {
		t.Fatal(err)
	}
	b2, sha2, _ := sn.Blob()
	if &b1[0] != &b2[0] || sha1 != sha2 {
		t.Fatal("blob not memoized")
	}
	rt, err := graph.ReadBinary(strings.NewReader(string(b1)))
	if err != nil || !Equal(rt, g) {
		t.Fatalf("blob round-trip: %v", err)
	}
}

func TestRegion(t *testing.T) {
	var a, b Region
	a.Add(5)
	b.Add(5 + regionBuckets) // same bucket
	if !a.Intersects(b) {
		t.Error("aliased buckets must intersect")
	}
	var c Region
	c.Add(6)
	if a.Intersects(c) {
		t.Error("distinct buckets must not intersect")
	}
	if !FullRegion().Intersects(c) || FullRegion().Count() != regionBuckets {
		t.Error("full region must intersect everything")
	}
	if c.Empty() || c.Count() != 1 {
		t.Error("single-vertex region should be non-empty with one bucket")
	}
	batch := Batch{Ops: []Mutation{
		{Op: OpAddEdge, Src: 1, Dst: 2},
		{Op: OpAddVertex},
	}}
	r := batch.Region()
	var want Region
	want.Add(1)
	want.Add(2)
	if r != want {
		t.Errorf("batch region %v want %v", r, want)
	}
}
