package mutate

import (
	"repro/internal/graph"
	"repro/internal/seq"
)

// CoreTracker maintains k-core membership (for one fixed k, BLADYG's
// headline workload) across epochs, peeling only vertices whose
// membership can actually change instead of re-running the fixpoint
// from scratch. The graph must be symmetric (the serving layer feeds
// it the undirected variant), matching seq.KCoreIterative's contract.
//
// Update runs three phases against the new graph g' and the canonical
// delta (Diff output: edge removals and additions, plus vertex
// growth — vertex removals have already been expanded into their
// incident edge removals):
//
//  1. Shrink: cascade-peel inside the old membership C, seeded by
//     member endpoints of removed edges, counting member neighbors in
//     g'. Removals only ever shrink the core, and a member's count
//     can only have dropped if it lost a member neighbor — directly
//     (seed) or transitively (cascade) — so the surviving set C1
//     satisfies min-degree ≥ k inside itself on g'. C1 ⊆ core(g')
//     because the true core's restriction argument applies: peeling
//     never removes a vertex of the maximal fixpoint.
//
//  2. Region: the vertices that can *join* are confined to the
//     connected components (in g' restricted to non-members) that
//     contain a non-member endpoint of an inserted edge. Any v in
//     core(g') \ C1 has, on its component of core(g') \ C1, some
//     vertex incident to an inserted edge — otherwise every vertex of
//     that component had the same neighbor counts during the old
//     peel, which removed it then and would remove it now,
//     contradicting membership. That component is non-member-connected
//     to the seed, so the flood fill reaches v.
//
//  3. Grow: peel the region with C1 frozen (counting neighbors in
//     C1 ∪ region), which computes the maximal subset of the region
//     whose union with C1 has min-degree ≥ k — exactly core(g') by
//     maximality and phase 2's coverage.
//
// The result is the same fixpoint seq.KCoreIterative reaches, so the
// membership bitmap is bit-identical to scratch (the verify path and
// the property tests assert this).
type CoreTracker struct {
	k      int
	member []bool
}

// NewCoreTracker initializes membership from scratch at the current
// epoch.
func NewCoreTracker(g *graph.Graph, k int) *CoreTracker {
	member, _ := seq.KCoreIterative(g, k)
	return &CoreTracker{k: k, member: member}
}

// K returns the tracked shell parameter.
func (t *CoreTracker) K() int { return t.k }

// Members exposes the current membership bitmap. The slice is live;
// callers must not mutate it and must copy before using it across an
// Update.
func (t *CoreTracker) Members() []bool { return t.member }

// Update advances membership to gNew given the canonical delta
// (Diff(gOld, gNew)). It returns the number of vertices whose
// membership changed.
func (t *CoreTracker) Update(gNew *graph.Graph, delta Batch) int {
	n := gNew.NumVertices()
	for len(t.member) < n {
		t.member = append(t.member, false)
	}
	if t.k <= 0 {
		// Degenerate shell: every vertex (including brand-new isolated
		// ones) is in the 0-core, matching the scratch fixpoint.
		changed := 0
		for i := range t.member {
			if !t.member[i] {
				t.member[i] = true
				changed++
			}
		}
		return changed
	}
	changed := 0
	k := int32(t.k)

	// Phase 1: shrink. Seed with member endpoints of removed edges and
	// cascade within the old membership, recounting against gNew.
	inQ := make([]bool, n)
	var queue []graph.VertexID
	enqueue := func(v graph.VertexID) {
		if t.member[v] && !inQ[v] {
			inQ[v] = true
			queue = append(queue, v)
		}
	}
	for _, m := range delta.Ops {
		if m.Op == OpRemoveEdge {
			enqueue(m.Src)
			enqueue(m.Dst)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQ[v] = false
		if !t.member[v] {
			continue
		}
		cnt := int32(0)
		for _, u := range gNew.InNeighbors(v) {
			if t.member[u] {
				cnt++
				if cnt >= k {
					break
				}
			}
		}
		if cnt >= k {
			continue
		}
		t.member[v] = false
		changed++
		for _, u := range gNew.InNeighbors(v) {
			enqueue(u)
		}
	}

	// Phase 2: flood the non-member components containing non-member
	// endpoints of inserted edges.
	inRegion := make([]bool, n)
	var region, stack []graph.VertexID
	for _, m := range delta.Ops {
		if m.Op != OpAddEdge {
			continue
		}
		for _, v := range [2]graph.VertexID{m.Src, m.Dst} {
			if !t.member[v] && !inRegion[v] {
				inRegion[v] = true
				stack = append(stack, v)
			}
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		region = append(region, v)
		for _, u := range gNew.InNeighbors(v) {
			if !t.member[u] && !inRegion[u] {
				inRegion[u] = true
				stack = append(stack, u)
			}
		}
	}

	// Phase 3: peel the region with phase-1 survivors frozen.
	deg := make(map[graph.VertexID]int32, len(region))
	var peel []graph.VertexID
	for _, v := range region {
		c := int32(0)
		for _, u := range gNew.InNeighbors(v) {
			if t.member[u] || inRegion[u] {
				c++
			}
		}
		deg[v] = c
		if c < k {
			peel = append(peel, v)
		}
	}
	for len(peel) > 0 {
		v := peel[len(peel)-1]
		peel = peel[:len(peel)-1]
		if !inRegion[v] {
			continue
		}
		inRegion[v] = false
		for _, u := range gNew.InNeighbors(v) {
			if inRegion[u] {
				deg[u]--
				if deg[u] == k-1 {
					peel = append(peel, u)
				}
			}
		}
	}
	for _, v := range region {
		if inRegion[v] {
			t.member[v] = true
			changed++
		}
	}
	return changed
}

// VerifyScratch recomputes membership from scratch on g and reports
// whether it is bit-identical to the tracked state, returning the
// scratch bitmap for diagnostics.
func (t *CoreTracker) VerifyScratch(g *graph.Graph) ([]bool, bool) {
	scratch, _ := seq.KCoreIterative(g, t.k)
	if len(scratch) != len(t.member) {
		return scratch, false
	}
	for i := range scratch {
		if scratch[i] != t.member[i] {
			return scratch, false
		}
	}
	return scratch, true
}
