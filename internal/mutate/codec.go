package mutate

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/graph"
)

// Wire format for a batch ("SGM1"): the canonical encoding is what the
// chained fingerprint hashes and what delta frames ship to workers, so
// it must be deterministic — same ops in, same bytes out, no maps, no
// padding.
//
//	magic   [4]byte "SGM1"
//	count   uint32  (little-endian, ≤ MaxBatchOps)
//	op * count:
//	  kind   uint8
//	  src    uint32
//	  dst    uint32
//	  weight float32 bits (uint32)
var batchMagic = [4]byte{'S', 'G', 'M', '1'}

const opRecordBytes = 1 + 4 + 4 + 4

// Encode renders the batch into its canonical byte form.
func (b Batch) Encode() []byte {
	out := make([]byte, 0, 8+len(b.Ops)*opRecordBytes)
	out = append(out, batchMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Ops)))
	for _, m := range b.Ops {
		out = append(out, byte(m.Op))
		out = binary.LittleEndian.AppendUint32(out, uint32(m.Src))
		out = binary.LittleEndian.AppendUint32(out, uint32(m.Dst))
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(m.Weight))
	}
	return out
}

// DecodeBatch parses a canonical batch encoding. It rejects trailing
// garbage, unknown op kinds, and counts past MaxBatchOps, so a decoded
// batch re-encodes to the identical bytes (round-trip property; the
// fuzz target leans on this).
func DecodeBatch(data []byte) (Batch, error) {
	if len(data) < 8 {
		return Batch{}, fmt.Errorf("mutate: batch too short (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != batchMagic {
		return Batch{}, fmt.Errorf("mutate: bad batch magic %q", data[:4])
	}
	count := binary.LittleEndian.Uint32(data[4:8])
	if count > MaxBatchOps {
		return Batch{}, fmt.Errorf("mutate: batch count %d exceeds limit %d", count, MaxBatchOps)
	}
	want := 8 + int(count)*opRecordBytes
	if len(data) != want {
		return Batch{}, fmt.Errorf("mutate: batch length %d, want %d for %d ops", len(data), want, count)
	}
	ops := make([]Mutation, count)
	for i := range ops {
		rec := data[8+i*opRecordBytes:]
		op := Op(rec[0])
		if _, ok := opNames[op]; !ok {
			return Batch{}, fmt.Errorf("mutate: op %d: unknown kind %d", i, rec[0])
		}
		ops[i] = Mutation{
			Op:     op,
			Src:    graph.VertexID(binary.LittleEndian.Uint32(rec[1:5])),
			Dst:    graph.VertexID(binary.LittleEndian.Uint32(rec[5:9])),
			Weight: math.Float32frombits(binary.LittleEndian.Uint32(rec[9:13])),
		}
	}
	return Batch{Ops: ops}, nil
}
