package mutate

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// FuzzBatchCodec: any byte string the decoder accepts must re-encode
// to the identical bytes (the canonical encoding is what the chained
// fingerprint hashes, so two spellings of one batch would fork the
// version chain).
func FuzzBatchCodec(f *testing.F) {
	f.Add(Batch{Ops: []Mutation{{Op: OpAddEdge, Src: 1, Dst: 2, Weight: 0.5}}}.Encode())
	f.Add(Batch{Ops: []Mutation{
		{Op: OpRemoveEdge, Src: 7, Dst: 7},
		{Op: OpAddVertex},
		{Op: OpRemoveVertex, Src: 0},
	}}.Encode())
	f.Add([]byte("SGM1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		enc := b.Encode()
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not canonical: %x -> %x", data, enc)
		}
		b2, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if len(b2.Ops) != len(b.Ops) {
			t.Fatalf("op count changed across round-trip")
		}
	})
}

// FuzzDiffApply drives two graphs from fuzz bytes and asserts the
// delta property the shipping path relies on:
// Apply(old, Diff(old, new)) == new.
func FuzzDiffApply(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{8, 7, 6, 5}, false)
	f.Add([]byte{0xff, 0x00, 0x10}, []byte{}, true)
	f.Add([]byte{}, []byte{1, 1, 1, 1, 1, 1}, false)
	f.Fuzz(func(t *testing.T, oldBytes, newBytes []byte, weighted bool) {
		build := func(data []byte, n int) *graph.Graph {
			edges := make([]graph.Edge, 0, len(data)/2)
			for i := 0; i+1 < len(data); i += 2 {
				e := graph.Edge{
					Src:    graph.VertexID(data[i]) % graph.VertexID(n),
					Dst:    graph.VertexID(data[i+1]) % graph.VertexID(n),
					Weight: 1,
				}
				if weighted {
					e.Weight = float32(int(data[i])%7 + 1)
				}
				edges = append(edges, e)
			}
			g, err := graph.FromEdges(n, edges, graph.BuildOptions{Weighted: weighted, Dedupe: true})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			return g
		}
		oldN := 8 + len(oldBytes)%8
		newN := oldN + len(newBytes)%4 // vertex slots only grow
		oldG := build(oldBytes, oldN)
		newG := build(newBytes, newN)
		d, err := Diff(oldG, newG)
		if err != nil {
			t.Fatalf("diff: %v", err)
		}
		if len(d.Ops) == 0 {
			if !Equal(oldG, newG) {
				t.Fatal("empty diff between unequal graphs")
			}
			return
		}
		// The canonical delta must survive the wire.
		rt, err := DecodeBatch(d.Encode())
		if err != nil {
			t.Fatalf("delta codec round-trip: %v", err)
		}
		got, err := Apply(oldG, rt)
		if err != nil {
			t.Fatalf("apply(diff): %v", err)
		}
		if !Equal(got, newG) {
			t.Fatal("apply(diff(old, new)) != new")
		}
		// And the chained fingerprint is reproducible from the wire form.
		if ChainFingerprint("fp", d.Encode()) != ChainFingerprint("fp", rt.Encode()) {
			t.Fatal("fingerprint chain not stable across codec round-trip")
		}
	})
}
