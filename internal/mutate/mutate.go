// Package mutate is the dynamic-graph subsystem: a batched mutation
// log over the immutable CSR graphs in internal/graph, versioned
// snapshots ("graph@epoch") whose content fingerprints chain parent →
// child so a delta identifies the exact graph it produces, and
// incremental recompute for k-core and BFS that touches only the
// region a batch can actually affect.
//
// Design constraints inherited from the rest of the system:
//
//   - graph.Graph is immutable. A mutation batch therefore produces a
//     brand-new snapshot; in-flight queries keep reading the snapshot
//     they were admitted on and are never torn.
//   - Vertex IDs are stable across epochs. RemoveVertex isolates the
//     vertex (drops every incident edge) but keeps its ID slot, and
//     AddVertex appends ID n — so per-vertex results (depths, core
//     membership) stay positionally comparable between epochs.
//   - Everything is deterministic: a batch has one canonical encoding
//     (codec.go) and the chained fingerprint is a pure function of
//     (parent fingerprint, canonical batch bytes).
package mutate

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// Op is a mutation kind.
type Op uint8

const (
	// OpAddEdge inserts the directed edge Src→Dst (updating the weight
	// if the edge already exists on a weighted graph; a no-op
	// otherwise).
	OpAddEdge Op = iota + 1
	// OpRemoveEdge deletes the directed edge Src→Dst if present.
	OpRemoveEdge
	// OpAddVertex appends one vertex with ID n (the count at the time
	// the op applies). Src/Dst are unused.
	OpAddVertex
	// OpRemoveVertex isolates vertex Src: every edge into or out of it
	// is dropped, but the ID slot survives so later epochs stay
	// positionally comparable. Dst is unused.
	OpRemoveVertex
)

var opNames = map[Op]string{
	OpAddEdge:      "add-edge",
	OpRemoveEdge:   "remove-edge",
	OpAddVertex:    "add-vertex",
	OpRemoveVertex: "remove-vertex",
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, 2*len(opNames))
	for op, name := range opNames {
		m[name] = op
		// JSON clients spell ops snake_case (add_edge); accept both.
		m[strings.ReplaceAll(name, "-", "_")] = op
	}
	return m
}()

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpFromString resolves the wire/JSON spelling of an op.
func OpFromString(s string) (Op, bool) {
	op, ok := opByName[s]
	return op, ok
}

// Mutation is one log entry. For vertex ops only Src is meaningful
// (and for OpAddVertex not even that).
type Mutation struct {
	Op     Op
	Src    graph.VertexID
	Dst    graph.VertexID
	Weight float32
}

func (m Mutation) String() string {
	switch m.Op {
	case OpAddVertex:
		return "add-vertex"
	case OpRemoveVertex:
		return fmt.Sprintf("remove-vertex %d", m.Src)
	default:
		return fmt.Sprintf("%s %d->%d", m.Op, m.Src, m.Dst)
	}
}

// Batch is an ordered mutation batch. Order matters: "remove-vertex 3;
// add-edge 3->5" leaves 3→5 present, the reverse order does not.
type Batch struct {
	Ops []Mutation
}

// MaxBatchOps bounds a single batch. Batches are applied under the
// per-graph commit lock; an unbounded batch would stall serving.
const MaxBatchOps = 1 << 16

// Len returns the number of ops.
func (b Batch) Len() int { return len(b.Ops) }

// Validate checks the batch against the graph it will apply to:
// every referenced vertex must exist at the point its op executes
// (AddVertex ops grow the valid range for later ops), self-loop
// policy follows the base graph builder (allowed — FromEdges accepts
// them), and weights must be finite. It does NOT require adds to be
// novel or removes to hit an existing edge; those are canonicalized
// to no-ops at apply time so callers can submit idempotent batches.
func (b Batch) Validate(g *graph.Graph) error {
	if len(b.Ops) == 0 {
		return fmt.Errorf("mutate: empty batch")
	}
	if len(b.Ops) > MaxBatchOps {
		return fmt.Errorf("mutate: batch of %d ops exceeds limit %d", len(b.Ops), MaxBatchOps)
	}
	n := graph.VertexID(g.NumVertices())
	for i, m := range b.Ops {
		switch m.Op {
		case OpAddEdge, OpRemoveEdge:
			if m.Src >= n || m.Dst >= n {
				return fmt.Errorf("mutate: op %d (%s): vertex out of range (n=%d)", i, m, n)
			}
			if w := float64(m.Weight); w != w || w > 1e38 || w < -1e38 {
				return fmt.Errorf("mutate: op %d (%s): non-finite weight", i, m)
			}
		case OpAddVertex:
			n++
		case OpRemoveVertex:
			if m.Src >= n {
				return fmt.Errorf("mutate: op %d (%s): vertex out of range (n=%d)", i, m, n)
			}
		default:
			return fmt.Errorf("mutate: op %d: unknown op %d", i, uint8(m.Op))
		}
	}
	return nil
}

// Region returns the 256-bucket signature of every vertex this batch
// can affect directly: both endpoints of edge ops and the vertex of
// remove-vertex ops. AddVertex contributes nothing — a brand-new
// vertex is unreachable and isolated, so no previously computed
// root-based result can mention it.
//
// This is the "mutated region" half of the cache-invalidation rule
// (see Region.Intersects for the soundness argument).
func (b Batch) Region() Region {
	var r Region
	for _, m := range b.Ops {
		switch m.Op {
		case OpAddEdge, OpRemoveEdge:
			r.Add(m.Src)
			r.Add(m.Dst)
		case OpRemoveVertex:
			r.Add(m.Src)
		}
	}
	return r
}
