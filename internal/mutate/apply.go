package mutate

import (
	"fmt"

	"repro/internal/graph"
)

// edgeKey packs a directed edge into one map key.
func edgeKey(src, dst graph.VertexID) uint64 {
	return uint64(src)<<32 | uint64(dst)
}

// Apply executes the batch against g and builds the successor graph.
// g is untouched (snapshots are immutable); the result preserves g's
// weightedness. Ops execute in order over a live edge set, so
// "remove-vertex 3; add-edge 3→5" leaves 3→5 present while the
// reverse order removes it.
func Apply(g *graph.Graph, b Batch) (*graph.Graph, error) {
	if err := b.Validate(g); err != nil {
		return nil, err
	}
	edges := make(map[uint64]float32, g.NumEdges())
	for _, e := range g.Edges() {
		edges[edgeKey(e.Src, e.Dst)] = e.Weight
	}
	n := g.NumVertices()
	for _, m := range b.Ops {
		switch m.Op {
		case OpAddEdge:
			w := m.Weight
			if !g.Weighted() {
				w = 1
			}
			edges[edgeKey(m.Src, m.Dst)] = w
		case OpRemoveEdge:
			delete(edges, edgeKey(m.Src, m.Dst))
		case OpAddVertex:
			n++
		case OpRemoveVertex:
			for k := range edges {
				if graph.VertexID(k>>32) == m.Src || graph.VertexID(k&0xffffffff) == m.Src {
					delete(edges, k)
				}
			}
		}
	}
	out := make([]graph.Edge, 0, len(edges))
	for k, w := range edges {
		out = append(out, graph.Edge{
			Src:    graph.VertexID(k >> 32),
			Dst:    graph.VertexID(k & 0xffffffff),
			Weight: w,
		})
	}
	// FromEdges sorts by (src, dst), so map iteration order cannot leak
	// into the CSR layout.
	ng, err := graph.FromEdges(n, out, graph.BuildOptions{Weighted: g.Weighted()})
	if err != nil {
		return nil, fmt.Errorf("mutate: rebuild after batch: %w", err)
	}
	return ng, nil
}

// Diff computes a canonical batch transforming old into new:
// AddVertex ops for the vertex-count growth, then removals, then
// additions/weight updates, each in sorted (src, dst) order. It is the
// inverse of Apply in the sense the fuzz target asserts:
// Apply(old, Diff(old, new)) is edge- and vertex-identical to new.
func Diff(oldG, newG *graph.Graph) (Batch, error) {
	if newG.NumVertices() < oldG.NumVertices() {
		return Batch{}, fmt.Errorf("mutate: diff target has fewer vertices (%d < %d); vertex slots are never reclaimed",
			newG.NumVertices(), oldG.NumVertices())
	}
	if oldG.Weighted() != newG.Weighted() {
		return Batch{}, fmt.Errorf("mutate: diff across weightedness (old=%v new=%v)", oldG.Weighted(), newG.Weighted())
	}
	var b Batch
	for i := oldG.NumVertices(); i < newG.NumVertices(); i++ {
		b.Ops = append(b.Ops, Mutation{Op: OpAddVertex})
	}
	// Both edge lists are sorted by (src, dst): one merge pass.
	oldE, newE := oldG.Edges(), newG.Edges()
	weighted := newG.Weighted()
	var adds []Mutation
	i, j := 0, 0
	for i < len(oldE) || j < len(newE) {
		switch {
		case j == len(newE) || (i < len(oldE) && less(oldE[i], newE[j])):
			b.Ops = append(b.Ops, Mutation{Op: OpRemoveEdge, Src: oldE[i].Src, Dst: oldE[i].Dst})
			i++
		case i == len(oldE) || less(newE[j], oldE[i]):
			adds = append(adds, Mutation{Op: OpAddEdge, Src: newE[j].Src, Dst: newE[j].Dst, Weight: newE[j].Weight})
			j++
		default: // same (src, dst)
			if weighted && oldE[i].Weight != newE[j].Weight {
				adds = append(adds, Mutation{Op: OpAddEdge, Src: newE[j].Src, Dst: newE[j].Dst, Weight: newE[j].Weight})
			}
			i++
			j++
		}
	}
	b.Ops = append(b.Ops, adds...)
	return b, nil
}

func less(a, b graph.Edge) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Dst < b.Dst
}

// Equal reports structural equality: same vertex count, same sorted
// edge list, and (when both weighted) same weights. Used by the
// apply∘diff fuzz target and the torn-snapshot chaos assertions.
func Equal(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() || a.Weighted() != b.Weighted() {
		return false
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i].Src != be[i].Src || ae[i].Dst != be[i].Dst {
			return false
		}
		if a.Weighted() && ae[i].Weight != be[i].Weight {
			return false
		}
	}
	return true
}
