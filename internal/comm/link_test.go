package comm

import (
	"sync"
	"testing"
	"time"
)

func TestLinkedClusterDelaysDelivery(t *testing.T) {
	link := &LinkModel{Latency: 2 * time.Millisecond}
	c := NewMemClusterWithLink(2, link)
	defer c.Close()
	start := time.Now()
	if err := c.Endpoint(0).Send(1, KindUpdate, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Endpoint(1).Recv(0, KindUpdate, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < link.Latency {
		t.Fatalf("delivery took %v, want at least %v", elapsed, link.Latency)
	}
}

func TestLinkedClusterBandwidthSerializes(t *testing.T) {
	// 2 messages × 50KB at 10MB/s through the same NIC pair: ≥10ms.
	link := &LinkModel{BytesPerSecond: 10e6}
	c := NewMemClusterWithLink(2, link)
	defer c.Close()
	start := time.Now()
	for i := int32(0); i < 2; i++ {
		if err := c.Endpoint(0).Send(1, KindUpdate, i, make([]byte, 50_000)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int32(0); i < 2; i++ {
		if _, err := c.Endpoint(1).Recv(0, KindUpdate, i); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 9*time.Millisecond {
		t.Fatalf("2×50KB at 10MB/s took %v, want ≥ ~10ms", elapsed)
	}
}

func TestLinkedClusterPreservesFIFO(t *testing.T) {
	link := &LinkModel{Latency: 100 * time.Microsecond, BytesPerSecond: 100e6}
	c := NewMemClusterWithLink(2, link)
	defer c.Close()
	const k = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int32(0); i < k; i++ {
			if err := c.Endpoint(0).Send(1, KindUpdate, i, []byte{byte(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := int32(0); i < k; i++ {
		// Recv asserts the tag, so any reordering panics.
		m, err := c.Endpoint(1).Recv(0, KindUpdate, i)
		if err != nil {
			t.Fatal(err)
		}
		if m.Payload[0] != byte(i) {
			t.Fatalf("message %d carries %d", i, m.Payload[0])
		}
	}
	wg.Wait()
}

func TestLinkedClusterCountsBytesIdentically(t *testing.T) {
	// The link model must not change accounting, only timing.
	for _, link := range []*LinkModel{nil, {Latency: time.Millisecond}} {
		c := NewMemClusterWithLink(2, link)
		payload := make([]byte, 123)
		if err := c.Endpoint(0).Send(1, KindDependency, 0, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Endpoint(1).Recv(0, KindDependency, 0); err != nil {
			t.Fatal(err)
		}
		want := int64(123 + headerBytes)
		if got := c.Endpoint(0).Stats().SentBytes(KindDependency); got != want {
			t.Fatalf("link=%v: sent %d, want %d", link, got, want)
		}
		if got := c.Endpoint(1).Stats().ReceivedBytes(KindDependency); got != want {
			t.Fatalf("link=%v: received %d, want %d", link, got, want)
		}
		c.Close()
	}
}

func TestLinkedClusterCollectives(t *testing.T) {
	link := &LinkModel{Latency: 50 * time.Microsecond, BytesPerSecond: 50e6}
	c := NewMemClusterWithLink(3, link)
	defer c.Close()
	var wg sync.WaitGroup
	results := make([]int64, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := AllReduceInt64(c.Endpoint(NodeID(i)), int64(i+1), 0,
				func(a, b int64) int64 { return a + b })
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r != 6 {
			t.Fatalf("node %d: %d, want 6", i, r)
		}
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	c := NewMemClusterWithLink(2, &LinkModel{Latency: time.Millisecond})
	c.Close()
	if err := c.Endpoint(0).Send(1, KindUpdate, 0, nil); err == nil {
		t.Fatal("send after close succeeded")
	}
}

func TestTransferTime(t *testing.T) {
	l := &LinkModel{BytesPerSecond: 1e6}
	if got := l.transferTime(1_000_000); got != time.Second {
		t.Fatalf("1MB at 1MB/s = %v", got)
	}
	inf := &LinkModel{}
	if got := inf.transferTime(1 << 30); got != 0 {
		t.Fatalf("infinite bandwidth transfer = %v", got)
	}
}
