package comm

import (
	"sync/atomic"
	"time"
)

// Stats counts traffic by kind and by peer link. Sent counters are
// updated by Send, received counters by the transport's delivery path,
// and queue-delay by the simulated link model (zero on real
// transports). All methods are safe for concurrent use.
type Stats struct {
	sentMsgs  [numKinds]atomic.Int64
	sentBytes [numKinds]atomic.Int64
	recvMsgs  [numKinds]atomic.Int64
	recvBytes [numKinds]atomic.Int64

	// peers tracks per-link totals (all kinds), indexed by peer node.
	// Sized once at endpoint creation; empty when the transport never
	// called initPeers (e.g. a Stats zero value in tests).
	peers []peerCounters

	// queueDelayNs accumulates time the simulated link model kept this
	// endpoint's outgoing messages queued behind earlier transfers
	// (NIC contention) before their own transfer began.
	queueDelayNs atomic.Int64
}

type peerCounters struct {
	sentMsgs, sentBytes, recvMsgs, recvBytes atomic.Int64
}

// initPeers sizes the per-link counters for a cluster of n nodes.
func (s *Stats) initPeers(n int) { s.peers = make([]peerCounters, n) }

func (s *Stats) countSend(to NodeID, kind Kind, payloadLen int) {
	n := int64(payloadLen) + headerBytes
	s.sentMsgs[kind].Add(1)
	s.sentBytes[kind].Add(n)
	if int(to) >= 0 && int(to) < len(s.peers) {
		s.peers[to].sentMsgs.Add(1)
		s.peers[to].sentBytes.Add(n)
	}
}

func (s *Stats) countRecv(from NodeID, kind Kind, payloadLen int) {
	n := int64(payloadLen) + headerBytes
	s.recvMsgs[kind].Add(1)
	s.recvBytes[kind].Add(n)
	if int(from) >= 0 && int(from) < len(s.peers) {
		s.peers[from].recvMsgs.Add(1)
		s.peers[from].recvBytes.Add(n)
	}
}

func (s *Stats) countQueueDelay(d time.Duration) {
	if d > 0 {
		s.queueDelayNs.Add(int64(d))
	}
}

// SentBytes returns the bytes sent of the given kind, including per-message
// header overhead.
func (s *Stats) SentBytes(kind Kind) int64 { return s.sentBytes[kind].Load() }

// SentMessages returns the number of messages sent of the given kind.
func (s *Stats) SentMessages(kind Kind) int64 { return s.sentMsgs[kind].Load() }

// ReceivedBytes returns the bytes received of the given kind.
func (s *Stats) ReceivedBytes(kind Kind) int64 { return s.recvBytes[kind].Load() }

// ReceivedMessages returns the number of messages received of the given kind.
func (s *Stats) ReceivedMessages(kind Kind) int64 { return s.recvMsgs[kind].Load() }

// TotalSentBytes returns bytes sent across all kinds.
func (s *Stats) TotalSentBytes() int64 {
	var t int64
	for k := Kind(0); k < numKinds; k++ {
		t += s.SentBytes(k)
	}
	return t
}

// QueueDelay returns the accumulated simulated-link queueing delay of
// this endpoint's sends (always zero on the TCP transport).
func (s *Stats) QueueDelay() time.Duration {
	return time.Duration(s.queueDelayNs.Load())
}

// NumPeers returns the cluster size the per-link counters were sized
// for (0 when the transport did not initialize them).
func (s *Stats) NumPeers() int { return len(s.peers) }

// LinkSnapshot is an immutable copy of one peer link's counters, summed
// over all kinds and including per-message header overhead.
type LinkSnapshot struct {
	SentMessages, SentBytes         int64
	ReceivedMessages, ReceivedBytes int64
}

// Peer returns the counters for the link to/from the given peer; zero
// for out-of-range peers.
func (s *Stats) Peer(peer NodeID) LinkSnapshot {
	if int(peer) < 0 || int(peer) >= len(s.peers) {
		return LinkSnapshot{}
	}
	p := &s.peers[peer]
	return LinkSnapshot{
		SentMessages:     p.sentMsgs.Load(),
		SentBytes:        p.sentBytes.Load(),
		ReceivedMessages: p.recvMsgs.Load(),
		ReceivedBytes:    p.recvBytes.Load(),
	}
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	for k := Kind(0); k < numKinds; k++ {
		s.sentMsgs[k].Store(0)
		s.sentBytes[k].Store(0)
		s.recvMsgs[k].Store(0)
		s.recvBytes[k].Store(0)
	}
	for i := range s.peers {
		s.peers[i].sentMsgs.Store(0)
		s.peers[i].sentBytes.Store(0)
		s.peers[i].recvMsgs.Store(0)
		s.peers[i].recvBytes.Store(0)
	}
	s.queueDelayNs.Store(0)
}

// Snapshot is an immutable copy of one kind's counters.
type Snapshot struct {
	SentMessages, SentBytes         int64
	ReceivedMessages, ReceivedBytes int64
}

// Snapshot returns a copy of the counters for a kind.
func (s *Stats) Snapshot(kind Kind) Snapshot {
	return Snapshot{
		SentMessages:     s.SentMessages(kind),
		SentBytes:        s.SentBytes(kind),
		ReceivedMessages: s.ReceivedMessages(kind),
		ReceivedBytes:    s.ReceivedBytes(kind),
	}
}
