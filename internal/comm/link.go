package comm

import (
	"runtime"
	"sync"
	"time"
)

// LinkModel models the interconnect for the in-memory transport. Each
// machine has one NIC: a message sent at time t occupies both the
// sender's egress and the receiver's ingress for len/bandwidth, starting
// when both are free, and arrives one latency after the transfer
// completes — so a node's total traffic is bandwidth-bound the way the
// paper's InfiniBand NICs are, while transfers between disjoint node
// pairs proceed in parallel. Messages between one ordered pair deliver
// in order. The model makes communication a real wall-clock cost in
// simulated clusters, so time-based comparisons reflect traffic volume
// and overlap — including the latency hiding that double buffering
// (§5.3) is designed for. A nil model delivers instantly.
type LinkModel struct {
	// Latency is the one-way message latency.
	Latency time.Duration
	// BytesPerSecond is the per-NIC bandwidth. Zero means infinite.
	BytesPerSecond float64
}

// DefaultLink returns the harness's standard simulated interconnect:
// 10µs latency and 10 MB/s per NIC — FDR InfiniBand scaled down roughly
// in proportion to the graphs (the paper moves gigabytes per node over
// 56 Gb/s; the harness moves hundreds of kilobytes), so laptop-scale
// runs are bandwidth-bound the way the paper's billion-edge runs are.
func DefaultLink() *LinkModel {
	return &LinkModel{Latency: 10 * time.Microsecond, BytesPerSecond: 10e6}
}

// waitUntil blocks until the deadline with OS-timer sleep for the bulk
// and a yielding loop for the tail, keeping microsecond-scale link
// delays reasonably accurate despite coarse timer granularity without
// starving the scheduler on small machines.
func waitUntil(deadline time.Time) {
	const yieldWindow = 200 * time.Microsecond
	if wait := time.Until(deadline) - yieldWindow; wait > 0 {
		time.Sleep(wait)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// transferTime returns the serialization delay of n bytes.
func (l *LinkModel) transferTime(n int) time.Duration {
	if l.BytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(float64(n) / l.BytesPerSecond * float64(time.Second))
}

// nics tracks every node's egress and ingress busy horizons.
type nics struct {
	mu      sync.Mutex
	egress  []time.Time
	ingress []time.Time
}

func newNICs(n int) *nics {
	return &nics{egress: make([]time.Time, n), ingress: make([]time.Time, n)}
}

// claim reserves both NICs for a transfer of size bytes from src to dst
// and returns when the transfer starts (after queueing behind earlier
// transfers) and when it completes (delivery is one latency later).
func (ns *nics) claim(model *LinkModel, src, dst int, size int, sent time.Time) (start, done time.Time) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	start = sent
	if ns.egress[src].After(start) {
		start = ns.egress[src]
	}
	if ns.ingress[dst].After(start) {
		start = ns.ingress[dst]
	}
	done = start.Add(model.transferTime(size))
	ns.egress[src] = done
	ns.ingress[dst] = done
	return start, done
}
