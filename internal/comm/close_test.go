package comm

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func mustListen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// TestDoubleClose closes every endpoint twice on both transports; both
// calls must return without panicking and the second must be a no-op.
func TestDoubleClose(t *testing.T) {
	endpointsUnderTest(t, 2, func(t *testing.T, eps []Endpoint) {
		for _, e := range eps {
			if err := e.Close(); err != nil {
				t.Fatalf("first close: %v", err)
			}
		}
		for _, e := range eps {
			if err := e.Close(); err != nil {
				t.Fatalf("second close: %v", err)
			}
		}
	})
}

// TestMemClusterDoubleClose covers the cluster-level teardown path,
// which owns the link workers in addition to the endpoints.
func TestMemClusterDoubleClose(t *testing.T) {
	c := NewMemClusterWithLink(3, &LinkModel{Latency: time.Microsecond, BytesPerSecond: 1e9})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseDuringRecv blocks a receiver with nothing in flight, closes
// the endpoint concurrently, and expects a *ClosedError naming the
// blocked stream — on both transports.
func TestCloseDuringRecv(t *testing.T) {
	endpointsUnderTest(t, 2, func(t *testing.T, eps []Endpoint) {
		errc := make(chan error, 1)
		go func() {
			_, err := eps[1].Recv(0, KindDependency, 9)
			errc <- err
		}()
		time.Sleep(20 * time.Millisecond) // let the receiver block
		if err := eps[1].Close(); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errc:
			var ce *ClosedError
			if !errors.As(err, &ce) {
				t.Fatalf("recv after close returned %v, want *ClosedError", err)
			}
			if ce.Node != 1 || ce.From != 0 || ce.Kind != KindDependency {
				t.Fatalf("closed error context = %+v", ce)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("recv still blocked after close")
		}
	})
}

// TestConcurrentCloseDuringRecv races many receivers against Close to
// shake out teardown ordering bugs (run under -race in make race).
func TestConcurrentCloseDuringRecv(t *testing.T) {
	endpointsUnderTest(t, 2, func(t *testing.T, eps []Endpoint) {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// Each goroutine owns a distinct (kind, goroutine) stream
				// via the tag; all must unblock with an error.
				if _, err := eps[1].Recv(0, Kind(i%int(numKinds)), int32(i)); err == nil {
					t.Error("recv returned nil error after close")
				}
			}(i)
		}
		time.Sleep(10 * time.Millisecond)
		var cg sync.WaitGroup
		for i := 0; i < 4; i++ {
			cg.Add(1)
			go func() {
				defer cg.Done()
				eps[1].Close()
			}()
		}
		cg.Wait()
		wg.Wait()
	})
}

// TestRecvTimeout exercises the deadline path on both transports: a
// timely message is delivered, an absent one times out with context.
func TestRecvTimeout(t *testing.T) {
	endpointsUnderTest(t, 2, func(t *testing.T, eps []Endpoint) {
		if err := eps[0].Send(1, KindUpdate, 3, []byte("x")); err != nil {
			t.Fatal(err)
		}
		m, err := RecvTimeout(eps[1], 0, KindUpdate, 3, time.Second)
		if err != nil || string(m.Payload) != "x" {
			t.Fatalf("timely recv: %v %q", err, m.Payload)
		}
		start := time.Now()
		_, err = RecvTimeout(eps[1], 0, KindUpdate, 4, 50*time.Millisecond)
		var te *TimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("missing message returned %v, want *TimeoutError", err)
		}
		if te.Node != 1 || te.From != 0 || te.Kind != KindUpdate || te.Tag != 4 {
			t.Fatalf("timeout error context = %+v", te)
		}
		if waited := time.Since(start); waited > 2*time.Second {
			t.Fatalf("timeout took %v", waited)
		}
	})
}

// TestDialBudgetConfigurable verifies the WithDialBudget option: dialing
// a cluster whose peer never listens must fail within the small budget
// rather than the 30s default.
func TestDialBudgetConfigurable(t *testing.T) {
	ln := mustListen(t)
	defer ln.Close()
	dead := mustListen(t)
	addrs := []string{dead.Addr().String(), ln.Addr().String()}
	dead.Close() // node 1 will dial a vacated port
	start := time.Now()
	_, err := NewTCPEndpoint(1, ln, addrs, WithDialBudget(150*time.Millisecond))
	if err == nil {
		t.Fatal("dial to dead peer succeeded")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("dial gave up after %v, want ~150ms budget", waited)
	}
}
