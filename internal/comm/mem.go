package comm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bufpool"
)

// MemCluster is an in-process cluster of N endpoints connected by
// channels. It is the default substrate for experiments: it preserves the
// paper's message protocol and byte accounting exactly while running the
// "machines" as goroutine groups on one host. With a LinkModel attached,
// message delivery additionally pays simulated interconnect latency and
// bandwidth, making wall-clock comparisons communication-aware.
type MemCluster struct {
	endpoints []*memEndpoint
	link      *LinkModel

	nics   *nics
	linkMu sync.Mutex
	links  map[[2]NodeID]*linkWorker
	closed bool
}

// NewMemCluster creates a cluster with n endpoints and instant delivery.
func NewMemCluster(n int) *MemCluster { return NewMemClusterWithLink(n, nil) }

// NewMemClusterWithLink creates a cluster whose deliveries follow the
// link model (nil = instant).
func NewMemClusterWithLink(n int, link *LinkModel) *MemCluster {
	if n <= 0 {
		panic(fmt.Sprintf("comm: cluster size %d", n))
	}
	c := &MemCluster{
		endpoints: make([]*memEndpoint, n),
		link:      link,
		links:     make(map[[2]NodeID]*linkWorker),
		nics:      newNICs(n),
	}
	for i := range c.endpoints {
		c.endpoints[i] = &memEndpoint{
			recvInbox: recvInbox{inbox: newDemux(NodeID(i), n)},
			id:        NodeID(i),
			peers:     c,
		}
		c.endpoints[i].stats.initPeers(n)
	}
	return c
}

// Endpoint returns node i's endpoint.
func (c *MemCluster) Endpoint(i NodeID) Endpoint { return c.endpoints[i] }

// Endpoints returns all endpoints in ID order.
func (c *MemCluster) Endpoints() []Endpoint {
	out := make([]Endpoint, len(c.endpoints))
	for i, e := range c.endpoints {
		out[i] = e
	}
	return out
}

// Close shuts the cluster down. It is safe to call while Sends and
// Recvs are in flight — poisoning a failed run does exactly that to
// unblock the survivors — in which case undelivered messages are
// abandoned and pending receives return a *ClosedError.
func (c *MemCluster) Close() error {
	c.linkMu.Lock()
	if !c.closed {
		c.closed = true
		for _, lw := range c.links {
			close(lw.ch)
		}
	}
	c.linkMu.Unlock()
	for _, e := range c.endpoints {
		e.Close()
	}
	return nil
}

// linkWorker serializes one ordered pair's deliveries: messages arrive in
// send order, claim the two NICs in turn, wait out the transfer plus
// latency, and are delivered FIFO.
type linkWorker struct {
	ch      chan delayedMsg
	cluster *MemCluster
	from    NodeID
	to      NodeID
}

type delayedMsg struct {
	dst  *memEndpoint
	m    Message
	sent time.Time
}

func (c *MemCluster) linkFor(from, to NodeID) *linkWorker {
	key := [2]NodeID{from, to}
	c.linkMu.Lock()
	defer c.linkMu.Unlock()
	if c.closed {
		return nil
	}
	lw, ok := c.links[key]
	if !ok {
		lw = &linkWorker{ch: make(chan delayedMsg, 4096), cluster: c, from: from, to: to}
		c.links[key] = lw
		go lw.run(c.link)
	}
	return lw
}

func (lw *linkWorker) run(model *LinkModel) {
	src := lw.cluster.endpoints[lw.from]
	for d := range lw.ch {
		start, done := lw.cluster.nics.claim(model, int(lw.from), int(lw.to), len(d.m.Payload), d.sent)
		// Time spent queued behind earlier transfers before this
		// message's own serialization began — the NIC-contention
		// component of communication cost.
		src.stats.countQueueDelay(start.Sub(d.sent))
		waitUntil(done.Add(model.Latency))
		d.dst.deliverSafe(d.m)
	}
}

type memEndpoint struct {
	recvInbox
	id        NodeID
	peers     *MemCluster
	stats     Stats
	closeOnce sync.Once
}

func (e *memEndpoint) ID() NodeID { return e.id }

func (e *memEndpoint) N() int { return len(e.peers.endpoints) }

// Send delivers an aliased payload: the receiver sees the caller's
// slice (zero copy, as this transport always has) but the message is
// not slab-owned, so a Release at the receiver is a no-op. This is what
// keeps collectives that fan one blob out to every peer safe.
func (e *memEndpoint) Send(to NodeID, kind Kind, tag int32, payload []byte) error {
	return e.send(to, Message{From: e.id, Kind: kind, Tag: tag, Payload: payload})
}

// SendBufs implements Endpoint: ownership of every buffer passes to the
// transport. A single-buffer frame is handed to the receiver by
// reference — the slab sees it again when the receiver Releases; a
// multi-buffer frame is concatenated into one slab buffer and the
// sources are recycled immediately, which keeps the receive side
// contiguous without a garbage-collected allocation.
func (e *memEndpoint) SendBufs(to NodeID, kind Kind, tag int32, bufs Buffers) error {
	var payload []byte
	if len(bufs) == 1 {
		payload = bufs[0]
	} else if total := bufs.TotalLen(); total > 0 {
		payload = bufpool.Get(total)
		off := 0
		for _, b := range bufs {
			off += copy(payload[off:], b)
		}
		bufs.release()
	}
	return e.send(to, Message{From: e.id, Kind: kind, Tag: tag, Payload: payload, pooled: true})
}

// send is the shared delivery path: instant hand-off, or the simulated
// link when one is attached.
func (e *memEndpoint) send(to NodeID, m Message) error {
	if int(to) < 0 || int(to) >= e.N() {
		return fmt.Errorf("comm: send to node %d of %d", to, e.N())
	}
	e.stats.countSend(to, m.Kind, len(m.Payload))
	dst := e.peers.endpoints[to]
	if e.peers.link == nil {
		dst.stats.countRecv(e.id, m.Kind, len(m.Payload))
		dst.inbox.deliver(m)
		return nil
	}
	lw := e.peers.linkFor(e.id, to)
	if lw == nil {
		return fmt.Errorf("comm: cluster closed")
	}
	lw.ch <- delayedMsg{dst: dst, m: m, sent: time.Now()}
	return nil
}

// deliverSafe delivers a (possibly delayed) message; if the cluster
// closed while the simulated delivery was in flight, the demux drops it.
func (e *memEndpoint) deliverSafe(m Message) {
	e.stats.countRecv(m.From, m.Kind, len(m.Payload))
	e.inbox.deliver(m)
}

func (e *memEndpoint) Stats() *Stats { return &e.stats }

func (e *memEndpoint) Close() error {
	e.closeOnce.Do(e.inbox.close)
	return nil
}
